#!/usr/bin/env python3
"""Repo lint for rlbench: project invariants clang-tidy cannot express.

Rules:
  guard         every header under src/ and bench/ opens with an include
                guard derived from its repo-relative path
                (src/common/check.h -> RLBENCH_SRC_COMMON_CHECK_H_)
  rng           no std::rand / srand / std::random_device / raw std::mt19937
                outside common/rng.{h,cc}; all randomness flows through
                rlbench::Rng so experiments stay reproducible
  threads       no raw std::thread / std::jthread / std::async outside
                common/parallel.cc; all parallelism flows through
                ParallelFor / ParallelReduce so results stay deterministic
                (std::thread::id and hardware_concurrency are inert and
                exempt)
  chrono        no direct std::chrono outside common/stopwatch.h,
                src/obs/, and src/data/file_source.cc (retry backoff);
                all timing flows through Stopwatch or the observability
                layer so clock reads stay auditable
  fstream       no raw std::ifstream / std::ofstream outside
                src/data/file_source.* and src/fault/; all file IO flows
                through data::FileSource so failure semantics stay uniform
                and the fault-injection layer covers every IO path
  sockets       no raw socket code (<sys/socket.h>, <netinet/*>, <poll.h>,
                ::socket/::bind/::connect/::accept calls) outside
                src/serve/net.*; all transport flows through serve::Socket
                and the framed helpers so the server stays loopback-only
                and connection failure semantics stay in one place
  using-ns      no `using namespace` at any scope in headers
  cmake-reg     every .cc under src/ is listed in its directory's
                CMakeLists.txt (unregistered files silently fall out of the
                build and rot)

Exit status: 0 when clean, 1 with one "path:line: message" per violation.
"""

import argparse
import pathlib
import re
import sys

HEADER_DIRS = ("src", "bench")
SOURCE_DIRS = ("src", "bench", "tests", "examples", "tools")
RNG_ALLOWLIST = {"src/common/rng.h", "src/common/rng.cc"}
RNG_PATTERNS = [
    (re.compile(r"\bstd::rand\b"), "std::rand is banned; use rlbench::Rng"),
    (re.compile(r"(?<![\w:])srand\s*\("), "srand is banned; use rlbench::Rng"),
    (re.compile(r"\bstd::random_device\b"),
     "std::random_device is non-deterministic; seed rlbench::Rng explicitly"),
    (re.compile(r"\bstd::mt19937(_64)?\b"),
     "raw std::mt19937 outside common/rng; draw through rlbench::Rng"),
]
# tests/obs/trace_test.cc spawns one raw thread on purpose: it asserts
# that per-thread trace tracks are named, which ParallelFor cannot pin to
# a specific OS thread.
THREAD_ALLOWLIST = {"src/common/parallel.cc", "tests/obs/trace_test.cc"}
THREAD_PATTERNS = [
    # std::thread::id / ::hardware_concurrency are inert (no thread is
    # spawned); everything else must go through common/parallel.h.
    (re.compile(r"\bstd::thread\b(?!::(?:id|hardware_concurrency)\b)"),
     "raw std::thread outside common/parallel; use ParallelFor/Reduce"),
    (re.compile(r"\bstd::jthread\b"),
     "raw std::jthread outside common/parallel; use ParallelFor/Reduce"),
    (re.compile(r"\bstd::async\b"),
     "std::async outside common/parallel; use ParallelFor/Reduce"),
]
CHRONO_ALLOWLIST = {"src/common/stopwatch.h", "src/data/file_source.cc"}
CHRONO_ALLOWED_PREFIXES = ("src/obs/",)
CHRONO_PATTERNS = [
    (re.compile(r"#\s*include\s*<chrono>"),
     "direct <chrono> outside common/stopwatch.h and src/obs/; time through "
     "Stopwatch or the obs layer"),
    (re.compile(r"\bstd::chrono\b"),
     "direct std::chrono outside common/stopwatch.h and src/obs/; time "
     "through Stopwatch or the obs layer"),
]
FSTREAM_ALLOWLIST = {"src/data/file_source.h", "src/data/file_source.cc"}
FSTREAM_ALLOWED_PREFIXES = ("src/fault/",)
FSTREAM_PATTERNS = [
    (re.compile(r"\bstd::(?:i|o|)fstream\b"),
     "raw fstream outside data/file_source; read and write through "
     "data::FileSource so faults and failure semantics stay uniform"),
]
SOCKET_ALLOWED_PREFIXES = ("src/serve/net",)
SOCKET_PATTERNS = [
    (re.compile(r"#\s*include\s*<(?:sys/socket\.h|netinet/[\w.]+|"
                r"arpa/inet\.h|poll\.h|sys/epoll\.h|sys/select\.h)>"),
     "socket/poll headers outside src/serve/net; go through serve::Socket "
     "and the framed IO helpers"),
    (re.compile(r"::(?:socket|bind|listen|connect|accept|recv|send|poll)\s*\("),
     "raw socket call outside src/serve/net; go through serve::Socket and "
     "the framed IO helpers"),
]
USING_NAMESPACE = re.compile(r"^\s*using\s+namespace\b")
LINE_COMMENT = re.compile(r"//.*$")


def guard_name(rel_path: pathlib.PurePosixPath) -> str:
    mangled = re.sub(r"[^A-Za-z0-9]", "_", str(rel_path)).upper()
    return f"RLBENCH_{mangled}_"


def check_guard(rel, lines, errors):
    guard = guard_name(rel)
    ifndef_idx = None
    for i, line in enumerate(lines):
        stripped = line.strip()
        if not stripped or stripped.startswith("//"):
            continue
        if stripped.startswith("#ifndef"):
            ifndef_idx = i
        break
    if ifndef_idx is None:
        errors.append(f"{rel}:1: header must open with include guard "
                      f"'#ifndef {guard}' (found none before first code)")
        return
    tokens = lines[ifndef_idx].split()
    if len(tokens) < 2 or tokens[1] != guard:
        found = tokens[1] if len(tokens) > 1 else "<nothing>"
        errors.append(f"{rel}:{ifndef_idx + 1}: include guard '{found}' does "
                      f"not match path-derived '{guard}'")
        return
    define_idx = ifndef_idx + 1
    if define_idx >= len(lines) or lines[define_idx].split()[:2] != [
            "#define", guard]:
        errors.append(f"{rel}:{define_idx + 1}: '#ifndef {guard}' must be "
                      f"followed by '#define {guard}'")
    closed = any(line.strip().startswith("#endif") for line in lines[::-1][:5])
    if not closed:
        errors.append(f"{rel}:{len(lines)}: missing trailing '#endif' for "
                      f"include guard {guard}")


def check_rng(rel, lines, errors):
    if str(rel) in RNG_ALLOWLIST:
        return
    for i, line in enumerate(lines):
        code = LINE_COMMENT.sub("", line)
        for pattern, message in RNG_PATTERNS:
            if pattern.search(code):
                errors.append(f"{rel}:{i + 1}: {message}")


def check_threads(rel, lines, errors):
    if str(rel) in THREAD_ALLOWLIST:
        return
    for i, line in enumerate(lines):
        code = LINE_COMMENT.sub("", line)
        for pattern, message in THREAD_PATTERNS:
            if pattern.search(code):
                errors.append(f"{rel}:{i + 1}: {message}")


def check_chrono(rel, lines, errors):
    if rel in CHRONO_ALLOWLIST or rel.startswith(CHRONO_ALLOWED_PREFIXES):
        return
    for i, line in enumerate(lines):
        code = LINE_COMMENT.sub("", line)
        for pattern, message in CHRONO_PATTERNS:
            if pattern.search(code):
                errors.append(f"{rel}:{i + 1}: {message}")


def check_fstream(rel, lines, errors):
    if rel in FSTREAM_ALLOWLIST or rel.startswith(FSTREAM_ALLOWED_PREFIXES):
        return
    for i, line in enumerate(lines):
        code = LINE_COMMENT.sub("", line)
        for pattern, message in FSTREAM_PATTERNS:
            if pattern.search(code):
                errors.append(f"{rel}:{i + 1}: {message}")


def check_sockets(rel, lines, errors):
    if rel.startswith(SOCKET_ALLOWED_PREFIXES):
        return
    for i, line in enumerate(lines):
        code = LINE_COMMENT.sub("", line)
        for pattern, message in SOCKET_PATTERNS:
            if pattern.search(code):
                errors.append(f"{rel}:{i + 1}: {message}")


def check_using_namespace(rel, lines, errors):
    for i, line in enumerate(lines):
        code = LINE_COMMENT.sub("", line)
        if USING_NAMESPACE.search(code):
            errors.append(f"{rel}:{i + 1}: 'using namespace' is banned in "
                          f"headers")


def check_cmake_registration(root, errors):
    for cc in sorted((root / "src").rglob("*.cc")):
        rel = cc.relative_to(root).as_posix()
        cmake = cc.parent / "CMakeLists.txt"
        if not cmake.exists():
            errors.append(f"{rel}:1: no CMakeLists.txt in {cc.parent.name}/ "
                          f"to register this source")
            continue
        listed = re.findall(r"[\w./-]+\.cc\b", cmake.read_text())
        if cc.name not in listed:
            cmake_rel = cmake.relative_to(root).as_posix()
            errors.append(f"{rel}:1: not registered in {cmake_rel}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    args = parser.parse_args()
    root = pathlib.Path(args.root).resolve()

    errors = []
    for top in HEADER_DIRS:
        for header in sorted((root / top).rglob("*.h")):
            rel = header.relative_to(root)
            lines = header.read_text().splitlines()
            check_guard(pathlib.PurePosixPath(rel.as_posix()), lines, errors)
            check_using_namespace(rel.as_posix(), lines, errors)
    for top in SOURCE_DIRS:
        directory = root / top
        if not directory.is_dir():
            continue
        for source in sorted(directory.rglob("*")):
            if source.suffix not in {".h", ".cc", ".cpp"}:
                continue
            source_rel = source.relative_to(root).as_posix()
            source_lines = source.read_text().splitlines()
            check_rng(source_rel, source_lines, errors)
            check_threads(source_rel, source_lines, errors)
            check_chrono(source_rel, source_lines, errors)
            check_fstream(source_rel, source_lines, errors)
            check_sockets(source_rel, source_lines, errors)
    check_cmake_registration(root, errors)

    for error in errors:
        print(error)
    if errors:
        print(f"rlbench_lint: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
