#!/usr/bin/env python3
"""Repo lint for rlbench: project invariants clang-tidy cannot express.

Engine v2: every rule is a Rule object carrying its checker plus positive
and negative fixtures; `--self-test` runs each rule against its fixtures,
so a rule that silently stops firing (regex rot, refactored allowlist)
fails in ctest instead of letting violations through.

Rules:
  guard         every header under src/ and bench/ opens with an include
                guard derived from its repo-relative path
                (src/common/check.h -> RLBENCH_SRC_COMMON_CHECK_H_)
  rng           no std::rand / srand / std::random_device / raw std::mt19937
                outside common/rng.{h,cc}; all randomness flows through
                rlbench::Rng so experiments stay reproducible
  threads       no raw std::thread / std::jthread / std::async outside
                common/parallel.cc; all parallelism flows through
                ParallelFor / ParallelReduce so results stay deterministic
                (std::thread::id and hardware_concurrency are inert and
                exempt)
  detach        no thread .detach() anywhere: a detached thread outlives
                every shutdown contract in the codebase (pool teardown,
                serve drain, trace/metric flush) and turns clean exits
                into races
  locks         no raw std::mutex / condition_variable / lock_guard /
                unique_lock / scoped_lock outside
                common/thread_annotations.h; all locking flows through
                rlbench::Mutex / MutexLock / CondVar so the Clang
                thread-safety analysis sees the whole lock graph. Files
                declaring a Mutex member must carry at least one
                RLBENCH_GUARDED_BY annotation (a mutex that guards
                nothing the analysis can check is a smell)
  nodiscard     status-returning declarations in headers must be
                [[nodiscard]], and `(void)` casts of call expressions are
                banned in src/ and bench/ — a dropped Status is a dropped
                error; handle it or propagate with RLBENCH_RETURN_NOT_OK /
                RLBENCH_ASSIGN_OR_RETURN
  chrono        no direct std::chrono outside common/stopwatch.h,
                src/obs/, and src/data/file_source.cc (retry backoff);
                all timing flows through Stopwatch or the observability
                layer so clock reads stay auditable
  fstream       no raw std::ifstream / std::ofstream outside
                src/data/file_source.* and src/fault/; all file IO flows
                through data::FileSource so failure semantics stay uniform
                and the fault-injection layer covers every IO path
  sockets       no raw socket code (<sys/socket.h>, <netinet/*>, <poll.h>,
                ::socket/::bind/::connect/::accept calls) outside
                src/serve/net.*; all transport flows through serve::Socket
                and the framed helpers so the server stays loopback-only
                and connection failure semantics stay in one place
  blocknet      no blocking socket helpers (Accept, WaitReadable, SendAll,
                RecvSome, SendFrame, RecvFrame) in src/serve/ outside
                net.* and the synchronous client.* — the server side is a
                nonblocking event loop, and one blocking call on its thread
                parks every multiplexed connection behind one slow peer
  drift         no drift/ includes or drift types (DriftTracker,
                WindowReservoir, DriftController, ComputeWindowMeasures)
                in src/serve/ outside service.* — the serve-path sampling
                hook is one guarded call in MatchService::PumpOne, and the
                rest of the serve layer sees only the plain-number
                DriftStatus view, so "drift off = one null check" stays
                auditable
  using-ns      no `using namespace` at any scope in headers
  kernels       no associative-container lookups or heap allocation inside
                loop bodies of src/text/kernels.cc — the vectorized kernels
                are the per-pair hot path and must work over presorted
                contiguous spans with stack scratch only (top-level, non-
                loop allocations like ParseNumeric's strtod buffer are fine)
  bulk          no whole-dataset entry points (FileSource::ReadAll,
                BulkSourceGenerator::Materialize, BuildSourceDataset, the
                in-memory MinHashBlocking / SortedNeighborhoodBlocking)
                inside src/bulk/ — the out-of-core pipeline must stream;
                collected forms belong in tests and benchmarks
  cmake-reg     every .cc under src/ is listed in its directory's
                CMakeLists.txt (unregistered files silently fall out of the
                build and rot)

Exit status: 0 when clean, 1 with one "path:line: message" per violation.
With --self-test: 0 when every rule's fixtures behave, 1 otherwise.
"""

import argparse
import pathlib
import re
import sys
import tempfile

HEADER_DIRS = ("src", "bench")
SOURCE_DIRS = ("src", "bench", "tests", "examples", "tools")
LINE_COMMENT = re.compile(r"//.*$")


class Fixture:
    """One synthetic file a rule is tested against.

    `bad` fixtures must produce at least one violation; good ones none.
    """

    def __init__(self, rel, text, bad):
        self.rel = rel
        self.text = text
        self.bad = bad


class Rule:
    def __init__(self, name, check, fixtures, headers_only=False):
        self.name = name
        self.check = check  # check(rel: str, lines: [str], errors: [str])
        self.fixtures = fixtures
        self.headers_only = headers_only


def _pattern_check(allowlist, allowed_prefixes, patterns):
    """Line-scanning checker: flag `patterns` outside the allowlist."""

    def check(rel, lines, errors):
        if rel in allowlist or rel.startswith(allowed_prefixes):
            return
        for i, line in enumerate(lines):
            code = LINE_COMMENT.sub("", line)
            for pattern, message in patterns:
                if pattern.search(code):
                    errors.append(f"{rel}:{i + 1}: {message}")

    return check


# --- guard ------------------------------------------------------------------

def guard_name(rel_path):
    mangled = re.sub(r"[^A-Za-z0-9]", "_", str(rel_path)).upper()
    return f"RLBENCH_{mangled}_"


def check_guard(rel, lines, errors):
    guard = guard_name(rel)
    ifndef_idx = None
    for i, line in enumerate(lines):
        stripped = line.strip()
        if not stripped or stripped.startswith("//"):
            continue
        if stripped.startswith("#ifndef"):
            ifndef_idx = i
        break
    if ifndef_idx is None:
        errors.append(f"{rel}:1: header must open with include guard "
                      f"'#ifndef {guard}' (found none before first code)")
        return
    tokens = lines[ifndef_idx].split()
    if len(tokens) < 2 or tokens[1] != guard:
        found = tokens[1] if len(tokens) > 1 else "<nothing>"
        errors.append(f"{rel}:{ifndef_idx + 1}: include guard '{found}' does "
                      f"not match path-derived '{guard}'")
        return
    define_idx = ifndef_idx + 1
    if define_idx >= len(lines) or lines[define_idx].split()[:2] != [
            "#define", guard]:
        errors.append(f"{rel}:{define_idx + 1}: '#ifndef {guard}' must be "
                      f"followed by '#define {guard}'")
    closed = any(line.strip().startswith("#endif") for line in lines[::-1][:5])
    if not closed:
        errors.append(f"{rel}:{len(lines)}: missing trailing '#endif' for "
                      f"include guard {guard}")


GUARD_FIXTURES = [
    Fixture("src/x/y.h", "#ifndef RLBENCH_SRC_X_Y_H_\n"
            "#define RLBENCH_SRC_X_Y_H_\n#endif  // RLBENCH_SRC_X_Y_H_\n",
            bad=False),
    Fixture("src/x/y.h", "#ifndef WRONG_GUARD_H_\n#define WRONG_GUARD_H_\n"
            "#endif\n", bad=True),
    Fixture("src/x/y.h", "#pragma once\nint x;\n", bad=True),
]

# --- rng --------------------------------------------------------------------

RNG_ALLOWLIST = {"src/common/rng.h", "src/common/rng.cc"}
RNG_PATTERNS = [
    (re.compile(r"\bstd::rand\b"), "std::rand is banned; use rlbench::Rng"),
    (re.compile(r"(?<![\w:])srand\s*\("), "srand is banned; use rlbench::Rng"),
    (re.compile(r"\bstd::random_device\b"),
     "std::random_device is non-deterministic; seed rlbench::Rng explicitly"),
    (re.compile(r"\bstd::mt19937(_64)?\b"),
     "raw std::mt19937 outside common/rng; draw through rlbench::Rng"),
]

RNG_FIXTURES = [
    Fixture("src/a/b.cc", "int x = std::rand();\n", bad=True),
    Fixture("src/a/b.cc", "std::mt19937 gen(7);\n", bad=True),
    Fixture("src/common/rng.cc", "std::mt19937_64 gen_;\n", bad=False),
    Fixture("src/a/b.cc", "// std::rand in a comment is fine\n", bad=False),
]

# --- threads ----------------------------------------------------------------

# tests/obs/trace_test.cc spawns one raw thread on purpose: it asserts
# that per-thread trace tracks are named, which ParallelFor cannot pin to
# a specific OS thread. The thread_annotations test needs raw threads to
# drive real cross-thread contention through Mutex/CondVar.
THREAD_ALLOWLIST = {"src/common/parallel.cc", "tests/obs/trace_test.cc",
                    "tests/common/thread_annotations_test.cc"}
THREAD_PATTERNS = [
    # std::thread::id / ::hardware_concurrency are inert (no thread is
    # spawned); everything else must go through common/parallel.h.
    (re.compile(r"\bstd::thread\b(?!::(?:id|hardware_concurrency)\b)"),
     "raw std::thread outside common/parallel; use ParallelFor/Reduce"),
    (re.compile(r"\bstd::jthread\b"),
     "raw std::jthread outside common/parallel; use ParallelFor/Reduce"),
    (re.compile(r"\bstd::async\b"),
     "std::async outside common/parallel; use ParallelFor/Reduce"),
]

THREAD_FIXTURES = [
    Fixture("src/a/b.cc", "std::thread t([] {});\n", bad=True),
    Fixture("src/a/b.cc", "auto n = std::thread::hardware_concurrency();\n",
            bad=False),
    Fixture("src/common/parallel.cc", "std::thread t([] {});\n", bad=False),
]

# --- detach -----------------------------------------------------------------

DETACH_PATTERNS = [
    (re.compile(r"(?:\.|->)\s*detach\s*\(\s*\)"),
     "thread detach() is banned: a detached thread outlives every shutdown "
     "contract (pool teardown, serve drain, obs flush); join it instead"),
]


def check_detach(rel, lines, errors):
    for i, line in enumerate(lines):
        code = LINE_COMMENT.sub("", line)
        for pattern, message in DETACH_PATTERNS:
            if pattern.search(code):
                errors.append(f"{rel}:{i + 1}: {message}")


DETACH_FIXTURES = [
    Fixture("src/common/parallel.cc", "worker.detach();\n", bad=True),
    Fixture("src/a/b.cc", "thread_ptr->detach();\n", bad=True),
    Fixture("src/a/b.cc", "worker.join();\n", bad=False),
]

# --- locks ------------------------------------------------------------------

LOCKS_ALLOWLIST = {"src/common/thread_annotations.h"}
LOCKS_PATTERNS = [
    (re.compile(r"\bstd::(?:recursive_|shared_|timed_)?mutex\b"),
     "raw std::mutex outside common/thread_annotations.h; use "
     "rlbench::Mutex so the thread-safety analysis sees the lock"),
    (re.compile(r"\bstd::condition_variable(?:_any)?\b"),
     "raw std::condition_variable outside common/thread_annotations.h; "
     "use rlbench::CondVar"),
    (re.compile(r"\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"),
     "raw std lock wrapper outside common/thread_annotations.h; use "
     "rlbench::MutexLock"),
]
MUTEX_MEMBER = re.compile(r"^\s*(?:rlbench::)?Mutex\s+\w+\s*(?:RLBENCH_\w+\s*\([^)]*\)\s*)?;")


def check_locks(rel, lines, errors):
    if rel in LOCKS_ALLOWLIST:
        return
    # The negative-compilation fixtures are deliberate misuse: policing
    # their lock hygiene would force them to be correct.
    if rel.startswith("tests/static/fixtures/"):
        return
    declares_mutex = False
    has_guarded_by = False
    for i, line in enumerate(lines):
        code = LINE_COMMENT.sub("", line)
        for pattern, message in LOCKS_PATTERNS:
            if pattern.search(code):
                errors.append(f"{rel}:{i + 1}: {message}")
        if MUTEX_MEMBER.match(code):
            declares_mutex = True
        if "RLBENCH_GUARDED_BY" in code:
            has_guarded_by = True
    if declares_mutex and not has_guarded_by:
        errors.append(f"{rel}:1: declares a Mutex but no field carries "
                      f"RLBENCH_GUARDED_BY; annotate what the mutex guards "
                      f"(see src/common/thread_annotations.h)")


LOCKS_FIXTURES = [
    Fixture("src/a/b.cc", "std::mutex mu_;\n", bad=True),
    Fixture("src/a/b.cc", "std::lock_guard<std::mutex> lock(mu_);\n",
            bad=True),
    Fixture("src/a/b.cc", "std::condition_variable cv_;\n", bad=True),
    Fixture("src/common/thread_annotations.h", "std::mutex mu_;\n",
            bad=False),
    Fixture("src/a/b.cc",
            "Mutex mu_;\nint x_ RLBENCH_GUARDED_BY(mu_) = 0;\n", bad=False),
    Fixture("src/a/b.cc", "Mutex mu_;\nint x_ = 0;\n", bad=True),
]

# --- nodiscard --------------------------------------------------------------

STATUS_DECL = re.compile(
    r"^(\s*)(?:virtual\s+|static\s+|inline\s+|explicit\s+)*"
    r"(?:rlbench::|common::)?(?:Status|Result<[^;{=]*>)\s+&?[A-Za-z_]\w*\s*\(")
VOID_CAST_CALL = re.compile(r"\(void\)\s*[A-Za-z_][\w:]*\s*(?:\(|\.|->)")
# `(void)` discards of calls are checked where real handling is expected;
# tests legitimately discard in EXPECT_DEATH bodies and failpoint drills.
VOID_CAST_DIRS = ("src/", "bench/", "examples/")


def check_nodiscard(rel, lines, errors):
    is_header = rel.endswith(".h")
    for i, line in enumerate(lines):
        code = LINE_COMMENT.sub("", line)
        if is_header and STATUS_DECL.match(code) and \
                "[[nodiscard]]" not in code:
            prev = lines[i - 1] if i > 0 else ""
            if "[[nodiscard]]" not in prev:
                errors.append(
                    f"{rel}:{i + 1}: status-returning declaration must be "
                    f"[[nodiscard]] (a dropped Status is a dropped error)")
        if rel.startswith(VOID_CAST_DIRS) and VOID_CAST_CALL.search(code):
            errors.append(
                f"{rel}:{i + 1}: explicit `(void)` discard of a call is "
                f"banned; handle the result or propagate with "
                f"RLBENCH_RETURN_NOT_OK / RLBENCH_ASSIGN_OR_RETURN")


NODISCARD_FIXTURES = [
    Fixture("src/a/b.h", "Status Load(const std::string& path);\n", bad=True),
    Fixture("src/a/b.h", "[[nodiscard]] Status Load(const std::string& p);\n",
            bad=False),
    Fixture("src/a/b.h",
            "[[nodiscard]]\nResult<int> Parse(const std::string& text);\n",
            bad=False),
    Fixture("src/a/b.h", "Result<int> Parse(const std::string& text);\n",
            bad=True),
    Fixture("src/a/b.h", "virtual Status Train(const Task& task) = 0;\n",
            bad=True),
    Fixture("src/a/b.h", "  StatusCode code() const { return code_; }\n",
            bad=False),
    Fixture("src/a/b.h", "  Status status;\n", bad=False),
    Fixture("src/a/b.cc", "(void)WriteAtomic(path, blob);\n", bad=True),
    Fixture("src/a/b.cc", "(void)source.Write(path, blob);\n", bad=True),
    Fixture("src/a/b.cc", "(void)unused_arg;\n", bad=False),
    Fixture("tests/a/b.cc", "(void)RLBENCH_FAULT_POINT(\"t\");\n", bad=False),
]

# --- chrono -----------------------------------------------------------------

# trace_test sleeps to age the trace epoch before a re-arm; Stopwatch has
# no sleep and polling it would burn a core for nothing.
CHRONO_ALLOWLIST = {"src/common/stopwatch.h", "src/data/file_source.cc",
                    "src/common/thread_annotations.h",
                    "tests/obs/trace_test.cc"}
CHRONO_ALLOWED_PREFIXES = ("src/obs/",)
CHRONO_PATTERNS = [
    (re.compile(r"#\s*include\s*<chrono>"),
     "direct <chrono> outside common/stopwatch.h and src/obs/; time through "
     "Stopwatch or the obs layer"),
    (re.compile(r"\bstd::chrono\b"),
     "direct std::chrono outside common/stopwatch.h and src/obs/; time "
     "through Stopwatch or the obs layer"),
]

CHRONO_FIXTURES = [
    Fixture("src/a/b.cc", "#include <chrono>\n", bad=True),
    Fixture("src/obs/trace.cc", "std::chrono::steady_clock::now();\n",
            bad=False),
    Fixture("src/common/stopwatch.h", "std::chrono::steady_clock::now();\n",
            bad=False),
]

# --- fstream ----------------------------------------------------------------

FSTREAM_ALLOWLIST = {"src/data/file_source.h", "src/data/file_source.cc"}
FSTREAM_ALLOWED_PREFIXES = ("src/fault/",)
FSTREAM_PATTERNS = [
    (re.compile(r"\bstd::(?:i|o|)fstream\b"),
     "raw fstream outside data/file_source; read and write through "
     "data::FileSource so faults and failure semantics stay uniform"),
]

FSTREAM_FIXTURES = [
    Fixture("src/a/b.cc", "std::ofstream out(path);\n", bad=True),
    Fixture("src/data/file_source.cc", "std::ifstream in(path);\n",
            bad=False),
]

# --- sockets ----------------------------------------------------------------

SOCKET_ALLOWED_PREFIXES = ("src/serve/net",)
SOCKET_PATTERNS = [
    (re.compile(r"#\s*include\s*<(?:sys/socket\.h|netinet/[\w.]+|"
                r"arpa/inet\.h|poll\.h|sys/epoll\.h|sys/select\.h)>"),
     "socket/poll headers outside src/serve/net; go through serve::Socket "
     "and the framed IO helpers"),
    (re.compile(r"::(?:socket|bind|listen|connect|accept|recv|send|poll)\s*\("),
     "raw socket call outside src/serve/net; go through serve::Socket and "
     "the framed IO helpers"),
]

SOCKET_FIXTURES = [
    Fixture("src/a/b.cc", "#include <sys/socket.h>\n", bad=True),
    Fixture("src/serve/net.cc", "int fd = ::socket(AF_INET, 0, 0);\n",
            bad=False),
]

# --- blocknet ---------------------------------------------------------------

# The serve-side event loop multiplexes every connection on one thread: a
# single blocking wait (accept, framed recv, full-buffer send) parks all of
# them behind one slow peer. net.* implements both flavors, and client.*
# is the synchronous caller-side API, so both stay exempt.
BLOCKNET_PREFIX = "src/serve/"
BLOCKNET_ALLOWED_PREFIXES = ("src/serve/net", "src/serve/client")
BLOCKNET_PATTERNS = [
    (re.compile(r"\b(?:Accept|WaitReadable|SendAll|RecvSome|SendFrame|"
                r"RecvFrame)\s*\("),
     "blocking socket helper in serve code outside net.*/client.*; the "
     "event loop must stay nonblocking (AcceptWithDeadline, "
     "ReadNonBlocking/WriteNonBlocking via EventLoop)"),
]


def check_blocknet(rel, lines, errors):
    if not rel.startswith(BLOCKNET_PREFIX):
        return
    if rel.startswith(BLOCKNET_ALLOWED_PREFIXES):
        return
    for i, line in enumerate(lines):
        code = LINE_COMMENT.sub("", line)
        for pattern, message in BLOCKNET_PATTERNS:
            if pattern.search(code):
                errors.append(f"{rel}:{i + 1}: {message}")


BLOCKNET_FIXTURES = [
    Fixture("src/serve/server.cc",
            "auto socket = Accept(listener_);\n", bad=True),
    Fixture("src/serve/server.cc",
            "auto frame = RecvFrame(socket, &decoder);\n", bad=True),
    Fixture("src/serve/event_loop.cc",
            "RLBENCH_RETURN_NOT_OK(SendAll(conn.socket, bytes));\n",
            bad=True),
    Fixture("src/serve/service.cc",
            "auto ready = WaitReadable(socket, 50);\n", bad=True),
    # The nonblocking variants are the sanctioned loop primitives.
    Fixture("src/serve/event_loop.cc",
            "auto accepted = AcceptWithDeadline(listener_, 0);\n"
            "auto read = ReadNonBlocking(conn.socket);\n"
            "auto wrote = WriteNonBlocking(conn.socket, view);\n",
            bad=False),
    # net.* and the synchronous client API implement/consume the blocking
    # flavor on purpose.
    Fixture("src/serve/net.cc",
            "Result<Socket> Accept(const Socket& listener) {\n", bad=False),
    Fixture("src/serve/client.cc",
            "return RecvFrame(socket_, &decoder_);\n", bad=False),
    # Blocking helpers outside src/serve/ are the sockets rule's business.
    Fixture("tests/serve/loop_test.cc",
            "auto one = Accept(*listener);\n", bad=False),
]

# --- using-ns ---------------------------------------------------------------

USING_NAMESPACE = re.compile(r"^\s*using\s+namespace\b")


def check_using_namespace(rel, lines, errors):
    for i, line in enumerate(lines):
        code = LINE_COMMENT.sub("", line)
        if USING_NAMESPACE.search(code):
            errors.append(f"{rel}:{i + 1}: 'using namespace' is banned in "
                          f"headers")


USING_NS_FIXTURES = [
    Fixture("src/a/b.h", "using namespace std;\n", bad=True),
    Fixture("src/a/b.h", "using rlbench::Status;\n", bad=False),
]

# --- kernels ----------------------------------------------------------------

KERNELS_FILE = "src/text/kernels.cc"
KERNELS_LOOP_HEAD = re.compile(r"\b(?:for|while)\s*\(")
KERNELS_BANNED = [
    (re.compile(r"\bstd::(?:unordered_)?(?:map|set)\b"),
     "associative-container lookup in a kernels.cc loop body; kernels "
     "operate on presorted contiguous spans (intersect by merge scan)"),
    (re.compile(r"\bstd::vector\b|\bstd::string\b|\bnew\b|\bmalloc\s*\(|"
                r"\bmake_(?:unique|shared)\b|"
                r"\.(?:push_back|emplace_back|resize|reserve)\s*\("),
     "heap allocation in a kernels.cc loop body; hoist scratch out of the "
     "hot loop (stack buffers or caller-provided spans)"),
]


def check_kernels(rel, lines, errors):
    """Brace-tracking scan: flag banned tokens only inside loop bodies.

    A small state machine rather than a full parser: `pending_loop` is set
    when a for/while head is seen and converted to a loop body at its
    opening brace (paren depth distinguishes the semicolons inside a
    `for (;;)` head from a braceless single-statement body).
    """
    if rel != KERNELS_FILE:
        return
    depth = 0
    paren = 0
    loop_stack = []  # brace depth at which each open loop body started
    pending_loop = False
    for i, line in enumerate(lines):
        code = LINE_COMMENT.sub("", line)
        in_loop = bool(loop_stack) or pending_loop or \
            KERNELS_LOOP_HEAD.search(code)
        if in_loop:
            for pattern, message in KERNELS_BANNED:
                if pattern.search(code):
                    errors.append(f"{rel}:{i + 1}: {message}")
        if KERNELS_LOOP_HEAD.search(code):
            pending_loop = True
        for ch in code:
            if ch == "(":
                paren += 1
            elif ch == ")":
                paren -= 1
            elif ch == "{":
                depth += 1
                if pending_loop:
                    loop_stack.append(depth)
                    pending_loop = False
            elif ch == "}":
                if loop_stack and loop_stack[-1] == depth:
                    loop_stack.pop()
                depth -= 1
            elif ch == ";" and pending_loop and paren == 0:
                # Braceless single-statement loop body ends here.
                pending_loop = False


KERNELS_FIXTURES = [
    Fixture("src/text/kernels.cc",
            "size_t F(std::span<const uint32_t> a) {\n"
            "  size_t n = 0;\n"
            "  for (size_t i = 0; i < a.size(); ++i) {\n"
            "    std::unordered_map<uint32_t, int> m;\n"
            "    n += m.count(a[i]);\n"
            "  }\n"
            "  return n;\n"
            "}\n", bad=True),
    Fixture("src/text/kernels.cc",
            "void G(std::span<int> out) {\n"
            "  while (true) {\n"
            "    scratch.push_back(1);\n"
            "  }\n"
            "}\n", bad=True),
    Fixture("src/text/kernels.cc",
            "size_t H(size_t n) {\n"
            "  size_t acc = 0;\n"
            "  for (size_t i = 0; i < n; ++i)\n"
            "    acc += new_count(i);\n"
            "  return acc;\n"
            "}\n", bad=False),
    Fixture("src/text/kernels.cc",
            "bool ParseNumeric(std::string_view v, double* out) {\n"
            "  std::string buf(StripAscii(v));\n"
            "  for (char c : buf) {\n"
            "    if (c == '.') *out = 1.0;\n"
            "  }\n"
            "  return true;\n"
            "}\n", bad=False),
    Fixture("src/other/file.cc",
            "for (;;) { scratch.push_back(1); }\n", bad=False),
]

# --- bulk -------------------------------------------------------------------

# src/bulk/ exists to resolve datasets that do not fit in memory, so its
# code must stream through BulkSourceGenerator / ShardReader. These tokens
# are the exact whole-dataset entry points that would silently make the
# pipeline in-core again; tests and benchmarks may still use them to cross-
# check the streamed results against collected ones.
BULK_PREFIX = "src/bulk/"
BULK_PATTERNS = [
    (re.compile(r"\b(?:ReadAll|Materialize|BuildSourceDataset|"
                r"MinHashBlocking|SortedNeighborhoodBlocking)\b"),
     "whole-dataset materialization inside src/bulk/; the out-of-core "
     "pipeline must stream (BulkSourceGenerator, ShardReader/ShardWriter) "
     "— collected forms belong in tests"),
]


def check_bulk(rel, lines, errors):
    if not rel.startswith(BULK_PREFIX):
        return
    for i, line in enumerate(lines):
        code = LINE_COMMENT.sub("", line)
        for pattern, message in BULK_PATTERNS:
            if pattern.search(code):
                errors.append(f"{rel}:{i + 1}: {message}")


BULK_FIXTURES = [
    Fixture("src/bulk/x.cc", "auto blob = FileSource::ReadAll(path);\n",
            bad=True),
    Fixture("src/bulk/x.cc", "auto pair = source.Materialize();\n",
            bad=True),
    Fixture("src/bulk/x.cc",
            "auto c = block::MinHashBlocking(d1, d2, options);\n", bad=True),
    Fixture("src/bulk/x.cc",
            "auto c = block::SortedNeighborhoodBlocking(d1, d2, o);\n",
            bad=True),
    Fixture("src/bulk/x.cc", "// Materialize() lives in tests only.\n",
            bad=False),
    Fixture("src/bulk/x.cc", "writer.Append(shard, std::move(entry));\n",
            bad=False),
    Fixture("tests/bulk/x.cc", "auto pair = source.Materialize();\n",
            bad=False),
    Fixture("src/datagen/bulk_source.cc", "SourcePair Materialize();\n",
            bad=False),
]

# --- drift ------------------------------------------------------------------

# The difficulty-drift monitor samples scored pairs off the serve path.
# That sampling hook lives in exactly one place — MatchService::PumpOne in
# service.cc, behind the batch-tier/status guard — so the "drift off means
# one null check" contract stays auditable. Everything else in src/serve/
# talks to drift through MatchService's plain-number DriftStatus view
# (DriftSnapshot / TakeDriftTrigger / RearmDrift), never the drift types.
DRIFT_PREFIX = "src/serve/"
DRIFT_ALLOWED_PREFIXES = ("src/serve/service",)
DRIFT_PATTERNS = [
    (re.compile(r"#\s*include\s+\"drift/"),
     "drift header included in serve code outside service.*; the serve "
     "layer reaches the drift monitor only through MatchService "
     "(DriftSnapshot/TakeDriftTrigger/RearmDrift)"),
    (re.compile(r"\bdrift::|\b(?:DriftTracker|WindowReservoir|"
                r"DriftController|ComputeWindowMeasures)\b"),
     "drift type named in serve code outside service.*; use "
     "MatchService's plain-number DriftStatus view instead"),
]


def check_drift(rel, lines, errors):
    if not rel.startswith(DRIFT_PREFIX):
        return
    if rel.startswith(DRIFT_ALLOWED_PREFIXES):
        return
    for i, line in enumerate(lines):
        code = LINE_COMMENT.sub("", line)
        for pattern, message in DRIFT_PATTERNS:
            if pattern.search(code):
                errors.append(f"{rel}:{i + 1}: {message}")


DRIFT_FIXTURES = [
    Fixture("src/serve/server.cc",
            "#include \"drift/tracker.h\"\n", bad=True),
    Fixture("src/serve/event_loop.cc",
            "std::unique_ptr<drift::DriftTracker> tracker_;\n", bad=True),
    Fixture("src/serve/server.h",
            "drift::WindowReservoir reservoir_;\n", bad=True),
    Fixture("src/serve/wire.cc",
            "auto m = ComputeWindowMeasures(ctx, window);\n", bad=True),
    # The choke point itself owns the tracker and its types.
    Fixture("src/serve/service.h",
            "#include \"drift/tracker.h\"\n"
            "std::unique_ptr<drift::DriftTracker> drift_;\n", bad=False),
    Fixture("src/serve/service.cc",
            "drift_->RecordBatch(flat, scores, decisions);\n", bad=False),
    # The plain-number view is the sanctioned interface.
    Fixture("src/serve/server.cc",
            "DriftStatus drift = service_.DriftSnapshot();\n"
            "service_.RearmDrift();\n", bad=False),
    # The drift subsystem and its tests are out of scope.
    Fixture("src/drift/tracker.cc",
            "WindowReservoir reservoir_(options.reservoir);\n", bad=False),
    Fixture("tests/serve/drift_service_test.cc",
            "#include \"drift/tracker.h\"\n", bad=False),
]

# --- rule registry ----------------------------------------------------------

RULES = [
    Rule("guard", check_guard, GUARD_FIXTURES, headers_only=True),
    Rule("using-ns", check_using_namespace, USING_NS_FIXTURES,
         headers_only=True),
    Rule("rng", _pattern_check(RNG_ALLOWLIST, (), RNG_PATTERNS),
         RNG_FIXTURES),
    Rule("threads", _pattern_check(THREAD_ALLOWLIST, (), THREAD_PATTERNS),
         THREAD_FIXTURES),
    Rule("detach", check_detach, DETACH_FIXTURES),
    Rule("locks", check_locks, LOCKS_FIXTURES),
    Rule("nodiscard", check_nodiscard, NODISCARD_FIXTURES),
    Rule("kernels", check_kernels, KERNELS_FIXTURES),
    Rule("bulk", check_bulk, BULK_FIXTURES),
    Rule("chrono",
         _pattern_check(CHRONO_ALLOWLIST, CHRONO_ALLOWED_PREFIXES,
                        CHRONO_PATTERNS), CHRONO_FIXTURES),
    Rule("fstream",
         _pattern_check(FSTREAM_ALLOWLIST, FSTREAM_ALLOWED_PREFIXES,
                        FSTREAM_PATTERNS), FSTREAM_FIXTURES),
    Rule("sockets", _pattern_check(set(), SOCKET_ALLOWED_PREFIXES,
                                   SOCKET_PATTERNS), SOCKET_FIXTURES),
    Rule("blocknet", check_blocknet, BLOCKNET_FIXTURES),
    Rule("drift", check_drift, DRIFT_FIXTURES),
]

# --- cmake-reg (tree-level, not per-file) -----------------------------------


def check_cmake_registration(root, errors):
    for cc in sorted((root / "src").rglob("*.cc")):
        rel = cc.relative_to(root).as_posix()
        cmake = cc.parent / "CMakeLists.txt"
        if not cmake.exists():
            errors.append(f"{rel}:1: no CMakeLists.txt in {cc.parent.name}/ "
                          f"to register this source")
            continue
        listed = re.findall(r"[\w./-]+\.cc\b", cmake.read_text())
        if cc.name not in listed:
            cmake_rel = cmake.relative_to(root).as_posix()
            errors.append(f"{rel}:1: not registered in {cmake_rel}")


def self_test_cmake_reg():
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        (root / "src" / "a").mkdir(parents=True)
        (root / "src" / "a" / "used.cc").write_text("int x;\n")
        (root / "src" / "a" / "orphan.cc").write_text("int y;\n")
        (root / "src" / "a" / "CMakeLists.txt").write_text(
            "add_library(a used.cc)\n")
        errors = []
        check_cmake_registration(root, errors)
        if len(errors) != 1 or "orphan.cc" not in errors[0]:
            failures.append(f"cmake-reg: expected exactly the orphan to be "
                            f"flagged, got {errors}")
    return failures


def self_test():
    failures = []
    for rule in RULES:
        for j, fixture in enumerate(rule.fixtures):
            errors = []
            rule.check(fixture.rel, fixture.text.splitlines(), errors)
            if fixture.bad and not errors:
                failures.append(
                    f"{rule.name}: fixture #{j} ({fixture.rel}) should be "
                    f"flagged but passed: {fixture.text!r}")
            elif not fixture.bad and errors:
                failures.append(
                    f"{rule.name}: fixture #{j} ({fixture.rel}) should pass "
                    f"but was flagged: {errors}")
    failures.extend(self_test_cmake_reg())
    for failure in failures:
        print(f"SELF-TEST FAIL: {failure}")
    total = sum(len(rule.fixtures) for rule in RULES)
    if failures:
        print(f"rlbench_lint --self-test: {len(failures)} failure(s) over "
              f"{total} fixtures + cmake-reg", file=sys.stderr)
        return 1
    print(f"rlbench_lint --self-test: {len(RULES) + 1} rules, "
          f"{total} fixtures + cmake-reg tree fixture: all behave")
    return 0


def lint(root):
    errors = []
    seen = set()
    for top in HEADER_DIRS:
        for header in sorted((root / top).rglob("*.h")):
            rel = header.relative_to(root).as_posix()
            lines = header.read_text().splitlines()
            for rule in RULES:
                if rule.headers_only:
                    if rule.name == "guard":
                        rule.check(pathlib.PurePosixPath(rel), lines, errors)
                    else:
                        rule.check(rel, lines, errors)
            seen.add(rel)
    for top in SOURCE_DIRS:
        directory = root / top
        if not directory.is_dir():
            continue
        for source in sorted(directory.rglob("*")):
            if source.suffix not in {".h", ".cc", ".cpp"}:
                continue
            rel = source.relative_to(root).as_posix()
            lines = source.read_text().splitlines()
            for rule in RULES:
                if not rule.headers_only:
                    rule.check(rel, lines, errors)
    check_cmake_registration(root, errors)
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="run every rule against its fixtures and exit")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    root = pathlib.Path(args.root).resolve()
    errors = lint(root)
    for error in errors:
        print(error)
    if errors:
        print(f"rlbench_lint: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
