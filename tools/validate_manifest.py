#!/usr/bin/env python3
"""Validate rlbench run manifests (and their Chrome trace files).

Two modes:

  validate_manifest.py <manifest.json> [<manifest.json> ...]
      Validate already-written manifests against the schema documented in
      src/obs/manifest.h. When a manifest names a trace_file, the trace is
      validated too (path resolved relative to the manifest's directory,
      then as given). Manifests carrying drift_* config keys (drift-enabled
      runs, bench/micro_drift) additionally get their window size,
      controller state, and measure ranges checked.

  validate_manifest.py --run <bench_binary> [bench args...]
      Run a bench binary in a scratch directory with RLBENCH_METRICS=1 and
      RLBENCH_TRACE set, then validate every manifest it wrote plus the
      trace. This is what the `obs_manifest_validate` ctest and the obs
      stage of scripts/check.sh execute.

Exit status: 0 when everything validates, 1 with one "path: message" per
problem on stderr.
"""

import argparse
import json
import numbers
import os
import pathlib
import subprocess
import sys
import tempfile

SCHEMA_VERSION = 2


def fail(errors, path, message):
    errors.append(f"{path}: {message}")


def expect_type(errors, path, manifest, key, kind, required=True):
    if key not in manifest:
        if required:
            fail(errors, path, f"missing required key '{key}'")
        return None
    value = manifest[key]
    # bool is an int subclass in Python; never accept it for numeric keys.
    if isinstance(value, bool) or not isinstance(value, kind):
        fail(errors, path, f"key '{key}' has type {type(value).__name__}, "
                           f"expected {kind}")
        return None
    return value


def validate_histogram_summary(errors, path, name, summary):
    if not isinstance(summary, dict):
        fail(errors, path, f"histogram '{name}' is not an object")
        return
    for key in ("count", "sum", "min", "max", "p50", "p90", "p99"):
        value = summary.get(key)
        if isinstance(value, bool) or not isinstance(value, numbers.Real):
            fail(errors, path, f"histogram '{name}' key '{key}' is not a "
                               f"number (got {value!r})")


# Drift-monitor manifests (bench/micro_drift, drift-enabled serve runs)
# publish their window state through config keys. Config values arrive as
# JSON numbers (obs::Manifest::AddConfig(key, double)), so integral keys
# are checked as whole-valued reals rather than ints.
DRIFT_COUNT_KEYS = ("drift_windows", "drift_windows_to_trigger",
                    "drift_triggers", "drift_transitions",
                    "drift_swap_recovery_requests")
DRIFT_UNIT_KEYS = ("drift_best_linear_f1", "drift_complexity_avg",
                   "drift_lbm")
DRIFT_STATES = ("stable", "watch", "triggered")


def validate_drift_config(errors, path, config):
    drift_keys = [key for key in config if key.startswith("drift_")]
    if not drift_keys:
        return
    # A manifest that reports anything about drift must pin down the
    # window size, the controller's final state, and how often it moved.
    for key in ("drift_window_pairs", "drift_state", "drift_transitions"):
        if key not in config:
            fail(errors, path, f"drift config present ({sorted(drift_keys)}) "
                               f"but required key '{key}' is missing")
    state = config.get("drift_state")
    if state is not None and state not in DRIFT_STATES:
        fail(errors, path, f"drift_state {state!r} not in {DRIFT_STATES}")
    window = config.get("drift_window_pairs")
    if window is not None:
        if isinstance(window, bool) or not isinstance(window, numbers.Real) \
                or window != int(window) or window <= 0:
            fail(errors, path, f"drift_window_pairs must be a positive "
                               f"integer (got {window!r})")
    for key in DRIFT_COUNT_KEYS:
        value = config.get(key)
        if value is None:
            continue
        if isinstance(value, bool) or not isinstance(value, numbers.Real) \
                or value != int(value) or value < 0:
            fail(errors, path, f"'{key}' must be a non-negative integer "
                               f"(got {value!r})")
    for key in DRIFT_UNIT_KEYS:
        value = config.get(key)
        if value is None:
            continue
        if isinstance(value, bool) or not isinstance(value, numbers.Real) \
                or not 0.0 <= value <= 1.0:
            fail(errors, path, f"'{key}' must be in [0, 1] (got {value!r})")
    # NLB is a difference of F1 scores and may legitimately be negative;
    # the overhead ratio only has to be a non-negative number.
    for key, low in (("drift_nlb", -1.0), ("drift_sampling_overhead_ratio",
                                           0.0)):
        value = config.get(key)
        if value is None:
            continue
        if isinstance(value, bool) or not isinstance(value, numbers.Real) \
                or value < low:
            fail(errors, path, f"'{key}' must be a number >= {low} "
                               f"(got {value!r})")


def validate_manifest(errors, path, manifest):
    if not isinstance(manifest, dict):
        fail(errors, path, "top level is not a JSON object")
        return

    version = expect_type(errors, path, manifest, "schema_version", int)
    if version is not None and version != SCHEMA_VERSION:
        fail(errors, path, f"schema_version {version} != {SCHEMA_VERSION}")

    bench = expect_type(errors, path, manifest, "bench", str)
    if bench == "":
        fail(errors, path, "bench name is empty")
    expect_type(errors, path, manifest, "git", str)
    for key in ("threads", "hardware_concurrency", "peak_rss_bytes"):
        value = expect_type(errors, path, manifest, key, int)
        if value is not None and value < 0:
            fail(errors, path, f"key '{key}' is negative")
    expect_type(errors, path, manifest, "seed", int, required=False)

    datasets = expect_type(errors, path, manifest, "datasets", list)
    if datasets is not None:
        for entry in datasets:
            if not isinstance(entry, str):
                fail(errors, path, f"dataset id {entry!r} is not a string")

    config = expect_type(errors, path, manifest, "config", dict)
    if config is not None:
        validate_drift_config(errors, path, config)

    phases = expect_type(errors, path, manifest, "phases", list)
    if phases is not None:
        for phase in phases:
            if not isinstance(phase, dict) or \
                    not isinstance(phase.get("name"), str) or \
                    isinstance(phase.get("seconds"), bool) or \
                    not isinstance(phase.get("seconds"), numbers.Real):
                fail(errors, path, f"malformed phase entry {phase!r}")
                continue
            if phase["seconds"] < 0:
                fail(errors, path, f"phase '{phase['name']}' has negative "
                                   f"seconds")
            status = phase.get("status")
            if status not in ("ok", "failed"):
                fail(errors, path, f"phase '{phase['name']}' has status "
                                   f"{status!r}, expected 'ok' or 'failed'")
            error = phase.get("error")
            if status == "failed":
                if not isinstance(error, str) or not error:
                    fail(errors, path, f"failed phase '{phase['name']}' "
                                       f"must carry a non-empty 'error'")
            elif error is not None:
                fail(errors, path, f"ok phase '{phase['name']}' must not "
                                   f"carry 'error'")

    total = expect_type(errors, path, manifest, "total_seconds", numbers.Real)
    if total is not None and total < 0:
        fail(errors, path, "total_seconds is negative")

    expect_type(errors, path, manifest, "trace_file", str, required=False)

    # The metrics sections travel together: all present or all absent.
    metric_keys = ("counters", "gauges", "histograms")
    present = [key for key in metric_keys if key in manifest]
    if present and len(present) != len(metric_keys):
        fail(errors, path, f"partial metrics sections: {present}")
    counters = manifest.get("counters")
    if counters is not None and isinstance(counters, dict):
        for name, value in counters.items():
            if isinstance(value, bool) or not isinstance(value, int) \
                    or value < 0:
                fail(errors, path, f"counter '{name}' is not a non-negative "
                                   f"integer (got {value!r})")
    gauges = manifest.get("gauges")
    if gauges is not None and isinstance(gauges, dict):
        for name, value in gauges.items():
            if isinstance(value, bool) or not isinstance(value, numbers.Real):
                fail(errors, path, f"gauge '{name}' is not a number")
    histograms = manifest.get("histograms")
    if histograms is not None and isinstance(histograms, dict):
        for name, summary in histograms.items():
            validate_histogram_summary(errors, path, name, summary)


def validate_trace(errors, path, trace):
    if not isinstance(trace, dict):
        fail(errors, path, "top level is not a JSON object")
        return
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(errors, path, "traceEvents missing or empty")
        return
    saw_thread_name = False
    for event in events:
        if not isinstance(event, dict):
            fail(errors, path, f"event is not an object: {event!r}")
            continue
        phase = event.get("ph")
        if phase not in ("X", "M"):
            fail(errors, path, f"unexpected event phase {phase!r}")
            continue
        if phase == "M" and event.get("name") == "thread_name":
            saw_thread_name = True
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if isinstance(value, bool) or \
                        not isinstance(value, numbers.Real):
                    fail(errors, path,
                         f"complete event missing numeric '{key}': {event!r}")
            if not isinstance(event.get("name"), str):
                fail(errors, path, f"complete event has no name: {event!r}")
    if not saw_thread_name:
        fail(errors, path, "no thread_name metadata event")


def load_json(errors, path):
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        fail(errors, path, f"cannot parse: {exc}")
        return None


def validate_manifest_file(errors, manifest_path):
    manifest = load_json(errors, manifest_path)
    if manifest is None:
        return
    validate_manifest(errors, manifest_path, manifest)
    trace_file = manifest.get("trace_file")
    if isinstance(trace_file, str) and trace_file:
        # Benches resolve RLBENCH_TRACE against their cwd, which is the
        # parent of bench_results/ — try that first, then the manifest's
        # own directory, then the path as given.
        parent = pathlib.Path(manifest_path).parent
        candidates = [parent.parent / trace_file, parent / trace_file,
                      pathlib.Path(trace_file)]
        for candidate in candidates:
            if candidate.is_file():
                trace = load_json(errors, candidate)
                if trace is not None:
                    validate_trace(errors, str(candidate), trace)
                break
        else:
            fail(errors, manifest_path,
                 f"trace_file '{trace_file}' does not exist")


def run_and_validate(errors, command):
    with tempfile.TemporaryDirectory(prefix="rlbench_obs_") as scratch:
        env = dict(os.environ)
        env["RLBENCH_METRICS"] = "1"
        env["RLBENCH_TRACE"] = "validate_trace.json"
        binary = pathlib.Path(command[0]).resolve()
        result = subprocess.run([str(binary)] + command[1:], cwd=scratch,
                                env=env, capture_output=True, text=True)
        if result.returncode != 0:
            fail(errors, binary.name,
                 f"bench exited {result.returncode}: {result.stderr[-500:]}")
            return
        manifests = sorted(
            pathlib.Path(scratch).glob("bench_results/*.manifest.json"))
        if not manifests:
            fail(errors, binary.name, "bench wrote no manifest under "
                                      "bench_results/")
            return
        for manifest_path in manifests:
            validate_manifest_file(errors, str(manifest_path))
        trace = pathlib.Path(scratch) / "validate_trace.json"
        if not trace.is_file():
            fail(errors, binary.name, "bench wrote no trace despite "
                                      "RLBENCH_TRACE being set")


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--run", action="store_true",
                        help="treat the first path as a bench binary to "
                             "execute in a scratch dir with obs enabled")
    # REMAINDER so bench flags like --datasets=Ds1 pass through untouched
    # ( --run must precede the binary).
    parser.add_argument("paths", nargs=argparse.REMAINDER,
                        help="manifest files, or with --run a bench binary "
                             "followed by its arguments")
    args = parser.parse_args()
    if not args.paths:
        parser.error("nothing to validate")

    errors = []
    if args.run:
        run_and_validate(errors, args.paths)
    else:
        for path in args.paths:
            validate_manifest_file(errors, path)

    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"validate_manifest: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print("validate_manifest: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
