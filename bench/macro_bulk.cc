// Out-of-core bulk resolution macro benchmark (ISSUE 8): stream a
// million-record synthetic source pair through the sharded spill-to-disk
// pipeline in each blocking mode and report throughput — records/sec into
// the spill, candidate pairs/sec through the scoring kernels — plus peak
// RSS, which stays bounded by the shard budget instead of the dataset
// size. Results land in bench_results/BENCH_bulk.json; every shard also
// writes its own run manifest (bench_results/macro_bulk_<mode>.shard_NN
// .manifest.json) so a degraded shard is visible in the artefacts, not
// just the exit code.
//
// Flags: --records (total across both sides, default 1000000)
//        --mode    (sn | minhash | both, default both)
//        --shards  (default 64), --budget_mb (default 64)
//        --threshold (default 0.5), --seed (default 1)
//        --smoke   (CI preset: 20000 records, 4 shards, 16 MiB budget)
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "bulk/options.h"
#include "bulk/resolver.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "data/file_source.h"
#include "datagen/bulk_source.h"
#include "datagen/spec.h"
#include "obs/resource.h"

using namespace rlbench;

namespace {

struct ModeReport {
  std::string mode;
  double seconds = 0.0;
  uint64_t candidates = 0;
  uint64_t matched = 0;
  uint64_t spilled_bytes = 0;
  size_t shards_failed = 0;
  size_t shards = 0;
  bool ok = false;
  std::string error;
};

std::string JsonNumber(const char* indent, const char* key, double value,
                       bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\": %.4f%s\n", indent, key, value,
                comma ? "," : "");
  return buf;
}

std::string JsonCount(const char* indent, const char* key, uint64_t value,
                      bool comma = true) {
  return std::string(indent) + "\"" + key + "\": " + std::to_string(value) +
         (comma ? ",\n" : "\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bool smoke = flags.GetBool("smoke", false);
  uint64_t records = static_cast<uint64_t>(
      flags.GetInt("records", smoke ? 20000 : 1000000));
  std::string mode_flag = flags.GetString("mode", "both");
  // 64 shards at full scale keeps the decoded size of any one shard (the
  // real memory high-water mark) in the same ballpark as the spill budget;
  // minhash replicates entries per band key, so its shards are the fattest.
  size_t shards =
      static_cast<size_t>(flags.GetInt("shards", smoke ? 4 : 64));
  size_t budget_mb =
      static_cast<size_t>(flags.GetInt("budget_mb", smoke ? 16 : 64));
  double threshold = flags.GetDouble("threshold", 0.5);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  datagen::SourceDatasetSpec spec;
  spec.id = "bulk";
  spec.d1_name = "BulkA";
  spec.d2_name = "BulkB";
  spec.domain = datagen::Domain::kProduct;
  spec.d1_size = static_cast<size_t>(records / 2);
  spec.d2_size = static_cast<size_t>(records - records / 2);
  spec.matches = static_cast<size_t>(records / 10);
  spec.seed = seed;
  datagen::BulkSourceGenerator source(spec);
  uint64_t total_records = source.size(0) + source.size(1);

  benchutil::BenchRun run("macro_bulk");
  run.manifest().set_seed(seed);
  run.manifest().AddDataset(spec.id);
  run.manifest().AddConfig("records", static_cast<int64_t>(total_records));
  run.manifest().AddConfig("mode", mode_flag);
  run.manifest().AddConfig("shards", static_cast<int64_t>(shards));
  run.manifest().AddConfig("budget_mb", static_cast<int64_t>(budget_mb));
  run.manifest().AddConfig("threshold", threshold);
  run.manifest().AddConfig("smoke", std::string(smoke ? "true" : "false"));

  std::vector<bulk::BulkMode> modes;
  if (mode_flag == "sn" || mode_flag == "both") {
    modes.push_back(bulk::BulkMode::kSortedNeighborhood);
  }
  if (mode_flag == "minhash" || mode_flag == "both") {
    modes.push_back(bulk::BulkMode::kMinHash);
  }
  RLBENCH_CHECK_MSG(!modes.empty(), "unknown --mode (use sn|minhash|both)");

  uint64_t bytes_streamed = 0;
  std::vector<ModeReport> reports;
  for (bulk::BulkMode mode : modes) {
    ModeReport report;
    report.mode = bulk::BulkModeName(mode);
    report.shards = shards;

    bulk::BulkOptions options;
    options.mode = mode;
    options.shards = shards;
    options.memory_budget_bytes = budget_mb << 20;
    options.threshold = threshold;
    // Per-process spill dir: each mode ends with remove_all(spill_dir), so
    // concurrent invocations sharing a cwd must not share spill space.
    options.spill_dir = flags.GetString(
        "spill_dir", "bulk_spill." + std::to_string(getpid()));
    options.manifest_dir = benchutil::ResultsDir();
    options.manifest_stem = std::string("macro_bulk_") + report.mode;
    options.output_path =
        options.spill_dir + "/matches_" + report.mode + ".csv";

    run.manifest().BeginPhase(std::string("mode/") + report.mode);
    Stopwatch watch;
    auto resolved = bulk::BulkResolve(source, options);
    report.seconds = watch.ElapsedSeconds();
    if (resolved.ok()) {
      const bulk::BulkResult& result = *resolved;
      report.ok = true;
      report.candidates = result.candidate_pairs;
      report.spilled_bytes = result.spilled_bytes;
      report.matched = result.matches.size();
      report.shards_failed = result.shards_failed;
      bytes_streamed = result.bytes_streamed;
    } else {
      report.error = resolved.status().ToString();
      run.manifest().FailPhase(report.error);
    }
    run.manifest().EndPhase();

    std::error_code ec;
    std::filesystem::remove_all(options.spill_dir, ec);

    if (report.ok) {
      std::printf(
          "%-8s %9.2fs  %11.0f rec/s  %12.0f cand/s  "
          "%llu candidates, %llu matched, %zu/%zu shards failed\n",
          report.mode.c_str(), report.seconds,
          static_cast<double>(total_records) / report.seconds,
          static_cast<double>(report.candidates) / report.seconds,
          static_cast<unsigned long long>(report.candidates),
          static_cast<unsigned long long>(report.matched),
          report.shards_failed, shards);
    } else {
      std::printf("%-8s FAILED: %s\n", report.mode.c_str(),
                  report.error.c_str());
    }
    reports.push_back(std::move(report));
  }

  int64_t peak_rss = obs::PeakRssBytes();
  std::printf("peak RSS %.1f MiB, streamed %.1f MiB of record bytes\n",
              static_cast<double>(peak_rss) / (1 << 20),
              static_cast<double>(bytes_streamed) / (1 << 20));

  std::string json = "{\n  \"bench\": \"macro_bulk\",\n";
  json += JsonCount("  ", "records", total_records);
  json += JsonCount("  ", "shards", shards);
  json += JsonCount("  ", "budget_mb", budget_mb);
  json += JsonCount("  ", "bytes_streamed", bytes_streamed);
  json += JsonCount("  ", "peak_rss_bytes",
                    static_cast<uint64_t>(peak_rss < 0 ? 0 : peak_rss));
  json += "  \"modes\": [\n";
  for (size_t i = 0; i < reports.size(); ++i) {
    const ModeReport& r = reports[i];
    json += "    {\n";
    json += "      \"mode\": \"" + r.mode + "\",\n";
    json += "      \"ok\": " + std::string(r.ok ? "true" : "false") + ",\n";
    json += JsonNumber("      ", "seconds", r.seconds);
    json += JsonNumber("      ", "records_per_sec",
                       r.seconds > 0.0
                           ? static_cast<double>(total_records) / r.seconds
                           : 0.0);
    json += JsonNumber("      ", "candidates_per_sec",
                       r.seconds > 0.0
                           ? static_cast<double>(r.candidates) / r.seconds
                           : 0.0);
    json += JsonCount("      ", "candidate_pairs", r.candidates);
    json += JsonCount("      ", "matched_pairs", r.matched);
    json += JsonCount("      ", "spilled_bytes", r.spilled_bytes);
    json += JsonCount("      ", "shards_failed", r.shards_failed,
                      /*comma=*/false);
    json += i + 1 < reports.size() ? "    },\n" : "    }\n";
  }
  json += "  ]\n}\n";
  std::string path = benchutil::ResultsDir() + "/BENCH_bulk.json";
  Status write = data::FileSource::WriteAtomic(path, json);
  if (!write.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 write.ToString().c_str());
    run.Finish();
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  run.Finish();

  for (const ModeReport& report : reports) {
    if (!report.ok || report.shards_failed == report.shards) return 1;
  }
  return 0;
}
