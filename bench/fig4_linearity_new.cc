// Figure 4(a): degree of linearity of the new benchmarks Dn1..Dn8.
//
// Flags: --scale, --recall, --kmax (must match table5 for identical
//        benchmarks), --datasets=Dn1,...
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "core/benchmark_builder.h"
#include "core/linearity.h"
#include "datagen/catalog.h"

using namespace rlbench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 0.35);
  double recall = flags.GetDouble("recall", 0.9);
  int k_max = static_cast<int>(flags.GetInt("kmax", 64));

  benchutil::BenchRun run("fig4_linearity_new");
  run.manifest().AddConfig("scale", scale);
  run.manifest().AddConfig("recall", recall);
  run.manifest().AddConfig("kmax", static_cast<int64_t>(k_max));

  std::vector<std::string> fallback;
  for (const auto& spec : datagen::SourceDatasets()) {
    fallback.push_back(spec.id);
  }
  auto ids = benchutil::SelectIds(flags, fallback);
  run.manifest().SetDatasets(ids);

  TablePrinter table(
      "Figure 4(a) (data series): degree of linearity per new dataset");
  table.SetHeader({"dataset", "F1max_CS", "t_CS", "F1max_JS", "t_JS"});

  // Resolve ids serially (bad-flag path), then fan the datasets out across
  // the pool at grain 1; progress lines may interleave but results land in
  // indexed slots and the table keeps the original id order. Inner
  // Parallel* calls run inline, so results match a serial drive.
  std::vector<const datagen::SourceDatasetSpec*> specs(ids.size(), nullptr);
  for (size_t i = 0; i < ids.size(); ++i) {
    specs[i] = datagen::FindSourceDataset(ids[i]);
  }
  std::vector<core::LinearityResult> results(specs.size());
  std::vector<Status> statuses(specs.size(), Status::OK());
  std::vector<double> seconds(specs.size(), 0.0);
  ParallelFor(0, specs.size(), 1, [&](size_t i) {
    if (specs[i] == nullptr) {
      statuses[i] = Status::NotFound("unknown dataset id " + ids[i]);
      return;
    }
    Stopwatch watch;
    std::fprintf(stderr, "[fig4] %s...\n", specs[i]->id.c_str());
    core::NewBenchmarkOptions options;
    options.scale = scale;
    options.min_recall = recall;
    options.k_max = k_max;
    auto benchmark = core::BuildNewBenchmark(*specs[i], options);
    if (!benchmark.ok()) {
      statuses[i] = benchmark.status();
      seconds[i] = watch.ElapsedSeconds();
      return;
    }
    matchers::MatchingContext context(&benchmark->task);
    results[i] = core::ComputeLinearity(context);
    seconds[i] = watch.ElapsedSeconds();
  });
  size_t failed = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    if (!statuses[i].ok()) ++failed;
    benchutil::RecordDatasetPhase(run, ids[i], seconds[i], statuses[i]);
    if (!statuses[i].ok()) continue;
    table.AddRow({specs[i]->id, benchutil::F3(results[i].f1_cosine),
                  FormatDouble(results[i].threshold_cosine, 2),
                  benchutil::F3(results[i].f1_jaccard),
                  FormatDouble(results[i].threshold_jaccard, 2)});
  }
  table.Print(std::cout);
  std::printf(
      "\nReading: the paper finds both measures high for the bibliographic\n"
      "Dn3/Dn8 and low for the challenging Dn1, Dn2, Dn5, Dn6, Dn7.\n");
  run.Finish();
  return failed == ids.size() ? 1 : 0;
}
