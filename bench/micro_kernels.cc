// Microbenchmark gating the ISSUE 7 kernels: every vectorized kernel is
// timed against its retained scalar reference on real benchmark data, the
// two paths are checked for bit-identical output while timing, and the
// per-kernel before/after throughput lands in
// bench_results/BENCH_kernels.json. The acceptance bar (enforced by eye /
// CI history, not by an assert — machines differ) is >= 2x on
// jaccard_token_ids and mlp_batch_score.
//
// Flags: --scale (default 1.0), --repeats (default 5: best-of),
//        --dataset (default Ds5), --rounds (default 40: pair-set sweeps)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "data/columnar.h"
#include "data/file_source.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "matchers/context.h"
#include "matchers/features.h"
#include "ml/dataset.h"
#include "ml/mlp.h"
#include "text/kernels.h"
#include "text/similarity.h"

using namespace rlbench;

namespace {

// Best-of-`repeats` wall time of one closure.
template <typename Fn>
double BestOf(int repeats, const Fn& fn) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch watch;
    fn();
    double elapsed = watch.ElapsedSeconds();
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

struct KernelResult {
  const char* name;
  size_t ops = 0;          // pairs (or rows) processed per timed pass
  double scalar_seconds = 0.0;
  double vector_seconds = 0.0;
};

std::string KernelJson(const KernelResult& r, bool last) {
  char buf[256];
  double speedup =
      r.vector_seconds > 0.0 ? r.scalar_seconds / r.vector_seconds : 0.0;
  std::snprintf(buf, sizeof(buf),
                "    {\"name\": \"%s\", \"ops\": %zu, "
                "\"scalar_seconds\": %.6f, \"vectorized_seconds\": %.6f, "
                "\"speedup\": %.3f}%s\n",
                r.name, r.ops, r.scalar_seconds, r.vector_seconds, speedup,
                last ? "" : ",");
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 1.0);
  int repeats = static_cast<int>(flags.GetInt("repeats", 5));
  int rounds = static_cast<int>(flags.GetInt("rounds", 40));
  std::string dataset = flags.GetString("dataset", "Ds5");

  benchutil::BenchRun run("micro_kernels");
  run.manifest().AddDataset(dataset);
  run.manifest().AddConfig("scale", scale);
  run.manifest().AddConfig("repeats", static_cast<int64_t>(repeats));
  run.manifest().AddConfig("rounds", static_cast<int64_t>(rounds));

  const auto* spec = datagen::FindExistingBenchmark(dataset);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown dataset id %s\n", dataset.c_str());
    benchutil::RecordDatasetPhase(
        run, dataset, 0.0, Status::NotFound("unknown dataset id " + dataset));
    run.Finish();
    return 1;
  }
  auto task = datagen::BuildExistingBenchmark(*spec, scale);

  run.manifest().BeginPhase("warm");
  matchers::MatchingContext context(&task);
  const data::ColumnarStore& store = context.columnar();
  context.left().WarmQGrams();
  context.right().WarmQGrams();
  store.EnsureQGrams();
  // All labelled pairs of the task, swept `rounds` times per timed pass so
  // each kernel runs long enough for the clock.
  std::vector<data::LabeledPair> pairs = task.train();
  pairs.insert(pairs.end(), task.valid().begin(), task.valid().end());
  pairs.insert(pairs.end(), task.test().begin(), task.test().end());
  size_t ops = pairs.size() * static_cast<size_t>(rounds);
  run.manifest().EndPhase();

  std::vector<KernelResult> results;
  constexpr size_t kL = data::ColumnarStore::kLeft;
  constexpr size_t kR = data::ColumnarStore::kRight;
  namespace k = text::kernels;

  // Checksums accumulate every similarity so the compiler cannot drop the
  // work, and double as the differential check: scalar and vectorized
  // sweeps must agree bit for bit.
  run.manifest().BeginPhase("kernels");
  {
    KernelResult r{"jaccard_token_ids", ops};
    double scalar_sum = 0.0, vector_sum = 0.0;
    r.scalar_seconds = BestOf(repeats, [&] {
      scalar_sum = 0.0;
      for (int round = 0; round < rounds; ++round) {
        for (const auto& p : pairs) {
          scalar_sum += text::JaccardSimilarity(
              context.left().TokenSetAll(p.left),
              context.right().TokenSetAll(p.right));
        }
      }
    });
    // The vectorized side is the batched kernel: gathering the id spans
    // into the pair array is part of the timed work, the sweep itself is
    // one call per round.
    std::vector<k::U32SetPair> set_pairs(pairs.size());
    std::vector<double> jac(pairs.size());
    r.vector_seconds = BestOf(repeats, [&] {
      vector_sum = 0.0;
      for (size_t i = 0; i < pairs.size(); ++i) {
        auto a = store.TokenIdsAll(kL, pairs[i].left);
        auto b = store.TokenIdsAll(kR, pairs[i].right);
        set_pairs[i] = {a.data(), b.data(), static_cast<uint32_t>(a.size()),
                        static_cast<uint32_t>(b.size())};
      }
      for (int round = 0; round < rounds; ++round) {
        k::JaccardSortedU32Batch(set_pairs.data(), set_pairs.size(),
                                 jac.data());
        for (double v : jac) vector_sum += v;
      }
    });
    RLBENCH_CHECK(scalar_sum == vector_sum);
    results.push_back(r);
  }
  {
    // The ESDE triple: three scalar merge scans vs one family scan.
    KernelResult r{"esde_set_family", ops};
    double scalar_sum = 0.0, vector_sum = 0.0;
    r.scalar_seconds = BestOf(repeats, [&] {
      scalar_sum = 0.0;
      for (int round = 0; round < rounds; ++round) {
        for (const auto& p : pairs) {
          const auto& a = context.left().TokenSetAll(p.left);
          const auto& b = context.right().TokenSetAll(p.right);
          scalar_sum += text::CosineSimilarity(a, b) +
                        text::DiceSimilarity(a, b) +
                        text::JaccardSimilarity(a, b);
        }
      }
    });
    r.vector_seconds = BestOf(repeats, [&] {
      vector_sum = 0.0;
      for (int round = 0; round < rounds; ++round) {
        for (const auto& p : pairs) {
          k::SetSims sims = k::SetFamilySortedU32(
              store.TokenIdsAll(kL, p.left), store.TokenIdsAll(kR, p.right));
          vector_sum += sims.cosine + sims.dice + sims.jaccard;
        }
      }
    });
    RLBENCH_CHECK(scalar_sum == vector_sum);
    results.push_back(r);
  }
  {
    // Edit-distance family over the first attribute, Magellan's truncation.
    KernelResult r{"levenshtein_banded", ops};
    double scalar_sum = 0.0, vector_sum = 0.0;
    auto value = [&](size_t side, uint32_t record) {
      std::string_view v = store.Value(side, record, 0);
      return v.substr(0, std::min(v.size(), matchers::kMaxCharsForEditSims));
    };
    r.scalar_seconds = BestOf(repeats, [&] {
      scalar_sum = 0.0;
      for (int round = 0; round < rounds; ++round) {
        for (const auto& p : pairs) {
          scalar_sum +=
              text::LevenshteinSimilarity(value(kL, p.left), value(kR, p.right));
        }
      }
    });
    r.vector_seconds = BestOf(repeats, [&] {
      vector_sum = 0.0;
      for (int round = 0; round < rounds; ++round) {
        for (const auto& p : pairs) {
          vector_sum += k::LevenshteinSimilarityBanded(value(kL, p.left),
                                                       value(kR, p.right));
        }
      }
    });
    RLBENCH_CHECK(scalar_sum == vector_sum);
    results.push_back(r);
  }
  {
    KernelResult r{"jaro_winkler", ops};
    double scalar_sum = 0.0, vector_sum = 0.0;
    auto value = [&](size_t side, uint32_t record) {
      std::string_view v = store.Value(side, record, 0);
      return v.substr(0, std::min(v.size(), matchers::kMaxCharsForEditSims));
    };
    r.scalar_seconds = BestOf(repeats, [&] {
      scalar_sum = 0.0;
      for (int round = 0; round < rounds; ++round) {
        for (const auto& p : pairs) {
          scalar_sum +=
              text::JaroWinklerSimilarity(value(kL, p.left), value(kR, p.right));
        }
      }
    });
    r.vector_seconds = BestOf(repeats, [&] {
      vector_sum = 0.0;
      for (int round = 0; round < rounds; ++round) {
        for (const auto& p : pairs) {
          vector_sum +=
              k::JaroWinklerKernel(value(kL, p.left), value(kR, p.right));
        }
      }
    });
    RLBENCH_CHECK(scalar_sum == vector_sum);
    results.push_back(r);
  }
  {
    // Full Magellan row: the row-oriented reference (per-pair vectors,
    // CapTokens copies, per-pair strtod/tolower) vs the columnar fill.
    KernelResult r{"magellan_features", pairs.size()};
    size_t dim = store.num_attrs() * matchers::kMagellanFeaturesPerAttr;
    std::vector<float> row(dim);
    double scalar_sum = 0.0, vector_sum = 0.0;
    r.scalar_seconds = BestOf(repeats, [&] {
      scalar_sum = 0.0;
      for (const auto& p : pairs) {
        auto features =
            matchers::MagellanFeatures(context.left(), context.right(), p);
        for (float f : features) scalar_sum += f;
      }
    });
    r.vector_seconds = BestOf(repeats, [&] {
      vector_sum = 0.0;
      for (const auto& p : pairs) {
        matchers::MagellanFeaturesColumnar(store, p, row);
        for (float f : row) vector_sum += f;
      }
    });
    RLBENCH_CHECK(scalar_sum == vector_sum);
    results.push_back(r);
  }
  {
    // Batched MLP scoring vs the per-row loop, on a trained net.
    Rng rng(7);
    constexpr size_t kRows = 4000, kDim = 36;
    auto random_dataset = [&](size_t rows) {
      ml::Dataset data(kDim);
      std::vector<float> row(kDim);
      for (size_t i = 0; i < rows; ++i) {
        for (float& x : row) x = static_cast<float>(rng.Gaussian());
        data.Add(row, rng.Bernoulli(0.4));
      }
      return data;
    };
    ml::MlpOptions options;
    options.epochs = 2;
    ml::Mlp mlp(options);
    ml::Dataset train = random_dataset(600);
    ml::Dataset valid = random_dataset(100);
    mlp.Fit(train, valid);
    ml::Dataset test = random_dataset(kRows);
    KernelResult r{"mlp_batch_score", kRows};
    std::vector<double> scalar_scores(kRows), vector_scores(kRows);
    r.scalar_seconds = BestOf(repeats, [&] {
      for (size_t i = 0; i < kRows; ++i) {
        scalar_scores[i] = mlp.PredictScore(test.row(i));
      }
    });
    r.vector_seconds = BestOf(repeats, [&] {
      mlp.PredictScoresBatch(test, vector_scores);
    });
    RLBENCH_CHECK(scalar_scores == vector_scores);
    results.push_back(r);
  }
  run.manifest().EndPhase();

  std::string json = "{\n  \"bench\": \"kernels\",\n";
  json += "  \"dataset\": \"" + spec->id + "\",\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "  \"scale\": %.3f,\n  \"pairs\": %zu,\n",
                scale, pairs.size());
  json += buf;
  json += "  \"kernels\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    json += KernelJson(results[i], i + 1 == results.size());
    double speedup = results[i].vector_seconds > 0.0
                         ? results[i].scalar_seconds / results[i].vector_seconds
                         : 0.0;
    std::printf("%-20s scalar=%.4fs vectorized=%.4fs speedup=%.2fx\n",
                results[i].name, results[i].scalar_seconds,
                results[i].vector_seconds, speedup);
  }
  json += "  ]\n}\n";
  std::string path = benchutil::ResultsDir() + "/BENCH_kernels.json";
  Status write = data::FileSource::WriteAtomic(path, json);
  if (!write.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 write.ToString().c_str());
    run.Finish();
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  run.Finish();
  return 0;
}
