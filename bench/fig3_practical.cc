// Figure 3: the aggregate practical measures per established dataset —
// non-linear boost (NLB) and learning-based margin (LBM). Reuses the score
// cache written by table4_matchers when available; otherwise recomputes
// with the same defaults.
//
// Flags: --max-pairs, --datasets, --epoch-scale (only used on recompute),
//        --recompute (ignore the cache).
#include <cstdio>
#include <iostream>
#include <map>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/practical.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "matchers/registry.h"

using namespace rlbench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);

  benchutil::BenchRun run("fig3_practical");

  std::vector<std::string> fallback;
  for (const auto& spec : datagen::ExistingBenchmarks()) {
    fallback.push_back(spec.id);
  }
  auto ids = benchutil::SelectIds(flags, fallback);
  run.manifest().SetDatasets(ids);

  bool recompute = flags.GetBool("recompute", false);
  run.manifest().AddConfig("recompute", static_cast<int64_t>(recompute));
  auto cached =
      recompute ? std::nullopt : benchutil::LoadScores("table4_scores");
  std::vector<benchutil::CachedScore> scores;
  size_t failed = 0;
  if (cached) {
    scores = *cached;
    std::printf("(using cached scores from table4_matchers)\n");
  } else {
    size_t max_pairs = static_cast<size_t>(flags.GetInt("max-pairs", 4000));
    double epoch_scale = flags.GetDouble("epoch-scale", 1.0);
    run.manifest().AddConfig("max_pairs", static_cast<int64_t>(max_pairs));
    run.manifest().AddConfig("epoch_scale", epoch_scale);
    failed = benchutil::ForEachDataset(
        run, ids, [&](const std::string& id) -> Status {
          const auto* spec = datagen::FindExistingBenchmark(id);
          if (spec == nullptr) {
            return Status::NotFound("unknown dataset id " + id);
          }
          double scale = benchutil::AutoScale(spec->total_pairs, max_pairs);
          std::fprintf(stderr, "[fig3] %s (scale %.3f)...\n", id.c_str(),
                       scale);
          auto task = datagen::BuildExistingBenchmark(*spec, scale);
          matchers::MatchingContext context(&task);
          matchers::RegistryOptions registry;
          registry.epoch_scale = epoch_scale;
          auto lineup = matchers::BuildMatcherLineup(registry);
          for (const auto& score : core::ScoreLineup(context, &lineup)) {
            scores.push_back({id, score.name, score.group, score.f1});
          }
          return Status::OK();
        });
    benchutil::SaveScores("table4_scores", scores);
  }

  TablePrinter table(
      "Figure 3 (data series): non-linear boost and learning-based margin");
  table.SetHeader({"dataset", "NLB%", "LBM%", "best nonlinear", "best linear"});
  run.manifest().BeginPhase("practical");
  for (const auto& id : ids) {
    std::vector<core::MatcherScore> dataset_scores;
    for (const auto& row : scores) {
      if (row.dataset == id) {
        dataset_scores.push_back({row.matcher, row.group, row.f1});
      }
    }
    if (dataset_scores.empty()) continue;
    auto practical = core::ComputePractical(dataset_scores);
    table.AddRow({id, benchutil::Pct(practical.non_linear_boost),
                  benchutil::Pct(practical.learning_based_margin),
                  benchutil::F3(practical.best_nonlinear_f1),
                  benchutil::F3(practical.best_linear_f1)});
  }
  run.manifest().EndPhase();
  table.Print(std::cout);
  std::printf(
      "\nReading: a challenging benchmark needs both NLB and LBM above 5%%\n"
      "(ideally 10%%); the paper marks only Ds4, Ds6, Dd4 and Dt1.\n");
  run.Finish();
  return failed == ids.size() ? 1 : 0;
}
