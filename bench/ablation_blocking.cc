// Ablation of Section VI step 2: how the selected recall level shapes the
// resulting benchmark. For one source dataset, sweep the blocker's K and
// report PC, PQ, the imbalance ratio of the resulting candidate set, and
// its degree of linearity — the loose-vs-strict blocking trade-off the
// paper's introduction motivates.
//
// Flags: --dataset=Dn6, --scale=0.2, --kmax=32
#include <cstdio>
#include <unordered_set>
#include <iostream>

#include "bench_util.h"
#include "block/deepblocker_sim.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "core/linearity.h"
#include "data/split.h"
#include "datagen/catalog.h"
#include "datagen/source_builder.h"

using namespace rlbench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string id = flags.GetString("dataset", "Dn6");
  double scale = flags.GetDouble("scale", 0.2);

  benchutil::BenchRun run("ablation_blocking");
  run.manifest().AddDataset(id);
  run.manifest().AddConfig("scale", scale);

  const auto* spec = datagen::FindSourceDataset(id);
  if (spec == nullptr) {
    // Single-dataset bench: nothing to degrade to, but the manifest still
    // records what failed before the process exits non-zero.
    std::fprintf(stderr, "unknown source dataset %s\n", id.c_str());
    benchutil::RecordDatasetPhase(run, id, 0.0,
                                  Status::NotFound("unknown dataset id " + id));
    run.Finish();
    return 1;
  }
  auto source = datagen::BuildSourceDataset(*spec, scale);
  block::DeepBlockerSim blocker(48, 3 ^ spec->seed);

  TablePrinter table("Ablation: blocking depth K vs benchmark difficulty (" +
                     id + ")");
  table.SetHeader({"K", "PC", "PQ", "|C|", "IR", "F1max_CS"});

  run.manifest().BeginPhase("sweep");
  for (int k : {1, 2, 4, 8, 16, 32}) {
    block::BlockerConfig config;
    config.attr = -1;
    config.clean = true;
    config.index_d2 = source.d2.size() <= source.d1.size();
    config.k = k;
    auto run = blocker.Run(source, config);

    // Label the candidates and measure the resulting task's linearity.
    std::unordered_set<uint64_t> truth;
    for (const auto& [l, r] : source.matches) {
      truth.insert((static_cast<uint64_t>(l) << 32) | r);
    }
    std::vector<data::LabeledPair> pairs;
    for (const auto& [l, r] : run.candidates) {
      pairs.push_back(
          {l, r, truth.count((static_cast<uint64_t>(l) << 32) | r) != 0});
    }
    data::MatchingTask task(id, source.d1, source.d2);
    auto split = data::SplitPairs(pairs, data::SplitRatio{3, 1, 1}, 11);
    task.set_train(std::move(split.train));
    task.set_valid(std::move(split.valid));
    task.set_test(std::move(split.test));
    matchers::MatchingContext context(&task);
    auto linearity = core::ComputeLinearity(context);
    auto stats = task.TotalStats();
    table.AddRow({std::to_string(k), benchutil::F3(run.metrics.pair_completeness),
                  benchutil::F3(run.metrics.pairs_quality),
                  FormatWithCommas(static_cast<int64_t>(stats.total)),
                  benchutil::Pct(stats.ImbalanceRatio()) + "%",
                  benchutil::F3(linearity.f1_cosine)});
  }
  run.manifest().EndPhase();
  table.Print(std::cout);
  std::printf(
      "\nReading: small K = strict blocking = only near-neighbour negatives\n"
      "(hard, balanced); large K = loose blocking = easy negatives flood in\n"
      "and the imbalance explodes while recall saturates.\n");
  run.Finish();
  return 0;
}
