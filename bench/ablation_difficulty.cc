// Ablation (and the paper's stated future work, Section VII): a continuum
// of benchmark difficulty. Sweeps the two difficulty knobs of the
// synthetic substrate — duplicate corruption (match_noise) and the hard
// negative fraction — and reports how the a-priori measures and the best
// linear matcher respond. This demonstrates the knob -> difficulty mapping
// the catalog calibration relies on.
//
// Flags: --pairs=<n> (default 2500), --domain=product|bibliographic|...
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "core/complexity.h"
#include "core/linearity.h"
#include "datagen/task_builder.h"
#include "matchers/esde.h"

using namespace rlbench;

namespace {

datagen::Domain ParseDomain(const std::string& name) {
  for (auto domain :
       {datagen::Domain::kBibliographic, datagen::Domain::kProduct,
        datagen::Domain::kRestaurant, datagen::Domain::kSong,
        datagen::Domain::kBeer, datagen::Domain::kMovie,
        datagen::Domain::kCompanyText, datagen::Domain::kProductText}) {
    if (name == datagen::DomainName(domain)) return domain;
  }
  return datagen::Domain::kProduct;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  size_t pairs = static_cast<size_t>(flags.GetInt("pairs", 2500));
  datagen::Domain domain =
      ParseDomain(flags.GetString("domain", "product"));

  benchutil::BenchRun run("ablation_difficulty");
  run.manifest().AddConfig("pairs", static_cast<int64_t>(pairs));
  run.manifest().AddConfig("domain", std::string(datagen::DomainName(domain)));

  TablePrinter table(
      std::string("Ablation: difficulty continuum on the '") +
      datagen::DomainName(domain) + "' domain");
  table.SetHeader({"noise", "hard-neg", "F1max_CS", "cx avg", "SA-ESDE",
                   "SBQ-ESDE"});

  run.manifest().BeginPhase("sweep");
  for (double noise : {0.05, 0.2, 0.35, 0.5, 0.65}) {
    for (double hard : {0.1, 0.5}) {
      datagen::ExistingBenchmarkSpec spec;
      spec.id = "sweep";
      spec.origin = "sweep";
      spec.domain = domain;
      spec.num_attrs = 0;  // full domain schema
      spec.total_pairs = pairs;
      spec.positives = pairs / 8;
      spec.match_noise = noise;
      spec.hard_negative_fraction = hard;
      spec.seed = 4242;
      auto task = datagen::BuildExistingBenchmark(spec, 1.0);
      matchers::MatchingContext context(&task);

      auto linearity = core::ComputeLinearity(context);
      core::ComplexityOptions cx_options;
      cx_options.max_points = 1200;
      auto complexity = core::ComputeComplexity(
          core::PairFeaturePoints(context), cx_options);
      matchers::EsdeMatcher sa(matchers::EsdeVariant::kSchemaAgnostic);
      matchers::EsdeMatcher sbq(matchers::EsdeVariant::kSchemaBasedQgram);
      table.AddRow({FormatDouble(noise, 2), FormatDouble(hard, 2),
                    benchutil::F3(linearity.f1_cosine),
                    benchutil::F3(complexity.Average()),
                    benchutil::Pct(sa.TestF1(context)),
                    benchutil::Pct(sbq.TestF1(context))});
    }
    table.AddSeparator();
  }
  run.manifest().EndPhase();
  table.Print(std::cout);
  std::printf(
      "\nReading: linearity falls and complexity rises monotonically in the\n"
      "noise knob; the hard-negative knob steepens both — the controllable\n"
      "difficulty continuum the paper proposes as future work.\n");
  run.Finish();
  return 0;
}
