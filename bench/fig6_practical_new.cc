// Figure 6 (the paper's second NLB/LBM chart, referenced in Section VI-A):
// non-linear boost and learning-based margin for the new benchmarks.
// Reuses table6's score cache when available.
//
// Flags: --scale, --recall, --kmax, --max-pairs, --epoch-scale,
//        --recompute, --datasets=...
#include <cstdio>
#include <iostream>
#include <utility>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/benchmark_builder.h"
#include "core/practical.h"
#include "datagen/catalog.h"
#include "matchers/registry.h"

using namespace rlbench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);

  benchutil::BenchRun run("fig6_practical_new");

  std::vector<std::string> fallback;
  for (const auto& spec : datagen::SourceDatasets()) {
    fallback.push_back(spec.id);
  }
  auto ids = benchutil::SelectIds(flags, fallback);
  run.manifest().SetDatasets(ids);

  bool recompute = flags.GetBool("recompute", false);
  run.manifest().AddConfig("recompute", static_cast<int64_t>(recompute));
  auto cached =
      recompute ? std::nullopt : benchutil::LoadScores("table6_scores");
  std::vector<benchutil::CachedScore> scores;
  size_t failed = 0;
  if (cached) {
    scores = *cached;
    std::printf("(using cached scores from table6_matchers_new)\n");
  } else {
    double scale = flags.GetDouble("scale", 0.35);
    double recall = flags.GetDouble("recall", 0.9);
    int k_max = static_cast<int>(flags.GetInt("kmax", 64));
    double epoch_scale = flags.GetDouble("epoch-scale", 1.0);
    run.manifest().AddConfig("scale", scale);
    run.manifest().AddConfig("recall", recall);
    run.manifest().AddConfig("kmax", static_cast<int64_t>(k_max));
    run.manifest().AddConfig("epoch_scale", epoch_scale);
    failed = benchutil::ForEachDataset(
        run, ids, [&](const std::string& id) -> Status {
          const auto* spec = datagen::FindSourceDataset(id);
          if (spec == nullptr) {
            return Status::NotFound("unknown dataset id " + id);
          }
          std::fprintf(stderr, "[fig6] %s...\n", id.c_str());
          core::NewBenchmarkOptions options;
          options.scale = scale;
          options.min_recall = recall;
          options.k_max = k_max;
          auto built = core::BuildNewBenchmark(*spec, options);
          if (!built.ok()) return built.status();
          core::NewBenchmark benchmark = std::move(built).value();
          benchutil::CapPairs(
              &benchmark.task,
              static_cast<size_t>(flags.GetInt("max-pairs", 4000)));
          matchers::MatchingContext context(&benchmark.task);
          matchers::RegistryOptions registry;
          registry.epoch_scale = epoch_scale;
          auto lineup = matchers::BuildMatcherLineup(registry);
          for (const auto& score : core::ScoreLineup(context, &lineup)) {
            scores.push_back({id, score.name, score.group, score.f1});
          }
          return Status::OK();
        });
    benchutil::SaveScores("table6_scores", scores);
  }

  TablePrinter table(
      "Figure 6 (data series): NLB and LBM per new benchmark");
  table.SetHeader({"dataset", "NLB%", "LBM%", "best nonlinear",
                   "best linear"});
  run.manifest().BeginPhase("practical");
  for (const auto& id : ids) {
    std::vector<core::MatcherScore> dataset_scores;
    for (const auto& row : scores) {
      if (row.dataset == id) {
        dataset_scores.push_back({row.matcher, row.group, row.f1});
      }
    }
    if (dataset_scores.empty()) continue;
    auto practical = core::ComputePractical(dataset_scores);
    table.AddRow({id, benchutil::Pct(practical.non_linear_boost),
                  benchutil::Pct(practical.learning_based_margin),
                  benchutil::F3(practical.best_nonlinear_f1),
                  benchutil::F3(practical.best_linear_f1)});
  }
  run.manifest().EndPhase();
  table.Print(std::cout);
  std::printf(
      "\nReading: the paper finds both measures well above 5%% for Dn1,\n"
      "Dn2, Dn6, Dn7 and near zero for the linearly separable Dn3/Dn8.\n");
  run.Finish();
  return failed == ids.size() ? 1 : 0;
}
