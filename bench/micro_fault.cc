// Fault-layer overhead microbenchmark: the failpoint contract is "free
// when disabled" — one relaxed atomic load per evaluation. This harness
// measures that cost directly (ns per disabled evaluation), the armed but
// never-firing cost (probability 0), and the end-to-end import path with
// the layer disabled, then records everything to
// bench_results/BENCH_fault.json for regression tracking.
//
// Flags: --evals (default 5000000), --repeats (default 5: best-of),
//        --scale (default 0.5, export/import workload size)
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_util.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "data/benchmark_io.h"
#include "data/file_source.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "fault/failpoint.h"

using namespace rlbench;

namespace {

// Best-of-`repeats` wall time of one closure.
template <typename Fn>
double BestOf(int repeats, const Fn& fn) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch watch;
    fn();
    double elapsed = watch.ElapsedSeconds();
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

// One failpoint-evaluation loop; returns the hit count so the optimizer
// cannot drop the evaluations.
size_t EvalLoop(size_t evals) {
  size_t hits = 0;
  for (size_t i = 0; i < evals; ++i) {
    if (RLBENCH_FAULT_POINT("bench/micro/probe")) ++hits;
  }
  return hits;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  size_t evals = static_cast<size_t>(flags.GetInt("evals", 5000000));
  int repeats = static_cast<int>(flags.GetInt("repeats", 5));
  double scale = flags.GetDouble("scale", 0.5);

  benchutil::BenchRun run("micro_fault");
  run.manifest().AddConfig("evals", static_cast<int64_t>(evals));
  run.manifest().AddConfig("repeats", static_cast<int64_t>(repeats));
  run.manifest().AddConfig("scale", scale);

  // 1. Disabled: the zero-cost contract under test.
  fault::Clear();
  size_t sink = 0;
  run.manifest().BeginPhase("disabled_evals");
  double disabled_seconds = BestOf(repeats, [&] { sink += EvalLoop(evals); });
  run.manifest().EndPhase();
  RLBENCH_CHECK_MSG(sink == 0, "disabled failpoint produced hits");

  // 2. Armed at probability 0: full spec matching, decision drawn, no hit.
  RLBENCH_CHECK(fault::SetSpec("seed=1;bench/micro/probe=io:0").ok());
  run.manifest().BeginPhase("armed_zero_prob_evals");
  double armed_seconds = BestOf(repeats, [&] { sink += EvalLoop(evals); });
  run.manifest().EndPhase();
  fault::Clear();
  RLBENCH_CHECK_MSG(sink == 0, "probability-0 failpoint produced hits");

  // 3. End-to-end: the hottest failpoint-bearing path (CSV export/import)
  //    with the layer disabled — the number the ≤1% regression gate on the
  //    real benches protects.
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds5"), scale);
  std::string scratch = benchutil::ResultsDir() + "/micro_fault_scratch";
  run.manifest().BeginPhase("export");
  double export_seconds = BestOf(repeats, [&] {
    Status status = data::ExportBenchmark(task, scratch);
    RLBENCH_CHECK_MSG(status.ok(), "export failed");
  });
  run.manifest().EndPhase();
  run.manifest().BeginPhase("import");
  double import_seconds = BestOf(repeats, [&] {
    auto loaded = data::ImportBenchmark(scratch);
    RLBENCH_CHECK_MSG(loaded.ok(), "import failed");
  });
  run.manifest().EndPhase();
  std::error_code ec;
  std::filesystem::remove_all(scratch, ec);

  double disabled_ns = disabled_seconds / static_cast<double>(evals) * 1e9;
  double armed_ns = armed_seconds / static_cast<double>(evals) * 1e9;
  std::printf("disabled failpoint: %.3f ns/eval\n", disabled_ns);
  std::printf("armed (prob 0):     %.3f ns/eval\n", armed_ns);
  std::printf("export %.4fs, import %.4fs (scale %.2f, faults off)\n",
              export_seconds, import_seconds, scale);

  char buf[128];
  std::string json = "{\n  \"bench\": \"fault_overhead\",\n";
  std::snprintf(buf, sizeof(buf), "  \"evals\": %zu,\n  \"repeats\": %d,\n",
                evals, repeats);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"disabled_ns_per_eval\": %.4f,\n"
                "  \"armed_zero_prob_ns_per_eval\": %.4f,\n",
                disabled_ns, armed_ns);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"export_seconds\": %.6f,\n  \"import_seconds\": %.6f,\n"
                "  \"scale\": %.3f\n}\n",
                export_seconds, import_seconds, scale);
  json += buf;
  std::string path = benchutil::ResultsDir() + "/BENCH_fault.json";
  Status write = data::FileSource::WriteAtomic(path, json);
  if (!write.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 write.ToString().c_str());
    run.Finish();
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  run.Finish();
  return 0;
}
