// Scaling microbenchmark for the deterministic parallel layer: times the
// two hottest call sites — the O(n^2) complexity measures and Magellan
// batch feature extraction — at 1, 2, 4, and 8 threads, verifies the
// results are bit-identical across the sweep, and records the trajectory
// to bench_results/BENCH_parallel.json. Speedups are honest wall-clock
// numbers; on a 1-core host they hover near 1.0 by construction (the
// pool adds threads, the kernel has nowhere to run them).
//
// Flags: --scale (default 0.4), --sample (default 1500), --repeats
//        (default 3: best-of), --dataset (default Ds1)
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "data/file_source.h"
#include "core/complexity.h"
#include "core/linearity.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "matchers/context.h"
#include "obs/metrics.h"

using namespace rlbench;

namespace {

constexpr size_t kThreadSweep[] = {1, 2, 4, 8};

// Best-of-`repeats` wall time of one closure.
template <typename Fn>
double BestOf(int repeats, const Fn& fn) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch watch;
    fn();
    double elapsed = watch.ElapsedSeconds();
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

std::string WorkloadJson(const char* name, const std::vector<double>& seconds,
                         bool last) {
  char buf[64];
  std::string out = "    {\"name\": \"" + std::string(name) + "\", \"times\": [";
  for (size_t i = 0; i < seconds.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s{\"threads\": %zu, \"seconds\": %.6f}",
                  i == 0 ? "" : ", ", kThreadSweep[i], seconds[i]);
    out += buf;
  }
  out += "], \"speedup_vs_1\": [";
  for (size_t i = 0; i < seconds.size(); ++i) {
    double speedup = seconds[i] > 0.0 ? seconds[0] / seconds[i] : 0.0;
    std::snprintf(buf, sizeof(buf), "%s%.3f", i == 0 ? "" : ", ", speedup);
    out += buf;
  }
  out += "]}";
  out += last ? "\n" : ",\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 0.4);
  size_t sample = static_cast<size_t>(flags.GetInt("sample", 1500));
  int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  std::string dataset = flags.GetString("dataset", "Ds1");

  // Metrics are always on here: the scaling report doubles as the smoke
  // test for the feature-cache counters.
  obs::Metrics::SetEnabled(true);
  benchutil::BenchRun run("micro_parallel");
  run.manifest().AddDataset(dataset);
  run.manifest().AddConfig("scale", scale);
  run.manifest().AddConfig("sample", static_cast<int64_t>(sample));
  run.manifest().AddConfig("repeats", static_cast<int64_t>(repeats));

  const auto* spec = datagen::FindExistingBenchmark(dataset);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown dataset id %s\n", dataset.c_str());
    benchutil::RecordDatasetPhase(
        run, dataset, 0.0, Status::NotFound("unknown dataset id " + dataset));
    run.Finish();
    return 1;
  }
  auto task = datagen::BuildExistingBenchmark(*spec, scale);

  // Feature points are computed once, up front, so the complexity workload
  // times only ComputeComplexity itself.
  SetParallelThreads(1);
  run.manifest().BeginPhase("warm");
  matchers::MatchingContext warm_context(&task);
  auto points = core::PairFeaturePoints(warm_context);
  run.manifest().EndPhase();
  core::ComplexityOptions options;
  options.max_points = sample;

  std::vector<double> complexity_seconds;
  std::vector<double> feature_seconds;
  double reference_average = 0.0;
  run.manifest().BeginPhase("sweep");
  for (size_t threads : kThreadSweep) {
    SetParallelThreads(threads);

    double average = 0.0;
    complexity_seconds.push_back(BestOf(repeats, [&] {
      average = core::ComputeComplexity(points, options).Average();
    }));
    // The determinism contract, spot-checked on real work: every thread
    // count must reproduce the 1-thread aggregate bit for bit.
    if (threads == 1) reference_average = average;
    RLBENCH_CHECK_MSG(average == reference_average,
                      "complexity average drifted across thread counts");

    feature_seconds.push_back(BestOf(repeats, [&] {
      matchers::MatchingContext context(&task);
      context.MagellanTrain();  // forces the parallel batch extraction
    }));

    std::printf("threads=%zu complexity=%.3fs features=%.3fs\n", threads,
                complexity_seconds.back(), feature_seconds.back());
  }
  run.manifest().EndPhase();
  SetParallelThreads(0);

  // Satellite report: how well the two-phase RecordFeatureCache served the
  // run. Warmed counts come from the bulk fills, hits/misses from the
  // accessors on the hot paths.
  obs::Metrics& metrics = obs::Metrics::Instance();
  auto hits = metrics.GetCounter("feature_cache/hits").Value();
  auto misses = metrics.GetCounter("feature_cache/misses").Value();
  auto token_warm = metrics.GetCounter("feature_cache/warmed_token_records").Value();
  auto qgram_warm = metrics.GetCounter("feature_cache/warmed_qgram_records").Value();
  double entries = metrics.GetGauge("feature_cache/entries").Value();
  std::printf(
      "feature cache: %llu hits, %llu misses, %.0f entries "
      "(%llu token / %llu qgram records warmed)\n",
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(misses), entries,
      static_cast<unsigned long long>(token_warm),
      static_cast<unsigned long long>(qgram_warm));

  std::string path = benchutil::ResultsDir() + "/BENCH_parallel.json";
  char buf[256];
  std::string json = "{\n";
  json += "  \"bench\": \"parallel_scaling\",\n";
  json += "  \"dataset\": \"" + spec->id + "\",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"scale\": %.3f,\n  \"sample\": %zu,\n"
                "  \"labelled_pairs\": %zu,\n"
                "  \"hardware_concurrency\": %zu,\n",
                scale, sample, points.size(),
                static_cast<size_t>(std::thread::hardware_concurrency()));
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"feature_cache\": {\"hits\": %llu, \"misses\": %llu, "
                "\"entries\": %.0f, \"token_records_warmed\": %llu, "
                "\"qgram_records_warmed\": %llu},\n",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses), entries,
                static_cast<unsigned long long>(token_warm),
                static_cast<unsigned long long>(qgram_warm));
  json += buf;
  json += "  \"workloads\": [\n";
  json += WorkloadJson("complexity_measures", complexity_seconds, false);
  json += WorkloadJson("magellan_features", feature_seconds, true);
  json += "  ]\n}\n";
  Status write = data::FileSource::WriteAtomic(path, json);
  if (!write.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 write.ToString().c_str());
    run.Finish();
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  run.Finish();
  return 0;
}
