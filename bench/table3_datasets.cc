// Table III: characteristics of the 13 established benchmarks.
// Prints |D1|, |D2|, |A|, the labelled / positive / negative instance
// counts of the training and testing splits, and the imbalance ratio.
//
// Flags: --scale=<f> (default 1.0; applies to pair counts),
//        --datasets=Ds1,... (default: all 13).
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"

using namespace rlbench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 1.0);

  benchutil::BenchRun run("table3_datasets");
  run.manifest().AddConfig("scale", scale);

  std::vector<std::string> fallback;
  for (const auto& spec : datagen::ExistingBenchmarks()) {
    fallback.push_back(spec.id);
  }
  auto ids = benchutil::SelectIds(flags, fallback);
  run.manifest().SetDatasets(ids);

  TablePrinter table(
      "Table III: The established datasets for DL-based matching algorithms "
      "(synthetic reconstruction, scale=" +
      FormatDouble(scale, 2) + ")");
  table.SetHeader({"id", "origin", "domain", "|D1|", "|D2|", "|A|", "|Itr|",
                   "|Ptr|", "|Ntr|", "|Ite|", "|Pte|", "|Nte|", "IR"});

  size_t failed = benchutil::ForEachDataset(
      run, ids, [&](const std::string& id) -> Status {
        const auto* spec = datagen::FindExistingBenchmark(id);
        if (spec == nullptr) {
          return Status::NotFound("unknown dataset id " + id);
        }
        auto task = datagen::BuildExistingBenchmark(*spec, scale);
        auto train = task.TrainStats();
        auto test = task.TestStats();
        auto total = task.TotalStats();
        table.AddRow(
            {spec->id, spec->origin, datagen::DomainName(spec->domain),
             FormatWithCommas(static_cast<int64_t>(task.left().size())),
             FormatWithCommas(static_cast<int64_t>(task.right().size())),
             std::to_string(spec->num_attrs),
             FormatWithCommas(static_cast<int64_t>(train.total)),
             FormatWithCommas(static_cast<int64_t>(train.positives)),
             FormatWithCommas(static_cast<int64_t>(train.negatives)),
             FormatWithCommas(static_cast<int64_t>(test.total)),
             FormatWithCommas(static_cast<int64_t>(test.positives)),
             FormatWithCommas(static_cast<int64_t>(test.negatives)),
             benchutil::Pct(total.ImbalanceRatio()) + "%"});
        return Status::OK();
      });
  table.Print(std::cout);
  run.Finish();
  return failed == ids.size() ? 1 : 0;
}
