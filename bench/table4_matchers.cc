// Table IV: F1 of every matcher on every established benchmark —
// (a) the simulated DL matchers with two epoch settings each,
// (b) Magellan x4 and ZeroER, (c) the six linear ESDE matchers.
// Scores are cached under bench_results/ for the Figure 3 harness.
//
// Flags: --max-pairs=<n> (default 4000; the matcher sweep is the expensive
//        part of the reproduction), --datasets=..., --epoch-scale=<f>.
#include <cstdio>
#include <iostream>
#include <map>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "core/practical.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "matchers/registry.h"

using namespace rlbench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  size_t max_pairs = static_cast<size_t>(flags.GetInt("max-pairs", 4000));
  double epoch_scale = flags.GetDouble("epoch-scale", 1.0);

  benchutil::BenchRun run("table4_matchers");
  run.manifest().AddConfig("max_pairs", static_cast<int64_t>(max_pairs));
  run.manifest().AddConfig("epoch_scale", epoch_scale);

  std::vector<std::string> fallback;
  for (const auto& spec : datagen::ExistingBenchmarks()) {
    fallback.push_back(spec.id);
  }
  auto ids = benchutil::SelectIds(flags, fallback);
  run.manifest().SetDatasets(ids);

  // matcher name -> dataset -> F1 (insertion-ordered rows).
  std::vector<std::string> row_order;
  std::map<std::string, std::map<std::string, double>> matrix;
  std::map<std::string, matchers::MatcherGroup> groups;
  std::vector<benchutil::CachedScore> cache;

  size_t failed = benchutil::ForEachDataset(
      run, ids, [&](const std::string& id) -> Status {
        const auto* spec = datagen::FindExistingBenchmark(id);
        if (spec == nullptr) {
          return Status::NotFound("unknown dataset id " + id);
        }
        double scale = benchutil::AutoScale(spec->total_pairs, max_pairs);
        std::fprintf(stderr, "[table4] %s (scale %.3f)...\n", id.c_str(),
                     scale);
        auto task = datagen::BuildExistingBenchmark(*spec, scale);
        matchers::MatchingContext context(&task);

        matchers::RegistryOptions registry;
        registry.epoch_scale = epoch_scale;
        auto lineup = matchers::BuildMatcherLineup(registry);
        auto scores = core::ScoreLineup(context, &lineup);
        for (const auto& score : scores) {
          if (matrix.find(score.name) == matrix.end()) {
            row_order.push_back(score.name);
          }
          matrix[score.name][id] = score.f1;
          groups[score.name] = score.group;
          cache.push_back({id, score.name, score.group, score.f1});
        }
        return Status::OK();
      });

  TablePrinter table("Table IV: F1 per method and dataset (x100)");
  std::vector<std::string> header = {"method"};
  header.insert(header.end(), ids.begin(), ids.end());
  table.SetHeader(std::move(header));

  auto section = [&](matchers::MatcherGroup group, const char* label) {
    table.AddRow({label});
    for (const auto& name : row_order) {
      if (groups[name] != group) continue;
      std::vector<std::string> row = {name};
      for (const auto& id : ids) {
        auto it = matrix[name].find(id);
        row.push_back(it == matrix[name].end() ? "-"
                                               : benchutil::Pct(it->second));
      }
      table.AddRow(std::move(row));
    }
    table.AddSeparator();
  };
  section(matchers::MatcherGroup::kDeepLearning,
          "(a) DL-based matching algorithms");
  section(matchers::MatcherGroup::kClassicMl,
          "(b) Non-neural, non-linear ML-based matching algorithms");
  section(matchers::MatcherGroup::kLinear,
          "(c) Non-neural, linear supervised matching algorithms");
  section(matchers::MatcherGroup::kZeroShot,
          "(d) Training-free zero-shot matching algorithms");
  table.Print(std::cout);

  benchutil::SaveScores("table4_scores", cache);
  std::printf("\nScores cached to %s/table4_scores.csv (used by "
              "fig3_practical).\n",
              benchutil::ResultsDir().c_str());
  run.Finish();
  return failed == ids.size() ? 1 : 0;
}
