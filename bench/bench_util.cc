#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/strings.h"
#include "data/csv.h"
#include "data/file_source.h"
#include "fault/failpoint.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace rlbench::benchutil {

double AutoScale(size_t total_pairs, size_t max_pairs) {
  if (total_pairs <= max_pairs) return 1.0;
  return static_cast<double>(max_pairs) / static_cast<double>(total_pairs);
}

std::vector<std::string> SelectIds(const Flags& flags,
                                   const std::vector<std::string>& fallback) {
  if (!flags.Has("datasets")) return fallback;
  return SplitAny(flags.GetString("datasets", ""), ",");
}

std::string Pct(double fraction) { return FormatDouble(100.0 * fraction, 2); }

std::string F3(double value) { return FormatDouble(value, 3); }

std::string ResultsDir() {
  std::filesystem::path dir = "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir.string();
}

void SaveScores(const std::string& name,
                const std::vector<CachedScore>& rows) {
  std::vector<std::vector<std::string>> csv_rows;
  csv_rows.push_back({"dataset", "matcher", "group", "f1"});
  for (const auto& row : rows) {
    csv_rows.push_back({row.dataset, row.matcher,
                        std::to_string(static_cast<int>(row.group)),
                        FormatDouble(row.f1, 6)});
  }
  std::string path = ResultsDir() + "/" + name + ".csv";
  Status status = data::FileSource::WriteAtomic(path, data::WriteCsv(csv_rows));
  if (!status.ok()) {
    std::fprintf(stderr, "bench: cannot save scores %s: %s\n", path.c_str(),
                 status.ToString().c_str());
  }
}

namespace {

// Strict numeric parsers for the score cache; any damage to the cache file
// degrades to "no cache" (nullopt) rather than a throw.
bool ParseIntField(const std::string& text, int* out) {
  if (text.empty()) return false;
  size_t i = text[0] == '-' ? 1 : 0;
  if (i == text.size()) return false;
  long long value = 0;
  for (; i < text.size(); ++i) {
    if (text[i] < '0' || text[i] > '9') return false;
    value = value * 10 + (text[i] - '0');
    if (value > 1000000) return false;
  }
  *out = static_cast<int>(text[0] == '-' ? -value : value);
  return true;
}

bool ParseDoubleField(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

}  // namespace

std::optional<std::vector<CachedScore>> LoadScores(const std::string& name) {
  auto text = data::FileSource::ReadAll(ResultsDir() + "/" + name + ".csv");
  if (!text.ok()) return std::nullopt;
  auto rows = data::ParseCsv(*text);
  if (!rows.ok() || rows->size() < 2) return std::nullopt;
  std::vector<CachedScore> scores;
  for (size_t i = 1; i < rows->size(); ++i) {
    const auto& row = (*rows)[i];
    if (row.size() < 4) return std::nullopt;
    CachedScore score;
    score.dataset = row[0];
    score.matcher = row[1];
    int group = 0;
    if (!ParseIntField(row[2], &group)) return std::nullopt;
    score.group = static_cast<matchers::MatcherGroup>(group);
    if (!ParseDoubleField(row[3], &score.f1)) return std::nullopt;
    scores.push_back(std::move(score));
  }
  return scores;
}

BenchRun::BenchRun(const char* name) : manifest_(name) {
  obs::SetCurrentThreadName("main");
}

BenchRun::~BenchRun() { Finish(); }

void BenchRun::Finish() {
  if (finished_) return;
  finished_ = true;
  manifest_.set_threads(ParallelThreadCount());
  manifest_.set_hardware_concurrency(std::thread::hardware_concurrency());
  manifest_.set_peak_rss_bytes(obs::PeakRssBytes());
  std::string trace_path = obs::WriteTraceIfEnabled();
  if (!trace_path.empty()) manifest_.set_trace_file(trace_path);
  // An armed fault spec changes what the run measures; record it so the
  // manifest says which results ran under injection. Unarmed runs carry no
  // such key, keeping them bit-identical to pre-fault manifests.
  if (fault::FaultsEnabled()) {
    manifest_.AddConfig("faults", fault::ActiveSpec());
  }
  // Freeze the wall time so the printed line and the manifest agree to
  // the digit.
  manifest_.Finalize();
  double seconds = manifest_.TotalSeconds();
  std::string manifest_path =
      ResultsDir() + "/" + manifest_.name() + ".manifest.json";
  Status write = data::FileSource::WriteAtomic(manifest_path,
                                               manifest_.ToJson());
  if (!write.ok()) {
    std::fprintf(stderr, "bench: cannot write manifest %s: %s\n",
                 manifest_path.c_str(), write.ToString().c_str());
    manifest_path.clear();
  }
  std::printf("\n[%s finished in %.1f s]\n", manifest_.name().c_str(),
              seconds);
  if (!manifest_path.empty()) {
    std::printf("[manifest: %s]\n", manifest_path.c_str());
  }
  if (!trace_path.empty()) {
    std::printf("[trace: %s]\n", trace_path.c_str());
  }
}

size_t ForEachDataset(BenchRun& run, const std::vector<std::string>& ids,
                      const std::function<Status(const std::string&)>& body) {
  size_t failed = 0;
  for (const auto& id : ids) {
    run.manifest().BeginPhase("dataset/" + id);
    Status status = body(id);
    if (!status.ok()) {
      ++failed;
      run.manifest().FailPhase(status.ToString());
      std::fprintf(stderr, "bench: dataset %s failed: %s (continuing)\n",
                   id.c_str(), status.ToString().c_str());
    }
    run.manifest().EndPhase();
  }
  return failed;
}

void RecordDatasetPhase(BenchRun& run, const std::string& id, double seconds,
                        const Status& status) {
  if (status.ok()) {
    run.manifest().AddCompletedPhase("dataset/" + id, seconds);
    return;
  }
  run.manifest().AddCompletedPhase("dataset/" + id, seconds, true,
                                   status.ToString());
  std::fprintf(stderr, "bench: dataset %s failed: %s (continuing)\n",
               id.c_str(), status.ToString().c_str());
}

void CapPairs(data::MatchingTask* task, size_t max_pairs) {
  size_t total = task->AllPairs().size();
  if (total <= max_pairs) return;
  double keep = static_cast<double>(max_pairs) / static_cast<double>(total);
  Rng rng(0xCA9);
  auto thin = [&](const std::vector<data::LabeledPair>& pairs) {
    std::vector<data::LabeledPair> kept;
    kept.reserve(static_cast<size_t>(pairs.size() * keep) + 1);
    for (const auto& pair : pairs) {
      if (pair.is_match || rng.Bernoulli(keep)) kept.push_back(pair);
    }
    return kept;
  };
  task->set_train(thin(task->train()));
  task->set_valid(thin(task->valid()));
  task->set_test(thin(task->test()));
}

}  // namespace rlbench::benchutil
