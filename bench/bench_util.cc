#include "bench_util.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/strings.h"
#include "data/csv.h"
#include "obs/trace.h"

namespace rlbench::benchutil {

double AutoScale(size_t total_pairs, size_t max_pairs) {
  if (total_pairs <= max_pairs) return 1.0;
  return static_cast<double>(max_pairs) / static_cast<double>(total_pairs);
}

std::vector<std::string> SelectIds(const Flags& flags,
                                   const std::vector<std::string>& fallback) {
  if (!flags.Has("datasets")) return fallback;
  return SplitAny(flags.GetString("datasets", ""), ",");
}

std::string Pct(double fraction) { return FormatDouble(100.0 * fraction, 2); }

std::string F3(double value) { return FormatDouble(value, 3); }

std::string ResultsDir() {
  std::filesystem::path dir = "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir.string();
}

void SaveScores(const std::string& name,
                const std::vector<CachedScore>& rows) {
  std::vector<std::vector<std::string>> csv_rows;
  csv_rows.push_back({"dataset", "matcher", "group", "f1"});
  for (const auto& row : rows) {
    csv_rows.push_back({row.dataset, row.matcher,
                        std::to_string(static_cast<int>(row.group)),
                        FormatDouble(row.f1, 6)});
  }
  std::ofstream out(ResultsDir() + "/" + name + ".csv");
  out << data::WriteCsv(csv_rows);
}

std::optional<std::vector<CachedScore>> LoadScores(const std::string& name) {
  std::ifstream in(ResultsDir() + "/" + name + ".csv");
  if (!in) return std::nullopt;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto rows = data::ParseCsv(text);
  if (!rows.ok() || rows->size() < 2) return std::nullopt;
  std::vector<CachedScore> scores;
  for (size_t i = 1; i < rows->size(); ++i) {
    const auto& row = (*rows)[i];
    if (row.size() < 4) return std::nullopt;
    CachedScore score;
    score.dataset = row[0];
    score.matcher = row[1];
    score.group = static_cast<matchers::MatcherGroup>(std::stoi(row[2]));
    score.f1 = std::stod(row[3]);
    scores.push_back(std::move(score));
  }
  return scores;
}

BenchRun::BenchRun(const char* name) : manifest_(name) {
  obs::SetCurrentThreadName("main");
}

BenchRun::~BenchRun() { Finish(); }

void BenchRun::Finish() {
  if (finished_) return;
  finished_ = true;
  manifest_.set_threads(ParallelThreadCount());
  manifest_.set_hardware_concurrency(std::thread::hardware_concurrency());
  std::string trace_path = obs::WriteTraceIfEnabled();
  if (!trace_path.empty()) manifest_.set_trace_file(trace_path);
  // Freeze the wall time so the printed line and the manifest agree to
  // the digit.
  manifest_.Finalize();
  double seconds = manifest_.TotalSeconds();
  std::string manifest_path = manifest_.WriteFile(ResultsDir());
  std::printf("\n[%s finished in %.1f s]\n", manifest_.name().c_str(),
              seconds);
  if (!manifest_path.empty()) {
    std::printf("[manifest: %s]\n", manifest_path.c_str());
  }
  if (!trace_path.empty()) {
    std::printf("[trace: %s]\n", trace_path.c_str());
  }
}

void CapPairs(data::MatchingTask* task, size_t max_pairs) {
  size_t total = task->AllPairs().size();
  if (total <= max_pairs) return;
  double keep = static_cast<double>(max_pairs) / static_cast<double>(total);
  Rng rng(0xCA9);
  auto thin = [&](const std::vector<data::LabeledPair>& pairs) {
    std::vector<data::LabeledPair> kept;
    kept.reserve(static_cast<size_t>(pairs.size() * keep) + 1);
    for (const auto& pair : pairs) {
      if (pair.is_match || rng.Bernoulli(keep)) kept.push_back(pair);
    }
    return kept;
  };
  task->set_train(thin(task->train()));
  task->set_valid(thin(task->valid()));
  task->set_test(thin(task->test()));
}

}  // namespace rlbench::benchutil
