// Figure 1: degree of linearity (Algorithm 1) of the 13 established
// benchmarks — the best-threshold F1 for the Cosine and Jaccard token-set
// similarities, plus the thresholds achieving them.
//
// Flags: --max-pairs=<n> (default 120000: full scale for all 13 datasets;
//        Algorithm 1 is cheap), --datasets=...
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "core/linearity.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"

using namespace rlbench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  size_t max_pairs =
      static_cast<size_t>(flags.GetInt("max-pairs", 120000));

  benchutil::BenchRun run("fig1_linearity");
  run.manifest().AddConfig("max_pairs", static_cast<int64_t>(max_pairs));

  std::vector<std::string> fallback;
  for (const auto& spec : datagen::ExistingBenchmarks()) {
    fallback.push_back(spec.id);
  }
  auto ids = benchutil::SelectIds(flags, fallback);
  run.manifest().SetDatasets(ids);

  TablePrinter table(
      "Figure 1 (data series): degree of linearity per established dataset");
  table.SetHeader({"dataset", "F1max_CS", "t_CS", "F1max_JS", "t_JS"});

  // Resolve every id up front (an unknown id is a failed phase, not a
  // fatal error), then fan the per-dataset work out across the pool
  // (grain 1: one dataset per chunk). Inner Parallel* calls run inline,
  // so results match a serial drive bit for bit; rows, and the manifest's
  // per-dataset phases, are emitted post-join in the original id order
  // because the manifest is not thread-safe.
  std::vector<const datagen::ExistingBenchmarkSpec*> specs(ids.size(), nullptr);
  for (size_t i = 0; i < ids.size(); ++i) {
    specs[i] = datagen::FindExistingBenchmark(ids[i]);
  }
  std::vector<core::LinearityResult> results(specs.size());
  std::vector<double> seconds(specs.size(), 0.0);
  ParallelFor(0, specs.size(), 1, [&](size_t i) {
    if (specs[i] == nullptr) return;
    Stopwatch watch;
    double scale = benchutil::AutoScale(specs[i]->total_pairs, max_pairs);
    auto task = datagen::BuildExistingBenchmark(*specs[i], scale);
    matchers::MatchingContext context(&task);
    results[i] = core::ComputeLinearity(context);
    seconds[i] = watch.ElapsedSeconds();
  });
  size_t failed = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    Status status = specs[i] == nullptr
                        ? Status::NotFound("unknown dataset id " + ids[i])
                        : Status::OK();
    if (!status.ok()) ++failed;
    benchutil::RecordDatasetPhase(run, ids[i], seconds[i], status);
    if (specs[i] == nullptr) continue;
    table.AddRow({specs[i]->id, benchutil::F3(results[i].f1_cosine),
                  FormatDouble(results[i].threshold_cosine, 2),
                  benchutil::F3(results[i].f1_jaccard),
                  FormatDouble(results[i].threshold_jaccard, 2)});
  }
  table.Print(std::cout);
  std::printf(
      "\nReading: >0.8 marks an (almost) linearly separable benchmark; the\n"
      "paper finds six such datasets among the thirteen.\n");
  run.Finish();
  return failed == ids.size() ? 1 : 0;
}
