// google-benchmark microbenchmarks for the learning substrate: classifier
// training / inference and the threshold sweep of Algorithm 1.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "ml/decision_tree.h"
#include "ml/linear_svm.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/random_forest.h"

namespace {

using namespace rlbench;

ml::Dataset MakeBlobs(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  ml::Dataset data(dim);
  std::vector<float> row(dim);
  for (size_t i = 0; i < n; ++i) {
    bool label = i % 5 == 0;
    double c = label ? 0.7 : 0.3;
    for (size_t f = 0; f < dim; ++f) {
      row[f] = static_cast<float>(c + rng.Gaussian(0, 0.15));
    }
    data.Add(row, label);
  }
  return data;
}

void BM_ThresholdSweep(benchmark::State& state) {
  Rng rng(3);
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> scores(n);
  std::vector<uint8_t> truth(n);
  for (size_t i = 0; i < n; ++i) {
    truth[i] = rng.Bernoulli(0.2) ? 1 : 0;
    scores[i] = truth[i] != 0 ? rng.Uniform(0.4, 1.0) : rng.Uniform(0.0, 0.6);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::SweepThresholds(scores, truth));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ThresholdSweep)->Arg(1000)->Arg(10000);

void BM_LinearSvmFit(benchmark::State& state) {
  auto train = MakeBlobs(static_cast<size_t>(state.range(0)), 8, 5);
  for (auto _ : state) {
    ml::LinearSvm svm;
    svm.Fit(train, {});
    benchmark::DoNotOptimize(svm.Margin(train.row(0)));
  }
}
BENCHMARK(BM_LinearSvmFit)->Arg(1000);

void BM_DecisionTreeFit(benchmark::State& state) {
  auto train = MakeBlobs(static_cast<size_t>(state.range(0)), 8, 7);
  for (auto _ : state) {
    ml::DecisionTree tree;
    tree.Fit(train, {});
    benchmark::DoNotOptimize(tree.PredictScore(train.row(0)));
  }
}
BENCHMARK(BM_DecisionTreeFit)->Arg(1000);

void BM_RandomForestFit(benchmark::State& state) {
  auto train = MakeBlobs(1000, 8, 9);
  ml::RandomForestOptions options;
  options.num_trees = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    ml::RandomForest forest(options);
    forest.Fit(train, {});
    benchmark::DoNotOptimize(forest.PredictScore(train.row(0)));
  }
}
BENCHMARK(BM_RandomForestFit)->Arg(16);

void BM_MlpEpoch(benchmark::State& state) {
  auto train = MakeBlobs(2000, 25, 11);
  auto valid = MakeBlobs(200, 25, 12);
  ml::MlpOptions options;
  options.epochs = 1;
  for (auto _ : state) {
    ml::Mlp mlp(options);
    mlp.Fit(train, valid);
    benchmark::DoNotOptimize(mlp.PredictScore(train.row(0)));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_MlpEpoch);

void BM_MlpPredict(benchmark::State& state) {
  auto train = MakeBlobs(500, 25, 13);
  auto valid = MakeBlobs(100, 25, 14);
  ml::MlpOptions options;
  options.epochs = 3;
  ml::Mlp mlp(options);
  mlp.Fit(train, valid);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.PredictScore(train.row(0)));
  }
}
BENCHMARK(BM_MlpPredict);

}  // namespace

BENCHMARK_MAIN();
