// Serving-path microbenchmark: closed-loop latency and coalesced
// throughput through MatchService, measured from the subsystem's own
// serve/* histograms so the recorded tails are exactly what the obs layer
// would report in production. Two phases after training:
//
//   closed_loop — one outstanding request at a time (submit, drain,
//                 repeat): per-request latency p50/p95/p99.
//   pipelined   — fill the admission queue, then drain: micro-batch
//                 coalescing throughput, plus how often admission control
//                 pushed back with ResourceExhausted.
//
// Results land in bench_results/BENCH_serve.json for regression tracking.
//
// Flags: --dataset (default Ds3), --scale (default 0.5),
//        --matcher (default Magellan-RF), --requests (default 2000),
//        --pairs (default 4, pairs per request)
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "data/file_source.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "matchers/context.h"
#include "matchers/registry.h"
#include "obs/metrics.h"
#include "serve/service.h"

using namespace rlbench;

namespace {

// The latency histogram the service records into (same bounds, so this
// call returns the service's own instance, never a second histogram).
obs::Histogram& LatencyHistogram() {
  return obs::Metrics::Instance().GetHistogram(
      "serve/latency_ms", obs::ExponentialBounds(0.01, 2.0, 20));
}

// The next `count` test pairs, round-robin over the split so every
// request is deterministic and in-range.
std::vector<data::LabeledPair> NextPairs(
    const std::vector<data::LabeledPair>& test, size_t* cursor, size_t count) {
  std::vector<data::LabeledPair> pairs;
  pairs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    pairs.push_back(test[*cursor % test.size()]);
    ++*cursor;
  }
  return pairs;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string dataset = flags.GetString("dataset", "Ds3");
  double scale = flags.GetDouble("scale", 0.5);
  std::string matcher = flags.GetString("matcher", "Magellan-RF");
  size_t requests = static_cast<size_t>(flags.GetInt("requests", 2000));
  size_t pairs_per_request = static_cast<size_t>(flags.GetInt("pairs", 4));

  const auto* spec = datagen::FindExistingBenchmark(dataset);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown benchmark %s\n", dataset.c_str());
    return 1;
  }

  benchutil::BenchRun run("micro_serve");
  run.manifest().AddConfig("dataset", dataset);
  run.manifest().AddConfig("scale", scale);
  run.manifest().AddConfig("matcher", matcher);
  run.manifest().AddConfig("requests", static_cast<int64_t>(requests));
  run.manifest().AddConfig("pairs_per_request",
                           static_cast<int64_t>(pairs_per_request));

  // The serve histograms are the measurement instrument here, so the
  // metrics registry must be on regardless of RLBENCH_METRICS.
  obs::Metrics::SetEnabled(true);

  run.manifest().BeginPhase("train");
  auto task = datagen::BuildExistingBenchmark(*spec, scale);
  matchers::MatchingContext context(&task);
  auto trained = matchers::TrainServableMatcher(matcher, context);
  RLBENCH_CHECK_MSG(trained.ok(), "training failed");
  serve::MatchService service(&context);
  RLBENCH_CHECK(service
                    .SwapModel(std::shared_ptr<const matchers::TrainedModel>(
                        std::move(*trained)))
                    .ok());
  run.manifest().EndPhase();

  const auto& test = task.test();
  size_t cursor = 0;

  // Phase 1: closed loop — one request in flight, so serve/latency_ms is
  // pure service time (admission + pump + score), no queueing backlog.
  LatencyHistogram().Reset();
  run.manifest().BeginPhase("closed_loop");
  Stopwatch closed_watch;
  for (size_t i = 0; i < requests; ++i) {
    auto id = service.Submit(NextPairs(test, &cursor, pairs_per_request),
                             [](const serve::RequestOutcome& outcome) {
                               RLBENCH_CHECK(outcome.status.ok());
                             });
    RLBENCH_CHECK_MSG(id.ok(), "closed-loop submit rejected");
    service.Drain();
  }
  double closed_seconds = closed_watch.ElapsedSeconds();
  run.manifest().EndPhase();
  double p50 = LatencyHistogram().Percentile(0.50);
  double p95 = LatencyHistogram().Percentile(0.95);
  double p99 = LatencyHistogram().Percentile(0.99);
  double closed_throughput =
      static_cast<double>(requests * pairs_per_request) / closed_seconds;

  // Phase 2: pipelined — keep submitting until admission control pushes
  // back, then drain the whole queue; the service coalesces the queued
  // requests into max_batch_pairs micro-batches.
  size_t served = 0;
  size_t rejected = 0;
  size_t batches = 0;
  uint64_t batches_before =
      obs::Metrics::Instance().GetCounter("serve/batches").Value();
  run.manifest().BeginPhase("pipelined");
  Stopwatch pipelined_watch;
  while (served < requests) {
    auto id = service.Submit(NextPairs(test, &cursor, pairs_per_request),
                             [&served](const serve::RequestOutcome& outcome) {
                               RLBENCH_CHECK(outcome.status.ok());
                               ++served;
                             });
    if (!id.ok()) {
      RLBENCH_CHECK_MSG(id.status().code() == StatusCode::kResourceExhausted,
                        "unexpected rejection");
      ++rejected;
      service.Drain();
    }
  }
  service.Drain();
  double pipelined_seconds = pipelined_watch.ElapsedSeconds();
  run.manifest().EndPhase();
  batches = static_cast<size_t>(
      obs::Metrics::Instance().GetCounter("serve/batches").Value() -
      batches_before);
  double pipelined_throughput =
      static_cast<double>(served * pairs_per_request) / pipelined_seconds;
  double mean_batch_pairs =
      batches > 0 ? static_cast<double>(served * pairs_per_request) /
                        static_cast<double>(batches)
                  : 0.0;

  std::printf("%s on %s (scale %.2f)\n", matcher.c_str(), dataset.c_str(),
              scale);
  std::printf("closed loop: %.0f pairs/s, latency p50 %.4f ms, p95 %.4f ms, "
              "p99 %.4f ms\n",
              closed_throughput, p50, p95, p99);
  std::printf("pipelined:   %.0f pairs/s over %zu batches "
              "(%.1f pairs/batch), %zu admission rejections\n",
              pipelined_throughput, batches, mean_batch_pairs, rejected);

  char buf[256];
  std::string json = "{\n  \"bench\": \"serve\",\n";
  json += "  \"dataset\": \"" + dataset + "\",\n";
  json += "  \"matcher\": \"" + matcher + "\",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"scale\": %.3f,\n  \"requests\": %zu,\n"
                "  \"pairs_per_request\": %zu,\n",
                scale, requests, pairs_per_request);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"closed_loop_pairs_per_sec\": %.2f,\n"
                "  \"latency_p50_ms\": %.6f,\n"
                "  \"latency_p95_ms\": %.6f,\n"
                "  \"latency_p99_ms\": %.6f,\n",
                closed_throughput, p50, p95, p99);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"pipelined_pairs_per_sec\": %.2f,\n"
                "  \"pipelined_batches\": %zu,\n"
                "  \"mean_batch_pairs\": %.3f,\n"
                "  \"admission_rejections\": %zu\n}\n",
                pipelined_throughput, batches, mean_batch_pairs, rejected);
  json += buf;
  std::string path = benchutil::ResultsDir() + "/BENCH_serve.json";
  Status write = data::FileSource::WriteAtomic(path, json);
  if (!write.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 write.ToString().c_str());
    run.Finish();
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  run.Finish();
  return 0;
}
