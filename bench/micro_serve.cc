// Serving-path microbenchmark: closed-loop latency and coalesced
// throughput through MatchService, measured from the subsystem's own
// serve/* histograms so the recorded tails are exactly what the obs layer
// would report in production. Two phases after training:
//
//   closed_loop — one outstanding request at a time (submit, drain,
//                 repeat): per-request latency p50/p95/p99.
//   pipelined   — fill the admission queue, then drain: micro-batch
//                 coalescing throughput, plus how often admission control
//                 pushed back with ResourceExhausted.
//   storm       — (--storm) open loop: multi-tenant bursts arrive faster
//                 than one pump can serve, through a shed-enabled service
//                 with a linear fallback tier and a shadow window scoring
//                 sampled traffic. Reports p50/p95/p99 under overload,
//                 per-tier counts, shed transitions and the shadow
//                 agreement rate; always verifies that degraded responses
//                 are bit-identical to the fallback scorer run directly.
//                 --smoke additionally asserts that at least one shed
//                 transition fired and that requests were degraded (the
//                 CI overload gate).
//
// Results land in bench_results/BENCH_serve.json for regression tracking.
//
// Flags: --dataset (default Ds3), --scale (default 0.5),
//        --matcher (default Magellan-RF), --requests (default 2000),
//        --pairs (default 4, pairs per request),
//        --storm, --smoke, --storm_steps, --storm_burst,
//        --fallback (default SA-ESDE), --shadow_matcher (default SB-ESDE)
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "data/file_source.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "matchers/context.h"
#include "matchers/registry.h"
#include "obs/metrics.h"
#include "serve/service.h"

using namespace rlbench;

namespace {

// The latency histogram the service records into (same bounds, so this
// call returns the service's own instance, never a second histogram).
obs::Histogram& LatencyHistogram() {
  return obs::Metrics::Instance().GetHistogram(
      "serve/latency_ms", obs::ExponentialBounds(0.01, 2.0, 20));
}

// The next `count` test pairs, round-robin over the split so every
// request is deterministic and in-range.
std::vector<data::LabeledPair> NextPairs(
    const std::vector<data::LabeledPair>& test, size_t* cursor, size_t count) {
  std::vector<data::LabeledPair> pairs;
  pairs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    pairs.push_back(test[*cursor % test.size()]);
    ++*cursor;
  }
  return pairs;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string dataset = flags.GetString("dataset", "Ds3");
  double scale = flags.GetDouble("scale", 0.5);
  std::string matcher = flags.GetString("matcher", "Magellan-RF");
  size_t requests = static_cast<size_t>(flags.GetInt("requests", 2000));
  size_t pairs_per_request = static_cast<size_t>(flags.GetInt("pairs", 4));

  const auto* spec = datagen::FindExistingBenchmark(dataset);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown benchmark %s\n", dataset.c_str());
    return 1;
  }

  benchutil::BenchRun run("micro_serve");
  run.manifest().AddConfig("dataset", dataset);
  run.manifest().AddConfig("scale", scale);
  run.manifest().AddConfig("matcher", matcher);
  run.manifest().AddConfig("requests", static_cast<int64_t>(requests));
  run.manifest().AddConfig("pairs_per_request",
                           static_cast<int64_t>(pairs_per_request));

  // The serve histograms are the measurement instrument here, so the
  // metrics registry must be on regardless of RLBENCH_METRICS.
  obs::Metrics::SetEnabled(true);

  run.manifest().BeginPhase("train");
  auto task = datagen::BuildExistingBenchmark(*spec, scale);
  matchers::MatchingContext context(&task);
  auto trained = matchers::TrainServableMatcher(matcher, context);
  RLBENCH_CHECK_MSG(trained.ok(), "training failed");
  std::shared_ptr<const matchers::TrainedModel> primary(std::move(*trained));
  serve::MatchService service(&context);
  RLBENCH_CHECK(service.SwapModel(primary).ok());
  run.manifest().EndPhase();

  const auto& test = task.test();
  size_t cursor = 0;

  // Phase 1: closed loop — one request in flight, so serve/latency_ms is
  // pure service time (admission + pump + score), no queueing backlog.
  LatencyHistogram().Reset();
  run.manifest().BeginPhase("closed_loop");
  Stopwatch closed_watch;
  for (size_t i = 0; i < requests; ++i) {
    auto id = service.Submit(NextPairs(test, &cursor, pairs_per_request),
                             [](const serve::RequestOutcome& outcome) {
                               RLBENCH_CHECK(outcome.status.ok());
                             });
    RLBENCH_CHECK_MSG(id.ok(), "closed-loop submit rejected");
    service.Drain();
  }
  double closed_seconds = closed_watch.ElapsedSeconds();
  run.manifest().EndPhase();
  double p50 = LatencyHistogram().Percentile(0.50);
  double p95 = LatencyHistogram().Percentile(0.95);
  double p99 = LatencyHistogram().Percentile(0.99);
  double closed_throughput =
      static_cast<double>(requests * pairs_per_request) / closed_seconds;

  // Phase 2: pipelined — keep submitting until admission control pushes
  // back, then drain the whole queue; the service coalesces the queued
  // requests into max_batch_pairs micro-batches.
  size_t served = 0;
  size_t rejected = 0;
  size_t batches = 0;
  uint64_t batches_before =
      obs::Metrics::Instance().GetCounter("serve/batches").Value();
  run.manifest().BeginPhase("pipelined");
  Stopwatch pipelined_watch;
  while (served < requests) {
    auto id = service.Submit(NextPairs(test, &cursor, pairs_per_request),
                             [&served](const serve::RequestOutcome& outcome) {
                               RLBENCH_CHECK(outcome.status.ok());
                               ++served;
                             });
    if (!id.ok()) {
      RLBENCH_CHECK_MSG(id.status().code() == StatusCode::kResourceExhausted,
                        "unexpected rejection");
      ++rejected;
      service.Drain();
    }
  }
  service.Drain();
  double pipelined_seconds = pipelined_watch.ElapsedSeconds();
  run.manifest().EndPhase();
  batches = static_cast<size_t>(
      obs::Metrics::Instance().GetCounter("serve/batches").Value() -
      batches_before);
  double pipelined_throughput =
      static_cast<double>(served * pairs_per_request) / pipelined_seconds;
  double mean_batch_pairs =
      batches > 0 ? static_cast<double>(served * pairs_per_request) /
                        static_cast<double>(batches)
                  : 0.0;

  // Phase 3 (--storm): open-loop overload. Each step injects a multi-tenant
  // burst larger than the one micro-batch a step pumps, so the queue fills
  // deterministically and walks the shed ladder: full -> degraded (linear
  // fallback) -> reject. A shadow window scores sampled full-tier traffic
  // against a candidate the whole time.
  const bool storm = flags.GetBool("storm", false);
  const bool smoke = flags.GetBool("smoke", false);
  double storm_p50 = 0.0, storm_p95 = 0.0, storm_p99 = 0.0;
  double storm_throughput = 0.0, shadow_agreement = 1.0;
  uint64_t storm_full = 0, storm_degraded = 0, storm_rejected = 0;
  uint64_t storm_transitions = 0;
  size_t identity_checked = 0;
  if (storm) {
    std::string fallback_name = flags.GetString("fallback", "SA-ESDE");
    std::string shadow_name = flags.GetString("shadow_matcher", "SB-ESDE");
    size_t storm_steps = static_cast<size_t>(
        flags.GetInt("storm_steps", smoke ? 24 : 60));
    size_t storm_burst =
        static_cast<size_t>(flags.GetInt("storm_burst", 80));
    run.manifest().AddConfig("storm_steps",
                             static_cast<int64_t>(storm_steps));
    run.manifest().AddConfig("storm_burst",
                             static_cast<int64_t>(storm_burst));
    run.manifest().AddConfig("fallback", fallback_name);
    run.manifest().AddConfig("shadow_matcher", shadow_name);

    run.manifest().BeginPhase("storm_setup");
    serve::MatchServiceOptions storm_options;
    storm_options.shed_enabled = true;
    storm_options.shed.dwell = 1;
    serve::MatchService storm_service(&context, storm_options);
    // The phase-1 service froze the context caches; training new model
    // families needs the warm phase back. Install paths re-freeze.
    context.left().Thaw();
    context.right().Thaw();
    auto fallback = matchers::TrainServableMatcher(fallback_name, context);
    RLBENCH_CHECK_MSG(fallback.ok(), "fallback training failed");
    context.left().Thaw();
    context.right().Thaw();
    auto candidate = matchers::TrainServableMatcher(shadow_name, context);
    RLBENCH_CHECK_MSG(candidate.ok(), "shadow candidate training failed");
    RLBENCH_CHECK(storm_service.SwapModel(primary).ok());
    RLBENCH_CHECK(storm_service
                      .SetFallbackModel(
                          std::shared_ptr<const matchers::TrainedModel>(
                              std::move(*fallback)))
                      .ok());
    serve::SnapshotMetadata shadow_meta;
    shadow_meta.matcher_name = shadow_name;
    shadow_meta.dataset_id = task.name();
    shadow_meta.num_attrs = task.left().schema().num_attributes();
    serve::ShadowOptions shadow_options;
    shadow_options.sample_fraction = 0.3;
    shadow_options.min_samples = 32;
    // Measurement window, not a promotion attempt: an unreachable target
    // and a zero agreement floor keep the window open for the whole storm
    // so the reported agreement covers every sampled batch.
    shadow_options.target_samples = 1u << 30;
    shadow_options.min_agreement = 0.0;
    shadow_options.max_latency_ratio = 0.0;
    RLBENCH_CHECK(storm_service
                      .StartShadow(
                          std::shared_ptr<const matchers::TrainedModel>(
                              std::move(*candidate)),
                          shadow_meta, shadow_options)
                      .ok());
    run.manifest().EndPhase();

    const char* tenants[3] = {"alpha", "beta", "gamma"};
    std::vector<std::pair<std::vector<data::LabeledPair>,
                          std::vector<double>>>
        degraded_samples;
    size_t storm_answered = 0;
    LatencyHistogram().Reset();
    run.manifest().BeginPhase("storm");
    Stopwatch storm_watch;
    for (size_t step = 0; step < storm_steps; ++step) {
      for (size_t b = 0; b < storm_burst; ++b) {
        std::vector<data::LabeledPair> request_pairs =
            NextPairs(test, &cursor, pairs_per_request);
        serve::SubmitOptions submit;
        submit.tenant = tenants[(step + b) % 3];
        std::vector<data::LabeledPair> pairs_copy = request_pairs;
        auto id = storm_service.SubmitRequest(
            std::move(request_pairs), submit,
            [&storm_answered, &storm_full, &storm_degraded,
             &degraded_samples,
             pairs_copy](const serve::RequestOutcome& outcome) {
              ++storm_answered;
              if (!outcome.status.ok()) return;
              if (outcome.tier == serve::ShedTier::kDegraded) {
                ++storm_degraded;
                if (degraded_samples.size() < 64) {
                  std::vector<double> scores;
                  scores.reserve(outcome.results.size());
                  for (const serve::PairScore& r : outcome.results) {
                    scores.push_back(r.score);
                  }
                  degraded_samples.emplace_back(pairs_copy,
                                                std::move(scores));
                }
              } else {
                ++storm_full;
              }
            });
        if (!id.ok()) {
          RLBENCH_CHECK_MSG(
              id.status().code() == StatusCode::kResourceExhausted,
              "unexpected storm rejection");
          ++storm_rejected;
        }
      }
      // One pump per step: the open loop outruns the service on purpose.
      storm_service.PumpOne();
    }
    storm_service.Drain();
    double storm_seconds = storm_watch.ElapsedSeconds();
    run.manifest().EndPhase();

    storm_p50 = LatencyHistogram().Percentile(0.50);
    storm_p95 = LatencyHistogram().Percentile(0.95);
    storm_p99 = LatencyHistogram().Percentile(0.99);
    storm_throughput =
        static_cast<double>(storm_answered * pairs_per_request) /
        storm_seconds;
    storm_transitions = storm_service.ShedTransitions();
    if (const serve::ShadowEvaluator* shadow = storm_service.Shadow();
        shadow != nullptr) {
      shadow_agreement = shadow->stats().Agreement();
    }

    // Degraded responses must be bit-identical to the fallback scorer run
    // directly on the same pairs — shedding picks the model, never changes
    // what a model computes.
    std::shared_ptr<const matchers::TrainedModel> fallback_model =
        storm_service.FallbackModel();
    for (const auto& [sample_pairs, served_scores] : degraded_samples) {
      std::vector<double> direct_scores(sample_pairs.size());
      std::vector<uint8_t> direct_decisions(sample_pairs.size());
      RLBENCH_CHECK(fallback_model
                        ->ScoreBatch(context, sample_pairs, direct_scores,
                                     direct_decisions)
                        .ok());
      for (size_t i = 0; i < sample_pairs.size(); ++i) {
        RLBENCH_CHECK_MSG(served_scores[i] == direct_scores[i],
                          "degraded tier diverged from the linear scorer");
        ++identity_checked;
      }
    }

    run.manifest().AddConfig("storm_tier_full",
                             static_cast<int64_t>(storm_full));
    run.manifest().AddConfig("storm_tier_degraded",
                             static_cast<int64_t>(storm_degraded));
    run.manifest().AddConfig("storm_tier_rejected",
                             static_cast<int64_t>(storm_rejected));
    run.manifest().AddConfig("storm_shed_transitions",
                             static_cast<int64_t>(storm_transitions));
    run.manifest().AddConfig("storm_shadow_agreement", shadow_agreement);
    run.manifest().AddConfig("storm_identity_checked",
                             static_cast<int64_t>(identity_checked));

    if (smoke) {
      RLBENCH_CHECK_MSG(storm_transitions >= 1,
                        "storm smoke: no shed transition fired");
      RLBENCH_CHECK_MSG(storm_degraded > 0,
                        "storm smoke: nothing was served degraded");
      RLBENCH_CHECK_MSG(identity_checked > 0,
                        "storm smoke: no degraded response verified");
    }
  }

  std::printf("%s on %s (scale %.2f)\n", matcher.c_str(), dataset.c_str(),
              scale);
  std::printf("closed loop: %.0f pairs/s, latency p50 %.4f ms, p95 %.4f ms, "
              "p99 %.4f ms\n",
              closed_throughput, p50, p95, p99);
  std::printf("pipelined:   %.0f pairs/s over %zu batches "
              "(%.1f pairs/batch), %zu admission rejections\n",
              pipelined_throughput, batches, mean_batch_pairs, rejected);
  if (storm) {
    std::printf("storm:       %.0f pairs/s, latency p50 %.4f ms, p95 %.4f "
                "ms, p99 %.4f ms\n",
                storm_throughput, storm_p50, storm_p95, storm_p99);
    std::printf("             tiers full=%llu degraded=%llu rejected=%llu, "
                "%llu shed transitions, shadow agreement %.4f, "
                "%zu degraded scores bit-verified\n",
                static_cast<unsigned long long>(storm_full),
                static_cast<unsigned long long>(storm_degraded),
                static_cast<unsigned long long>(storm_rejected),
                static_cast<unsigned long long>(storm_transitions),
                shadow_agreement, identity_checked);
  }

  char buf[256];
  std::string json = "{\n  \"bench\": \"serve\",\n";
  json += "  \"dataset\": \"" + dataset + "\",\n";
  json += "  \"matcher\": \"" + matcher + "\",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"scale\": %.3f,\n  \"requests\": %zu,\n"
                "  \"pairs_per_request\": %zu,\n",
                scale, requests, pairs_per_request);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"closed_loop_pairs_per_sec\": %.2f,\n"
                "  \"latency_p50_ms\": %.6f,\n"
                "  \"latency_p95_ms\": %.6f,\n"
                "  \"latency_p99_ms\": %.6f,\n",
                closed_throughput, p50, p95, p99);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"pipelined_pairs_per_sec\": %.2f,\n"
                "  \"pipelined_batches\": %zu,\n"
                "  \"mean_batch_pairs\": %.3f,\n"
                "  \"admission_rejections\": %zu",
                pipelined_throughput, batches, mean_batch_pairs, rejected);
  json += buf;
  if (storm) {
    std::snprintf(buf, sizeof(buf),
                  ",\n  \"storm_pairs_per_sec\": %.2f,\n"
                  "  \"storm_latency_p50_ms\": %.6f,\n"
                  "  \"storm_latency_p95_ms\": %.6f,\n"
                  "  \"storm_latency_p99_ms\": %.6f,\n",
                  storm_throughput, storm_p50, storm_p95, storm_p99);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"shed_tier_full\": %llu,\n"
                  "  \"shed_tier_degraded\": %llu,\n"
                  "  \"shed_tier_rejected\": %llu,\n"
                  "  \"shed_transitions\": %llu,\n",
                  static_cast<unsigned long long>(storm_full),
                  static_cast<unsigned long long>(storm_degraded),
                  static_cast<unsigned long long>(storm_rejected),
                  static_cast<unsigned long long>(storm_transitions));
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"shadow_agreement_rate\": %.6f,\n"
                  "  \"degraded_bit_identical\": %zu",
                  shadow_agreement, identity_checked);
    json += buf;
  }
  json += "\n}\n";
  std::string path = benchutil::ResultsDir() + "/BENCH_serve.json";
  Status write = data::FileSource::WriteAtomic(path, json);
  if (!write.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 write.ToString().c_str());
    run.Finish();
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  run.Finish();
  return 0;
}
