// Difficulty-drift loop benchmark: replay a serve stream whose workload
// difficulty shifts mid-run and measure the whole reaction — detection
// latency, sampling overhead, and swap-to-recovery time.
//
// The stream has two eras built from one dataset's test split. A global
// cosine-similarity cut splits the pairs: era A holds the matches above
// the cut and the non-matches below it (linearly separable by
// construction, the regime learning-based benchmarks reward), era B holds
// the complementary corners (no single threshold works, the paper's hard
// regime). Replaying A then B through a drift-enabled MatchService walks
// the monitor through stable -> watch -> triggered; the bench then runs
// the full reaction: retrain the zero-shot EnsembleLink, verify its
// snapshot round-trips bit-exactly, shadow-gate the candidate, and serve
// until the ladder hot-swaps it in.
//
// Phases / measurements (bench_results/BENCH_drift.json):
//   baseline    — the same stream with drift disabled: scores + seconds.
//   monitor     — drift enabled, no reaction: bit-identity of served
//                 scores vs baseline, windows-to-trigger detection
//                 latency, sampling overhead ratio.
//   reaction    — drift enabled with the trigger consumed: retrain ->
//                 shadow -> promote; swap-to-recovery in requests, and the
//                 post-swap scores checked bit-identical to the candidate
//                 scored directly.
//   fault storm — (--smoke) the next episode's shadow window runs under
//                 an armed serve/shadow/score fault: the ladder must roll
//                 the candidate back, never publish it.
//
// Flags: --dataset (default Ds3), --scale (default 0.5),
//        --matcher (default Magellan-LR), --retrain (default EnsembleLink),
//        --window (default 48), --era_windows (default 4),
//        --pairs (default 4, pairs per request), --smoke
#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/blob.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "data/columnar.h"
#include "data/file_source.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "fault/failpoint.h"
#include "matchers/context.h"
#include "matchers/registry.h"
#include "matchers/trained_model.h"
#include "serve/service.h"
#include "text/kernels.h"

using namespace rlbench;

namespace {

/// Interleave the era's matches and non-matches evenly (Bresenham error
/// accumulator) so every reservoir window sees both classes.
std::vector<data::LabeledPair> Interleave(
    const std::vector<data::LabeledPair>& matches,
    const std::vector<data::LabeledPair>& non_matches) {
  std::vector<data::LabeledPair> era;
  era.reserve(matches.size() + non_matches.size());
  size_t m = 0;
  size_t n = 0;
  long long error = 0;
  const long long rise = static_cast<long long>(matches.size());
  const long long run = static_cast<long long>(non_matches.size());
  while (m < matches.size() || n < non_matches.size()) {
    if (n >= non_matches.size() || (m < matches.size() && error >= run)) {
      era.push_back(matches[m++]);
      error -= run;
    } else {
      era.push_back(non_matches[n++]);
      error += rise;
    }
  }
  return era;
}

/// Serve `pair_count` pairs from `era` (round-robin) in `chunk`-pair
/// requests; scores append to `out` in request order when it is non-null.
void ServePairs(serve::MatchService* service,
                const std::vector<data::LabeledPair>& era, size_t* cursor,
                size_t pair_count, size_t chunk, std::vector<double>* out) {
  for (size_t served = 0; served < pair_count; served += chunk) {
    std::vector<data::LabeledPair> request;
    request.reserve(chunk);
    for (size_t i = 0; i < chunk; ++i) {
      request.push_back(era[*cursor % era.size()]);
      ++*cursor;
    }
    auto id = service->Submit(std::move(request),
                              [out](const serve::RequestOutcome& outcome) {
                                RLBENCH_CHECK(outcome.status.ok());
                                if (out == nullptr) return;
                                for (const serve::PairScore& r :
                                     outcome.results) {
                                  out->push_back(r.score);
                                }
                              });
    RLBENCH_CHECK_MSG(id.ok(), "drift bench submit rejected");
    service->Drain();
  }
}

std::shared_ptr<const matchers::TrainedModel> TrainShared(
    const matchers::MatchingContext& context, const std::string& name) {
  context.left().Thaw();
  context.right().Thaw();
  auto trained = matchers::TrainServableMatcher(name, context);
  RLBENCH_CHECK_MSG(trained.ok(), "training failed");
  return std::shared_ptr<const matchers::TrainedModel>(std::move(*trained));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string dataset = flags.GetString("dataset", "Ds3");
  double scale = flags.GetDouble("scale", 0.5);
  std::string matcher = flags.GetString("matcher", "Magellan-LR");
  std::string retrain = flags.GetString("retrain", "EnsembleLink");
  size_t window = static_cast<size_t>(flags.GetInt("window", 48));
  size_t era_windows = static_cast<size_t>(flags.GetInt("era_windows", 4));
  size_t chunk = static_cast<size_t>(flags.GetInt("pairs", 4));
  const bool smoke = flags.GetBool("smoke", false);

  const auto* spec = datagen::FindExistingBenchmark(dataset);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown benchmark %s\n", dataset.c_str());
    return 1;
  }

  benchutil::BenchRun run("micro_drift");
  run.manifest().AddConfig("dataset", dataset);
  run.manifest().AddConfig("scale", scale);
  run.manifest().AddConfig("matcher", matcher);
  run.manifest().AddConfig("retrain", retrain);
  run.manifest().AddConfig("drift_window_pairs",
                           static_cast<int64_t>(window));
  run.manifest().AddConfig("era_windows", static_cast<int64_t>(era_windows));

  run.manifest().BeginPhase("setup");
  auto task = datagen::BuildExistingBenchmark(*spec, scale);
  matchers::MatchingContext context(&task);
  std::shared_ptr<const matchers::TrainedModel> primary =
      TrainShared(context, matcher);

  // Era construction: one global cosine cut at the median, then the
  // separable corners (era A) vs the inverted corners (era B).
  const data::ColumnarStore& store = context.columnar();
  std::vector<double> cosines(task.test().size());
  for (size_t i = 0; i < task.test().size(); ++i) {
    const data::LabeledPair& pair = task.test()[i];
    cosines[i] = text::kernels::SetFamilySortedU32(
                     store.TokenIdsAll(data::ColumnarStore::kLeft, pair.left),
                     store.TokenIdsAll(data::ColumnarStore::kRight,
                                       pair.right))
                     .cosine;
  }
  std::vector<double> sorted = cosines;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const double cut = sorted[sorted.size() / 2];
  std::vector<data::LabeledPair> easy_matches, easy_non, hard_matches,
      hard_non;
  for (size_t i = 0; i < task.test().size(); ++i) {
    const data::LabeledPair& pair = task.test()[i];
    if (pair.is_match) {
      (cosines[i] > cut ? easy_matches : hard_matches).push_back(pair);
    } else {
      (cosines[i] > cut ? hard_non : easy_non).push_back(pair);
    }
  }
  RLBENCH_CHECK_MSG(!easy_matches.empty() && !easy_non.empty(),
                    "era A is degenerate at this scale");
  RLBENCH_CHECK_MSG(!hard_matches.empty() && !hard_non.empty(),
                    "era B is degenerate at this scale");
  std::vector<data::LabeledPair> era_a = Interleave(easy_matches, easy_non);
  std::vector<data::LabeledPair> era_b = Interleave(hard_matches, hard_non);
  run.manifest().EndPhase();

  const size_t era_pairs = era_windows * window;
  serve::MatchServiceOptions drift_options;
  drift_options.drift_enabled = true;
  drift_options.drift.reservoir.window_pairs = window;
  drift_options.drift.monitor.use_truth_labels = true;

  // Phase 1: the stream with drift disabled — the timing and score
  // baseline everything else is compared against.
  std::vector<double> baseline_scores;
  run.manifest().BeginPhase("baseline");
  Stopwatch baseline_watch;
  {
    serve::MatchService service(&context);
    RLBENCH_CHECK(service.SwapModel(primary).ok());
    size_t cursor_a = 0;
    size_t cursor_b = 0;
    ServePairs(&service, era_a, &cursor_a, era_pairs, chunk,
               &baseline_scores);
    ServePairs(&service, era_b, &cursor_b, era_pairs, chunk,
               &baseline_scores);
  }
  double baseline_seconds = baseline_watch.ElapsedSeconds();
  run.manifest().EndPhase();

  // Phase 2: the same stream with the monitor on but no reaction —
  // detection latency and pure sampling overhead.
  std::vector<double> monitored_scores;
  serve::DriftStatus trigger;
  bool triggered = false;
  run.manifest().BeginPhase("monitor");
  Stopwatch monitor_watch;
  {
    serve::MatchService service(&context, drift_options);
    RLBENCH_CHECK(service.SwapModel(primary).ok());
    size_t cursor_a = 0;
    size_t cursor_b = 0;
    ServePairs(&service, era_a, &cursor_a, era_pairs, chunk,
               &monitored_scores);
    RLBENCH_CHECK_MSG(service.DriftSnapshot().state == "stable",
                      "drift: era A should look stable");
    for (size_t served = 0; served < era_pairs; served += chunk) {
      ServePairs(&service, era_b, &cursor_b, chunk, chunk,
                 &monitored_scores);
      if (!triggered && service.TakeDriftTrigger(&trigger)) {
        triggered = true;
      }
    }
  }
  double monitor_seconds = monitor_watch.ElapsedSeconds();
  run.manifest().EndPhase();
  RLBENCH_CHECK_MSG(triggered, "drift: era B never triggered");
  RLBENCH_CHECK_MSG(monitored_scores == baseline_scores,
                    "drift monitoring changed served scores");
  const uint64_t windows_to_trigger = trigger.windows - era_windows;
  const double overhead_ratio =
      baseline_seconds > 0.0 ? monitor_seconds / baseline_seconds : 1.0;

  // Phase 3: the reaction. A fresh service replays the shift; this time
  // the trigger is consumed: retrain -> snapshot round-trip check ->
  // shadow window -> serve until the ladder promotes.
  size_t recovery_pairs = 0;
  run.manifest().BeginPhase("reaction");
  serve::MatchService service(&context, drift_options);
  RLBENCH_CHECK(service.SwapModel(primary).ok());
  size_t cursor_a = 0;
  size_t cursor_b = 0;
  ServePairs(&service, era_a, &cursor_a, era_pairs, chunk, nullptr);
  serve::DriftStatus reaction_trigger;
  bool reacting = false;
  while (!reacting) {
    ServePairs(&service, era_b, &cursor_b, chunk, chunk, nullptr);
    reacting = service.TakeDriftTrigger(&reaction_trigger);
  }
  auto candidate = service.RetrainMatcher(retrain);
  RLBENCH_CHECK_MSG(candidate.ok(), "drift retrain failed");

  // Snapshot round-trip: the retrained candidate's snapshot must decode
  // to a model that re-serializes to the same bytes and scores the same
  // bits (for EnsembleLink the model is pure configuration, so this is
  // exact by construction).
  {
    BlobWriter writer;
    matchers::SerializeTrainedModel(**candidate, &writer);
    std::string bytes = writer.Release();
    BlobReader reader(bytes);
    auto restored = matchers::DeserializeTrainedModel(&reader);
    RLBENCH_CHECK_MSG(restored.ok(), "candidate snapshot did not decode");
    BlobWriter again;
    matchers::SerializeTrainedModel(**restored, &again);
    RLBENCH_CHECK_MSG(again.data() == bytes,
                      "candidate snapshot round trip drifted");
    const size_t probe = std::min<size_t>(era_b.size(), 64);
    std::span<const data::LabeledPair> pairs(era_b.data(), probe);
    std::vector<double> direct(probe), redecoded(probe);
    std::vector<uint8_t> decisions(probe);
    (*restored)->PrepareContext(context);
    RLBENCH_CHECK(
        (*candidate)->ScoreBatch(context, pairs, direct, decisions).ok());
    RLBENCH_CHECK(
        (*restored)->ScoreBatch(context, pairs, redecoded, decisions).ok());
    RLBENCH_CHECK_MSG(direct == redecoded,
                      "restored candidate scores diverged");
  }

  serve::SnapshotMetadata metadata;
  metadata.matcher_name = (*candidate)->matcher_name();
  metadata.dataset_id = task.name();
  metadata.num_attrs = task.left().schema().num_attributes();
  serve::ShadowOptions gate;
  gate.sample_fraction = 1.0;
  gate.min_samples = window / 2;
  gate.target_samples = window;
  gate.min_agreement = 0.0;     // the incumbent is the model that drifted
  gate.max_latency_ratio = 0.0;  // zero-shot candidates may score slower
  RLBENCH_CHECK(service.StartShadow(*candidate, metadata, gate).ok());
  serve::ShadowEvent outcome;
  while (outcome.kind == serve::ShadowEvent::Kind::kNone) {
    ServePairs(&service, era_b, &cursor_b, chunk, chunk, nullptr);
    recovery_pairs += chunk;
    outcome = service.ConsumeShadowEvent();
  }
  service.RearmDrift();
  run.manifest().EndPhase();
  RLBENCH_CHECK_MSG(outcome.kind == serve::ShadowEvent::Kind::kPromoted,
                    "drift candidate was not promoted");

  // Post-swap identity: served scores now come from the candidate's exact
  // bits.
  {
    // A whole number of requests, so the served stream is exactly `pairs`.
    const size_t probe =
        std::min<size_t>(era_b.size(), 64) / chunk * chunk;
    std::span<const data::LabeledPair> pairs(era_b.data(), probe);
    std::vector<double> direct(probe);
    std::vector<uint8_t> decisions(probe);
    RLBENCH_CHECK(
        (*candidate)->ScoreBatch(context, pairs, direct, decisions).ok());
    std::vector<double> served;
    size_t probe_cursor = 0;
    ServePairs(&service, era_b, &probe_cursor, probe, chunk, &served);
    RLBENCH_CHECK_MSG(served == direct,
                      "post-swap serve diverged from the promoted model");
  }

  // Phase 4 (--smoke): the fault storm gate. The next episode's shadow
  // window runs with candidate scoring faults armed; the ladder must
  // refuse to publish (rollback), leaving the promoted model serving.
  bool storm_rolled_back = false;
  if (smoke) {
    run.manifest().BeginPhase("fault_storm");
    serve::DriftStatus storm_trigger;
    bool storm_triggered = false;
    while (!storm_triggered) {
      ServePairs(&service, era_b, &cursor_b, chunk, chunk, nullptr);
      storm_triggered = service.TakeDriftTrigger(&storm_trigger);
    }
    auto storm_candidate = service.RetrainMatcher(retrain);
    RLBENCH_CHECK_MSG(storm_candidate.ok(), "storm retrain failed");
    RLBENCH_CHECK(
        fault::SetSpec("seed=5;serve/shadow/score=any:1").ok());
    RLBENCH_CHECK(
        service.StartShadow(*storm_candidate, metadata, gate).ok());
    serve::ShadowEvent storm_outcome;
    while (storm_outcome.kind == serve::ShadowEvent::Kind::kNone) {
      ServePairs(&service, era_b, &cursor_b, chunk, chunk, nullptr);
      storm_outcome = service.ConsumeShadowEvent();
    }
    fault::Clear();
    service.RearmDrift();
    storm_rolled_back =
        storm_outcome.kind == serve::ShadowEvent::Kind::kRolledBack;
    RLBENCH_CHECK_MSG(storm_rolled_back,
                      "faulted shadow window must roll back");
    // The incumbent (the previously promoted candidate) still serves.
    const size_t probe =
        std::min<size_t>(era_b.size(), 32) / chunk * chunk;
    std::span<const data::LabeledPair> pairs(era_b.data(), probe);
    std::vector<double> direct(probe);
    std::vector<uint8_t> decisions(probe);
    RLBENCH_CHECK(
        (*candidate)->ScoreBatch(context, pairs, direct, decisions).ok());
    std::vector<double> served;
    size_t probe_cursor = 0;
    ServePairs(&service, era_b, &probe_cursor, probe, chunk, &served);
    RLBENCH_CHECK_MSG(served == direct,
                      "rollback did not preserve the incumbent's bits");
    run.manifest().EndPhase();
  }

  serve::DriftStatus final_status = service.DriftSnapshot();
  run.manifest().AddConfig("drift_state", final_status.state);
  run.manifest().AddConfig(
      "drift_windows", static_cast<int64_t>(final_status.windows));
  run.manifest().AddConfig(
      "drift_transitions", static_cast<int64_t>(final_status.transitions));
  run.manifest().AddConfig(
      "drift_triggers", static_cast<int64_t>(final_status.triggers));
  run.manifest().AddConfig("drift_windows_to_trigger",
                           static_cast<int64_t>(windows_to_trigger));
  run.manifest().AddConfig("drift_best_linear_f1",
                           trigger.best_linear_f1);
  run.manifest().AddConfig("drift_complexity_avg",
                           trigger.complexity_avg);
  run.manifest().AddConfig("drift_nlb", trigger.nlb);
  run.manifest().AddConfig("drift_lbm", trigger.lbm);
  run.manifest().AddConfig("drift_sampling_overhead_ratio", overhead_ratio);
  run.manifest().AddConfig("drift_swap_recovery_requests",
                           static_cast<int64_t>(recovery_pairs / chunk));

  std::printf("%s on %s (scale %.2f), window %zu pairs\n", matcher.c_str(),
              dataset.c_str(), scale, window);
  std::printf("detect:   triggered %llu windows into era B "
              "(best linear F1 %.4f, complexity %.4f at trigger)\n",
              static_cast<unsigned long long>(windows_to_trigger),
              trigger.best_linear_f1, trigger.complexity_avg);
  std::printf("overhead: %.3fx vs drift off (%.3fs vs %.3fs)\n",
              overhead_ratio, monitor_seconds, baseline_seconds);
  std::printf("recover:  %s promoted after %zu requests%s\n",
              retrain.c_str(), recovery_pairs / chunk,
              smoke ? ", faulted episode rolled back" : "");

  char buf[512];
  std::string json = "{\n  \"bench\": \"drift\",\n";
  json += "  \"dataset\": \"" + dataset + "\",\n";
  json += "  \"matcher\": \"" + matcher + "\",\n";
  json += "  \"retrain\": \"" + retrain + "\",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"scale\": %.3f,\n  \"window_pairs\": %zu,\n"
                "  \"era_windows\": %zu,\n",
                scale, window, era_windows);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"windows_to_trigger\": %llu,\n"
                "  \"trigger_best_linear_f1\": %.6f,\n"
                "  \"trigger_complexity_avg\": %.6f,\n"
                "  \"trigger_nlb\": %.6f,\n  \"trigger_lbm\": %.6f,\n",
                static_cast<unsigned long long>(windows_to_trigger),
                trigger.best_linear_f1, trigger.complexity_avg, trigger.nlb,
                trigger.lbm);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"sampling_overhead_ratio\": %.4f,\n"
                "  \"baseline_seconds\": %.4f,\n"
                "  \"monitor_seconds\": %.4f,\n"
                "  \"swap_recovery_requests\": %zu,\n"
                "  \"fault_storm_rolled_back\": %s\n}\n",
                overhead_ratio, baseline_seconds, monitor_seconds,
                recovery_pairs / chunk, storm_rolled_back ? "true" : "false");
  json += buf;
  std::string path = benchutil::ResultsDir() + "/BENCH_drift.json";
  Status write = data::FileSource::WriteAtomic(path, json);
  if (!write.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 write.ToString().c_str());
    run.Finish();
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  run.Finish();
  return 0;
}
