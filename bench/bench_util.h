// Shared helpers for the table/figure reproduction harnesses: dataset
// selection flags, automatic scale capping, percentage formatting, and a
// results cache so the figure benches can reuse the expensive matcher runs
// of the table benches.
#ifndef RLBENCH_BENCH_BENCH_UTIL_H_
#define RLBENCH_BENCH_BENCH_UTIL_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/status.h"
#include "core/practical.h"
#include "obs/manifest.h"

namespace rlbench::benchutil {

/// Scale factor capping a benchmark at `max_pairs` labelled pairs.
double AutoScale(size_t total_pairs, size_t max_pairs);

/// Dataset ids from --datasets=Ds1,Ds2 (comma separated); `fallback` when
/// the flag is absent.
std::vector<std::string> SelectIds(const Flags& flags,
                                   const std::vector<std::string>& fallback);

/// Percentage with two decimals, e.g. 0.97654 -> "97.65".
std::string Pct(double fraction);

/// Three decimals, e.g. "0.944".
std::string F3(double value);

// --- Matcher score cache ----------------------------------------------------

struct CachedScore {
  std::string dataset;
  std::string matcher;
  matchers::MatcherGroup group;
  double f1 = 0.0;
};

/// Directory for bench artifacts (created on demand): ./bench_results.
std::string ResultsDir();

/// Persist matcher scores as CSV under ResultsDir()/<name>.csv.
void SaveScores(const std::string& name, const std::vector<CachedScore>& rows);

/// Load a previously saved score file; nullopt when absent or malformed.
std::optional<std::vector<CachedScore>> LoadScores(const std::string& name);

// --- Run bookkeeping --------------------------------------------------------

/// One object per bench binary: owns the run manifest, names the main
/// thread's trace track, and (in Finish) writes the machine-readable
/// artefacts plus the human-readable epilogue line — which is *derived
/// from* the manifest, so the printed seconds and the recorded seconds
/// can never disagree.
///
///   int main(...) {
///     benchutil::BenchRun run("table3_datasets");
///     { obs::ManifestPhase phase(&run.manifest(), "datasets"); ... }
///     run.Finish();
///   }
///
/// Finish() fills in thread count / hardware concurrency, writes the
/// Chrome trace when RLBENCH_TRACE is set, and always writes
/// ResultsDir()/<name>.manifest.json (atomically, via
/// data::FileSource::WriteAtomic).
class BenchRun {
 public:
  explicit BenchRun(const char* name);
  ~BenchRun();

  obs::RunManifest& manifest() { return manifest_; }

  /// Writes trace + manifest and prints the epilogue; idempotent.
  void Finish();

 private:
  obs::RunManifest manifest_;
  bool finished_ = false;
};

// --- Graceful per-dataset degradation ---------------------------------------

/// Run `body(id)` for each dataset id under a manifest phase
/// "dataset/<id>". A failing dataset marks its phase "failed" (with the
/// Status message), prints a warning, and the run continues with the next
/// id. Returns the number of failed datasets — benches exit 0 as long as
/// at least one dataset succeeded.
size_t ForEachDataset(BenchRun& run, const std::vector<std::string>& ids,
                      const std::function<Status(const std::string&)>& body);

/// Record one dataset phase that was timed off-manifest (parallel benches
/// join first, then record in deterministic id order on the main thread).
void RecordDatasetPhase(BenchRun& run, const std::string& id, double seconds,
                        const Status& status);

/// Cap a task's pair count by thinning easy negatives (positives are
/// always kept, so difficulty is preserved or increased). Shared by the
/// matcher harnesses over the blocking-generated benchmarks.
void CapPairs(data::MatchingTask* task, size_t max_pairs);

}  // namespace rlbench::benchutil

#endif  // RLBENCH_BENCH_BENCH_UTIL_H_
