// Table VII: existing vs new benchmarks with a common origin, compared on
// pair completeness (PC), pairs quality (PQ) and imbalance ratio (IR).
//
// For the established benchmarks the candidate set *is* the benchmark, so
// PC is 1.0 relative to its own labelled matches and PQ equals the
// imbalance ratio — this is exactly the paper's point: their undocumented
// blocking yields precision/recall combinations unattainable by principled
// blockers, implying an arbitrary insertion/removal of negative pairs.
//
// Flags: --scale, --recall, --kmax, --max-pairs (existing side).
#include <cstdio>
#include <iostream>
#include <iterator>
#include <string>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/benchmark_builder.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"

using namespace rlbench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 0.35);
  double recall = flags.GetDouble("recall", 0.9);
  int k_max = static_cast<int>(flags.GetInt("kmax", 64));
  size_t max_pairs = static_cast<size_t>(flags.GetInt("max-pairs", 60000));

  benchutil::BenchRun run("table7_comparison");
  run.manifest().AddConfig("scale", scale);
  run.manifest().AddConfig("recall", recall);
  run.manifest().AddConfig("kmax", static_cast<int64_t>(k_max));
  run.manifest().AddConfig("max_pairs", static_cast<int64_t>(max_pairs));

  // The paper's same-origin pairs: (existing, new).
  const std::pair<const char*, const char*> kPairs[] = {
      {"Dt1", "Dn1"}, {"Ds1", "Dn3"}, {"Ds2", "Dn8"}, {"Ds4", "Dn7"},
      {"Ds6", "Dn2"}};

  TablePrinter table("Table VII: existing vs new benchmarks (same origin)");
  table.SetHeader({"existing", "PC", "PQ", "IR", "new", "PC", "PQ", "IR"});

  size_t failed = 0;
  for (const auto& [existing_id, new_id] : kPairs) {
    run.manifest().AddDataset(existing_id);
    run.manifest().AddDataset(new_id);
    std::string pair_name = std::string(existing_id) + "+" + new_id;
    run.manifest().BeginPhase("dataset/" + pair_name);
    const auto* existing_spec = datagen::FindExistingBenchmark(existing_id);
    const auto* new_spec = datagen::FindSourceDataset(new_id);
    if (existing_spec == nullptr || new_spec == nullptr) {
      ++failed;
      run.manifest().FailPhase("unknown dataset pair " + pair_name);
      run.manifest().EndPhase();
      std::fprintf(stderr, "bench: pair %s unknown (continuing)\n",
                   pair_name.c_str());
      continue;
    }
    std::fprintf(stderr, "[table7] %s vs %s...\n", existing_id, new_id);

    double existing_scale =
        benchutil::AutoScale(existing_spec->total_pairs, max_pairs);
    auto task = datagen::BuildExistingBenchmark(*existing_spec,
                                                existing_scale);
    auto stats = task.TotalStats();

    core::NewBenchmarkOptions options;
    options.scale = scale;
    options.min_recall = recall;
    options.k_max = k_max;
    auto benchmark = core::BuildNewBenchmark(*new_spec, options);
    if (!benchmark.ok()) {
      ++failed;
      run.manifest().FailPhase(benchmark.status().ToString());
      run.manifest().EndPhase();
      std::fprintf(stderr, "bench: dataset %s failed: %s (continuing)\n",
                   new_id, benchmark.status().ToString().c_str());
      continue;
    }
    auto new_stats = benchmark->task.TotalStats();

    table.AddRow(
        {existing_id, benchutil::F3(1.0),  // all labelled matches included
         benchutil::F3(stats.ImbalanceRatio()),
         benchutil::Pct(stats.ImbalanceRatio()) + "%", new_id,
         benchutil::F3(benchmark->blocking.metrics.pair_completeness),
         benchutil::F3(benchmark->blocking.metrics.pairs_quality),
         benchutil::Pct(new_stats.ImbalanceRatio()) + "%"});
    run.manifest().EndPhase();
  }
  table.Print(std::cout);
  std::printf(
      "\nReading: at comparable recall the established benchmarks report\n"
      "far higher PQ than a fine-tuned blocker can achieve, evidence that\n"
      "an arbitrary number of negative pairs was inserted or removed.\n");
  run.Finish();
  return failed == std::size(kPairs) ? 1 : 0;
}
