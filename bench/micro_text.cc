// google-benchmark microbenchmarks for the text and embedding kernels that
// dominate the reproduction's runtime: tokenization, set similarities,
// q-gram extraction, edit distances and hashed embeddings.
#include <benchmark/benchmark.h>

#include "embed/hashed_embedding.h"
#include "text/qgrams.h"
#include "text/similarity.h"
#include "text/tokenizer.h"

namespace {

using namespace rlbench;

const char* kShortText = "acme laptop pro xj412 silver 799.00";
const char* kLongText =
    "nordwave solutions manufacturing founded 1987 headquartered in salem "
    "global leading provider platform customers operations quality network "
    "sustainable certified delivering growth strategy excellence portfolio "
    "supply chain research development engineering digital worldwide teams";

void BM_Tokenize(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::Tokenize(kLongText));
  }
}
BENCHMARK(BM_Tokenize);

void BM_TokenSetBuild(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::TokenSet::FromText(kLongText));
  }
}
BENCHMARK(BM_TokenSetBuild);

void BM_SetSimilarities(benchmark::State& state) {
  auto a = text::TokenSet::FromText(kLongText);
  auto b = text::TokenSet::FromText(kShortText);
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::CosineSimilarity(a, b));
    benchmark::DoNotOptimize(text::JaccardSimilarity(a, b));
    benchmark::DoNotOptimize(text::DiceSimilarity(a, b));
  }
}
BENCHMARK(BM_SetSimilarities);

void BM_QGramSet(benchmark::State& state) {
  int q = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::QGramSet(kLongText, q));
  }
}
BENCHMARK(BM_QGramSet)->Arg(2)->Arg(5)->Arg(10);

void BM_Levenshtein(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        text::LevenshteinSimilarity("acme laptop pro xj412",
                                    "acme lapttop xj412 pro"));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_JaroWinkler(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        text::JaroWinklerSimilarity("meridian", "meridiam"));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_EmbedToken(benchmark::State& state) {
  embed::HashedEmbedding model(static_cast<size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.EmbedToken("wireless"));
  }
}
BENCHMARK(BM_EmbedToken)->Arg(16)->Arg(48);

void BM_EmbedText(benchmark::State& state) {
  embed::HashedEmbedding model(48, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.EmbedText(kLongText));
  }
}
BENCHMARK(BM_EmbedText);

}  // namespace

BENCHMARK_MAIN();
