// Table VI: F1 of every matcher on the new benchmarks Dn1..Dn8, using the
// same matcher configurations as Table IV. Scores are cached for the
// Figure 6 harness.
//
// Flags: --scale, --recall, --kmax, --max-pairs (default 4000, caps the
//        candidate set fed to the matchers), --epoch-scale, --datasets=...
#include <cstdio>
#include <iostream>
#include <map>
#include <utility>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "core/benchmark_builder.h"
#include "core/practical.h"
#include "data/split.h"
#include "datagen/catalog.h"
#include "matchers/registry.h"

using namespace rlbench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 0.35);
  double recall = flags.GetDouble("recall", 0.9);
  int k_max = static_cast<int>(flags.GetInt("kmax", 64));
  size_t max_pairs = static_cast<size_t>(flags.GetInt("max-pairs", 4000));
  double epoch_scale = flags.GetDouble("epoch-scale", 1.0);

  benchutil::BenchRun run("table6_matchers_new");
  run.manifest().AddConfig("scale", scale);
  run.manifest().AddConfig("recall", recall);
  run.manifest().AddConfig("kmax", static_cast<int64_t>(k_max));
  run.manifest().AddConfig("max_pairs", static_cast<int64_t>(max_pairs));
  run.manifest().AddConfig("epoch_scale", epoch_scale);

  std::vector<std::string> fallback;
  for (const auto& spec : datagen::SourceDatasets()) {
    fallback.push_back(spec.id);
  }
  auto ids = benchutil::SelectIds(flags, fallback);
  run.manifest().SetDatasets(ids);

  std::vector<std::string> row_order;
  std::map<std::string, std::map<std::string, double>> matrix;
  std::map<std::string, matchers::MatcherGroup> groups;
  std::vector<benchutil::CachedScore> cache;

  size_t failed = benchutil::ForEachDataset(
      run, ids, [&](const std::string& id) -> Status {
        const auto* spec = datagen::FindSourceDataset(id);
        if (spec == nullptr) {
          return Status::NotFound("unknown dataset id " + id);
        }
        std::fprintf(stderr, "[table6] %s...\n", id.c_str());
        core::NewBenchmarkOptions options;
        options.scale = scale;
        options.min_recall = recall;
        options.k_max = k_max;
        auto built = core::BuildNewBenchmark(*spec, options);
        if (!built.ok()) return built.status();
        core::NewBenchmark benchmark = std::move(built).value();
        benchutil::CapPairs(&benchmark.task, max_pairs);
        matchers::MatchingContext context(&benchmark.task);

        matchers::RegistryOptions registry;
        registry.epoch_scale = epoch_scale;
        auto lineup = matchers::BuildMatcherLineup(registry);
        auto scores = core::ScoreLineup(context, &lineup);
        for (const auto& score : scores) {
          if (matrix.find(score.name) == matrix.end()) {
            row_order.push_back(score.name);
          }
          matrix[score.name][id] = score.f1;
          groups[score.name] = score.group;
          cache.push_back({id, score.name, score.group, score.f1});
        }
        return Status::OK();
      });

  TablePrinter table("Table VI: F1 per method and new dataset (x100)");
  std::vector<std::string> header = {"method"};
  header.insert(header.end(), ids.begin(), ids.end());
  table.SetHeader(std::move(header));
  auto section = [&](matchers::MatcherGroup group, const char* label) {
    table.AddRow({label});
    for (const auto& name : row_order) {
      if (groups[name] != group) continue;
      std::vector<std::string> row = {name};
      for (const auto& id : ids) {
        auto it = matrix[name].find(id);
        row.push_back(it == matrix[name].end() ? "-"
                                               : benchutil::Pct(it->second));
      }
      table.AddRow(std::move(row));
    }
    table.AddSeparator();
  };
  section(matchers::MatcherGroup::kDeepLearning,
          "(a) DL-based matching algorithms");
  section(matchers::MatcherGroup::kClassicMl,
          "(b) Non-neural, non-linear ML-based matching algorithms");
  section(matchers::MatcherGroup::kLinear,
          "(c) Non-neural, linear supervised matching algorithms");
  section(matchers::MatcherGroup::kZeroShot,
          "(d) Training-free zero-shot matching algorithms");
  table.Print(std::cout);

  benchutil::SaveScores("table6_scores", cache);
  std::printf("\nScores cached to %s/table6_scores.csv (used by "
              "fig6_practical_new).\n",
              benchutil::ResultsDir().c_str());
  run.Finish();
  return failed == ids.size() ? 1 : 0;
}
