// Figure 5: the 17 complexity measures per new benchmark Dn1..Dn8.
//
// Flags: --scale, --recall, --kmax, --sample (default 2000), --datasets=...
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "core/benchmark_builder.h"
#include "core/complexity.h"
#include "datagen/catalog.h"

using namespace rlbench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 0.35);
  double recall = flags.GetDouble("recall", 0.9);
  int k_max = static_cast<int>(flags.GetInt("kmax", 64));
  size_t sample = static_cast<size_t>(flags.GetInt("sample", 2000));

  benchutil::BenchRun run("fig5_complexity_new");
  run.manifest().AddConfig("scale", scale);
  run.manifest().AddConfig("recall", recall);
  run.manifest().AddConfig("kmax", static_cast<int64_t>(k_max));
  run.manifest().AddConfig("sample", static_cast<int64_t>(sample));

  std::vector<std::string> fallback;
  for (const auto& spec : datagen::SourceDatasets()) {
    fallback.push_back(spec.id);
  }
  auto ids = benchutil::SelectIds(flags, fallback);
  run.manifest().SetDatasets(ids);

  TablePrinter table(
      "Figure 5 (data series): complexity measures per new dataset");
  // Resolve ids serially (bad-flag path), then fan the datasets out across
  // the pool at grain 1; progress lines may interleave but reports land in
  // indexed slots and the table keeps the original id order. Inner
  // Parallel* calls run inline, so reports match a serial drive.
  std::vector<const datagen::SourceDatasetSpec*> specs(ids.size(), nullptr);
  for (size_t i = 0; i < ids.size(); ++i) {
    specs[i] = datagen::FindSourceDataset(ids[i]);
  }
  std::vector<core::ComplexityReport> reports(specs.size());
  std::vector<Status> statuses(specs.size(), Status::OK());
  std::vector<double> seconds(specs.size(), 0.0);
  ParallelFor(0, specs.size(), 1, [&](size_t i) {
    if (specs[i] == nullptr) {
      statuses[i] = Status::NotFound("unknown dataset id " + ids[i]);
      return;
    }
    Stopwatch watch;
    std::fprintf(stderr, "[fig5] %s...\n", specs[i]->id.c_str());
    core::NewBenchmarkOptions options;
    options.scale = scale;
    options.min_recall = recall;
    options.k_max = k_max;
    auto benchmark = core::BuildNewBenchmark(*specs[i], options);
    if (!benchmark.ok()) {
      statuses[i] = benchmark.status();
      seconds[i] = watch.ElapsedSeconds();
      return;
    }
    matchers::MatchingContext context(&benchmark->task);
    core::ComplexityOptions complexity_options;
    complexity_options.max_points = sample;
    reports[i] = core::ComputeComplexity(core::PairFeaturePoints(context),
                                         complexity_options);
    seconds[i] = watch.ElapsedSeconds();
  });
  size_t failed = 0;
  bool header_set = false;
  for (size_t i = 0; i < specs.size(); ++i) {
    if (!statuses[i].ok()) ++failed;
    benchutil::RecordDatasetPhase(run, ids[i], seconds[i], statuses[i]);
    if (!statuses[i].ok()) continue;
    if (!header_set) {
      std::vector<std::string> header = {"dataset"};
      for (const auto& [name, value] : reports[i].Items()) {
        header.push_back(name);
      }
      header.push_back("avg");
      table.SetHeader(std::move(header));
      header_set = true;
    }
    std::vector<std::string> row = {specs[i]->id};
    for (const auto& [name, value] : reports[i].Items()) {
      row.push_back(FormatDouble(value, 2));
    }
    row.push_back(benchutil::F3(reports[i].Average()));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf(
      "\nReading: the paper finds averages below 0.40 only for the\n"
      "bibliographic Dn3/Dn8 (and the outlier Dn5).\n");
  run.Finish();
  return failed == ids.size() ? 1 : 0;
}
