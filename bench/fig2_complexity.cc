// Figure 2: the 17 complexity measures per established dataset, plus the
// per-dataset average. Rows are datasets, columns are measures (Table I
// order); the O(n^2) measures run on a stratified subsample.
//
// Flags: --max-pairs=<n> (default 60000), --sample=<n> (default 2000),
//        --datasets=...
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "core/complexity.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"

using namespace rlbench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  size_t max_pairs = static_cast<size_t>(flags.GetInt("max-pairs", 60000));
  size_t sample = static_cast<size_t>(flags.GetInt("sample", 2000));
  Stopwatch watch;

  std::vector<std::string> fallback;
  for (const auto& spec : datagen::ExistingBenchmarks()) {
    fallback.push_back(spec.id);
  }
  auto ids = benchutil::SelectIds(flags, fallback);

  TablePrinter table(
      "Figure 2 (data series): complexity measures per established dataset "
      "(sample=" + std::to_string(sample) + ")");
  bool header_set = false;

  for (const auto& id : ids) {
    const auto* spec = datagen::FindExistingBenchmark(id);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown dataset id %s\n", id.c_str());
      return 1;
    }
    double scale = benchutil::AutoScale(spec->total_pairs, max_pairs);
    auto task = datagen::BuildExistingBenchmark(*spec, scale);
    matchers::MatchingContext context(&task);
    core::ComplexityOptions options;
    options.max_points = sample;
    auto report =
        core::ComputeComplexity(core::PairFeaturePoints(context), options);

    if (!header_set) {
      std::vector<std::string> header = {"dataset"};
      for (const auto& [name, value] : report.Items()) header.push_back(name);
      header.push_back("avg");
      table.SetHeader(std::move(header));
      header_set = true;
    }
    std::vector<std::string> row = {spec->id};
    for (const auto& [name, value] : report.Items()) {
      row.push_back(FormatDouble(value, 2));
    }
    row.push_back(benchutil::F3(report.Average()));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf(
      "\nReading: a mean score below 0.400 indicates an easy classification\n"
      "task (the paper marks only Ds4, Ds6, Dd4, Dt1, Dt2 as challenging).\n");
  benchutil::PrintElapsed("fig2_complexity", watch.ElapsedSeconds());
  return 0;
}
