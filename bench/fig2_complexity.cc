// Figure 2: the 17 complexity measures per established dataset, plus the
// per-dataset average. Rows are datasets, columns are measures (Table I
// order); the O(n^2) measures run on a stratified subsample.
//
// Flags: --max-pairs=<n> (default 60000), --sample=<n> (default 2000),
//        --datasets=...
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "core/complexity.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"

using namespace rlbench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  size_t max_pairs = static_cast<size_t>(flags.GetInt("max-pairs", 60000));
  size_t sample = static_cast<size_t>(flags.GetInt("sample", 2000));

  benchutil::BenchRun run("fig2_complexity");
  run.manifest().AddConfig("max_pairs", static_cast<int64_t>(max_pairs));
  run.manifest().AddConfig("sample", static_cast<int64_t>(sample));

  std::vector<std::string> fallback;
  for (const auto& spec : datagen::ExistingBenchmarks()) {
    fallback.push_back(spec.id);
  }
  auto ids = benchutil::SelectIds(flags, fallback);
  run.manifest().SetDatasets(ids);

  TablePrinter table(
      "Figure 2 (data series): complexity measures per established dataset "
      "(sample=" + std::to_string(sample) + ")");

  // Resolve ids serially (bad-flag path), then fan the datasets out across
  // the pool at grain 1. Inner Parallel* calls run inline, so every report
  // matches a serial drive bit for bit; the table is assembled serially
  // afterwards in the original id order.
  std::vector<const datagen::ExistingBenchmarkSpec*> specs(ids.size(), nullptr);
  for (size_t i = 0; i < ids.size(); ++i) {
    specs[i] = datagen::FindExistingBenchmark(ids[i]);
  }
  std::vector<core::ComplexityReport> reports(specs.size());
  std::vector<double> seconds(specs.size(), 0.0);
  ParallelFor(0, specs.size(), 1, [&](size_t i) {
    if (specs[i] == nullptr) return;
    Stopwatch watch;
    double scale = benchutil::AutoScale(specs[i]->total_pairs, max_pairs);
    auto task = datagen::BuildExistingBenchmark(*specs[i], scale);
    matchers::MatchingContext context(&task);
    core::ComplexityOptions options;
    options.max_points = sample;
    reports[i] =
        core::ComputeComplexity(core::PairFeaturePoints(context), options);
    seconds[i] = watch.ElapsedSeconds();
  });
  size_t failed = 0;
  bool header_set = false;
  for (size_t i = 0; i < specs.size(); ++i) {
    Status status = specs[i] == nullptr
                        ? Status::NotFound("unknown dataset id " + ids[i])
                        : Status::OK();
    if (!status.ok()) ++failed;
    benchutil::RecordDatasetPhase(run, ids[i], seconds[i], status);
    if (specs[i] == nullptr) continue;
    if (!header_set) {
      std::vector<std::string> header = {"dataset"};
      for (const auto& [name, value] : reports[i].Items()) {
        header.push_back(name);
      }
      header.push_back("avg");
      table.SetHeader(std::move(header));
      header_set = true;
    }
    std::vector<std::string> row = {specs[i]->id};
    for (const auto& [name, value] : reports[i].Items()) {
      row.push_back(FormatDouble(value, 2));
    }
    row.push_back(benchutil::F3(reports[i].Average()));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf(
      "\nReading: a mean score below 0.400 indicates an easy classification\n"
      "task (the paper marks only Ds4, Ds6, Dd4, Dt1, Dt2 as challenging).\n");
  run.Finish();
  return failed == ids.size() ? 1 : 0;
}
