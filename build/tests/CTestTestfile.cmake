# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;20;rlbench_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(text_test "/root/repo/build/tests/text_test")
set_tests_properties(text_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;28;rlbench_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(data_test "/root/repo/build/tests/data_test")
set_tests_properties(data_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;39;rlbench_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(embed_test "/root/repo/build/tests/embed_test")
set_tests_properties(embed_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;49;rlbench_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ml_test "/root/repo/build/tests/ml_test")
set_tests_properties(ml_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;54;rlbench_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(datagen_test "/root/repo/build/tests/datagen_test")
set_tests_properties(datagen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;63;rlbench_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(block_test "/root/repo/build/tests/block_test")
set_tests_properties(block_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;71;rlbench_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(matchers_test "/root/repo/build/tests/matchers_test")
set_tests_properties(matchers_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;77;rlbench_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;84;rlbench_add_test;/root/repo/tests/CMakeLists.txt;0;")
