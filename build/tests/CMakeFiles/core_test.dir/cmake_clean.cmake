file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/builder_edge_test.cc.o"
  "CMakeFiles/core_test.dir/core/builder_edge_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/complexity_property_test.cc.o"
  "CMakeFiles/core_test.dir/core/complexity_property_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/complexity_test.cc.o"
  "CMakeFiles/core_test.dir/core/complexity_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/excluded_measures_test.cc.o"
  "CMakeFiles/core_test.dir/core/excluded_measures_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/linearity_schema_test.cc.o"
  "CMakeFiles/core_test.dir/core/linearity_schema_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/linearity_test.cc.o"
  "CMakeFiles/core_test.dir/core/linearity_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/pipeline_test.cc.o"
  "CMakeFiles/core_test.dir/core/pipeline_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/practical_test.cc.o"
  "CMakeFiles/core_test.dir/core/practical_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/resolution_test.cc.o"
  "CMakeFiles/core_test.dir/core/resolution_test.cc.o.d"
  "core_test"
  "core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
