file(REMOVE_RECURSE
  "CMakeFiles/matchers_test.dir/matchers/context_test.cc.o"
  "CMakeFiles/matchers_test.dir/matchers/context_test.cc.o.d"
  "CMakeFiles/matchers_test.dir/matchers/esde_test.cc.o"
  "CMakeFiles/matchers_test.dir/matchers/esde_test.cc.o.d"
  "CMakeFiles/matchers_test.dir/matchers/matchers_test.cc.o"
  "CMakeFiles/matchers_test.dir/matchers/matchers_test.cc.o.d"
  "CMakeFiles/matchers_test.dir/matchers/shape_test.cc.o"
  "CMakeFiles/matchers_test.dir/matchers/shape_test.cc.o.d"
  "matchers_test"
  "matchers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matchers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
