file(REMOVE_RECURSE
  "CMakeFiles/ml_test.dir/ml/calibration_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/calibration_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/classifiers_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/classifiers_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/gbdt_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/gbdt_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/gmm_knn_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/gmm_knn_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/metrics_extra_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/metrics_extra_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/metrics_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/metrics_test.cc.o.d"
  "ml_test"
  "ml_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
