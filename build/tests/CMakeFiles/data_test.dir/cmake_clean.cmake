file(REMOVE_RECURSE
  "CMakeFiles/data_test.dir/data/benchmark_io_test.cc.o"
  "CMakeFiles/data_test.dir/data/benchmark_io_test.cc.o.d"
  "CMakeFiles/data_test.dir/data/csv_fuzz_test.cc.o"
  "CMakeFiles/data_test.dir/data/csv_fuzz_test.cc.o.d"
  "CMakeFiles/data_test.dir/data/csv_test.cc.o"
  "CMakeFiles/data_test.dir/data/csv_test.cc.o.d"
  "CMakeFiles/data_test.dir/data/feature_cache_test.cc.o"
  "CMakeFiles/data_test.dir/data/feature_cache_test.cc.o.d"
  "CMakeFiles/data_test.dir/data/record_test.cc.o"
  "CMakeFiles/data_test.dir/data/record_test.cc.o.d"
  "CMakeFiles/data_test.dir/data/split_test.cc.o"
  "CMakeFiles/data_test.dir/data/split_test.cc.o.d"
  "CMakeFiles/data_test.dir/data/task_test.cc.o"
  "CMakeFiles/data_test.dir/data/task_test.cc.o.d"
  "data_test"
  "data_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
