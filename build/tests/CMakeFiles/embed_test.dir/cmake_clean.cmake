file(REMOVE_RECURSE
  "CMakeFiles/embed_test.dir/embed/embedding_test.cc.o"
  "CMakeFiles/embed_test.dir/embed/embedding_test.cc.o.d"
  "CMakeFiles/embed_test.dir/embed/vector_ops_test.cc.o"
  "CMakeFiles/embed_test.dir/embed/vector_ops_test.cc.o.d"
  "embed_test"
  "embed_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
