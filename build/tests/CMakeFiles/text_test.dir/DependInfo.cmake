
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/text/metric_properties_test.cc" "tests/CMakeFiles/text_test.dir/text/metric_properties_test.cc.o" "gcc" "tests/CMakeFiles/text_test.dir/text/metric_properties_test.cc.o.d"
  "/root/repo/tests/text/normalize_test.cc" "tests/CMakeFiles/text_test.dir/text/normalize_test.cc.o" "gcc" "tests/CMakeFiles/text_test.dir/text/normalize_test.cc.o.d"
  "/root/repo/tests/text/qgrams_test.cc" "tests/CMakeFiles/text_test.dir/text/qgrams_test.cc.o" "gcc" "tests/CMakeFiles/text_test.dir/text/qgrams_test.cc.o.d"
  "/root/repo/tests/text/similarity_extra_test.cc" "tests/CMakeFiles/text_test.dir/text/similarity_extra_test.cc.o" "gcc" "tests/CMakeFiles/text_test.dir/text/similarity_extra_test.cc.o.d"
  "/root/repo/tests/text/similarity_test.cc" "tests/CMakeFiles/text_test.dir/text/similarity_test.cc.o" "gcc" "tests/CMakeFiles/text_test.dir/text/similarity_test.cc.o.d"
  "/root/repo/tests/text/tfidf_test.cc" "tests/CMakeFiles/text_test.dir/text/tfidf_test.cc.o" "gcc" "tests/CMakeFiles/text_test.dir/text/tfidf_test.cc.o.d"
  "/root/repo/tests/text/tokenizer_test.cc" "tests/CMakeFiles/text_test.dir/text/tokenizer_test.cc.o" "gcc" "tests/CMakeFiles/text_test.dir/text/tokenizer_test.cc.o.d"
  "/root/repo/tests/text/tokenset_reference_test.cc" "tests/CMakeFiles/text_test.dir/text/tokenset_reference_test.cc.o" "gcc" "tests/CMakeFiles/text_test.dir/text/tokenset_reference_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rlbench_core.dir/DependInfo.cmake"
  "/root/repo/build/src/matchers/CMakeFiles/rlbench_matchers.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/rlbench_block.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/rlbench_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/rlbench_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/rlbench_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rlbench_data.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rlbench_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rlbench_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
