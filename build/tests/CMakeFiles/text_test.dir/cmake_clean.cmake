file(REMOVE_RECURSE
  "CMakeFiles/text_test.dir/text/metric_properties_test.cc.o"
  "CMakeFiles/text_test.dir/text/metric_properties_test.cc.o.d"
  "CMakeFiles/text_test.dir/text/normalize_test.cc.o"
  "CMakeFiles/text_test.dir/text/normalize_test.cc.o.d"
  "CMakeFiles/text_test.dir/text/qgrams_test.cc.o"
  "CMakeFiles/text_test.dir/text/qgrams_test.cc.o.d"
  "CMakeFiles/text_test.dir/text/similarity_extra_test.cc.o"
  "CMakeFiles/text_test.dir/text/similarity_extra_test.cc.o.d"
  "CMakeFiles/text_test.dir/text/similarity_test.cc.o"
  "CMakeFiles/text_test.dir/text/similarity_test.cc.o.d"
  "CMakeFiles/text_test.dir/text/tfidf_test.cc.o"
  "CMakeFiles/text_test.dir/text/tfidf_test.cc.o.d"
  "CMakeFiles/text_test.dir/text/tokenizer_test.cc.o"
  "CMakeFiles/text_test.dir/text/tokenizer_test.cc.o.d"
  "CMakeFiles/text_test.dir/text/tokenset_reference_test.cc.o"
  "CMakeFiles/text_test.dir/text/tokenset_reference_test.cc.o.d"
  "text_test"
  "text_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
