file(REMOVE_RECURSE
  "CMakeFiles/ablation_difficulty.dir/ablation_difficulty.cc.o"
  "CMakeFiles/ablation_difficulty.dir/ablation_difficulty.cc.o.d"
  "ablation_difficulty"
  "ablation_difficulty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_difficulty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
