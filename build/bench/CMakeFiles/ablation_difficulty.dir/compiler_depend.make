# Empty compiler generated dependencies file for ablation_difficulty.
# This may be replaced when dependencies are built.
