file(REMOVE_RECURSE
  "CMakeFiles/ablation_blocking.dir/ablation_blocking.cc.o"
  "CMakeFiles/ablation_blocking.dir/ablation_blocking.cc.o.d"
  "ablation_blocking"
  "ablation_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
