# Empty dependencies file for table5_newbench.
# This may be replaced when dependencies are built.
