file(REMOVE_RECURSE
  "CMakeFiles/table5_newbench.dir/table5_newbench.cc.o"
  "CMakeFiles/table5_newbench.dir/table5_newbench.cc.o.d"
  "table5_newbench"
  "table5_newbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_newbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
