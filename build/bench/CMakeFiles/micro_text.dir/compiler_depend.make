# Empty compiler generated dependencies file for micro_text.
# This may be replaced when dependencies are built.
