file(REMOVE_RECURSE
  "CMakeFiles/fig3_practical.dir/fig3_practical.cc.o"
  "CMakeFiles/fig3_practical.dir/fig3_practical.cc.o.d"
  "fig3_practical"
  "fig3_practical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_practical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
