# Empty compiler generated dependencies file for fig3_practical.
# This may be replaced when dependencies are built.
