file(REMOVE_RECURSE
  "CMakeFiles/fig2_complexity.dir/fig2_complexity.cc.o"
  "CMakeFiles/fig2_complexity.dir/fig2_complexity.cc.o.d"
  "fig2_complexity"
  "fig2_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
