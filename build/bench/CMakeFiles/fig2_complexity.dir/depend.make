# Empty dependencies file for fig2_complexity.
# This may be replaced when dependencies are built.
