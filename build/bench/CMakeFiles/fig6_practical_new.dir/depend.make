# Empty dependencies file for fig6_practical_new.
# This may be replaced when dependencies are built.
