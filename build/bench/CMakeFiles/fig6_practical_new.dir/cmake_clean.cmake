file(REMOVE_RECURSE
  "CMakeFiles/fig6_practical_new.dir/fig6_practical_new.cc.o"
  "CMakeFiles/fig6_practical_new.dir/fig6_practical_new.cc.o.d"
  "fig6_practical_new"
  "fig6_practical_new.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_practical_new.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
