# Empty compiler generated dependencies file for table6_matchers_new.
# This may be replaced when dependencies are built.
