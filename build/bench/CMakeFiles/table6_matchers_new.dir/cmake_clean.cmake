file(REMOVE_RECURSE
  "CMakeFiles/table6_matchers_new.dir/table6_matchers_new.cc.o"
  "CMakeFiles/table6_matchers_new.dir/table6_matchers_new.cc.o.d"
  "table6_matchers_new"
  "table6_matchers_new.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_matchers_new.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
