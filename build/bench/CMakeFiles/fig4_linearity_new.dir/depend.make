# Empty dependencies file for fig4_linearity_new.
# This may be replaced when dependencies are built.
