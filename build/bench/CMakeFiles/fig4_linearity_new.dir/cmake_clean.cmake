file(REMOVE_RECURSE
  "CMakeFiles/fig4_linearity_new.dir/fig4_linearity_new.cc.o"
  "CMakeFiles/fig4_linearity_new.dir/fig4_linearity_new.cc.o.d"
  "fig4_linearity_new"
  "fig4_linearity_new.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_linearity_new.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
