# Empty compiler generated dependencies file for rlbench_benchutil.
# This may be replaced when dependencies are built.
