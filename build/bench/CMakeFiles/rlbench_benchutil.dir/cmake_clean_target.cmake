file(REMOVE_RECURSE
  "librlbench_benchutil.a"
)
