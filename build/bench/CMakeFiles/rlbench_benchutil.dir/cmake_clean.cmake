file(REMOVE_RECURSE
  "CMakeFiles/rlbench_benchutil.dir/bench_util.cc.o"
  "CMakeFiles/rlbench_benchutil.dir/bench_util.cc.o.d"
  "librlbench_benchutil.a"
  "librlbench_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlbench_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
