# Empty compiler generated dependencies file for table7_comparison.
# This may be replaced when dependencies are built.
