# Empty dependencies file for table4_matchers.
# This may be replaced when dependencies are built.
