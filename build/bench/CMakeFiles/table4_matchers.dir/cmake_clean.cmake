file(REMOVE_RECURSE
  "CMakeFiles/table4_matchers.dir/table4_matchers.cc.o"
  "CMakeFiles/table4_matchers.dir/table4_matchers.cc.o.d"
  "table4_matchers"
  "table4_matchers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_matchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
