file(REMOVE_RECURSE
  "CMakeFiles/fig5_complexity_new.dir/fig5_complexity_new.cc.o"
  "CMakeFiles/fig5_complexity_new.dir/fig5_complexity_new.cc.o.d"
  "fig5_complexity_new"
  "fig5_complexity_new.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_complexity_new.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
