# Empty compiler generated dependencies file for fig5_complexity_new.
# This may be replaced when dependencies are built.
