# Empty dependencies file for fig1_linearity.
# This may be replaced when dependencies are built.
