file(REMOVE_RECURSE
  "CMakeFiles/fig1_linearity.dir/fig1_linearity.cc.o"
  "CMakeFiles/fig1_linearity.dir/fig1_linearity.cc.o.d"
  "fig1_linearity"
  "fig1_linearity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_linearity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
