file(REMOVE_RECURSE
  "CMakeFiles/build_new_benchmark.dir/build_new_benchmark.cpp.o"
  "CMakeFiles/build_new_benchmark.dir/build_new_benchmark.cpp.o.d"
  "build_new_benchmark"
  "build_new_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_new_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
