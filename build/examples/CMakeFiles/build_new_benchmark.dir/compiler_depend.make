# Empty compiler generated dependencies file for build_new_benchmark.
# This may be replaced when dependencies are built.
