# Empty compiler generated dependencies file for assess_benchmark.
# This may be replaced when dependencies are built.
