file(REMOVE_RECURSE
  "CMakeFiles/assess_benchmark.dir/assess_benchmark.cpp.o"
  "CMakeFiles/assess_benchmark.dir/assess_benchmark.cpp.o.d"
  "assess_benchmark"
  "assess_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assess_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
