file(REMOVE_RECURSE
  "CMakeFiles/train_matcher.dir/train_matcher.cpp.o"
  "CMakeFiles/train_matcher.dir/train_matcher.cpp.o.d"
  "train_matcher"
  "train_matcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_matcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
