# Empty compiler generated dependencies file for train_matcher.
# This may be replaced when dependencies are built.
