file(REMOVE_RECURSE
  "CMakeFiles/resolve_pipeline.dir/resolve_pipeline.cpp.o"
  "CMakeFiles/resolve_pipeline.dir/resolve_pipeline.cpp.o.d"
  "resolve_pipeline"
  "resolve_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resolve_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
