# Empty dependencies file for resolve_pipeline.
# This may be replaced when dependencies are built.
