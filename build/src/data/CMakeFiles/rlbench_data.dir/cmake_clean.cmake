file(REMOVE_RECURSE
  "CMakeFiles/rlbench_data.dir/benchmark_io.cc.o"
  "CMakeFiles/rlbench_data.dir/benchmark_io.cc.o.d"
  "CMakeFiles/rlbench_data.dir/csv.cc.o"
  "CMakeFiles/rlbench_data.dir/csv.cc.o.d"
  "CMakeFiles/rlbench_data.dir/feature_cache.cc.o"
  "CMakeFiles/rlbench_data.dir/feature_cache.cc.o.d"
  "CMakeFiles/rlbench_data.dir/record.cc.o"
  "CMakeFiles/rlbench_data.dir/record.cc.o.d"
  "CMakeFiles/rlbench_data.dir/split.cc.o"
  "CMakeFiles/rlbench_data.dir/split.cc.o.d"
  "CMakeFiles/rlbench_data.dir/task.cc.o"
  "CMakeFiles/rlbench_data.dir/task.cc.o.d"
  "librlbench_data.a"
  "librlbench_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlbench_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
