
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/benchmark_io.cc" "src/data/CMakeFiles/rlbench_data.dir/benchmark_io.cc.o" "gcc" "src/data/CMakeFiles/rlbench_data.dir/benchmark_io.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/data/CMakeFiles/rlbench_data.dir/csv.cc.o" "gcc" "src/data/CMakeFiles/rlbench_data.dir/csv.cc.o.d"
  "/root/repo/src/data/feature_cache.cc" "src/data/CMakeFiles/rlbench_data.dir/feature_cache.cc.o" "gcc" "src/data/CMakeFiles/rlbench_data.dir/feature_cache.cc.o.d"
  "/root/repo/src/data/record.cc" "src/data/CMakeFiles/rlbench_data.dir/record.cc.o" "gcc" "src/data/CMakeFiles/rlbench_data.dir/record.cc.o.d"
  "/root/repo/src/data/split.cc" "src/data/CMakeFiles/rlbench_data.dir/split.cc.o" "gcc" "src/data/CMakeFiles/rlbench_data.dir/split.cc.o.d"
  "/root/repo/src/data/task.cc" "src/data/CMakeFiles/rlbench_data.dir/task.cc.o" "gcc" "src/data/CMakeFiles/rlbench_data.dir/task.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rlbench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rlbench_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
