file(REMOVE_RECURSE
  "librlbench_data.a"
)
