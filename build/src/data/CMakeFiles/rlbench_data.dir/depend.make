# Empty dependencies file for rlbench_data.
# This may be replaced when dependencies are built.
