file(REMOVE_RECURSE
  "CMakeFiles/rlbench_core.dir/benchmark_builder.cc.o"
  "CMakeFiles/rlbench_core.dir/benchmark_builder.cc.o.d"
  "CMakeFiles/rlbench_core.dir/complexity.cc.o"
  "CMakeFiles/rlbench_core.dir/complexity.cc.o.d"
  "CMakeFiles/rlbench_core.dir/linearity.cc.o"
  "CMakeFiles/rlbench_core.dir/linearity.cc.o.d"
  "CMakeFiles/rlbench_core.dir/practical.cc.o"
  "CMakeFiles/rlbench_core.dir/practical.cc.o.d"
  "CMakeFiles/rlbench_core.dir/resolution.cc.o"
  "CMakeFiles/rlbench_core.dir/resolution.cc.o.d"
  "librlbench_core.a"
  "librlbench_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlbench_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
