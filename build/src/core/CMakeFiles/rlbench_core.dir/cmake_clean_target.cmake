file(REMOVE_RECURSE
  "librlbench_core.a"
)
