# Empty compiler generated dependencies file for rlbench_core.
# This may be replaced when dependencies are built.
