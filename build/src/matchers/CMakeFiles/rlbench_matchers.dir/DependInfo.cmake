
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matchers/context.cc" "src/matchers/CMakeFiles/rlbench_matchers.dir/context.cc.o" "gcc" "src/matchers/CMakeFiles/rlbench_matchers.dir/context.cc.o.d"
  "/root/repo/src/matchers/dl_sims.cc" "src/matchers/CMakeFiles/rlbench_matchers.dir/dl_sims.cc.o" "gcc" "src/matchers/CMakeFiles/rlbench_matchers.dir/dl_sims.cc.o.d"
  "/root/repo/src/matchers/esde.cc" "src/matchers/CMakeFiles/rlbench_matchers.dir/esde.cc.o" "gcc" "src/matchers/CMakeFiles/rlbench_matchers.dir/esde.cc.o.d"
  "/root/repo/src/matchers/features.cc" "src/matchers/CMakeFiles/rlbench_matchers.dir/features.cc.o" "gcc" "src/matchers/CMakeFiles/rlbench_matchers.dir/features.cc.o.d"
  "/root/repo/src/matchers/magellan.cc" "src/matchers/CMakeFiles/rlbench_matchers.dir/magellan.cc.o" "gcc" "src/matchers/CMakeFiles/rlbench_matchers.dir/magellan.cc.o.d"
  "/root/repo/src/matchers/matcher.cc" "src/matchers/CMakeFiles/rlbench_matchers.dir/matcher.cc.o" "gcc" "src/matchers/CMakeFiles/rlbench_matchers.dir/matcher.cc.o.d"
  "/root/repo/src/matchers/registry.cc" "src/matchers/CMakeFiles/rlbench_matchers.dir/registry.cc.o" "gcc" "src/matchers/CMakeFiles/rlbench_matchers.dir/registry.cc.o.d"
  "/root/repo/src/matchers/zeroer.cc" "src/matchers/CMakeFiles/rlbench_matchers.dir/zeroer.cc.o" "gcc" "src/matchers/CMakeFiles/rlbench_matchers.dir/zeroer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rlbench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rlbench_data.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rlbench_text.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/rlbench_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/rlbench_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
