# Empty compiler generated dependencies file for rlbench_matchers.
# This may be replaced when dependencies are built.
