file(REMOVE_RECURSE
  "librlbench_matchers.a"
)
