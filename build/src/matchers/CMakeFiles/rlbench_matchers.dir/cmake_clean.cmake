file(REMOVE_RECURSE
  "CMakeFiles/rlbench_matchers.dir/context.cc.o"
  "CMakeFiles/rlbench_matchers.dir/context.cc.o.d"
  "CMakeFiles/rlbench_matchers.dir/dl_sims.cc.o"
  "CMakeFiles/rlbench_matchers.dir/dl_sims.cc.o.d"
  "CMakeFiles/rlbench_matchers.dir/esde.cc.o"
  "CMakeFiles/rlbench_matchers.dir/esde.cc.o.d"
  "CMakeFiles/rlbench_matchers.dir/features.cc.o"
  "CMakeFiles/rlbench_matchers.dir/features.cc.o.d"
  "CMakeFiles/rlbench_matchers.dir/magellan.cc.o"
  "CMakeFiles/rlbench_matchers.dir/magellan.cc.o.d"
  "CMakeFiles/rlbench_matchers.dir/matcher.cc.o"
  "CMakeFiles/rlbench_matchers.dir/matcher.cc.o.d"
  "CMakeFiles/rlbench_matchers.dir/registry.cc.o"
  "CMakeFiles/rlbench_matchers.dir/registry.cc.o.d"
  "CMakeFiles/rlbench_matchers.dir/zeroer.cc.o"
  "CMakeFiles/rlbench_matchers.dir/zeroer.cc.o.d"
  "librlbench_matchers.a"
  "librlbench_matchers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlbench_matchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
