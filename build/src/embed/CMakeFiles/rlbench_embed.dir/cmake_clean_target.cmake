file(REMOVE_RECURSE
  "librlbench_embed.a"
)
