file(REMOVE_RECURSE
  "CMakeFiles/rlbench_embed.dir/context_encoder.cc.o"
  "CMakeFiles/rlbench_embed.dir/context_encoder.cc.o.d"
  "CMakeFiles/rlbench_embed.dir/hashed_embedding.cc.o"
  "CMakeFiles/rlbench_embed.dir/hashed_embedding.cc.o.d"
  "CMakeFiles/rlbench_embed.dir/vector_ops.cc.o"
  "CMakeFiles/rlbench_embed.dir/vector_ops.cc.o.d"
  "librlbench_embed.a"
  "librlbench_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlbench_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
