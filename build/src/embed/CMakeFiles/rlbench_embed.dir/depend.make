# Empty dependencies file for rlbench_embed.
# This may be replaced when dependencies are built.
