
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/context_encoder.cc" "src/embed/CMakeFiles/rlbench_embed.dir/context_encoder.cc.o" "gcc" "src/embed/CMakeFiles/rlbench_embed.dir/context_encoder.cc.o.d"
  "/root/repo/src/embed/hashed_embedding.cc" "src/embed/CMakeFiles/rlbench_embed.dir/hashed_embedding.cc.o" "gcc" "src/embed/CMakeFiles/rlbench_embed.dir/hashed_embedding.cc.o.d"
  "/root/repo/src/embed/vector_ops.cc" "src/embed/CMakeFiles/rlbench_embed.dir/vector_ops.cc.o" "gcc" "src/embed/CMakeFiles/rlbench_embed.dir/vector_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rlbench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rlbench_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
