file(REMOVE_RECURSE
  "librlbench_ml.a"
)
