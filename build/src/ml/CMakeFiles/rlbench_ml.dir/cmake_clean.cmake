file(REMOVE_RECURSE
  "CMakeFiles/rlbench_ml.dir/calibration.cc.o"
  "CMakeFiles/rlbench_ml.dir/calibration.cc.o.d"
  "CMakeFiles/rlbench_ml.dir/classifier.cc.o"
  "CMakeFiles/rlbench_ml.dir/classifier.cc.o.d"
  "CMakeFiles/rlbench_ml.dir/dataset.cc.o"
  "CMakeFiles/rlbench_ml.dir/dataset.cc.o.d"
  "CMakeFiles/rlbench_ml.dir/decision_tree.cc.o"
  "CMakeFiles/rlbench_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/rlbench_ml.dir/gbdt.cc.o"
  "CMakeFiles/rlbench_ml.dir/gbdt.cc.o.d"
  "CMakeFiles/rlbench_ml.dir/gmm_em.cc.o"
  "CMakeFiles/rlbench_ml.dir/gmm_em.cc.o.d"
  "CMakeFiles/rlbench_ml.dir/knn.cc.o"
  "CMakeFiles/rlbench_ml.dir/knn.cc.o.d"
  "CMakeFiles/rlbench_ml.dir/linear_svm.cc.o"
  "CMakeFiles/rlbench_ml.dir/linear_svm.cc.o.d"
  "CMakeFiles/rlbench_ml.dir/logistic_regression.cc.o"
  "CMakeFiles/rlbench_ml.dir/logistic_regression.cc.o.d"
  "CMakeFiles/rlbench_ml.dir/metrics.cc.o"
  "CMakeFiles/rlbench_ml.dir/metrics.cc.o.d"
  "CMakeFiles/rlbench_ml.dir/mlp.cc.o"
  "CMakeFiles/rlbench_ml.dir/mlp.cc.o.d"
  "CMakeFiles/rlbench_ml.dir/random_forest.cc.o"
  "CMakeFiles/rlbench_ml.dir/random_forest.cc.o.d"
  "CMakeFiles/rlbench_ml.dir/scaler.cc.o"
  "CMakeFiles/rlbench_ml.dir/scaler.cc.o.d"
  "librlbench_ml.a"
  "librlbench_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlbench_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
