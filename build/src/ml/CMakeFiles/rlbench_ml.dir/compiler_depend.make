# Empty compiler generated dependencies file for rlbench_ml.
# This may be replaced when dependencies are built.
