file(REMOVE_RECURSE
  "CMakeFiles/rlbench_text.dir/normalize.cc.o"
  "CMakeFiles/rlbench_text.dir/normalize.cc.o.d"
  "CMakeFiles/rlbench_text.dir/qgrams.cc.o"
  "CMakeFiles/rlbench_text.dir/qgrams.cc.o.d"
  "CMakeFiles/rlbench_text.dir/similarity.cc.o"
  "CMakeFiles/rlbench_text.dir/similarity.cc.o.d"
  "CMakeFiles/rlbench_text.dir/tfidf.cc.o"
  "CMakeFiles/rlbench_text.dir/tfidf.cc.o.d"
  "CMakeFiles/rlbench_text.dir/tokenizer.cc.o"
  "CMakeFiles/rlbench_text.dir/tokenizer.cc.o.d"
  "librlbench_text.a"
  "librlbench_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlbench_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
