# Empty dependencies file for rlbench_text.
# This may be replaced when dependencies are built.
