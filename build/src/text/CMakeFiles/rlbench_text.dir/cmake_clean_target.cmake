file(REMOVE_RECURSE
  "librlbench_text.a"
)
