file(REMOVE_RECURSE
  "CMakeFiles/rlbench_block.dir/deepblocker_sim.cc.o"
  "CMakeFiles/rlbench_block.dir/deepblocker_sim.cc.o.d"
  "CMakeFiles/rlbench_block.dir/metrics.cc.o"
  "CMakeFiles/rlbench_block.dir/metrics.cc.o.d"
  "CMakeFiles/rlbench_block.dir/minhash_blocking.cc.o"
  "CMakeFiles/rlbench_block.dir/minhash_blocking.cc.o.d"
  "CMakeFiles/rlbench_block.dir/qgram_blocking.cc.o"
  "CMakeFiles/rlbench_block.dir/qgram_blocking.cc.o.d"
  "CMakeFiles/rlbench_block.dir/sorted_neighborhood.cc.o"
  "CMakeFiles/rlbench_block.dir/sorted_neighborhood.cc.o.d"
  "CMakeFiles/rlbench_block.dir/token_blocking.cc.o"
  "CMakeFiles/rlbench_block.dir/token_blocking.cc.o.d"
  "librlbench_block.a"
  "librlbench_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlbench_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
