
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/block/deepblocker_sim.cc" "src/block/CMakeFiles/rlbench_block.dir/deepblocker_sim.cc.o" "gcc" "src/block/CMakeFiles/rlbench_block.dir/deepblocker_sim.cc.o.d"
  "/root/repo/src/block/metrics.cc" "src/block/CMakeFiles/rlbench_block.dir/metrics.cc.o" "gcc" "src/block/CMakeFiles/rlbench_block.dir/metrics.cc.o.d"
  "/root/repo/src/block/minhash_blocking.cc" "src/block/CMakeFiles/rlbench_block.dir/minhash_blocking.cc.o" "gcc" "src/block/CMakeFiles/rlbench_block.dir/minhash_blocking.cc.o.d"
  "/root/repo/src/block/qgram_blocking.cc" "src/block/CMakeFiles/rlbench_block.dir/qgram_blocking.cc.o" "gcc" "src/block/CMakeFiles/rlbench_block.dir/qgram_blocking.cc.o.d"
  "/root/repo/src/block/sorted_neighborhood.cc" "src/block/CMakeFiles/rlbench_block.dir/sorted_neighborhood.cc.o" "gcc" "src/block/CMakeFiles/rlbench_block.dir/sorted_neighborhood.cc.o.d"
  "/root/repo/src/block/token_blocking.cc" "src/block/CMakeFiles/rlbench_block.dir/token_blocking.cc.o" "gcc" "src/block/CMakeFiles/rlbench_block.dir/token_blocking.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rlbench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rlbench_data.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rlbench_text.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/rlbench_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/rlbench_datagen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
