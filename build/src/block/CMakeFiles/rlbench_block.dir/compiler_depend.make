# Empty compiler generated dependencies file for rlbench_block.
# This may be replaced when dependencies are built.
