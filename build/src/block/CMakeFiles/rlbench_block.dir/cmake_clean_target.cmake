file(REMOVE_RECURSE
  "librlbench_block.a"
)
