file(REMOVE_RECURSE
  "librlbench_common.a"
)
