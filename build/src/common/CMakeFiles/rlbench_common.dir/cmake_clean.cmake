file(REMOVE_RECURSE
  "CMakeFiles/rlbench_common.dir/flags.cc.o"
  "CMakeFiles/rlbench_common.dir/flags.cc.o.d"
  "CMakeFiles/rlbench_common.dir/rng.cc.o"
  "CMakeFiles/rlbench_common.dir/rng.cc.o.d"
  "CMakeFiles/rlbench_common.dir/status.cc.o"
  "CMakeFiles/rlbench_common.dir/status.cc.o.d"
  "CMakeFiles/rlbench_common.dir/strings.cc.o"
  "CMakeFiles/rlbench_common.dir/strings.cc.o.d"
  "CMakeFiles/rlbench_common.dir/table_printer.cc.o"
  "CMakeFiles/rlbench_common.dir/table_printer.cc.o.d"
  "librlbench_common.a"
  "librlbench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlbench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
