# Empty dependencies file for rlbench_common.
# This may be replaced when dependencies are built.
