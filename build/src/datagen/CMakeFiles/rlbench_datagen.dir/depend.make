# Empty dependencies file for rlbench_datagen.
# This may be replaced when dependencies are built.
