
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/attr_select.cc" "src/datagen/CMakeFiles/rlbench_datagen.dir/attr_select.cc.o" "gcc" "src/datagen/CMakeFiles/rlbench_datagen.dir/attr_select.cc.o.d"
  "/root/repo/src/datagen/catalog.cc" "src/datagen/CMakeFiles/rlbench_datagen.dir/catalog.cc.o" "gcc" "src/datagen/CMakeFiles/rlbench_datagen.dir/catalog.cc.o.d"
  "/root/repo/src/datagen/corruptor.cc" "src/datagen/CMakeFiles/rlbench_datagen.dir/corruptor.cc.o" "gcc" "src/datagen/CMakeFiles/rlbench_datagen.dir/corruptor.cc.o.d"
  "/root/repo/src/datagen/domain.cc" "src/datagen/CMakeFiles/rlbench_datagen.dir/domain.cc.o" "gcc" "src/datagen/CMakeFiles/rlbench_datagen.dir/domain.cc.o.d"
  "/root/repo/src/datagen/source_builder.cc" "src/datagen/CMakeFiles/rlbench_datagen.dir/source_builder.cc.o" "gcc" "src/datagen/CMakeFiles/rlbench_datagen.dir/source_builder.cc.o.d"
  "/root/repo/src/datagen/task_builder.cc" "src/datagen/CMakeFiles/rlbench_datagen.dir/task_builder.cc.o" "gcc" "src/datagen/CMakeFiles/rlbench_datagen.dir/task_builder.cc.o.d"
  "/root/repo/src/datagen/vocab.cc" "src/datagen/CMakeFiles/rlbench_datagen.dir/vocab.cc.o" "gcc" "src/datagen/CMakeFiles/rlbench_datagen.dir/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rlbench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rlbench_data.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rlbench_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
