file(REMOVE_RECURSE
  "CMakeFiles/rlbench_datagen.dir/attr_select.cc.o"
  "CMakeFiles/rlbench_datagen.dir/attr_select.cc.o.d"
  "CMakeFiles/rlbench_datagen.dir/catalog.cc.o"
  "CMakeFiles/rlbench_datagen.dir/catalog.cc.o.d"
  "CMakeFiles/rlbench_datagen.dir/corruptor.cc.o"
  "CMakeFiles/rlbench_datagen.dir/corruptor.cc.o.d"
  "CMakeFiles/rlbench_datagen.dir/domain.cc.o"
  "CMakeFiles/rlbench_datagen.dir/domain.cc.o.d"
  "CMakeFiles/rlbench_datagen.dir/source_builder.cc.o"
  "CMakeFiles/rlbench_datagen.dir/source_builder.cc.o.d"
  "CMakeFiles/rlbench_datagen.dir/task_builder.cc.o"
  "CMakeFiles/rlbench_datagen.dir/task_builder.cc.o.d"
  "CMakeFiles/rlbench_datagen.dir/vocab.cc.o"
  "CMakeFiles/rlbench_datagen.dir/vocab.cc.o.d"
  "librlbench_datagen.a"
  "librlbench_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlbench_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
