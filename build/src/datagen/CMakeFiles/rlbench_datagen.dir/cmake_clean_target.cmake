file(REMOVE_RECURSE
  "librlbench_datagen.a"
)
