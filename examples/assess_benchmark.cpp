// Assess the difficulty of ANY matching benchmark provided as CSV files —
// the a-priori half of the paper's framework applied to user data.
//
// Expects the layout written by build_new_benchmark (or your own files):
//   <dir>/d1.csv, <dir>/d2.csv        record tables (id + attributes)
//   <dir>/train.csv, valid.csv, test.csv   labelled pairs (left,right,label)
//
//   ./build/examples/assess_benchmark --dir=/tmp/rlbench_Dn6 [--lenient]
//
// With --lenient, malformed rows are quarantined (and reported) instead of
// failing the whole import. Without --dir it demonstrates the flow on a
// generated benchmark.
#include <cstdio>

#include "common/flags.h"
#include "core/complexity.h"
#include "core/linearity.h"
#include "data/benchmark_io.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "matchers/esde.h"

using namespace rlbench;

namespace {

int AssessTask(const data::MatchingTask& task) {
  matchers::MatchingContext context(&task);

  auto linearity = core::ComputeLinearity(context);
  std::printf("degree of linearity:  F1max_CS=%.3f (t=%.2f)  "
              "F1max_JS=%.3f (t=%.2f)\n",
              linearity.f1_cosine, linearity.threshold_cosine,
              linearity.f1_jaccard, linearity.threshold_jaccard);

  auto report = core::ComputeComplexity(core::PairFeaturePoints(context));
  std::printf("complexity measures (Table I):\n ");
  for (const auto& [name, value] : report.Items()) {
    std::printf(" %s=%.2f", name.c_str(), value);
  }
  std::printf("\n  average=%.3f\n", report.Average());

  // Cheap a-posteriori probe: the strongest linear baseline.
  double best_linear = 0.0;
  std::string best_name;
  for (auto variant :
       {matchers::EsdeVariant::kSchemaAgnostic,
        matchers::EsdeVariant::kSchemaBased,
        matchers::EsdeVariant::kSchemaAgnosticQgram}) {
    matchers::EsdeMatcher matcher(variant);
    double f1 = matcher.TestF1(context);
    std::printf("  %-9s F1=%.4f\n", matcher.name().c_str(), f1);
    if (f1 > best_linear) {
      best_linear = f1;
      best_name = matcher.name();
    }
  }

  bool linear_easy = linearity.f1_cosine > 0.8 || linearity.f1_jaccard > 0.8;
  bool complexity_easy = report.Average() < 0.40;
  std::printf("\nverdict: linearity says %s, complexity says %s; best "
              "linear matcher (%s) reaches %.1f%%.\n",
              linear_easy ? "EASY" : "challenging",
              complexity_easy ? "EASY" : "challenging", best_name.c_str(),
              100.0 * best_linear);
  std::printf("%s\n",
              linear_easy || complexity_easy
                  ? "-> not suitable for benchmarking complex matchers."
                  : "-> suitable for evaluating learning-based matchers.");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (!flags.Has("dir")) {
    std::printf("no --dir given; assessing the generated Ds6 benchmark\n\n");
    auto task = datagen::BuildExistingBenchmark(
        *datagen::FindExistingBenchmark("Ds6"), 0.3);
    return AssessTask(task);
  }

  std::string dir = flags.GetString("dir", "");
  data::QuarantineReport quarantine;
  data::ImportOptions options;
  options.lenient = flags.Has("lenient");
  options.quarantine = &quarantine;
  auto task = data::ImportBenchmark(dir, "user", options);
  if (!task.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 task.status().ToString().c_str());
    if (!options.lenient) {
      std::fprintf(stderr, "(rerun with --lenient to quarantine bad rows "
                           "instead of failing)\n");
    }
    return 1;
  }
  if (!quarantine.empty()) {
    std::fprintf(stderr, "quarantined %zu malformed row(s):\n%s",
                 quarantine.size(), quarantine.Summary().c_str());
  }
  std::printf("loaded %s: %zu + %zu records, %zu labelled pairs\n\n",
              dir.c_str(), task->left().size(), task->right().size(),
              task->AllPairs().size());
  return AssessTask(*task);
}
