// Train and compare individual matchers on one benchmark — the minimal
// "I want to run a matcher on my data" use of the library, including the
// taxonomy dimensions the paper organises DL matchers by.
//
//   ./build/examples/train_matcher [--dataset=Dd4] [--scale=0.25]
//                                  [--epochs=15]
#include <cstdio>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "matchers/dl_sims.h"
#include "matchers/esde.h"
#include "matchers/magellan.h"
#include "matchers/zeroer.h"
#include "ml/gbdt.h"

using namespace rlbench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string id = flags.GetString("dataset", "Dd4");
  double scale = flags.GetDouble("scale", 0.25);
  int epochs = static_cast<int>(flags.GetInt("epochs", 15));

  const auto* spec = datagen::FindExistingBenchmark(id);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown benchmark %s\n", id.c_str());
    return 1;
  }
  auto task = datagen::BuildExistingBenchmark(*spec, scale);
  auto stats = task.TotalStats();
  std::printf("%s (%s): %zu pairs, IR %.2f%%\n\n", spec->id.c_str(),
              spec->origin.c_str(), stats.total,
              100.0 * stats.ImbalanceRatio());
  matchers::MatchingContext context(&task);

  auto run = [&](matchers::Matcher* matcher, const char* taxonomy) {
    Stopwatch watch;
    double f1 = matcher->TestF1(context);
    std::printf("  %-22s F1=%.4f  (%5.1f s)  %s\n", matcher->name().c_str(),
                f1, watch.ElapsedSeconds(), taxonomy);
  };

  std::printf("DL-based matchers (token context / schema / similarity "
              "context):\n");
  {
    matchers::DlMatcher dm(matchers::DlMethod::kDeepMatcher, epochs);
    run(&dm, "static / homogeneous / local");
    matchers::DlMatcher emt(matchers::DlMethod::kEmTransformerR, epochs);
    run(&emt, "dynamic / heterogeneous / local");
    matchers::DlMatcher gnem(matchers::DlMethod::kGnem, epochs);
    run(&gnem, "dynamic / homogeneous / GLOBAL");
    matchers::DlMatcher ditto(matchers::DlMethod::kDitto, epochs);
    run(&ditto, "dynamic / heterogeneous / local + augmentation");
    matchers::DlMatcher hier(matchers::DlMethod::kHierMatcher, epochs);
    run(&hier, "token alignment / heterogeneous / local");
  }

  std::printf("\nClassic ML matchers:\n");
  {
    matchers::MagellanMatcher rf(matchers::MagellanClassifier::kRandomForest);
    run(&rf, "per-attribute similarity features");
    matchers::ZeroErMatcher zeroer;
    run(&zeroer, "unsupervised Gaussian mixture EM");

    // Library extension beyond the paper's line-up: gradient boosting on
    // the same Magellan features.
    Stopwatch watch;
    ml::GradientBoostedTrees gbdt;
    gbdt.Fit(context.MagellanTrain(), context.MagellanValid());
    auto predictions = gbdt.PredictAll(context.MagellanTest());
    std::vector<uint8_t> truth;
    for (const auto& pair : task.test()) truth.push_back(pair.is_match);
    std::printf("  %-22s F1=%.4f  (%5.1f s)  %s\n", "Magellan-GBDT",
                ml::Evaluate(truth, predictions).F1(),
                watch.ElapsedSeconds(),
                "gradient-boosted trees (library extension)");
  }

  std::printf("\nLinear baselines (ESDE):\n");
  {
    matchers::EsdeMatcher sa(matchers::EsdeVariant::kSchemaAgnostic);
    run(&sa, "one token-set similarity + threshold");
    matchers::EsdeMatcher sbq(matchers::EsdeVariant::kSchemaBasedQgram);
    run(&sbq, "best per-attribute q-gram similarity + threshold");
  }

  std::printf("\nTip: rerun with --dataset=Ds7 to see every method saturate "
              "on an easy benchmark.\n");
  return 0;
}
