// Section VI end-to-end: construct a new benchmark from a raw dataset pair
// with complete ground truth — block with the recall-tuned DeepBlocker
// simulator, label and split the candidates, assess the result with all
// four difficulty measure families, and export the benchmark to CSV so it
// can be consumed by external matching systems.
//
//   ./build/examples/build_new_benchmark [--dataset=Dn6] [--scale=0.2]
//                                        [--recall=0.9] [--out=/tmp/dn6]
#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/flags.h"
#include "core/benchmark_builder.h"
#include "core/complexity.h"
#include "core/linearity.h"
#include "data/benchmark_io.h"
#include "datagen/catalog.h"

using namespace rlbench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string id = flags.GetString("dataset", "Dn6");
  double scale = flags.GetDouble("scale", 0.2);
  double recall = flags.GetDouble("recall", 0.9);
  std::string out_dir = flags.GetString("out", "/tmp/rlbench_" + id);

  const auto* spec = datagen::FindSourceDataset(id);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown source dataset %s (use Dn1..Dn8)\n",
                 id.c_str());
    return 1;
  }

  std::printf("Building new benchmark %s (%s x %s), scale %.2f...\n",
              spec->id.c_str(), spec->d1_name.c_str(), spec->d2_name.c_str(),
              scale);

  core::NewBenchmarkOptions options;
  options.scale = scale;
  options.min_recall = recall;
  auto built = core::BuildNewBenchmark(*spec, options);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  core::NewBenchmark benchmark = std::move(built).value();

  std::printf("blocking: %s -> PC=%.3f PQ=%.3f |C|=%zu |P|=%zu\n",
              block::ConfigToString(benchmark.blocking.config,
                                    benchmark.task.left().schema())
                  .c_str(),
              benchmark.blocking.metrics.pair_completeness,
              benchmark.blocking.metrics.pairs_quality,
              benchmark.blocking.candidates.size(),
              benchmark.blocking.metrics.true_candidates);

  auto stats = benchmark.task.TotalStats();
  std::printf("benchmark: %zu pairs (%zu positive, IR %.2f%%), splits "
              "%zu/%zu/%zu\n",
              stats.total, stats.positives, 100.0 * stats.ImbalanceRatio(),
              benchmark.task.train().size(), benchmark.task.valid().size(),
              benchmark.task.test().size());

  // Step 4 of the methodology: is the result challenging?
  matchers::MatchingContext context(&benchmark.task);
  auto linearity = core::ComputeLinearity(context);
  auto complexity = core::ComputeComplexity(core::PairFeaturePoints(context));
  std::printf("a-priori: F1max_CS=%.3f F1max_JS=%.3f complexity avg=%.3f\n",
              linearity.f1_cosine, linearity.f1_jaccard,
              complexity.Average());
  bool challenging =
      linearity.f1_cosine < 0.8 && complexity.Average() > 0.40;
  std::printf("verdict: %s\n", challenging
                                   ? "challenging (keep it)"
                                   : "easy (rerun with stricter settings)");

  // Export in the standard benchmark layout.
  Status status = data::ExportBenchmark(benchmark.task, out_dir);
  if (!status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("exported to %s (d1.csv, d2.csv, train/valid/test.csv)\n",
              out_dir.c_str());
  return 0;
}
