// End-of-pipeline demo, serving edition: train a matcher, publish it as a
// versioned snapshot, load it back through the ModelRepository, and answer
// match/assess queries through MatchService — the same code path the
// rlbench_serve binary runs, here in-process. A second matcher is then
// published and hot-swapped in without rebuilding the service, and the
// first model's scores are shown to survive the swap bit-for-bit.
//
//   ./build/examples/resolve_pipeline [--dataset=Ds3] [--scale=1.0]
//       [--repo=<dir>]   (default: a fresh directory under /tmp)
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "matchers/context.h"
#include "matchers/registry.h"
#include "serve/model_repository.h"
#include "serve/service.h"

using namespace rlbench;

namespace {

// Train `name` and publish it into `repository`; returns the version.
uint64_t TrainAndPublish(serve::ModelRepository& repository,
                         const matchers::MatchingContext& context,
                         const std::string& name) {
  context.left().Thaw();
  context.right().Thaw();
  auto trained = matchers::TrainServableMatcher(name, context);
  if (!trained.ok()) {
    std::fprintf(stderr, "training %s failed: %s\n", name.c_str(),
                 trained.status().ToString().c_str());
    std::exit(1);
  }
  serve::SnapshotMetadata metadata;
  metadata.matcher_name = (*trained)->matcher_name();
  metadata.dataset_id = context.task().name();
  metadata.num_attrs = (*trained)->num_attrs();
  auto version = repository.Publish(metadata, **trained);
  if (!version.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 version.status().ToString().c_str());
    std::exit(1);
  }
  return *version;
}

// Load a matcher's CURRENT snapshot and make it the served model.
void Install(serve::MatchService& service,
             const serve::ModelRepository& repository,
             const std::string& name) {
  auto snapshot = repository.LoadCurrent(name);
  if (!snapshot.ok() || !service.InstallSnapshot(*snapshot).ok()) {
    std::fprintf(stderr, "installing %s failed\n", name.c_str());
    std::exit(1);
  }
}

// Score one test pair through the queue (submit + drain).
double ScoreOne(serve::MatchService& service, const data::LabeledPair& pair) {
  double score = 0.0;
  auto id = service.Submit({pair}, [&score](const serve::RequestOutcome& o) {
    score = o.status.ok() ? o.results[0].score : -1.0;
  });
  if (!id.ok()) return -1.0;
  service.Drain();
  return score;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string id = flags.GetString("dataset", "Ds3");
  double scale = flags.GetDouble("scale", 1.0);
  std::string root = flags.GetString(
      "repo", "/tmp/rlbench_resolve_repo_" + id);

  const auto* spec = datagen::FindExistingBenchmark(id);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown benchmark %s\n", id.c_str());
    return 1;
  }
  auto task = datagen::BuildExistingBenchmark(*spec, scale);
  matchers::MatchingContext context(&task);
  std::printf("%s: %zu test pairs (%zu positive)\n\n", id.c_str(),
              task.test().size(), task.TestStats().positives);

  // 1. Train two matcher families and publish each as a versioned
  //    snapshot — the models now outlive this process on disk.
  serve::ModelRepository repository(root);
  uint64_t rf_version = TrainAndPublish(repository, context, "Magellan-RF");
  uint64_t esde_version = TrainAndPublish(repository, context, "SAQ-ESDE");
  std::printf("published Magellan-RF v%llu and SAQ-ESDE v%llu under %s\n",
              static_cast<unsigned long long>(rf_version),
              static_cast<unsigned long long>(esde_version), root.c_str());

  // 2. Serve the random forest: load its snapshot from disk (not the
  //    in-memory model) and answer queries through the admission queue.
  serve::MatchService service(&context);
  Install(service, repository, "Magellan-RF");
  data::LabeledPair probe = task.test().front();
  double rf_score = ScoreOne(service, probe);
  std::printf("\nserving Magellan-RF: pair (%u, %u) -> score %.6f\n",
              probe.left, probe.right, rf_score);

  auto rf_assess = service.AssessDataset();
  if (!rf_assess.ok()) return 1;
  std::printf("assess over %zu pairs in %zu micro-batches: F1 %.4f "
              "(precision %.4f, recall %.4f)\n",
              rf_assess->pairs, rf_assess->batches, rf_assess->f1,
              rf_assess->confusion.Precision(),
              rf_assess->confusion.Recall());

  // 3. Hot-swap to the ESDE rules — no service rebuild, queued work is
  //    never dropped, and the caches re-warm for the new feature family.
  Install(service, repository, "SAQ-ESDE");
  std::printf("\nhot-swapped to SAQ-ESDE: pair (%u, %u) -> score %.6f\n",
              probe.left, probe.right, ScoreOne(service, probe));
  auto esde_assess = service.AssessDataset();
  if (!esde_assess.ok()) return 1;
  std::printf("assess: F1 %.4f\n", esde_assess->f1);

  // 4. Swap back: the snapshot round-trip and the swap are both exact, so
  //    the forest's score is bit-identical to step 2.
  Install(service, repository, "Magellan-RF");
  double rf_again = ScoreOne(service, probe);
  std::printf("\nswapped back to Magellan-RF: score %.6f (%s)\n", rf_again,
              rf_again == rf_score ? "bit-identical" : "MISMATCH");
  std::printf("\nThe same snapshots now serve out-of-process too:\n"
              "  ./build/src/serve/rlbench_serve --dataset=%s --repo=%s "
              "--matcher=Magellan-RF\n",
              id.c_str(), root.c_str());
  return rf_again == rf_score ? 0 : 1;
}
