// End-of-pipeline demo: train a matcher, calibrate its scores, and enforce
// the Clean-Clean one-to-one constraint — the post-processing that turns
// per-pair decisions into an entity-level mapping, and the library
// extensions (GBDT, Platt scaling, resolution) working together.
//
//   ./build/examples/resolve_pipeline [--dataset=Ds3] [--scale=1.0]
#include <cstdio>

#include "common/flags.h"
#include "core/resolution.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "matchers/context.h"
#include "ml/calibration.h"
#include "ml/gbdt.h"
#include "ml/metrics.h"

using namespace rlbench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string id = flags.GetString("dataset", "Ds3");
  double scale = flags.GetDouble("scale", 1.0);

  const auto* spec = datagen::FindExistingBenchmark(id);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown benchmark %s\n", id.c_str());
    return 1;
  }
  auto task = datagen::BuildExistingBenchmark(*spec, scale);
  matchers::MatchingContext context(&task);
  std::printf("%s: %zu test pairs (%zu positive)\n\n", id.c_str(),
              task.test().size(), task.TestStats().positives);

  // 1. Train a gradient-boosted matcher on the Magellan features.
  ml::GradientBoostedTrees model;
  model.Fit(context.MagellanTrain(), context.MagellanValid());

  // 2. Calibrate its scores on the validation split (Platt scaling).
  std::vector<double> valid_scores;
  std::vector<uint8_t> valid_labels;
  const auto& valid = context.MagellanValid();
  for (size_t i = 0; i < valid.size(); ++i) {
    valid_scores.push_back(model.PredictScore(valid.row(i)));
    valid_labels.push_back(valid.label(i) ? 1 : 0);
  }
  ml::PlattScaler scaler;
  scaler.Fit(valid_scores, valid_labels);
  std::printf("Platt calibration: p = sigmoid(%.2f * s + %.2f)\n",
              scaler.slope(), scaler.intercept());

  // 3. Score the test pairs and measure ranking quality.
  const auto& test = context.MagellanTest();
  std::vector<double> scores(test.size());
  std::vector<uint8_t> truth(test.size());
  for (size_t i = 0; i < test.size(); ++i) {
    scores[i] = scaler.Transform(model.PredictScore(test.row(i)));
    truth[i] = test.label(i) ? 1 : 0;
  }
  std::printf("average precision of the ranking: %.4f\n",
              ml::AveragePrecision(scores, truth));

  // 4. Enforce the Clean-Clean one-to-one constraint and compare.
  auto impact = core::EvaluateResolution(task.test(), scores);
  std::printf("F1 with plain 0.5 threshold:      %.4f\n",
              impact.f1_before);
  std::printf("F1 after one-to-one resolution:   %.4f\n", impact.f1_after);
  std::printf("\nThe resolution step removes competing sibling pairs on\n"
              "shared records — the global reasoning GNEM approximates,\n"
              "available to any matcher as a post-process.\n");
  return 0;
}
