// Quickstart: generate one easy and one hard benchmark from the catalog,
// measure their difficulty a-priori (degree of linearity, complexity) and
// a-posteriori (a few matchers' F1), and print the comparison.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--scale=0.3]
#include <cstdio>

#include "common/flags.h"
#include "common/strings.h"
#include "core/complexity.h"
#include "core/linearity.h"
#include "core/practical.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "matchers/registry.h"

using namespace rlbench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 0.3);
  std::string datasets = flags.GetString("datasets", "Ds7,Ds4");

  for (const auto& id : SplitAny(datasets, ",")) {
    const auto* spec = datagen::FindExistingBenchmark(id);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown benchmark %s\n", id.c_str());
      return 1;
    }
    std::printf("=== %s (%s) ===\n", spec->id.c_str(), spec->origin.c_str());
    data::MatchingTask task = datagen::BuildExistingBenchmark(*spec, scale);
    auto stats = task.TotalStats();
    std::printf("pairs=%zu positives=%zu IR=%.2f%%\n", stats.total,
                stats.positives, 100.0 * stats.ImbalanceRatio());

    matchers::MatchingContext context(&task);

    // A-priori measures.
    auto linearity = core::ComputeLinearity(context);
    std::printf("linearity: F1_CS=%.3f (t=%.2f)  F1_JS=%.3f (t=%.2f)\n",
                linearity.f1_cosine, linearity.threshold_cosine,
                linearity.f1_jaccard, linearity.threshold_jaccard);
    auto complexity = core::ComputeComplexity(core::PairFeaturePoints(context));
    std::printf("complexity: average=%.3f (f1=%.2f l2=%.2f n1=%.2f n3=%.2f "
                "c2=%.2f)\n",
                complexity.Average(), complexity.f1, complexity.l2,
                complexity.n1, complexity.n3, complexity.c2);

    // A-posteriori: run the full matcher line-up and derive NLB / LBM.
    matchers::RegistryOptions registry;
    auto lineup = matchers::BuildMatcherLineup(registry);
    auto scores = core::ScoreLineup(context, &lineup);
    for (const auto& score : scores) {
      std::printf("  %-22s F1=%.4f\n", score.name.c_str(), score.f1);
    }
    auto practical = core::ComputePractical(scores);
    std::printf("NLB=%.2f%%  LBM=%.2f%%  (best nonlinear=%.4f, best "
                "linear=%.4f)\n\n",
                100.0 * practical.non_linear_boost,
                100.0 * practical.learning_based_margin,
                practical.best_nonlinear_f1, practical.best_linear_f1);
  }
  return 0;
}
