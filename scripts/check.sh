#!/usr/bin/env bash
# One-shot pre-PR gate (and future CI entry point):
#   1. configure + build + ctest under ASan/UBSan (warnings as errors)
#   2. TSan build + the concurrency-bearing tests (parallel pool, frozen
#      feature cache, thread-count invariance, metrics shards)
#   3. observability end-to-end: one bench with RLBENCH_METRICS +
#      RLBENCH_TRACE, manifest + trace validated by
#      tools/validate_manifest.py
#   4. repo lint (tools/rlbench_lint.py)
#   5. clang-tidy over src/ (skipped with a warning if not installed)
#
# Usage: scripts/check.sh [build-dir]   (default: build-asan)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-asan}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== [1/5] build + test under ASan/UBSan =="
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRLBENCH_SANITIZE="address;undefined" \
  -DRLBENCH_WERROR=ON
cmake --build "${BUILD_DIR}" -j "${JOBS}"
# halt_on_error so UBSan findings fail the test run instead of scrolling by.
(
  cd "${BUILD_DIR}"
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ASAN_OPTIONS="detect_leaks=1" \
    ctest --output-on-failure -j "${JOBS}"
)

echo "== [2/5] concurrency tests under TSan =="
TSAN_DIR="${REPO_ROOT}/build-tsan"
cmake -B "${TSAN_DIR}" -S "${REPO_ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRLBENCH_SANITIZE="thread" \
  -DRLBENCH_WERROR=ON
cmake --build "${TSAN_DIR}" -j "${JOBS}" --target \
  common_test data_test core_test obs_test
# Only the tests that exercise the pool and the frozen-cache read phase;
# the full suite already ran under ASan/UBSan above. TSan halts on the
# first race, so a pass here is a proof of race-freedom for these paths.
(
  cd "${TSAN_DIR}"
  TSAN_OPTIONS="halt_on_error=1" ./tests/common_test \
    --gtest_filter='Parallel*:SplitSeed*'
  TSAN_OPTIONS="halt_on_error=1" ./tests/data_test \
    --gtest_filter='FeatureCacheTest.*'
  TSAN_OPTIONS="halt_on_error=1" ./tests/core_test \
    --gtest_filter='ThreadInvarianceTest.*'
  # The lock-free metric shards and per-thread trace buffers under real
  # pool concurrency.
  TSAN_OPTIONS="halt_on_error=1" ./tests/obs_test \
    --gtest_filter='MetricsTest.*:TraceTest.*:ObsInvarianceTest.*'
)
echo "TSan: clean"

echo "== [3/5] observability end-to-end =="
python3 "${REPO_ROOT}/tools/validate_manifest.py" --run \
  "${BUILD_DIR}/bench/table3_datasets" --datasets=Ds1 --scale=0.05
echo "observability: manifest + trace validate"

echo "== [4/5] repo lint =="
python3 "${REPO_ROOT}/tools/rlbench_lint.py" --root "${REPO_ROOT}"
echo "repo lint: clean"

echo "== [5/5] clang-tidy =="
TIDY_BIN="$(command -v clang-tidy || true)"
if [[ -z "${TIDY_BIN}" ]]; then
  for v in 18 17 16 15 14; do
    if command -v "clang-tidy-${v}" >/dev/null; then
      TIDY_BIN="clang-tidy-${v}"
      break
    fi
  done
fi
if [[ -z "${TIDY_BIN}" ]]; then
  echo "WARNING: clang-tidy not installed; skipping tidy stage" >&2
else
  TIDY_DIR="${REPO_ROOT}/build-tidy"
  cmake -B "${TIDY_DIR}" -S "${REPO_ROOT}" \
    -DCMAKE_BUILD_TYPE=Release -DRLBENCH_TIDY=ON
  # Building with CMAKE_CXX_CLANG_TIDY runs tidy on every translation unit;
  # RLBENCH_WERROR stays off so only tidy diagnostics surface here.
  cmake --build "${TIDY_DIR}" -j "${JOBS}" --target \
    rlbench_obs rlbench_common rlbench_text rlbench_data rlbench_embed \
    rlbench_ml rlbench_datagen rlbench_block rlbench_matchers rlbench_core
  echo "clang-tidy: clean"
fi

echo "== all gates passed =="
