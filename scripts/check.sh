#!/usr/bin/env bash
# One-shot pre-PR gate (and future CI entry point):
#   1. configure + build + ctest under ASan/UBSan (warnings as errors)
#   2. serve smoke: rlbench_serve on a loopback port (shed tier + linear
#      fallback armed), rlbench_client round-trip (ping/match/assess/
#      reload/shadow lifecycle), clean shutdown — all under the stage-1
#      sanitizers
#   3. serve overload storm smoke: micro_serve --storm --smoke under
#      ASan/UBSan — an open-loop multi-tenant burst that must walk the
#      shed ladder (>= 1 transition, degraded traffic bit-identical to the
#      linear fallback) with per-tier counts recorded in the manifest
#   4. drift loop smoke: micro_drift --smoke under ASan/UBSan — a
#      difficulty shift must be detected, the EnsembleLink candidate
#      retrained, snapshot round-tripped, shadow-promoted, and a faulted
#      shadow window rolled back; the drift_* manifest keys validated
#   5. TSan build + the concurrency-bearing tests (parallel pool, frozen
#      feature cache, thread-count invariance, metrics shards)
#   6. observability end-to-end: one bench with RLBENCH_METRICS +
#      RLBENCH_TRACE, manifest + trace validated by
#      tools/validate_manifest.py
#   7. vectorized kernels: the differential + golden suites and the
#      columnar store tests re-run explicitly under ASan/UBSan, plus a
#      micro_kernels smoke (scalar-vs-vectorized checksums asserted inside
#      the bench; no perf thresholds under sanitizers)
#   8. out-of-core bulk smoke: macro_bulk --smoke (20k records through
#      both blocking modes, spill-to-disk, per-shard manifests) under the
#      sanitizers, validated by tools/validate_manifest.py
#   9. fault-injection storm: a real bench under RLBENCH_FAULTS across 8
#      seeds with ASan/UBSan armed — graceful degradation may fail
#      datasets, but a crash/abort/sanitizer report fails the gate
#  10. repo lint (tools/rlbench_lint.py), its rule self-tests, and the
#      negative-compilation fixtures (tests/static/)
#  11. Clang thread-safety analysis: full build under -Wthread-safety
#      -Wthread-safety-beta -Werror=thread-safety-analysis (skipped with
#      a warning if clang++ is not installed — GCC has no such analysis)
#  12. clang-tidy over src/ (skipped with a warning if not installed)
#
# Usage: scripts/check.sh [build-dir]   (default: build-asan)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-asan}"
JOBS="$(nproc 2>/dev/null || echo 4)"
SCRATCH_ROOT="$(mktemp -d "${TMPDIR:-/tmp}/rlbench_check.XXXXXX")"
trap 'rm -rf "${SCRATCH_ROOT}"' EXIT

echo "== [1/12] build + test under ASan/UBSan =="
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRLBENCH_SANITIZE="address;undefined" \
  -DRLBENCH_WERROR=ON
cmake --build "${BUILD_DIR}" -j "${JOBS}"
# halt_on_error so UBSan findings fail the test run instead of scrolling by.
(
  cd "${BUILD_DIR}"
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ASAN_OPTIONS="detect_leaks=1" \
    ctest --output-on-failure -j "${JOBS}"
)

echo "== [2/12] serve smoke (client/server round-trip under ASan/UBSan) =="
SERVE_DIR="${SCRATCH_ROOT}/serve"
mkdir -p "${SERVE_DIR}"
PORT_FILE="${SERVE_DIR}/port"
# The server trains Magellan-DT (cheap), publishes it into a fresh
# repository, binds an ephemeral loopback port, and writes it to
# --port_file once it is accepting connections. Shedding and the linear
# fallback tier are armed so the event loop runs its full configuration
# (even though this gentle smoke never trips a tier).
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
ASAN_OPTIONS="detect_leaks=1" \
  "${BUILD_DIR}/src/serve/rlbench_serve" --dataset=Ds3 --scale=0.2 \
  --matcher=Magellan-DT --repo="${SERVE_DIR}/repo" \
  --shed --fallback=SA-ESDE --quotas="smoke=200:50" \
  --port_file="${PORT_FILE}" > "${SERVE_DIR}/server.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 240); do
  [[ -s "${PORT_FILE}" ]] && break
  if ! kill -0 "${SERVE_PID}" 2>/dev/null; then
    echo "serve smoke: server died before binding" >&2
    cat "${SERVE_DIR}/server.log" >&2
    exit 1
  fi
  sleep 0.5
done
if [[ ! -s "${PORT_FILE}" ]]; then
  echo "serve smoke: server never wrote its port file" >&2
  kill "${SERVE_PID}" 2>/dev/null || true
  exit 1
fi
SERVE_PORT="$(cat "${PORT_FILE}")"
SERVE_CLIENT="${BUILD_DIR}/src/serve/rlbench_client"
# Each client call exits non-zero on an error response; set -e fails the
# gate. reload exercises the repository path (the snapshot published on
# startup hot-swaps back in).
"${SERVE_CLIENT}" --port="${SERVE_PORT}" --op=ping
"${SERVE_CLIENT}" --port="${SERVE_PORT}" --op=match --left=0 --right=0
"${SERVE_CLIENT}" --port="${SERVE_PORT}" --op=assess
"${SERVE_CLIENT}" --port="${SERVE_PORT}" --op=stats
"${SERVE_CLIENT}" --port="${SERVE_PORT}" --op=reload --matcher=Magellan-DT
# Shadow lifecycle over the wire: start a candidate, poll it, cancel it.
"${SERVE_CLIENT}" --port="${SERVE_PORT}" --op=shadow_start --matcher=SA-ESDE
"${SERVE_CLIENT}" --port="${SERVE_PORT}" --op=shadow_status
"${SERVE_CLIENT}" --port="${SERVE_PORT}" --op=shadow_cancel
"${SERVE_CLIENT}" --port="${SERVE_PORT}" --op=shutdown
wait "${SERVE_PID}"   # non-zero server exit fails the gate (set -e)
grep -q "shut down cleanly" "${SERVE_DIR}/server.log"
if grep -qE "AddressSanitizer|LeakSanitizer|runtime error:" \
    "${SERVE_DIR}/server.log"; then
  echo "serve smoke: sanitizer report in server log" >&2
  tail -20 "${SERVE_DIR}/server.log" >&2
  exit 1
fi
echo "serve smoke: round-trip ok, clean shutdown"

echo "== [3/12] serve overload storm smoke (micro_serve --storm) =="
# Open-loop multi-tenant overload against the shed-enabled service. The
# bench itself RLBENCH_CHECKs the robustness contract in --smoke mode:
# at least one shed transition fired, degraded traffic exists, and every
# sampled degraded response is bit-identical to the linear fallback run
# directly. The manifest assertions below keep the per-tier counts
# flowing into the artifact (so a reporting regression can't pass).
STORM_DIR="${SCRATCH_ROOT}/serve_storm"
mkdir -p "${STORM_DIR}"
(
  cd "${STORM_DIR}"
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ASAN_OPTIONS="detect_leaks=1" \
    "${BUILD_DIR}/bench/micro_serve" --storm --smoke --scale=0.2 \
    --requests=200
)
python3 - "${STORM_DIR}/bench_results/micro_serve.manifest.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    config = json.load(f)["config"]
for key in ("storm_tier_full", "storm_tier_degraded", "storm_tier_rejected",
            "storm_shed_transitions", "storm_shadow_agreement",
            "storm_identity_checked"):
    if key not in config:
        sys.exit(f"storm smoke: manifest config missing {key}")
if int(config["storm_shed_transitions"]) < 1:
    sys.exit("storm smoke: manifest records no shed transitions")
if int(config["storm_tier_degraded"]) < 1:
    sys.exit("storm smoke: manifest records no degraded requests")
print("storm manifest: per-tier counts present, ladder exercised")
PYEOF
echo "storm smoke: shed ladder walked, degraded tier bit-identical"

echo "== [4/12] drift loop smoke (micro_drift --smoke) =="
# The full reaction under sanitizers: a difficulty shift is detected by
# the drift controller, the EnsembleLink candidate is retrained mid-serve,
# its snapshot round-trips bit-exactly, the shadow gate promotes it, and
# the follow-up episode with candidate-scoring faults armed must roll
# back. All assertions live inside the bench (RLBENCH_CHECK); the
# validator + key checks below keep the drift_* numbers in the artifact.
DRIFT_DIR="${SCRATCH_ROOT}/drift"
mkdir -p "${DRIFT_DIR}"
(
  cd "${DRIFT_DIR}"
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ASAN_OPTIONS="detect_leaks=1" \
    "${BUILD_DIR}/bench/micro_drift" --smoke
)
python3 "${REPO_ROOT}/tools/validate_manifest.py" \
  "${DRIFT_DIR}/bench_results/micro_drift.manifest.json"
python3 - "${DRIFT_DIR}/bench_results/micro_drift.manifest.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    config = json.load(f)["config"]
for key in ("drift_window_pairs", "drift_state", "drift_transitions",
            "drift_windows_to_trigger", "drift_sampling_overhead_ratio",
            "drift_swap_recovery_requests"):
    if key not in config:
        sys.exit(f"drift smoke: manifest config missing {key}")
if int(config["drift_triggers"]) < 2:
    sys.exit("drift smoke: both drift episodes should have triggered")
print("drift manifest: detection, recovery and rollback recorded")
PYEOF
echo "drift smoke: detect -> retrain -> shadow promote, faulted episode rolled back"

echo "== [5/12] concurrency tests under TSan =="
TSAN_DIR="${REPO_ROOT}/build-tsan"
cmake -B "${TSAN_DIR}" -S "${REPO_ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRLBENCH_SANITIZE="thread" \
  -DRLBENCH_WERROR=ON
cmake --build "${TSAN_DIR}" -j "${JOBS}" --target \
  common_test data_test core_test obs_test
# Only the tests that exercise the pool and the frozen-cache read phase;
# the full suite already ran under ASan/UBSan above. TSan halts on the
# first race, so a pass here is a proof of race-freedom for these paths.
(
  cd "${TSAN_DIR}"
  TSAN_OPTIONS="halt_on_error=1" ./tests/common_test \
    --gtest_filter='Parallel*:SplitSeed*'
  TSAN_OPTIONS="halt_on_error=1" ./tests/data_test \
    --gtest_filter='FeatureCacheTest.*'
  TSAN_OPTIONS="halt_on_error=1" ./tests/core_test \
    --gtest_filter='ThreadInvarianceTest.*'
  # The lock-free metric shards and per-thread trace buffers under real
  # pool concurrency.
  TSAN_OPTIONS="halt_on_error=1" ./tests/obs_test \
    --gtest_filter='MetricsTest.*:TraceTest.*:ObsInvarianceTest.*'
)
echo "TSan: clean"

echo "== [6/12] observability end-to-end =="
python3 "${REPO_ROOT}/tools/validate_manifest.py" --run \
  "${BUILD_DIR}/bench/table3_datasets" --datasets=Ds1 --scale=0.05
echo "observability: manifest + trace validate"

echo "== [7/12] vectorized kernels: differential suite + bench smoke =="
# The kernel suites are part of stage 1's full ctest; run them again by
# explicit filter so a test-registration change can never silently drop
# the scalar-vs-vectorized gate from this script.
(
  cd "${BUILD_DIR}"
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ASAN_OPTIONS="detect_leaks=1" \
    ./tests/text_test --gtest_filter='KernelsDifferential*:KernelsGolden*'
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ASAN_OPTIONS="detect_leaks=1" \
    ./tests/data_test --gtest_filter='Columnar*:FeatureCacheCounter*'
)
# micro_kernels asserts scalar == vectorized checksums internally; scale
# and rounds stay tiny because sanitizer timings are meaningless anyway.
(
  cd "${SCRATCH_ROOT}"
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ASAN_OPTIONS="detect_leaks=1" \
    "${BUILD_DIR}/bench/micro_kernels" --scale=0.2 --repeats=1 --rounds=2
)
echo "kernels: differential suites + smoke clean"

echo "== [8/12] out-of-core bulk resolution smoke =="
# macro_bulk --smoke streams 20k records through both blocking modes
# (sorted-neighborhood external sort, MinHash hash partitioning) with the
# sanitizers armed; validate_manifest.py --run checks the run manifest,
# every per-shard manifest (peak_rss_bytes included), and the trace.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
ASAN_OPTIONS="detect_leaks=1" \
  python3 "${REPO_ROOT}/tools/validate_manifest.py" --run \
  "${BUILD_DIR}/bench/macro_bulk" --smoke
echo "bulk smoke: both modes resolved out of core, manifests validate"

echo "== [9/12] fault-injection storm =="
# Drive a real bench through seeded fault storms with the sanitizers armed.
# The degradation contract: failed datasets are fine (the bench exits 0
# while at least one dataset survives, 1 when all fail), but any abort,
# signal, or sanitizer report fails the gate. abort_on_error turns
# sanitizer findings into SIGABRT so they can't masquerade as a clean
# "all datasets failed" exit.
FAULT_SCRATCH="${SCRATCH_ROOT}/fault_storm"
mkdir -p "${FAULT_SCRATCH}"
for seed in 1 2 3 4 5 6 7 8; do
  spec="seed=${seed};data/file/*=any:0.25;data/csv/*=any:0.15"
  spec="${spec};core/build_benchmark=any:0.3"
  status=0
  (
    cd "${FAULT_SCRATCH}"
    UBSAN_OPTIONS="halt_on_error=1:abort_on_error=1:print_stacktrace=1" \
    ASAN_OPTIONS="detect_leaks=1:abort_on_error=1" \
    RLBENCH_FAULTS="${spec}" \
      "${BUILD_DIR}/bench/table5_newbench" --datasets=Dn1,Dn3 --scale=0.05 \
      > "storm_${seed}.log" 2>&1
  ) || status=$?
  if [[ "${status}" -gt 1 ]]; then
    echo "fault storm seed ${seed}: bench died (exit ${status})" >&2
    tail -20 "${FAULT_SCRATCH}/storm_${seed}.log" >&2
    exit 1
  fi
  if grep -qE "AddressSanitizer|LeakSanitizer|runtime error:" \
      "${FAULT_SCRATCH}/storm_${seed}.log"; then
    echo "fault storm seed ${seed}: sanitizer report" >&2
    tail -20 "${FAULT_SCRATCH}/storm_${seed}.log" >&2
    exit 1
  fi
done
echo "fault storm: clean (8 seeds, no crashes, no sanitizer reports)"

echo "== [10/12] repo lint + self-test + negative compilation =="
python3 "${REPO_ROOT}/tools/rlbench_lint.py" --root "${REPO_ROOT}"
python3 "${REPO_ROOT}/tools/rlbench_lint.py" --self-test
# The negative-compilation fixtures also run as a ctest in stage 1; run
# them here with the best compiler available so the Clang-only
# thread-safety fixtures are exercised whenever clang++ is installed.
CFT_CXX="$(command -v clang++ || true)"
CFT_ID="Clang"
if [[ -z "${CFT_CXX}" ]]; then
  CFT_CXX="$(command -v g++ || true)"
  CFT_ID="GNU"
fi
python3 "${REPO_ROOT}/tests/static/compile_fail_test.py" \
  --compiler "${CFT_CXX}" --compiler-id "${CFT_ID}" \
  --include "${REPO_ROOT}/src"
echo "repo lint: clean"

echo "== [11/12] Clang thread-safety analysis =="
TS_CLANG="$(command -v clang++ || true)"
if [[ -z "${TS_CLANG}" ]]; then
  for v in 18 17 16 15 14; do
    if command -v "clang++-${v}" >/dev/null; then
      TS_CLANG="clang++-${v}"
      break
    fi
  done
fi
if [[ -z "${TS_CLANG}" ]]; then
  echo "WARNING: clang++ not installed; skipping thread-safety analysis" \
    "(annotations compile as no-ops under GCC)" >&2
else
  TS_DIR="${REPO_ROOT}/build-threadsafety"
  cmake -B "${TS_DIR}" -S "${REPO_ROOT}" \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_COMPILER="${TS_CLANG}" \
    -DRLBENCH_THREAD_SAFETY=ON
  cmake --build "${TS_DIR}" -j "${JOBS}"
  echo "thread-safety analysis: clean"
fi

echo "== [12/12] clang-tidy =="
TIDY_BIN="$(command -v clang-tidy || true)"
if [[ -z "${TIDY_BIN}" ]]; then
  for v in 18 17 16 15 14; do
    if command -v "clang-tidy-${v}" >/dev/null; then
      TIDY_BIN="clang-tidy-${v}"
      break
    fi
  done
fi
if [[ -z "${TIDY_BIN}" ]]; then
  echo "WARNING: clang-tidy not installed; skipping tidy stage" >&2
else
  TIDY_DIR="${REPO_ROOT}/build-tidy"
  cmake -B "${TIDY_DIR}" -S "${REPO_ROOT}" \
    -DCMAKE_BUILD_TYPE=Release -DRLBENCH_TIDY=ON
  # Building with CMAKE_CXX_CLANG_TIDY runs tidy on every translation unit;
  # RLBENCH_WERROR stays off so only tidy diagnostics surface here.
  cmake --build "${TIDY_DIR}" -j "${JOBS}" --target \
    rlbench_obs rlbench_common rlbench_text rlbench_data rlbench_embed \
    rlbench_ml rlbench_datagen rlbench_block rlbench_matchers rlbench_core \
    rlbench_serve
  echo "clang-tidy: clean"
fi

echo "== all gates passed =="
