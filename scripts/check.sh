#!/usr/bin/env bash
# One-shot pre-PR gate (and future CI entry point):
#   1. configure + build + ctest under ASan/UBSan (warnings as errors)
#   2. TSan build + the concurrency-bearing tests (parallel pool, frozen
#      feature cache, thread-count invariance, metrics shards)
#   3. observability end-to-end: one bench with RLBENCH_METRICS +
#      RLBENCH_TRACE, manifest + trace validated by
#      tools/validate_manifest.py
#   4. fault-injection storm: a real bench under RLBENCH_FAULTS across 8
#      seeds with ASan/UBSan armed — graceful degradation may fail
#      datasets, but a crash/abort/sanitizer report fails the gate
#   5. repo lint (tools/rlbench_lint.py)
#   6. clang-tidy over src/ (skipped with a warning if not installed)
#
# Usage: scripts/check.sh [build-dir]   (default: build-asan)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-asan}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== [1/6] build + test under ASan/UBSan =="
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRLBENCH_SANITIZE="address;undefined" \
  -DRLBENCH_WERROR=ON
cmake --build "${BUILD_DIR}" -j "${JOBS}"
# halt_on_error so UBSan findings fail the test run instead of scrolling by.
(
  cd "${BUILD_DIR}"
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ASAN_OPTIONS="detect_leaks=1" \
    ctest --output-on-failure -j "${JOBS}"
)

echo "== [2/6] concurrency tests under TSan =="
TSAN_DIR="${REPO_ROOT}/build-tsan"
cmake -B "${TSAN_DIR}" -S "${REPO_ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRLBENCH_SANITIZE="thread" \
  -DRLBENCH_WERROR=ON
cmake --build "${TSAN_DIR}" -j "${JOBS}" --target \
  common_test data_test core_test obs_test
# Only the tests that exercise the pool and the frozen-cache read phase;
# the full suite already ran under ASan/UBSan above. TSan halts on the
# first race, so a pass here is a proof of race-freedom for these paths.
(
  cd "${TSAN_DIR}"
  TSAN_OPTIONS="halt_on_error=1" ./tests/common_test \
    --gtest_filter='Parallel*:SplitSeed*'
  TSAN_OPTIONS="halt_on_error=1" ./tests/data_test \
    --gtest_filter='FeatureCacheTest.*'
  TSAN_OPTIONS="halt_on_error=1" ./tests/core_test \
    --gtest_filter='ThreadInvarianceTest.*'
  # The lock-free metric shards and per-thread trace buffers under real
  # pool concurrency.
  TSAN_OPTIONS="halt_on_error=1" ./tests/obs_test \
    --gtest_filter='MetricsTest.*:TraceTest.*:ObsInvarianceTest.*'
)
echo "TSan: clean"

echo "== [3/6] observability end-to-end =="
python3 "${REPO_ROOT}/tools/validate_manifest.py" --run \
  "${BUILD_DIR}/bench/table3_datasets" --datasets=Ds1 --scale=0.05
echo "observability: manifest + trace validate"

echo "== [4/6] fault-injection storm =="
# Drive a real bench through seeded fault storms with the sanitizers armed.
# The degradation contract: failed datasets are fine (the bench exits 0
# while at least one dataset survives, 1 when all fail), but any abort,
# signal, or sanitizer report fails the gate. abort_on_error turns
# sanitizer findings into SIGABRT so they can't masquerade as a clean
# "all datasets failed" exit.
FAULT_SCRATCH="$(mktemp -d "${TMPDIR:-/tmp}/rlbench_fault_storm.XXXXXX")"
trap 'rm -rf "${FAULT_SCRATCH}"' EXIT
for seed in 1 2 3 4 5 6 7 8; do
  spec="seed=${seed};data/file/*=any:0.25;data/csv/*=any:0.15"
  spec="${spec};core/build_benchmark=any:0.3"
  status=0
  (
    cd "${FAULT_SCRATCH}"
    UBSAN_OPTIONS="halt_on_error=1:abort_on_error=1:print_stacktrace=1" \
    ASAN_OPTIONS="detect_leaks=1:abort_on_error=1" \
    RLBENCH_FAULTS="${spec}" \
      "${BUILD_DIR}/bench/table5_newbench" --datasets=Dn1,Dn3 --scale=0.05 \
      > "storm_${seed}.log" 2>&1
  ) || status=$?
  if [[ "${status}" -gt 1 ]]; then
    echo "fault storm seed ${seed}: bench died (exit ${status})" >&2
    tail -20 "${FAULT_SCRATCH}/storm_${seed}.log" >&2
    exit 1
  fi
  if grep -qE "AddressSanitizer|LeakSanitizer|runtime error:" \
      "${FAULT_SCRATCH}/storm_${seed}.log"; then
    echo "fault storm seed ${seed}: sanitizer report" >&2
    tail -20 "${FAULT_SCRATCH}/storm_${seed}.log" >&2
    exit 1
  fi
done
echo "fault storm: clean (8 seeds, no crashes, no sanitizer reports)"

echo "== [5/6] repo lint =="
python3 "${REPO_ROOT}/tools/rlbench_lint.py" --root "${REPO_ROOT}"
echo "repo lint: clean"

echo "== [6/6] clang-tidy =="
TIDY_BIN="$(command -v clang-tidy || true)"
if [[ -z "${TIDY_BIN}" ]]; then
  for v in 18 17 16 15 14; do
    if command -v "clang-tidy-${v}" >/dev/null; then
      TIDY_BIN="clang-tidy-${v}"
      break
    fi
  done
fi
if [[ -z "${TIDY_BIN}" ]]; then
  echo "WARNING: clang-tidy not installed; skipping tidy stage" >&2
else
  TIDY_DIR="${REPO_ROOT}/build-tidy"
  cmake -B "${TIDY_DIR}" -S "${REPO_ROOT}" \
    -DCMAKE_BUILD_TYPE=Release -DRLBENCH_TIDY=ON
  # Building with CMAKE_CXX_CLANG_TIDY runs tidy on every translation unit;
  # RLBENCH_WERROR stays off so only tidy diagnostics surface here.
  cmake --build "${TIDY_DIR}" -j "${JOBS}" --target \
    rlbench_obs rlbench_common rlbench_text rlbench_data rlbench_embed \
    rlbench_ml rlbench_datagen rlbench_block rlbench_matchers rlbench_core
  echo "clang-tidy: clean"
fi

echo "== all gates passed =="
