// FileSource tests: plain read/write semantics, the atomic
// write-temp-then-rename guarantee under injected faults, and the
// bounded-retry behaviour. Fault specs are armed programmatically with
// probability 1 so every outcome is forced, never sampled.
#include "data/file_source.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "fault/failpoint.h"

namespace rlbench::data {
namespace {

class FileSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Clear();
    dir_ = std::filesystem::temp_directory_path() / "rlbench_file_source_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fault::Clear();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& file) { return (dir_ / file).string(); }

  std::filesystem::path dir_;
};

TEST_F(FileSourceTest, RoundTripPreservesBinaryContent) {
  std::string content("a\0b\r\nc", 6);
  std::string path = Path("blob.bin");
  ASSERT_TRUE(FileSource::WriteAll(path, content).ok());
  auto read = FileSource::ReadAll(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, content);
}

TEST_F(FileSourceTest, MissingFileIsNotFound) {
  auto read = FileSource::ReadAll(Path("absent.txt"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST_F(FileSourceTest, WriteAtomicLeavesNoTempFile) {
  std::string path = Path("out.json");
  ASSERT_TRUE(FileSource::WriteAtomic(path, "{}\n").ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(FileSourceTest, InjectedReadIOErrorIsStatus) {
  std::string path = Path("data.txt");
  ASSERT_TRUE(FileSource::WriteAll(path, "payload").ok());
  ASSERT_TRUE(fault::SetSpec("seed=1;data/file/read=io:1").ok());
  auto read = FileSource::ReadAll(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

TEST_F(FileSourceTest, InjectedAllocPressureIsResourceExhausted) {
  std::string path = Path("data.txt");
  ASSERT_TRUE(FileSource::WriteAll(path, "payload").ok());
  ASSERT_TRUE(fault::SetSpec("seed=1;data/file/read=alloc:1").ok());
  auto read = FileSource::ReadAll(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(FileSourceTest, InjectedTruncateShortensTheBuffer) {
  std::string path = Path("data.txt");
  std::string content = "0123456789";
  ASSERT_TRUE(FileSource::WriteAll(path, content).ok());
  ASSERT_TRUE(fault::SetSpec("seed=1;data/file/read=truncate:1").ok());
  auto read = FileSource::ReadAll(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_LE(read->size(), content.size());
  // The on-disk file is untouched; only the returned buffer was cut.
  fault::Clear();
  auto reread = FileSource::ReadAll(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(*reread, content);
}

TEST_F(FileSourceTest, InjectedCorruptMutatesWithinBounds) {
  std::string path = Path("data.txt");
  std::string content = "0123456789";
  ASSERT_TRUE(FileSource::WriteAll(path, content).ok());
  ASSERT_TRUE(fault::SetSpec("seed=1;data/file/read=corrupt:1").ok());
  auto read = FileSource::ReadAll(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->size(), content.size());  // corruption mangles, never grows
}

TEST_F(FileSourceTest, AtomicWriteKeepsOldContentWhenTempWriteFails) {
  std::string path = Path("manifest.json");
  ASSERT_TRUE(FileSource::WriteAtomic(path, "old").ok());
  // Every attempt fails in the temp-write stage: the target must be
  // untouched and the temp file cleaned up.
  ASSERT_TRUE(fault::SetSpec("seed=2;data/file/tmp_write=io:1").ok());
  Status write = FileSource::WriteAtomic(path, "new");
  ASSERT_FALSE(write.ok());
  EXPECT_EQ(write.code(), StatusCode::kIOError);
  fault::Clear();
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  auto read = FileSource::ReadAll(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "old");
}

TEST_F(FileSourceTest, AtomicWriteKeepsOldContentWhenRenameFails) {
  std::string path = Path("manifest.json");
  ASSERT_TRUE(FileSource::WriteAtomic(path, "old").ok());
  ASSERT_TRUE(fault::SetSpec("seed=2;data/file/rename=io:1").ok());
  Status write = FileSource::WriteAtomic(path, "new");
  ASSERT_FALSE(write.ok());
  fault::Clear();
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  auto read = FileSource::ReadAll(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "old");
}

TEST_F(FileSourceTest, AtomicWriteRetriesPastACappedFault) {
  std::string path = Path("manifest.json");
  // The first attempt fails (max=1 cap), the retry lands the new content.
  ASSERT_TRUE(fault::SetSpec("seed=3;data/file/tmp_write=io:1:max=1").ok());
  AtomicWriteOptions options;
  options.max_attempts = 3;
  options.backoff_ms = 0;  // keep the test fast
  Status write = FileSource::WriteAtomic(path, "fresh", options);
  ASSERT_TRUE(write.ok()) << write.ToString();
  fault::Clear();
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  auto read = FileSource::ReadAll(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "fresh");
}

TEST_F(FileSourceTest, AtomicWriteGivesUpAfterMaxAttempts) {
  std::string path = Path("manifest.json");
  ASSERT_TRUE(fault::SetSpec("seed=3;data/file/tmp_write=io:1").ok());
  AtomicWriteOptions options;
  options.max_attempts = 2;
  options.backoff_ms = 0;
  Status write = FileSource::WriteAtomic(path, "never", options);
  ASSERT_FALSE(write.ok());
  auto stats = fault::Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].hits, 2u);  // exactly max_attempts tries, then stop
  fault::Clear();
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(FileSourceTest, TornPlainWriteLeavesPrefixAndReportsError) {
  std::string path = Path("scratch.txt");
  std::string content = "0123456789";
  ASSERT_TRUE(fault::SetSpec("seed=4;data/file/write=truncate:1").ok());
  Status write = FileSource::WriteAll(path, content);
  ASSERT_FALSE(write.ok());
  EXPECT_EQ(write.code(), StatusCode::kIOError);
  fault::Clear();
  // WriteAll is documented non-atomic: a prefix may land on disk.
  if (std::filesystem::exists(path)) {
    auto read = FileSource::ReadAll(path);
    ASSERT_TRUE(read.ok());
    EXPECT_LE(read->size(), content.size());
    EXPECT_EQ(content.compare(0, read->size(), *read), 0);
  }
}

}  // namespace
}  // namespace rlbench::data
