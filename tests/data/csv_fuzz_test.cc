// Randomised round-trip tests for the CSV layer: arbitrary byte content
// (commas, quotes, newlines, high bytes) must survive write -> parse.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/csv.h"

namespace rlbench::data {
namespace {

std::string RandomField(Rng* rng) {
  static const char kAlphabet[] =
      "abcXYZ019 ,\"\n\r\t;|\\'\xC3\xA9";  // includes the CSV specials
  size_t len = rng->Index(20);
  std::string out;
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng->Index(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

TEST(CsvFuzzTest, RandomRoundTrips) {
  Rng rng(71);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::vector<std::string>> rows;
    size_t num_rows = 1 + rng.Index(10);
    size_t num_cols = 1 + rng.Index(6);
    for (size_t r = 0; r < num_rows; ++r) {
      std::vector<std::string> row;
      for (size_t c = 0; c < num_cols; ++c) row.push_back(RandomField(&rng));
      rows.push_back(std::move(row));
    }
    auto parsed = ParseCsv(WriteCsv(rows));
    ASSERT_TRUE(parsed.ok()) << "trial " << trial;
    ASSERT_EQ(parsed->size(), rows.size()) << "trial " << trial;
    for (size_t r = 0; r < rows.size(); ++r) {
      EXPECT_EQ((*parsed)[r], rows[r]) << "trial " << trial << " row " << r;
    }
  }
}

TEST(CsvFuzzTest, CarriageReturnOnlyInsideQuotesSurvives) {
  std::vector<std::vector<std::string>> rows = {{"a\rb"}};
  auto parsed = ParseCsv(WriteCsv(rows));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)[0][0], "a\rb");
}

TEST(CsvFuzzTest, EmptyFieldsAndRows) {
  std::vector<std::vector<std::string>> rows = {{"", "", ""}, {"x", "", "y"}};
  auto parsed = ParseCsv(WriteCsv(rows));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, rows);
}

}  // namespace
}  // namespace rlbench::data
