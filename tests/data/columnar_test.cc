// ColumnarStore invariants (ISSUE 7): the columnar view must be a lossless
// re-layout of the row-oriented caches (same token multisets, same q-gram
// hash sets, same per-value derivations), its interning must not depend on
// record insertion order, and its build must be byte-identical at 1/2/7
// threads — the same contract tests/core/thread_invariance_test.cc pins for
// the measure pipeline.
#include "data/columnar.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/strings.h"
#include "data/feature_cache.h"
#include "data/record.h"
#include "obs/metrics.h"
#include "text/qgrams.h"
#include "text/tokenizer.h"

namespace rlbench::data {
namespace {

Table MakeLeft() {
  Table table("left", Schema({"title", "brand", "price"}));
  table.Add(Record{"l0", {"iPhone 14 Pro 128", "Apple", "999"}});
  table.Add(Record{"l1", {"Galaxy S22 Ultra", "Samsung", "1199.99"}});
  table.Add(Record{"l2", {"", "", ""}});  // fully empty record
  table.Add(Record{"l3", {"usb type c cable", "generic", "9 dollars"}});
  table.Add(Record{"l4", {"Café München 漢字", "ÜBER", "-3e2"}});
  return table;
}

Table MakeRight() {
  Table table("right", Schema({"title", "brand", "price"}));
  table.Add(Record{"r0", {"iphone 14 pro", "apple", " 999 "}});
  table.Add(Record{"r1", {"pixel 7", "google", "599"}});
  table.Add(Record{"r2", {"galaxy s22", "samsung", "not a number"}});
  return table;
}

TEST(ColumnarStoreTest, TokenColumnsRoundTripTheRowCaches) {
  Table left = MakeLeft();
  Table right = MakeRight();
  RecordFeatureCache lcache(&left);
  RecordFeatureCache rcache(&right);
  ColumnarStore store(lcache, rcache);

  ASSERT_EQ(store.num_attrs(), 3u);
  ASSERT_EQ(store.num_records(ColumnarStore::kLeft), left.size());
  ASSERT_EQ(store.num_records(ColumnarStore::kRight), right.size());

  const RecordFeatureCache* caches[] = {&lcache, &rcache};
  for (size_t side : {ColumnarStore::kLeft, ColumnarStore::kRight}) {
    const RecordFeatureCache& cache = *caches[side];
    for (size_t r = 0; r < store.num_records(side); ++r) {
      // Sorted unique ids map 1:1 onto the sorted unique hash set: same
      // cardinality, and every id resolves back to a vocab hash that the
      // row-oriented set contains (rank interning is a monotone bijection).
      auto ids = store.TokenIdsAll(side, r);
      const auto& hashes = cache.TokenSetAll(r).hashes();
      ASSERT_EQ(ids.size(), hashes.size());
      EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
      for (size_t k = 0; k < hashes.size(); ++k) {
        EXPECT_EQ(store.IdOfHash(hashes[k]), ids[k]);
      }
      for (size_t a = 0; a < store.num_attrs(); ++a) {
        auto attr_ids = store.TokenIdsAttr(side, r, a);
        ASSERT_EQ(attr_ids.size(), cache.TokenSetAttr(r, a).size());
        // Ordered token sequence round-trips exactly.
        auto seq = store.TokenSeqAttr(side, r, a);
        const auto& tokens = cache.TokensAttr(r, a);
        ASSERT_EQ(seq.size(), tokens.size());
        for (size_t t = 0; t < tokens.size(); ++t) {
          EXPECT_EQ(seq[t], tokens[t]);
        }
        // Per-value hoisted derivations match recomputation from the row.
        const std::string& raw = cache.table().record(r).values[a];
        EXPECT_EQ(store.Value(side, r, a), raw);
        EXPECT_EQ(store.LoweredValue(side, r, a), ToLowerAscii(raw));
      }
    }
  }
}

TEST(ColumnarStoreTest, QGramColumnsRoundTripTheRowCaches) {
  Table left = MakeLeft();
  Table right = MakeRight();
  RecordFeatureCache lcache(&left);
  RecordFeatureCache rcache(&right);
  ColumnarStore store(lcache, rcache);
  EXPECT_FALSE(store.qgrams_built());
  store.EnsureQGrams();
  EXPECT_TRUE(store.qgrams_built());
  store.EnsureQGrams();  // idempotent

  const RecordFeatureCache* caches[] = {&lcache, &rcache};
  for (size_t side : {ColumnarStore::kLeft, ColumnarStore::kRight}) {
    const RecordFeatureCache& cache = *caches[side];
    for (size_t r = 0; r < store.num_records(side); ++r) {
      for (int q = ColumnarStore::kMinQ; q <= ColumnarStore::kMaxQ; ++q) {
        auto all = store.QGramAll(side, r, q);
        const auto& expected = cache.QGramSetAll(r, q).hashes();
        ASSERT_EQ(std::vector<uint64_t>(all.begin(), all.end()), expected);
        for (size_t a = 0; a < store.num_attrs(); ++a) {
          auto got = store.QGramAttr(side, r, a, q);
          const auto& want = cache.QGramSetAttr(r, a, q).hashes();
          ASSERT_EQ(std::vector<uint64_t>(got.begin(), got.end()), want);
        }
      }
    }
  }
}

TEST(ColumnarStoreTest, NumericColumnsMatchHoistedParse) {
  Table left = MakeLeft();
  Table right = MakeRight();
  RecordFeatureCache lcache(&left);
  RecordFeatureCache rcache(&right);
  ColumnarStore store(lcache, rcache);
  // "999" parses; " 999 " parses after the whitespace strip; "9 dollars",
  // "not a number" and "" do not.
  EXPECT_TRUE(store.NumericOk(ColumnarStore::kLeft, 0, 2));
  EXPECT_EQ(store.NumericValue(ColumnarStore::kLeft, 0, 2), 999.0);
  EXPECT_TRUE(store.NumericOk(ColumnarStore::kRight, 0, 2));
  EXPECT_EQ(store.NumericValue(ColumnarStore::kRight, 0, 2), 999.0);
  EXPECT_TRUE(store.NumericOk(ColumnarStore::kLeft, 4, 2));
  EXPECT_EQ(store.NumericValue(ColumnarStore::kLeft, 4, 2), -300.0);
  EXPECT_FALSE(store.NumericOk(ColumnarStore::kLeft, 3, 2));
  EXPECT_FALSE(store.NumericOk(ColumnarStore::kLeft, 2, 2));
  EXPECT_FALSE(store.NumericOk(ColumnarStore::kRight, 2, 2));
}

TEST(ColumnarStoreTest, InterningIsStableUnderInsertionOrder) {
  Table left = MakeLeft();
  Table right = MakeRight();
  RecordFeatureCache lcache(&left);
  RecordFeatureCache rcache(&right);
  ColumnarStore forward(lcache, rcache);

  // Same records, reversed insertion order on both sides.
  Table left_rev("left", Schema({"title", "brand", "price"}));
  for (size_t i = left.size(); i-- > 0;) left_rev.Add(left.record(i));
  Table right_rev("right", Schema({"title", "brand", "price"}));
  for (size_t i = right.size(); i-- > 0;) right_rev.Add(right.record(i));
  RecordFeatureCache lrev(&left_rev);
  RecordFeatureCache rrev(&right_rev);
  ColumnarStore reversed(lrev, rrev);

  ASSERT_EQ(forward.vocab_size(), reversed.vocab_size());
  // Every record's id array is identical wherever the record landed: ids
  // are ranks in the globally sorted vocabulary, not discovery order.
  for (size_t r = 0; r < left.size(); ++r) {
    auto a = forward.TokenIdsAll(ColumnarStore::kLeft, r);
    auto b = reversed.TokenIdsAll(ColumnarStore::kLeft, left.size() - 1 - r);
    ASSERT_EQ(std::vector<uint32_t>(a.begin(), a.end()),
              std::vector<uint32_t>(b.begin(), b.end()));
  }
}

TEST(ColumnarStoreTest, BuildIsByteIdenticalAcrossThreadCounts) {
  Table left("left", Schema({"name", "desc"}));
  Table right("right", Schema({"name", "desc"}));
  for (size_t i = 0; i < 300; ++i) {
    std::string tag = std::to_string(i);
    left.Add(Record{"l" + tag,
                    {"product " + tag + " model x" + std::to_string(i % 13),
                     "series " + std::to_string(i % 7) + " rev " + tag}});
    right.Add(Record{"r" + tag,
                     {"product " + std::to_string(i % 17) + " model y" + tag,
                      "batch " + tag}});
  }

  auto fingerprint = [&](int threads) {
    SetParallelThreads(threads);
    RecordFeatureCache lcache(&left);
    RecordFeatureCache rcache(&right);
    ColumnarStore store(lcache, rcache);
    store.EnsureQGrams();
    // Serialize every column the kernels read into one byte-stable vector.
    std::vector<uint64_t> sink;
    for (size_t side : {ColumnarStore::kLeft, ColumnarStore::kRight}) {
      for (size_t r = 0; r < store.num_records(side); ++r) {
        for (uint32_t id : store.TokenIdsAll(side, r)) sink.push_back(id);
        for (size_t a = 0; a < store.num_attrs(); ++a) {
          for (uint32_t id : store.TokenIdsAttr(side, r, a)) {
            sink.push_back(id);
          }
          for (std::string_view token : store.TokenSeqAttr(side, r, a)) {
            sink.push_back(Fnv1a64(token));
          }
          sink.push_back(Fnv1a64(store.LoweredValue(side, r, a)));
          sink.push_back(store.NumericOk(side, r, a) ? 1 : 0);
          for (int q = ColumnarStore::kMinQ; q <= ColumnarStore::kMaxQ; ++q) {
            for (uint64_t h : store.QGramAttr(side, r, a, q)) sink.push_back(h);
          }
        }
        for (int q = ColumnarStore::kMinQ; q <= ColumnarStore::kMaxQ; ++q) {
          for (uint64_t h : store.QGramAll(side, r, q)) sink.push_back(h);
        }
      }
    }
    SetParallelThreads(0);
    return sink;
  };

  std::vector<uint64_t> at1 = fingerprint(1);
  EXPECT_EQ(fingerprint(2), at1);
  EXPECT_EQ(fingerprint(7), at1);
}

TEST(FeatureCacheCounterTest, RepeatedWarmCountsRecordsOnce) {
  // Regression: WarmTokens/WarmQGrams used to re-add the full record count
  // to the warmed_* counters on every call — the ColumnarStore constructor
  // re-warms defensively, which double-counted the warm phase.
  obs::Metrics::SetEnabled(true);
  obs::Metrics::Instance().ResetAll();
  Table left = MakeLeft();
  Table right = MakeRight();
  RecordFeatureCache lcache(&left);
  RecordFeatureCache rcache(&right);
  lcache.WarmTokens();
  rcache.WarmTokens();
  // The store's constructor re-warms both caches; EnsureQGrams re-warms the
  // q-gram slots. None of these may bump the counters again.
  ColumnarStore store(lcache, rcache);
  lcache.WarmTokens();
  uint64_t tokens = obs::Metrics::Instance()
                        .GetCounter("feature_cache/warmed_token_records")
                        .Value();
  EXPECT_EQ(tokens, left.size() + right.size());
  lcache.WarmQGrams();
  rcache.WarmQGrams();
  store.EnsureQGrams();
  lcache.WarmQGrams();
  uint64_t qgrams = obs::Metrics::Instance()
                        .GetCounter("feature_cache/warmed_qgram_records")
                        .Value();
  EXPECT_EQ(qgrams, left.size() + right.size());
  obs::Metrics::Instance().ResetAll();
  obs::Metrics::SetEnabled(false);
}

}  // namespace
}  // namespace rlbench::data
