#include "data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace rlbench::data {
namespace {

TEST(CsvParseTest, SimpleRows) {
  auto rows = ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0], "a");
  EXPECT_EQ((*rows)[1][2], "3");
}

TEST(CsvParseTest, QuotedFieldsWithCommasAndQuotes) {
  auto rows = ParseCsv("name,desc\n\"Smith, John\",\"said \"\"hi\"\"\"\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[1][0], "Smith, John");
  EXPECT_EQ((*rows)[1][1], "said \"hi\"");
}

TEST(CsvParseTest, EmbeddedNewlineInQuotes) {
  auto rows = ParseCsv("a\n\"line1\nline2\"\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1][0], "line1\nline2");
}

TEST(CsvParseTest, CrLfAccepted) {
  auto rows = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[1][1], "2");
}

TEST(CsvParseTest, MissingTrailingNewline) {
  auto rows = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1][1], "2");
}

TEST(CsvParseTest, UnterminatedQuoteIsError) {
  auto rows = ParseCsv("a\n\"oops\n");
  EXPECT_FALSE(rows.ok());
}

TEST(CsvWriteTest, RoundTrip) {
  std::vector<std::vector<std::string>> rows = {
      {"id", "text"}, {"1", "plain"}, {"2", "has,comma"}, {"3", "has\"quote"}};
  auto parsed = ParseCsv(WriteCsv(rows));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, rows);
}

class CsvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "rlbench_csv_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(CsvFileTest, TableRoundTrip) {
  Table table("products", Schema({"name", "price"}));
  Record r1{"p1", {"iPhone 14", "999"}};
  Record r2{"p2", {"Galaxy, S22", "799"}};
  table.Add(r1);
  table.Add(r2);
  std::string path = (dir_ / "table.csv").string();
  ASSERT_TRUE(WriteTableCsv(table, path).ok());

  auto loaded = ReadTableCsv(path, "products");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->schema().attributes(),
            std::vector<std::string>({"name", "price"}));
  EXPECT_EQ(loaded->record(1).values[0], "Galaxy, S22");
}

TEST_F(CsvFileTest, PairsRoundTrip) {
  std::vector<LabeledPair> pairs = {{0, 5, true}, {1, 6, false}, {2, 7, true}};
  std::string path = (dir_ / "pairs.csv").string();
  ASSERT_TRUE(WritePairsCsv(pairs, path).ok());
  auto loaded = ReadPairsCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ((*loaded)[0].left, 0u);
  EXPECT_EQ((*loaded)[0].right, 5u);
  EXPECT_TRUE((*loaded)[0].is_match);
  EXPECT_FALSE((*loaded)[1].is_match);
}

TEST_F(CsvFileTest, MissingFileIsNotFound) {
  auto loaded = ReadTableCsv((dir_ / "nope.csv").string(), "x");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace rlbench::data
