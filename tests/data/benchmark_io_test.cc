#include "data/benchmark_io.h"

#include "data/csv.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "datagen/catalog.h"
#include "datagen/task_builder.h"

namespace rlbench::data {
namespace {

class BenchmarkIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() / "rlbench_io_test")
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(BenchmarkIoTest, RoundTrip) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds5"), 1.0);
  ASSERT_TRUE(ExportBenchmark(task, dir_).ok());

  auto loaded = ImportBenchmark(dir_, "roundtrip");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->left().size(), task.left().size());
  EXPECT_EQ(loaded->right().size(), task.right().size());
  EXPECT_EQ(loaded->train().size(), task.train().size());
  EXPECT_EQ(loaded->test().size(), task.test().size());
  EXPECT_EQ(loaded->TotalStats().positives, task.TotalStats().positives);
  // Record contents survive byte-exactly.
  EXPECT_EQ(loaded->left().record(0).values, task.left().record(0).values);
  EXPECT_EQ(loaded->left().schema().attributes(),
            task.left().schema().attributes());
}

TEST_F(BenchmarkIoTest, MissingDirectoryFails) {
  auto loaded = ImportBenchmark(dir_ + "/nope");
  EXPECT_FALSE(loaded.ok());
}

TEST_F(BenchmarkIoTest, OutOfRangePairRejected) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds5"), 0.5);
  ASSERT_TRUE(ExportBenchmark(task, dir_).ok());
  // Corrupt the pairs file with an index beyond the table.
  ASSERT_TRUE(WritePairsCsv({{999999, 0, true}}, dir_ + "/test.csv").ok());
  auto loaded = ImportBenchmark(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rlbench::data
