#include "data/benchmark_io.h"

#include "data/csv.h"
#include "data/file_source.h"
#include "data/quarantine.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "datagen/catalog.h"
#include "datagen/task_builder.h"

namespace rlbench::data {
namespace {

class BenchmarkIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() / "rlbench_io_test")
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(BenchmarkIoTest, RoundTrip) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds5"), 1.0);
  ASSERT_TRUE(ExportBenchmark(task, dir_).ok());

  auto loaded = ImportBenchmark(dir_, "roundtrip");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->left().size(), task.left().size());
  EXPECT_EQ(loaded->right().size(), task.right().size());
  EXPECT_EQ(loaded->train().size(), task.train().size());
  EXPECT_EQ(loaded->test().size(), task.test().size());
  EXPECT_EQ(loaded->TotalStats().positives, task.TotalStats().positives);
  // Record contents survive byte-exactly.
  EXPECT_EQ(loaded->left().record(0).values, task.left().record(0).values);
  EXPECT_EQ(loaded->left().schema().attributes(),
            task.left().schema().attributes());
}

TEST_F(BenchmarkIoTest, MissingDirectoryIsNotFound) {
  auto loaded = ImportBenchmark(dir_ + "/nope");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(BenchmarkIoTest, MissingSplitFileIsNotFound) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds5"), 0.5);
  ASSERT_TRUE(ExportBenchmark(task, dir_).ok());
  std::filesystem::remove(dir_ + "/valid.csv");
  auto loaded = ImportBenchmark(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(BenchmarkIoTest, OutOfRangePairRejected) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds5"), 0.5);
  ASSERT_TRUE(ExportBenchmark(task, dir_).ok());
  // Corrupt the pairs file with an index beyond the table.
  ASSERT_TRUE(WritePairsCsv({{999999, 0, true}}, dir_ + "/test.csv").ok());
  auto loaded = ImportBenchmark(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().ToString().find("out of range"),
            std::string::npos);
}

TEST_F(BenchmarkIoTest, OutOfRangePairQuarantinedWhenLenient) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds5"), 0.5);
  ASSERT_TRUE(ExportBenchmark(task, dir_).ok());
  size_t test_pairs = task.test().size();
  std::vector<LabeledPair> pairs = task.test();
  pairs.push_back({999999, 0, true});
  ASSERT_TRUE(WritePairsCsv(pairs, dir_ + "/test.csv").ok());

  QuarantineReport quarantine;
  ImportOptions options;
  options.lenient = true;
  options.quarantine = &quarantine;
  auto loaded = ImportBenchmark(dir_, "lenient", options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // The poisoned pair is dropped, the valid ones all survive.
  EXPECT_EQ(loaded->test().size(), test_pairs);
  ASSERT_EQ(quarantine.size(), 1u);
  EXPECT_NE(quarantine.entries()[0].reason.find("out of range"),
            std::string::npos);
}

TEST_F(BenchmarkIoTest, PairHeaderMismatchIsInvalidArgument) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds5"), 0.5);
  ASSERT_TRUE(ExportBenchmark(task, dir_).ok());
  // A wrong header is file-level damage: rejected even in lenient mode.
  ASSERT_TRUE(
      FileSource::WriteAll(dir_ + "/train.csv", "a,b\n0,1\n").ok());
  for (bool lenient : {false, true}) {
    ImportOptions options;
    options.lenient = lenient;
    auto loaded = ImportBenchmark(dir_, "hdr", options);
    ASSERT_FALSE(loaded.ok()) << "lenient=" << lenient;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(BenchmarkIoTest, MalformedPairRowQuarantinedWhenLenient) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds5"), 0.5);
  ASSERT_TRUE(ExportBenchmark(task, dir_).ok());
  ASSERT_TRUE(FileSource::WriteAll(dir_ + "/test.csv",
                                   "left,right,label\n0,0,1\nx,0,1\n0,0,2\n")
                  .ok());

  // Strict: the first malformed row kills the import.
  auto strict = ImportBenchmark(dir_);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kInvalidArgument);

  // Lenient: both bad rows are quarantined with 1-based row numbers.
  QuarantineReport quarantine;
  ImportOptions options;
  options.lenient = true;
  options.quarantine = &quarantine;
  auto lenient = ImportBenchmark(dir_, "lenient", options);
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  EXPECT_EQ(lenient->test().size(), 1u);
  ASSERT_EQ(quarantine.size(), 2u);
  EXPECT_EQ(quarantine.entries()[0].row, 3u);
  EXPECT_EQ(quarantine.entries()[1].row, 4u);
}

}  // namespace
}  // namespace rlbench::data
