#include "data/feature_cache.h"

#include <gtest/gtest.h>

#include "text/similarity.h"

namespace rlbench::data {
namespace {

Table MakeTable() {
  Table table("t", Schema({"title", "brand"}));
  table.Add(Record{"r0", {"iPhone 14 Pro", "Apple"}});
  table.Add(Record{"r1", {"Galaxy S22", "Samsung"}});
  table.Add(Record{"r2", {"", ""}});
  return table;
}

TEST(FeatureCacheTest, TokensAcrossAttributes) {
  Table table = MakeTable();
  RecordFeatureCache cache(&table);
  auto& tokens = cache.Tokens(0);
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "iphone");
  EXPECT_EQ(tokens[3], "apple");
}

TEST(FeatureCacheTest, TokenSetAllIsDeduplicated) {
  Table table("t", Schema({"a", "b"}));
  table.Add(Record{"r", {"alpha beta", "beta gamma"}});
  RecordFeatureCache cache(&table);
  EXPECT_EQ(cache.TokenSetAll(0).size(), 3u);
}

TEST(FeatureCacheTest, PerAttributeSets) {
  Table table = MakeTable();
  RecordFeatureCache cache(&table);
  EXPECT_EQ(cache.TokenSetAttr(0, 0).size(), 3u);  // iphone 14 pro
  EXPECT_EQ(cache.TokenSetAttr(0, 1).size(), 1u);  // apple
  EXPECT_EQ(cache.TokensAttr(1, 1).size(), 1u);
}

TEST(FeatureCacheTest, EmptyRecordYieldsEmptySets) {
  Table table = MakeTable();
  RecordFeatureCache cache(&table);
  EXPECT_TRUE(cache.TokenSetAll(2).empty());
  EXPECT_TRUE(cache.QGramSetAll(2, 3).empty());
}

TEST(FeatureCacheTest, QGramSetsPerQ) {
  Table table = MakeTable();
  RecordFeatureCache cache(&table);
  const auto& g2 = cache.QGramSetAll(0, 2);
  const auto& g3 = cache.QGramSetAll(0, 3);
  EXPECT_GT(g2.size(), 0u);
  EXPECT_GT(g3.size(), 0u);
  // 2-grams and 3-grams never alias thanks to the q-salt.
  EXPECT_EQ(g2.IntersectionSize(g3), 0u);
}

TEST(FeatureCacheTest, RepeatedAccessReturnsSameObject) {
  Table table = MakeTable();
  RecordFeatureCache cache(&table);
  const auto* first = &cache.TokenSetAll(0);
  const auto* second = &cache.TokenSetAll(0);
  EXPECT_EQ(first, second);  // memoised, not recomputed
}

TEST(FeatureCacheTest, QGramAttrMatchesDirectComputation) {
  Table table = MakeTable();
  RecordFeatureCache cache(&table);
  auto direct = text::QGramSet("Apple", 3);
  EXPECT_EQ(cache.QGramSetAttr(0, 1, 3).IntersectionSize(direct),
            direct.size());
}

}  // namespace
}  // namespace rlbench::data
