#include "data/feature_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/parallel.h"
#include "text/similarity.h"

namespace rlbench::data {
namespace {

Table MakeTable() {
  Table table("t", Schema({"title", "brand"}));
  table.Add(Record{"r0", {"iPhone 14 Pro", "Apple"}});
  table.Add(Record{"r1", {"Galaxy S22", "Samsung"}});
  table.Add(Record{"r2", {"", ""}});
  return table;
}

TEST(FeatureCacheTest, TokensAcrossAttributes) {
  Table table = MakeTable();
  RecordFeatureCache cache(&table);
  auto& tokens = cache.Tokens(0);
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "iphone");
  EXPECT_EQ(tokens[3], "apple");
}

TEST(FeatureCacheTest, TokenSetAllIsDeduplicated) {
  Table table("t", Schema({"a", "b"}));
  table.Add(Record{"r", {"alpha beta", "beta gamma"}});
  RecordFeatureCache cache(&table);
  EXPECT_EQ(cache.TokenSetAll(0).size(), 3u);
}

TEST(FeatureCacheTest, PerAttributeSets) {
  Table table = MakeTable();
  RecordFeatureCache cache(&table);
  EXPECT_EQ(cache.TokenSetAttr(0, 0).size(), 3u);  // iphone 14 pro
  EXPECT_EQ(cache.TokenSetAttr(0, 1).size(), 1u);  // apple
  EXPECT_EQ(cache.TokensAttr(1, 1).size(), 1u);
}

TEST(FeatureCacheTest, EmptyRecordYieldsEmptySets) {
  Table table = MakeTable();
  RecordFeatureCache cache(&table);
  EXPECT_TRUE(cache.TokenSetAll(2).empty());
  EXPECT_TRUE(cache.QGramSetAll(2, 3).empty());
}

TEST(FeatureCacheTest, QGramSetsPerQ) {
  Table table = MakeTable();
  RecordFeatureCache cache(&table);
  const auto& g2 = cache.QGramSetAll(0, 2);
  const auto& g3 = cache.QGramSetAll(0, 3);
  EXPECT_GT(g2.size(), 0u);
  EXPECT_GT(g3.size(), 0u);
  // 2-grams and 3-grams never alias thanks to the q-salt.
  EXPECT_EQ(g2.IntersectionSize(g3), 0u);
}

TEST(FeatureCacheTest, RepeatedAccessReturnsSameObject) {
  Table table = MakeTable();
  RecordFeatureCache cache(&table);
  const auto* first = &cache.TokenSetAll(0);
  const auto* second = &cache.TokenSetAll(0);
  EXPECT_EQ(first, second);  // memoised, not recomputed
}

TEST(FeatureCacheTest, QGramAttrMatchesDirectComputation) {
  Table table = MakeTable();
  RecordFeatureCache cache(&table);
  auto direct = text::QGramSet("Apple", 3);
  EXPECT_EQ(cache.QGramSetAttr(0, 1, 3).IntersectionSize(direct),
            direct.size());
}

Table MakeWideTable(size_t rows) {
  Table table("wide", Schema({"name", "desc"}));
  for (size_t i = 0; i < rows; ++i) {
    std::string tag = std::to_string(i);
    table.Add(Record{"r" + tag,
                     {"product " + tag + " model x" + tag,
                      "series " + std::to_string(i % 7) + " rev " + tag}});
  }
  return table;
}

TEST(FeatureCacheTest, WarmMatchesLazyFills) {
  Table table = MakeWideTable(120);
  RecordFeatureCache warmed(&table);
  warmed.WarmTokens();
  warmed.WarmQGrams();
  RecordFeatureCache lazy(&table);
  for (size_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ(warmed.Tokens(i), lazy.Tokens(i));
    EXPECT_EQ(warmed.TokenSetAll(i).size(), lazy.TokenSetAll(i).size());
    EXPECT_EQ(warmed.QGramSetAll(i, 3).size(), lazy.QGramSetAll(i, 3).size());
  }
}

TEST(FeatureCacheTest, FreezeThawRoundTrip) {
  Table table = MakeTable();
  RecordFeatureCache cache(&table);
  EXPECT_FALSE(cache.frozen());
  cache.WarmTokens();
  cache.Freeze();
  EXPECT_TRUE(cache.frozen());
  // Reads of warmed slots are legal while frozen.
  EXPECT_EQ(cache.Tokens(0).size(), 4u);
  cache.Thaw();
  EXPECT_FALSE(cache.frozen());
  // Back in the warm-up phase: lazy fills of cold slots are legal again.
  EXPECT_GT(cache.QGramSetAll(0, 3).size(), 0u);
}

TEST(FeatureCacheTest, ConcurrentReadsOfFrozenCacheAreStableAndRaceFree) {
  Table table = MakeWideTable(200);

  // Serial reference, computed on an independent cache.
  RecordFeatureCache reference(&table);
  std::vector<size_t> expected_tokens(table.size());
  std::vector<size_t> expected_qgrams(table.size());
  for (size_t i = 0; i < table.size(); ++i) {
    expected_tokens[i] = reference.TokenSetAll(i).size();
    expected_qgrams[i] = reference.QGramSetAll(i, 2).size();
  }

  // Two-phase contract: single-threaded-equivalent warm-up (bulk fill),
  // freeze, then hammer the immutable slots from many threads. Under TSan
  // this doubles as the data-race check for the read phase.
  RecordFeatureCache cache(&table);
  cache.WarmTokens();
  cache.WarmQGrams();
  cache.Freeze();
  SetParallelThreads(7);
  std::vector<size_t> got_tokens(table.size());
  std::vector<size_t> got_qgrams(table.size());
  std::vector<const text::TokenSet*> first_address(table.size());
  for (int round = 0; round < 4; ++round) {
    ParallelFor(0, table.size(), 8, [&](size_t i) {
      const auto& set = cache.TokenSetAll(i);
      got_tokens[i] = set.size();
      got_qgrams[i] = cache.QGramSetAll(i, 2).size();
      if (round == 0) {
        first_address[i] = &set;
      } else {
        // Frozen reads are memoised: same object every round.
        EXPECT_EQ(first_address[i], &set);
      }
    });
  }
  SetParallelThreads(0);
  cache.Thaw();
  EXPECT_EQ(got_tokens, expected_tokens);
  EXPECT_EQ(got_qgrams, expected_qgrams);
}

}  // namespace
}  // namespace rlbench::data
