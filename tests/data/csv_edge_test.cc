// Table-driven edge cases for the CSV parser and the strict/lenient read
// modes: row-terminator variants (LF, CRLF, lone CR, none at EOF),
// quoting at end of input, and quarantine behaviour for malformed table
// and pair rows.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "data/csv.h"
#include "data/file_source.h"
#include "data/quarantine.h"

namespace rlbench::data {
namespace {

using Rows = std::vector<std::vector<std::string>>;

struct ParseCase {
  const char* label;
  const char* text;
  bool ok;
  Rows expected;  // only checked when ok
};

TEST(CsvEdgeTest, TerminatorAndQuoteTable) {
  const ParseCase kCases[] = {
      {"lf_rows", "a,b\n1,2\n", true, {{"a", "b"}, {"1", "2"}}},
      {"no_trailing_newline", "a,b\n1,2", true, {{"a", "b"}, {"1", "2"}}},
      {"crlf_rows", "a,b\r\n1,2\r\n", true, {{"a", "b"}, {"1", "2"}}},
      {"lone_cr_rows", "a,b\r1,2\r", true, {{"a", "b"}, {"1", "2"}}},
      {"mixed_terminators", "a\r\nb\rc\nd", true, {{"a"}, {"b"}, {"c"}, {"d"}}},
      {"cr_not_field_text", "a,b\rc,d", true, {{"a", "b"}, {"c", "d"}}},
      {"crlf_inside_quotes_kept", "\"a\r\nb\"\n", true, {{"a\r\nb"}}},
      {"lone_cr_inside_quotes_kept", "\"a\rb\"\n", true, {{"a\rb"}}},
      {"empty_document", "", true, {}},
      {"single_unterminated_field", "lonely", true, {{"lonely"}}},
      {"trailing_comma_makes_empty_field", "a,\n", true, {{"a", ""}}},
      {"quote_closed_at_eof", "\"done\"", true, {{"done"}}},
      {"escaped_quote_at_eof", "\"say \"\"hi\"\"\"", true, {{"say \"hi\""}}},
      {"unterminated_quote_at_eof", "a\n\"oops", false, {}},
      {"unterminated_quote_then_newline", "a\n\"oops\n", false, {}},
      {"quote_reopened_at_eof", "\"a\"\"", false, {}},
  };
  for (const auto& c : kCases) {
    auto rows = ParseCsv(c.text);
    EXPECT_EQ(rows.ok(), c.ok) << c.label << ": " << rows.status().ToString();
    if (c.ok && rows.ok()) {
      EXPECT_EQ(*rows, c.expected) << c.label;
    }
    if (!c.ok && !rows.ok()) {
      EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument) << c.label;
    }
  }
}

class CsvEdgeFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "rlbench_csv_edge_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& file) { return (dir_ / file).string(); }

  std::string Write(const std::string& file, const std::string& text) {
    std::string path = Path(file);
    EXPECT_TRUE(FileSource::WriteAll(path, text).ok());
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(CsvEdgeFileTest, TableArityMismatchStrictVsLenient) {
  // Row 3 is short, row 5 is long; rows are 1-based with the header as 1.
  std::string path = Write(
      "table.csv", "id,name,price\nr1,widget,9\nr2,gadget\nr3,doodad,7\n"
                   "r4,thing,1,extra\n");

  auto strict = ReadTableCsv(path, "t");
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(strict.status().ToString().find("row 3"), std::string::npos)
      << strict.status().ToString();

  QuarantineReport quarantine;
  CsvReadOptions options;
  options.lenient = true;
  options.quarantine = &quarantine;
  auto lenient = ReadTableCsv(path, "t", options);
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  EXPECT_EQ(lenient->size(), 2u);  // r1 and r3 survive
  EXPECT_EQ(lenient->record(0).id, "r1");
  EXPECT_EQ(lenient->record(1).id, "r3");
  ASSERT_EQ(quarantine.size(), 2u);
  EXPECT_EQ(quarantine.entries()[0].row, 3u);
  EXPECT_EQ(quarantine.entries()[1].row, 5u);
  EXPECT_EQ(quarantine.entries()[0].source, path);
  EXPECT_FALSE(quarantine.Summary().empty());
}

TEST_F(CsvEdgeFileTest, TableWithoutTrailingNewlineKeepsLastRow) {
  std::string path = Write("table.csv", "id,name\nr1,alpha\nr2,omega");
  auto loaded = ReadTableCsv(path, "t");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->record(1).values[0], "omega");
}

TEST_F(CsvEdgeFileTest, EmptyTableFileIsInvalidArgument) {
  std::string path = Write("table.csv", "");
  auto loaded = ReadTableCsv(path, "t");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvEdgeFileTest, PairHeaderIsCaseInsensitiveButExact) {
  EXPECT_TRUE(ReadPairsCsv(Write("p1.csv", "Left,RIGHT,Label\n0,1,1\n")).ok());
  for (const char* header :
       {"left,right", "left,right,label,extra", "l,r,label", "left,label,right"}) {
    auto loaded =
        ReadPairsCsv(Write("p2.csv", std::string(header) + "\n0,1,1\n"));
    ASSERT_FALSE(loaded.ok()) << header;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument) << header;
  }
}

TEST_F(CsvEdgeFileTest, PairRowRejectionsAndLabels) {
  struct RowCase {
    const char* label;
    const char* row;
    bool ok;
  };
  const RowCase kRows[] = {
      {"plain", "3,4,1", true},
      {"word_labels", "3,4,true", true},
      {"zero_label", "3,4,0", true},
      {"false_label", "3,4,false", true},
      {"negative_index", "-1,4,1", false},
      {"non_numeric_index", "x,4,1", false},
      {"overflow_index", "4294967296,4,1", false},
      {"bad_label", "3,4,maybe", false},
      {"numeric_bad_label", "3,4,2", false},
      {"short_row", "3,4", false},
      {"long_row", "3,4,1,9", false},
  };
  for (const auto& c : kRows) {
    std::string path =
        Write("pairs.csv", std::string("left,right,label\n") + c.row + "\n");
    auto strict = ReadPairsCsv(path);
    EXPECT_EQ(strict.ok(), c.ok) << c.label << ": "
                                 << strict.status().ToString();
    if (!c.ok) {
      EXPECT_EQ(strict.status().code(), StatusCode::kInvalidArgument)
          << c.label;
      // The same row is quarantined, not fatal, under lenient mode.
      QuarantineReport quarantine;
      CsvReadOptions options;
      options.lenient = true;
      options.quarantine = &quarantine;
      auto lenient = ReadPairsCsv(path, options);
      ASSERT_TRUE(lenient.ok()) << c.label;
      EXPECT_TRUE(lenient->empty()) << c.label;
      ASSERT_EQ(quarantine.size(), 1u) << c.label;
      EXPECT_EQ(quarantine.entries()[0].row, 2u) << c.label;
    }
  }
}

TEST(QuarantineReportTest, SummaryCapsLines) {
  QuarantineReport report;
  for (size_t i = 0; i < 12; ++i) {
    report.Add("file.csv", i + 2, "bad row");
  }
  std::string summary = report.Summary(10);
  EXPECT_NE(summary.find("and 2 more"), std::string::npos) << summary;
}

}  // namespace
}  // namespace rlbench::data
