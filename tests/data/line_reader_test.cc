// Edge cases for the bounded-buffer streaming line reader, mirroring the
// terminator matrix of csv_edge_test.cc: LF / CRLF / lone-CR rows, missing
// terminator at EOF, empty documents — plus the streaming-only hazards
// (CRLF split across two buffer refills) and the data/file/read_stream
// failpoint.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "data/file_source.h"
#include "fault/failpoint.h"

namespace rlbench::data {
namespace {

class LineReaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "rlbench_line_reader";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fault::Clear();
    std::filesystem::remove_all(dir_);
  }

  std::string Write(const std::string& file, const std::string& text) {
    std::string path = (dir_ / file).string();
    EXPECT_TRUE(FileSource::WriteAll(path, text).ok());
    return path;
  }

  // All lines of the file through a reader with the given buffer size.
  std::vector<std::string> ReadLines(const std::string& path,
                                     size_t buffer_bytes) {
    auto opened = LineReader::Open(path, buffer_bytes);
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    LineReader reader = std::move(opened).value();
    std::vector<std::string> lines;
    while (true) {
      std::string line;
      bool done = false;
      Status status = reader.Next(&line, &done);
      EXPECT_TRUE(status.ok()) << status.ToString();
      if (!status.ok() || done) break;
      lines.push_back(std::move(line));
    }
    return lines;
  }

  std::filesystem::path dir_;
};

TEST_F(LineReaderTest, TerminatorMatrix) {
  struct Case {
    const char* label;
    const char* text;
    std::vector<std::string> expected;
  };
  const Case kCases[] = {
      {"lf_rows", "a\nb\n", {"a", "b"}},
      {"no_trailing_newline", "a\nb", {"a", "b"}},
      {"crlf_rows", "a\r\nb\r\n", {"a", "b"}},
      {"lone_cr_rows", "a\rb\r", {"a", "b"}},
      {"mixed_terminators", "a\r\nb\rc\nd", {"a", "b", "c", "d"}},
      {"empty_document", "", {}},
      {"single_newline", "\n", {""}},
      {"blank_lines_kept", "a\n\nb\n", {"a", "", "b"}},
      {"crlf_blank_line", "a\r\n\r\nb", {"a", "", "b"}},
      {"cr_at_eof", "a\r", {"a"}},
      {"unterminated_final", "lonely", {"lonely"}},
  };
  for (const Case& c : kCases) {
    std::string path = Write("case.txt", c.text);
    EXPECT_EQ(ReadLines(path, LineReader::kDefaultBufferBytes), c.expected)
        << c.label;
  }
}

// The streaming-only hazard: every terminator variant must parse the same
// at any buffer size, including sizes that split a CRLF across refills.
TEST_F(LineReaderTest, BufferSizeSweepIsEquivalent) {
  std::string text = "first\r\nsecond\rthird\n\r\nfifth";
  std::vector<std::string> expected = {"first", "second", "third", "",
                                       "fifth"};
  std::string path = Write("sweep.txt", text);
  for (size_t buffer = 1; buffer <= 16; ++buffer) {
    EXPECT_EQ(ReadLines(path, buffer), expected) << "buffer=" << buffer;
  }
}

TEST_F(LineReaderTest, DoneIsSticky) {
  std::string path = Write("sticky.txt", "only\n");
  auto opened = LineReader::Open(path);
  ASSERT_TRUE(opened.ok());
  LineReader reader = std::move(opened).value();
  std::string line;
  bool done = false;
  ASSERT_TRUE(reader.Next(&line, &done).ok());
  EXPECT_FALSE(done);
  EXPECT_EQ(line, "only");
  for (int i = 0; i < 3; ++i) {
    done = false;
    ASSERT_TRUE(reader.Next(&line, &done).ok());
    EXPECT_TRUE(done);
  }
}

TEST_F(LineReaderTest, MissingFileIsNotFound) {
  auto opened = LineReader::Open((dir_ / "absent.txt").string());
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kNotFound);
}

TEST_F(LineReaderTest, ReadStreamFailpointSurfacesIOError) {
  std::string path = Write("faulty.txt", "a\nb\nc\n");
  ASSERT_TRUE(fault::SetSpec("seed=1;data/file/read_stream=io:1").ok());
  auto opened = LineReader::Open(path, 2);
  ASSERT_TRUE(opened.ok());
  LineReader reader = std::move(opened).value();
  std::string line;
  bool done = false;
  Status status = reader.Next(&line, &done);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  fault::Clear();
}

// Truncation faults shrink refills but must never corrupt the line
// structure into undefined behaviour — the reader just sees a shorter
// stream.
TEST_F(LineReaderTest, TruncateFaultYieldsShorterStream) {
  std::string path = Write("trunc.txt", "aaaa\nbbbb\ncccc\n");
  ASSERT_TRUE(
      fault::SetSpec("seed=7;data/file/read_stream=truncate:1:max=1").ok());
  auto opened = LineReader::Open(path, 8);
  ASSERT_TRUE(opened.ok());
  LineReader reader = std::move(opened).value();
  std::vector<std::string> lines;
  while (true) {
    std::string line;
    bool done = false;
    Status status = reader.Next(&line, &done);
    ASSERT_TRUE(status.ok()) << status.ToString();
    if (done) break;
    lines.push_back(std::move(line));
  }
  fault::Clear();
  std::string joined;
  for (const std::string& line : lines) joined += line + "\n";
  std::string full = "aaaa\nbbbb\ncccc\n";
  // Whatever the fault dropped, the result is a subsequence-by-truncation
  // of the original byte stream, parsed into at most the original lines.
  EXPECT_LE(joined.size(), full.size());
  EXPECT_LE(lines.size(), 3u);
}

}  // namespace
}  // namespace rlbench::data
