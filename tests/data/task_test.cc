#include "data/task.h"

#include <gtest/gtest.h>

namespace rlbench::data {
namespace {

std::vector<LabeledPair> MakePairs(size_t positives, size_t negatives) {
  std::vector<LabeledPair> pairs;
  for (size_t i = 0; i < positives; ++i) {
    pairs.push_back({static_cast<uint32_t>(i), 0, true});
  }
  for (size_t i = 0; i < negatives; ++i) {
    pairs.push_back({static_cast<uint32_t>(i), 1, false});
  }
  return pairs;
}

TEST(PairSetStatsTest, CountsAndImbalance) {
  auto stats = ComputeStats(MakePairs(25, 75));
  EXPECT_EQ(stats.total, 100u);
  EXPECT_EQ(stats.positives, 25u);
  EXPECT_EQ(stats.negatives, 75u);
  EXPECT_DOUBLE_EQ(stats.ImbalanceRatio(), 0.25);
}

TEST(PairSetStatsTest, EmptySet) {
  auto stats = ComputeStats({});
  EXPECT_EQ(stats.total, 0u);
  EXPECT_DOUBLE_EQ(stats.ImbalanceRatio(), 0.0);
}

TEST(MatchingTaskTest, AllPairsConcatenatesSplits) {
  MatchingTask task("toy", Table("l", Schema({"a"})), Table("r", Schema({"a"})));
  task.set_train(MakePairs(3, 7));
  task.set_valid(MakePairs(1, 2));
  task.set_test(MakePairs(1, 2));
  EXPECT_EQ(task.AllPairs().size(), 16u);
  EXPECT_EQ(task.TotalStats().positives, 5u);
  EXPECT_EQ(task.TrainStats().total, 10u);
  EXPECT_EQ(task.ValidStats().total, 3u);
  EXPECT_EQ(task.TestStats().total, 3u);
}

}  // namespace
}  // namespace rlbench::data
