#include "data/split.h"

#include <gtest/gtest.h>

#include <set>

namespace rlbench::data {
namespace {

std::vector<LabeledPair> MakePairs(size_t positives, size_t negatives) {
  std::vector<LabeledPair> pairs;
  uint32_t id = 0;
  for (size_t i = 0; i < positives; ++i) pairs.push_back({id++, 0, true});
  for (size_t i = 0; i < negatives; ++i) pairs.push_back({id++, 1, false});
  return pairs;
}

TEST(SplitTest, RatioApproximatelyRespected) {
  auto pairs = MakePairs(200, 800);
  auto split = SplitPairs(pairs, SplitRatio{3, 1, 1}, 42);
  EXPECT_EQ(split.train.size() + split.valid.size() + split.test.size(),
            1000u);
  EXPECT_NEAR(static_cast<double>(split.train.size()), 600.0, 5.0);
  EXPECT_NEAR(static_cast<double>(split.valid.size()), 200.0, 5.0);
  EXPECT_NEAR(static_cast<double>(split.test.size()), 200.0, 5.0);
}

TEST(SplitTest, StratificationKeepsImbalanceRatio) {
  auto pairs = MakePairs(100, 900);
  auto split = SplitPairs(pairs, SplitRatio{3, 1, 1}, 7);
  double ir_train = ComputeStats(split.train).ImbalanceRatio();
  double ir_valid = ComputeStats(split.valid).ImbalanceRatio();
  double ir_test = ComputeStats(split.test).ImbalanceRatio();
  EXPECT_NEAR(ir_train, 0.1, 0.01);
  EXPECT_NEAR(ir_valid, 0.1, 0.01);
  EXPECT_NEAR(ir_test, 0.1, 0.01);
}

TEST(SplitTest, NoPairLostOrDuplicated) {
  auto pairs = MakePairs(50, 150);
  auto split = SplitPairs(pairs, SplitRatio{3, 1, 1}, 99);
  std::multiset<uint32_t> original;
  for (const auto& p : pairs) original.insert(p.left);
  std::multiset<uint32_t> seen;
  for (const auto& p : split.train) seen.insert(p.left);
  for (const auto& p : split.valid) seen.insert(p.left);
  for (const auto& p : split.test) seen.insert(p.left);
  EXPECT_EQ(original, seen);
}

TEST(SplitTest, DeterministicForSeed) {
  auto pairs = MakePairs(30, 70);
  auto a = SplitPairs(pairs, SplitRatio{3, 1, 1}, 5);
  auto b = SplitPairs(pairs, SplitRatio{3, 1, 1}, 5);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].left, b.train[i].left);
    EXPECT_EQ(a.train[i].is_match, b.train[i].is_match);
  }
}

TEST(SplitTest, DifferentSeedsShuffleDifferently) {
  auto pairs = MakePairs(100, 100);
  auto a = SplitPairs(pairs, SplitRatio{3, 1, 1}, 1);
  auto b = SplitPairs(pairs, SplitRatio{3, 1, 1}, 2);
  bool any_diff = false;
  for (size_t i = 0; i < std::min(a.train.size(), b.train.size()); ++i) {
    if (a.train[i].left != b.train[i].left) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(SplitTest, EmptyInput) {
  auto split = SplitPairs({}, SplitRatio{3, 1, 1}, 1);
  EXPECT_TRUE(split.train.empty());
  EXPECT_TRUE(split.valid.empty());
  EXPECT_TRUE(split.test.empty());
}

}  // namespace
}  // namespace rlbench::data
