#include "data/record.h"

#include <gtest/gtest.h>

namespace rlbench::data {
namespace {

TEST(SchemaTest, IndexOf) {
  Schema schema({"title", "authors", "year"});
  EXPECT_EQ(schema.num_attributes(), 3u);
  EXPECT_EQ(schema.IndexOf("authors"), 1);
  EXPECT_EQ(schema.IndexOf("missing"), -1);
}

TEST(RecordTest, ConcatenatedValuesSkipsEmpty) {
  Record r;
  r.values = {"Deep Learning", "", "2018"};
  EXPECT_EQ(r.ConcatenatedValues(), "Deep Learning 2018");
}

TEST(RecordTest, ConcatenatedValuesAllEmpty) {
  Record r;
  r.values = {"", "", ""};
  EXPECT_EQ(r.ConcatenatedValues(), "");
}

TEST(TableTest, AddAndAccess) {
  Table table("left", Schema({"name"}));
  EXPECT_TRUE(table.empty());
  Record r;
  r.id = "r1";
  r.values = {"alpha"};
  table.Add(r);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.record(0).id, "r1");
  EXPECT_EQ(table.name(), "left");
  EXPECT_EQ(table.schema().attribute(0), "name");
}

}  // namespace
}  // namespace rlbench::data
