// Blocking edge cases surfaced by the out-of-core pipeline: duplicate
// sorted-neighborhood keys, degenerate windows, MinHash signatures of
// empty and singleton token sets, stop buckets at the extremes — and the
// bulk helpers (SortedNeighborhoodKey, BandKeysOf) pinned bit-for-bit to
// the in-memory implementations, including sorted-neighborhood windows
// that straddle shard boundaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "block/minhash_blocking.h"
#include "block/sorted_neighborhood.h"
#include "bulk/options.h"
#include "bulk/resolver.h"
#include "common/rng.h"
#include "data/record.h"
#include "datagen/bulk_source.h"
#include "datagen/spec.h"
#include "text/tokenizer.h"

namespace rlbench::block {
namespace {

data::Table MakeTable(const std::string& name,
                      const std::vector<std::string>& rows) {
  data::Table table(name, data::Schema({"text"}));
  for (size_t i = 0; i < rows.size(); ++i) {
    data::Record record;
    record.id = name + std::to_string(i);
    record.values = {rows[i]};
    table.Add(std::move(record));
  }
  return table;
}

TEST(SortedNeighborhoodEdgeTest, BulkKeyMatchesTheInMemoryKey) {
  data::Record record;
  record.values = {"zeta alpha", "Beta, gamma!"};
  // Tokenized + lower-cased + sorted: alpha beta gamma zeta.
  EXPECT_EQ(bulk::SortedNeighborhoodKey(record, 3), "alpha beta gamma");
  EXPECT_EQ(bulk::SortedNeighborhoodKey(record, 1), "alpha");
  // More key tokens than tokens: the whole signature, no padding.
  EXPECT_EQ(bulk::SortedNeighborhoodKey(record, 99),
            "alpha beta gamma zeta");
  data::Record empty;
  empty.values = {""};
  EXPECT_EQ(bulk::SortedNeighborhoodKey(empty, 3), "");
}

TEST(SortedNeighborhoodEdgeTest, DuplicateKeysPairOnceEach) {
  // Six records, one shared blocking key. With the window covering the
  // whole tie group every cross-source pair forms exactly once.
  data::Table d1 = MakeTable("L", {"same key", "same key", "same key"});
  data::Table d2 = MakeTable("R", {"same key", "same key", "same key"});
  SortedNeighborhoodOptions options;
  options.window = 6;
  auto candidates = SortedNeighborhoodBlocking(d1, d2, options);
  EXPECT_EQ(candidates.size(), 9u);
  std::set<std::pair<uint32_t, uint32_t>> unique(candidates.begin(),
                                                 candidates.end());
  EXPECT_EQ(unique.size(), candidates.size()) << "duplicate pair emitted";
}

TEST(SortedNeighborhoodEdgeTest, DegenerateWindowsYieldNothing) {
  data::Table d1 = MakeTable("L", {"aa", "bb"});
  data::Table d2 = MakeTable("R", {"aa", "bb"});
  for (size_t window : {size_t{0}, size_t{1}}) {
    SortedNeighborhoodOptions options;
    options.window = window;
    EXPECT_TRUE(SortedNeighborhoodBlocking(d1, d2, options).empty())
        << "window=" << window;
  }
}

// A window that straddles a shard boundary must produce the same pairs as
// the unsharded run: chunk prefixes exist exactly for this. Tiny datasets
// against many shards also leave some chunks empty — that must be a
// no-op, not an error.
TEST(SortedNeighborhoodEdgeTest, WindowsAcrossShardBoundariesAreSeamless) {
  datagen::SourceDatasetSpec spec;
  spec.id = "bulk_edge_sn";
  spec.d1_name = "EA";
  spec.d2_name = "EB";
  spec.domain = datagen::Domain::kProduct;
  spec.d1_size = 20;
  spec.d2_size = 20;
  spec.matches = 10;
  spec.seed = 53;
  datagen::BulkSourceGenerator source(spec);

  auto resolve = [&](size_t shards) {
    bulk::BulkOptions options;
    options.mode = bulk::BulkMode::kSortedNeighborhood;
    options.shards = shards;
    options.sn.window = 7;
    options.threshold = 0.0;
    options.spill_dir = "blocking_edge_spill";
    auto result = bulk::BulkResolve(source, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    std::filesystem::remove_all(options.spill_dir);
    if (!result.ok()) return std::string();
    EXPECT_EQ(result->shards_failed, 0u);
    return bulk::SerializeMatches(result->matches);
  };

  std::string base = resolve(1);
  ASSERT_FALSE(base.empty());
  EXPECT_EQ(resolve(3), base);
  // 16 shards over ~40 records: chunk boundaries everywhere, several
  // chunks shorter than the window, some empty.
  EXPECT_EQ(resolve(16), base);
}

TEST(MinHashEdgeTest, EmptyTokenSetsShareTheSentinelSignature) {
  // An empty token set minimises over nothing: every slot stays at the
  // sentinel, so two empty records collide in every band.
  auto signature = MinHashSignature(text::TokenSet(), 8, 17);
  ASSERT_EQ(signature.size(), 8u);
  for (uint64_t slot : signature) {
    EXPECT_EQ(slot, std::numeric_limits<uint64_t>::max());
  }
  data::Table d1 = MakeTable("L", {"", "real tokens here"});
  data::Table d2 = MakeTable("R", {"", "other words entirely"});
  MinHashOptions options;
  auto candidates = MinHashBlocking(d1, d2, options);
  bool empty_pair = false;
  for (const auto& [l, r] : candidates) {
    if (l == 0 && r == 0) empty_pair = true;
  }
  EXPECT_TRUE(empty_pair) << "empty records must land in one bucket";
}

TEST(MinHashEdgeTest, SingletonTokenSetsCollideOnlyWhenEqual) {
  data::Table d1 = MakeTable("L", {"apple", "banana"});
  data::Table d2 = MakeTable("R", {"apple", "cherry"});
  MinHashOptions options;
  auto candidates = MinHashBlocking(d1, d2, options);
  bool identical_pair = false;
  for (const auto& [l, r] : candidates) {
    // Identical singletons have identical signatures in every band.
    if (l == 0 && r == 0) identical_pair = true;
    // Disjoint singletons share no minimum anywhere: a collision would
    // need two distinct tokens to hash equal under some mix.
    EXPECT_FALSE(l == 1 && r == 1) << "banana/cherry collided";
  }
  EXPECT_TRUE(identical_pair);
}

TEST(MinHashEdgeTest, ZeroStopBucketCapDropsEveryCandidate) {
  data::Table d1 = MakeTable("L", {"same text", "same text"});
  data::Table d2 = MakeTable("R", {"same text", "same text"});
  MinHashOptions options;
  options.max_bucket_size = 0;  // every non-empty bucket is a stop bucket
  EXPECT_TRUE(MinHashBlocking(d1, d2, options).empty());
}

TEST(MinHashEdgeTest, BulkBandKeysMatchTheInMemoryFold) {
  data::Record record;
  record.values = {"several tokens to hash", "and a second attribute"};
  MinHashOptions options;
  options.num_hashes = 12;
  options.bands = 5;  // deliberately not a divisor: rows = 2
  options.seed = 99;

  size_t bands = options.bands;
  size_t rows = std::max<size_t>(1, options.num_hashes / bands);
  auto signature = MinHashSignature(
      text::TokenSet::FromText(record.ConcatenatedValues()), bands * rows,
      options.seed);
  std::vector<uint64_t> expected(bands);
  for (size_t b = 0; b < bands; ++b) {
    uint64_t key = 0xCBF29CE484222325ULL ^ (b + 1);
    for (size_t r = 0; r < rows; ++r) {
      key = SplitMix64(key ^ signature[b * rows + r]);
    }
    expected[b] = key;
  }
  EXPECT_EQ(bulk::BandKeysOf(record, options), expected);
}

}  // namespace
}  // namespace rlbench::block
