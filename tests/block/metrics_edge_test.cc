// Regression tests for EvaluateBlocking against degenerate candidate and
// match lists. Duplicated candidate pairs used to count the same
// ground-truth match repeatedly, pushing pair completeness past 1.0 — the
// kind of silent corruption RLBENCH_CHECK_PROB now catches at the source.
#include "block/metrics.h"

#include <gtest/gtest.h>

namespace rlbench::block {
namespace {

TEST(BlockingMetricsEdgeTest, DuplicateCandidatesDoNotInflateCompleteness) {
  std::vector<CandidatePair> matches = {{0, 0}, {1, 1}};
  // Pair (0,0) emitted three times; historically PC came out as 3/2 = 1.5.
  std::vector<CandidatePair> candidates = {{0, 0}, {0, 0}, {0, 0}};
  auto metrics = EvaluateBlocking(candidates, matches);
  EXPECT_EQ(metrics.true_candidates, 1u);
  EXPECT_DOUBLE_EQ(metrics.pair_completeness, 0.5);
  EXPECT_LE(metrics.pair_completeness, 1.0);
  // PQ counts distinct true candidates over all emitted candidates.
  EXPECT_DOUBLE_EQ(metrics.pairs_quality, 1.0 / 3.0);
}

TEST(BlockingMetricsEdgeTest, DuplicateMatchesCountOnce) {
  std::vector<CandidatePair> matches = {{0, 0}, {0, 0}, {1, 1}};
  std::vector<CandidatePair> candidates = {{0, 0}, {1, 1}};
  auto metrics = EvaluateBlocking(candidates, matches);
  EXPECT_EQ(metrics.true_candidates, 2u);
  EXPECT_DOUBLE_EQ(metrics.pair_completeness, 1.0);
  EXPECT_DOUBLE_EQ(metrics.pairs_quality, 1.0);
}

TEST(BlockingMetricsEdgeTest, PerfectBlockingWithDuplicates) {
  std::vector<CandidatePair> matches = {{2, 3}};
  std::vector<CandidatePair> candidates = {{2, 3}, {2, 3}};
  auto metrics = EvaluateBlocking(candidates, matches);
  EXPECT_DOUBLE_EQ(metrics.pair_completeness, 1.0);
  EXPECT_DOUBLE_EQ(metrics.pairs_quality, 0.5);
}

TEST(BlockingMetricsEdgeTest, EmptyMatchesYieldZeroMetrics) {
  auto metrics = EvaluateBlocking({{0, 0}}, {});
  EXPECT_DOUBLE_EQ(metrics.pair_completeness, 0.0);
  EXPECT_DOUBLE_EQ(metrics.pairs_quality, 0.0);
  EXPECT_EQ(metrics.num_candidates, 1u);
}

}  // namespace
}  // namespace rlbench::block
