// Tests for the alternative blockers: q-gram and sorted-neighbourhood.
#include <gtest/gtest.h>

#include "block/qgram_blocking.h"
#include "block/sorted_neighborhood.h"
#include "datagen/catalog.h"
#include "datagen/source_builder.h"

namespace rlbench::block {
namespace {

data::Table SmallTable(const char* name,
                       std::vector<std::vector<std::string>> rows) {
  data::Table table(name, data::Schema({"text"}));
  int i = 0;
  for (auto& row : rows) {
    table.Add(data::Record{name + std::to_string(i++), std::move(row)});
  }
  return table;
}

TEST(QGramBlockingTest, TyposStillBlocked) {
  // Token blocking misses "keybaord" vs "keyboard"; q-grams do not.
  auto d1 = SmallTable("a", {{"wireless keybaord"}});
  auto d2 = SmallTable("b", {{"wireless keyboard"}, {"cotton socks"}});
  QGramBlockingOptions options;
  options.min_shared_grams = 3;
  auto candidates = QGramBlocking(d1, d2, options);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].second, 0u);
}

TEST(QGramBlockingTest, MinSharedGramsFiltersWeakOverlap) {
  auto d1 = SmallTable("a", {{"alpha"}});
  auto d2 = SmallTable("b", {{"alphabet soup"}, {"zulu"}});
  QGramBlockingOptions loose;
  loose.min_shared_grams = 1;
  QGramBlockingOptions strict;
  strict.min_shared_grams = 50;
  EXPECT_GE(QGramBlocking(d1, d2, loose).size(), 1u);
  EXPECT_TRUE(QGramBlocking(d1, d2, strict).empty());
}

TEST(QGramBlockingTest, RecallOnRealisticSource) {
  auto source = datagen::BuildSourceDataset(
      *datagen::FindSourceDataset("Dn3"), 0.1);
  QGramBlockingOptions options;
  options.min_shared_grams = 5;
  auto candidates = QGramBlocking(source.d1, source.d2, options);
  auto metrics = EvaluateBlocking(candidates, source.matches);
  EXPECT_GT(metrics.pair_completeness, 0.95);  // q-grams are a loose blocker
}

TEST(SortedNeighborhoodTest, WindowControlsCandidateCount) {
  auto source = datagen::BuildSourceDataset(
      *datagen::FindSourceDataset("Dn3"), 0.1);
  SortedNeighborhoodOptions narrow;
  narrow.window = 4;
  SortedNeighborhoodOptions wide;
  wide.window = 20;
  auto few = SortedNeighborhoodBlocking(source.d1, source.d2, narrow);
  auto many = SortedNeighborhoodBlocking(source.d1, source.d2, wide);
  EXPECT_LT(few.size(), many.size());
  auto few_metrics = EvaluateBlocking(few, source.matches);
  auto many_metrics = EvaluateBlocking(many, source.matches);
  EXPECT_LE(few_metrics.pair_completeness, many_metrics.pair_completeness);
}

TEST(SortedNeighborhoodTest, PairsOrientedD1D2) {
  auto source = datagen::BuildSourceDataset(
      *datagen::FindSourceDataset("Dn1"), 0.1);
  SortedNeighborhoodOptions options;
  auto candidates = SortedNeighborhoodBlocking(source.d1, source.d2, options);
  for (const auto& [l, r] : candidates) {
    EXPECT_LT(l, source.d1.size());
    EXPECT_LT(r, source.d2.size());
  }
}

TEST(SortedNeighborhoodTest, DuplicatesLandInSameWindow) {
  auto d1 = SmallTable("a", {{"zeta omega alpha"}, {"qqq rrr sss"}});
  auto d2 = SmallTable("b", {{"alpha omega zeta"}, {"mmm nnn ooo"}});
  SortedNeighborhoodOptions options;
  options.window = 2;
  // The sorted token signature of records 0/0 is identical, so they must
  // be adjacent after sorting and fall in one window.
  auto candidates = SortedNeighborhoodBlocking(d1, d2, options);
  bool found = false;
  for (const auto& [l, r] : candidates) {
    if (l == 0 && r == 0) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace rlbench::block
