#include <gtest/gtest.h>

#include "block/deepblocker_sim.h"
#include "block/metrics.h"
#include "block/token_blocking.h"
#include "datagen/catalog.h"
#include "datagen/source_builder.h"

namespace rlbench::block {
namespace {

TEST(BlockingMetricsTest, ExactValues) {
  std::vector<CandidatePair> matches = {{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  std::vector<CandidatePair> candidates = {{0, 0}, {1, 1}, {5, 5}, {6, 6},
                                           {7, 7}};
  auto metrics = EvaluateBlocking(candidates, matches);
  EXPECT_EQ(metrics.true_candidates, 2u);
  EXPECT_DOUBLE_EQ(metrics.pair_completeness, 0.5);
  EXPECT_DOUBLE_EQ(metrics.pairs_quality, 0.4);
}

TEST(BlockingMetricsTest, EmptyCandidates) {
  auto metrics = EvaluateBlocking({}, {{0, 0}});
  EXPECT_DOUBLE_EQ(metrics.pair_completeness, 0.0);
  EXPECT_DOUBLE_EQ(metrics.pairs_quality, 0.0);
}

data::Table SmallTable(const char* name,
                       std::vector<std::vector<std::string>> rows) {
  data::Table table(name, data::Schema({"text"}));
  int i = 0;
  for (auto& row : rows) {
    table.Add(data::Record{name + std::to_string(i++), std::move(row)});
  }
  return table;
}

TEST(TokenBlockingTest, SharedTokenMakesCandidate) {
  auto d1 = SmallTable("a", {{"apple iphone"}, {"samsung galaxy"}});
  auto d2 = SmallTable("b", {{"iphone case"}, {"dell laptop"}});
  auto candidates = TokenBlocking(d1, d2, {});
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].first, 0u);
  EXPECT_EQ(candidates[0].second, 0u);
}

TEST(TokenBlockingTest, StopTokenBlocksSkipped) {
  std::vector<std::vector<std::string>> left;
  std::vector<std::vector<std::string>> right;
  for (int i = 0; i < 10; ++i) {
    // The numeric suffixes never collide across tables, so "common" is the
    // only shared token — and its block is oversized.
    left.push_back({"common token l" + std::to_string(i)});
    right.push_back({"common other r" + std::to_string(i)});
  }
  auto d1 = SmallTable("a", left);
  auto d2 = SmallTable("b", right);
  TokenBlockingOptions options;
  options.max_block_size = 5;  // "common" appears 10 times -> skipped
  auto candidates = TokenBlocking(d1, d2, options);
  EXPECT_TRUE(candidates.empty());
}

TEST(TokenBlockingTest, CandidateCapRespected) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 20; ++i) rows.push_back({"shared"});
  auto d1 = SmallTable("a", rows);
  auto d2 = SmallTable("b", rows);
  TokenBlockingOptions options;
  options.max_block_size = 1000;
  options.max_candidates = 37;
  EXPECT_EQ(TokenBlocking(d1, d2, options).size(), 37u);
}

class DeepBlockerTest : public ::testing::Test {
 protected:
  datagen::SourcePair MakeSource() {
    auto spec = *datagen::FindSourceDataset("Dn3");
    return datagen::BuildSourceDataset(spec, 0.1);
  }
};

TEST_F(DeepBlockerTest, TopKRecallGrowsWithK) {
  auto source = MakeSource();
  DeepBlockerSim blocker(32, 5);
  BlockerConfig config;
  config.k = 1;
  auto run1 = blocker.Run(source, config);
  config.k = 10;
  auto run10 = blocker.Run(source, config);
  EXPECT_GE(run10.metrics.pair_completeness,
            run1.metrics.pair_completeness);
  EXPECT_GE(run1.metrics.pairs_quality, run10.metrics.pairs_quality);
  EXPECT_EQ(run10.candidates.size(), source.d1.size() * 10);
}

TEST_F(DeepBlockerTest, LowNoiseSourceReachesHighRecallAtSmallK) {
  auto source = MakeSource();  // Dn3: bibliographic, low noise
  DeepBlockerSim blocker(32, 5);
  BlockerConfig config;
  config.k = 5;
  auto run = blocker.Run(source, config);
  EXPECT_GT(run.metrics.pair_completeness, 0.85);
}

TEST_F(DeepBlockerTest, TunerReachesTargetRecall) {
  auto source = MakeSource();
  DeepBlockerSim blocker(32, 5);
  DeepBlockerSim::TuneOptions options;
  options.min_recall = 0.9;
  options.k_max = 16;
  auto best = blocker.TuneForRecall(source, options);
  EXPECT_GE(best.metrics.pair_completeness, 0.9);
  // Tuning must not return an absurdly loose configuration: PQ above the
  // all-pairs baseline.
  double all_pairs_pq =
      static_cast<double>(source.matches.size()) /
      (static_cast<double>(source.d1.size()) * source.d2.size());
  EXPECT_GT(best.metrics.pairs_quality, all_pairs_pq);
}

TEST_F(DeepBlockerTest, IndexSideSwapsOrientation) {
  auto source = MakeSource();
  DeepBlockerSim blocker(32, 5);
  BlockerConfig config;
  config.k = 2;
  config.index_d2 = true;
  auto a = blocker.Run(source, config);
  config.index_d2 = false;
  auto b = blocker.Run(source, config);
  EXPECT_EQ(a.candidates.size(), source.d1.size() * 2);
  EXPECT_EQ(b.candidates.size(), source.d2.size() * 2);
  for (const auto& [l, r] : b.candidates) {
    EXPECT_LT(l, source.d1.size());
    EXPECT_LT(r, source.d2.size());
  }
}

TEST_F(DeepBlockerTest, DeterministicForSeed) {
  auto source = MakeSource();
  DeepBlockerSim a(32, 5);
  DeepBlockerSim b(32, 5);
  BlockerConfig config;
  config.k = 3;
  EXPECT_EQ(a.Run(source, config).candidates,
            b.Run(source, config).candidates);
}

TEST(ConfigToStringTest, Readable) {
  data::Schema schema({"title", "year"});
  BlockerConfig config{1, true, false, 7};
  std::string text = ConfigToString(config, schema);
  EXPECT_NE(text.find("year"), std::string::npos);
  EXPECT_NE(text.find("K=7"), std::string::npos);
  EXPECT_NE(text.find("ind=D1"), std::string::npos);
}

}  // namespace
}  // namespace rlbench::block
