#include "block/minhash_blocking.h"

#include <gtest/gtest.h>

#include "datagen/catalog.h"
#include "datagen/source_builder.h"
#include "text/similarity.h"

namespace rlbench::block {
namespace {

TEST(MinHashSignatureTest, CollisionRateTracksJaccard) {
  // The fraction of colliding MinHash slots estimates the Jaccard
  // similarity of the underlying sets.
  auto a = text::TokenSet::FromText(
      "alpha beta gamma delta epsilon zeta eta theta");
  auto b = text::TokenSet::FromText(
      "alpha beta gamma delta epsilon zeta iota kappa");
  double jaccard = text::JaccardSimilarity(a, b);
  size_t hashes = 512;  // large signature for a tight estimate
  auto sig_a = MinHashSignature(a, hashes, 3);
  auto sig_b = MinHashSignature(b, hashes, 3);
  size_t collisions = 0;
  for (size_t i = 0; i < hashes; ++i) {
    collisions += sig_a[i] == sig_b[i] ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(collisions) / hashes, jaccard, 0.08);
}

TEST(MinHashSignatureTest, IdenticalSetsIdenticalSignatures) {
  auto a = text::TokenSet::FromText("one two three");
  EXPECT_EQ(MinHashSignature(a, 16, 7), MinHashSignature(a, 16, 7));
  // Different seed, different signature.
  EXPECT_NE(MinHashSignature(a, 16, 7), MinHashSignature(a, 16, 8));
}

TEST(MinHashBlockingTest, HighRecallOnLowNoiseSource) {
  auto source = datagen::BuildSourceDataset(
      *datagen::FindSourceDataset("Dn3"), 0.1);
  MinHashOptions options;
  options.bands = 16;  // looser: more bands, fewer rows
  options.num_hashes = 32;
  auto candidates = MinHashBlocking(source.d1, source.d2, options);
  auto metrics = EvaluateBlocking(candidates, source.matches);
  EXPECT_GT(metrics.pair_completeness, 0.9);
  // Far fewer candidates than the cross product.
  EXPECT_LT(metrics.num_candidates,
            source.d1.size() * source.d2.size() / 4);
}

TEST(MinHashBlockingTest, MoreRowsPerBandRaisesPrecision) {
  auto source = datagen::BuildSourceDataset(
      *datagen::FindSourceDataset("Dn3"), 0.1);
  MinHashOptions loose;
  loose.num_hashes = 32;
  loose.bands = 16;  // 2 rows per band
  MinHashOptions strict;
  strict.num_hashes = 32;
  strict.bands = 4;  // 8 rows per band
  auto loose_metrics = EvaluateBlocking(
      MinHashBlocking(source.d1, source.d2, loose), source.matches);
  auto strict_metrics = EvaluateBlocking(
      MinHashBlocking(source.d1, source.d2, strict), source.matches);
  EXPECT_GE(strict_metrics.pairs_quality, loose_metrics.pairs_quality);
  EXPECT_LE(strict_metrics.pair_completeness,
            loose_metrics.pair_completeness + 1e-9);
}

TEST(MinHashBlockingTest, DeterministicForSeed) {
  auto source = datagen::BuildSourceDataset(
      *datagen::FindSourceDataset("Dn1"), 0.1);
  MinHashOptions options;
  EXPECT_EQ(MinHashBlocking(source.d1, source.d2, options),
            MinHashBlocking(source.d1, source.d2, options));
}

}  // namespace
}  // namespace rlbench::block
