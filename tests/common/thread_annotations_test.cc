// Behavioral tests for the annotated concurrency wrappers in
// common/thread_annotations.h: MutexLock mutual exclusion, TryLock,
// and CondVar handoff (explicit wait loop + predicate overload). The
// *static* side of the contract — that misuse fails to compile — is
// covered by tests/static/compile_fail_test.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace rlbench {
namespace {

TEST(MutexLockTest, MutualExclusionUnderContention) {
  class Counter {
   public:
    void Add(int n) {
      MutexLock lock(&mu_);
      // Read-modify-write on a plain int: only mutual exclusion keeps
      // this exact under contention.
      for (int i = 0; i < n; ++i) value_ = value_ + 1;
    }
    int Value() {
      MutexLock lock(&mu_);
      return value_;
    }

   private:
    Mutex mu_;
    int value_ RLBENCH_GUARDED_BY(mu_) = 0;
  };

  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] { counter.Add(kPerThread); });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(MutexLockTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  mu.Lock();
  bool acquired = true;
  std::thread prober([&mu, &acquired] {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();
  });
  prober.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();

  // Free mutex: TryLock succeeds and the lock is really held until Unlock.
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

// One-slot box exercising the canonical CondVar idioms from the header:
// producer notifies under the lock, consumer waits in an explicit
// while-loop (so the guarded read stays inside the locked region).
class Box {
 public:
  void Put(int v) {
    MutexLock lock(&mu_);
    value_ = v;
    filled_ = true;
    cv_.NotifyAll();
  }

  int TakeLoop() {
    MutexLock lock(&mu_);
    while (!filled_) cv_.Wait(&mu_);
    filled_ = false;
    return value_;
  }

  int TakePredicate() {
    MutexLock lock(&mu_);
    cv_.Wait(&mu_, [this]() RLBENCH_REQUIRES(mu_) { return filled_; });
    filled_ = false;
    return value_;
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int value_ RLBENCH_GUARDED_BY(mu_) = 0;
  bool filled_ RLBENCH_GUARDED_BY(mu_) = false;
};

TEST(CondVarTest, WaitLoopHandoffAcrossThreads) {
  Box box;
  int taken = 0;
  std::thread consumer([&box, &taken] { taken = box.TakeLoop(); });
  box.Put(42);
  consumer.join();
  EXPECT_EQ(taken, 42);
}

TEST(CondVarTest, PredicateOverloadHandoffAcrossThreads) {
  Box box;
  int taken = 0;
  std::thread consumer([&box, &taken] { taken = box.TakePredicate(); });
  box.Put(7);
  consumer.join();
  EXPECT_EQ(taken, 7);
}

}  // namespace
}  // namespace rlbench
