#include "common/strings.h"

#include <gtest/gtest.h>

namespace rlbench {
namespace {

TEST(StringsTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("HeLLo 123"), "hello 123");
  EXPECT_EQ(ToLowerAscii(""), "");
}

TEST(StringsTest, SplitAnyDropsEmptyPieces) {
  auto pieces = SplitAny("a,,b;;c", ",;");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(StringsTest, SplitAnyNoDelimiters) {
  auto pieces = SplitAny("abc", ",");
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "abc");
}

TEST(StringsTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"one"}, ", "), "one");
}

TEST(StringsTest, StripAscii) {
  EXPECT_EQ(StripAscii("  hi \t\n"), "hi");
  EXPECT_EQ(StripAscii(""), "");
  EXPECT_EQ(StripAscii("   "), "");
  EXPECT_EQ(StripAscii("x"), "x");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

TEST(StringsTest, Fnv1a64StableAndDistinct) {
  EXPECT_EQ(Fnv1a64("hello"), Fnv1a64("hello"));
  EXPECT_NE(Fnv1a64("hello"), Fnv1a64("hellp"));
  // Known FNV-1a reference value for the empty string.
  EXPECT_EQ(Fnv1a64(""), 0xCBF29CE484222325ULL);
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(0.5, 3), "0.500");
}

TEST(StringsTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-9876), "-9,876");
}

}  // namespace
}  // namespace rlbench
