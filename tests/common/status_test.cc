#include "common/status.h"

#include <gtest/gtest.h>

namespace rlbench {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> r(std::string("hello"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  RLBENCH_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_FALSE(Chained(-1).ok());
}

}  // namespace
}  // namespace rlbench
