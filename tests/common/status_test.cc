#include "common/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

namespace rlbench {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_EQ(Status::ResourceExhausted("disk full").ToString(),
            "ResourceExhausted: disk full");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> r(std::string("hello"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

TEST(ResultTest, ValueOrMoveOverloadAvoidsCopy) {
  Result<std::unique_ptr<int>> held(std::make_unique<int>(5));
  std::unique_ptr<int> out = std::move(held).ValueOr(nullptr);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 5);

  Result<std::unique_ptr<int>> error(Status::NotFound("gone"));
  EXPECT_EQ(std::move(error).ValueOr(nullptr), nullptr);
}

#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)
TEST(ResultDeathTest, DereferencingErrorResultIsCaught) {
  // Satellite regression: value()/operator* on an error Result used to
  // read a disengaged optional (UB); now RLBENCH_DCHECK fires in debug.
  Result<int> r(Status::NotFound("missing"));
  EXPECT_DEATH({ (void)r.value(); }, "");
  EXPECT_DEATH({ (void)*r; }, "");
}
#endif

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  RLBENCH_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_FALSE(Chained(-1).ok());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<std::string> Describe(int x) {
  RLBENCH_ASSIGN_OR_RETURN(int parsed, ParsePositive(x));
  RLBENCH_ASSIGN_OR_RETURN(auto doubled, ParsePositive(parsed * 2));
  return std::string("value ") + std::to_string(doubled);
}

TEST(StatusTest, AssignOrReturnMacroUnwrapsAndPropagates) {
  auto good = Describe(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, "value 42");

  auto bad = Describe(-3);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rlbench
