#include "common/check.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace rlbench {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(CheckTest, PassingChecksAreSilent) {
  RLBENCH_CHECK(true);
  RLBENCH_CHECK(1 + 1 == 2);
  RLBENCH_CHECK_MSG(true, "never shown");
  RLBENCH_CHECK_EQ(3, 3);
  RLBENCH_CHECK_NE(3, 4);
  RLBENCH_CHECK_LT(3, 4);
  RLBENCH_CHECK_LE(4, 4);
  RLBENCH_CHECK_GT(4, 3);
  RLBENCH_CHECK_GE(4, 4);
}

TEST(CheckDeathTest, FailedCheckAbortsWithExpression) {
  EXPECT_DEATH(RLBENCH_CHECK(2 < 1), "CHECK failed: 2 < 1");
}

TEST(CheckDeathTest, FailedCheckMsgCarriesDetail) {
  EXPECT_DEATH(RLBENCH_CHECK_MSG(false, "the operand story"),
               "the operand story");
}

TEST(CheckDeathTest, ComparisonFailureCapturesOperands) {
  int lhs = 7;
  int rhs = 3;
  // The report must contain both captured operand values.
  EXPECT_DEATH(RLBENCH_CHECK_LT(lhs, rhs), "lhs = 7, rhs = 3");
}

TEST(CheckTest, FiniteAcceptsOrdinaryValues) {
  RLBENCH_CHECK_FINITE(0.0);
  RLBENCH_CHECK_FINITE(-1e300);
  RLBENCH_CHECK_FINITE(std::numeric_limits<double>::denorm_min());
}

TEST(CheckDeathTest, FiniteRejectsNanAndInfinity) {
  EXPECT_DEATH(RLBENCH_CHECK_FINITE(kNan), "CHECK_FINITE failed");
  EXPECT_DEATH(RLBENCH_CHECK_FINITE(kInf), "CHECK_FINITE failed");
  EXPECT_DEATH(RLBENCH_CHECK_FINITE(-kInf), "CHECK_FINITE failed");
}

TEST(CheckTest, ProbAcceptsUnitInterval) {
  RLBENCH_CHECK_PROB(0.0);
  RLBENCH_CHECK_PROB(0.5);
  RLBENCH_CHECK_PROB(1.0);
}

TEST(CheckDeathTest, ProbRejectsOutOfRangeAndNan) {
  EXPECT_DEATH(RLBENCH_CHECK_PROB(-0.001), "CHECK_PROB failed");
  EXPECT_DEATH(RLBENCH_CHECK_PROB(1.001), "CHECK_PROB failed");
  EXPECT_DEATH(RLBENCH_CHECK_PROB(kNan), "CHECK_PROB failed");
}

TEST(CheckTest, IndexAcceptsValidRange) {
  RLBENCH_CHECK_INDEX(0, 1);
  RLBENCH_CHECK_INDEX(9, 10);
  EXPECT_EQ(CheckedIndex(2, 3), 2u);
  EXPECT_EQ(DcheckedIndex(2, 3), 2u);
}

TEST(CheckDeathTest, IndexRejectsOutOfBounds) {
  EXPECT_DEATH(RLBENCH_CHECK_INDEX(3, 3), "CHECK_INDEX failed");
  EXPECT_DEATH(CheckedIndex(5, 2), "CHECK_INDEX failed");
}

TEST(CheckTest, CheckEvaluatesConditionExactlyOnce) {
  int calls = 0;
  auto count = [&calls]() {
    ++calls;
    return true;
  };
  RLBENCH_CHECK(count());
  EXPECT_EQ(calls, 1);
}

TEST(CheckTest, DcheckPassesInEveryBuild) {
  RLBENCH_DCHECK(true);
  RLBENCH_DCHECK_EQ(1, 1);
  RLBENCH_DCHECK_FINITE(0.25);
  RLBENCH_DCHECK_PROB(0.25);
  RLBENCH_DCHECK_INDEX(0, 4);
}

TEST(CheckDeathTest, DcheckFiresOnlyWhenEnabled) {
  if (DchecksEnabled()) {
    EXPECT_DEATH(RLBENCH_DCHECK(false), "CHECK failed");
    EXPECT_DEATH(RLBENCH_DCHECK_PROB(2.0), "CHECK_PROB failed");
  } else {
    // Release builds compile DCHECKs out entirely.
    RLBENCH_DCHECK(false);
    RLBENCH_DCHECK_PROB(2.0);
    RLBENCH_DCHECK_FINITE(kNan);
  }
}

}  // namespace
}  // namespace rlbench
