#include "common/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace rlbench {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter table("My Table");
  table.SetHeader({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  std::ostringstream os;
  table.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("My Table"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TablePrinterTest, ColumnsAligned) {
  TablePrinter table("");
  table.SetHeader({"a", "b"});
  table.AddRow({"xxxx", "y"});
  std::ostringstream os;
  table.Print(os);
  // Header cell "b" must start at the same column as data cell "y".
  std::istringstream lines(os.str());
  std::string header_line;
  std::string separator;
  std::string data_line;
  std::getline(lines, header_line);
  std::getline(lines, separator);
  std::getline(lines, data_line);
  EXPECT_EQ(header_line.find('b'), data_line.find('y'));
}

TEST(TablePrinterTest, SeparatorRow) {
  TablePrinter table("");
  table.SetHeader({"c"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  std::ostringstream os;
  table.Print(os);
  // Two separators: one under the header, one between the rows.
  std::string out = os.str();
  size_t count = 0;
  size_t pos = 0;
  while ((pos = out.find("---", pos)) != std::string::npos) {
    ++count;
    pos = out.find('\n', pos);
  }
  EXPECT_EQ(count, 2u);
}

TEST(TablePrinterTest, RaggedRowsHandled) {
  TablePrinter table("");
  table.SetHeader({"a", "b", "c"});
  table.AddRow({"1"});
  std::ostringstream os;
  table.Print(os);
  SUCCEED();  // must not crash or throw
}

}  // namespace
}  // namespace rlbench
