#include "common/flags.h"

#include <gtest/gtest.h>

namespace rlbench {
namespace {

Flags Make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(args.data()));
}

TEST(FlagsTest, ParsesKeyValue) {
  Flags flags = Make({"--scale=0.5", "--name=test"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.0), 0.5);
  EXPECT_EQ(flags.GetString("name", ""), "test");
}

TEST(FlagsTest, BareFlagIsTrue) {
  Flags flags = Make({"--verbose"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.Has("verbose"));
}

TEST(FlagsTest, FallbacksWhenMissing) {
  Flags flags = Make({});
  EXPECT_EQ(flags.GetInt("n", 42), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("x", 2.5), 2.5);
  EXPECT_FALSE(flags.GetBool("b", false));
  EXPECT_FALSE(flags.Has("anything"));
}

TEST(FlagsTest, MalformedValueFallsBack) {
  Flags flags = Make({"--n=abc"});
  EXPECT_EQ(flags.GetInt("n", 7), 7);
}

TEST(FlagsTest, NonFlagTokensIgnored) {
  Flags flags = Make({"positional", "--k=3"});
  EXPECT_EQ(flags.GetInt("k", 0), 3);
}

TEST(FlagsTest, BoolSpellings) {
  Flags flags = Make({"--a=true", "--b=1", "--c=yes", "--d=false"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_TRUE(flags.GetBool("b", false));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
}

}  // namespace
}  // namespace rlbench
