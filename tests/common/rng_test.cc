#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace rlbench {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformRealWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(2.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(3);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SampleIndicesDistinctAndInRange) {
  Rng rng(5);
  auto sample = rng.SampleIndices(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 20u);
  for (size_t s : sample) EXPECT_LT(s, 50u);
}

TEST(RngTest, SampleIndicesCapsAtN) {
  Rng rng(5);
  auto sample = rng.SampleIndices(3, 10);
  EXPECT_EQ(sample.size(), 3u);
}

TEST(RngTest, ForkProducesDistinctSeeds) {
  Rng rng(9);
  std::set<uint64_t> seeds;
  for (int i = 0; i < 100; ++i) seeds.insert(rng.Fork());
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(SplitMix64Test, KnownFixedPointFree) {
  // SplitMix64 must be deterministic and not collapse small inputs.
  EXPECT_EQ(SplitMix64(0), SplitMix64(0));
  EXPECT_NE(SplitMix64(0), SplitMix64(1));
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
}

TEST(FeistelPermutationTest, IsABijectionOnAwkwardSizes) {
  // Non-power-of-two and tiny domains exercise the cycle-walking path.
  for (uint64_t n : {1ull, 2ull, 3ull, 7ull, 64ull, 100ull, 1000ull}) {
    FeistelPermutation perm(n, 42);
    std::set<uint64_t> seen;
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t mapped = perm.Forward(i);
      ASSERT_LT(mapped, n);
      seen.insert(mapped);
    }
    EXPECT_EQ(seen.size(), n) << "n=" << n;
  }
}

TEST(FeistelPermutationTest, InverseRoundTrips) {
  FeistelPermutation perm(977, 7);
  for (uint64_t i = 0; i < 977; ++i) {
    EXPECT_EQ(perm.Inverse(perm.Forward(i)), i);
    EXPECT_EQ(perm.Forward(perm.Inverse(i)), i);
  }
}

TEST(FeistelPermutationTest, SeedChangesOrderDeterministically) {
  FeistelPermutation a(512, 1);
  FeistelPermutation b(512, 1);
  FeistelPermutation c(512, 2);
  size_t differs = 0;
  for (uint64_t i = 0; i < 512; ++i) {
    EXPECT_EQ(a.Forward(i), b.Forward(i));
    if (a.Forward(i) != c.Forward(i)) ++differs;
  }
  // Different seeds must give a genuinely different permutation.
  EXPECT_GT(differs, 256u);
}

TEST(FeistelPermutationTest, ActuallyPermutes) {
  // The identity permutation would silently disable the output shuffle.
  FeistelPermutation perm(1024, 3);
  size_t moved = 0;
  for (uint64_t i = 0; i < 1024; ++i) {
    if (perm.Forward(i) != i) ++moved;
  }
  EXPECT_GT(moved, 512u);
}

}  // namespace
}  // namespace rlbench
