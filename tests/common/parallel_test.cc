#include "common/parallel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace rlbench {
namespace {

// Sum of f over [0, n) in ascending order — the serial reference for the
// reduction invariance tests.
double SerialSum(size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += std::sin(static_cast<double>(i)) * std::sqrt(i + 1.0);
  }
  return sum;
}

double ParallelSum(size_t n, size_t grain) {
  return ParallelReduce(
      0, n, grain, 0.0,
      [](size_t first, size_t last, size_t /*chunk*/) {
        double partial = 0.0;
        for (size_t i = first; i < last; ++i) {
          partial += std::sin(static_cast<double>(i)) * std::sqrt(i + 1.0);
        }
        return partial;
      },
      [](double acc, double partial) { return acc + partial; });
}

TEST(ParallelChunkingTest, CountAndBoundsTileTheRange) {
  EXPECT_EQ(ParallelChunkCount(0, 10, 3), 4U);
  EXPECT_EQ(ParallelChunkCount(0, 9, 3), 3U);
  EXPECT_EQ(ParallelChunkCount(5, 6, 100), 1U);
  EXPECT_EQ(ParallelChunkCount(7, 7, 3), 0U);

  // Chunks must tile [begin, end) exactly, in order, with only the tail
  // short — this is the fixed geometry the determinism contract rests on.
  size_t begin = 13, end = 113, grain = 7;
  size_t chunks = ParallelChunkCount(begin, end, grain);
  size_t cursor = begin;
  for (size_t c = 0; c < chunks; ++c) {
    auto [first, last] = ParallelChunkBounds(begin, end, grain, c);
    EXPECT_EQ(first, cursor);
    EXPECT_LE(last, end);
    EXPECT_EQ(last - first, c + 1 < chunks ? grain : end - cursor);
    cursor = last;
  }
  EXPECT_EQ(cursor, end);
}

TEST(ParallelForTest, EmptyRangeIsNoOp) {
  int calls = 0;
  ParallelFor(5, 5, 4, [&](size_t) { ++calls; });
  ParallelFor(9, 3, 4, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelReduceTest, EmptyRangeReturnsIdentity) {
  double result = ParallelReduce(
      4, 4, 2, 42.0,
      [](size_t, size_t, size_t) { return 1.0; },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(result, 42.0);
}

TEST(ParallelForTest, GrainLargerThanRangeVisitsEverything) {
  std::vector<int> counts(17, 0);
  ParallelFor(0, counts.size(), 1000, [&](size_t i) { ++counts[i]; });
  for (int count : counts) EXPECT_EQ(count, 1);
}

TEST(ParallelForTest, EveryIndexVisitedExactlyOnce) {
  SetParallelThreads(7);
  std::vector<int> counts(10000, 0);
  ParallelFor(0, counts.size(), 64, [&](size_t i) { ++counts[i]; });
  for (int count : counts) ASSERT_EQ(count, 1);
  SetParallelThreads(0);
}

TEST(ParallelForTest, ExceptionPropagatesAndPoolSurvives) {
  SetParallelThreads(4);
  auto boom = [] {
    ParallelFor(0, 1000, 16, [&](size_t i) {
      if (i == 637) throw std::runtime_error("chunk failure");
    });
  };
  EXPECT_THROW(boom(), std::runtime_error);
  // The pool must stay usable after a failed job.
  std::vector<int> counts(100, 0);
  ParallelFor(0, counts.size(), 8, [&](size_t i) { ++counts[i]; });
  for (int count : counts) EXPECT_EQ(count, 1);
  EXPECT_FALSE(InParallelRegion());
  SetParallelThreads(0);
}

TEST(ParallelForTest, NestedCallsAreRejectedFromPoolAndRunInline) {
  SetParallelThreads(4);
  constexpr size_t kOuter = 4;
  constexpr size_t kInner = 8;
  std::vector<std::thread::id> outer_thread(kOuter);
  std::vector<std::vector<std::thread::id>> inner_thread(
      kOuter, std::vector<std::thread::id>(kInner));
  std::vector<std::vector<int>> inner_counts(kOuter,
                                             std::vector<int>(kInner, 0));
  std::vector<uint8_t> saw_region_flag(kOuter, 0);

  EXPECT_FALSE(InParallelRegion());
  ParallelFor(0, kOuter, 1, [&](size_t i) {
    outer_thread[i] = std::this_thread::get_id();
    saw_region_flag[i] = InParallelRegion() ? 1 : 0;
    ParallelFor(0, kInner, 2, [&](size_t j) {
      inner_thread[i][j] = std::this_thread::get_id();
      ++inner_counts[i][j];
    });
  });
  EXPECT_FALSE(InParallelRegion());

  for (size_t i = 0; i < kOuter; ++i) {
    EXPECT_EQ(saw_region_flag[i], 1) << "outer body not marked in-region";
    for (size_t j = 0; j < kInner; ++j) {
      // The nested loop still visits every index exactly once...
      EXPECT_EQ(inner_counts[i][j], 1);
      // ...but serially, on the worker that owns the outer iteration.
      EXPECT_EQ(inner_thread[i][j], outer_thread[i]);
    }
  }
  SetParallelThreads(0);
}

TEST(ParallelReduceTest, ResultIsBitIdenticalAcrossThreadCounts) {
  constexpr size_t kN = 20000;
  constexpr size_t kGrain = 128;
  std::vector<double> sums;
  for (size_t threads : {1, 2, 7}) {
    SetParallelThreads(threads);
    sums.push_back(ParallelSum(kN, kGrain));
  }
  SetParallelThreads(0);
  // Exact double equality: the fixed chunk boundaries + ordered combine
  // make the floating-point grouping independent of the thread count.
  EXPECT_EQ(sums[0], sums[1]);
  EXPECT_EQ(sums[0], sums[2]);
  // And the single-chunk (grain > n) grouping matches the serial loop.
  EXPECT_EQ(ParallelSum(kN, kN), SerialSum(kN));
}

TEST(ParallelReduceTest, IntegerSumIsExact) {
  constexpr size_t kN = 9999;
  SetParallelThreads(7);
  auto sum = ParallelReduce(
      0, kN, 100, size_t{0},
      [](size_t first, size_t last, size_t) {
        size_t partial = 0;
        for (size_t i = first; i < last; ++i) partial += i;
        return partial;
      },
      [](size_t a, size_t b) { return a + b; });
  SetParallelThreads(0);
  EXPECT_EQ(sum, kN * (kN - 1) / 2);
}

TEST(SplitSeedTest, StreamsAreDeterministicAndIndependent) {
  constexpr uint64_t kBase = 0xFEEDFACEULL;
  // Deterministic: same (base, index) -> same stream.
  EXPECT_EQ(SplitSeed(kBase, 3), SplitSeed(kBase, 3));
  // Distinct indices (and bases) get distinct seeds.
  std::set<uint64_t> seeds;
  for (uint64_t i = 0; i < 1000; ++i) seeds.insert(SplitSeed(kBase, i));
  EXPECT_EQ(seeds.size(), 1000U);
  EXPECT_NE(SplitSeed(kBase, 0), SplitSeed(kBase + 1, 0));

  // Independence: chunk 1's draws do not depend on how much chunk 0
  // consumed — the property the per-chunk RNG measures (n4, l3) rely on.
  Rng heavy(SplitSeed(kBase, 0));
  for (int i = 0; i < 1000; ++i) heavy.Uniform();
  Rng stream_a(SplitSeed(kBase, 1));
  Rng stream_b(SplitSeed(kBase, 1));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(stream_a.UniformInt(0, 1 << 30), stream_b.UniformInt(0, 1 << 30));
  }
}

TEST(ParallelConfigTest, SetParallelThreadsOverridesAndRestores) {
  SetParallelThreads(3);
  EXPECT_EQ(ParallelThreadCount(), 3U);
  // Work is still correct after a resize.
  std::vector<int> counts(500, 0);
  ParallelFor(0, counts.size(), 10, [&](size_t i) { ++counts[i]; });
  for (int count : counts) EXPECT_EQ(count, 1);
  SetParallelThreads(0);
  EXPECT_GE(ParallelThreadCount(), 1U);
}

}  // namespace
}  // namespace rlbench
