#include <gtest/gtest.h>

#include <unordered_set>

#include "text/similarity.h"
#include "text/tokenizer.h"

#include "datagen/catalog.h"
#include "datagen/source_builder.h"
#include "datagen/task_builder.h"

namespace rlbench::datagen {
namespace {

TEST(CatalogTest, ThirteenExistingEightSources) {
  EXPECT_EQ(ExistingBenchmarks().size(), 13u);
  EXPECT_EQ(SourceDatasets().size(), 8u);
  EXPECT_NE(FindExistingBenchmark("Ds1"), nullptr);
  EXPECT_NE(FindExistingBenchmark("Dt2"), nullptr);
  EXPECT_EQ(FindExistingBenchmark("Dx9"), nullptr);
  EXPECT_NE(FindSourceDataset("Dn8"), nullptr);
  EXPECT_EQ(FindSourceDataset("Ds1"), nullptr);
}

TEST(CatalogTest, DirtyVariantsShareSeedsWithStructuredOrigins) {
  // Dd_i is derived from Ds_i, so they must generate the same entities.
  for (int i = 1; i <= 4; ++i) {
    const auto* dirty = FindExistingBenchmark("Dd" + std::to_string(i));
    const auto* structured = FindExistingBenchmark("Ds" + std::to_string(i));
    ASSERT_NE(dirty, nullptr);
    ASSERT_NE(structured, nullptr);
    EXPECT_EQ(dirty->seed, structured->seed);
    EXPECT_EQ(dirty->total_pairs, structured->total_pairs);
    EXPECT_TRUE(dirty->dirty);
    EXPECT_FALSE(structured->dirty);
  }
}

TEST(TaskBuilderTest, CountsMatchSpecAtFullScale) {
  ExistingBenchmarkSpec spec = *FindExistingBenchmark("Ds5");  // smallest
  auto task = BuildExistingBenchmark(spec, 1.0);
  auto stats = task.TotalStats();
  EXPECT_EQ(stats.total, spec.total_pairs);
  EXPECT_EQ(stats.positives, spec.positives);
}

TEST(TaskBuilderTest, ScaleShrinksProportionally) {
  ExistingBenchmarkSpec spec = *FindExistingBenchmark("Ds4");
  auto task = BuildExistingBenchmark(spec, 0.1);
  auto stats = task.TotalStats();
  EXPECT_NEAR(static_cast<double>(stats.total),
              0.1 * static_cast<double>(spec.total_pairs),
              0.02 * static_cast<double>(spec.total_pairs));
  // The imbalance ratio survives scaling.
  EXPECT_NEAR(stats.ImbalanceRatio(),
              static_cast<double>(spec.positives) /
                  static_cast<double>(spec.total_pairs),
              0.02);
}

TEST(TaskBuilderTest, SplitsAreDisjointAndStratified) {
  auto task = BuildExistingBenchmark(*FindExistingBenchmark("Ds5"), 1.0);
  auto key = [](const data::LabeledPair& p) {
    return (static_cast<uint64_t>(p.left) << 32) | p.right;
  };
  std::unordered_set<uint64_t> seen;
  for (const auto* split : {&task.train(), &task.valid(), &task.test()}) {
    for (const auto& pair : *split) {
      EXPECT_TRUE(seen.insert(key(pair)).second) << "duplicate pair";
    }
  }
  double ir_train = task.TrainStats().ImbalanceRatio();
  double ir_test = task.TestStats().ImbalanceRatio();
  EXPECT_NEAR(ir_train, ir_test, 0.03);
  // Roughly 3:1:1.
  EXPECT_NEAR(static_cast<double>(task.train().size()) /
                  static_cast<double>(task.AllPairs().size()),
              0.6, 0.02);
}

TEST(TaskBuilderTest, PairIndicesInRange) {
  auto task = BuildExistingBenchmark(*FindExistingBenchmark("Ds3"), 1.0);
  for (const auto& pair : task.AllPairs()) {
    EXPECT_LT(pair.left, task.left().size());
    EXPECT_LT(pair.right, task.right().size());
  }
}

TEST(TaskBuilderTest, DeterministicForSeed) {
  auto a = BuildExistingBenchmark(*FindExistingBenchmark("Ds5"), 1.0);
  auto b = BuildExistingBenchmark(*FindExistingBenchmark("Ds5"), 1.0);
  ASSERT_EQ(a.train().size(), b.train().size());
  for (size_t i = 0; i < a.train().size(); ++i) {
    EXPECT_EQ(a.train()[i].left, b.train()[i].left);
    EXPECT_EQ(a.train()[i].right, b.train()[i].right);
  }
  EXPECT_EQ(a.left().record(0).values, b.left().record(0).values);
}

TEST(TaskBuilderTest, DirtyTransformPreservesPairStructure) {
  auto clean = BuildExistingBenchmark(*FindExistingBenchmark("Ds3"), 1.0);
  auto dirty = BuildExistingBenchmark(*FindExistingBenchmark("Dd3"), 1.0);
  // Same pair counts and labels, different record layouts.
  EXPECT_EQ(clean.TotalStats().positives, dirty.TotalStats().positives);
  EXPECT_EQ(clean.left().size(), dirty.left().size());
  // At least some records must have values moved into the title.
  size_t moved = 0;
  for (size_t i = 0; i < dirty.left().size(); ++i) {
    for (size_t a = 1; a < dirty.left().record(i).values.size(); ++a) {
      if (dirty.left().record(i).values[a].empty() &&
          !clean.left().record(i).values[a].empty()) {
        ++moved;
      }
    }
  }
  EXPECT_GT(moved, dirty.left().size() / 2);
}

TEST(SourceBuilderTest, SizesAndGroundTruth) {
  SourceDatasetSpec spec = *FindSourceDataset("Dn1");
  auto source = BuildSourceDataset(spec, 0.25);
  EXPECT_GT(source.d1.size(), 0u);
  EXPECT_GT(source.d2.size(), 0u);
  EXPECT_GT(source.matches.size(), 0u);
  EXPECT_LE(source.matches.size(), source.d1.size());
  for (const auto& [l, r] : source.matches) {
    EXPECT_LT(l, source.d1.size());
    EXPECT_LT(r, source.d2.size());
  }
}

TEST(SourceBuilderTest, MatchesAreOneToOne) {
  auto source = BuildSourceDataset(*FindSourceDataset("Dn3"), 0.2);
  std::unordered_set<uint32_t> lefts;
  std::unordered_set<uint32_t> rights;
  for (const auto& [l, r] : source.matches) {
    EXPECT_TRUE(lefts.insert(l).second);
    EXPECT_TRUE(rights.insert(r).second);
  }
}

TEST(SourceBuilderTest, MatchedRecordsAreSimilar) {
  auto source = BuildSourceDataset(*FindSourceDataset("Dn3"), 0.2);
  // Bibliographic Dn3 has low noise: matched records share many tokens.
  size_t similar = 0;
  size_t checked = 0;
  for (const auto& [l, r] : source.matches) {
    if (checked++ >= 50) break;
    auto a = rlbench::text::TokenSet::FromText(
        source.d1.record(l).ConcatenatedValues());
    auto b = rlbench::text::TokenSet::FromText(
        source.d2.record(r).ConcatenatedValues());
    if (rlbench::text::JaccardSimilarity(a, b) > 0.5) ++similar;
  }
  EXPECT_GT(similar, 40u);
}

}  // namespace
}  // namespace rlbench::datagen
