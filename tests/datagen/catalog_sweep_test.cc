// Catalog-wide invariant sweep: every one of the 13 established specs and
// 8 source specs must build at small scale and satisfy the structural
// invariants the measures and matchers rely on.
#include <gtest/gtest.h>

#include <unordered_set>

#include "datagen/catalog.h"
#include "datagen/source_builder.h"
#include "datagen/task_builder.h"

namespace rlbench::datagen {
namespace {

class ExistingSweepTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ExistingSweepTest, StructuralInvariants) {
  const auto* spec = FindExistingBenchmark(GetParam());
  ASSERT_NE(spec, nullptr);
  auto task = BuildExistingBenchmark(*spec, 0.05);

  // Non-empty splits, all three mutually exclusive.
  EXPECT_FALSE(task.train().empty());
  EXPECT_FALSE(task.valid().empty());
  EXPECT_FALSE(task.test().empty());
  std::unordered_set<uint64_t> seen;
  for (const auto& pair : task.AllPairs()) {
    EXPECT_LT(pair.left, task.left().size());
    EXPECT_LT(pair.right, task.right().size());
    uint64_t key = (static_cast<uint64_t>(pair.left) << 32) | pair.right;
    EXPECT_TRUE(seen.insert(key).second);
  }

  // Both tables share the spec's schema width.
  size_t expected_attrs = spec->attr_indices.empty()
                              ? static_cast<size_t>(spec->num_attrs)
                              : spec->attr_indices.size();
  EXPECT_EQ(task.left().schema().num_attributes(), expected_attrs);
  EXPECT_EQ(task.right().schema().num_attributes(), expected_attrs);

  // No record is entirely empty (matching needs some text).
  for (const auto* table : {&task.left(), &task.right()}) {
    for (const auto& record : table->records()) {
      EXPECT_FALSE(record.ConcatenatedValues().empty()) << record.id;
    }
  }

  // Each split holds both classes (a degenerate split breaks training).
  EXPECT_GT(task.TrainStats().positives, 0u);
  EXPECT_GT(task.TrainStats().negatives, 0u);
  EXPECT_GT(task.TestStats().positives, 0u);
  EXPECT_GT(task.TestStats().negatives, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllThirteen, ExistingSweepTest,
    ::testing::Values("Ds1", "Ds2", "Ds3", "Ds4", "Ds5", "Ds6", "Ds7",
                      "Dd1", "Dd2", "Dd3", "Dd4", "Dt1", "Dt2"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

class SourceSweepTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SourceSweepTest, StructuralInvariants) {
  const auto* spec = FindSourceDataset(GetParam());
  ASSERT_NE(spec, nullptr);
  auto source = BuildSourceDataset(*spec, 0.05);
  EXPECT_GT(source.matches.size(), 0u);
  EXPECT_GE(source.d1.size(), source.matches.size());
  EXPECT_GE(source.d2.size(), source.matches.size());
  std::unordered_set<uint32_t> lefts;
  std::unordered_set<uint32_t> rights;
  for (const auto& [l, r] : source.matches) {
    ASSERT_LT(l, source.d1.size());
    ASSERT_LT(r, source.d2.size());
    EXPECT_TRUE(lefts.insert(l).second) << "duplicate left match";
    EXPECT_TRUE(rights.insert(r).second) << "duplicate right match";
  }
  size_t expected_attrs = spec->attr_indices.empty()
                              ? static_cast<size_t>(spec->num_attrs)
                              : spec->attr_indices.size();
  EXPECT_EQ(source.d1.schema().num_attributes(), expected_attrs);
  EXPECT_EQ(source.d2.schema().num_attributes(), expected_attrs);
}

INSTANTIATE_TEST_SUITE_P(
    AllEight, SourceSweepTest,
    ::testing::Values("Dn1", "Dn2", "Dn3", "Dn4", "Dn5", "Dn6", "Dn7",
                      "Dn8"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace rlbench::datagen
