#include "datagen/attr_select.h"

#include <gtest/gtest.h>

#include "datagen/catalog.h"
#include "datagen/task_builder.h"

namespace rlbench::datagen {
namespace {

TEST(AttrSelectTest, PrefixWhenNoExplicitIndices) {
  data::Schema schema({"a", "b", "c", "d"});
  auto indices = ResolveAttrIndices(schema, {}, 2);
  EXPECT_EQ(indices, (std::vector<int>{0, 1}));
}

TEST(AttrSelectTest, ZeroMeansAll) {
  data::Schema schema({"a", "b", "c"});
  auto indices = ResolveAttrIndices(schema, {}, 0);
  EXPECT_EQ(indices, (std::vector<int>{0, 1, 2}));
}

TEST(AttrSelectTest, ExplicitIndicesWin) {
  data::Schema schema({"a", "b", "c", "d"});
  auto indices = ResolveAttrIndices(schema, {0, 2}, 4);
  EXPECT_EQ(indices, (std::vector<int>{0, 2}));
}

TEST(AttrSelectTest, SelectSchemaAndRecord) {
  data::Schema schema({"title", "brand", "model", "price"});
  std::vector<int> indices = {0, 3};
  auto selected = SelectSchema(schema, indices);
  EXPECT_EQ(selected.attributes(),
            (std::vector<std::string>{"title", "price"}));
  data::Record record{"r", {"tv", "acme", "x1", "99"}};
  SelectRecordColumns(&record, indices);
  EXPECT_EQ(record.values, (std::vector<std::string>{"tv", "99"}));
}

TEST(AttrSelectTest, CatalogAmazonGoogleKeepsPrice) {
  // Ds6 models Amazon-Google's title/manufacturer/price layout: the price
  // column must survive and the model-number column must be gone.
  auto task = BuildExistingBenchmark(*FindExistingBenchmark("Ds6"), 0.02);
  EXPECT_EQ(task.left().schema().num_attributes(), 3u);
  EXPECT_EQ(task.left().schema().attribute(0), "title");
  EXPECT_EQ(task.left().schema().attribute(2), "price");
}

}  // namespace
}  // namespace rlbench::datagen
