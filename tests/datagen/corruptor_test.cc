#include "datagen/corruptor.h"

#include <gtest/gtest.h>

#include "common/strings.h"

namespace rlbench::datagen {
namespace {

TEST(NoiseProfileTest, ScalingClamps) {
  NoiseProfile profile;
  profile.typo_rate = 0.6;
  profile.value_drop_rate = 0.3;
  NoiseProfile scaled = profile.Scaled(3.0);
  EXPECT_DOUBLE_EQ(scaled.typo_rate, 1.0);
  EXPECT_DOUBLE_EQ(scaled.value_drop_rate, 0.9);
  NoiseProfile zero = profile.Scaled(0.0);
  EXPECT_DOUBLE_EQ(zero.typo_rate, 0.0);
}

TEST(CorruptorTest, TypoChangesWord) {
  Corruptor corruptor(NoiseProfile{}, 3);
  int changed = 0;
  for (int i = 0; i < 50; ++i) {
    if (corruptor.TypoWord("keyboard") != "keyboard") ++changed;
  }
  EXPECT_GT(changed, 45);  // insert/delete/replace/swap almost always differ
}

TEST(CorruptorTest, TypoKeepsShortWordsIntact) {
  Corruptor corruptor(NoiseProfile{}, 3);
  EXPECT_EQ(corruptor.TypoWord("a"), "a");
  EXPECT_EQ(corruptor.TypoWord(""), "");
}

TEST(CorruptorTest, AbbreviateShortens) {
  Corruptor corruptor(NoiseProfile{}, 5);
  for (int i = 0; i < 20; ++i) {
    std::string abbr = corruptor.Abbreviate("johnson");
    EXPECT_LE(abbr.size(), 4u);
    EXPECT_EQ(abbr[0], 'j');
  }
}

TEST(CorruptorTest, ZeroNoiseIsIdentity) {
  Corruptor corruptor(NoiseProfile{}, 7);
  EXPECT_EQ(corruptor.CorruptValue("deep entity matching"),
            "deep entity matching");
  data::Record record{"r", {"alpha beta", "42"}};
  data::Record copy = record;
  corruptor.CorruptRecord(&record, {false, true});
  EXPECT_EQ(record.values, copy.values);
}

TEST(CorruptorTest, HighNoiseChangesValue) {
  NoiseProfile profile;
  profile.typo_rate = 0.9;
  Corruptor corruptor(profile, 9);
  int changed = 0;
  for (int i = 0; i < 20; ++i) {
    if (corruptor.CorruptValue("wireless bluetooth headphones") !=
        "wireless bluetooth headphones") {
      ++changed;
    }
  }
  EXPECT_GT(changed, 15);
}

TEST(CorruptorTest, TokenDropNeverEmptiesValue) {
  NoiseProfile profile;
  profile.token_drop_rate = 1.0;
  Corruptor corruptor(profile, 11);
  // With drop probability 1 at least one token must survive.
  std::string out = corruptor.CorruptValue("one two three");
  EXPECT_FALSE(out.empty());
}

TEST(CorruptorTest, NumberPerturbationBounded) {
  NoiseProfile profile;
  profile.number_noise = 0.2;
  Corruptor corruptor(profile, 13);
  for (int i = 0; i < 50; ++i) {
    double y = std::stod(corruptor.CorruptNumber("100.00"));
    EXPECT_GE(y, 79.9);
    EXPECT_LE(y, 120.1);
  }
}

TEST(CorruptorTest, NumberPerturbationPreservesIntegerFormat) {
  NoiseProfile profile;
  profile.number_noise = 0.2;
  Corruptor corruptor(profile, 15);
  std::string out = corruptor.CorruptNumber("1999");
  EXPECT_EQ(out.find('.'), std::string::npos);
}

TEST(CorruptorTest, NonNumericValueUntouchedByNumberNoise) {
  NoiseProfile profile;
  profile.number_noise = 0.5;
  Corruptor corruptor(profile, 17);
  EXPECT_EQ(corruptor.CorruptNumber("n/a"), "n/a");
}

TEST(DirtyInjectTest, MovesValuesIntoTitle) {
  Corruptor corruptor(NoiseProfile{}, 19);
  int moved_total = 0;
  for (int i = 0; i < 100; ++i) {
    data::Record record{"r", {"title", "brand", "price"}};
    corruptor.DirtyInject(&record, 0);
    for (size_t a = 1; a < 3; ++a) {
      if (record.values[a].empty()) ++moved_total;
    }
    // Whatever moved must now be inside the title.
    if (record.values[1].empty()) {
      EXPECT_NE(record.values[0].find("brand"), std::string::npos);
    }
  }
  // Each value moves with probability 0.5: expect around 100 moves.
  EXPECT_GT(moved_total, 70);
  EXPECT_LT(moved_total, 130);
}

TEST(DirtyInjectTest, PreservesTokenMultiset) {
  // The paper's recipe moves values around but never loses information:
  // the schema-agnostic token set stays identical.
  Corruptor corruptor(NoiseProfile{}, 21);
  data::Record record{"r", {"alpha beta", "gamma", "delta"}};
  std::string before_tokens = record.values[0] + " " + record.values[1] +
                              " " + record.values[2];
  corruptor.DirtyInject(&record, 0);
  std::string after_tokens;
  for (const auto& value : record.values) {
    if (!value.empty()) after_tokens += value + " ";
  }
  auto sorted = [](std::string text) {
    auto tokens = SplitAny(text, " ");
    std::sort(tokens.begin(), tokens.end());
    return Join(tokens, " ");
  };
  EXPECT_EQ(sorted(before_tokens), sorted(after_tokens));
}

}  // namespace
}  // namespace rlbench::datagen
