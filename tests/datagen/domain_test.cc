#include "datagen/domain.h"

#include <gtest/gtest.h>

#include "text/similarity.h"
#include "text/tokenizer.h"

namespace rlbench::datagen {
namespace {

using text::TokenSet;

double RecordSim(const data::Record& a, const data::Record& b) {
  return text::JaccardSimilarity(TokenSet::FromText(a.ConcatenatedValues()),
                                 TokenSet::FromText(b.ConcatenatedValues()));
}

class DomainParamTest : public ::testing::TestWithParam<Domain> {};

TEST_P(DomainParamTest, SchemaAndValuesConsistent) {
  DomainGenerator generator(GetParam(), 42);
  EXPECT_GT(generator.schema().num_attributes(), 0u);
  EXPECT_EQ(generator.numeric_attrs().size(),
            generator.schema().num_attributes());
  auto family = generator.MakeFamily(3);
  ASSERT_EQ(family.size(), 3u);
  for (const auto& record : family) {
    EXPECT_EQ(record.values.size(), generator.schema().num_attributes());
    EXPECT_FALSE(record.ConcatenatedValues().empty());
  }
}

TEST_P(DomainParamTest, SiblingsShareSurfaceButDiffer) {
  DomainGenerator generator(GetParam(), 7);
  size_t closer = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    auto family = generator.MakeFamily(2);
    auto stranger = generator.MakeFamily(1)[0];
    // A sibling is a different entity...
    EXPECT_NE(family[0].values, family[1].values);
    // ...but shares more surface tokens than an unrelated entity, on
    // average (checked in aggregate: individual draws can collide).
    if (RecordSim(family[0], family[1]) >= RecordSim(family[0], stranger)) {
      ++closer;
    }
  }
  EXPECT_GT(closer, trials / 2);
}

TEST_P(DomainParamTest, DuplicateNoiseMonotone) {
  DomainGenerator generator(GetParam(), 11);
  double low_total = 0.0;
  double high_total = 0.0;
  for (int t = 0; t < 20; ++t) {
    auto base = generator.MakeFamily(1)[0];
    low_total += RecordSim(base, generator.MakeDuplicate(base, 0.05));
    high_total += RecordSim(base, generator.MakeDuplicate(base, 0.8));
  }
  EXPECT_GT(low_total, high_total + 1.0);  // clearly separated averages
}

TEST_P(DomainParamTest, ZeroNoiseDuplicateNearIdentical) {
  DomainGenerator generator(GetParam(), 13);
  auto base = generator.MakeFamily(1)[0];
  auto dup = generator.MakeDuplicate(base, 0.0);
  EXPECT_GT(RecordSim(base, dup), 0.95);
}

TEST_P(DomainParamTest, DeterministicForSeed) {
  DomainGenerator a(GetParam(), 99);
  DomainGenerator b(GetParam(), 99);
  EXPECT_EQ(a.MakeFamily(2)[1].values, b.MakeFamily(2)[1].values);
}

INSTANTIATE_TEST_SUITE_P(
    AllDomains, DomainParamTest,
    ::testing::Values(Domain::kBibliographic, Domain::kProduct,
                      Domain::kRestaurant, Domain::kSong, Domain::kBeer,
                      Domain::kMovie, Domain::kCompanyText,
                      Domain::kProductText),
    [](const ::testing::TestParamInfo<Domain>& info) {
      return DomainName(info.param);
    });

TEST(DomainTest, ProductSiblingKeepsBrandChangesCode) {
  DomainGenerator generator(Domain::kProduct, 3);
  auto family = generator.MakeFamily(2);
  // brand attribute (index 2) shared; modelno (index 3) differs.
  EXPECT_EQ(family[0].values[2], family[1].values[2]);
  EXPECT_NE(family[0].values[3], family[1].values[3]);
  // The codes stay q-gram similar (one digit changed).
  EXPECT_EQ(family[0].values[3].size(), family[1].values[3].size());
}

TEST(DomainTest, CompanyTextHasCoreTokens) {
  DomainGenerator generator(Domain::kCompanyText, 5);
  auto record = generator.MakeFamily(1)[0];
  auto tokens = text::Tokenize(record.values[0]);
  EXPECT_GT(tokens.size(), 50u);
  // The duplicate must retain the identifying head tokens.
  auto dup = generator.MakeDuplicate(record, 0.9);
  auto dup_tokens = text::Tokenize(dup.values[0]);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(tokens[i], dup_tokens[i]);
}

}  // namespace
}  // namespace rlbench::datagen
