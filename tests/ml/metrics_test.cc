#include "ml/metrics.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rlbench::ml {
namespace {

TEST(ConfusionTest, ExactValues) {
  Confusion c;
  c.true_positives = 8;
  c.false_positives = 2;
  c.false_negatives = 4;
  c.true_negatives = 86;
  EXPECT_DOUBLE_EQ(c.Precision(), 0.8);
  EXPECT_DOUBLE_EQ(c.Recall(), 8.0 / 12.0);
  EXPECT_NEAR(c.F1(), 2 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0), 1e-12);
  EXPECT_DOUBLE_EQ(c.Accuracy(), 0.94);
}

TEST(ConfusionTest, DegenerateCases) {
  Confusion empty;
  EXPECT_DOUBLE_EQ(empty.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(empty.F1(), 0.0);
}

TEST(EvaluateTest, TalliesCorrectly) {
  std::vector<uint8_t> truth = {1, 1, 0, 0, 1};
  std::vector<uint8_t> predicted = {1, 0, 0, 1, 1};
  Confusion c = Evaluate(truth, predicted);
  EXPECT_EQ(c.true_positives, 2u);
  EXPECT_EQ(c.false_negatives, 1u);
  EXPECT_EQ(c.false_positives, 1u);
  EXPECT_EQ(c.true_negatives, 1u);
}

TEST(F1AtThresholdTest, ThresholdInclusive) {
  std::vector<double> scores = {0.5, 0.4};
  std::vector<uint8_t> truth = {1, 0};
  // t <= s is a match, as in Algorithm 1 line 9.
  EXPECT_DOUBLE_EQ(F1AtThreshold(scores, truth, 0.5), 1.0);
}

/// Brute-force reference implementation of the threshold sweep.
ThresholdSweepResult BruteForceSweep(const std::vector<double>& scores,
                                     const std::vector<uint8_t>& truth) {
  ThresholdSweepResult best;
  best.best_threshold = 0.01;
  for (int step = 1; step <= 99; ++step) {
    double t = step / 100.0;
    double f1 = F1AtThreshold(scores, truth, t);
    if (f1 > best.best_f1) {
      best.best_f1 = f1;
      best.best_threshold = t;
    }
  }
  return best;
}

TEST(SweepThresholdsTest, PerfectSeparation) {
  std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  std::vector<uint8_t> truth = {1, 1, 0, 0};
  auto result = SweepThresholds(scores, truth);
  EXPECT_DOUBLE_EQ(result.best_f1, 1.0);
  EXPECT_GT(result.best_threshold, 0.2);
  EXPECT_LE(result.best_threshold, 0.8);
}

TEST(SweepThresholdsTest, MatchesBruteForceOnRandomData) {
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> scores;
    std::vector<uint8_t> truth;
    size_t n = 50 + rng.Index(200);
    for (size_t i = 0; i < n; ++i) {
      bool label = rng.Bernoulli(0.3);
      double score = label ? rng.Uniform(0.3, 1.0) : rng.Uniform(0.0, 0.7);
      scores.push_back(score);
      truth.push_back(label ? 1 : 0);
    }
    auto fast = SweepThresholds(scores, truth);
    auto brute = BruteForceSweep(scores, truth);
    EXPECT_NEAR(fast.best_f1, brute.best_f1, 1e-12);
    EXPECT_DOUBLE_EQ(fast.best_threshold, brute.best_threshold);
  }
}

TEST(SweepThresholdsTest, AllNegativeLabels) {
  std::vector<double> scores = {0.5, 0.6};
  std::vector<uint8_t> truth = {0, 0};
  auto result = SweepThresholds(scores, truth);
  EXPECT_DOUBLE_EQ(result.best_f1, 0.0);
}

TEST(SweepThresholdsTest, EmptyInput) {
  auto result = SweepThresholds({}, {});
  EXPECT_DOUBLE_EQ(result.best_f1, 0.0);
}

}  // namespace
}  // namespace rlbench::ml
