#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/decision_tree.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "ml/random_forest.h"
#include "ml/scaler.h"

namespace rlbench::ml {
namespace {

/// Linearly separable blobs around (0.2, 0.2) and (0.8, 0.8).
Dataset LinearBlobs(size_t n, uint64_t seed, double spread = 0.08) {
  Rng rng(seed);
  Dataset data(2);
  for (size_t i = 0; i < n; ++i) {
    bool label = i % 2 == 0;
    double cx = label ? 0.8 : 0.2;
    data.Add({static_cast<float>(cx + rng.Gaussian(0, spread)),
              static_cast<float>(cx + rng.Gaussian(0, spread))},
             label);
  }
  return data;
}

/// XOR pattern: not linearly separable, easy for trees / MLPs.
Dataset XorData(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset data(2);
  for (size_t i = 0; i < n; ++i) {
    double x = rng.Uniform();
    double y = rng.Uniform();
    bool label = (x > 0.5) != (y > 0.5);
    data.Add({static_cast<float>(x), static_cast<float>(y)}, label);
  }
  return data;
}

TEST(ScalerTest, ZeroMeanUnitVariance) {
  Dataset data(1);
  for (float v : {2.0F, 4.0F, 6.0F, 8.0F}) data.Add({v}, false);
  StandardScaler scaler;
  scaler.Fit(data);
  EXPECT_FLOAT_EQ(scaler.means()[0], 5.0F);
  Dataset scaled = scaler.TransformAll(data);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (size_t i = 0; i < scaled.size(); ++i) {
    sum += scaled.row(i)[0];
    sum_sq += scaled.row(i)[0] * scaled.row(i)[0];
  }
  EXPECT_NEAR(sum, 0.0, 1e-5);
  EXPECT_NEAR(sum_sq / 4.0, 1.0, 1e-5);
}

TEST(ScalerTest, ConstantFeaturePassesThrough) {
  Dataset data(1);
  for (int i = 0; i < 4; ++i) data.Add({3.0F}, false);
  StandardScaler scaler;
  scaler.Fit(data);
  EXPECT_FLOAT_EQ(scaler.stddevs()[0], 1.0F);  // no division blow-up
}

TEST(LogisticRegressionTest, SeparableBlobs) {
  Dataset train = LinearBlobs(400, 1);
  Dataset test = LinearBlobs(100, 2);
  LogisticRegression model;
  model.Fit(train, {});
  EXPECT_GT(model.EvaluateF1(test), 0.97);
}

TEST(LogisticRegressionTest, ScoresAreProbabilities) {
  Dataset train = LinearBlobs(200, 3);
  LogisticRegression model;
  model.Fit(train, {});
  for (size_t i = 0; i < train.size(); ++i) {
    double p = model.PredictScore(train.row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(LinearSvmTest, SeparableBlobs) {
  Dataset train = LinearBlobs(400, 4);
  Dataset test = LinearBlobs(100, 5);
  LinearSvm model;
  model.Fit(train, {});
  EXPECT_GT(model.EvaluateF1(test), 0.97);
}

TEST(LinearSvmTest, HingeLossLowWhenSeparable) {
  Dataset train = LinearBlobs(400, 6, 0.02);
  LinearSvm model;
  model.Fit(train, {});
  EXPECT_LT(model.MeanHingeLoss(train), 0.3);
}

TEST(LinearSvmTest, CannotSolveXor) {
  Dataset train = XorData(600, 7);
  LinearSvm model;
  model.Fit(train, {});
  // A linear model is near chance on XOR: accuracy around 0.5.
  size_t correct = 0;
  for (size_t i = 0; i < train.size(); ++i) {
    if (model.Predict(train.row(i)) == train.label(i)) ++correct;
  }
  EXPECT_LT(static_cast<double>(correct) / train.size(), 0.72);
}

TEST(DecisionTreeTest, SolvesXor) {
  Dataset train = XorData(600, 8);
  Dataset test = XorData(200, 9);
  DecisionTree model;
  model.Fit(train, {});
  EXPECT_GT(model.EvaluateF1(test), 0.9);
}

TEST(DecisionTreeTest, DeterministicForSeed) {
  Dataset train = XorData(300, 10);
  DecisionTreeOptions options;
  options.seed = 5;
  DecisionTree a(options);
  DecisionTree b(options);
  a.Fit(train, {});
  b.Fit(train, {});
  Dataset test = XorData(100, 11);
  EXPECT_EQ(a.PredictAll(test), b.PredictAll(test));
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  Dataset train = XorData(300, 12);
  DecisionTreeOptions options;
  options.max_depth = 1;
  DecisionTree stump(options);
  stump.Fit(train, {});
  EXPECT_LE(stump.num_nodes(), 3u);
}

TEST(DecisionTreeTest, EmptyTrainingSetPredictsZero) {
  Dataset train(2);
  DecisionTree model;
  model.Fit(train, {});
  std::vector<float> row = {0.5F, 0.5F};
  EXPECT_DOUBLE_EQ(model.PredictScore(row), 0.0);
}

TEST(RandomForestTest, SolvesXorBetterThanLinear) {
  Dataset train = XorData(600, 13);
  Dataset test = XorData(200, 14);
  RandomForest forest;
  forest.Fit(train, {});
  EXPECT_GT(forest.EvaluateF1(test), 0.9);
}

TEST(RandomForestTest, DeterministicForSeed) {
  Dataset train = XorData(300, 15);
  RandomForestOptions options;
  options.num_trees = 8;
  options.seed = 3;
  RandomForest a(options);
  RandomForest b(options);
  a.Fit(train, {});
  b.Fit(train, {});
  Dataset test = XorData(80, 16);
  EXPECT_EQ(a.PredictAll(test), b.PredictAll(test));
}

TEST(MlpTest, SolvesXor) {
  Dataset train = XorData(800, 17);
  Dataset valid = XorData(200, 18);
  Dataset test = XorData(200, 19);
  MlpOptions options;
  options.epochs = 60;
  Mlp model(options);
  model.Fit(train, valid);
  EXPECT_GT(model.EvaluateF1(test), 0.9);
}

TEST(MlpTest, EpochSelectionUsesValidation) {
  Dataset train = LinearBlobs(300, 20);
  Dataset valid = LinearBlobs(100, 21);
  MlpOptions options;
  options.epochs = 10;
  Mlp model(options);
  model.Fit(train, valid);
  EXPECT_GE(model.best_epoch(), 0);
  EXPECT_GT(model.best_valid_f1(), 0.9);
}

TEST(MlpTest, DeterministicForSeed) {
  Dataset train = XorData(300, 22);
  Dataset valid = XorData(100, 23);
  MlpOptions options;
  options.epochs = 10;
  options.seed = 77;
  Mlp a(options);
  Mlp b(options);
  a.Fit(train, valid);
  b.Fit(train, valid);
  Dataset test = XorData(50, 24);
  EXPECT_EQ(a.PredictAll(test), b.PredictAll(test));
}

TEST(MlpTest, ImbalanceHandled) {
  // 1:19 imbalance: without class weighting an MLP often collapses to the
  // majority class; the balanced loss must keep recall alive.
  Rng rng(25);
  Dataset train(2);
  Dataset valid(2);
  for (Dataset* part : {&train, &valid}) {
    size_t n = part == &train ? 800 : 200;
    for (size_t i = 0; i < n; ++i) {
      bool label = i % 20 == 0;
      double cx = label ? 0.75 : 0.25;
      part->Add({static_cast<float>(cx + rng.Gaussian(0, 0.08)),
                 static_cast<float>(cx + rng.Gaussian(0, 0.08))},
                label);
    }
  }
  MlpOptions options;
  options.epochs = 30;
  Mlp model(options);
  model.Fit(train, valid);
  EXPECT_GT(model.EvaluateF1(valid), 0.8);
}

}  // namespace
}  // namespace rlbench::ml
