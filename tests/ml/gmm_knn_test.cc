#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/gmm_em.h"
#include "ml/knn.h"

namespace rlbench::ml {
namespace {

Dataset TwoGaussians(size_t n, double match_fraction, uint64_t seed) {
  Rng rng(seed);
  Dataset data(2);
  for (size_t i = 0; i < n; ++i) {
    bool match = rng.Bernoulli(match_fraction);
    double c = match ? 0.85 : 0.2;
    data.Add({static_cast<float>(c + rng.Gaussian(0, 0.07)),
              static_cast<float>(c + rng.Gaussian(0, 0.07))},
             match);
  }
  return data;
}

TEST(GmmTest, RecoversWellSeparatedComponents) {
  Dataset data = TwoGaussians(1000, 0.15, 31);
  GaussianMixtureMatcher gmm;
  gmm.Fit(data);
  size_t correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (gmm.Predict(data.row(i)) == data.label(i)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / data.size(), 0.95);
  EXPECT_NEAR(gmm.match_prior(), 0.15, 0.05);
}

TEST(GmmTest, LogLikelihoodMonotoneNonDecreasing) {
  Dataset data = TwoGaussians(500, 0.2, 32);
  GaussianMixtureMatcher gmm;
  gmm.Fit(data);
  const auto& trace = gmm.log_likelihood_trace();
  ASSERT_GE(trace.size(), 2u);
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i], trace[i - 1] - 1e-6) << "EM step " << i;
  }
}

TEST(GmmTest, ConvergesBeforeMaxIterations) {
  Dataset data = TwoGaussians(500, 0.2, 33);
  GmmOptions options;
  options.max_iterations = 200;
  GaussianMixtureMatcher gmm(options);
  gmm.Fit(data);
  EXPECT_LT(gmm.iterations_run(), 200);
}

TEST(GmmTest, MatchComponentOrientedHigh) {
  // Even when seeded badly, the match component must end up on the
  // high-similarity side.
  Dataset data = TwoGaussians(600, 0.5, 34);
  GaussianMixtureMatcher gmm;
  gmm.Fit(data);
  std::vector<float> high = {0.9F, 0.9F};
  std::vector<float> low = {0.1F, 0.1F};
  EXPECT_GT(gmm.PredictScore(high), 0.5);
  EXPECT_LT(gmm.PredictScore(low), 0.5);
}

TEST(GmmTest, EmptyInputSafe) {
  GaussianMixtureMatcher gmm;
  gmm.Fit(Dataset(2));
  std::vector<float> row = {0.5F, 0.5F};
  EXPECT_DOUBLE_EQ(gmm.PredictScore(row), 0.0);
}

DistanceFn Euclid() {
  return [](const std::vector<double>& a, const std::vector<double>& b) {
    double sum = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      sum += (a[i] - b[i]) * (a[i] - b[i]);
    }
    return sum;
  };
}

TEST(KnnTest, NearestNeighborExcludesSelf) {
  std::vector<LabeledPoint> points = {
      {{0.0, 0.0}, false}, {{0.1, 0.0}, true}, {{5.0, 5.0}, false}};
  EXPECT_EQ(NearestNeighbor(points, points[0].x, Euclid(), 0), 1u);
  EXPECT_EQ(NearestNeighbor(points, points[0].x, Euclid(), SIZE_MAX), 0u);
}

TEST(KnnTest, LeaveOneOutErrorRate) {
  // Two tight clusters, one mislabelled point inside the wrong cluster.
  std::vector<LabeledPoint> points = {
      {{0.0, 0.0}, false}, {{0.1, 0.1}, false}, {{0.05, 0.0}, false},
      {{1.0, 1.0}, true},  {{1.1, 1.0}, true},  {{0.02, 0.05}, true}};
  double error = LeaveOneOut1NnErrorRate(points, Euclid());
  // The intruder misclassifies itself and pollutes its nearest neighbour.
  EXPECT_NEAR(error, 2.0 / 6.0, 1e-9);
}

TEST(KnnTest, PerfectClustersZeroError) {
  std::vector<LabeledPoint> points = {
      {{0.0, 0.0}, false}, {{0.1, 0.1}, false},
      {{1.0, 1.0}, true},  {{1.1, 1.0}, true}};
  EXPECT_DOUBLE_EQ(LeaveOneOut1NnErrorRate(points, Euclid()), 0.0);
}

}  // namespace
}  // namespace rlbench::ml
