#include "ml/calibration.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"

namespace rlbench::ml {
namespace {

TEST(PlattTest, CalibratesMargins) {
  // Raw margins in [-4, 4] with labels following a sigmoid at slope 1.
  Rng rng(51);
  std::vector<double> margins;
  std::vector<uint8_t> labels;
  for (int i = 0; i < 2000; ++i) {
    double m = rng.Uniform(-4.0, 4.0);
    margins.push_back(m);
    labels.push_back(rng.Bernoulli(1.0 / (1.0 + std::exp(-m))) ? 1 : 0);
  }
  PlattScaler scaler;
  scaler.Fit(margins, labels);
  EXPECT_NEAR(scaler.slope(), 1.0, 0.25);
  EXPECT_NEAR(scaler.intercept(), 0.0, 0.25);
  EXPECT_GT(scaler.Transform(3.0), 0.85);
  EXPECT_LT(scaler.Transform(-3.0), 0.15);
}

TEST(PlattTest, MonotoneInScore) {
  PlattScaler scaler;
  std::vector<double> scores = {-2, -1, 0, 1, 2};
  std::vector<uint8_t> labels = {0, 0, 0, 1, 1};
  scaler.Fit(scores, labels);
  double previous = -1.0;
  for (double s = -3.0; s <= 3.0; s += 0.5) {
    double p = scaler.Transform(s);
    EXPECT_GT(p, previous);
    previous = p;
  }
}

TEST(PlattTest, EmptyInputSafe) {
  PlattScaler scaler;
  scaler.Fit({}, {});
  EXPECT_GT(scaler.Transform(1.0), 0.5);
}

Dataset Blobs(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset data(2);
  for (size_t i = 0; i < n; ++i) {
    bool label = i % 3 == 0;
    double c = label ? 0.72 : 0.28;
    data.Add({static_cast<float>(c + rng.Gaussian(0, 0.1)),
              static_cast<float>(c + rng.Gaussian(0, 0.1))},
             label);
  }
  return data;
}

TEST(CrossValidationTest, FoldsScoreHighOnSeparableData) {
  Dataset data = Blobs(600, 53);
  auto f1s = CrossValidateF1(
      [] { return std::make_unique<LogisticRegression>(); }, data, 5, 7);
  ASSERT_EQ(f1s.size(), 5u);
  for (double f1 : f1s) EXPECT_GT(f1, 0.85);
}

TEST(CrossValidationTest, DeterministicForSeed) {
  Dataset data = Blobs(300, 55);
  auto factory = [] { return std::make_unique<LinearSvm>(); };
  EXPECT_EQ(CrossValidateF1(factory, data, 4, 9),
            CrossValidateF1(factory, data, 4, 9));
}

TEST(CrossValidationTest, MinimumTwoFolds) {
  Dataset data = Blobs(100, 57);
  auto f1s = CrossValidateF1(
      [] { return std::make_unique<LogisticRegression>(); }, data, 1, 3);
  EXPECT_EQ(f1s.size(), 2u);  // clamped up
}

}  // namespace
}  // namespace rlbench::ml
