#include <cmath>
#include <gtest/gtest.h>

#include "ml/metrics.h"

namespace rlbench::ml {
namespace {

TEST(MatthewsTest, PerfectPredictionIsOne) {
  Confusion c;
  c.true_positives = 10;
  c.true_negatives = 90;
  EXPECT_DOUBLE_EQ(c.MatthewsCorrelation(), 1.0);
}

TEST(MatthewsTest, InvertedPredictionIsMinusOne) {
  Confusion c;
  c.false_positives = 90;
  c.false_negatives = 10;
  EXPECT_DOUBLE_EQ(c.MatthewsCorrelation(), -1.0);
}

TEST(MatthewsTest, DegenerateIsZero) {
  Confusion c;
  c.true_positives = 5;  // no negatives at all -> undefined -> 0
  EXPECT_DOUBLE_EQ(c.MatthewsCorrelation(), 0.0);
}

TEST(MatthewsTest, KnownValue) {
  Confusion c;
  c.true_positives = 6;
  c.false_positives = 2;
  c.false_negatives = 4;
  c.true_negatives = 8;
  // MCC = (6*8 - 2*4) / sqrt(8*10*10*12) = 40 / sqrt(9600).
  EXPECT_NEAR(c.MatthewsCorrelation(), 40.0 / std::sqrt(9600.0), 1e-12);
}

TEST(AveragePrecisionTest, PerfectRanking) {
  std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  std::vector<uint8_t> truth = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(AveragePrecision(scores, truth), 1.0);
}

TEST(AveragePrecisionTest, WorstRanking) {
  std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  std::vector<uint8_t> truth = {0, 0, 1, 1};
  // Positives at ranks 3 and 4: AP = (1/3 + 2/4) / 2.
  EXPECT_NEAR(AveragePrecision(scores, truth), (1.0 / 3 + 0.5) / 2, 1e-12);
}

TEST(AveragePrecisionTest, MixedRanking) {
  std::vector<double> scores = {0.9, 0.7, 0.5, 0.3};
  std::vector<uint8_t> truth = {1, 0, 1, 0};
  // Positives at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
  EXPECT_NEAR(AveragePrecision(scores, truth), (1.0 + 2.0 / 3) / 2, 1e-12);
}

TEST(AveragePrecisionTest, NoPositives) {
  EXPECT_DOUBLE_EQ(AveragePrecision({0.5}, {0}), 0.0);
}

}  // namespace
}  // namespace rlbench::ml
