#include "ml/gbdt.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/linear_svm.h"

namespace rlbench::ml {
namespace {

Dataset XorData(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset data(2);
  for (size_t i = 0; i < n; ++i) {
    double x = rng.Uniform();
    double y = rng.Uniform();
    data.Add({static_cast<float>(x), static_cast<float>(y)},
             (x > 0.5) != (y > 0.5));
  }
  return data;
}

Dataset Blobs(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset data(2);
  for (size_t i = 0; i < n; ++i) {
    bool label = i % 4 == 0;
    double c = label ? 0.7 : 0.3;
    data.Add({static_cast<float>(c + rng.Gaussian(0, 0.1)),
              static_cast<float>(c + rng.Gaussian(0, 0.1))},
             label);
  }
  return data;
}

TEST(GbdtTest, SolvesXor) {
  Dataset train = XorData(800, 41);
  Dataset test = XorData(200, 42);
  GradientBoostedTrees model;
  model.Fit(train, {});
  EXPECT_GT(model.EvaluateF1(test), 0.9);
}

TEST(GbdtTest, BeatsLinearOnXor) {
  Dataset train = XorData(800, 43);
  Dataset test = XorData(200, 44);
  GradientBoostedTrees gbdt;
  gbdt.Fit(train, {});
  LinearSvm svm;
  svm.Fit(train, {});
  EXPECT_GT(gbdt.EvaluateF1(test), svm.EvaluateF1(test) + 0.2);
}

TEST(GbdtTest, MoreRoundsDoNotHurtSeparableData) {
  Dataset train = Blobs(600, 45);
  Dataset test = Blobs(200, 46);
  GbdtOptions few;
  few.rounds = 5;
  GbdtOptions many;
  many.rounds = 80;
  GradientBoostedTrees a(few);
  GradientBoostedTrees b(many);
  a.Fit(train, {});
  b.Fit(train, {});
  EXPECT_GE(b.EvaluateF1(test), a.EvaluateF1(test) - 0.05);
  EXPECT_EQ(b.num_trees(), 80u);
}

TEST(GbdtTest, ScoresAreProbabilities) {
  Dataset train = Blobs(300, 47);
  GradientBoostedTrees model;
  model.Fit(train, {});
  for (size_t i = 0; i < train.size(); ++i) {
    double p = model.PredictScore(train.row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(GbdtTest, DeterministicForSeed) {
  Dataset train = XorData(400, 48);
  GbdtOptions options;
  options.seed = 9;
  GradientBoostedTrees a(options);
  GradientBoostedTrees b(options);
  a.Fit(train, {});
  b.Fit(train, {});
  Dataset test = XorData(100, 49);
  EXPECT_EQ(a.PredictAll(test), b.PredictAll(test));
}

TEST(GbdtTest, EmptyTrainingSafe) {
  GradientBoostedTrees model;
  model.Fit(Dataset(2), {});
  std::vector<float> row = {0.5F, 0.5F};
  double p = model.PredictScore(row);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

}  // namespace
}  // namespace rlbench::ml
