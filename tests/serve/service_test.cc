// MatchService: served scores must equal direct matcher invocation
// bit-for-bit at any thread count, the micro-batcher must not change
// results, and admission control must reject — never block or crash.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "matchers/context.h"
#include "matchers/esde.h"
#include "matchers/magellan.h"
#include "matchers/registry.h"
#include "matchers/zeroer.h"
#include "obs/metrics.h"
#include "serve/service.h"

namespace rlbench::serve {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    task_ = new data::MatchingTask(datagen::BuildExistingBenchmark(
        *datagen::FindExistingBenchmark("Ds7"), 0.5));
  }
  static void TearDownTestSuite() {
    delete task_;
    task_ = nullptr;
  }

  static std::shared_ptr<const matchers::TrainedModel> Train(
      const matchers::MatchingContext& context, const std::string& name) {
    context.left().Thaw();
    context.right().Thaw();
    auto trained = matchers::TrainServableMatcher(name, context);
    EXPECT_TRUE(trained.ok()) << trained.status();
    return std::shared_ptr<const matchers::TrainedModel>(std::move(*trained));
  }

  static data::MatchingTask* task_;
};

data::MatchingTask* ServiceTest::task_ = nullptr;

// For each servable family, predictions served through the snapshot model
// must equal the matcher's own Run() — same bits, same decisions.
TEST_F(ServiceTest, ServedDecisionsEqualDirectRunPerFamily) {
  matchers::MagellanMatcher magellan(matchers::MagellanClassifier::kLinearSvm);
  matchers::ZeroErMatcher zeroer;
  matchers::EsdeMatcher esde(matchers::EsdeVariant::kSchemaAgnostic);
  matchers::Matcher* all[] = {&magellan, &zeroer, &esde};
  for (matchers::Matcher* matcher : all) {
    SCOPED_TRACE(matcher->name());
    matchers::MatchingContext context(task_);
    std::vector<uint8_t> direct = matcher->Run(context);

    matchers::MatchingContext fresh(task_);
    MatchService service(&fresh);
    auto model = matcher->TrainModel(fresh);
    ASSERT_TRUE(model.ok()) << model.status();
    ASSERT_TRUE(service
                    .SwapModel(std::shared_ptr<const matchers::TrainedModel>(
                        std::move(*model)))
                    .ok());
    std::vector<uint8_t> served;
    auto assessed = service.AssessDataset(nullptr, &served);
    ASSERT_TRUE(assessed.ok()) << assessed.status();
    EXPECT_EQ(served, direct);
    EXPECT_EQ(assessed->pairs, task_->test().size());
    EXPECT_GT(assessed->batches, 0u);
  }
}

// Bit-exact thread invariance through the full serve path: train, swap,
// submit micro-batches, compare scores at 1, 2 and 7 threads.
TEST_F(ServiceTest, ServedScoresThreadInvariant) {
  auto scores_at = [&](size_t threads) {
    SetParallelThreads(threads);
    matchers::MatchingContext context(task_);
    MatchService service(&context);
    EXPECT_TRUE(service.SwapModel(Train(context, "SAQ-ESDE")).ok());
    std::vector<double> scores;
    const auto& test = task_->test();
    for (size_t begin = 0; begin < test.size(); begin += 7) {
      std::vector<data::LabeledPair> chunk(
          test.begin() + begin,
          test.begin() + std::min(test.size(), begin + 7));
      auto id = service.Submit(std::move(chunk),
                               [&scores](const RequestOutcome& outcome) {
                                 EXPECT_TRUE(outcome.status.ok());
                                 for (const PairScore& r : outcome.results) {
                                   scores.push_back(r.score);
                                 }
                               });
      EXPECT_TRUE(id.ok()) << id.status();
    }
    EXPECT_GT(service.QueuedPairs(), 0u);
    service.Drain();
    EXPECT_EQ(service.QueueDepth(), 0u);
    return scores;
  };
  auto one = scores_at(1);
  auto two = scores_at(2);
  auto seven = scores_at(7);
  SetParallelThreads(0);
  ASSERT_EQ(one.size(), task_->test().size());
  EXPECT_EQ(one, two);  // exact equality — the determinism contract
  EXPECT_EQ(one, seven);
}

// Coalescing many small requests into one batch must score identically to
// one request per batch.
TEST_F(ServiceTest, CoalescingDoesNotChangeScores) {
  matchers::MatchingContext context(task_);
  MatchService service(&context);
  ASSERT_TRUE(service.SwapModel(Train(context, "Magellan-LR")).ok());
  std::vector<data::LabeledPair> pairs(task_->test().begin(),
                                       task_->test().begin() + 12);

  std::vector<double> singly;
  for (const auto& pair : pairs) {
    ASSERT_TRUE(service
                    .Submit({pair},
                            [&singly](const RequestOutcome& outcome) {
                              ASSERT_TRUE(outcome.status.ok());
                              singly.push_back(outcome.results[0].score);
                            })
                    .ok());
    service.Drain();  // one pair per batch
  }

  std::vector<double> coalesced;
  for (const auto& pair : pairs) {
    ASSERT_TRUE(service
                    .Submit({pair},
                            [&coalesced](const RequestOutcome& outcome) {
                              ASSERT_TRUE(outcome.status.ok());
                              coalesced.push_back(outcome.results[0].score);
                            })
                    .ok());
  }
  EXPECT_EQ(service.QueueDepth(), pairs.size());
  EXPECT_EQ(service.PumpOne(), pairs.size());  // all 12 in one micro-batch
  EXPECT_EQ(singly, coalesced);
}

TEST_F(ServiceTest, AdmissionControlRejectsWithoutBlocking) {
  matchers::MatchingContext context(task_);
  MatchServiceOptions options;
  options.queue_capacity_pairs = 8;
  options.max_batch_pairs = 4;
  MatchService service(&context, options);

  data::LabeledPair pair = task_->test().front();
  int callbacks = 0;
  auto count = [&callbacks](const RequestOutcome&) { ++callbacks; };

  // No model yet -> FailedPrecondition.
  EXPECT_EQ(service.Submit({pair}, count).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(service.SwapModel(Train(context, "Magellan-DT")).ok());

  // Oversized and malformed requests are rejected up front.
  EXPECT_EQ(service.Submit(std::vector<data::LabeledPair>(5, pair), count)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.Submit({}, count).status().code(),
            StatusCode::kInvalidArgument);
  data::LabeledPair bogus{1u << 30, 0, false};
  EXPECT_EQ(service.Submit({bogus}, count).status().code(),
            StatusCode::kInvalidArgument);

  // Fill the queue to capacity: 4 x 2 pairs admitted, the 5th rejected
  // with ResourceExhausted — it must not block, drop, or crash.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        service.Submit(std::vector<data::LabeledPair>(2, pair), count).ok());
  }
  EXPECT_EQ(service.QueuedPairs(), 8u);
  auto rejected = service.Submit(std::vector<data::LabeledPair>(2, pair), count);
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  // Draining answers exactly the admitted requests, then capacity frees.
  EXPECT_EQ(service.Drain(), 4u);
  EXPECT_EQ(callbacks, 4);
  EXPECT_EQ(service.QueuedPairs(), 0u);
  EXPECT_TRUE(
      service.Submit(std::vector<data::LabeledPair>(2, pair), count).ok());
  service.Drain();
}

TEST_F(ServiceTest, QueuedDeadlineExpiresInsteadOfScoring) {
  matchers::MatchingContext context(task_);
  MatchService service(&context);
  ASSERT_TRUE(service.SwapModel(Train(context, "Magellan-DT")).ok());

  Status expired;
  // A vanishingly small (but non-zero) deadline has always lapsed by pump
  // time; deadline 0 means none.
  ASSERT_TRUE(service
                  .SubmitWithDeadline({task_->test().front()}, 1e-7,
                                      [&expired](const RequestOutcome& o) {
                                        expired = o.status;
                                      })
                  .ok());
  Status scored;
  ASSERT_TRUE(service
                  .SubmitWithDeadline({task_->test().front()}, 0.0,
                                      [&scored](const RequestOutcome& o) {
                                        scored = o.status;
                                      })
                  .ok());
  service.Drain();
  EXPECT_EQ(expired.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(scored.ok()) << scored;  // its batch-mate is unaffected
}

// Swapping between model families mid-serve re-warms the caches and keeps
// scores bit-identical to a service that never swapped.
TEST_F(ServiceTest, HotSwapAcrossFamiliesKeepsScoresExact) {
  matchers::MatchingContext context(task_);
  MatchService service(&context);
  auto magellan = Train(context, "Magellan-RF");
  auto esde = Train(context, "SAS-ESDE");  // sentence family: no token caches

  auto score_one = [&service](const data::LabeledPair& pair) {
    double score = -1.0;
    EXPECT_TRUE(service
                    .Submit({pair},
                            [&score](const RequestOutcome& outcome) {
                              ASSERT_TRUE(outcome.status.ok());
                              score = outcome.results[0].score;
                            })
                    .ok());
    service.Drain();
    return score;
  };

  ASSERT_TRUE(service.SwapModel(magellan).ok());
  double magellan_score = score_one(task_->test()[3]);
  ASSERT_TRUE(service.SwapModel(esde).ok());
  double esde_score = score_one(task_->test()[3]);
  ASSERT_TRUE(service.SwapModel(magellan).ok());
  // Back on the first model: same pair, bit-identical score.
  EXPECT_EQ(score_one(task_->test()[3]), magellan_score);
  ASSERT_TRUE(service.SwapModel(esde).ok());
  EXPECT_EQ(score_one(task_->test()[3]), esde_score);

  // Schema arity validation still guards the swap path.
  EXPECT_EQ(service.SwapModel(nullptr).code(), StatusCode::kInvalidArgument);
}

// Toggling metrics collection must not perturb scores (the obs layer is
// observation only).
TEST_F(ServiceTest, MetricsOnOffDoesNotChangeScores) {
  auto run = [&](bool metrics_on) {
    obs::Metrics::SetEnabled(metrics_on);
    matchers::MatchingContext context(task_);
    MatchService service(&context);
    EXPECT_TRUE(service.SwapModel(Train(context, "SB-ESDE")).ok());
    std::vector<double> scores;
    auto assessed = service.AssessDataset(&scores, nullptr);
    EXPECT_TRUE(assessed.ok());
    return scores;
  };
  auto off = run(false);
  auto on = run(true);
  obs::Metrics::SetEnabled(false);
  EXPECT_EQ(off, on);
}

}  // namespace
}  // namespace rlbench::serve
