// Framing + JSON DOM parser of the serve wire protocol.
#include <gtest/gtest.h>

#include <string>

#include "obs/json.h"
#include "serve/wire.h"

namespace rlbench::serve {
namespace {

TEST(FrameTest, RoundTripThroughDecoder) {
  std::string stream;
  ASSERT_TRUE(AppendFrame("hello", &stream).ok());
  ASSERT_TRUE(AppendFrame("", &stream).ok());
  ASSERT_TRUE(AppendFrame(std::string(1000, 'x'), &stream).ok());

  FrameDecoder decoder;
  // Feed one byte at a time: reassembly must be chunk-boundary agnostic.
  std::vector<std::string> frames;
  for (char c : stream) {
    decoder.Append(std::string_view(&c, 1));
    while (true) {
      auto next = decoder.Next();
      ASSERT_TRUE(next.ok());
      if (!next->has_value()) break;
      frames.push_back(**next);
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], "hello");
  EXPECT_EQ(frames[1], "");
  EXPECT_EQ(frames[2], std::string(1000, 'x'));
  EXPECT_EQ(decoder.BufferedBytes(), 0u);
}

TEST(FrameTest, OversizedPayloadRejectedOnBothSides) {
  std::string big(kMaxFramePayload + 1, 'y');
  std::string out;
  EXPECT_EQ(AppendFrame(big, &out).code(), StatusCode::kInvalidArgument);

  // A hostile header announcing 2^31 bytes must fail before allocating.
  char header[kFrameHeaderBytes] = {'\x80', 0, 0, 0};
  EXPECT_EQ(DecodeFrameHeader(header).status().code(),
            StatusCode::kInvalidArgument);
  FrameDecoder decoder;
  decoder.Append(std::string_view(header, kFrameHeaderBytes));
  EXPECT_FALSE(decoder.Next().ok());
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->AsBool());
  EXPECT_FALSE(ParseJson("false")->AsBool());
  EXPECT_DOUBLE_EQ(ParseJson("42")->AsNumber(), 42.0);
  EXPECT_DOUBLE_EQ(ParseJson("-0.5e2")->AsNumber(), -50.0);
  EXPECT_EQ(ParseJson("\"hi\"")->AsString(), "hi");
}

TEST(JsonParseTest, ObjectOrderAndLookups) {
  auto parsed = ParseJson(
      R"({"op":"match_batch","pairs":[[1,2],[3,4]],"deadline_ms":1.5})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetString("op"), "match_batch");
  EXPECT_DOUBLE_EQ(parsed->GetNumber("deadline_ms"), 1.5);
  EXPECT_DOUBLE_EQ(parsed->GetNumber("missing", -1.0), -1.0);
  auto array = parsed->RequireArray("pairs");
  ASSERT_TRUE(array.ok());
  ASSERT_EQ((*array)->AsArray().size(), 2u);
  EXPECT_DOUBLE_EQ((*array)->AsArray()[1].AsArray()[0].AsNumber(), 3.0);
  EXPECT_EQ(parsed->RequireString("nope").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(parsed->RequireNumber("op").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(JsonParseTest, StringEscapes) {
  auto parsed = ParseJson(R"("a\"b\\c\/d\n\tAé")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "a\"b\\c/d\n\tA\xC3\xA9");
  // Surrogate pair -> one 4-byte UTF-8 code point.
  EXPECT_EQ(ParseJson(R"("😀")")->AsString(), "\xF0\x9F\x98\x80");
  // Lone surrogate degrades to U+FFFD, not invalid UTF-8.
  EXPECT_EQ(ParseJson(R"("\ud83dx")")->AsString(), "\xEF\xBF\xBDx");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"unterminated",
        "\"ctrl\x01\"", "{\"a\":1}x", "[1] []", "nan", "{'a':1}"}) {
    EXPECT_FALSE(ParseJson(bad).ok()) << bad;
  }
}

TEST(JsonParseTest, NestingCapHolds) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
  std::string fine(30, '[');
  fine += std::string(30, ']');
  EXPECT_TRUE(ParseJson(fine).ok());
}

TEST(JsonParseTest, ParsesWhatObsEmits) {
  // The server builds responses with obs::JsonString / JsonNumber; the
  // parser must read them back exactly.
  std::string tricky = "quote\" slash\\ ctrl\x01 text";
  auto parsed = ParseJson(obs::JsonString(tricky));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), tricky);

  double value = 0.1234567890123456789;
  auto number = ParseJson(obs::JsonNumber(value));
  ASSERT_TRUE(number.ok());
  EXPECT_EQ(number->AsNumber(), value);  // %.17g round-trips bit-exactly
}

}  // namespace
}  // namespace rlbench::serve
