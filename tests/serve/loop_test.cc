// The nonblocking serving loop from the outside: AcceptWithDeadline
// returns control instead of parking forever (the old blocking-Accept
// regression), ConnectWithRetry gives up cleanly after bounded jittered
// attempts, one server multiplexes many concurrent connections with
// per-connection response order, and a shutdown racing pipelined in-flight
// requests completes them — late frames get a clean shutdown error — at
// 1, 2 and 7 scoring threads.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/stopwatch.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "matchers/context.h"
#include "matchers/registry.h"
#include "serve/client.h"
#include "serve/net.h"
#include "serve/server.h"

namespace rlbench::serve {
namespace {

// Regression: Accept() with no timeout can park a shutdown forever on an
// idle listener. The deadline variant must hand control back.
TEST(LoopNetTest, AcceptWithDeadlineTimesOutInsteadOfBlocking) {
  uint16_t port = 0;
  auto listener = ListenLoopback(0, &port);
  ASSERT_TRUE(listener.ok()) << listener.status();

  Stopwatch watch;
  auto none = AcceptWithDeadline(*listener, 50);
  ASSERT_TRUE(none.ok()) << none.status();
  EXPECT_FALSE(none->has_value());  // timed out, did not block
  EXPECT_GE(watch.ElapsedMillis(), 40.0);

  // With a connection pending in the backlog the same call accepts it.
  auto client = ConnectLoopback(port);
  ASSERT_TRUE(client.ok()) << client.status();
  auto accepted = AcceptWithDeadline(*listener, 1000);
  ASSERT_TRUE(accepted.ok()) << accepted.status();
  ASSERT_TRUE(accepted->has_value());
  EXPECT_TRUE((*accepted)->valid());

  // A zero deadline is a pure non-blocking probe.
  auto probe = AcceptWithDeadline(*listener, 0);
  ASSERT_TRUE(probe.ok());
  EXPECT_FALSE(probe->has_value());
}

TEST(LoopNetTest, ConnectWithRetryGivesUpAfterBoundedAttempts) {
  // Grab an ephemeral port, then free it: nothing listens there.
  uint16_t dead_port = 0;
  {
    auto listener = ListenLoopback(0, &dead_port);
    ASSERT_TRUE(listener.ok());
  }
  ReconnectOptions options;
  options.max_attempts = 3;
  options.initial_backoff_ms = 1.0;
  options.max_backoff_ms = 4.0;
  auto client = MatchClient::ConnectWithRetry(dead_port, options);
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kIOError);
  EXPECT_NE(client.status().message().find("gave up after 3"),
            std::string::npos)
      << client.status();
}

// Fork a serving child. `threads` pins the scoring pool width in the
// child; the bound port comes back over a pipe.
pid_t SpawnServer(size_t threads, uint16_t* port) {
  int fds[2];
  if (pipe(fds) != 0) return -1;
  pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return -1;
  }
  if (pid == 0) {
    close(fds[0]);
    SetParallelThreads(threads);
    auto task = datagen::BuildExistingBenchmark(
        *datagen::FindExistingBenchmark("Ds7"), 0.5);
    matchers::MatchingContext context(&task);
    MatchServerOptions options;
    options.tick_timeout_ms = 5;
    MatchServer server(&context, options);
    auto model = matchers::TrainServableMatcher("Magellan-DT", context);
    if (!model.ok() ||
        !server.service()
             .SwapModel(std::shared_ptr<const matchers::TrainedModel>(
                 std::move(*model)))
             .ok() ||
        !server.Start().ok()) {
      close(fds[1]);
      _exit(2);
    }
    std::string note = std::to_string(server.port()) + "\n";
    if (write(fds[1], note.data(), note.size()) !=
        static_cast<ssize_t>(note.size())) {
      _exit(2);
    }
    close(fds[1]);
    Status served = server.Serve();
    _exit(served.ok() ? 0 : 3);
  }
  close(fds[1]);
  std::string line;
  char c;
  while (read(fds[0], &c, 1) == 1 && c != '\n') line.push_back(c);
  close(fds[0]);
  if (line.empty()) return -1;
  *port = static_cast<uint16_t>(std::stoi(line));
  return pid;
}

// One event loop, several live connections: requests interleaved across
// clients are answered on the right connection, in that connection's
// request order — the multiplexing contract the old one-connection-at-a-
// time server could not offer.
TEST(LoopNetTest, MultiplexesConcurrentConnectionsWithPerConnectionOrder) {
  uint16_t port = 0;
  pid_t server = SpawnServer(2, &port);
  ASSERT_GT(server, 0);

  constexpr int kClients = 3;
  constexpr int kRequests = 5;
  std::vector<MatchClient> clients;
  for (int i = 0; i < kClients; ++i) {
    auto client = MatchClient::ConnectWithRetry(port);
    ASSERT_TRUE(client.ok()) << client.status();
    clients.push_back(std::move(*client));
  }

  // Interleave: client 0 frame, client 1 frame, ... — all written before
  // any response is read, so the loop must hold all conversations open.
  for (int r = 0; r < kRequests; ++r) {
    for (int i = 0; i < kClients; ++i) {
      uint32_t left = static_cast<uint32_t>(i * kRequests + r);
      ASSERT_TRUE(clients[i]
                      .SendRequest(
                          MatchClient::MatchBatchRequest({{left, 0u}}))
                      .ok());
    }
  }
  // Each connection gets its own answers, in its own order.
  std::vector<std::vector<double>> scores(kClients);
  for (int i = 0; i < kClients; ++i) {
    for (int r = 0; r < kRequests; ++r) {
      auto response = clients[i].RecvResponse();
      ASSERT_TRUE(response.ok()) << response.status();
      scores[i].push_back(response->Find("scores")->AsArray()[0].AsNumber());
    }
  }
  for (int i = 0; i < kClients; ++i) {
    for (int r = 0; r < kRequests; ++r) {
      auto direct =
          clients[0].MatchPair(static_cast<uint32_t>(i * kRequests + r), 0);
      ASSERT_TRUE(direct.ok());
      EXPECT_EQ(direct->score, scores[i][r]) << i << "/" << r;
    }
  }

  auto shutdown = clients[1].Shutdown();
  ASSERT_TRUE(shutdown.ok()) << shutdown.status();
  int wstatus = 0;
  ASSERT_EQ(waitpid(server, &wstatus, 0), server);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
}

// Shutdown racing active pipelined connections, across scoring thread
// counts: every request submitted before the shutdown completes with its
// scores, frames arriving after it get the clean "shutting down" error
// (or, if the drain window already closed, a clean connection close) —
// and the server always exits 0.
TEST(LoopNetTest, GracefulDrainCompletesInFlightRequestsAcrossThreadCounts) {
  for (size_t threads : {1u, 2u, 7u}) {
    SCOPED_TRACE(threads);
    uint16_t port = 0;
    pid_t server = SpawnServer(threads, &port);
    ASSERT_GT(server, 0);

    auto pipelined = MatchClient::ConnectWithRetry(port);
    ASSERT_TRUE(pipelined.ok()) << pipelined.status();
    auto controller = MatchClient::ConnectWithRetry(port);
    ASSERT_TRUE(controller.ok()) << controller.status();

    // In-flight load: written to the socket before the shutdown exists.
    constexpr int kInFlight = 6;
    for (int i = 0; i < kInFlight; ++i) {
      ASSERT_TRUE(pipelined
                      ->SendRequest(MatchClient::MatchBatchRequest(
                          {{static_cast<uint32_t>(i), 0u},
                           {static_cast<uint32_t>(i + 1), 1u}}))
                      .ok());
    }
    // The race: a second connection shuts the server down while those
    // frames are queued/scoring.
    auto shutdown = controller->Shutdown();
    ASSERT_TRUE(shutdown.ok()) << shutdown.status();

    // Late frames, sent after the shutdown was acknowledged.
    constexpr int kLate = 3;
    int late_sent = 0;
    for (int i = 0; i < kLate; ++i) {
      if (pipelined->SendRequest(MatchClient::MatchBatchRequest({{0u, 0u}}))
              .ok()) {
        ++late_sent;
      } else {
        break;  // drain window already closed the connection — clean
      }
    }

    // Every in-flight request completes with real scores: the drain never
    // drops admitted work.
    for (int i = 0; i < kInFlight; ++i) {
      auto response = pipelined->RecvResponse();
      ASSERT_TRUE(response.ok()) << i << ": " << response.status();
      EXPECT_EQ(response->Find("scores")->AsArray().size(), 2u);
    }
    // Late frames are answered with the shutdown error while the drain
    // window is open; once it closes, the connection ends cleanly (eof),
    // never with a hang or a scored response.
    for (int i = 0; i < late_sent; ++i) {
      auto late = pipelined->RecvResponse();
      ASSERT_FALSE(late.ok());
      if (late.status().code() == StatusCode::kIOError) {
        EXPECT_NE(late.status().message().find("eof"), std::string::npos)
            << late.status();
        break;  // connection closed; nothing more arrives
      }
      EXPECT_EQ(late.status().code(), StatusCode::kFailedPrecondition)
          << late.status();
      EXPECT_NE(late.status().message().find("shutting down"),
                std::string::npos)
          << late.status();
    }

    int wstatus = 0;
    ASSERT_EQ(waitpid(server, &wstatus, 0), server);
    ASSERT_TRUE(WIFEXITED(wstatus));
    EXPECT_EQ(WEXITSTATUS(wstatus), 0);
  }
}

}  // namespace
}  // namespace rlbench::serve
