// Tiered load-shedding: the hysteresis controller's transition rules
// (enter/exit bands, dwell, reject releasing into degraded), and — through
// a shed-enabled MatchService — the core robustness contract: degraded
// responses are bit-identical to running the linear fallback scorer
// directly, at any thread count.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "matchers/context.h"
#include "matchers/registry.h"
#include "serve/service.h"
#include "serve/shed.h"

namespace rlbench::serve {
namespace {

TEST(ShedControllerTest, WalksTheTierLadderWithDwell) {
  ShedOptions options;
  options.dwell = 2;
  ShedController shed(options);
  EXPECT_EQ(shed.tier(), ShedTier::kFull);

  // One hot observation is not enough: dwell demands two in a row.
  EXPECT_EQ(shed.Observe(0.7, 0.0), ShedTier::kFull);
  EXPECT_EQ(shed.Observe(0.7, 0.0), ShedTier::kDegraded);
  EXPECT_EQ(shed.transitions(), 1u);

  // Past the reject-enter fill, the ladder climbs again.
  shed.Observe(0.95, 0.0);
  EXPECT_EQ(shed.Observe(0.95, 0.0), ShedTier::kReject);
  EXPECT_EQ(shed.transitions(), 2u);

  // Release: reject de-escalates into degraded — never straight to full —
  // and only below the exit threshold, for dwell observations.
  shed.Observe(0.0, 0.0);
  EXPECT_EQ(shed.Observe(0.0, 0.0), ShedTier::kDegraded);
  shed.Observe(0.0, 0.0);
  EXPECT_EQ(shed.Observe(0.0, 0.0), ShedTier::kFull);
  EXPECT_EQ(shed.transitions(), 4u);
}

TEST(ShedControllerTest, HysteresisBandHoldsTheTierBetweenThresholds) {
  ShedOptions options;
  options.dwell = 1;
  ShedController shed(options);
  // Climb into degraded, then hover inside the band (exit 0.30 < fill <
  // enter 0.60): the tier must hold, not flap.
  shed.Observe(0.7, 0.0);
  ASSERT_EQ(shed.tier(), ShedTier::kDegraded);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(shed.Observe(0.45, 0.0), ShedTier::kDegraded);
  }
  EXPECT_EQ(shed.transitions(), 1u);
}

TEST(ShedControllerTest, DwellSuppressesAlternatingFlap) {
  ShedOptions options;
  options.dwell = 2;
  ShedController shed(options);
  // Load alternating across the degrade boundary never dwells long enough
  // to move the tier.
  for (int i = 0; i < 10; ++i) {
    shed.Observe(i % 2 == 0 ? 0.7 : 0.0, 0.0);
    EXPECT_EQ(shed.tier(), ShedTier::kFull);
  }
  EXPECT_EQ(shed.transitions(), 0u);
}

TEST(ShedControllerTest, LatencySignalShedsIndependentlyOfQueueFill) {
  ShedOptions options;
  options.dwell = 1;
  options.p99_enter_ms = 10.0;
  options.p99_exit_ms = 5.0;
  ShedController shed(options);
  // Queue empty, but the rolling p99 is past the enter threshold.
  EXPECT_EQ(shed.Observe(0.0, 20.0), ShedTier::kDegraded);
  // Inside the latency band the tier holds; below the exit it releases.
  EXPECT_EQ(shed.Observe(0.0, 7.0), ShedTier::kDegraded);
  EXPECT_EQ(shed.Observe(0.0, 2.0), ShedTier::kFull);
}

TEST(ShedControllerTest, TierNamesAreStable) {
  EXPECT_STREQ(ShedTierName(ShedTier::kFull), "full");
  EXPECT_STREQ(ShedTierName(ShedTier::kDegraded), "degraded");
  EXPECT_STREQ(ShedTierName(ShedTier::kReject), "reject");
}

class ShedServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    task_ = new data::MatchingTask(datagen::BuildExistingBenchmark(
        *datagen::FindExistingBenchmark("Ds7"), 0.5));
  }
  static void TearDownTestSuite() {
    delete task_;
    task_ = nullptr;
  }

  static std::shared_ptr<const matchers::TrainedModel> Train(
      const matchers::MatchingContext& context, const std::string& name) {
    context.left().Thaw();
    context.right().Thaw();
    auto trained = matchers::TrainServableMatcher(name, context);
    EXPECT_TRUE(trained.ok()) << trained.status();
    return std::shared_ptr<const matchers::TrainedModel>(std::move(*trained));
  }

  static data::MatchingTask* task_;
};

data::MatchingTask* ShedServiceTest::task_ = nullptr;

// Open-loop overload against a shed-enabled service: the tier ladder fires,
// rejects carry the configured Retry-After hint, and every degraded
// response is bit-identical to the linear fallback scorer run directly on
// the same pairs — at 1, 2 and 7 threads.
TEST_F(ShedServiceTest, DegradedResponsesBitIdenticalToFallbackAtAnyThreads) {
  struct StormResult {
    std::vector<std::vector<data::LabeledPair>> degraded_pairs;
    std::vector<std::vector<double>> degraded_scores;
    uint64_t rejected = 0;
    uint64_t transitions = 0;
  };
  auto storm_at = [&](size_t threads) {
    SetParallelThreads(threads);
    StormResult result;
    matchers::MatchingContext context(task_);
    MatchServiceOptions options;
    options.queue_capacity_pairs = 64;
    options.max_batch_pairs = 16;
    options.shed_enabled = true;
    options.shed.dwell = 1;
    options.shed_retry_after_ms = 25.0;
    MatchService service(&context, options);
    EXPECT_TRUE(service.SwapModel(Train(context, "Magellan-DT")).ok());
    EXPECT_TRUE(service.SetFallbackModel(Train(context, "SA-ESDE")).ok());

    const auto& test = task_->test();
    size_t cursor = 0;
    for (int step = 0; step < 30; ++step) {
      for (int b = 0; b < 12; ++b) {
        std::vector<data::LabeledPair> pairs;
        for (int p = 0; p < 4; ++p) {
          pairs.push_back(test[cursor++ % test.size()]);
        }
        std::vector<data::LabeledPair> copy = pairs;
        auto id = service.Submit(
            std::move(pairs),
            [&result, copy](const RequestOutcome& outcome) {
              ASSERT_TRUE(outcome.status.ok());
              if (outcome.tier != ShedTier::kDegraded) return;
              std::vector<double> scores;
              for (const PairScore& r : outcome.results) {
                scores.push_back(r.score);
              }
              result.degraded_pairs.push_back(copy);
              result.degraded_scores.push_back(std::move(scores));
            });
        if (!id.ok()) {
          EXPECT_EQ(id.status().code(), StatusCode::kResourceExhausted);
          EXPECT_EQ(service.LastRetryAfterMs(), 25.0);
          ++result.rejected;
        }
      }
      service.PumpOne();
    }
    service.Drain();
    result.transitions = service.ShedTransitions();
    EXPECT_EQ(service.TierCount(ShedTier::kReject), result.rejected);

    // Bit-identity: re-score every degraded request directly through the
    // fallback model.
    std::shared_ptr<const matchers::TrainedModel> fallback =
        service.FallbackModel();
    for (size_t i = 0; i < result.degraded_pairs.size(); ++i) {
      std::vector<double> direct(result.degraded_pairs[i].size());
      std::vector<uint8_t> decisions(result.degraded_pairs[i].size());
      EXPECT_TRUE(fallback
                      ->ScoreBatch(context, result.degraded_pairs[i], direct,
                                   decisions)
                      .ok());
      EXPECT_EQ(result.degraded_scores[i], direct) << "request " << i;
    }
    return result;
  };

  StormResult one = storm_at(1);
  StormResult two = storm_at(2);
  StormResult seven = storm_at(7);
  SetParallelThreads(0);

  // The overload actually exercised the ladder...
  EXPECT_GE(one.transitions, 1u);
  EXPECT_GT(one.degraded_pairs.size(), 0u);
  EXPECT_GT(one.rejected, 0u);
  // ...and identically at every thread count: the open loop is
  // deterministic, so tiering and scores must match bit-for-bit.
  EXPECT_EQ(one.degraded_pairs.size(), two.degraded_pairs.size());
  EXPECT_EQ(one.degraded_pairs.size(), seven.degraded_pairs.size());
  EXPECT_EQ(one.degraded_scores, two.degraded_scores);
  EXPECT_EQ(one.degraded_scores, seven.degraded_scores);
  EXPECT_EQ(one.rejected, two.rejected);
  EXPECT_EQ(one.rejected, seven.rejected);
}

// With shedding disabled (the default), the service never leaves the full
// tier no matter the backlog — the pre-shedding behaviour is preserved.
TEST_F(ShedServiceTest, SheddingIsOptIn) {
  matchers::MatchingContext context(task_);
  MatchServiceOptions options;
  options.queue_capacity_pairs = 16;
  options.max_batch_pairs = 8;
  MatchService service(&context, options);
  ASSERT_TRUE(service.SwapModel(Train(context, "Magellan-DT")).ok());
  ASSERT_TRUE(service.SetFallbackModel(Train(context, "SA-ESDE")).ok());

  data::LabeledPair pair = task_->test().front();
  for (int i = 0; i < 16; ++i) {
    auto id = service.Submit({pair}, [](const RequestOutcome& outcome) {
      ASSERT_TRUE(outcome.status.ok());
      EXPECT_EQ(outcome.tier, ShedTier::kFull);
    });
    ASSERT_TRUE(id.ok()) << id.status();
  }
  service.Drain();
  EXPECT_EQ(service.CurrentTier(), ShedTier::kFull);
  EXPECT_EQ(service.ShedTransitions(), 0u);
  EXPECT_EQ(service.TierCount(ShedTier::kDegraded), 0u);
}

}  // namespace
}  // namespace rlbench::serve
