// Fault drills for the serving subsystem: under a serve/* failpoint storm
// every request is answered exactly once (scored or errored), the service
// drains clean, and disarming faults restores full health. Snapshot
// decode/load failpoints degrade a single load, never the process.
#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "fault/failpoint.h"
#include "matchers/context.h"
#include "matchers/registry.h"
#include "serve/model_repository.h"
#include "serve/service.h"
#include "serve/snapshot.h"

namespace rlbench::serve {
namespace {

class ServeFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    task_ = new data::MatchingTask(datagen::BuildExistingBenchmark(
        *datagen::FindExistingBenchmark("Ds7"), 0.5));
    context_ = new matchers::MatchingContext(task_);
    context_->left().Thaw();
    context_->right().Thaw();
    auto trained = matchers::TrainServableMatcher("Magellan-DT", *context_);
    ASSERT_TRUE(trained.ok());
    model_ = std::shared_ptr<const matchers::TrainedModel>(std::move(*trained));
  }
  static void TearDownTestSuite() {
    model_.reset();
    delete context_;
    delete task_;
    context_ = nullptr;
    task_ = nullptr;
  }
  void TearDown() override { fault::Clear(); }

  static data::MatchingTask* task_;
  static matchers::MatchingContext* context_;
  static std::shared_ptr<const matchers::TrainedModel> model_;
};

data::MatchingTask* ServeFaultTest::task_ = nullptr;
matchers::MatchingContext* ServeFaultTest::context_ = nullptr;
std::shared_ptr<const matchers::TrainedModel> ServeFaultTest::model_;

// Storm every serve/* failpoint at once, across seeds: requests may be
// rejected at admission, expired, or error out per-request — but each
// submitted callback fires exactly once, nothing blocks, nothing crashes,
// and the drain leaves an empty queue.
TEST_F(ServeFaultTest, RequestStormDegradesPerRequestAndDrainsClean) {
  for (uint64_t seed : {3u, 7u, 23u}) {
    SCOPED_TRACE(seed);
    ASSERT_TRUE(fault::SetSpec("seed=" + std::to_string(seed) +
                               ";serve/*=any:0.3")
                    .ok());
    MatchServiceOptions options;
    options.queue_capacity_pairs = 32;
    options.max_batch_pairs = 8;
    MatchService service(context_, options);
    ASSERT_TRUE(service.SwapModel(model_).ok());

    size_t admitted = 0;
    size_t answered_ok = 0;
    size_t answered_error = 0;
    size_t rejected = 0;
    const auto& test = task_->test();
    for (size_t i = 0; i < 120; ++i) {
      std::vector<data::LabeledPair> pairs(3, test[i % test.size()]);
      auto id = service.Submit(
          std::move(pairs),
          [&answered_ok, &answered_error](const RequestOutcome& outcome) {
            if (outcome.status.ok()) {
              ASSERT_EQ(outcome.results.size(), 3u);
              ++answered_ok;
            } else {
              // Per-request degradation only: injected faults surface as
              // Internal or DeadlineExceeded, never anything fatal.
              EXPECT_TRUE(outcome.status.code() == StatusCode::kInternal ||
                          outcome.status.code() ==
                              StatusCode::kDeadlineExceeded)
                  << outcome.status;
              ++answered_error;
            }
          });
      if (id.ok()) {
        ++admitted;
      } else {
        EXPECT_EQ(id.status().code(), StatusCode::kResourceExhausted)
            << id.status();
        ++rejected;
      }
      if (i % 5 == 4) service.PumpOne();
    }
    service.Drain();
    EXPECT_EQ(service.QueueDepth(), 0u);
    EXPECT_EQ(service.QueuedPairs(), 0u);
    // Exactly-once accounting: every admitted request was answered.
    EXPECT_EQ(answered_ok + answered_error, admitted);
    EXPECT_GT(answered_error + rejected, 0u) << "storm injected nothing";

    // Disarm: the same service returns to full health immediately.
    fault::Clear();
    Status healthy;
    ASSERT_TRUE(service
                    .Submit({test.front()},
                            [&healthy](const RequestOutcome& outcome) {
                              healthy = outcome.status;
                            })
                    .ok());
    service.Drain();
    EXPECT_TRUE(healthy.ok()) << healthy;
  }
}

TEST_F(ServeFaultTest, SnapshotLoadFaultsDegradeOneLoadNotTheRepository) {
  std::string root = ::testing::TempDir() + "/rlbench_fault_repo_" +
                     std::to_string(::getpid());
  ModelRepository repository(root);
  SnapshotMetadata metadata;
  metadata.matcher_name = model_->matcher_name();
  metadata.dataset_id = task_->name();
  metadata.num_attrs = model_->num_attrs();
  ASSERT_TRUE(repository.Publish(metadata, *model_).ok());

  ASSERT_TRUE(fault::SetSpec("seed=5;serve/snapshot/load=any:1").ok());
  auto blocked = repository.LoadCurrent(model_->matcher_name());
  EXPECT_EQ(blocked.status().code(), StatusCode::kIOError);
  EXPECT_NE(blocked.status().message().find("injected"), std::string::npos);

  ASSERT_TRUE(fault::SetSpec("seed=5;serve/snapshot/decode=any:1").ok());
  auto undecodable = repository.LoadCurrent(model_->matcher_name());
  EXPECT_EQ(undecodable.status().code(), StatusCode::kIOError);

  fault::Clear();
  auto healthy = repository.LoadCurrent(model_->matcher_name());
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  EXPECT_EQ(healthy->metadata.version, 1u);
}

TEST_F(ServeFaultTest, QueueFullFaultForcesResourceExhausted) {
  ASSERT_TRUE(fault::SetSpec("seed=2;serve/queue/full=any:1").ok());
  MatchService service(context_);
  ASSERT_TRUE(service.SwapModel(model_).ok());
  auto id = service.Submit({task_->test().front()},
                           [](const RequestOutcome&) { FAIL(); });
  EXPECT_EQ(id.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.QueueDepth(), 0u);  // never enqueued
}

}  // namespace
}  // namespace rlbench::serve
