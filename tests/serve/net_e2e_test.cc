// End-to-end loopback serving: a forked child process runs MatchServer,
// the parent drives it through MatchClient — round-trips, pipelining,
// per-request errors over the wire, and a graceful drain on shutdown.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "matchers/context.h"
#include "matchers/registry.h"
#include "serve/client.h"
#include "serve/server.h"

namespace rlbench::serve {
namespace {

// Fork a child that trains Magellan-DT on Ds7 and serves it; the bound
// port comes back over a pipe. Returns the child pid.
pid_t SpawnServer(uint16_t* port) {
  int fds[2];
  if (pipe(fds) != 0) return -1;
  pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return -1;
  }
  if (pid == 0) {
    // Child: build, train, serve, _exit (no gtest teardown in the child).
    close(fds[0]);
    auto task = datagen::BuildExistingBenchmark(
        *datagen::FindExistingBenchmark("Ds7"), 0.5);
    matchers::MatchingContext context(&task);
    MatchServer server(&context, MatchServerOptions{});
    auto model = matchers::TrainServableMatcher("Magellan-DT", context);
    if (!model.ok() ||
        !server.service()
             .SwapModel(std::shared_ptr<const matchers::TrainedModel>(
                 std::move(*model)))
             .ok() ||
        !server.Start().ok()) {
      close(fds[1]);
      _exit(2);
    }
    SnapshotMetadata metadata;
    metadata.matcher_name = "Magellan-DT";
    metadata.dataset_id = task.name();
    metadata.version = 1;
    metadata.num_attrs = task.left().schema().num_attributes();
    server.SetServedModel(metadata);
    std::string note = std::to_string(server.port()) + "\n";
    if (write(fds[1], note.data(), note.size()) !=
        static_cast<ssize_t>(note.size())) {
      _exit(2);
    }
    close(fds[1]);
    Status served = server.Serve();
    _exit(served.ok() ? 0 : 3);
  }
  // Parent: read the port line.
  close(fds[1]);
  std::string line;
  char c;
  while (read(fds[0], &c, 1) == 1 && c != '\n') line.push_back(c);
  close(fds[0]);
  if (line.empty()) return -1;
  *port = static_cast<uint16_t>(std::stoi(line));
  return pid;
}

TEST(NetE2eTest, FullClientServerSessionOverLoopback) {
  uint16_t port = 0;
  pid_t server = SpawnServer(&port);
  ASSERT_GT(server, 0);
  ASSERT_GT(port, 0);

  auto client = MatchClient::Connect(port);
  ASSERT_TRUE(client.ok()) << client.status();

  // Liveness + identity.
  auto ping = client->Ping();
  ASSERT_TRUE(ping.ok()) << ping.status();
  EXPECT_EQ(ping->GetString("dataset"), "Ds7");
  EXPECT_EQ(ping->GetString("matcher"), "Magellan-DT");

  // Single pair, then the same pair inside a batch: identical bits across
  // the wire (scores travel as %.17g, which round-trips doubles exactly).
  auto single = client->MatchPair(0, 0);
  ASSERT_TRUE(single.ok()) << single.status();
  auto batch = client->MatchBatch({{0, 0}, {1, 1}, {2, 2}});
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), 3u);
  EXPECT_EQ((*batch)[0].score, single->score);
  EXPECT_EQ((*batch)[0].decision, single->decision);

  // Pipelining: many requests written before any response is read; the
  // server coalesces them and answers in request order.
  const int kPipelined = 9;
  for (int i = 0; i < kPipelined; ++i) {
    ASSERT_TRUE(client
                    ->SendRequest(MatchClient::MatchBatchRequest(
                        {{static_cast<uint32_t>(i), 0u}}))
                    .ok());
  }
  std::vector<double> pipelined;
  for (int i = 0; i < kPipelined; ++i) {
    auto response = client->RecvResponse();
    ASSERT_TRUE(response.ok()) << response.status();
    pipelined.push_back(response->Find("scores")->AsArray()[0].AsNumber());
  }
  for (int i = 0; i < kPipelined; ++i) {
    auto direct = client->MatchPair(static_cast<uint32_t>(i), 0);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(direct->score, pipelined[i]) << i;  // order preserved
  }

  // Per-request errors cross the wire as typed Status codes.
  auto out_of_range = client->MatchPair(4000000000u, 0);
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kInvalidArgument);
  auto no_repo = client->Reload("Magellan-DT");
  EXPECT_EQ(no_repo.status().code(), StatusCode::kFailedPrecondition);

  // Served evaluation of the full test split.
  auto assess = client->Assess();
  ASSERT_TRUE(assess.ok()) << assess.status();
  EXPECT_GT(assess->GetNumber("pairs"), 0.0);
  EXPECT_GE(assess->GetNumber("f1"), 0.0);

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->GetNumber("queue_depth"), 0.0);
  EXPECT_GT(stats->GetNumber("requests_served"), 0.0);

  // Graceful shutdown: acknowledged, then the process exits 0.
  auto shutdown = client->Shutdown();
  ASSERT_TRUE(shutdown.ok()) << shutdown.status();
  int wstatus = 0;
  ASSERT_EQ(waitpid(server, &wstatus, 0), server);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
}

TEST(NetE2eTest, MalformedTrafficGetsErrorResponsesNotCrashes) {
  uint16_t port = 0;
  pid_t server = SpawnServer(&port);
  ASSERT_GT(server, 0);

  // The server handles one connection at a time, so each client below is
  // scoped to close its connection before the next one is served.
  {
    auto client = MatchClient::Connect(port);
    ASSERT_TRUE(client.ok());
    // Unparseable JSON and unknown ops come back as InvalidArgument.
    auto bad_json = client->Call("this is not json");
    EXPECT_EQ(bad_json.status().code(), StatusCode::kInvalidArgument);
    auto bad_op = client->Call("{\"op\":\"explode\"}");
    EXPECT_EQ(bad_op.status().code(), StatusCode::kInvalidArgument);
    auto bad_pairs = client->Call("{\"op\":\"match_batch\",\"pairs\":[[1]]}");
    EXPECT_EQ(bad_pairs.status().code(), StatusCode::kInvalidArgument);
    // The connection (and server) survive all of it.
    EXPECT_TRUE(client->Ping().ok());
  }

  // A client that vanishes mid-session doesn't take the server down.
  {
    auto doomed = MatchClient::Connect(port);
    ASSERT_TRUE(doomed.ok());
    ASSERT_TRUE(doomed->SendRequest("{\"op\":\"ping\"}").ok());
  }  // dropped without reading the response

  auto survivor = MatchClient::Connect(port);
  ASSERT_TRUE(survivor.ok());
  ASSERT_TRUE(survivor->Ping().ok());
  ASSERT_TRUE(survivor->Shutdown().ok());
  int wstatus = 0;
  ASSERT_EQ(waitpid(server, &wstatus, 0), server);
  EXPECT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0);
}

}  // namespace
}  // namespace rlbench::serve
