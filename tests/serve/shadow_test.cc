// Shadow/canary promotion: deterministic traffic sampling, the
// agreement/latency/fault verdict ladder, and — through MatchService —
// the promotion hot-swap and the ISSUE's core safety property: a seeded
// fault storm during a shadow window triggers rollback, never publishes a
// divergent snapshot, and leaves CURRENT serving bit-identical scores.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "fault/failpoint.h"
#include "matchers/context.h"
#include "matchers/registry.h"
#include "serve/service.h"
#include "serve/shadow.h"

namespace rlbench::serve {
namespace {

class ShadowTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    task_ = new data::MatchingTask(datagen::BuildExistingBenchmark(
        *datagen::FindExistingBenchmark("Ds7"), 0.5));
    context_ = new matchers::MatchingContext(task_);
    model_ = Train("SA-ESDE");
  }
  static void TearDownTestSuite() {
    model_.reset();
    delete context_;
    delete task_;
    context_ = nullptr;
    task_ = nullptr;
  }
  void TearDown() override { fault::Clear(); }

  static std::shared_ptr<const matchers::TrainedModel> Train(
      const std::string& name) {
    context_->left().Thaw();
    context_->right().Thaw();
    auto trained = matchers::TrainServableMatcher(name, *context_);
    EXPECT_TRUE(trained.ok()) << trained.status();
    return std::shared_ptr<const matchers::TrainedModel>(std::move(*trained));
  }

  static SnapshotMetadata Meta(const std::string& name) {
    SnapshotMetadata metadata;
    metadata.matcher_name = name;
    metadata.dataset_id = task_->name();
    metadata.version = 2;
    metadata.num_attrs = task_->left().schema().num_attributes();
    return metadata;
  }

  /// The candidate's own scores/decisions for `pairs`, computed directly.
  static void DirectScore(const matchers::TrainedModel& model,
                          const std::vector<data::LabeledPair>& pairs,
                          std::vector<double>* scores,
                          std::vector<uint8_t>* decisions) {
    scores->assign(pairs.size(), 0.0);
    decisions->assign(pairs.size(), 0);
    ASSERT_TRUE(model.ScoreBatch(*context_, pairs, *scores, *decisions).ok());
  }

  static data::MatchingTask* task_;
  static matchers::MatchingContext* context_;
  static std::shared_ptr<const matchers::TrainedModel> model_;
};

data::MatchingTask* ShadowTest::task_ = nullptr;
matchers::MatchingContext* ShadowTest::context_ = nullptr;
std::shared_ptr<const matchers::TrainedModel> ShadowTest::model_;

TEST_F(ShadowTest, SamplingIsAPureFunctionOfSeedAndPair) {
  ShadowOptions options;
  options.sample_fraction = 0.5;
  ShadowEvaluator evaluator(model_, Meta("SA-ESDE"), options);
  ShadowEvaluator twin(model_, Meta("SA-ESDE"), options);
  ShadowOptions reseeded = options;
  reseeded.seed = 0xfeed;
  ShadowEvaluator other(model_, Meta("SA-ESDE"), reseeded);

  size_t sampled = 0;
  size_t seed_disagreements = 0;
  for (const data::LabeledPair& pair : task_->test()) {
    bool first = evaluator.ShouldSample(pair);
    // Repeatable, and identical across evaluators with the same seed.
    EXPECT_EQ(first, evaluator.ShouldSample(pair));
    EXPECT_EQ(first, twin.ShouldSample(pair));
    if (first != other.ShouldSample(pair)) ++seed_disagreements;
    if (first) ++sampled;
  }
  // Roughly half the split is sampled, and the seed actually matters.
  EXPECT_GT(sampled, task_->test().size() / 4);
  EXPECT_LT(sampled, task_->test().size() * 3 / 4);
  EXPECT_GT(seed_disagreements, 0u);

  ShadowOptions all = options;
  all.sample_fraction = 1.0;
  ShadowEvaluator everything(model_, Meta("SA-ESDE"), all);
  for (const data::LabeledPair& pair : task_->test()) {
    EXPECT_TRUE(everything.ShouldSample(pair));
  }
}

TEST_F(ShadowTest, VerdictLadderPromotesOnAgreementAndRollsBackOnDivergence) {
  std::vector<data::LabeledPair> pairs(task_->test().begin(),
                                       task_->test().begin() + 8);
  std::vector<double> scores;
  std::vector<uint8_t> decisions;
  DirectScore(*model_, pairs, &scores, &decisions);

  ShadowOptions options;
  options.sample_fraction = 1.0;
  options.min_samples = 8;
  options.target_samples = 16;
  options.min_agreement = 0.98;
  options.max_latency_ratio = 0.0;

  // Candidate shadow-scoring its own primary decisions: perfect agreement,
  // pending until target_samples, then promote.
  ShadowEvaluator agreeing(model_, Meta("SA-ESDE"), options);
  EXPECT_EQ(agreeing.RecordBatch(*context_, pairs, decisions, 1.0),
            ShadowEvaluator::Verdict::kPending);
  EXPECT_EQ(agreeing.RecordBatch(*context_, pairs, decisions, 1.0),
            ShadowEvaluator::Verdict::kPromote);
  EXPECT_EQ(agreeing.stats().sampled_pairs, 16u);
  EXPECT_EQ(agreeing.stats().Agreement(), 1.0);

  // Flipping every primary decision fabricates total divergence: once
  // min_samples are in, the verdict is rollback.
  std::vector<uint8_t> flipped(decisions);
  for (uint8_t& d : flipped) d = d == 0 ? 1 : 0;
  ShadowEvaluator diverging(model_, Meta("SA-ESDE"), options);
  EXPECT_EQ(diverging.RecordBatch(*context_, pairs, flipped, 1.0),
            ShadowEvaluator::Verdict::kRollback);
  EXPECT_EQ(diverging.stats().Agreement(), 0.0);
}

TEST_F(ShadowTest, AnyShadowFaultIsAnImmediateRollbackVerdict) {
  ASSERT_TRUE(fault::SetSpec("seed=9;serve/shadow/score=any:1").ok());
  std::vector<data::LabeledPair> pairs(task_->test().begin(),
                                       task_->test().begin() + 4);
  std::vector<double> scores;
  std::vector<uint8_t> decisions;
  fault::Clear();
  DirectScore(*model_, pairs, &scores, &decisions);
  ASSERT_TRUE(fault::SetSpec("seed=9;serve/shadow/score=any:1").ok());

  ShadowOptions options;
  options.sample_fraction = 1.0;
  ShadowEvaluator evaluator(model_, Meta("SA-ESDE"), options);
  EXPECT_EQ(evaluator.RecordBatch(*context_, pairs, decisions, 1.0),
            ShadowEvaluator::Verdict::kRollback);
  EXPECT_GT(evaluator.stats().faults, 0u);
}

TEST_F(ShadowTest, ServicePromotesPassingCandidateViaHotSwap) {
  matchers::MatchingContext context(task_);
  MatchService service(&context);
  context.left().Thaw();
  context.right().Thaw();
  auto primary = matchers::TrainServableMatcher("Magellan-DT", context);
  ASSERT_TRUE(primary.ok());
  ASSERT_TRUE(service
                  .SwapModel(std::shared_ptr<const matchers::TrainedModel>(
                      std::move(*primary)))
                  .ok());
  context.left().Thaw();
  context.right().Thaw();
  auto trained = matchers::TrainServableMatcher("SA-ESDE", context);
  ASSERT_TRUE(trained.ok());
  std::shared_ptr<const matchers::TrainedModel> candidate(
      std::move(*trained));

  // Guard rails around the window itself.
  EXPECT_FALSE(service.CancelShadow());
  EXPECT_FALSE(service.StartShadow(nullptr, Meta("SA-ESDE")).ok());

  ShadowOptions options;
  options.sample_fraction = 1.0;
  options.min_samples = 1;
  options.target_samples = 8;
  options.min_agreement = 0.0;  // measurement gate off: promote on volume
  options.max_latency_ratio = 0.0;
  ASSERT_TRUE(service.StartShadow(candidate, Meta("SA-ESDE"), options).ok());
  EXPECT_NE(service.Shadow(), nullptr);
  // One window at a time.
  EXPECT_FALSE(service.StartShadow(candidate, Meta("SA-ESDE"), options).ok());

  const auto& test = task_->test();
  for (size_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(service
                    .Submit({test[i % test.size()]},
                            [](const RequestOutcome& outcome) {
                              ASSERT_TRUE(outcome.status.ok());
                            })
                    .ok());
    service.Drain();
  }

  ShadowEvent event = service.ConsumeShadowEvent();
  EXPECT_EQ(event.kind, ShadowEvent::Kind::kPromoted);
  EXPECT_EQ(event.metadata.matcher_name, "SA-ESDE");
  EXPECT_GE(event.stats.sampled_pairs, options.target_samples);
  EXPECT_EQ(service.Shadow(), nullptr);  // window closed by the promotion
  // Consuming is destructive: the event reads cleared afterwards.
  EXPECT_EQ(service.ConsumeShadowEvent().kind, ShadowEvent::Kind::kNone);

  // CURRENT is now the candidate: served scores equal the candidate's own.
  EXPECT_EQ(service.CurrentModel().get(), candidate.get());
  std::vector<data::LabeledPair> probe(test.begin(), test.begin() + 6);
  std::vector<double> direct;
  std::vector<uint8_t> decisions;
  direct.assign(probe.size(), 0.0);
  decisions.assign(probe.size(), 0);
  ASSERT_TRUE(candidate->ScoreBatch(context, probe, direct, decisions).ok());
  std::vector<double> served;
  ASSERT_TRUE(service
                  .Submit(probe,
                          [&served](const RequestOutcome& outcome) {
                            ASSERT_TRUE(outcome.status.ok());
                            for (const PairScore& r : outcome.results) {
                              served.push_back(r.score);
                            }
                          })
                  .ok());
  service.Drain();
  EXPECT_EQ(served, direct);
}

// The ISSUE's promotion-safety drill: a seeded fault storm on the shadow
// scoring path rolls the candidate back, no divergent snapshot is ever
// published, primary traffic is never errored by the shadow, and CURRENT
// keeps serving bit-identical scores afterwards.
TEST_F(ShadowTest, FaultStormRollsBackAndLeavesCurrentBitIdentical) {
  matchers::MatchingContext context(task_);
  MatchService service(&context);
  context.left().Thaw();
  context.right().Thaw();
  auto trained = matchers::TrainServableMatcher("Magellan-DT", context);
  ASSERT_TRUE(trained.ok());
  std::shared_ptr<const matchers::TrainedModel> primary(std::move(*trained));
  ASSERT_TRUE(service.SwapModel(primary).ok());
  context.left().Thaw();
  context.right().Thaw();
  auto candidate_trained = matchers::TrainServableMatcher("SB-ESDE", context);
  ASSERT_TRUE(candidate_trained.ok());
  std::shared_ptr<const matchers::TrainedModel> candidate(
      std::move(*candidate_trained));

  // Baseline scores before any shadow existed.
  std::vector<data::LabeledPair> probe(task_->test().begin(),
                                       task_->test().begin() + 10);
  auto serve_probe = [&service, &probe]() {
    std::vector<double> scores;
    auto id = service.Submit(probe, [&scores](const RequestOutcome& outcome) {
      ASSERT_TRUE(outcome.status.ok());
      for (const PairScore& r : outcome.results) {
        scores.push_back(r.score);
      }
    });
    EXPECT_TRUE(id.ok()) << id.status();
    service.Drain();
    return scores;
  };
  std::vector<double> baseline = serve_probe();
  ASSERT_EQ(baseline.size(), probe.size());

  for (uint64_t seed : {3u, 11u, 40u}) {
    SCOPED_TRACE(seed);
    ShadowOptions options;
    options.sample_fraction = 1.0;
    options.min_samples = 1;
    options.target_samples = 4;
    options.min_agreement = 0.0;
    options.max_latency_ratio = 0.0;
    ASSERT_TRUE(
        service.StartShadow(candidate, Meta("SB-ESDE"), options).ok());

    // Storm the shadow failpoint only: every sampled batch faults.
    ASSERT_TRUE(fault::SetSpec("seed=" + std::to_string(seed) +
                               ";serve/shadow/score=any:1")
                    .ok());
    size_t answered_ok = 0;
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(service
                      .Submit(probe,
                              [&answered_ok](const RequestOutcome& outcome) {
                                // Shadow faults never error live traffic.
                                ASSERT_TRUE(outcome.status.ok());
                                ++answered_ok;
                              })
                      .ok());
      service.Drain();
      if (service.Shadow() == nullptr) break;  // rolled back already
    }
    fault::Clear();
    EXPECT_GT(answered_ok, 0u);

    ShadowEvent event = service.ConsumeShadowEvent();
    EXPECT_EQ(event.kind, ShadowEvent::Kind::kRolledBack);
    EXPECT_GT(event.stats.faults, 0u);
    EXPECT_EQ(service.Shadow(), nullptr);
    // No divergent snapshot was published: CURRENT is still the original
    // primary, serving bit-identical scores.
    EXPECT_EQ(service.CurrentModel().get(), primary.get());
    EXPECT_EQ(serve_probe(), baseline);
  }
}

}  // namespace
}  // namespace rlbench::serve
