// Snapshot codec + model repository: every servable matcher family must
// round-trip through serialization bit-exactly, corruption must surface as
// load errors, and the repository's CURRENT pointer must behave like an
// atomic publish point.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/file_source.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "matchers/context.h"
#include "matchers/registry.h"
#include "serve/model_repository.h"
#include "serve/snapshot.h"
#include "serve/swap.h"

namespace rlbench::serve {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    task_ = new data::MatchingTask(datagen::BuildExistingBenchmark(
        *datagen::FindExistingBenchmark("Ds7"), 0.5));
    context_ = new matchers::MatchingContext(task_);
  }
  static void TearDownTestSuite() {
    delete context_;
    delete task_;
    context_ = nullptr;
    task_ = nullptr;
  }

  static SnapshotMetadata MetadataFor(const matchers::TrainedModel& model) {
    SnapshotMetadata metadata;
    metadata.matcher_name = model.matcher_name();
    metadata.dataset_id = task_->name();
    metadata.version = 1;
    metadata.num_attrs = model.num_attrs();
    return metadata;
  }

  // Score all test pairs through `model` (scores + decisions).
  static std::pair<std::vector<double>, std::vector<uint8_t>> ScoreAll(
      const matchers::TrainedModel& model) {
    model.PrepareContext(*context_);
    const auto& test = task_->test();
    std::vector<double> scores(test.size());
    std::vector<uint8_t> decisions(test.size());
    EXPECT_TRUE(model
                    .ScoreBatch(*context_, test, std::span<double>(scores),
                                std::span<uint8_t>(decisions))
                    .ok());
    return {std::move(scores), std::move(decisions)};
  }

  static data::MatchingTask* task_;
  static matchers::MatchingContext* context_;
};

data::MatchingTask* SnapshotTest::task_ = nullptr;
matchers::MatchingContext* SnapshotTest::context_ = nullptr;

TEST_F(SnapshotTest, EveryServableFamilyRoundTripsBitExactly) {
  for (const std::string& name : matchers::ServableMatcherNames()) {
    SCOPED_TRACE(name);
    context_->left().Thaw();
    context_->right().Thaw();
    auto trained = matchers::TrainServableMatcher(name, *context_);
    ASSERT_TRUE(trained.ok()) << trained.status();

    std::string bytes = EncodeSnapshot(MetadataFor(**trained), **trained);
    auto decoded = DecodeSnapshot(bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->metadata.matcher_name, name);
    EXPECT_EQ(decoded->metadata.dataset_id, task_->name());
    EXPECT_EQ(decoded->model->kind(), (*trained)->kind());

    auto [scores, decisions] = ScoreAll(**trained);
    context_->left().Thaw();
    context_->right().Thaw();
    auto [loaded_scores, loaded_decisions] = ScoreAll(*decoded->model);
    // Bit-exact: a snapshot served anywhere must score exactly like the
    // matcher that trained it.
    EXPECT_EQ(scores, loaded_scores);
    EXPECT_EQ(decisions, loaded_decisions);

    // And a second encode of the loaded model is byte-identical: the
    // serialized form is canonical.
    EXPECT_EQ(bytes, EncodeSnapshot(decoded->metadata, *decoded->model));
  }
}

TEST_F(SnapshotTest, CorruptionSurfacesAsLoadErrors) {
  context_->left().Thaw();
  context_->right().Thaw();
  auto trained = matchers::TrainServableMatcher("Magellan-DT", *context_);
  ASSERT_TRUE(trained.ok());
  std::string bytes = EncodeSnapshot(MetadataFor(**trained), **trained);

  // Bad magic.
  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  EXPECT_EQ(DecodeSnapshot(wrong_magic).status().code(), StatusCode::kIOError);

  // Every flipped payload byte must trip the checksum.
  for (size_t pos : {size_t{16}, bytes.size() / 2, bytes.size() - 1}) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    EXPECT_FALSE(DecodeSnapshot(corrupt).ok()) << "byte " << pos;
  }

  // Truncation at any point fails cleanly.
  for (size_t keep : {size_t{0}, size_t{7}, size_t{12}, bytes.size() - 1}) {
    EXPECT_FALSE(DecodeSnapshot(bytes.substr(0, keep)).ok()) << keep;
  }

  // Trailing garbage is rejected even with a valid prefix... (the checksum
  // covers only the declared body, so this guards the framing).
  EXPECT_FALSE(DecodeSnapshot(bytes + "zz").ok());
}

TEST_F(SnapshotTest, RepositoryVersionsAndCurrentPointer) {
  std::string root =
      ::testing::TempDir() + "/rlbench_repo_" + std::to_string(::getpid());
  ModelRepository repository(root);

  EXPECT_EQ(repository.CurrentVersion("Magellan-DT").status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(repository.ListVersions("Magellan-DT")->empty());

  context_->left().Thaw();
  context_->right().Thaw();
  auto trained = matchers::TrainServableMatcher("Magellan-DT", *context_);
  ASSERT_TRUE(trained.ok());
  SnapshotMetadata metadata = MetadataFor(**trained);

  auto v1 = repository.Publish(metadata, **trained);
  ASSERT_TRUE(v1.ok()) << v1.status();
  EXPECT_EQ(*v1, 1u);
  auto v2 = repository.Publish(metadata, **trained);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 2u);

  EXPECT_EQ(*repository.CurrentVersion("Magellan-DT"), 2u);
  EXPECT_EQ(*repository.ListVersions("Magellan-DT"),
            (std::vector<uint64_t>{1, 2}));

  auto current = repository.LoadCurrent("Magellan-DT");
  ASSERT_TRUE(current.ok()) << current.status();
  EXPECT_EQ(current->metadata.version, 2u);
  auto old = repository.Load("Magellan-DT", 1);
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(old->metadata.version, 1u);

  // Identity validation: a snapshot file moved under another matcher's
  // directory must be refused.
  auto bytes = data::FileSource::ReadAll(repository.SnapshotPath(
      "Magellan-DT", 1));
  ASSERT_TRUE(bytes.ok());
  std::error_code ec;
  std::filesystem::create_directories(root + "/Magellan-RF", ec);
  ASSERT_FALSE(ec);
  ASSERT_TRUE(data::FileSource::WriteAtomic(
                  root + "/Magellan-RF/v0001.snap", *bytes)
                  .ok());
  ASSERT_TRUE(
      data::FileSource::WriteAtomic(root + "/Magellan-RF/CURRENT", "1\n")
          .ok());
  EXPECT_EQ(repository.LoadCurrent("Magellan-RF").status().code(),
            StatusCode::kIOError);

  // A mangled CURRENT degrades into an error, never a bogus version.
  ASSERT_TRUE(
      data::FileSource::WriteAtomic(root + "/Magellan-DT/CURRENT", "2x\n")
          .ok());
  EXPECT_FALSE(repository.CurrentVersion("Magellan-DT").ok());

  // Unsafe matcher names cannot escape the repository root.
  EXPECT_EQ(repository.Load("../oops", 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(repository.Publish(SnapshotMetadata{"a/b", "d", 0, 1}, **trained)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, HotSwapSlotHandsBackPreviousModel) {
  context_->left().Thaw();
  context_->right().Thaw();
  auto first = matchers::TrainServableMatcher("Magellan-DT", *context_);
  context_->left().Thaw();
  context_->right().Thaw();
  auto second = matchers::TrainServableMatcher("SA-ESDE", *context_);
  ASSERT_TRUE(first.ok() && second.ok());

  HotSwappable<matchers::TrainedModel> slot;
  EXPECT_TRUE(slot.Empty());
  EXPECT_EQ(slot.Acquire(), nullptr);

  std::shared_ptr<const matchers::TrainedModel> one(std::move(*first));
  std::shared_ptr<const matchers::TrainedModel> two(std::move(*second));
  EXPECT_EQ(slot.Swap(one), nullptr);
  EXPECT_FALSE(slot.Empty());

  // A reader that acquired before the swap keeps its snapshot alive.
  auto held = slot.Acquire();
  EXPECT_EQ(held, one);
  EXPECT_EQ(slot.Swap(two), one);
  EXPECT_EQ(slot.Acquire(), two);
  EXPECT_EQ(held->matcher_name(), "Magellan-DT");
}

}  // namespace
}  // namespace rlbench::serve
