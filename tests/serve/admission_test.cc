// Per-tenant admission: the quota spec grammar, token-bucket refill
// arithmetic under injected time, wildcard shaping, and — through
// MatchService — quota rejections with Retry-After hints plus fair
// round-robin batching across tenant queues.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "matchers/context.h"
#include "matchers/registry.h"
#include "serve/admission.h"
#include "serve/service.h"

namespace rlbench::serve {
namespace {

TEST(AdmissionTest, ParseAcceptsTheDocumentedGrammar) {
  auto parsed = AdmissionController::Parse("alpha=200:50;beta=20:5;*=50:10");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_FALSE(parsed->Unmetered());
  const TenantQuota* alpha = parsed->QuotaFor("alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->rate_per_s, 200.0);
  EXPECT_EQ(alpha->burst, 50.0);
  // Unlisted tenants (including the anonymous "") take the '*' shape.
  const TenantQuota* anon = parsed->QuotaFor("");
  ASSERT_NE(anon, nullptr);
  EXPECT_EQ(anon->rate_per_s, 50.0);

  auto empty = AdmissionController::Parse("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->Unmetered());
}

TEST(AdmissionTest, ParseRejectsMalformedSpecs) {
  const char* bad[] = {
      "alpha",            // no '='
      "alpha=5",          // no ':'
      "=5:1",             // empty tenant
      "alpha=0:5",        // rate must be positive
      "alpha=-3:5",       // negative rate
      "alpha=5:0.5",      // burst below one token
      "alpha=x:y",        // non-numeric
      "alpha=1:2;alpha=3:4",  // duplicate tenant
  };
  for (const char* spec : bad) {
    SCOPED_TRACE(spec);
    EXPECT_EQ(AdmissionController::Parse(spec).status().code(),
              StatusCode::kInvalidArgument);
  }
  // Trailing separators are tolerated, not errors.
  EXPECT_TRUE(AdmissionController::Parse("alpha=1:2;;").ok());
}

TEST(AdmissionTest, BurstThenSteadyRefillUnderInjectedTime) {
  auto parsed = AdmissionController::Parse("t=10:2");
  ASSERT_TRUE(parsed.ok());
  AdmissionController admission = std::move(*parsed);

  // Bucket starts full: the burst is admitted, the next request is not.
  EXPECT_TRUE(admission.Admit("t", 0.0));
  EXPECT_TRUE(admission.Admit("t", 0.0));
  EXPECT_FALSE(admission.Admit("t", 0.0));
  // At 10 tokens/s an empty bucket refills one token in 100 ms.
  double hint = admission.RetryAfterMs("t", 0.0);
  EXPECT_GT(hint, 0.0);
  EXPECT_LE(hint, 100.0);

  // 100 ms later exactly one token is back.
  EXPECT_TRUE(admission.Admit("t", 100.0));
  EXPECT_FALSE(admission.Admit("t", 100.0));

  // A long quiet period refills only to the burst cap, never beyond.
  EXPECT_TRUE(admission.Admit("t", 60000.0));
  EXPECT_TRUE(admission.Admit("t", 60000.0));
  EXPECT_FALSE(admission.Admit("t", 60000.0));
}

TEST(AdmissionTest, WildcardGivesEachUnlistedTenantItsOwnBucket) {
  auto parsed = AdmissionController::Parse("*=10:1");
  ASSERT_TRUE(parsed.ok());
  AdmissionController admission = std::move(*parsed);
  // One noisy unlisted tenant cannot drain another's bucket.
  EXPECT_TRUE(admission.Admit("noisy", 0.0));
  EXPECT_FALSE(admission.Admit("noisy", 0.0));
  EXPECT_TRUE(admission.Admit("quiet", 0.0));
}

TEST(AdmissionTest, TenantsWithoutQuotaAreUnmetered) {
  auto parsed = AdmissionController::Parse("alpha=10:1");
  ASSERT_TRUE(parsed.ok());
  AdmissionController admission = std::move(*parsed);
  EXPECT_EQ(admission.QuotaFor("beta"), nullptr);
  EXPECT_EQ(admission.RetryAfterMs("beta", 0.0), 0.0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(admission.Admit("beta", 0.0));
  }
}

class AdmissionServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    task_ = new data::MatchingTask(datagen::BuildExistingBenchmark(
        *datagen::FindExistingBenchmark("Ds7"), 0.5));
  }
  static void TearDownTestSuite() {
    delete task_;
    task_ = nullptr;
  }

  static std::shared_ptr<const matchers::TrainedModel> Train(
      const matchers::MatchingContext& context, const std::string& name) {
    context.left().Thaw();
    context.right().Thaw();
    auto trained = matchers::TrainServableMatcher(name, context);
    EXPECT_TRUE(trained.ok()) << trained.status();
    return std::shared_ptr<const matchers::TrainedModel>(std::move(*trained));
  }

  static data::MatchingTask* task_;
};

data::MatchingTask* AdmissionServiceTest::task_ = nullptr;

TEST_F(AdmissionServiceTest, OverQuotaTenantRejectedWithRetryAfterHint) {
  matchers::MatchingContext context(task_);
  MatchService service(&context);
  ASSERT_TRUE(service.SwapModel(Train(context, "Magellan-DT")).ok());
  // A tiny burst and a slow refill: the third request in the same
  // instant must be over quota.
  ASSERT_TRUE(service.SetQuotas("metered=1:2").ok());
  EXPECT_EQ(service.SetQuotas("broken").code(), StatusCode::kInvalidArgument);

  data::LabeledPair pair = task_->test().front();
  SubmitOptions metered;
  metered.tenant = "metered";
  int answered = 0;
  auto count = [&answered](const RequestOutcome&) { ++answered; };
  ASSERT_TRUE(service.SubmitRequest({pair}, metered, count).ok());
  ASSERT_TRUE(service.SubmitRequest({pair}, metered, count).ok());
  auto rejected = service.SubmitRequest({pair}, metered, count);
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(service.LastRetryAfterMs(), 0.0);

  // Unlisted tenants stay unmetered (no '*' entry in the spec).
  SubmitOptions other;
  other.tenant = "other";
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(service.SubmitRequest({pair}, other, count).ok());
  }
  service.Drain();
  EXPECT_EQ(answered, 10);
}

// The micro-batcher round-robins across tenant FIFOs: with two tenants
// queued, one flood cannot be answered wholly before the other tenant
// gets a turn.
TEST_F(AdmissionServiceTest, BatchingRoundRobinsAcrossTenantQueues) {
  matchers::MatchingContext context(task_);
  MatchServiceOptions options;
  options.max_batch_pairs = 4;
  MatchService service(&context, options);
  ASSERT_TRUE(service.SwapModel(Train(context, "Magellan-DT")).ok());

  data::LabeledPair pair = task_->test().front();
  std::vector<std::string> answered_tenants;
  auto submit = [&](const std::string& tenant) {
    SubmitOptions submit_options;
    submit_options.tenant = tenant;
    ASSERT_TRUE(service
                    .SubmitRequest({pair}, submit_options,
                                   [&answered_tenants,
                                    tenant](const RequestOutcome& outcome) {
                                     ASSERT_TRUE(outcome.status.ok());
                                     answered_tenants.push_back(tenant);
                                   })
                    .ok());
  };
  // Flood tenant A, then one request from tenant B.
  for (int i = 0; i < 6; ++i) submit("flood");
  submit("late");
  // The first 4-pair micro-batch must interleave both tenants rather than
  // serving the flood FIFO-first.
  EXPECT_EQ(service.PumpOne(), 4u);
  ASSERT_EQ(answered_tenants.size(), 4u);
  EXPECT_NE(std::find(answered_tenants.begin(), answered_tenants.end(),
                      "late"),
            answered_tenants.end())
      << "the late tenant was starved by the flood";
  service.Drain();
  EXPECT_EQ(answered_tenants.size(), 7u);
}

}  // namespace
}  // namespace rlbench::serve
