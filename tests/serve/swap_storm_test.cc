// Hot-swap storm: repeated cross-family swaps (each one a full feature-
// cache re-warm) while a seeded fault storm batters the serve path. The
// storm may fail individual requests, but every request that succeeds
// must carry the exact score bits of the model installed at the time —
// at 1, 2 and 7 threads, with an identical fault schedule.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "fault/failpoint.h"
#include "matchers/context.h"
#include "matchers/registry.h"
#include "serve/service.h"

namespace rlbench::serve {
namespace {

constexpr size_t kStormPairs = 96;  // Ds7@0.5 test split size
constexpr size_t kChunk = 8;
constexpr int kRounds = 4;
constexpr double kRejected = -2.0;  // Submit refused (injected queue full)
constexpr double kFaulted = -3.0;   // scored batch hit an injected fault
constexpr char kStorm[] =
    "seed=11;serve/worker/fault=any:0.2;serve/queue/full=any:0.1";

class SwapStormTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    task_ = new data::MatchingTask(datagen::BuildExistingBenchmark(
        *datagen::FindExistingBenchmark("Ds7"), 0.5));
  }
  static void TearDownTestSuite() {
    delete task_;
    task_ = nullptr;
    fault::Clear();
  }

  static std::shared_ptr<const matchers::TrainedModel> Train(
      const matchers::MatchingContext& context, const std::string& name) {
    context.left().Thaw();
    context.right().Thaw();
    auto trained = matchers::TrainServableMatcher(name, context);
    EXPECT_TRUE(trained.ok()) << trained.status();
    return std::shared_ptr<const matchers::TrainedModel>(std::move(*trained));
  }

  /// Serve kStormPairs through the installed model, one kChunk-pair
  /// request per batch; failures land as sentinels, successes as scores.
  static std::vector<double> ServeSlice(MatchService* service) {
    std::vector<double> out;
    const auto& test = task_->test();
    for (size_t begin = 0; begin + kChunk <= kStormPairs; begin += kChunk) {
      std::vector<data::LabeledPair> request(test.begin() + begin,
                                             test.begin() + begin + kChunk);
      size_t before = out.size();
      auto id = service->Submit(
          std::move(request), [&out](const RequestOutcome& outcome) {
            for (size_t j = 0; j < kChunk; ++j) {
              out.push_back(outcome.status.ok() ? outcome.results[j].score
                                                : kFaulted);
            }
          });
      if (!id.ok()) {
        out.resize(before + kChunk, kRejected);
        continue;
      }
      service->Drain();
    }
    return out;
  }

  static data::MatchingTask* task_;
};

data::MatchingTask* SwapStormTest::task_ = nullptr;

TEST_F(SwapStormTest, StormScoresAreExactAndThreadInvariant) {
  ASSERT_LE(kStormPairs, task_->test().size());
  // Per-model baselines, served with no faults armed.
  fault::Clear();
  matchers::MatchingContext context(task_);
  MatchService baseline_service(&context);
  auto magellan = Train(context, "Magellan-RF");
  auto esde = Train(context, "SAS-ESDE");  // different cache families
  ASSERT_TRUE(baseline_service.SwapModel(magellan).ok());
  std::vector<double> baseline_a = ServeSlice(&baseline_service);
  ASSERT_TRUE(baseline_service.SwapModel(esde).ok());
  std::vector<double> baseline_b = ServeSlice(&baseline_service);
  ASSERT_EQ(baseline_a.size(), kStormPairs);
  for (size_t i = 0; i < kStormPairs; ++i) {
    ASSERT_GE(baseline_a[i], 0.0);  // fault-free baselines all succeed
    ASSERT_GE(baseline_b[i], 0.0);
  }

  auto storm_at = [&](size_t threads) {
    SetParallelThreads(threads);
    matchers::MatchingContext fresh(task_);
    MatchService service(&fresh);
    auto model_a = Train(fresh, "Magellan-RF");
    auto model_b = Train(fresh, "SAS-ESDE");
    // Arm after training: an identical storm schedule for every run.
    EXPECT_TRUE(fault::SetSpec(kStorm).ok());
    std::vector<double> collected;
    for (int round = 0; round < kRounds; ++round) {
      EXPECT_TRUE(service.SwapModel(model_a).ok());
      auto served_a = ServeSlice(&service);
      EXPECT_TRUE(service.SwapModel(model_b).ok());
      auto served_b = ServeSlice(&service);
      // Successful requests score the installed model's exact bits even
      // mid-storm; only injected failures may differ from the baseline.
      for (size_t i = 0; i < kStormPairs; ++i) {
        if (served_a[i] >= 0.0) {
          EXPECT_EQ(served_a[i], baseline_a[i]);
        }
        if (served_b[i] >= 0.0) {
          EXPECT_EQ(served_b[i], baseline_b[i]);
        }
      }
      collected.insert(collected.end(), served_a.begin(), served_a.end());
      collected.insert(collected.end(), served_b.begin(), served_b.end());
    }
    fault::Clear();
    return collected;
  };

  std::vector<double> one = storm_at(1);
  std::vector<double> two = storm_at(2);
  std::vector<double> seven = storm_at(7);
  SetParallelThreads(0);

  // The storm really did both things: some requests failed, most scored.
  size_t failures = 0;
  for (double score : one) failures += score < 0.0 ? 1 : 0;
  EXPECT_GT(failures, 0u);
  EXPECT_LT(failures, one.size() / 2);

  // Same fault schedule, same swaps, same bits — at any thread count.
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, seven);
}

}  // namespace
}  // namespace rlbench::serve
