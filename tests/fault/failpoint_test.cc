// Failpoint engine tests: spec parsing and its error surface, the
// disabled fast path, probability extremes, wildcard and first-match
// clause selection, the max= hit cap, and schedule determinism — the
// same spec must produce the same fault schedule on every run.
#include "fault/failpoint.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

namespace rlbench::fault {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Clear(); }
  void TearDown() override { Clear(); }
};

TEST_F(FailpointTest, DisabledByDefaultAndAfterClear) {
  EXPECT_FALSE(FaultsEnabled());
  EXPECT_EQ(ActiveSpec(), "");
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(RLBENCH_FAULT_POINT("test/any/point"));
  }
}

TEST_F(FailpointTest, EmptySpecDisables) {
  ASSERT_TRUE(SetSpec("seed=1;test/point=io:1").ok());
  EXPECT_TRUE(FaultsEnabled());
  ASSERT_TRUE(SetSpec("").ok());
  EXPECT_FALSE(FaultsEnabled());
  EXPECT_FALSE(RLBENCH_FAULT_POINT("test/point"));
}

TEST_F(FailpointTest, MalformedSpecsAreInvalidArgument) {
  const char* kBad[] = {
      "nonsense",                    // no '='
      "=io:1",                       // empty point
      "seed=abc",                    // non-numeric seed
      "seed=99999999999999999999",   // seed overflow
      "test/point=io",               // missing probability
      "test/point=weird:0.5",        // unknown kind
      "test/point=io:2",             // probability out of range
      "test/point=io:-0.1",          // probability out of range
      "test/point=io:x",             // non-numeric probability
      "test/point=io:0.5:max=x",     // bad cap
      "test/point=io:0.5:cap=3",     // not max=
      "test/point=io:0.5:max=1:y",   // too many parts
  };
  for (const char* spec : kBad) {
    Status status = SetSpec(spec);
    ASSERT_FALSE(status.ok()) << spec;
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << spec;
  }
}

TEST_F(FailpointTest, FailedSetSpecLeavesPreviousSpecArmed) {
  ASSERT_TRUE(SetSpec("seed=5;test/point=io:1").ok());
  ASSERT_FALSE(SetSpec("broken").ok());
  EXPECT_TRUE(FaultsEnabled());
  EXPECT_EQ(ActiveSpec(), "seed=5;test/point=io:1");
  EXPECT_TRUE(RLBENCH_FAULT_POINT("test/point"));
}

TEST_F(FailpointTest, ProbabilityZeroNeverHits) {
  ASSERT_TRUE(SetSpec("seed=7;test/point=io:0").ok());
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(RLBENCH_FAULT_POINT("test/point"));
  }
  auto stats = Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].evaluations, 200u);
  EXPECT_EQ(stats[0].hits, 0u);
}

TEST_F(FailpointTest, ProbabilityOneAlwaysHitsWithTheRequestedKind) {
  ASSERT_TRUE(SetSpec("seed=7;test/point=truncate:1").ok());
  for (int i = 0; i < 50; ++i) {
    auto hit = RLBENCH_FAULT_POINT("test/point");
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit.kind, FaultKind::kTruncate);
  }
}

TEST_F(FailpointTest, AnyKindDrawsEveryKind) {
  ASSERT_TRUE(SetSpec("seed=11;test/point=any:1").ok());
  std::set<FaultKind> seen;
  for (int i = 0; i < 200; ++i) {
    auto hit = RLBENCH_FAULT_POINT("test/point");
    ASSERT_TRUE(hit);
    ASSERT_NE(hit.kind, FaultKind::kNone);
    seen.insert(hit.kind);
  }
  // 200 seeded draws over 4 kinds: all of them must appear.
  EXPECT_EQ(seen.size(), 4u);
}

TEST_F(FailpointTest, WildcardMatchesPrefix) {
  ASSERT_TRUE(SetSpec("seed=3;test/*=io:1").ok());
  EXPECT_TRUE(RLBENCH_FAULT_POINT("test/alpha"));
  EXPECT_TRUE(RLBENCH_FAULT_POINT("test/beta/deep"));
  EXPECT_FALSE(RLBENCH_FAULT_POINT("other/point"));
}

TEST_F(FailpointTest, BareStarMatchesEverything) {
  ASSERT_TRUE(SetSpec("seed=3;*=alloc:1").ok());
  EXPECT_TRUE(RLBENCH_FAULT_POINT("anything"));
  EXPECT_TRUE(RLBENCH_FAULT_POINT("at/all"));
}

TEST_F(FailpointTest, FirstMatchingClauseWins) {
  ASSERT_TRUE(SetSpec("seed=3;test/alpha=io:1;test/*=alloc:1").ok());
  auto alpha = RLBENCH_FAULT_POINT("test/alpha");
  ASSERT_TRUE(alpha);
  EXPECT_EQ(alpha.kind, FaultKind::kIOError);
  auto beta = RLBENCH_FAULT_POINT("test/beta");
  ASSERT_TRUE(beta);
  EXPECT_EQ(beta.kind, FaultKind::kAlloc);
}

TEST_F(FailpointTest, MaxCapBoundsTotalHits) {
  ASSERT_TRUE(SetSpec("seed=13;test/point=io:1:max=3").ok());
  int hits = 0;
  for (int i = 0; i < 20; ++i) {
    if (RLBENCH_FAULT_POINT("test/point")) ++hits;
  }
  EXPECT_EQ(hits, 3);
  auto stats = Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].evaluations, 20u);
  EXPECT_EQ(stats[0].hits, 3u);
}

std::vector<std::pair<FaultKind, uint64_t>> DrawSchedule(
    const std::string& spec, int n) {
  EXPECT_TRUE(SetSpec(spec).ok());
  std::vector<std::pair<FaultKind, uint64_t>> schedule;
  for (int i = 0; i < n; ++i) {
    auto hit = RLBENCH_FAULT_POINT("test/point");
    schedule.emplace_back(hit.kind, hit.payload);
  }
  Clear();
  return schedule;
}

TEST_F(FailpointTest, SameSeedSameSchedule) {
  std::string spec = "seed=42;test/point=any:0.5";
  auto first = DrawSchedule(spec, 64);
  auto second = DrawSchedule(spec, 64);
  EXPECT_EQ(first, second);
  // A different seed shifts the schedule (2^-64 collision odds aside).
  auto other = DrawSchedule("seed=43;test/point=any:0.5", 64);
  EXPECT_NE(first, other);
}

TEST_F(FailpointTest, ClausesOwnIndependentStreams) {
  // Interleaving extra evaluations of one clause must not perturb the
  // other clause's schedule: each stream depends only on (seed, pattern,
  // per-clause evaluation index).
  ASSERT_TRUE(SetSpec("seed=9;test/a=any:0.5;test/b=any:0.5").ok());
  std::vector<std::pair<FaultKind, uint64_t>> plain;
  for (int i = 0; i < 32; ++i) {
    auto hit = RLBENCH_FAULT_POINT("test/b");
    plain.emplace_back(hit.kind, hit.payload);
  }
  Clear();
  ASSERT_TRUE(SetSpec("seed=9;test/a=any:0.5;test/b=any:0.5").ok());
  std::vector<std::pair<FaultKind, uint64_t>> interleaved;
  for (int i = 0; i < 32; ++i) {
    (void)RLBENCH_FAULT_POINT("test/a");
    (void)RLBENCH_FAULT_POINT("test/a");
    auto hit = RLBENCH_FAULT_POINT("test/b");
    interleaved.emplace_back(hit.kind, hit.payload);
  }
  EXPECT_EQ(plain, interleaved);
}

TEST_F(FailpointTest, KindNamesAreStable) {
  EXPECT_STREQ(FaultKindName(FaultKind::kNone), "none");
  EXPECT_STREQ(FaultKindName(FaultKind::kIOError), "io");
  EXPECT_STREQ(FaultKindName(FaultKind::kTruncate), "truncate");
  EXPECT_STREQ(FaultKindName(FaultKind::kCorrupt), "corrupt");
  EXPECT_STREQ(FaultKindName(FaultKind::kAlloc), "alloc");
}

}  // namespace
}  // namespace rlbench::fault
