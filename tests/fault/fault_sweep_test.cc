// Randomized fault sweep: arm storm specs over many seeds and drive the
// real ingestion / export / benchmark-building paths. The contract under
// test is narrow and absolute — every outcome is either success, a clean
// non-OK Status, or a quarantine entry. Never an abort, never UB (the
// suite runs under ASan/UBSan in scripts/check.sh).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/benchmark_builder.h"
#include "data/benchmark_io.h"
#include "data/csv.h"
#include "data/file_source.h"
#include "data/quarantine.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "fault/failpoint.h"

namespace rlbench {
namespace {

constexpr uint64_t kSweepSeeds[] = {1, 2, 3, 5, 8, 13, 21, 34, 55, 89};

class FaultSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Clear();
    dir_ = std::filesystem::temp_directory_path() / "rlbench_fault_sweep";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fault::Clear();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

// Every read fault kind, both modes, across all sweep seeds: import either
// succeeds or reports a clean Status; lenient mode additionally never fails
// on row-level damage alone.
TEST_F(FaultSweepTest, ImportSurvivesIOAndRowStorms) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds5"), 0.5);
  std::string exported = Path("exported");
  ASSERT_TRUE(data::ExportBenchmark(task, exported).ok());

  for (uint64_t seed : kSweepSeeds) {
    std::string spec = "seed=" + std::to_string(seed) +
                       ";data/file/read=any:0.4;data/csv/*=any:0.2";
    ASSERT_TRUE(fault::SetSpec(spec).ok());

    auto strict = data::ImportBenchmark(exported, "strict");
    if (!strict.ok()) {
      EXPECT_FALSE(strict.status().message().empty()) << "seed " << seed;
    }

    data::QuarantineReport quarantine;
    data::ImportOptions options;
    options.lenient = true;
    options.quarantine = &quarantine;
    auto lenient = data::ImportBenchmark(exported, "lenient", options);
    if (!lenient.ok()) {
      // Lenient only fails on file-level damage (injected IO / truncation /
      // corruption of whole files), never bare row damage.
      EXPECT_FALSE(lenient.status().message().empty()) << "seed " << seed;
    } else if (!quarantine.empty()) {
      for (const auto& entry : quarantine.entries()) {
        EXPECT_FALSE(entry.reason.empty());
        EXPECT_FALSE(entry.source.empty());
      }
    }
    fault::Clear();
  }
}

// Same storm, but hitting the write side: export must either succeed or
// return a clean Status, and a failed atomic write must never leave a
// torn target behind for the next reader.
TEST_F(FaultSweepTest, ExportSurvivesWriteStorms) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds5"), 0.5);
  for (uint64_t seed : kSweepSeeds) {
    std::string out = Path("out_" + std::to_string(seed));
    std::string spec = "seed=" + std::to_string(seed) +
                       ";data/file/tmp_write=any:0.3;data/file/rename=io:0.2";
    ASSERT_TRUE(fault::SetSpec(spec).ok());
    Status status = data::ExportBenchmark(task, out);
    fault::Clear();
    if (status.ok()) {
      // A clean export must import cleanly with no faults armed.
      auto loaded = data::ImportBenchmark(out);
      ASSERT_TRUE(loaded.ok()) << "seed " << seed << ": "
                               << loaded.status().ToString();
      EXPECT_EQ(loaded->left().size(), task.left().size());
    } else {
      EXPECT_FALSE(status.message().empty()) << "seed " << seed;
      // Whatever did land is whole-or-absent, per file: any present CSV
      // parses (atomic writes publish complete files only).
      for (const char* file :
           {"d1.csv", "d2.csv", "train.csv", "valid.csv", "test.csv"}) {
        std::string path = out + "/" + file;
        if (!std::filesystem::exists(path)) continue;
        auto read = data::FileSource::ReadAll(path);
        ASSERT_TRUE(read.ok());
        EXPECT_TRUE(data::ParseCsv(*read).ok()) << path;
      }
    }
  }
}

// The benchmark-construction failpoint: a hit surfaces as Internal or
// ResourceExhausted from BuildNewBenchmark, never a crash mid-pipeline.
TEST_F(FaultSweepTest, BuildBenchmarkFaultIsCleanStatus) {
  const auto* spec = datagen::FindSourceDataset("Dn3");
  ASSERT_NE(spec, nullptr);
  core::NewBenchmarkOptions options;
  options.scale = 0.05;
  for (uint64_t seed : kSweepSeeds) {
    ASSERT_TRUE(fault::SetSpec("seed=" + std::to_string(seed) +
                               ";core/build_benchmark=any:1:max=1")
                    .ok());
    auto built = core::BuildNewBenchmark(*spec, options);
    fault::Clear();
    ASSERT_FALSE(built.ok()) << "seed " << seed;
    EXPECT_TRUE(built.status().code() == StatusCode::kInternal ||
                built.status().code() == StatusCode::kResourceExhausted)
        << built.status().ToString();
    EXPECT_FALSE(built.status().message().empty());
  }
}

// Seeded random byte corruption of raw CSV text, no failpoints involved:
// the parser and the table reader must always return either parsed data or
// InvalidArgument, regardless of what the bytes mutate into.
TEST_F(FaultSweepTest, RandomByteCorruptionNeverCrashesTheParser) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds5"), 0.5);
  std::string exported = Path("exported");
  ASSERT_TRUE(data::ExportBenchmark(task, exported).ok());
  auto pristine = data::FileSource::ReadAll(exported + "/d1.csv");
  ASSERT_TRUE(pristine.ok());

  for (uint64_t seed : kSweepSeeds) {
    std::string text = *pristine;
    uint64_t state = seed;
    size_t mutations = 1 + seed % 32;
    for (size_t i = 0; i < mutations && !text.empty(); ++i) {
      state = SplitMix64(state);
      size_t pos = static_cast<size_t>(state % text.size());
      char byte = static_cast<char>(state >> 32);
      switch (state % 3) {
        case 0:
          text[pos] = byte;  // overwrite
          break;
        case 1:
          text.insert(text.begin() + static_cast<ptrdiff_t>(pos), byte);
          break;
        default:
          text.erase(text.begin() + static_cast<ptrdiff_t>(pos));
      }
    }

    auto rows = data::ParseCsv(text);
    if (!rows.ok()) {
      EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument)
          << "seed " << seed;
    }

    std::string mangled = Path("mangled.csv");
    ASSERT_TRUE(data::FileSource::WriteAll(mangled, text).ok());
    auto strict = data::ReadTableCsv(mangled, "mangled");
    if (!strict.ok()) {
      EXPECT_EQ(strict.status().code(), StatusCode::kInvalidArgument)
          << "seed " << seed;
    }
    data::QuarantineReport quarantine;
    data::CsvReadOptions lenient_options;
    lenient_options.lenient = true;
    lenient_options.quarantine = &quarantine;
    auto lenient = data::ReadTableCsv(mangled, "mangled", lenient_options);
    if (!lenient.ok()) {
      // Lenient still rejects file-level damage: unterminated quote,
      // empty document, broken header.
      EXPECT_EQ(lenient.status().code(), StatusCode::kInvalidArgument)
          << "seed " << seed;
    }
  }
}

// Determinism across a storm: the same seed must produce the identical
// fault schedule, hence identical import outcomes and identical clause
// accounting, run after run.
TEST_F(FaultSweepTest, StormScheduleIsReproducible) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds5"), 0.5);
  std::string exported = Path("exported");
  ASSERT_TRUE(data::ExportBenchmark(task, exported).ok());
  const std::string spec = "seed=17;data/file/read=any:0.5;data/csv/*=any:0.3";

  auto run_once = [&](std::string* outcome,
                      std::vector<uint64_t>* accounting) {
    ASSERT_TRUE(fault::SetSpec(spec).ok());
    auto loaded = data::ImportBenchmark(exported, "det");
    *outcome = loaded.ok() ? "ok" : loaded.status().ToString();
    for (const auto& stats : fault::Stats()) {
      accounting->push_back(stats.evaluations);
      accounting->push_back(stats.hits);
    }
    fault::Clear();
  };

  std::string first_outcome, second_outcome;
  std::vector<uint64_t> first_accounting, second_accounting;
  run_once(&first_outcome, &first_accounting);
  run_once(&second_outcome, &second_accounting);
  EXPECT_EQ(first_outcome, second_outcome);
  EXPECT_EQ(first_accounting, second_accounting);
}

}  // namespace
}  // namespace rlbench
