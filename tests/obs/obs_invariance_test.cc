// The observability contract, end to end: turning metrics and tracing ON
// must not change a single bit of what the measurement pipeline computes,
// at any thread count. Mirrors tests/core/thread_invariance_test.cc but
// sweeps the obs gates as well as the pool width — all comparisons are
// EXACT double equality, no tolerances.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "core/complexity.h"
#include "core/linearity.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "matchers/context.h"
#include "matchers/esde.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlbench::obs {
namespace {

constexpr const char* kTracePath = "obs_invariance_trace.json";

struct Snapshot {
  std::vector<std::pair<std::string, double>> complexity;
  core::LinearityResult linearity;
  std::vector<uint8_t> esde_predictions;
  double esde_threshold = 0.0;
};

Snapshot Measure(const data::MatchingTask& task, size_t threads,
                 bool obs_on) {
  if (obs_on) {
    Metrics::SetEnabled(true);
    SetTraceFile(kTracePath);
  } else {
    Metrics::SetEnabled(false);
    SetTraceFile("");
  }
  SetParallelThreads(threads);

  Snapshot snap;
  matchers::MatchingContext context(&task);
  core::ComplexityOptions options;
  options.max_points = 300;
  snap.complexity =
      core::ComputeComplexity(core::PairFeaturePoints(context), options)
          .Items();
  snap.linearity = core::ComputeLinearity(context);
  matchers::EsdeMatcher esde(matchers::EsdeVariant::kSchemaAgnostic);
  snap.esde_predictions = esde.Run(context);
  snap.esde_threshold = esde.best_threshold();

  SetParallelThreads(0);
  Metrics::SetEnabled(false);
  SetTraceFile("");
  return snap;
}

void ExpectIdentical(const Snapshot& base, const Snapshot& other,
                     const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(base.complexity.size(), other.complexity.size());
  for (size_t i = 0; i < base.complexity.size(); ++i) {
    EXPECT_EQ(base.complexity[i].first, other.complexity[i].first);
    EXPECT_EQ(base.complexity[i].second, other.complexity[i].second)
        << "measure " << base.complexity[i].first;
  }
  EXPECT_EQ(base.linearity.f1_cosine, other.linearity.f1_cosine);
  EXPECT_EQ(base.linearity.threshold_cosine, other.linearity.threshold_cosine);
  EXPECT_EQ(base.linearity.f1_jaccard, other.linearity.f1_jaccard);
  EXPECT_EQ(base.linearity.threshold_jaccard,
            other.linearity.threshold_jaccard);
  EXPECT_EQ(base.esde_predictions, other.esde_predictions);
  EXPECT_EQ(base.esde_threshold, other.esde_threshold);
}

TEST(ObsInvarianceTest, ObservabilityNeverPerturbsResults) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds1"), 0.3);

  Snapshot base = Measure(task, 1, /*obs_on=*/false);
  ASSERT_FALSE(base.complexity.empty());
  ASSERT_FALSE(base.esde_predictions.empty());

  for (size_t threads : {size_t{1}, size_t{2}, size_t{7}}) {
    ExpectIdentical(base, Measure(task, threads, /*obs_on=*/false),
                    "obs=off threads=" + std::to_string(threads));
    ExpectIdentical(base, Measure(task, threads, /*obs_on=*/true),
                    "obs=on threads=" + std::to_string(threads));
  }
  std::remove(kTracePath);
}

TEST(ObsInvarianceTest, CountersAreThreadCountInvariant) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds1"), 0.3);

  auto count = [&](size_t threads) {
    Metrics::SetEnabled(true);
    Metrics::Instance().ResetAll();
    SetParallelThreads(threads);
    matchers::MatchingContext context(&task);
    core::ComplexityOptions options;
    options.max_points = 300;
    core::ComputeComplexity(core::PairFeaturePoints(context), options);
    SetParallelThreads(0);
    std::vector<std::pair<std::string, uint64_t>> values;
    for (const auto& [name, counter] : Metrics::Instance().Counters()) {
      values.emplace_back(name, counter->Value());
    }
    Metrics::SetEnabled(false);
    return values;
  };

  auto base = count(1);
  ASSERT_FALSE(base.empty());
  EXPECT_EQ(base, count(2));
  EXPECT_EQ(base, count(7));
}

}  // namespace
}  // namespace rlbench::obs
