// Unit tests for the sharded metrics registry: counter merging under real
// pool concurrency, gauge max-merge semantics, and the histogram bucket /
// percentile edge cases (empty, single sample, boundary values, overflow).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "obs/metrics.h"

namespace rlbench::obs {
namespace {

// Every test runs with metrics force-enabled and a clean slate; teardown
// restores the disabled default so tests elsewhere see the off path.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Metrics::SetEnabled(true);
    Metrics::Instance().ResetAll();
  }
  void TearDown() override {
    Metrics::Instance().ResetAll();
    Metrics::SetEnabled(false);
  }
};

TEST_F(MetricsTest, CounterStartsAtZeroAndAccumulates) {
  Counter& counter = Metrics::Instance().GetCounter("test/counter_basic");
  EXPECT_EQ(counter.Value(), 0U);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42U);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0U);
}

TEST_F(MetricsTest, SameNameReturnsSameCounter) {
  Counter& a = Metrics::Instance().GetCounter("test/counter_identity");
  Counter& b = Metrics::Instance().GetCounter("test/counter_identity");
  EXPECT_EQ(&a, &b);
  a.Add(5);
  EXPECT_EQ(b.Value(), 5U);
}

TEST_F(MetricsTest, ConcurrentIncrementsAreLossless) {
  // Hammer one counter from the pool; the shard merge must account for
  // every increment regardless of which worker landed where. This is the
  // test the TSan stage leans on for the lock-free hot path.
  Counter& counter = Metrics::Instance().GetCounter("test/counter_mt");
  constexpr size_t kItems = 10000;
  constexpr uint64_t kPerItem = 3;
  SetParallelThreads(7);
  ParallelFor(0, kItems, 64, [&](size_t) {
    counter.Add(kPerItem - 1);
    counter.Increment();
  });
  SetParallelThreads(0);
  EXPECT_EQ(counter.Value(), kItems * kPerItem);
}

TEST_F(MetricsTest, GaugeKeepsMaximumAcrossThreads) {
  Gauge& gauge = Metrics::Instance().GetGauge("test/gauge_mt");
  EXPECT_EQ(gauge.Value(), 0.0);
  EXPECT_EQ(gauge.ObservationCount(), 0U);
  SetParallelThreads(4);
  ParallelFor(0, 1000, 16, [&](size_t i) {
    gauge.Observe(static_cast<double>(i));
  });
  SetParallelThreads(0);
  EXPECT_EQ(gauge.Value(), 999.0);
  EXPECT_EQ(gauge.ObservationCount(), 1000U);
}

TEST_F(MetricsTest, GaugeHandlesNegativeObservations) {
  Gauge& gauge = Metrics::Instance().GetGauge("test/gauge_negative");
  gauge.Observe(-7.5);
  gauge.Observe(-2.25);
  EXPECT_EQ(gauge.Value(), -2.25);
  EXPECT_EQ(gauge.ObservationCount(), 2U);
}

TEST_F(MetricsTest, EmptyHistogramReportsZeros) {
  Histogram& histogram = Metrics::Instance().GetHistogram(
      "test/hist_empty", LinearBounds(1.0, 10.0, 10));
  EXPECT_EQ(histogram.Count(), 0U);
  EXPECT_EQ(histogram.Sum(), 0.0);
  EXPECT_EQ(histogram.Min(), 0.0);
  EXPECT_EQ(histogram.Max(), 0.0);
  EXPECT_EQ(histogram.Percentile(0.5), 0.0);
  auto buckets = histogram.BucketCounts();
  ASSERT_EQ(buckets.size(), 11U);  // 10 bounds + overflow
  for (uint64_t count : buckets) EXPECT_EQ(count, 0U);
}

TEST_F(MetricsTest, SingleSampleDrivesEveryPercentile) {
  Histogram& histogram = Metrics::Instance().GetHistogram(
      "test/hist_single", LinearBounds(1.0, 4.0, 4));
  histogram.Record(2.5);
  EXPECT_EQ(histogram.Count(), 1U);
  EXPECT_EQ(histogram.Sum(), 2.5);
  EXPECT_EQ(histogram.Min(), 2.5);
  EXPECT_EQ(histogram.Max(), 2.5);
  // 2.5 lands in the bucket bounded by 3.0; every percentile, including
  // the degenerate p=0, reports that bucket's bound.
  EXPECT_EQ(histogram.Percentile(0.0), 3.0);
  EXPECT_EQ(histogram.Percentile(0.5), 3.0);
  EXPECT_EQ(histogram.Percentile(1.0), 3.0);
}

TEST_F(MetricsTest, BoundaryValueLandsInItsBucket) {
  // The contract is v <= bound, so an exact boundary sample belongs to
  // that bucket, not the next one.
  Histogram& histogram = Metrics::Instance().GetHistogram(
      "test/hist_boundary", LinearBounds(1.0, 3.0, 3));
  histogram.Record(2.0);
  auto buckets = histogram.BucketCounts();
  ASSERT_EQ(buckets.size(), 4U);
  EXPECT_EQ(buckets[0], 0U);
  EXPECT_EQ(buckets[1], 1U);
  EXPECT_EQ(buckets[2], 0U);
  EXPECT_EQ(buckets[3], 0U);
}

TEST_F(MetricsTest, OverflowSamplesReportExactMax) {
  Histogram& histogram = Metrics::Instance().GetHistogram(
      "test/hist_overflow", LinearBounds(1.0, 2.0, 2));
  histogram.Record(100.0);
  histogram.Record(250.0);
  auto buckets = histogram.BucketCounts();
  ASSERT_EQ(buckets.size(), 3U);
  EXPECT_EQ(buckets[2], 2U);  // both in overflow
  // The overflow bucket has no upper bound; percentiles that land there
  // fall back to the exact observed maximum.
  EXPECT_EQ(histogram.Percentile(0.5), 250.0);
  EXPECT_EQ(histogram.Percentile(0.99), 250.0);
  EXPECT_EQ(histogram.Max(), 250.0);
}

TEST_F(MetricsTest, PercentilesSplitAcrossBuckets) {
  Histogram& histogram = Metrics::Instance().GetHistogram(
      "test/hist_split", LinearBounds(10.0, 40.0, 4));
  for (int i = 0; i < 90; ++i) histogram.Record(5.0);    // bucket <=10
  for (int i = 0; i < 10; ++i) histogram.Record(35.0);   // bucket <=40
  EXPECT_EQ(histogram.Percentile(0.5), 10.0);
  EXPECT_EQ(histogram.Percentile(0.9), 10.0);
  EXPECT_EQ(histogram.Percentile(0.95), 40.0);
  EXPECT_EQ(histogram.Count(), 100U);
}

TEST_F(MetricsTest, ConcurrentHistogramRecordsMergeExactly) {
  Histogram& histogram = Metrics::Instance().GetHistogram(
      "test/hist_mt", ExponentialBounds(1.0, 2.0, 10));
  constexpr size_t kItems = 4096;
  SetParallelThreads(7);
  ParallelFor(0, kItems, 32, [&](size_t i) {
    histogram.Record(static_cast<double>(i % 7));
  });
  SetParallelThreads(0);
  EXPECT_EQ(histogram.Count(), kItems);
  uint64_t total = 0;
  for (uint64_t count : histogram.BucketCounts()) total += count;
  EXPECT_EQ(total, kItems);
  EXPECT_EQ(histogram.Min(), 0.0);
  EXPECT_EQ(histogram.Max(), 6.0);
}

TEST_F(MetricsTest, FirstHistogramRegistrationFixesBounds) {
  Histogram& first = Metrics::Instance().GetHistogram(
      "test/hist_bounds_pin", LinearBounds(1.0, 2.0, 2));
  Histogram& second = Metrics::Instance().GetHistogram(
      "test/hist_bounds_pin", LinearBounds(100.0, 200.0, 50));
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(second.bounds(), LinearBounds(1.0, 2.0, 2));
}

TEST_F(MetricsTest, BoundHelpersProduceAscendingGrids) {
  auto exponential = ExponentialBounds(1.0, 2.0, 4);
  EXPECT_EQ(exponential, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  auto linear = LinearBounds(0.0, 1.0, 5);
  EXPECT_EQ(linear, (std::vector<double>{0.0, 0.25, 0.5, 0.75, 1.0}));
}

TEST_F(MetricsTest, MacrosAreInertWhileDisabled) {
  Metrics::SetEnabled(false);
  RLBENCH_COUNTER_INC("test/macro_disabled");
  RLBENCH_GAUGE_OBSERVE("test/macro_disabled_gauge", 3.0);
  Metrics::SetEnabled(true);
  // Nothing recorded on the disabled pass; the names were not even
  // registered, so a fresh lookup starts from zero.
  EXPECT_EQ(Metrics::Instance().GetCounter("test/macro_disabled").Value(), 0U);
  EXPECT_EQ(Metrics::Instance().GetGauge("test/macro_disabled_gauge").Value(),
            0.0);
}

TEST_F(MetricsTest, ExportsAreNameSorted) {
  Metrics::Instance().GetCounter("test/sorted_b");
  Metrics::Instance().GetCounter("test/sorted_a");
  auto counters = Metrics::Instance().Counters();
  std::string previous;
  for (const auto& [name, counter] : counters) {
    EXPECT_LE(previous, name);
    previous = name;
  }
}

}  // namespace
}  // namespace rlbench::obs
