// Tests for the minimal JSON helpers: escaping, shortest round-trip
// number formatting, and the syntax validator used by the trace/manifest
// round-trip tests.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "obs/json.h"

namespace rlbench::obs {
namespace {

TEST(JsonTest, EscapesSpecialsAndControlCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab\rret"),
            "line\\nbreak\\ttab\\rret");
  EXPECT_EQ(JsonEscape(std::string("nul\x01") + "x"), "nul\\u0001x");
  EXPECT_EQ(JsonString("q\"q"), "\"q\\\"q\"");
}

TEST(JsonTest, NumbersRoundTripExactly) {
  for (double value : {0.0, 1.0, -1.5, 0.35, 1e-9, 123456789.125,
                       std::numeric_limits<double>::max()}) {
    std::string text = JsonNumber(value);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), value) << text;
  }
  EXPECT_EQ(JsonNumber(std::nan("")), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonTest, ValidatorAcceptsWellFormedDocuments) {
  EXPECT_TRUE(JsonSyntaxValid("{}"));
  EXPECT_TRUE(JsonSyntaxValid("[]"));
  EXPECT_TRUE(JsonSyntaxValid("  {\"a\": [1, 2.5, -3e4], \"b\": "
                              "{\"c\": null, \"d\": [true, false]}}  "));
  EXPECT_TRUE(JsonSyntaxValid("\"escaped \\u00e9 \\n ok\""));
}

TEST(JsonTest, ValidatorRejectsMalformedDocuments) {
  EXPECT_FALSE(JsonSyntaxValid(""));
  EXPECT_FALSE(JsonSyntaxValid("{"));
  EXPECT_FALSE(JsonSyntaxValid("{\"a\": }"));
  EXPECT_FALSE(JsonSyntaxValid("{\"a\": 1,}"));
  EXPECT_FALSE(JsonSyntaxValid("[1 2]"));
  EXPECT_FALSE(JsonSyntaxValid("\"unterminated"));
  EXPECT_FALSE(JsonSyntaxValid("\"bad escape \\q\""));
  EXPECT_FALSE(JsonSyntaxValid("01"));
  EXPECT_FALSE(JsonSyntaxValid("{} trailing"));
  EXPECT_FALSE(JsonSyntaxValid("nul"));
}

TEST(JsonTest, ValidatorBoundsRecursionDepth) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(JsonSyntaxValid(deep));  // past kMaxDepth
  std::string shallow(20, '[');
  shallow += std::string(20, ']');
  EXPECT_TRUE(JsonSyntaxValid(shallow));
}

}  // namespace
}  // namespace rlbench::obs
