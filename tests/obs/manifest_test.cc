// Run-manifest tests: schema round-trip through the syntax validator,
// escaping, phase accounting, failure status, the Finalize() freeze, and
// the metrics-section gate.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

namespace rlbench::obs {
namespace {

TEST(ManifestTest, ToJsonIsSyntaxValidWithAllSections) {
  RunManifest manifest("unit_bench");
  manifest.set_threads(4);
  manifest.set_hardware_concurrency(8);
  manifest.set_seed(1234);
  manifest.SetDatasets({"Ds1", "Ds2"});
  manifest.AddConfig("scale", 0.35);
  manifest.AddConfig("kmax", static_cast<int64_t>(64));
  manifest.AddConfig("mode", std::string("fast"));
  manifest.BeginPhase("alpha");
  manifest.BeginPhase("beta");  // nested
  manifest.EndPhase();
  manifest.EndPhase();
  manifest.Finalize();

  std::string json = manifest.ToJson();
  EXPECT_TRUE(JsonSyntaxValid(json)) << json;
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"unit_bench\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"hardware_concurrency\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 1234"), std::string::npos);
  EXPECT_NE(json.find("\"datasets\": [\"Ds1\", \"Ds2\"]"), std::string::npos);
  EXPECT_NE(json.find("\"scale\": 0.35"), std::string::npos);
  EXPECT_NE(json.find("\"kmax\": 64"), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"fast\""), std::string::npos);
  EXPECT_NE(json.find("\"git\": "), std::string::npos);
  // Phases serialise in begin order, nested or not.
  size_t alpha = json.find("\"name\": \"alpha\"");
  size_t beta = json.find("\"name\": \"beta\"");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(beta, std::string::npos);
  EXPECT_LT(alpha, beta);
  EXPECT_NE(json.find("\"total_seconds\": "), std::string::npos);
}

TEST(ManifestTest, SeedAndTraceFileAreOptional) {
  RunManifest manifest("unit_bench_min");
  std::string json = manifest.ToJson();
  EXPECT_TRUE(JsonSyntaxValid(json)) << json;
  EXPECT_EQ(json.find("\"seed\""), std::string::npos);
  EXPECT_EQ(json.find("\"trace_file\""), std::string::npos);
  RunManifest traced("unit_bench_traced");
  traced.set_trace_file("out.json");
  EXPECT_NE(traced.ToJson().find("\"trace_file\": \"out.json\""),
            std::string::npos);
}

TEST(ManifestTest, EscapesHostileStrings) {
  RunManifest manifest("unit\"bench\nname");
  manifest.AddDataset("quote\"and\\slash");
  manifest.AddConfig("note", std::string("line1\nline2\ttab"));
  std::string json = manifest.ToJson();
  EXPECT_TRUE(JsonSyntaxValid(json)) << json;
  EXPECT_NE(json.find("unit\\\"bench\\nname"), std::string::npos);
  EXPECT_NE(json.find("quote\\\"and\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2\\ttab"), std::string::npos);
}

TEST(ManifestTest, FinalizeFreezesTotalSeconds) {
  RunManifest manifest("unit_bench_freeze");
  manifest.Finalize();
  double first = manifest.TotalSeconds();
  // Burn a little wall time; the frozen value must not move.
  std::string sink;
  for (int i = 0; i < 10000; ++i) sink += 'x';
  ASSERT_FALSE(sink.empty());
  EXPECT_EQ(manifest.TotalSeconds(), first);
}

TEST(ManifestTest, UnbalancedEndPhaseIsIgnored) {
  RunManifest manifest("unit_bench_unbalanced");
  manifest.EndPhase();  // no matching BeginPhase: must not crash
  manifest.BeginPhase("only");
  manifest.EndPhase();
  manifest.EndPhase();
  EXPECT_TRUE(JsonSyntaxValid(manifest.ToJson()));
}

TEST(ManifestTest, MetricsSectionFollowsTheGate) {
  Metrics::SetEnabled(true);
  Metrics::Instance().ResetAll();
  Metrics::Instance().GetCounter("manifest_test/marker").Add(7);
  RunManifest manifest("unit_bench_metrics");
  std::string with_metrics = manifest.ToJson();
  EXPECT_TRUE(JsonSyntaxValid(with_metrics)) << with_metrics;
  EXPECT_NE(with_metrics.find("\"counters\""), std::string::npos);
  EXPECT_NE(with_metrics.find("\"manifest_test/marker\": 7"),
            std::string::npos);
  EXPECT_NE(with_metrics.find("\"histograms\""), std::string::npos);

  Metrics::SetEnabled(false);
  std::string without_metrics = manifest.ToJson();
  EXPECT_TRUE(JsonSyntaxValid(without_metrics));
  EXPECT_EQ(without_metrics.find("\"counters\""), std::string::npos);
}

TEST(ManifestTest, PeakRssBytesIsAlwaysSerialised) {
  // Downstream tooling (tools/validate_manifest.py) treats the key as
  // required, so it must appear even when never set.
  RunManifest manifest("unit_bench_rss");
  std::string json = manifest.ToJson();
  EXPECT_TRUE(JsonSyntaxValid(json)) << json;
  EXPECT_NE(json.find("\"peak_rss_bytes\": 0"), std::string::npos);
  manifest.set_peak_rss_bytes(123456789);
  json = manifest.ToJson();
  EXPECT_TRUE(JsonSyntaxValid(json)) << json;
  EXPECT_NE(json.find("\"peak_rss_bytes\": 123456789"), std::string::npos);
}

TEST(ManifestTest, PhasesCarryOkStatusByDefault) {
  RunManifest manifest("unit_bench_status");
  manifest.BeginPhase("clean");
  manifest.EndPhase();
  std::string json = manifest.ToJson();
  EXPECT_TRUE(JsonSyntaxValid(json)) << json;
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_EQ(json.find("\"status\": \"failed\""), std::string::npos);
  EXPECT_EQ(json.find("\"error\""), std::string::npos);
  EXPECT_FALSE(manifest.HasFailedPhase());
}

TEST(ManifestTest, FailPhaseMarksInnermostOpenPhase) {
  RunManifest manifest("unit_bench_fail");
  manifest.BeginPhase("outer");
  manifest.BeginPhase("dataset/Ds1");
  manifest.FailPhase("IOError: injected");
  manifest.EndPhase();
  manifest.EndPhase();
  EXPECT_TRUE(manifest.HasFailedPhase());
  std::string json = manifest.ToJson();
  EXPECT_TRUE(JsonSyntaxValid(json)) << json;
  // The inner phase failed with its error recorded; the outer stayed ok.
  size_t failed_at = json.find("\"status\": \"failed\"");
  ASSERT_NE(failed_at, std::string::npos);
  EXPECT_NE(json.find("\"error\": \"IOError: injected\""), std::string::npos);
  size_t inner = json.find("\"name\": \"dataset/Ds1\"");
  size_t outer = json.find("\"name\": \"outer\"");
  ASSERT_NE(inner, std::string::npos);
  ASSERT_NE(outer, std::string::npos);
  EXPECT_LT(outer, failed_at);
  EXPECT_LT(inner, failed_at);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
}

TEST(ManifestTest, FailPhaseWithoutOpenPhaseIsIgnored) {
  RunManifest manifest("unit_bench_fail_noop");
  manifest.FailPhase("nothing open");  // must not crash
  EXPECT_FALSE(manifest.HasFailedPhase());
  EXPECT_TRUE(JsonSyntaxValid(manifest.ToJson()));
}

TEST(ManifestTest, AddCompletedPhaseRecordsFailures) {
  RunManifest manifest("unit_bench_completed");
  manifest.AddCompletedPhase("dataset/Dn1", 0.25);
  manifest.AddCompletedPhase("dataset/Dn2", 0.0, /*failed=*/true,
                             "NotFound: unknown dataset id Dn2");
  EXPECT_TRUE(manifest.HasFailedPhase());
  std::string json = manifest.ToJson();
  EXPECT_TRUE(JsonSyntaxValid(json)) << json;
  EXPECT_NE(json.find("\"name\": \"dataset/Dn1\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"failed\""), std::string::npos);
  EXPECT_NE(json.find("\"error\": \"NotFound: unknown dataset id Dn2\""),
            std::string::npos);
}

}  // namespace
}  // namespace rlbench::obs
