// Trace span tests: nesting, pool chunk integration, and the exported
// Chrome trace JSON (syntax-valid, carries thread names and chunk args).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "data/file_source.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace rlbench::obs {
namespace {

std::string ReadFile(const std::string& path) {
  return data::FileSource::ReadAll(path).ValueOr("");
}

// Each test routes spans to its own temp file and disables tracing on the
// way out so the rest of the suite sees the default off path.
class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetTraceFile("");
    std::remove(kPath);
  }
  static constexpr const char* kPath = "obs_trace_test_out.json";
};

TEST_F(TraceTest, DisabledByDefaultAndCurrentSpanIsNull) {
  SetTraceFile("");
  EXPECT_FALSE(TraceEnabled());
  EXPECT_EQ(TraceFilePath(), "");
  EXPECT_EQ(CurrentSpanName(), nullptr);
  {
    RLBENCH_TRACE_SPAN("noop");  // records nothing while disabled
    EXPECT_EQ(CurrentSpanName(), nullptr);
  }
  EXPECT_EQ(WriteTraceIfEnabled(), "");
}

TEST_F(TraceTest, CurrentSpanNameTracksInnermostOpenSpan) {
  SetTraceFile(kPath);
  ASSERT_TRUE(TraceEnabled());
  EXPECT_EQ(TraceFilePath(), kPath);
  {
    TraceSpan outer("outer");
    EXPECT_STREQ(CurrentSpanName(), "outer");
    {
      TraceSpan inner("inner");
      EXPECT_STREQ(CurrentSpanName(), "inner");
    }
    EXPECT_STREQ(CurrentSpanName(), "outer");
  }
  EXPECT_EQ(CurrentSpanName(), nullptr);
}

TEST_F(TraceTest, ExportIsSyntaxValidJsonWithExpectedEvents) {
  SetTraceFile(kPath);
  SetCurrentThreadName("main");
  {
    RLBENCH_TRACE_SPAN("unit/alpha");
    { RLBENCH_TRACE_SPAN("unit/beta"); }
  }
  std::string written = WriteTraceIfEnabled();
  ASSERT_EQ(written, kPath);

  std::string json = ReadFile(kPath);
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(JsonSyntaxValid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"unit/alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"unit/beta\""), std::string::npos);
  // Metadata events: a process name plus the named main-thread track.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"main\""), std::string::npos);
  // Complete events carry timestamps and durations.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
}

TEST_F(TraceTest, PoolChunksAppearAsLabelledSpansWithChunkArgs) {
  SetTraceFile(kPath);
  SetParallelThreads(3);
  {
    // The span open on the calling thread labels every chunk span. Which
    // thread runs a given chunk is a scheduling accident (the caller
    // drains alongside the workers), so assert only on the chunk spans
    // themselves, not on which tracks they landed on.
    RLBENCH_TRACE_SPAN("unit/fanout");
    std::vector<size_t> sink(64, 0);
    ParallelFor(0, sink.size(), 8, [&](size_t i) { sink[i] = i; });
  }
  SetParallelThreads(0);
  ASSERT_EQ(WriteTraceIfEnabled(), kPath);

  std::string json = ReadFile(kPath);
  EXPECT_TRUE(JsonSyntaxValid(json)) << json;
  EXPECT_NE(json.find("\"unit/fanout\""), std::string::npos);
  EXPECT_NE(json.find("\"chunk\""), std::string::npos);
}

TEST_F(TraceTest, NamedThreadsGetTheirOwnTracks) {
  SetTraceFile(kPath);
  std::thread worker([] {
    SetCurrentThreadName("unit-worker");
    RLBENCH_TRACE_SPAN("unit/off-main");
  });
  worker.join();
  ASSERT_EQ(WriteTraceIfEnabled(), kPath);

  std::string json = ReadFile(kPath);
  EXPECT_TRUE(JsonSyntaxValid(json)) << json;
  EXPECT_NE(json.find("\"unit-worker\""), std::string::npos);
  EXPECT_NE(json.find("\"unit/off-main\""), std::string::npos);
}

// Regression test for the epoch publish: SetTraceFile() must re-stamp the
// trace epoch (a lock-free atomic, because NowMicros() reads it on the
// span hot path — it used to be an unsynchronised time_point read racing
// SetTraceFile). If re-arming failed to publish the new epoch, spans
// recorded after the re-arm would carry timestamps offset by the full age
// of the old epoch instead of starting near zero.
TEST_F(TraceTest, RearmPublishesFreshEpochSoTimestampsRestartNearZero) {
  SetTraceFile(kPath);
  { RLBENCH_TRACE_SPAN("unit/before"); }
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  SetTraceFile(kPath);  // re-arm: clears events, publishes a new epoch
  { RLBENCH_TRACE_SPAN("unit/after"); }
  ASSERT_EQ(WriteTraceIfEnabled(), kPath);

  std::string json = ReadFile(kPath);
  size_t at = json.find("\"unit/after\"");
  ASSERT_NE(at, std::string::npos);
  size_t ts = json.find("\"ts\": ", at);
  ASSERT_NE(ts, std::string::npos);
  double start_us = std::strtod(json.c_str() + ts + 6, nullptr);
  EXPECT_GE(start_us, 0.0);
  // Stamped against the fresh epoch: far less than the 80ms that elapsed
  // on the old one.
  EXPECT_LT(start_us, 40000.0);
}

TEST_F(TraceTest, SetTraceFileClearsBufferedEvents) {
  SetTraceFile(kPath);
  { RLBENCH_TRACE_SPAN("unit/stale"); }
  // Re-arming the sink discards anything recorded so far.
  SetTraceFile(kPath);
  { RLBENCH_TRACE_SPAN("unit/fresh"); }
  ASSERT_EQ(WriteTraceIfEnabled(), kPath);
  std::string json = ReadFile(kPath);
  EXPECT_EQ(json.find("\"unit/stale\""), std::string::npos);
  EXPECT_NE(json.find("\"unit/fresh\""), std::string::npos);
  EXPECT_EQ(DroppedTraceEvents(), 0U);
}

}  // namespace
}  // namespace rlbench::obs
