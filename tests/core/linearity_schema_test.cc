#include <gtest/gtest.h>

#include "core/linearity.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"

namespace rlbench::core {
namespace {

TEST(SchemaAwareLinearityTest, OneResultPerAttribute) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds7"), 0.4);
  matchers::MatchingContext context(&task);
  auto results = ComputeLinearityPerAttribute(context);
  EXPECT_EQ(results.size(), task.left().schema().num_attributes());
  for (const auto& result : results) {
    EXPECT_GE(result.f1_cosine, 0.0);
    EXPECT_LE(result.f1_cosine, 1.0);
  }
}

TEST(SchemaAwareLinearityTest, BestAttributeNearSchemaAgnostic) {
  // The paper reports no significant difference between the settings: on
  // an easy benchmark the best single attribute threshold comes close to
  // the schema-agnostic optimum.
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds7"), 0.4);
  matchers::MatchingContext context(&task);
  auto agnostic = ComputeLinearity(context);
  auto per_attr = ComputeLinearityPerAttribute(context);
  double best_attr = 0.0;
  for (const auto& result : per_attr) {
    best_attr = std::max(best_attr, result.f1_cosine);
  }
  EXPECT_GT(best_attr, agnostic.f1_cosine - 0.15);
}

TEST(SchemaAwareLinearityTest, DistinctiveAttributeIdentified) {
  // On the restaurant benchmark the phone number is the near-key column:
  // its linearity must dominate the class-label column.
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds7"), 0.4);
  matchers::MatchingContext context(&task);
  auto per_attr = ComputeLinearityPerAttribute(context);
  int phone = task.left().schema().IndexOf("phone");
  int klass = task.left().schema().IndexOf("class");
  ASSERT_GE(phone, 0);
  ASSERT_GE(klass, 0);
  EXPECT_GT(per_attr[phone].f1_cosine, per_attr[klass].f1_cosine);
}

}  // namespace
}  // namespace rlbench::core
