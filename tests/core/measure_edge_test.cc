// Edge-case behaviour of the core measures: empty datasets, single-class
// and near-single-class labels, and constant features must yield defined
// values — never NaN, infinity, or out-of-range reads. These run in CI
// under ASan/UBSan via scripts/check.sh.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/complexity.h"
#include "core/linearity.h"
#include "ml/metrics.h"

namespace rlbench::core {
namespace {

void ExpectAllDefined(const ComplexityReport& report) {
  for (const auto& [name, value] : report.Items()) {
    EXPECT_TRUE(std::isfinite(value)) << name << " is not finite";
    EXPECT_GE(value, 0.0) << name;
    EXPECT_LE(value, 1.0) << name;
  }
  EXPECT_TRUE(std::isfinite(report.Average()));
}

TEST(ComplexityEdgeTest, EmptyInputYieldsDefaultReport) {
  auto report = ComputeComplexity({});
  ExpectAllDefined(report);
  EXPECT_EQ(report.Average(), 0.0);
}

TEST(ComplexityEdgeTest, SingleClassInputsAreDefined) {
  std::vector<FeaturePoint> all_negative(50, {0.3, 0.2, false});
  ExpectAllDefined(ComputeComplexity(all_negative));

  std::vector<FeaturePoint> all_positive(50, {0.8, 0.7, true});
  auto report = ComputeComplexity(all_positive);
  ExpectAllDefined(report);
  // Perfectly imbalanced: the class-balance measures flag maximum skew.
  EXPECT_EQ(report.c1, 1.0);
  EXPECT_EQ(report.c2, 1.0);
}

TEST(ComplexityEdgeTest, SinglePositiveAmongNegativesIsDefined) {
  // Regression: a lone positive has no same-class neighbour, so its
  // nearest_same distance is +inf; n2 used to become inf/(1+inf) = NaN.
  std::vector<FeaturePoint> points(40, {0.2, 0.1, false});
  points.push_back({0.9, 0.8, true});
  auto report = ComputeComplexity(points);
  ExpectAllDefined(report);
}

TEST(ComplexityEdgeTest, SinglePointPerClassIsDefined) {
  std::vector<FeaturePoint> points = {{0.1, 0.1, false}, {0.9, 0.9, true}};
  ExpectAllDefined(ComputeComplexity(points));
}

TEST(ComplexityEdgeTest, ConstantFeaturesAreDefined) {
  // Every pair has identical [CS, JS]: zero variance, zero distances, and
  // degenerate covariance matrices everywhere.
  std::vector<FeaturePoint> points;
  for (int i = 0; i < 30; ++i) points.push_back({0.5, 0.5, i % 2 == 0});
  auto report = ComputeComplexity(points);
  ExpectAllDefined(report);
  // Identical classes are maximally overlapped for the feature measures.
  EXPECT_DOUBLE_EQ(report.f3, 1.0);
}

TEST(ComplexityEdgeTest, ExcludedMeasuresDefinedOnEdgeCases) {
  EXPECT_EQ(ComputeExcludedMeasures({}).f4, 0.0);

  std::vector<FeaturePoint> constant(20, {0.5, 0.5, false});
  for (int i = 0; i < 20; ++i) constant.push_back({0.5, 0.5, true});
  auto excluded = ComputeExcludedMeasures(constant);
  EXPECT_TRUE(std::isfinite(excluded.t2));
  EXPECT_TRUE(std::isfinite(excluded.t3));
  EXPECT_TRUE(std::isfinite(excluded.t4));
  EXPECT_TRUE(std::isfinite(excluded.f4));
  EXPECT_TRUE(std::isfinite(excluded.l3));

  std::vector<FeaturePoint> single_class(25, {0.4, 0.3, true});
  auto single = ComputeExcludedMeasures(single_class);
  EXPECT_TRUE(std::isfinite(single.l3));
}

TEST(LinearityEdgeTest, SweepOnEmptyScoresIsDefined) {
  auto result = ml::SweepThresholds({}, {});
  EXPECT_EQ(result.best_f1, 0.0);
  EXPECT_TRUE(std::isfinite(result.best_threshold));
}

TEST(LinearityEdgeTest, SweepOnSingleClassScoresIsDefined) {
  // All negatives: no threshold can score any F1.
  std::vector<double> scores = {0.2, 0.4, 0.6, 0.8};
  std::vector<uint8_t> negatives(4, 0);
  auto no_pos = ml::SweepThresholds(scores, negatives);
  EXPECT_EQ(no_pos.best_f1, 0.0);

  // All positives: threshold 0.01 captures everything, perfect F1.
  std::vector<uint8_t> positives(4, 1);
  auto all_pos = ml::SweepThresholds(scores, positives);
  EXPECT_DOUBLE_EQ(all_pos.best_f1, 1.0);
  EXPECT_GE(all_pos.best_threshold, 0.01);
}

TEST(LinearityEdgeTest, SweepOnConstantScoresIsDefined) {
  std::vector<double> scores(6, 0.5);
  std::vector<uint8_t> labels = {1, 0, 1, 0, 1, 0};
  auto result = ml::SweepThresholds(scores, labels);
  EXPECT_TRUE(std::isfinite(result.best_f1));
  EXPECT_GE(result.best_f1, 0.0);
  EXPECT_LE(result.best_f1, 1.0);
}

}  // namespace
}  // namespace rlbench::core
