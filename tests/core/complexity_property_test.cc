// Parameterised property sweeps for the complexity measures: the average
// score must grow monotonically as the class clusters approach each other,
// and the balance measures must grow monotonically in the imbalance.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/complexity.h"

namespace rlbench::core {
namespace {

std::vector<FeaturePoint> ClustersAtSeparation(double separation,
                                               double positive_fraction,
                                               uint64_t seed) {
  Rng rng(seed);
  std::vector<FeaturePoint> points;
  double center = 0.5;
  for (size_t i = 0; i < 600; ++i) {
    bool match = rng.Bernoulli(positive_fraction);
    double c = match ? center + separation / 2 : center - separation / 2;
    points.push_back({std::clamp(c + rng.Gaussian(0, 0.06), 0.0, 1.0),
                      std::clamp(c + rng.Gaussian(0, 0.06), 0.0, 1.0),
                      match});
  }
  return points;
}

class SeparationSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(SeparationSweepTest, TighterSeparationIsMoreComplex) {
  double separation = GetParam();
  double tighter = separation / 2.0;
  auto wide = ComputeComplexity(ClustersAtSeparation(separation, 0.3, 5));
  auto narrow = ComputeComplexity(ClustersAtSeparation(tighter, 0.3, 5));
  EXPECT_GE(narrow.Average(), wide.Average() - 0.02)
      << "separation " << separation;
}

INSTANTIATE_TEST_SUITE_P(Separations, SeparationSweepTest,
                         ::testing::Values(0.8, 0.5, 0.3));

class ImbalanceSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ImbalanceSweepTest, BalanceMeasuresTrackImbalance) {
  double fraction = GetParam();
  auto report = ComputeComplexity(ClustersAtSeparation(0.6, fraction, 9));
  auto balanced = ComputeComplexity(ClustersAtSeparation(0.6, 0.5, 9));
  EXPECT_GE(report.c1, balanced.c1 - 1e-9);
  EXPECT_GE(report.c2, balanced.c2 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Fractions, ImbalanceSweepTest,
                         ::testing::Values(0.25, 0.1, 0.04));

TEST(ComplexityConsistencyTest, LinearityAndComplexityAgreeOnOrdering) {
  // The a-priori measures must agree: when one says clearly harder, so
  // does the other (tested across three separations).
  double previous_average = -1.0;
  for (double separation : {0.7, 0.4, 0.15}) {
    auto points = ClustersAtSeparation(separation, 0.3, 13);
    auto report = ComputeComplexity(points);
    EXPECT_GT(report.Average(), previous_average - 0.02);
    previous_average = report.Average();
  }
}

}  // namespace
}  // namespace rlbench::core
