#include "core/practical.h"

#include <gtest/gtest.h>

namespace rlbench::core {
namespace {

using matchers::MatcherGroup;

TEST(PracticalTest, NlbAndLbmExactValues) {
  std::vector<MatcherScore> scores = {
      {"dl-a", MatcherGroup::kDeepLearning, 0.92},
      {"dl-b", MatcherGroup::kDeepLearning, 0.88},
      {"ml-a", MatcherGroup::kClassicMl, 0.85},
      {"lin-a", MatcherGroup::kLinear, 0.80},
      {"lin-b", MatcherGroup::kLinear, 0.76},
  };
  auto measures = ComputePractical(scores);
  EXPECT_DOUBLE_EQ(measures.best_nonlinear_f1, 0.92);
  EXPECT_DOUBLE_EQ(measures.best_linear_f1, 0.80);
  EXPECT_NEAR(measures.non_linear_boost, 0.12, 1e-12);
  EXPECT_NEAR(measures.learning_based_margin, 0.08, 1e-12);
}

TEST(PracticalTest, LinearCanWin) {
  // Ds5-style situation: the best linear matcher beats the non-linear ones.
  std::vector<MatcherScore> scores = {
      {"dl", MatcherGroup::kDeepLearning, 0.84},
      {"lin", MatcherGroup::kLinear, 0.86},
  };
  auto measures = ComputePractical(scores);
  EXPECT_LT(measures.non_linear_boost, 0.0);
  EXPECT_NEAR(measures.learning_based_margin, 0.14, 1e-12);
}

TEST(PracticalTest, PerfectScoresZeroBoth) {
  std::vector<MatcherScore> scores = {
      {"dl", MatcherGroup::kDeepLearning, 1.0},
      {"lin", MatcherGroup::kLinear, 1.0},
  };
  auto measures = ComputePractical(scores);
  EXPECT_DOUBLE_EQ(measures.non_linear_boost, 0.0);
  EXPECT_DOUBLE_EQ(measures.learning_based_margin, 0.0);
}

TEST(PracticalTest, ClassicMlCountsAsNonLinear) {
  std::vector<MatcherScore> scores = {
      {"ml", MatcherGroup::kClassicMl, 0.9},
      {"lin", MatcherGroup::kLinear, 0.7},
  };
  auto measures = ComputePractical(scores);
  EXPECT_NEAR(measures.non_linear_boost, 0.2, 1e-12);
}

TEST(PracticalTest, EmptyScores) {
  auto measures = ComputePractical({});
  EXPECT_DOUBLE_EQ(measures.non_linear_boost, 0.0);
  EXPECT_DOUBLE_EQ(measures.learning_based_margin, 1.0);
}

}  // namespace
}  // namespace rlbench::core
