// Verifies the paper's rationale for EXCLUDING t2/t3/t4, f4 and l3 from
// the aggregate complexity score on the two-feature representation.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/complexity.h"

namespace rlbench::core {
namespace {

std::vector<FeaturePoint> Clusters(double separation, uint64_t seed) {
  Rng rng(seed);
  std::vector<FeaturePoint> points;
  for (size_t i = 0; i < 500; ++i) {
    bool match = rng.Bernoulli(0.3);
    double c = match ? 0.5 + separation / 2 : 0.5 - separation / 2;
    points.push_back({std::clamp(c + rng.Gaussian(0, 0.05), 0.0, 1.0),
                      std::clamp(c + rng.Gaussian(0, 0.05), 0.0, 1.0),
                      match});
  }
  return points;
}

TEST(ExcludedMeasuresTest, DimensionalityMeasuresNearConstant) {
  // t2 and t3 vanish with n; t4 is 0.5 or 1.0 regardless of difficulty —
  // none carries dataset-difficulty information with two features.
  auto easy = ComputeExcludedMeasures(Clusters(0.7, 1));
  auto hard = ComputeExcludedMeasures(Clusters(0.05, 2));
  EXPECT_LT(easy.t2, 0.02);
  EXPECT_LT(hard.t2, 0.02);
  EXPECT_LT(easy.t3, 0.02);
  EXPECT_LT(hard.t3, 0.02);
  EXPECT_TRUE(easy.t4 == 0.5 || easy.t4 == 1.0) << easy.t4;
  EXPECT_TRUE(hard.t4 == 0.5 || hard.t4 == 1.0) << hard.t4;
}

TEST(ExcludedMeasuresTest, F4TracksF3) {
  // f4 (collective efficiency) is nearly identical to f3 when the two
  // features are as correlated as CS and JS are.
  for (double separation : {0.6, 0.2}) {
    auto points = Clusters(separation, 7);
    auto excluded = ComputeExcludedMeasures(points);
    auto report = ComputeComplexity(points);
    EXPECT_NEAR(excluded.f4, report.f3, 0.15) << separation;
  }
}

TEST(ExcludedMeasuresTest, L3TracksL2) {
  for (double separation : {0.6, 0.2}) {
    auto points = Clusters(separation, 9);
    auto excluded = ComputeExcludedMeasures(points);
    auto report = ComputeComplexity(points);
    EXPECT_NEAR(excluded.l3, report.l2, 0.15) << separation;
  }
}

TEST(ExcludedMeasuresTest, EmptyInputSafe) {
  auto out = ComputeExcludedMeasures({});
  EXPECT_DOUBLE_EQ(out.t2, 0.0);
  EXPECT_DOUBLE_EQ(out.f4, 0.0);
}

}  // namespace
}  // namespace rlbench::core
