// The determinism contract of common/parallel.h, end to end: every
// parallelised measurement and matching path must produce bit-identical
// results at 1, 2, and 7 threads. All comparisons are EXACT double/float
// equality — no tolerances — because the fixed chunk boundaries, ordered
// combines, and split per-chunk RNG streams guarantee byte-level equality,
// not mere closeness.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "block/metrics.h"
#include "block/token_blocking.h"
#include "common/parallel.h"
#include "core/complexity.h"
#include "core/linearity.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "matchers/context.h"
#include "matchers/esde.h"

namespace rlbench::core {
namespace {

// Everything the parallel rollout touches, captured at one thread count.
struct Snapshot {
  std::vector<std::pair<std::string, double>> complexity;
  ExcludedMeasures excluded;
  LinearityResult linearity;
  std::vector<float> magellan_rows;
  std::vector<uint8_t> magellan_labels;
  std::vector<uint8_t> esde_token_predictions;
  std::vector<uint8_t> esde_qgram_predictions;
  int esde_feature = -1;
  double esde_threshold = 0.0;
  double esde_valid_f1 = 0.0;
  block::BlockingMetrics blocking;
};

Snapshot Measure(const data::MatchingTask& task, size_t threads) {
  SetParallelThreads(threads);
  Snapshot snap;

  // Fresh context per thread count so cache warm-up itself runs at the
  // thread count under test, not just the downstream consumers.
  matchers::MatchingContext context(&task);

  ComplexityOptions options;
  options.max_points = 400;
  auto points = PairFeaturePoints(context);
  snap.complexity = ComputeComplexity(points, options).Items();
  snap.excluded = ComputeExcludedMeasures(points, options);
  snap.linearity = ComputeLinearity(context);

  const auto& train = context.MagellanTrain();
  for (size_t i = 0; i < train.size(); ++i) {
    auto row = train.row(i);
    snap.magellan_rows.insert(snap.magellan_rows.end(), row.begin(),
                              row.end());
  }
  snap.magellan_labels = train.labels();

  matchers::EsdeMatcher token_esde(matchers::EsdeVariant::kSchemaAgnostic);
  snap.esde_token_predictions = token_esde.Run(context);
  snap.esde_feature = token_esde.best_feature();
  snap.esde_threshold = token_esde.best_threshold();
  snap.esde_valid_f1 = token_esde.best_valid_f1();

  // The q-gram variant exercises the WarmQGrams bulk fill.
  matchers::EsdeMatcher qgram_esde(
      matchers::EsdeVariant::kSchemaAgnosticQgram);
  snap.esde_qgram_predictions = qgram_esde.Run(context);

  auto candidates =
      block::TokenBlocking(task.left(), task.right(), {});
  std::vector<block::CandidatePair> matches;
  for (const auto& pair : task.AllPairs()) {
    if (pair.is_match) matches.push_back({pair.left, pair.right});
  }
  snap.blocking = block::EvaluateBlocking(candidates, matches);

  SetParallelThreads(0);
  return snap;
}

void ExpectIdentical(const Snapshot& base, const Snapshot& other,
                     size_t threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  ASSERT_EQ(base.complexity.size(), other.complexity.size());
  for (size_t i = 0; i < base.complexity.size(); ++i) {
    EXPECT_EQ(base.complexity[i].first, other.complexity[i].first);
    EXPECT_EQ(base.complexity[i].second, other.complexity[i].second)
        << "measure " << base.complexity[i].first;
  }
  EXPECT_EQ(base.excluded.t2, other.excluded.t2);
  EXPECT_EQ(base.excluded.t3, other.excluded.t3);
  EXPECT_EQ(base.excluded.t4, other.excluded.t4);
  EXPECT_EQ(base.excluded.f4, other.excluded.f4);
  EXPECT_EQ(base.excluded.l3, other.excluded.l3);

  EXPECT_EQ(base.linearity.f1_cosine, other.linearity.f1_cosine);
  EXPECT_EQ(base.linearity.threshold_cosine, other.linearity.threshold_cosine);
  EXPECT_EQ(base.linearity.f1_jaccard, other.linearity.f1_jaccard);
  EXPECT_EQ(base.linearity.threshold_jaccard,
            other.linearity.threshold_jaccard);

  EXPECT_EQ(base.magellan_rows, other.magellan_rows);
  EXPECT_EQ(base.magellan_labels, other.magellan_labels);

  EXPECT_EQ(base.esde_token_predictions, other.esde_token_predictions);
  EXPECT_EQ(base.esde_qgram_predictions, other.esde_qgram_predictions);
  EXPECT_EQ(base.esde_feature, other.esde_feature);
  EXPECT_EQ(base.esde_threshold, other.esde_threshold);
  EXPECT_EQ(base.esde_valid_f1, other.esde_valid_f1);

  EXPECT_EQ(base.blocking.num_candidates, other.blocking.num_candidates);
  EXPECT_EQ(base.blocking.true_candidates, other.blocking.true_candidates);
  EXPECT_EQ(base.blocking.pair_completeness, other.blocking.pair_completeness);
  EXPECT_EQ(base.blocking.pairs_quality, other.blocking.pairs_quality);
}

TEST(ThreadInvarianceTest, AllMeasuresBitIdenticalAt1_2_7Threads) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds5"), 0.25);

  Snapshot base = Measure(task, 1);
  // Sanity: the snapshot carries real work, not empty vectors.
  ASSERT_FALSE(base.complexity.empty());
  ASSERT_FALSE(base.magellan_rows.empty());
  ASSERT_FALSE(base.esde_token_predictions.empty());
  ASSERT_GT(base.blocking.num_candidates, 0U);

  ExpectIdentical(base, Measure(task, 2), 2);
  ExpectIdentical(base, Measure(task, 7), 7);
}

}  // namespace
}  // namespace rlbench::core
