#include "core/linearity.h"

#include <gtest/gtest.h>

#include "datagen/catalog.h"
#include "datagen/task_builder.h"

namespace rlbench::core {
namespace {

TEST(LinearityTest, EasyBenchmarkNearOne) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds7"), 0.5);
  matchers::MatchingContext context(&task);
  auto result = ComputeLinearity(context);
  EXPECT_GT(result.f1_cosine, 0.95);
  EXPECT_GT(result.f1_jaccard, 0.95);
}

TEST(LinearityTest, HardBenchmarkClearlyLower) {
  auto easy_task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds1"), 0.15);
  auto hard_task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds4"), 0.15);
  matchers::MatchingContext easy(&easy_task);
  matchers::MatchingContext hard(&hard_task);
  auto easy_result = ComputeLinearity(easy);
  auto hard_result = ComputeLinearity(hard);
  EXPECT_GT(easy_result.f1_cosine, hard_result.f1_cosine + 0.1);
}

TEST(LinearityTest, ThresholdsInSweepRange) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds5"), 1.0);
  matchers::MatchingContext context(&task);
  auto result = ComputeLinearity(context);
  for (double t : {result.threshold_cosine, result.threshold_jaccard}) {
    EXPECT_GE(t, 0.01);
    EXPECT_LE(t, 0.99);
  }
}

TEST(LinearityTest, CosineAtLeastJaccardThresholdHigher) {
  // CS >= JS pointwise (|∩|/sqrt(|A||B|) >= |∩|/|A∪B|), so the optimal
  // cosine threshold sits at or above the Jaccard one.
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Dt1"), 0.05);
  matchers::MatchingContext context(&task);
  auto result = ComputeLinearity(context);
  EXPECT_GE(result.threshold_cosine, result.threshold_jaccard);
}

TEST(FeaturePointsTest, OnePointPerPairInUnitSquare) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds5"), 1.0);
  matchers::MatchingContext context(&task);
  auto points = PairFeaturePoints(context);
  EXPECT_EQ(points.size(), task.AllPairs().size());
  size_t positives = 0;
  for (const auto& p : points) {
    EXPECT_GE(p.cs, 0.0);
    EXPECT_LE(p.cs, 1.0);
    EXPECT_GE(p.js, 0.0);
    EXPECT_LE(p.js, 1.0);
    EXPECT_GE(p.cs, p.js - 1e-12);  // cosine dominates jaccard
    positives += p.is_match ? 1 : 0;
  }
  EXPECT_EQ(positives, task.TotalStats().positives);
}

}  // namespace
}  // namespace rlbench::core
