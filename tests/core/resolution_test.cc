#include "core/resolution.h"

#include <gtest/gtest.h>

namespace rlbench::core {
namespace {

using data::LabeledPair;

TEST(ResolutionTest, GreedyPicksHighestScorePerRecord) {
  // Record L0 appears in two pairs; the higher-scoring pair wins.
  std::vector<LabeledPair> pairs = {{0, 0, true}, {0, 1, false},
                                    {1, 1, true}};
  std::vector<double> scores = {0.9, 0.8, 0.7};
  auto decisions = ResolveOneToOne(pairs, scores);
  EXPECT_EQ(decisions, (std::vector<uint8_t>{1, 0, 1}));
}

TEST(ResolutionTest, ThresholdGates) {
  std::vector<LabeledPair> pairs = {{0, 0, true}, {1, 1, true}};
  std::vector<double> scores = {0.9, 0.3};
  ResolutionOptions options;
  options.score_threshold = 0.5;
  auto decisions = ResolveOneToOne(pairs, scores, options);
  EXPECT_EQ(decisions, (std::vector<uint8_t>{1, 0}));
}

TEST(ResolutionTest, OneToOneInvariantHolds) {
  // Many pairs over few records: no record may be matched twice.
  std::vector<LabeledPair> pairs;
  std::vector<double> scores;
  for (uint32_t l = 0; l < 5; ++l) {
    for (uint32_t r = 0; r < 5; ++r) {
      pairs.push_back({l, r, l == r});
      scores.push_back(0.5 + 0.01 * l + 0.02 * r);
    }
  }
  auto decisions = ResolveOneToOne(pairs, scores);
  std::vector<int> left_used(5, 0);
  std::vector<int> right_used(5, 0);
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (decisions[i] != 0) {
      ++left_used[pairs[i].left];
      ++right_used[pairs[i].right];
    }
  }
  for (int count : left_used) EXPECT_LE(count, 1);
  for (int count : right_used) EXPECT_LE(count, 1);
}

TEST(ResolutionTest, ImprovesPrecisionOnCompetingSiblings) {
  // A true match plus a slightly lower-scoring sibling pair on the same
  // left record: plain thresholding keeps both, resolution drops the
  // sibling — the GNEM-style global win.
  std::vector<LabeledPair> pairs = {{0, 0, true}, {0, 1, false},
                                    {1, 2, true}, {2, 3, false}};
  std::vector<double> scores = {0.92, 0.88, 0.85, 0.2};
  auto impact = EvaluateResolution(pairs, scores);
  EXPECT_GT(impact.f1_after, impact.f1_before);
  EXPECT_DOUBLE_EQ(impact.f1_after, 1.0);
}

TEST(ResolutionTest, StableUnderTies) {
  std::vector<LabeledPair> pairs = {{0, 0, true}, {0, 1, false}};
  std::vector<double> scores = {0.7, 0.7};
  auto a = ResolveOneToOne(pairs, scores);
  auto b = ResolveOneToOne(pairs, scores);
  EXPECT_EQ(a, b);  // stable sort: first pair wins deterministically
  EXPECT_EQ(a[0] + a[1], 1);
}

}  // namespace
}  // namespace rlbench::core
