// Edge cases of the Section VI builder: tuner fallback when the recall
// target is unreachable, determinism, and parameter plumbing.
#include <gtest/gtest.h>

#include "core/benchmark_builder.h"
#include "datagen/catalog.h"

namespace rlbench::core {
namespace {

TEST(BuilderEdgeTest, UnreachableRecallFallsBackToBestPc) {
  // With k_max = 1 on a noisy movie source the 0.99 target is unreachable;
  // the tuner must return its best-recall run instead of failing.
  auto spec = *datagen::FindSourceDataset("Dn6");
  NewBenchmarkOptions options;
  options.scale = 0.05;
  options.min_recall = 0.995;
  options.k_max = 1;
  auto benchmark = BuildNewBenchmark(spec, options);
  ASSERT_TRUE(benchmark.ok()) << benchmark.status().ToString();
  EXPECT_GT(benchmark->task.AllPairs().size(), 0u);
  EXPECT_GT(benchmark->blocking.metrics.pair_completeness, 0.0);
  EXPECT_EQ(benchmark->blocking.config.k, 1);
}

TEST(BuilderEdgeTest, RejectsInvalidOptions) {
  auto spec = *datagen::FindSourceDataset("Dn1");
  NewBenchmarkOptions options;
  options.scale = 0.0;
  EXPECT_EQ(BuildNewBenchmark(spec, options).status().code(),
            StatusCode::kInvalidArgument);
  options = {};
  options.scale = -1.0;
  EXPECT_EQ(BuildNewBenchmark(spec, options).status().code(),
            StatusCode::kInvalidArgument);
  options = {};
  options.min_recall = 1.5;
  EXPECT_EQ(BuildNewBenchmark(spec, options).status().code(),
            StatusCode::kInvalidArgument);
  options = {};
  options.min_recall = 0.0;
  EXPECT_EQ(BuildNewBenchmark(spec, options).status().code(),
            StatusCode::kInvalidArgument);
  options = {};
  options.k_max = 0;
  EXPECT_EQ(BuildNewBenchmark(spec, options).status().code(),
            StatusCode::kInvalidArgument);
  options = {};
  options.embedding_dim = 0;
  EXPECT_EQ(BuildNewBenchmark(spec, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BuilderEdgeTest, DeterministicAcrossCalls) {
  auto spec = *datagen::FindSourceDataset("Dn1");
  NewBenchmarkOptions options;
  options.scale = 0.08;
  options.k_max = 8;
  auto a = BuildNewBenchmark(spec, options);
  auto b = BuildNewBenchmark(spec, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->task.AllPairs().size(), b->task.AllPairs().size());
  EXPECT_EQ(a->blocking.config.k, b->blocking.config.k);
  EXPECT_EQ(a->blocking.metrics.true_candidates,
            b->blocking.metrics.true_candidates);
  ASSERT_FALSE(a->task.train().empty());
  EXPECT_EQ(a->task.train()[0].left, b->task.train()[0].left);
}

TEST(BuilderEdgeTest, RecallTargetPropagates) {
  auto spec = *datagen::FindSourceDataset("Dn3");
  NewBenchmarkOptions strict;
  strict.scale = 0.08;
  strict.min_recall = 0.98;
  strict.k_max = 16;
  NewBenchmarkOptions loose = strict;
  loose.min_recall = 0.5;
  auto strict_result = BuildNewBenchmark(spec, strict);
  auto loose_result = BuildNewBenchmark(spec, loose);
  ASSERT_TRUE(strict_result.ok() && loose_result.ok());
  EXPECT_GE(strict_result->blocking.metrics.pair_completeness, 0.98);
  // The loose run needs at most as many candidates as the strict one.
  EXPECT_LE(loose_result->blocking.candidates.size(),
            strict_result->blocking.candidates.size());
}

TEST(BuilderEdgeTest, EchoesSourceSizes) {
  auto spec = *datagen::FindSourceDataset("Dn4");
  NewBenchmarkOptions options;
  options.scale = 0.05;
  options.k_max = 8;
  auto benchmark = BuildNewBenchmark(spec, options);
  ASSERT_TRUE(benchmark.ok());
  EXPECT_EQ(benchmark->d1_size, benchmark->task.left().size());
  EXPECT_EQ(benchmark->d2_size, benchmark->task.right().size());
  EXPECT_GT(benchmark->num_matches, 0u);
}

}  // namespace
}  // namespace rlbench::core
