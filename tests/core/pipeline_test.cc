// Integration tests: the full Section VI pipeline (generate -> block ->
// split -> measure -> match) on scaled-down datasets, plus the paper's
// headline shape assertions.
#include <gtest/gtest.h>

#include <unordered_set>
#include <utility>

#include "core/benchmark_builder.h"
#include "core/complexity.h"
#include "core/linearity.h"
#include "core/practical.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "matchers/registry.h"

namespace rlbench::core {
namespace {

TEST(PipelineTest, NewBenchmarkEndToEnd) {
  auto spec = *datagen::FindSourceDataset("Dn3");
  NewBenchmarkOptions options;
  options.scale = 0.1;
  options.k_max = 16;
  auto built = BuildNewBenchmark(spec, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  NewBenchmark benchmark = std::move(built).value();

  // Blocking reached the recall target on this easy source.
  EXPECT_GE(benchmark.blocking.metrics.pair_completeness, 0.9);

  // The task's positives equal the candidates that are true matches.
  auto stats = benchmark.task.TotalStats();
  EXPECT_EQ(stats.total, benchmark.blocking.candidates.size());
  EXPECT_EQ(stats.positives, benchmark.blocking.metrics.true_candidates);
  EXPECT_GT(stats.positives, 0u);

  // Splits disjoint.
  std::unordered_set<uint64_t> seen;
  for (const auto& pair : benchmark.task.AllPairs()) {
    uint64_t key = (static_cast<uint64_t>(pair.left) << 32) | pair.right;
    EXPECT_TRUE(seen.insert(key).second);
  }
}

TEST(PipelineTest, NewBenchmarkMeasurable) {
  auto spec = *datagen::FindSourceDataset("Dn6");
  NewBenchmarkOptions options;
  options.scale = 0.08;
  options.k_max = 16;
  auto built = BuildNewBenchmark(spec, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  NewBenchmark benchmark = std::move(built).value();
  matchers::MatchingContext context(&benchmark.task);
  auto linearity = ComputeLinearity(context);
  EXPECT_GT(linearity.f1_cosine, 0.0);
  EXPECT_LE(linearity.f1_cosine, 1.0);
  auto complexity = ComputeComplexity(PairFeaturePoints(context));
  EXPECT_GT(complexity.Average(), 0.0);
}

TEST(PipelineTest, EasyVsHardShapeHolds) {
  // The paper's central finding, in miniature: Ds7 is easy on every
  // measure; Ds4 is challenging on every measure.
  auto easy_task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds7"), 0.5);
  auto hard_task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds4"), 0.15);
  matchers::MatchingContext easy(&easy_task);
  matchers::MatchingContext hard(&hard_task);

  auto easy_linearity = ComputeLinearity(easy);
  auto hard_linearity = ComputeLinearity(hard);
  EXPECT_GT(easy_linearity.f1_cosine, 0.9);
  EXPECT_LT(hard_linearity.f1_cosine, 0.85);

  auto easy_complexity = ComputeComplexity(PairFeaturePoints(easy));
  auto hard_complexity = ComputeComplexity(PairFeaturePoints(hard));
  EXPECT_LT(easy_complexity.Average(), hard_complexity.Average());

  // Practical measures with a reduced line-up (keep the test fast): one
  // non-linear DL matcher, one classic, and the linear family.
  matchers::RegistryOptions registry;
  registry.epoch_scale = 0.4;
  auto easy_lineup = matchers::BuildMatcherLineup(registry);
  auto hard_lineup = matchers::BuildMatcherLineup(registry);
  auto easy_practical = ComputePractical(ScoreLineup(easy, &easy_lineup));
  auto hard_practical = ComputePractical(ScoreLineup(hard, &hard_lineup));

  EXPECT_LT(easy_practical.learning_based_margin, 0.05);
  EXPECT_GT(hard_practical.learning_based_margin,
            easy_practical.learning_based_margin);
  EXPECT_GT(hard_practical.non_linear_boost, 0.02);
}

TEST(PipelineTest, ScoreLineupReportsEveryMatcher) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds5"), 1.0);
  matchers::MatchingContext context(&task);
  matchers::RegistryOptions registry;
  registry.dl = false;  // keep runtime low; DL covered elsewhere
  auto lineup = matchers::BuildMatcherLineup(registry);
  auto scores = ScoreLineup(context, &lineup);
  EXPECT_EQ(scores.size(), lineup.size());
  for (const auto& score : scores) {
    EXPECT_GE(score.f1, 0.0);
    EXPECT_LE(score.f1, 1.0);
    EXPECT_FALSE(score.name.empty());
  }
}

}  // namespace
}  // namespace rlbench::core
