#include "core/complexity.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rlbench::core {
namespace {

/// Well-separated clusters: a trivially easy classification task.
std::vector<FeaturePoint> EasyPoints(size_t n, double positive_fraction,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<FeaturePoint> points;
  for (size_t i = 0; i < n; ++i) {
    bool match = rng.Bernoulli(positive_fraction);
    double c = match ? 0.9 : 0.1;
    points.push_back({std::clamp(c + rng.Gaussian(0, 0.02), 0.0, 1.0),
                      std::clamp(c + rng.Gaussian(0, 0.02), 0.0, 1.0),
                      match});
  }
  return points;
}

/// Heavily overlapping clusters: a hard task.
std::vector<FeaturePoint> HardPoints(size_t n, double positive_fraction,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<FeaturePoint> points;
  for (size_t i = 0; i < n; ++i) {
    bool match = rng.Bernoulli(positive_fraction);
    double c = match ? 0.55 : 0.45;
    points.push_back({std::clamp(c + rng.Gaussian(0, 0.15), 0.0, 1.0),
                      std::clamp(c + rng.Gaussian(0, 0.15), 0.0, 1.0),
                      match});
  }
  return points;
}

TEST(ComplexityTest, AllMeasuresInUnitInterval) {
  for (auto points : {EasyPoints(400, 0.3, 1), HardPoints(400, 0.3, 2)}) {
    auto report = ComputeComplexity(points);
    for (const auto& [name, value] : report.Items()) {
      EXPECT_GE(value, 0.0) << name;
      EXPECT_LE(value, 1.0) << name;
    }
  }
}

TEST(ComplexityTest, SeventeenMeasures) {
  auto report = ComputeComplexity(EasyPoints(100, 0.5, 3));
  EXPECT_EQ(report.Items().size(), 17u);
}

TEST(ComplexityTest, HardTaskScoresHigherThanEasy) {
  auto easy = ComputeComplexity(EasyPoints(500, 0.25, 4));
  auto hard = ComputeComplexity(HardPoints(500, 0.25, 5));
  EXPECT_GT(hard.Average(), easy.Average() + 0.1);
  // The individual families must agree on the ordering.
  EXPECT_GT(hard.f1, easy.f1);
  EXPECT_GT(hard.l2, easy.l2);
  EXPECT_GT(hard.n1, easy.n1);
  EXPECT_GT(hard.n3, easy.n3);
}

TEST(ComplexityTest, EasySeparableTaskNearZeroNeighbourhood) {
  auto easy = ComputeComplexity(EasyPoints(500, 0.3, 6));
  EXPECT_LT(easy.n1, 0.05);
  EXPECT_LT(easy.n3, 0.05);
  EXPECT_LT(easy.l2, 0.05);
  EXPECT_LT(easy.f2, 0.05);  // tiny class-overlap volume
}

TEST(ComplexityTest, ClassBalanceMeasures) {
  // Balanced classes: c1 = 0 (max entropy), c2 = 0 (IR = 1).
  auto balanced = ComputeComplexity(EasyPoints(1000, 0.5, 7));
  EXPECT_LT(balanced.c1, 0.02);
  EXPECT_LT(balanced.c2, 0.02);
  // Imbalanced classes score higher on both.
  auto imbalanced = ComputeComplexity(EasyPoints(1000, 0.05, 8));
  EXPECT_GT(imbalanced.c1, 0.5);
  EXPECT_GT(imbalanced.c2, 0.5);
}

TEST(ComplexityTest, SubsamplingStableAndBounded) {
  auto points = HardPoints(5000, 0.3, 9);
  ComplexityOptions options;
  options.max_points = 500;
  auto small = ComputeComplexity(points, options);
  options.max_points = 1500;
  auto large = ComputeComplexity(points, options);
  // Estimates from different sample sizes agree on the overall level.
  EXPECT_NEAR(small.Average(), large.Average(), 0.08);
}

TEST(ComplexityTest, DeterministicForSeed) {
  auto points = HardPoints(3000, 0.3, 10);
  ComplexityOptions options;
  options.max_points = 400;
  auto a = ComputeComplexity(points, options);
  auto b = ComputeComplexity(points, options);
  EXPECT_DOUBLE_EQ(a.Average(), b.Average());
}

TEST(ComplexityTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(ComputeComplexity({}).Average(), 0.0);
  // Single-class input: balance measures flag it, others stay defined.
  std::vector<FeaturePoint> one_class = {{0.5, 0.5, true}, {0.6, 0.6, true}};
  auto report = ComputeComplexity(one_class);
  EXPECT_DOUBLE_EQ(report.c1, 1.0);
  EXPECT_DOUBLE_EQ(report.c2, 1.0);
}

}  // namespace
}  // namespace rlbench::core
