#!/usr/bin/env python3
"""Negative-compilation harness: proves the static-analysis gates actually
reject the misuse they claim to reject.

Every fixture under fixtures/ declares its own contract in header comments:

    // compile-fail                 must NOT compile under the gate flags
    // compile-ok                   must compile (control for the harness)
    // requires-clang               only meaningful under Clang's
                                    thread-safety analysis; skipped on GCC
    // expect-error: <regex>        stderr of a failing compile must match
                                    (may repeat; every regex must match)

Each fixture is compiled with -fsyntax-only under the same discipline flags
the real build uses: -Werror=unused-result (the [[nodiscard]] gate) plus,
under Clang, -Wthread-safety -Wthread-safety-beta
-Werror=thread-safety-analysis.

A fixture that "fails" for the wrong reason (missing header, bad flag) is
caught two ways: expect-error regexes must match the diagnostic, and the
compile-ok controls prove the include paths and flags are sound.

Exit status: 0 iff every fixture behaves; the summary line reports how many
must-fail fixtures were proven to fail.
"""

import argparse
import pathlib
import re
import subprocess
import sys

BASE_FLAGS = ["-std=c++20", "-fsyntax-only", "-Wall", "-Wextra",
              "-Werror=unused-result"]
CLANG_FLAGS = ["-Wthread-safety", "-Wthread-safety-beta",
               "-Werror=thread-safety-analysis"]
DIRECTIVE = re.compile(r"^//\s*(compile-fail|compile-ok|requires-clang"
                       r"|expect-error:\s*(.+))\s*$")


def parse_fixture(path):
    mode = None
    requires_clang = False
    expects = []
    for line in path.read_text().splitlines():
        if not line.startswith("//"):
            break
        m = DIRECTIVE.match(line)
        if not m:
            continue
        if m.group(1).startswith("expect-error:"):
            expects.append(m.group(2).strip())
        elif m.group(1) == "compile-fail":
            mode = "fail"
        elif m.group(1) == "compile-ok":
            mode = "ok"
        elif m.group(1) == "requires-clang":
            requires_clang = True
    if mode is None:
        raise ValueError(f"{path.name}: no compile-fail / compile-ok "
                         f"directive")
    return mode, requires_clang, expects


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compiler", required=True,
                        help="C++ compiler driver (CMAKE_CXX_COMPILER)")
    parser.add_argument("--compiler-id", required=True,
                        help="CMAKE_CXX_COMPILER_ID (Clang gates the "
                             "thread-safety fixtures)")
    parser.add_argument("--include", required=True,
                        help="repository src/ include root")
    parser.add_argument("--fixtures", default=None,
                        help="fixtures directory (default: ./fixtures "
                             "next to this script)")
    args = parser.parse_args()

    is_clang = "clang" in args.compiler_id.lower()
    fixtures_dir = pathlib.Path(args.fixtures) if args.fixtures else \
        pathlib.Path(__file__).resolve().parent / "fixtures"
    fixtures = sorted(fixtures_dir.glob("*.cc"))
    if not fixtures:
        print(f"compile_fail_test: no fixtures in {fixtures_dir}",
              file=sys.stderr)
        return 1

    flags = BASE_FLAGS + (CLANG_FLAGS if is_clang else [])
    failures = []
    proven_fail = 0
    skipped = 0
    for fixture in fixtures:
        mode, requires_clang, expects = parse_fixture(fixture)
        if requires_clang and not is_clang:
            skipped += 1
            print(f"  SKIP {fixture.name} (needs Clang thread-safety "
                  f"analysis; compiler is {args.compiler_id})")
            continue
        cmd = [args.compiler, *flags, f"-I{args.include}", str(fixture)]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        diagnostics = proc.stderr + proc.stdout
        if mode == "fail":
            if proc.returncode == 0:
                failures.append(f"{fixture.name}: compiled cleanly but is a "
                                f"must-not-compile fixture")
                continue
            unmatched = [e for e in expects
                         if not re.search(e, diagnostics)]
            if unmatched:
                failures.append(
                    f"{fixture.name}: failed to compile (good) but the "
                    f"diagnostic did not match {unmatched}; got:\n"
                    f"{diagnostics.strip()[:800]}")
                continue
            proven_fail += 1
            print(f"  FAIL-AS-EXPECTED {fixture.name}")
        else:
            if proc.returncode != 0:
                failures.append(
                    f"{fixture.name}: control fixture must compile but "
                    f"failed:\n{diagnostics.strip()[:800]}")
                continue
            print(f"  OK {fixture.name}")

    for failure in failures:
        print(f"compile_fail_test: {failure}", file=sys.stderr)
    print(f"compile_fail_test: {proven_fail} misuse fixture(s) proven to "
          f"fail, {skipped} skipped ({args.compiler_id}), "
          f"{len(failures)} harness failure(s)")
    if proven_fail < 4:
        print(f"compile_fail_test: need at least 4 proven must-fail "
              f"fixtures, got {proven_fail}", file=sys.stderr)
        return 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
