// compile-fail
// expect-error: nodiscard
//
// Discarding a Status returned by a function call must not compile: the
// error it carried is gone, which is exactly the silently-dropped-IO-error
// class of bug the [[nodiscard]] rollout exists to prevent.
#include "common/status.h"

namespace {

rlbench::Status MightFail() {
  return rlbench::Status::IOError("disk on fire");
}

}  // namespace

int main() {
  MightFail();  // BAD: Status dropped on the floor
  return 0;
}
