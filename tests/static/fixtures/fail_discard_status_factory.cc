// compile-fail
// expect-error: nodiscard
//
// Even a bare factory temporary must not be discardable — this form shows
// up when an error path is stubbed out ("construct the status, forget to
// return it").
#include "common/status.h"

int main() {
  rlbench::Status::IOError("constructed and forgotten");  // BAD
  return 0;
}
