// compile-fail
// requires-clang
// expect-error: requires holding
//
// Calling a RLBENCH_REQUIRES function without holding the mutex violates
// its locking precondition.
#include "common/thread_annotations.h"

namespace {

class Store {
 public:
  void PutLocked(int v) RLBENCH_REQUIRES(mu_) { value_ = v; }

  void Caller() {
    PutLocked(7);  // BAD: mu_ not held
  }

 private:
  rlbench::Mutex mu_;
  int value_ RLBENCH_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Store store;
  store.Caller();
  return 0;
}
