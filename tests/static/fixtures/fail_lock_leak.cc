// compile-fail
// requires-clang
// expect-error: still held|expecting mutex
//
// A manual Lock() with an early return leaks the mutex; RAII MutexLock is
// the required idiom, and the analysis proves the point.
#include "common/thread_annotations.h"

namespace {

rlbench::Mutex mu;
int value RLBENCH_GUARDED_BY(mu) = 0;

int Leak(bool fast) {
  mu.Lock();
  if (fast) return value;  // BAD: returns with mu held
  int v = value;
  mu.Unlock();
  return v;
}

}  // namespace

int main() { return Leak(false); }
