// compile-fail
// requires-clang
// expect-error: guarded_by|requires holding
//
// Writing a guarded field without its mutex is the core race the
// annotation layer exists to catch at compile time.
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {  // BAD: no lock taken
    ++value_;
  }

 private:
  rlbench::Mutex mu_;
  int value_ RLBENCH_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}
