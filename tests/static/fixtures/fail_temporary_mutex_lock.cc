// compile-fail
// expect-error: nodiscard
//
// The classic scoped-lock bug: an unnamed temporary unlocks at the
// semicolon, so the "critical section" below it runs unlocked. The
// [[nodiscard]] constructor turns it into a diagnostic on GCC and Clang
// alike; under Clang the thread-safety analysis catches the unlocked
// access too.
#include "common/thread_annotations.h"

namespace {
rlbench::Mutex mu;
int counter = 0;
}  // namespace

int main() {
  rlbench::MutexLock{&mu};  // BAD: lock dies immediately
  ++counter;                // runs without the lock held
  return counter;
}
