// compile-ok
//
// Control fixture: correctly locked guarded state compiles cleanly under
// the thread-safety flags — the analysis accepts the annotated idioms
// (MutexLock scope, REQUIRES callee under a held lock, CondVar wait loop).
#include "common/thread_annotations.h"

namespace {

class Box {
 public:
  void Put(int v) {
    rlbench::MutexLock lock(&mu_);
    value_ = v;
    filled_ = true;
    cv_.NotifyAll();
  }

  int Take() {
    rlbench::MutexLock lock(&mu_);
    while (!filled_) cv_.Wait(&mu_);
    return TakeLocked();
  }

 private:
  int TakeLocked() RLBENCH_REQUIRES(mu_) {
    filled_ = false;
    return value_;
  }

  rlbench::Mutex mu_;
  rlbench::CondVar cv_;
  int value_ RLBENCH_GUARDED_BY(mu_) = 0;
  bool filled_ RLBENCH_GUARDED_BY(mu_) = false;
};

}  // namespace

int main() {
  Box box;
  box.Put(7);
  return box.Take() == 7 ? 0 : 1;
}
