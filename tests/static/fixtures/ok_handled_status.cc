// compile-ok
//
// Control fixture: proves the harness compiles well-formed code under the
// exact flags the fail_* fixtures run with (so a must-fail result means
// the misuse failed, not a broken include path or flag).
#include "common/status.h"

namespace {

rlbench::Status MightFail(bool fail) {
  if (fail) return rlbench::Status::IOError("nope");
  return rlbench::Status::OK();
}

rlbench::Result<int> ParseCount() { return 42; }

rlbench::Status Caller() {
  RLBENCH_RETURN_NOT_OK(MightFail(false));
  RLBENCH_ASSIGN_OR_RETURN(int count, ParseCount());
  if (count != 42) return rlbench::Status::Internal("bad count");
  return rlbench::Status::OK();
}

}  // namespace

int main() {
  rlbench::Status status = Caller();
  return status.ok() ? 0 : 1;
}
