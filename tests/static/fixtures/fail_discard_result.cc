// compile-fail
// expect-error: nodiscard
//
// Discarding a Result<T> is discarding both the value and any error.
#include "common/status.h"

namespace {

rlbench::Result<int> ParseCount() { return 42; }

}  // namespace

int main() {
  ParseCount();  // BAD: Result (and its Status) dropped
  return 0;
}
