// Golden-file regression for the columnar Magellan feature matrix (ISSUE
// 7): a fixed corpus in tests/testdata/kernels_golden.csv, its expected
// feature matrix in tests/testdata/kernels_golden_expected.csv. Any change
// to tokenization, interning, or a kernel that moves a single feature value
// fails here with a per-feature diff naming the pair, the attribute, and
// the feature.
//
// Regenerating (after an INTENDED behaviour change — review the diff):
//   RLBENCH_REGEN_GOLDEN=1 ./text_test --gtest_filter='KernelsGolden*'
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "data/columnar.h"
#include "data/feature_cache.h"
#include "data/file_source.h"
#include "data/record.h"
#include "data/task.h"
#include "matchers/features.h"

namespace rlbench::text {
namespace {

#ifndef RLBENCH_TESTDATA_DIR
#error "RLBENCH_TESTDATA_DIR must be defined by the test build"
#endif

constexpr const char* kCorpusPath =
    RLBENCH_TESTDATA_DIR "/kernels_golden.csv";
constexpr const char* kExpectedPath =
    RLBENCH_TESTDATA_DIR "/kernels_golden_expected.csv";

const char* const kFeatureNames[matchers::kMagellanFeaturesPerAttr] = {
    "jaccard", "levenshtein", "jaro_winkler",
    "monge_elkan", "numeric", "exact_match"};

std::vector<std::string> SplitLine(std::string_view line, char sep) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t pos = line.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(line.substr(start));
      return fields;
    }
    fields.emplace_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> lines;
  for (const std::string& line : SplitLine(text, '\n')) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

struct Corpus {
  data::Table left{"left", data::Schema({"title", "brand", "price"})};
  data::Table right{"right", data::Schema({"title", "brand", "price"})};
};

Corpus LoadCorpus() {
  auto text = data::FileSource::ReadAll(kCorpusPath);
  EXPECT_TRUE(text.ok()) << "missing golden corpus: " << kCorpusPath;
  Corpus corpus;
  bool header = true;
  for (const std::string& line : SplitLines(text.ValueOr(""))) {
    if (header) {  // side,id,title,brand,price
      header = false;
      continue;
    }
    auto fields = SplitLine(line, ',');
    EXPECT_EQ(fields.size(), 5u) << "malformed corpus line: " << line;
    if (fields.size() != 5) continue;
    data::Record record{fields[1], {fields[2], fields[3], fields[4]}};
    (fields[0] == "l" ? corpus.left : corpus.right).Add(record);
  }
  return corpus;
}

// The full cross product, so the expected file covers every record against
// every record (including the adversarial empty / numeric / unicode rows).
std::vector<std::vector<float>> ExtractAllPairs(const Corpus& corpus) {
  data::RecordFeatureCache lcache(&corpus.left);
  data::RecordFeatureCache rcache(&corpus.right);
  data::ColumnarStore store(lcache, rcache);
  size_t dim =
      store.num_attrs() * matchers::kMagellanFeaturesPerAttr;
  std::vector<std::vector<float>> rows;
  for (uint32_t l = 0; l < corpus.left.size(); ++l) {
    for (uint32_t r = 0; r < corpus.right.size(); ++r) {
      std::vector<float> row(dim);
      matchers::MagellanFeaturesColumnar(store, data::LabeledPair{l, r, false},
                                         row);
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

std::string FormatExpected(const std::vector<std::vector<float>>& rows,
                           size_t num_right) {
  // %.9g round-trips every float exactly, so the file pins exact bits.
  std::string out = "left,right,features...\n";
  char buf[64];
  for (size_t i = 0; i < rows.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%zu,%zu", i / num_right, i % num_right);
    out += buf;
    for (float v : rows[i]) {
      std::snprintf(buf, sizeof(buf), ",%.9g", static_cast<double>(v));
      out += buf;
    }
    out.push_back('\n');
  }
  return out;
}

TEST(KernelsGoldenTest, FeatureMatrixMatchesGoldenFile) {
  Corpus corpus = LoadCorpus();
  ASSERT_GT(corpus.left.size(), 0u);
  ASSERT_GT(corpus.right.size(), 0u);
  auto rows = ExtractAllPairs(corpus);

  if (std::getenv("RLBENCH_REGEN_GOLDEN") != nullptr) {
    ASSERT_TRUE(data::FileSource::WriteAtomic(
                    kExpectedPath, FormatExpected(rows, corpus.right.size()))
                    .ok());
    GTEST_SKIP() << "regenerated " << kExpectedPath;
  }

  auto expected_text = data::FileSource::ReadAll(kExpectedPath);
  ASSERT_TRUE(expected_text.ok())
      << "missing golden matrix " << kExpectedPath
      << " — regenerate with RLBENCH_REGEN_GOLDEN=1";
  auto lines = SplitLines(*expected_text);
  ASSERT_EQ(lines.size(), rows.size() + 1) << "pair count drifted";

  size_t mismatches = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    auto fields = SplitLine(lines[i + 1], ',');
    ASSERT_EQ(fields.size(), rows[i].size() + 2)
        << "malformed expected line " << i + 1;
    size_t l = i / corpus.right.size();
    size_t r = i % corpus.right.size();
    for (size_t f = 0; f < rows[i].size(); ++f) {
      float want = std::strtof(fields[f + 2].c_str(), nullptr);
      float got = rows[i][f];
      if (got != want) {
        ++mismatches;
        size_t attr = f / matchers::kMagellanFeaturesPerAttr;
        const char* name = kFeatureNames[f % matchers::kMagellanFeaturesPerAttr];
        ADD_FAILURE() << "pair (" << corpus.left.record(l).id << ", "
                      << corpus.right.record(r).id << ") attr "
                      << corpus.left.schema().attribute(attr) << " feature "
                      << name << ": expected " << want << " got " << got
                      << "  [left=\"" << corpus.left.record(l).values[attr]
                      << "\" right=\"" << corpus.right.record(r).values[attr]
                      << "\"]";
      }
    }
  }
  EXPECT_EQ(mismatches, 0u);
}

}  // namespace
}  // namespace rlbench::text
