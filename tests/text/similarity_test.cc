#include "text/similarity.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rlbench::text {
namespace {

TokenSet Set(std::vector<std::string> tokens) { return TokenSet(tokens); }

TEST(SetSimilarityTest, ExactValues) {
  TokenSet a = Set({"a", "b", "c"});
  TokenSet b = Set({"b", "c", "d", "e"});
  // |A∩B| = 2, |A| = 3, |B| = 4, |A∪B| = 5.
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 2.0 / std::sqrt(12.0));
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(DiceSimilarity(a, b), 4.0 / 7.0);
  EXPECT_DOUBLE_EQ(OverlapSimilarity(a, b), 2.0 / 3.0);
}

TEST(SetSimilarityTest, IdenticalSetsAreOne) {
  TokenSet a = Set({"x", "y"});
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(DiceSimilarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(OverlapSimilarity(a, a), 1.0);
}

TEST(SetSimilarityTest, DisjointSetsAreZero) {
  TokenSet a = Set({"x"});
  TokenSet b = Set({"y"});
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(DiceSimilarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(OverlapSimilarity(a, b), 0.0);
}

TEST(SetSimilarityTest, EmptySets) {
  TokenSet empty;
  TokenSet a = Set({"x"});
  EXPECT_DOUBLE_EQ(CosineSimilarity(empty, a), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(DiceSimilarity(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(OverlapSimilarity(empty, a), 0.0);
}

// Paper Section III-A: Dice is monotone in Jaccard (Dice = 2J/(1+J)), so it
// adds no threshold-sweep information. Verify the functional relation.
TEST(SetSimilarityTest, DiceIsMonotoneFunctionOfJaccard) {
  TokenSet a = Set({"a", "b", "c", "d"});
  TokenSet b = Set({"c", "d", "e"});
  double j = JaccardSimilarity(a, b);
  double d = DiceSimilarity(a, b);
  EXPECT_NEAR(d, 2.0 * j / (1.0 + j), 1e-12);
}

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
}

TEST(LevenshteinTest, SimilarityNormalisation) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("kitten", "sitting"), 1.0 - 3.0 / 7.0,
              1e-12);
}

TEST(JaroTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", ""), 0.0);
  // Classic reference: JARO("MARTHA","MARHTA") = 0.944444...
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.944444, 1e-5);
  // JARO("DWAYNE","DUANE") = 0.822222...
  EXPECT_NEAR(JaroSimilarity("DWAYNE", "DUANE"), 0.822222, 1e-5);
}

TEST(JaroWinklerTest, KnownValues) {
  // JW("MARTHA","MARHTA") = 0.961111...
  EXPECT_NEAR(JaroWinklerSimilarity("MARTHA", "MARHTA"), 0.961111, 1e-5);
  // JW("DIXON","DICKSONX") = 0.813333...
  EXPECT_NEAR(JaroWinklerSimilarity("DIXON", "DICKSONX"), 0.813333, 1e-5);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("same", "same"), 1.0);
}

TEST(JaroWinklerTest, NeverBelowJaro) {
  const char* pairs[][2] = {{"apple", "apply"}, {"micro", "macro"},
                            {"data", "date"},   {"abcdef", "fedcba"}};
  for (auto& p : pairs) {
    EXPECT_GE(JaroWinklerSimilarity(p[0], p[1]), JaroSimilarity(p[0], p[1]));
  }
}

TEST(MongeElkanTest, IdenticalTokenLists) {
  std::vector<std::string> a = {"john", "smith"};
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity(a, a), 1.0);
}

TEST(MongeElkanTest, PartialOverlap) {
  std::vector<std::string> a = {"john", "smith"};
  std::vector<std::string> b = {"jon", "smith"};
  double sim = MongeElkanSimilarity(a, b);
  EXPECT_GT(sim, 0.8);
  EXPECT_LT(sim, 1.0);
}

TEST(MongeElkanTest, EmptyCases) {
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity({"a"}, {}), 0.0);
}

TEST(PrefixSimilarityTest, Values) {
  EXPECT_DOUBLE_EQ(PrefixSimilarity("abcd", "abxy"), 0.5);
  EXPECT_DOUBLE_EQ(PrefixSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(PrefixSimilarity("abc", "xbc"), 0.0);
  EXPECT_DOUBLE_EQ(PrefixSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(PrefixSimilarity("a", ""), 0.0);
}

TEST(ExactMatchTest, CaseInsensitive) {
  EXPECT_DOUBLE_EQ(ExactMatchSimilarity("ABC", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(ExactMatchSimilarity("abc", "abd"), 0.0);
}

TEST(NumericSimilarityTest, Values) {
  EXPECT_DOUBLE_EQ(NumericSimilarity("100", "100"), 1.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity("100", "50"), 0.5);
  EXPECT_DOUBLE_EQ(NumericSimilarity("0", "0"), 1.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity("abc", "100"), 0.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity("", "1"), 0.0);
  EXPECT_NEAR(NumericSimilarity("19.99", "21.99"), 1.0 - 2.0 / 21.99, 1e-9);
}

// Property sweep: all set similarities stay in [0,1] and are symmetric on
// arbitrary token-set pairs.
class SetSimilarityPropertyTest
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(SetSimilarityPropertyTest, BoundedAndSymmetric) {
  auto [s1, s2] = GetParam();
  TokenSet a = TokenSet::FromText(s1);
  TokenSet b = TokenSet::FromText(s2);
  for (auto fn : {CosineSimilarity, JaccardSimilarity, DiceSimilarity,
                  OverlapSimilarity}) {
    double ab = fn(a, b);
    double ba = fn(b, a);
    EXPECT_DOUBLE_EQ(ab, ba);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
  }
  // Ordering property: Jaccard <= Dice <= Overlap on non-empty sets.
  if (!a.empty() && !b.empty()) {
    EXPECT_LE(JaccardSimilarity(a, b), DiceSimilarity(a, b) + 1e-12);
    EXPECT_LE(DiceSimilarity(a, b), OverlapSimilarity(a, b) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, SetSimilarityPropertyTest,
    ::testing::Values(
        std::pair("apple iphone 14 pro", "apple iphone 14"),
        std::pair("dblp conference on vldb", "acm sigmod conference"),
        std::pair("", "nonempty text here"),
        std::pair("a b c d e f", "a b c d e f"),
        std::pair("samsung galaxy s22 ultra 256gb", "galaxy s22 128gb"),
        std::pair("x", "y")));

}  // namespace
}  // namespace rlbench::text
