// Metric-space property sweeps for the string distances: identity,
// symmetry and the triangle inequality for Levenshtein; boundedness and
// symmetry for the normalised similarities on random word pairs.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "text/similarity.h"

namespace rlbench::text {
namespace {

std::vector<std::string> RandomWords(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> words;
  for (size_t i = 0; i < n; ++i) {
    size_t len = 1 + rng.Index(12);
    std::string w;
    for (size_t j = 0; j < len; ++j) {
      w.push_back(static_cast<char>('a' + rng.UniformInt(0, 25)));
    }
    words.push_back(std::move(w));
  }
  return words;
}

TEST(LevenshteinPropertyTest, MetricAxioms) {
  auto words = RandomWords(12, 61);
  for (const auto& a : words) {
    EXPECT_EQ(LevenshteinDistance(a, a), 0u);
    for (const auto& b : words) {
      EXPECT_EQ(LevenshteinDistance(a, b), LevenshteinDistance(b, a));
      for (const auto& c : words) {
        EXPECT_LE(LevenshteinDistance(a, c),
                  LevenshteinDistance(a, b) + LevenshteinDistance(b, c))
            << a << " " << b << " " << c;
      }
    }
  }
}

class StringSimilarityPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(StringSimilarityPropertyTest, BoundedSymmetricIdentity) {
  auto words = RandomWords(20, 100 + GetParam());
  using Fn = double (*)(std::string_view, std::string_view);
  Fn functions[] = {LevenshteinSimilarity, JaroSimilarity,
                    JaroWinklerSimilarity, PrefixSimilarity,
                    NeedlemanWunschSimilarity, SmithWatermanSimilarity};
  for (Fn fn : functions) {
    for (const auto& a : words) {
      EXPECT_DOUBLE_EQ(fn(a, a), 1.0);
      for (const auto& b : words) {
        double ab = fn(a, b);
        EXPECT_GE(ab, 0.0);
        EXPECT_LE(ab, 1.0);
        EXPECT_NEAR(ab, fn(b, a), 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StringSimilarityPropertyTest,
                         ::testing::Values(1, 2, 3));

TEST(SimilarityOrderingTest, TypoCloserThanRandom) {
  // A one-edit variant must score higher than an unrelated word under
  // every edit-aware similarity — the property the corruption model and
  // the q-gram matchers rely on.
  auto words = RandomWords(15, 77);
  Rng rng(78);
  size_t violations = 0;
  size_t checks = 0;
  for (const auto& w : words) {
    if (w.size() < 4) continue;
    std::string typo = w;
    typo[rng.Index(typo.size())] =
        static_cast<char>('a' + rng.UniformInt(0, 25));
    for (const auto& other : words) {
      if (other == w || other.size() < 2) continue;
      ++checks;
      if (LevenshteinSimilarity(w, typo) < LevenshteinSimilarity(w, other)) {
        ++violations;
      }
    }
  }
  ASSERT_GT(checks, 0u);
  EXPECT_LT(static_cast<double>(violations) / static_cast<double>(checks),
            0.05);
}

}  // namespace
}  // namespace rlbench::text
