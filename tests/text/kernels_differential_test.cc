// Differential harness for the vectorized kernels (ISSUE 7): every kernel
// in text/kernels.h is replayed against its retained scalar reference
// (text/similarity.h, embed/vector_ops.h, ml::Mlp::PredictScore) over
// randomized corpora and adversarial inputs. BIT-EXACT kernels are held to
// exact double equality; the single TOLERANCE kernel (DotBlocked) is held
// to its documented 1e-6 relative bound. A final sweep re-runs the batch
// paths at 1/2/7 threads with the observability and fault gates toggled
// and asserts byte-identical output.
#include "text/kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iterator>
#include <string>
#include <string_view>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/strings.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "embed/vector_ops.h"
#include "fault/failpoint.h"
#include "matchers/context.h"
#include "matchers/features.h"
#include "ml/dataset.h"
#include "ml/mlp.h"
#include "obs/metrics.h"
#include "text/qgrams.h"
#include "text/similarity.h"
#include "text/tokenizer.h"

namespace rlbench::text::kernels {
namespace {

constexpr uint64_t kBaseSeed = 0xD1FF5EED;

// Small vocabulary so random records overlap often enough to exercise the
// non-trivial intersection branches, not just the zero case.
std::string RandomToken(Rng& rng) {
  static const char* kWords[] = {"apple",  "galaxy", "pro",   "max",  "mini",
                                 "ultra",  "14",     "22",    "128",  "256",
                                 "black",  "silver", "phone", "case", "usb",
                                 "type",   "c",      "oled",  "hd",   "zzz"};
  return kWords[rng.Index(std::size(kWords))];
}

std::string RandomValue(Rng& rng, size_t max_tokens) {
  size_t n = rng.Index(max_tokens + 1);
  std::string value;
  for (size_t i = 0; i < n; ++i) {
    if (!value.empty()) value.push_back(' ');
    value += RandomToken(rng);
  }
  return value;
}

// Random byte string over letters/digits/punctuation/UTF-8 multibyte runs,
// for the edit-distance and Jaro kernels.
std::string RandomRawString(Rng& rng, size_t max_len) {
  static const std::string_view kPieces[] = {
      "a", "b", "c", "x", "1", "9", " ", "-", ".", "é", "ü", "ß", "漢", "字"};
  size_t n = rng.Index(max_len + 1);
  std::string s;
  while (s.size() < n) s += kPieces[rng.Index(std::size(kPieces))];
  return s;
}

// Rank-interned uint32 ids of a token set: the same construction
// ColumnarStore uses, reproduced locally so the kernel layer is tested
// without the store.
std::vector<std::vector<uint32_t>> InternToIds(
    const std::vector<TokenSet>& sets) {
  std::vector<uint64_t> vocab;
  for (const auto& set : sets) {
    vocab.insert(vocab.end(), set.hashes().begin(), set.hashes().end());
  }
  std::sort(vocab.begin(), vocab.end());
  vocab.erase(std::unique(vocab.begin(), vocab.end()), vocab.end());
  std::vector<std::vector<uint32_t>> ids(sets.size());
  for (size_t i = 0; i < sets.size(); ++i) {
    for (uint64_t hash : sets[i].hashes()) {
      auto it = std::lower_bound(vocab.begin(), vocab.end(), hash);
      ids[i].push_back(static_cast<uint32_t>(it - vocab.begin()));
    }
  }
  return ids;
}

TEST(KernelsDifferentialTest, SetKernelsMatchScalarOverRandomCorpus) {
  Rng rng(SplitSeed(kBaseSeed, 1));
  constexpr size_t kRecords = 160;  // 160*159/2 = 12720 pairs >= 10k
  std::vector<TokenSet> sets;
  sets.reserve(kRecords);
  // Adversarial shapes first: empty, single-token, all-identical tokens.
  sets.emplace_back(std::vector<std::string>{});
  sets.emplace_back(std::vector<std::string>{"apple"});
  sets.emplace_back(
      std::vector<std::string>{"apple", "apple", "apple", "apple"});
  while (sets.size() < kRecords) {
    sets.emplace_back(Tokenize(RandomValue(rng, 12)));
  }
  auto ids = InternToIds(sets);

  size_t pairs = 0;
  for (size_t i = 0; i < sets.size(); ++i) {
    for (size_t j = i; j < sets.size(); ++j) {
      const TokenSet& a = sets[i];
      const TokenSet& b = sets[j];
      std::span<const uint32_t> ia = ids[i];
      std::span<const uint32_t> ib = ids[j];
      // Rank interning preserves intersection counts exactly.
      ASSERT_EQ(IntersectSortedU32(ia, ib), a.IntersectionSize(b));
      ASSERT_EQ(IntersectSortedU64(a.hashes(), b.hashes()),
                a.IntersectionSize(b));
      EXPECT_EQ(JaccardSortedU32(ia, ib), JaccardSimilarity(a, b));
      EXPECT_EQ(OverlapSortedU32(ia, ib), OverlapSimilarity(a, b));
      EXPECT_EQ(ContainmentSortedU32(ia, ib), ContainmentSimilarity(a, b));
      SetSims sims = SetFamilySortedU32(ia, ib);
      EXPECT_EQ(sims.cosine, CosineSimilarity(a, b));
      EXPECT_EQ(sims.dice, DiceSimilarity(a, b));
      EXPECT_EQ(sims.jaccard, JaccardSimilarity(a, b));
      SetSims sims64 = SetFamilySortedU64(a.hashes(), b.hashes());
      EXPECT_EQ(sims64.cosine, CosineSimilarity(a, b));
      EXPECT_EQ(sims64.jaccard, JaccardSimilarity(a, b));
      ++pairs;
    }
  }
  EXPECT_GE(pairs, 10000u);
}

TEST(KernelsDifferentialTest, JaccardBatchMatchesPerPairKernel) {
  Rng rng(SplitSeed(kBaseSeed, 11));
  // Sizes straddle every internal dispatch boundary of the batched kernel
  // (0, the 8-lane register path, the 16-lane path, and the merge
  // fallback), ids include rank 0, and both sides take a turn being the
  // smaller set.
  constexpr size_t kSizes[] = {0, 1, 2, 7, 8, 9, 15, 16, 17, 25, 40};
  std::vector<std::vector<uint32_t>> sets;
  for (size_t n : kSizes) {
    for (int rep = 0; rep < 6; ++rep) {
      std::vector<uint32_t> ids;
      uint32_t next = rep < 3 ? 0 : static_cast<uint32_t>(rng.UniformInt(1, 50));
      for (size_t i = 0; i < n; ++i) {
        ids.push_back(next);
        next += static_cast<uint32_t>(rng.UniformInt(1, 4));
      }
      sets.push_back(std::move(ids));
    }
  }
  std::vector<U32SetPair> batch;
  std::vector<double> expected;
  for (const auto& a : sets) {
    for (const auto& b : sets) {
      batch.push_back({a.data(), b.data(), static_cast<uint32_t>(a.size()),
                       static_cast<uint32_t>(b.size())});
      expected.push_back(JaccardSortedU32(a, b));
    }
  }
  ASSERT_GE(batch.size(), 4000u);
  std::vector<double> out(batch.size(), -1.0);
  JaccardSortedU32Batch(batch.data(), batch.size(), out.data());
  ASSERT_EQ(out, expected);
}

TEST(KernelsDifferentialTest, SetFamilyMatchesScalarOverQGramSets) {
  Rng rng(SplitSeed(kBaseSeed, 2));
  std::vector<TokenSet> sets;
  sets.push_back(QGramSet("", 3));
  for (size_t i = 0; i < 60; ++i) {
    sets.push_back(QGramSet(RandomRawString(rng, 40), 2 + i % 3));
  }
  for (const auto& a : sets) {
    for (const auto& b : sets) {
      SetSims sims = SetFamilySortedU64(a.hashes(), b.hashes());
      EXPECT_EQ(sims.cosine, CosineSimilarity(a, b));
      EXPECT_EQ(sims.dice, DiceSimilarity(a, b));
      EXPECT_EQ(sims.jaccard, JaccardSimilarity(a, b));
    }
  }
}

TEST(KernelsDifferentialTest, LevenshteinBandedIsExactOverRandomPairs) {
  Rng rng(SplitSeed(kBaseSeed, 3));
  // Random pairs plus mutated near-duplicates (the band's sweet spot) and
  // lengths beyond kLevenshteinStackCap to exercise the scalar fallback.
  for (size_t iter = 0; iter < 4000; ++iter) {
    std::string a = RandomRawString(rng, iter % 7 == 0 ? 200 : 60);
    std::string b;
    if (rng.Bernoulli(0.5)) {
      b = a;  // mutate a few positions
      for (size_t m = 0; m < 3 && !b.empty(); ++m) {
        b[rng.Index(b.size())] = static_cast<char>('a' + rng.Index(26));
      }
    } else {
      b = RandomRawString(rng, 60);
    }
    ASSERT_EQ(LevenshteinBanded(a, b), LevenshteinDistance(a, b))
        << "a=\"" << a << "\" b=\"" << b << "\"";
    EXPECT_EQ(LevenshteinSimilarityBanded(a, b), LevenshteinSimilarity(a, b));
  }
}

TEST(KernelsDifferentialTest, LevenshteinBandedAdversarialCases) {
  const std::string_view cases[] = {
      "", "a", "aa", "ab", "abcabcabc", "café münchen straße 漢字",
      std::string_view("kitten"), std::string_view("sitting"),
  };
  std::string long_a(kLevenshteinStackCap + 40, 'x');
  std::string long_b = long_a;
  long_b[7] = 'y';
  for (auto a : cases) {
    for (auto b : cases) {
      EXPECT_EQ(LevenshteinBanded(a, b), LevenshteinDistance(a, b));
    }
  }
  EXPECT_EQ(LevenshteinBanded(long_a, long_b),
            LevenshteinDistance(long_a, long_b));
}

TEST(KernelsDifferentialTest, JaroFamilyMatchesScalar) {
  Rng rng(SplitSeed(kBaseSeed, 4));
  for (size_t iter = 0; iter < 6000; ++iter) {
    // Mostly short strings (the bitmask fast path); every 9th pair exceeds
    // 64 bytes to exercise the scalar fallback.
    std::string a = RandomRawString(rng, iter % 9 == 0 ? 90 : 40);
    std::string b = RandomRawString(rng, iter % 9 == 0 ? 90 : 40);
    EXPECT_EQ(JaroKernel(a, b), JaroSimilarity(a, b))
        << "a=\"" << a << "\" b=\"" << b << "\"";
    EXPECT_EQ(JaroWinklerKernel(a, b), JaroWinklerSimilarity(a, b));
  }
  EXPECT_EQ(JaroKernel("", ""), JaroSimilarity("", ""));
  EXPECT_EQ(JaroKernel("a", ""), JaroSimilarity("a", ""));
}

TEST(KernelsDifferentialTest, MongeElkanMatchesScalar) {
  Rng rng(SplitSeed(kBaseSeed, 5));
  for (size_t iter = 0; iter < 1500; ++iter) {
    std::vector<std::string> ta = Tokenize(RandomValue(rng, 8));
    std::vector<std::string> tb = Tokenize(RandomValue(rng, 8));
    std::vector<std::string_view> va(ta.begin(), ta.end());
    std::vector<std::string_view> vb(tb.begin(), tb.end());
    EXPECT_EQ(MongeElkanKernel(va, vb), MongeElkanSimilarity(ta, tb));
  }
}

TEST(KernelsDifferentialTest, NumericAndExactMatchKernelsMatchScalar) {
  Rng rng(SplitSeed(kBaseSeed, 6));
  std::vector<std::string> values = {"", "  ", "12", "12.5", "-3e2", "nan",
                                     "inf", "0", "12 units", "x12", "1e400"};
  for (size_t i = 0; i < 400; ++i) {
    values.push_back(std::to_string(rng.Uniform(-1e6, 1e6)));
    values.push_back(RandomValue(rng, 3));
  }
  for (const auto& a : values) {
    for (const auto& b : values) {
      double xa = 0.0, xb = 0.0;
      bool oka = ParseNumeric(a, &xa);
      bool okb = ParseNumeric(b, &xb);
      EXPECT_EQ(NumericFromParsed(oka, xa, okb, xb), NumericSimilarity(a, b))
          << "a=\"" << a << "\" b=\"" << b << "\"";
      EXPECT_EQ(ExactMatchLowered(ToLowerAscii(a), ToLowerAscii(b)),
                ExactMatchSimilarity(a, b));
    }
  }
}

embed::Vec RandomVec(Rng& rng, size_t dim) {
  embed::Vec v(dim);
  for (float& x : v) x = static_cast<float>(rng.Gaussian());
  return v;
}

TEST(KernelsDifferentialTest, DenseFloatKernelsMatchEmbedOps) {
  Rng rng(SplitSeed(kBaseSeed, 7));
  for (size_t iter = 0; iter < 800; ++iter) {
    size_t dim = 1 + rng.Index(100);
    embed::Vec a = RandomVec(rng, dim);
    embed::Vec b = RandomVec(rng, dim);
    EXPECT_EQ(DotSpan(a, b), embed::Dot(a, b));
    EXPECT_EQ(CosineSimilarity01Span(a, b), embed::CosineSimilarity01(a, b));
    EXPECT_EQ(EuclideanSimilaritySpan(a, b), embed::EuclideanSimilarity(a, b));
    embed::Vec sa = a, sb = b;
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    EXPECT_EQ(WassersteinFromSorted(sa, sb), embed::WassersteinSimilarity(a, b));
  }
  embed::Vec empty;
  EXPECT_EQ(DotSpan(empty, empty), embed::Dot(empty, empty));
}

TEST(KernelsDifferentialTest, DotBlockedWithinDocumentedTolerance) {
  Rng rng(SplitSeed(kBaseSeed, 8));
  for (size_t iter = 0; iter < 500; ++iter) {
    size_t dim = 1 + rng.Index(300);
    embed::Vec a = RandomVec(rng, dim);
    embed::Vec b = RandomVec(rng, dim);
    double exact = DotSpan(a, b);
    double blocked = DotBlocked(a, b);
    double scale = std::max(1.0, std::abs(exact));
    EXPECT_NEAR(blocked, exact, 1e-6 * scale);
  }
}

TEST(KernelsDifferentialTest, BatchedAffineMatchesPerRowAccumulation) {
  Rng rng(SplitSeed(kBaseSeed, 9));
  for (size_t units : {1u, 3u, 32u}) {
    for (size_t dim : {1u, 7u, 64u}) {
      for (size_t batch : {1u, 5u, 256u}) {
        std::vector<double> w(units * dim), bias(units);
        for (double& x : w) x = rng.Gaussian();
        for (double& x : bias) x = rng.Gaussian();
        std::vector<float> xt32(dim * batch);
        std::vector<double> xt64(dim * batch);
        for (size_t i = 0; i < dim * batch; ++i) {
          xt32[i] = static_cast<float>(rng.Gaussian());
          xt64[i] = rng.Gaussian();
        }
        std::vector<double> out32(units * batch), out64(units * batch);
        BatchedAffineF32(w.data(), bias.data(), units, dim, xt32.data(), batch,
                         out32.data());
        BatchedAffineF64(w.data(), bias.data(), units, dim, xt64.data(), batch,
                         out64.data());
        // Per-row reference: the exact loop of Mlp::Forward.
        for (size_t r = 0; r < batch; ++r) {
          for (size_t i = 0; i < units; ++i) {
            double s32 = bias[i];
            double s64 = bias[i];
            for (size_t j = 0; j < dim; ++j) {
              s32 += w[i * dim + j] * xt32[j * batch + r];
              s64 += w[i * dim + j] * xt64[j * batch + r];
            }
            ASSERT_EQ(out32[i * batch + r], s32);
            ASSERT_EQ(out64[i * batch + r], s64);
          }
        }
        // The fused dual kernel must reproduce two single calls bit for
        // bit (second affine: shuffled weights over the same input).
        std::vector<double> w_b(w.rbegin(), w.rend());
        std::vector<double> bias_b(bias.rbegin(), bias.rend());
        std::vector<double> single_b(units * batch);
        std::vector<double> dual_a(units * batch), dual_b(units * batch);
        BatchedAffineF64(w_b.data(), bias_b.data(), units, dim, xt64.data(),
                         batch, single_b.data());
        DualBatchedAffineF64(w.data(), bias.data(), w_b.data(), bias_b.data(),
                             units, dim, xt64.data(), batch, dual_a.data(),
                             dual_b.data());
        ASSERT_EQ(dual_a, out64);
        ASSERT_EQ(dual_b, single_b);
      }
    }
  }
}

ml::Dataset RandomDataset(Rng& rng, size_t rows, size_t dim) {
  ml::Dataset data(dim);
  for (size_t i = 0; i < rows; ++i) {
    std::vector<float> row(dim);
    for (float& x : row) x = static_cast<float>(rng.Gaussian());
    data.Add(row, rng.Bernoulli(0.4));
  }
  return data;
}

TEST(KernelsDifferentialTest, MlpBatchScoresBitIdenticalToPerRow) {
  Rng rng(SplitSeed(kBaseSeed, 10));
  ml::MlpOptions options;
  options.epochs = 3;
  options.hidden = 16;
  ml::Mlp mlp(options);
  ml::Dataset train = RandomDataset(rng, 300, 12);
  ml::Dataset valid = RandomDataset(rng, 60, 12);
  mlp.Fit(train, valid);
  // 600 rows spans multiple panels including a ragged tail.
  ml::Dataset test = RandomDataset(rng, 600, 12);
  std::vector<double> batch(test.size());
  mlp.PredictScoresBatch(test, batch);
  for (size_t i = 0; i < test.size(); ++i) {
    ASSERT_EQ(batch[i], mlp.PredictScore(test.row(i))) << "row " << i;
  }
}

// End-to-end: the columnar Magellan extraction must be bit-identical to the
// row-oriented reference, at every thread count, with the observability and
// fault gates on or off.
TEST(KernelsDifferentialTest, ColumnarFeaturesInvariantAcrossThreadsAndGates) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds5"), 0.5);

  auto extract = [&]() {
    matchers::MatchingContext context(&task);
    size_t dim = task.left().schema().num_attributes() *
                 matchers::kMagellanFeaturesPerAttr;
    std::vector<float> rows;
    rows.reserve(task.train().size() * dim);
    for (const auto& pair : task.train()) {
      std::vector<float> row(dim);
      matchers::MagellanFeaturesColumnar(context.columnar(), pair, row);
      // Row-oriented scalar reference, same pair.
      auto reference =
          matchers::MagellanFeatures(context.left(), context.right(), pair);
      for (size_t f = 0; f < dim; ++f) {
        EXPECT_EQ(row[f], reference[f]) << "feature " << f;
      }
      rows.insert(rows.end(), row.begin(), row.end());
    }
    return rows;
  };

  std::vector<float> baseline = extract();
  struct Config {
    int threads;
    bool metrics;
    bool faults;
  };
  const Config configs[] = {
      {1, false, false}, {2, true, false}, {7, false, true}, {7, true, true}};
  for (const Config& config : configs) {
    SetParallelThreads(config.threads);
    obs::Metrics::SetEnabled(config.metrics);
    if (config.faults) {
      // Degrades the cache warm-up to a serial fill; values must not move.
      ASSERT_TRUE(
          fault::SetSpec("seed=7;data/feature_cache/warm=alloc:1").ok());
    }
    std::vector<float> got = extract();
    fault::Clear();
    obs::Metrics::SetEnabled(false);
    SetParallelThreads(0);
    ASSERT_EQ(got.size(), baseline.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], baseline[i])
          << "threads=" << config.threads << " metrics=" << config.metrics
          << " faults=" << config.faults << " slot " << i;
    }
  }
}

}  // namespace
}  // namespace rlbench::text::kernels
