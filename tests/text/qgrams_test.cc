#include "text/qgrams.h"

#include <gtest/gtest.h>

namespace rlbench::text {
namespace {

TEST(QGramsTest, BasicBigrams) {
  auto grams = QGrams("abcd", 2);
  ASSERT_EQ(grams.size(), 3u);
  EXPECT_EQ(grams[0], "ab");
  EXPECT_EQ(grams[1], "bc");
  EXPECT_EQ(grams[2], "cd");
}

TEST(QGramsTest, LowercasesInput) {
  auto grams = QGrams("AB", 2);
  ASSERT_EQ(grams.size(), 1u);
  EXPECT_EQ(grams[0], "ab");
}

TEST(QGramsTest, ShortStringYieldsWholeString) {
  auto grams = QGrams("ab", 3);
  ASSERT_EQ(grams.size(), 1u);
  EXPECT_EQ(grams[0], "ab");
}

TEST(QGramsTest, EmptyAndInvalidQ) {
  EXPECT_TRUE(QGrams("", 2).empty());
  EXPECT_TRUE(QGrams("abc", 0).empty());
}

TEST(QGramSetTest, DifferentQDoNotAlias) {
  // The 2-gram set of "ab" and the 3-gram set of "ab" both contain the
  // whole string "ab", but the q-salt must keep them distinct.
  TokenSet two = QGramSet("ab", 2);
  TokenSet three = QGramSet("ab", 3);
  EXPECT_EQ(two.IntersectionSize(three), 0u);
}

TEST(QGramSetTest, SimilarStringsShareGrams) {
  TokenSet a = QGramSet("databases", 3);
  TokenSet b = QGramSet("database", 3);
  EXPECT_GT(a.IntersectionSize(b), 4u);
}

class QGramRangeTest : public ::testing::TestWithParam<int> {};

TEST_P(QGramRangeTest, CountMatchesFormula) {
  int q = GetParam();
  std::string s = "record linkage";
  auto grams = QGrams(s, q);
  if (static_cast<int>(s.size()) <= q) {
    EXPECT_EQ(grams.size(), 1u);
  } else {
    EXPECT_EQ(grams.size(), s.size() - q + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllQ, QGramRangeTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace rlbench::text
