#include "text/tfidf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rlbench::text {
namespace {

TfIdfModel BuildModel() {
  TfIdfModel model;
  model.AddDocument({"apple", "iphone", "case"});
  model.AddDocument({"apple", "macbook", "pro"});
  model.AddDocument({"samsung", "galaxy", "case"});
  model.AddDocument({"apple", "watch"});
  model.Finalize();
  return model;
}

TEST(TfIdfTest, RareTokensScoreHigher) {
  TfIdfModel model = BuildModel();
  EXPECT_GT(model.Idf("galaxy"), model.Idf("apple"));
  EXPECT_GT(model.Idf("never_seen"), model.Idf("apple"));
}

TEST(TfIdfTest, IdfFormula) {
  TfIdfModel model = BuildModel();
  // df(apple) = 3, N = 4 -> log(1 + 4/4) = log 2.
  EXPECT_NEAR(model.Idf("apple"), std::log(2.0), 1e-12);
}

TEST(TfIdfTest, DuplicateTokensCountOncePerDocument) {
  TfIdfModel model;
  model.AddDocument({"dup", "dup", "dup"});
  model.AddDocument({"other"});
  model.Finalize();
  // df(dup) must be 1, not 3: Idf = log(1 + 2/2) = log 2.
  EXPECT_NEAR(model.Idf("dup"), std::log(2.0), 1e-12);
}

TEST(SummarizeTest, ShortSequencesUntouched) {
  TfIdfModel model = BuildModel();
  std::vector<std::string> tokens = {"a", "b"};
  EXPECT_EQ(model.Summarize(tokens, 10), tokens);
}

TEST(SummarizeTest, KeepsHighWeightTokensInOrder) {
  TfIdfModel model = BuildModel();
  // "the"/"of" are stop-words -> dropped first; rare tokens survive.
  std::vector<std::string> tokens = {"the", "samsung", "of",
                                     "galaxy", "apple", "case"};
  auto kept = model.Summarize(tokens, 3);
  ASSERT_EQ(kept.size(), 3u);
  // Order must be preserved relative to the input.
  EXPECT_EQ(kept[0], "samsung");
  EXPECT_EQ(kept[1], "galaxy");
}

TEST(SummarizeTest, ExactBudget) {
  TfIdfModel model = BuildModel();
  std::vector<std::string> tokens(20, "word");
  auto kept = model.Summarize(tokens, 5);
  EXPECT_EQ(kept.size(), 5u);
}

}  // namespace
}  // namespace rlbench::text
