// Cross-check the hashed TokenSet machinery against a straightforward
// std::set<std::string> reference on random token soups — the hashes must
// never change intersection sizes (collisions at 64 bits are negligible,
// and any logic bug shows up immediately).
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "text/similarity.h"
#include "text/tokenizer.h"

namespace rlbench::text {
namespace {

std::vector<std::string> RandomTokens(Rng* rng, size_t max_len) {
  size_t n = rng->Index(max_len + 1);
  std::vector<std::string> tokens;
  for (size_t i = 0; i < n; ++i) {
    // Small alphabet on purpose: forces overlaps and duplicates.
    std::string t;
    size_t len = 1 + rng->Index(4);
    for (size_t j = 0; j < len; ++j) {
      t.push_back(static_cast<char>('a' + rng->UniformInt(0, 5)));
    }
    tokens.push_back(std::move(t));
  }
  return tokens;
}

TEST(TokenSetReferenceTest, IntersectionMatchesStdSet) {
  Rng rng(83);
  for (int trial = 0; trial < 200; ++trial) {
    auto ta = RandomTokens(&rng, 30);
    auto tb = RandomTokens(&rng, 30);
    TokenSet a(ta);
    TokenSet b(tb);
    std::set<std::string> sa(ta.begin(), ta.end());
    std::set<std::string> sb(tb.begin(), tb.end());
    size_t expected = 0;
    for (const auto& t : sa) expected += sb.count(t);
    EXPECT_EQ(a.IntersectionSize(b), expected) << "trial " << trial;
    EXPECT_EQ(a.size(), sa.size());
    EXPECT_EQ(b.size(), sb.size());
  }
}

TEST(TokenSetReferenceTest, SimilaritiesMatchSetFormulas) {
  Rng rng(85);
  for (int trial = 0; trial < 100; ++trial) {
    auto ta = RandomTokens(&rng, 20);
    auto tb = RandomTokens(&rng, 20);
    TokenSet a(ta);
    TokenSet b(tb);
    std::set<std::string> sa(ta.begin(), ta.end());
    std::set<std::string> sb(tb.begin(), tb.end());
    size_t inter = 0;
    for (const auto& t : sa) inter += sb.count(t);
    size_t uni = sa.size() + sb.size() - inter;
    if (!sa.empty() && !sb.empty()) {
      EXPECT_NEAR(CosineSimilarity(a, b),
                  inter / std::sqrt(double(sa.size()) * sb.size()), 1e-12);
    }
    if (uni > 0) {
      EXPECT_NEAR(JaccardSimilarity(a, b), double(inter) / uni, 1e-12);
    }
  }
}

}  // namespace
}  // namespace rlbench::text
