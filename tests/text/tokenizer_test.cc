#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace rlbench::text {
namespace {

TEST(TokenizerTest, LowercasesAndSplitsOnPunctuation) {
  auto tokens = Tokenize("Hello, World! iPhone-14 Pro");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "iphone");
  EXPECT_EQ(tokens[3], "14");
  EXPECT_EQ(tokens[4], "pro");
}

TEST(TokenizerTest, EmptyAndPurePunctuation) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("!!! --- ...").empty());
}

TEST(TokenizerTest, DigitsKept) {
  auto tokens = Tokenize("model 42b rev7");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1], "42b");
}

TEST(TokenizerTest, TokenizeAllConcatenates) {
  auto tokens = TokenizeAll({"a b", "c", "", "d e f"});
  EXPECT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens.front(), "a");
  EXPECT_EQ(tokens.back(), "f");
}

TEST(TokenSetTest, DeduplicatesTokens) {
  TokenSet set(std::vector<std::string>{"a", "b", "a", "c", "b"});
  EXPECT_EQ(set.size(), 3u);
}

TEST(TokenSetTest, IntersectionSize) {
  TokenSet a(std::vector<std::string>{"x", "y", "z"});
  TokenSet b(std::vector<std::string>{"y", "z", "w"});
  EXPECT_EQ(a.IntersectionSize(b), 2u);
  EXPECT_EQ(b.IntersectionSize(a), 2u);
}

TEST(TokenSetTest, DisjointSets) {
  TokenSet a(std::vector<std::string>{"p", "q"});
  TokenSet b(std::vector<std::string>{"r", "s"});
  EXPECT_EQ(a.IntersectionSize(b), 0u);
}

TEST(TokenSetTest, EmptySet) {
  TokenSet empty;
  TokenSet a(std::vector<std::string>{"p"});
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.IntersectionSize(a), 0u);
  EXPECT_EQ(a.IntersectionSize(empty), 0u);
}

TEST(TokenSetTest, FromTextMatchesTokenize) {
  TokenSet from_text = TokenSet::FromText("Alpha beta ALPHA");
  TokenSet manual(std::vector<std::string>{"alpha", "beta"});
  EXPECT_EQ(from_text, manual);
}

TEST(TokenSetTest, SelfIntersectionIsSize) {
  TokenSet a = TokenSet::FromText("one two three four");
  EXPECT_EQ(a.IntersectionSize(a), a.size());
}

}  // namespace
}  // namespace rlbench::text
