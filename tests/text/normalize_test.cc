#include "text/normalize.h"

#include <gtest/gtest.h>

namespace rlbench::text {
namespace {

TEST(StopWordsTest, DetectsCommonWords) {
  EXPECT_TRUE(IsStopWord("the"));
  EXPECT_TRUE(IsStopWord("and"));
  EXPECT_FALSE(IsStopWord("database"));
}

TEST(StopWordsTest, RemoveStopWordsFilters) {
  auto out = RemoveStopWords({"the", "quick", "and", "brown", "fox"});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "quick");
  EXPECT_EQ(out[1], "brown");
  EXPECT_EQ(out[2], "fox");
}

TEST(StemTest, Plurals) {
  EXPECT_EQ(Stem("databases"), "database");
  EXPECT_EQ(Stem("glasses"), "glass");  // -sses -> -ss
  EXPECT_EQ(Stem("cats"), "cat");
}

TEST(StemTest, Suffixes) {
  EXPECT_EQ(Stem("matching"), "match");
  EXPECT_EQ(Stem("linked"), "link");
  EXPECT_EQ(Stem("quickly"), "quick");
}

TEST(StemTest, ShortWordsUntouched) {
  EXPECT_EQ(Stem("is"), "is");
  EXPECT_EQ(Stem("bus"), "bus");
  EXPECT_EQ(Stem("a"), "a");
}

TEST(StemTest, Idempotent) {
  for (const char* word :
       {"databases", "matching", "linked", "records", "evaluation"}) {
    std::string once = Stem(word);
    EXPECT_EQ(Stem(once), Stem(once));
  }
}

TEST(CleanTextTest, FullPipeline) {
  std::string cleaned = CleanText("The Matching of the Records");
  EXPECT_EQ(cleaned, "match record");
}

TEST(CleanTextTest, EmptyInput) { EXPECT_EQ(CleanText(""), ""); }

}  // namespace
}  // namespace rlbench::text
