// Tests for the alignment-based similarities and TF-IDF-weighted measures.
#include <gtest/gtest.h>

#include "text/similarity.h"
#include "text/tfidf.h"

namespace rlbench::text {
namespace {

TEST(NeedlemanWunschTest, IdenticalAndDisjoint) {
  EXPECT_DOUBLE_EQ(NeedlemanWunschSimilarity("match", "match"), 1.0);
  EXPECT_DOUBLE_EQ(NeedlemanWunschSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(NeedlemanWunschSimilarity("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(NeedlemanWunschSimilarity("aaaa", "zzzz"), 0.0);
}

TEST(NeedlemanWunschTest, SingleGap) {
  // "abcd" vs "abd": 3 matches + 1 gap = 3 - 0.5 = 2.5, / 4 = 0.625.
  EXPECT_NEAR(NeedlemanWunschSimilarity("abcd", "abd"), 0.625, 1e-12);
}

TEST(SmithWatermanTest, LocalAlignmentIgnoresFlanks) {
  // The shared core "nikon d750" aligns locally despite different flanks.
  double sim = SmithWatermanSimilarity("xxxx nikon d750 yyyy",
                                       "nikon d750 camera body");
  EXPECT_GT(sim, 0.4);
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("same", "same"), 1.0);
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("", "x"), 0.0);
}

TEST(SmithWatermanTest, AtLeastGlobalOnSuffixedStrings) {
  // Local alignment never scores below the global one when one string is
  // a flanked version of the other.
  std::string core = "record linkage";
  std::string flanked = "the " + core + " problem";
  EXPECT_GE(SmithWatermanSimilarity(core, flanked) + 1e-12,
            NeedlemanWunschSimilarity(core, flanked));
}

class WeightedSimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    model_.AddDocument({"apple", "iphone", "case"});
    model_.AddDocument({"apple", "macbook", "pro"});
    model_.AddDocument({"samsung", "galaxy", "case"});
    model_.AddDocument({"rare", "token"});
    model_.Finalize();
  }
  TfIdfModel model_;
};

TEST_F(WeightedSimTest, IdenticalIsOne) {
  std::vector<std::string> tokens = {"apple", "iphone"};
  EXPECT_NEAR(model_.WeightedCosine(tokens, tokens), 1.0, 1e-9);
}

TEST_F(WeightedSimTest, RareSharedTokenOutweighsCommonOne) {
  // Sharing the rare "rare" must score higher than sharing the common
  // "apple" (same-length token lists).
  double rare = model_.WeightedCosine({"rare", "iphone"}, {"rare", "galaxy"});
  double common = model_.WeightedCosine({"apple", "iphone"},
                                        {"apple", "galaxy"});
  EXPECT_GT(rare, common);
}

TEST_F(WeightedSimTest, DisjointIsZero) {
  EXPECT_DOUBLE_EQ(model_.WeightedCosine({"apple"}, {"galaxy"}), 0.0);
  EXPECT_DOUBLE_EQ(model_.WeightedCosine({}, {"x"}), 0.0);
}

TEST_F(WeightedSimTest, SoftTfIdfMatchesTypos) {
  // "iphonee" has no exact counterpart but Jaro-Winkler-matches "iphone",
  // so the soft variant scores higher than the exact-token cosine.
  double hard = model_.WeightedCosine({"apple", "iphonee"},
                                      {"apple", "iphone"});
  double soft = model_.SoftTfIdf({"apple", "iphonee"}, {"apple", "iphone"});
  EXPECT_GT(soft, hard);
  EXPECT_LE(soft, 1.0);
}

TEST_F(WeightedSimTest, SoftTfIdfThresholdGates) {
  // Below the JW threshold the soft match must not fire.
  double strict = model_.SoftTfIdf({"zebra"}, {"iphone"}, 0.95);
  EXPECT_DOUBLE_EQ(strict, 0.0);
}

}  // namespace
}  // namespace rlbench::text
