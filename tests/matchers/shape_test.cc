// Shape tests: the taxonomy-level behavioural claims the paper's analysis
// rests on, verified on scaled-down benchmarks.
#include <gtest/gtest.h>

#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "matchers/dl_sims.h"
#include "matchers/magellan.h"

namespace rlbench::matchers {
namespace {

/// Run one matcher on a freshly built benchmark.
double F1On(const std::string& id, double scale, Matcher* matcher) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark(id), scale);
  MatchingContext context(&task);
  return matcher->TestF1(context);
}

TEST(ShapeTest, DirtyDataHurtsSchemaAwareMoreThanSchemaFree) {
  // Section V-B / Table IV: moving values into the title (Dd4 vs Ds4)
  // collapses Magellan's per-attribute features while the heterogeneous
  // transformer-style matchers barely move.
  MagellanMatcher magellan(MagellanClassifier::kRandomForest);
  DlMatcher transformer(DlMethod::kEmTransformerR, 15);

  double magellan_clean = F1On("Ds4", 0.15, &magellan);
  double magellan_dirty = F1On("Dd4", 0.15, &magellan);
  double transformer_clean = F1On("Ds4", 0.15, &transformer);
  double transformer_dirty = F1On("Dd4", 0.15, &transformer);

  double magellan_drop = magellan_clean - magellan_dirty;
  double transformer_drop = transformer_clean - transformer_dirty;
  EXPECT_GT(magellan_drop, 0.1);  // Magellan collapses
  EXPECT_LT(transformer_drop, magellan_drop);  // heterogeneous holds up
}

TEST(ShapeTest, EveryMatcherSaturatesOnEasyBenchmark) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds7"), 0.6);
  MatchingContext context(&task);
  DlMatcher dm(DlMethod::kDeepMatcher, 15);
  DlMatcher emt(DlMethod::kEmTransformerB, 15);
  MagellanMatcher rf(MagellanClassifier::kRandomForest);
  for (Matcher* matcher :
       std::initializer_list<Matcher*>{&dm, &emt, &rf}) {
    EXPECT_GT(matcher->TestF1(context), 0.9) << matcher->name();
  }
}

TEST(ShapeTest, GnemCompetitionSuppressesDominatedPairs) {
  // GNEM's global step must not hurt on a benchmark full of sibling pairs
  // that share records with true matches, relative to its own local scores
  // (EMTransformer-B uses the same embedding family).
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds3"), 1.0);
  MatchingContext context(&task);
  DlMatcher gnem(DlMethod::kGnem, 15);
  DlMatcher local(DlMethod::kEmTransformerB, 15);
  double gnem_f1 = gnem.TestF1(context);
  double local_f1 = local.TestF1(context);
  EXPECT_GT(gnem_f1, local_f1 - 0.1);
}

TEST(ShapeTest, DittoAugmentationChangesTraining) {
  // DITTO differs from a plain transformer matcher through augmentation
  // and summarisation; its predictions must not be byte-identical to
  // EMTransformer-R's on a non-trivial task.
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds4"), 0.08);
  MatchingContext context(&task);
  DlMatcher ditto(DlMethod::kDitto, 15);
  DlMatcher emt(DlMethod::kEmTransformerR, 15);
  EXPECT_NE(ditto.Run(context), emt.Run(context));
}

}  // namespace
}  // namespace rlbench::matchers
