#include "matchers/context.h"

#include <gtest/gtest.h>

#include "datagen/catalog.h"
#include "datagen/task_builder.h"

namespace rlbench::matchers {
namespace {

TEST(ContextTest, TfIdfCoversBothTables) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds5"), 1.0);
  MatchingContext context(&task);
  EXPECT_EQ(context.tfidf().num_documents(),
            task.left().size() + task.right().size());
}

TEST(ContextTest, FrequentDomainTokensGetLowIdf) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds5"), 1.0);
  MatchingContext context(&task);
  // Every beer record carries a style word; a style that occurs often must
  // score below a token that never occurs.
  double common = context.tfidf().Idf("ipa");
  double unseen = context.tfidf().Idf("zzzznevertoken");
  EXPECT_LT(common, unseen);
}

TEST(ContextTest, CachesBelongToTheirTables) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds5"), 0.5);
  MatchingContext context(&task);
  EXPECT_EQ(&context.left().table(), &task.left());
  EXPECT_EQ(&context.right().table(), &task.right());
}

TEST(ContextTest, MagellanDatasetsShareLabelsWithTask) {
  auto task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds5"), 1.0);
  MatchingContext context(&task);
  const auto& train = context.MagellanTrain();
  ASSERT_EQ(train.size(), task.train().size());
  for (size_t i = 0; i < train.size(); ++i) {
    EXPECT_EQ(train.label(i), task.train()[i].is_match);
  }
}

}  // namespace
}  // namespace rlbench::matchers
