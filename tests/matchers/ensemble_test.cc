// EnsembleLink: training-free by construction (the fitted model is
// independent of the labels), snapshot round trips are bit-exact, Run()
// equals TrainModel()+ScoreBatch, and the zero-shot group stays out of
// the practical measures.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/blob.h"
#include "core/practical.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "matchers/context.h"
#include "matchers/ensemble_link.h"
#include "matchers/registry.h"
#include "matchers/trained_model.h"

namespace rlbench::matchers {
namespace {

class EnsembleLinkTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    task_ = new data::MatchingTask(datagen::BuildExistingBenchmark(
        *datagen::FindExistingBenchmark("Ds7"), 0.5));
  }
  static void TearDownTestSuite() {
    delete task_;
    task_ = nullptr;
  }

  static std::string Snapshot(const TrainedModel& model) {
    BlobWriter writer;
    SerializeTrainedModel(model, &writer);
    return writer.Release();
  }

  static data::MatchingTask* task_;
};

data::MatchingTask* EnsembleLinkTest::task_ = nullptr;

TEST_F(EnsembleLinkTest, RunEqualsTrainedModelScoring) {
  EnsembleLinkMatcher matcher;
  matchers::MatchingContext context(task_);
  std::vector<uint8_t> direct = matcher.Run(context);
  ASSERT_EQ(direct.size(), task_->test().size());

  matchers::MatchingContext fresh(task_);
  auto model = matcher.TrainModel(fresh);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ((*model)->kind(), TrainedModelKind::kEnsembleLink);
  EXPECT_EQ((*model)->matcher_name(), "EnsembleLink");
  EXPECT_EQ((*model)->num_attrs(),
            task_->left().schema().num_attributes());
  (*model)->PrepareContext(fresh);
  std::vector<double> scores(task_->test().size());
  std::vector<uint8_t> decisions(task_->test().size());
  ASSERT_TRUE(
      (*model)->ScoreBatch(fresh, task_->test(), scores, decisions).ok());
  EXPECT_EQ(decisions, direct);
  for (size_t i = 0; i < scores.size(); ++i) {
    EXPECT_GE(scores[i], 0.0);
    EXPECT_LE(scores[i], 1.0);
    EXPECT_EQ(decisions[i] != 0, (*model)->DecideFromScore(scores[i]));
  }
}

// The defining property: no labels are read, so relabeling every training
// pair changes nothing about the exported model.
TEST_F(EnsembleLinkTest, ModelBytesAreInvariantUnderLabelPermutation) {
  matchers::MatchingContext context(task_);
  EnsembleLinkMatcher matcher;
  auto model = matcher.TrainModel(context);
  ASSERT_TRUE(model.ok()) << model.status();

  data::MatchingTask flipped = *task_;
  std::vector<data::LabeledPair> train = flipped.train();
  for (data::LabeledPair& pair : train) pair.is_match = !pair.is_match;
  flipped.set_train(std::move(train));
  matchers::MatchingContext hostile(&flipped);
  auto relabeled = matcher.TrainModel(hostile);
  ASSERT_TRUE(relabeled.ok()) << relabeled.status();

  EXPECT_EQ(Snapshot(**model), Snapshot(**relabeled));
}

TEST_F(EnsembleLinkTest, SnapshotRoundTripIsBitExact) {
  matchers::MatchingContext context(task_);
  EnsembleLinkOptions options;
  options.vote_fraction = 0.375;
  options.thresholds[4] = 0.25;
  options.weights[0] = 11.0;
  EnsembleLinkMatcher matcher(options);
  auto model = matcher.TrainModel(context);
  ASSERT_TRUE(model.ok()) << model.status();

  std::string bytes = Snapshot(**model);
  BlobReader reader(bytes);
  auto restored = DeserializeTrainedModel(&reader);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ((*restored)->kind(), TrainedModelKind::kEnsembleLink);
  EXPECT_EQ((*restored)->num_attrs(), (*model)->num_attrs());
  EXPECT_EQ((*restored)->decision_threshold(), options.vote_fraction);
  // Re-serializing the restored model reproduces the exact bytes, and the
  // restored model scores the exact bits of the original.
  EXPECT_EQ(Snapshot(**restored), bytes);
  (*model)->PrepareContext(context);
  std::vector<double> original(task_->test().size());
  std::vector<double> roundtrip(task_->test().size());
  std::vector<uint8_t> decisions(task_->test().size());
  ASSERT_TRUE(
      (*model)->ScoreBatch(context, task_->test(), original, decisions).ok());
  ASSERT_TRUE((*restored)
                  ->ScoreBatch(context, task_->test(), roundtrip, decisions)
                  .ok());
  EXPECT_EQ(original, roundtrip);
}

TEST_F(EnsembleLinkTest, CorruptPayloadsAreRejected) {
  matchers::MatchingContext context(task_);
  EnsembleLinkMatcher matcher;
  auto model = matcher.TrainModel(context);
  ASSERT_TRUE(model.ok()) << model.status();
  std::string bytes = Snapshot(**model);

  std::string truncated = bytes.substr(0, bytes.size() / 2);
  BlobReader short_reader(truncated);
  EXPECT_FALSE(DeserializeTrainedModel(&short_reader).ok());

  // A vote fraction outside [0, 1] fails the plausibility checks.
  BlobWriter writer;
  writer.WriteU8(static_cast<uint8_t>(TrainedModelKind::kEnsembleLink));
  writer.WriteU64((*model)->num_attrs());
  writer.WriteDouble(7.5);
  writer.WriteU64(0x2E17);
  writer.WriteDoubleVec(std::vector<double>(kEnsembleSignals, 0.5));
  writer.WriteDoubleVec(std::vector<double>(kEnsembleSignals, 1.0));
  std::string bogus = writer.Release();
  BlobReader bogus_reader(bogus);
  EXPECT_FALSE(DeserializeTrainedModel(&bogus_reader).ok());
}

TEST_F(EnsembleLinkTest, RegisteredAsServableAndInTheLineup) {
  auto names = ServableMatcherNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "EnsembleLink"),
            names.end());
  matchers::MatchingContext context(task_);
  auto model = TrainServableMatcher("EnsembleLink", context);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ((*model)->kind(), TrainedModelKind::kEnsembleLink);
}

TEST_F(EnsembleLinkTest, ZeroShotGroupIsExcludedFromPracticalMeasures) {
  std::vector<core::MatcherScore> scores = {
      {"HighEps-DL", MatcherGroup::kDeepLearning, 0.90},
      {"Magellan-RF", MatcherGroup::kClassicMl, 0.85},
      {"SA-ESDE", MatcherGroup::kLinear, 0.70},
  };
  core::PracticalMeasures without = core::ComputePractical(scores);
  // A zero-shot row that would dominate every field if it were counted.
  scores.push_back({"EnsembleLink", MatcherGroup::kZeroShot, 0.99});
  core::PracticalMeasures with = core::ComputePractical(scores);
  EXPECT_EQ(with.non_linear_boost, without.non_linear_boost);
  EXPECT_EQ(with.learning_based_margin, without.learning_based_margin);
  EXPECT_EQ(with.best_nonlinear_f1, without.best_nonlinear_f1);
  EXPECT_EQ(with.best_linear_f1, without.best_linear_f1);
}

}  // namespace
}  // namespace rlbench::matchers
