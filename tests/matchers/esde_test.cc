#include "matchers/esde.h"

#include <gtest/gtest.h>

#include "datagen/catalog.h"
#include "datagen/task_builder.h"

namespace rlbench::matchers {
namespace {

class EsdeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    task_ = new data::MatchingTask(datagen::BuildExistingBenchmark(
        *datagen::FindExistingBenchmark("Ds7"), 0.5));
    context_ = new MatchingContext(task_);
  }
  static void TearDownTestSuite() {
    delete context_;
    delete task_;
    context_ = nullptr;
    task_ = nullptr;
  }
  static data::MatchingTask* task_;
  static MatchingContext* context_;
};

data::MatchingTask* EsdeTest::task_ = nullptr;
MatchingContext* EsdeTest::context_ = nullptr;

TEST_F(EsdeTest, FeatureCounts) {
  EXPECT_EQ(EsdeFeatureCount(EsdeVariant::kSchemaAgnostic, 5), 3u);
  EXPECT_EQ(EsdeFeatureCount(EsdeVariant::kSchemaBased, 5), 15u);
  EXPECT_EQ(EsdeFeatureCount(EsdeVariant::kSchemaAgnosticQgram, 5), 27u);
  EXPECT_EQ(EsdeFeatureCount(EsdeVariant::kSchemaBasedQgram, 5), 135u);
  EXPECT_EQ(EsdeFeatureCount(EsdeVariant::kSchemaAgnosticSent, 5), 3u);
  EXPECT_EQ(EsdeFeatureCount(EsdeVariant::kSchemaBasedSent, 5), 15u);
}

TEST_F(EsdeTest, AllVariantsRunAndScoreWell) {
  // Ds7 is the easy benchmark: every linear variant must do well.
  for (auto variant :
       {EsdeVariant::kSchemaAgnostic, EsdeVariant::kSchemaBased,
        EsdeVariant::kSchemaAgnosticQgram, EsdeVariant::kSchemaBasedQgram,
        EsdeVariant::kSchemaAgnosticSent, EsdeVariant::kSchemaBasedSent}) {
    EsdeMatcher matcher(variant);
    double f1 = matcher.TestF1(*context_);
    EXPECT_GT(f1, 0.7) << EsdeVariantName(variant);
    EXPECT_GE(matcher.best_feature(), 0);
    EXPECT_GT(matcher.best_threshold(), 0.0);
    EXPECT_LT(matcher.best_threshold(), 1.0);
  }
}

TEST_F(EsdeTest, PredictionsMatchTestSize) {
  EsdeMatcher matcher(EsdeVariant::kSchemaAgnostic);
  auto predictions = matcher.Run(*context_);
  EXPECT_EQ(predictions.size(), task_->test().size());
}

TEST_F(EsdeTest, DeterministicAcrossRuns) {
  EsdeMatcher a(EsdeVariant::kSchemaAgnosticSent);
  EsdeMatcher b(EsdeVariant::kSchemaAgnosticSent);
  EXPECT_EQ(a.Run(*context_), b.Run(*context_));
}

TEST_F(EsdeTest, NamesMatchPaper) {
  EXPECT_EQ(EsdeMatcher(EsdeVariant::kSchemaAgnostic).name(), "SA-ESDE");
  EXPECT_EQ(EsdeMatcher(EsdeVariant::kSchemaBasedQgram).name(), "SBQ-ESDE");
  EXPECT_EQ(EsdeMatcher(EsdeVariant::kSchemaAgnosticSent).name(), "SAS-ESDE");
}

}  // namespace
}  // namespace rlbench::matchers
