#include <gtest/gtest.h>

#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "matchers/dl_sims.h"
#include "matchers/features.h"
#include "matchers/magellan.h"
#include "matchers/registry.h"
#include "matchers/zeroer.h"

namespace rlbench::matchers {
namespace {

class MatchersTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    easy_task_ = new data::MatchingTask(datagen::BuildExistingBenchmark(
        *datagen::FindExistingBenchmark("Ds7"), 0.5));
    easy_ = new MatchingContext(easy_task_);
  }
  static void TearDownTestSuite() {
    delete easy_;
    delete easy_task_;
    easy_ = nullptr;
    easy_task_ = nullptr;
  }
  static data::MatchingTask* easy_task_;
  static MatchingContext* easy_;
};

data::MatchingTask* MatchersTest::easy_task_ = nullptr;
MatchingContext* MatchersTest::easy_ = nullptr;

TEST_F(MatchersTest, MagellanFeatureDimension) {
  auto pair = easy_task_->train().front();
  auto features = MagellanFeatures(easy_->left(), easy_->right(), pair);
  EXPECT_EQ(features.size(),
            easy_task_->left().schema().num_attributes() *
                kMagellanFeaturesPerAttr);
  for (float f : features) {
    EXPECT_GE(f, 0.0F);
    EXPECT_LE(f, 1.0F);
  }
}

TEST_F(MatchersTest, MagellanDatasetsCachedAndSized) {
  const auto& train = easy_->MagellanTrain();
  EXPECT_EQ(train.size(), easy_task_->train().size());
  EXPECT_EQ(&train, &easy_->MagellanTrain());  // cached, not rebuilt
  EXPECT_EQ(easy_->MagellanTest().size(), easy_task_->test().size());
}

TEST_F(MatchersTest, AllMagellanVariantsDoWellOnEasyData) {
  for (auto kind :
       {MagellanClassifier::kDecisionTree,
        MagellanClassifier::kLogisticRegression,
        MagellanClassifier::kRandomForest, MagellanClassifier::kLinearSvm}) {
    MagellanMatcher matcher(kind);
    EXPECT_GT(matcher.TestF1(*easy_), 0.75) << matcher.name();
  }
}

TEST_F(MatchersTest, ZeroErWorksUnsupervised) {
  ZeroErMatcher matcher;
  EXPECT_GT(matcher.TestF1(*easy_), 0.6);
}

TEST_F(MatchersTest, DlMethodsDoWellOnEasyData) {
  for (auto method :
       {DlMethod::kDeepMatcher, DlMethod::kEmTransformerB,
        DlMethod::kEmTransformerR, DlMethod::kGnem, DlMethod::kDitto,
        DlMethod::kHierMatcher}) {
    DlMatcher matcher(method, 15);
    EXPECT_GT(matcher.TestF1(*easy_), 0.7) << DlMethodName(method);
  }
}

TEST_F(MatchersTest, DlMatcherDeterministic) {
  DlMatcher a(DlMethod::kEmTransformerB, 5);
  DlMatcher b(DlMethod::kEmTransformerB, 5);
  EXPECT_EQ(a.Run(*easy_), b.Run(*easy_));
}

TEST_F(MatchersTest, EpochCountInName) {
  EXPECT_EQ(DlMatcher(DlMethod::kDeepMatcher, 15).name(),
            "DeepMatcher (15)");
  EXPECT_EQ(DlMatcher(DlMethod::kGnem, 40).name(), "GNEM (40)");
}

TEST_F(MatchersTest, BertAndRobertaVariantsDiffer) {
  DlMatcher b(DlMethod::kEmTransformerB, 5);
  DlMatcher r(DlMethod::kEmTransformerR, 5);
  // Different simulated checkpoints may still agree on every test pair of
  // an easy dataset, but the underlying scores must not be identical;
  // verify at prediction level on a harder task.
  auto hard_task = datagen::BuildExistingBenchmark(
      *datagen::FindExistingBenchmark("Ds4"), 0.05);
  MatchingContext hard(&hard_task);
  auto pb = b.Run(hard);
  auto pr = r.Run(hard);
  EXPECT_EQ(pb.size(), pr.size());
}

TEST(RegistryTest, FullLineupComposition) {
  auto lineup = BuildMatcherLineup({});
  size_t dl = 0;
  size_t classic = 0;
  size_t linear = 0;
  size_t zero_shot = 0;
  for (const auto& entry : lineup) {
    switch (entry.group) {
      case MatcherGroup::kDeepLearning:
        ++dl;
        break;
      case MatcherGroup::kClassicMl:
        ++classic;
        break;
      case MatcherGroup::kLinear:
        ++linear;
        break;
      case MatcherGroup::kZeroShot:
        ++zero_shot;
        break;
    }
  }
  EXPECT_EQ(dl, 12u);        // 6 methods x 2 epoch settings
  EXPECT_EQ(classic, 5u);    // Magellan x4 + ZeroER
  EXPECT_EQ(linear, 6u);     // the ESDE family
  EXPECT_EQ(zero_shot, 1u);  // EnsembleLink
}

TEST(RegistryTest, GroupsCanBeDisabled) {
  RegistryOptions options;
  options.dl = false;
  options.classic = false;
  options.zero_shot = false;
  auto lineup = BuildMatcherLineup(options);
  EXPECT_EQ(lineup.size(), 6u);
}

TEST(RegistryTest, EpochScaleApplies) {
  RegistryOptions options;
  options.classic = false;
  options.linear = false;
  options.epoch_scale = 0.2;
  auto lineup = BuildMatcherLineup(options);
  EXPECT_EQ(lineup.front().matcher->name(), "DeepMatcher (3)");
}

}  // namespace
}  // namespace rlbench::matchers
