// ComputeWindowMeasures: the paper's difficulty measures over a live
// window must be internally consistent, label-source aware, bit-identical
// at any thread count, and unperturbed by the zero-shot arm (its row is
// excluded from the practical aggregation by group).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "common/parallel.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "drift/monitor.h"
#include "matchers/context.h"
#include "matchers/ensemble_link.h"

namespace rlbench::drift {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    task_ = new data::MatchingTask(datagen::BuildExistingBenchmark(
        *datagen::FindExistingBenchmark("Ds7"), 0.5));
  }
  static void TearDownTestSuite() {
    delete task_;
    task_ = nullptr;
  }

  /// A window where the served decisions equal the ground truth and the
  /// scores sit on the right side of 0.5.
  static std::vector<ScoredSample> PerfectWindow(size_t pairs) {
    std::vector<ScoredSample> window;
    for (size_t i = 0; i < pairs && i < task_->test().size(); ++i) {
      const data::LabeledPair& pair = task_->test()[i];
      window.push_back(ScoredSample{pair, pair.is_match ? 0.9 : 0.1,
                                    static_cast<uint8_t>(pair.is_match)});
    }
    return window;
  }

  static data::MatchingTask* task_;
};

data::MatchingTask* MonitorTest::task_ = nullptr;

TEST_F(MonitorTest, EmptyWindowYieldsZeroedDefaults) {
  matchers::MatchingContext context(task_);
  WindowMeasures measures = ComputeWindowMeasures(context, {});
  EXPECT_EQ(measures.pairs, 0u);
  EXPECT_EQ(measures.positives, 0u);
  EXPECT_EQ(measures.best_linear_f1, 0.0);
  EXPECT_EQ(measures.zero_shot_f1, -1.0);
}

TEST_F(MonitorTest, MeasuresAreInternallyConsistent) {
  matchers::MatchingContext context(task_);
  auto window = PerfectWindow(256);
  MonitorOptions options;
  options.use_truth_labels = true;
  WindowMeasures measures = ComputeWindowMeasures(context, window, options);

  EXPECT_EQ(measures.pairs, window.size());
  EXPECT_GT(measures.positives, 0u);
  EXPECT_LT(measures.positives, measures.pairs);
  EXPECT_GE(measures.f1_cs, 0.0);
  EXPECT_LE(measures.f1_cs, 1.0);
  EXPECT_GE(measures.f1_js, 0.0);
  EXPECT_LE(measures.f1_js, 1.0);
  EXPECT_EQ(measures.best_linear_f1,
            std::max(measures.f1_cs, measures.f1_js));
  EXPECT_GE(measures.threshold_cs, 0.0);
  EXPECT_LE(measures.threshold_cs, 1.0);
  EXPECT_GE(measures.complexity_avg, 0.0);
  EXPECT_LE(measures.complexity_avg, 1.0);
  // Decisions equal truth, so the served F1 is exact and
  // nlb = served - best_linear by the two-row practical aggregation.
  EXPECT_EQ(measures.served_f1, 1.0);
  EXPECT_DOUBLE_EQ(measures.nlb, measures.served_f1 -
                                     measures.best_linear_f1);
  EXPECT_DOUBLE_EQ(measures.lbm, 1.0 - measures.served_f1);
}

TEST_F(MonitorTest, SelfLabelsFollowTheServedDecisions) {
  matchers::MatchingContext context(task_);
  // Served decisions disagree with truth on every pair; under self-labels
  // the window still scores the service as perfectly self-consistent.
  std::vector<ScoredSample> window;
  for (size_t i = 0; i < 128; ++i) {
    const data::LabeledPair& pair = task_->test()[i];
    window.push_back(ScoredSample{pair, pair.is_match ? 0.1 : 0.9,
                                  static_cast<uint8_t>(!pair.is_match)});
  }
  WindowMeasures self = ComputeWindowMeasures(context, window);
  EXPECT_EQ(self.served_f1, 1.0);
  size_t negatives = 0;
  for (const ScoredSample& sample : window) {
    negatives += sample.decision == 0 ? 1 : 0;
  }
  EXPECT_EQ(self.positives, window.size() - negatives);

  MonitorOptions truth;
  truth.use_truth_labels = true;
  WindowMeasures real = ComputeWindowMeasures(context, window, truth);
  EXPECT_EQ(real.served_f1, 0.0);  // every decision is wrong vs truth
  EXPECT_NE(self.positives, real.positives);
}

TEST_F(MonitorTest, ZeroShotArmIsScoredButExcludedFromTheMeasures) {
  matchers::MatchingContext context(task_);
  matchers::EnsembleLinkMatcher ensemble;
  auto arm = ensemble.TrainModel(context);
  ASSERT_TRUE(arm.ok()) << arm.status();
  (*arm)->PrepareContext(context);

  auto window = PerfectWindow(192);
  MonitorOptions options;
  options.use_truth_labels = true;
  WindowMeasures without = ComputeWindowMeasures(context, window, options);
  WindowMeasures with =
      ComputeWindowMeasures(context, window, options, arm->get());

  EXPECT_GE(with.zero_shot_f1, 0.0);
  EXPECT_LE(with.zero_shot_f1, 1.0);
  // Everything except the arm's own F1 is bit-identical: the kZeroShot
  // row never enters NLB/LBM.
  WindowMeasures masked = with;
  masked.zero_shot_f1 = without.zero_shot_f1;
  EXPECT_EQ(std::memcmp(&masked, &without, sizeof(WindowMeasures)), 0);

  context.left().Thaw();
  context.right().Thaw();
}

TEST_F(MonitorTest, MeasuresAreBitIdenticalAcrossThreadCounts) {
  auto window = PerfectWindow(256);
  MonitorOptions options;
  options.use_truth_labels = true;
  auto measures_at = [&](size_t threads) {
    SetParallelThreads(threads);
    matchers::MatchingContext context(task_);
    return ComputeWindowMeasures(context, window, options);
  };
  WindowMeasures one = measures_at(1);
  WindowMeasures two = measures_at(2);
  WindowMeasures seven = measures_at(7);
  SetParallelThreads(0);
  EXPECT_EQ(std::memcmp(&one, &two, sizeof(WindowMeasures)), 0);
  EXPECT_EQ(std::memcmp(&one, &seven, sizeof(WindowMeasures)), 0);
}

}  // namespace
}  // namespace rlbench::drift
