// WindowReservoir: admission must be a pure per-pair function of the
// seed, windows must complete exactly at window_pairs, and the counters
// must reconcile with what was offered.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "data/task.h"
#include "drift/reservoir.h"

namespace rlbench::drift {
namespace {

data::LabeledPair Pair(uint32_t left, uint32_t right) {
  return data::LabeledPair{left, right, false};
}

TEST(WindowReservoirTest, FullFractionAdmitsEverythingInOrder) {
  ReservoirOptions options;
  options.window_pairs = 4;
  WindowReservoir reservoir(options);
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(reservoir.ShouldSample(Pair(i, i + 100)));
    EXPECT_FALSE(reservoir.Offer(Pair(i, i + 100), 0.25 * i, i % 2));
  }
  EXPECT_TRUE(reservoir.Offer(Pair(3, 103), 0.75, 1));  // completes
  EXPECT_EQ(reservoir.windows_completed(), 1u);
  EXPECT_EQ(reservoir.offered(), 4u);
  EXPECT_EQ(reservoir.sampled(), 4u);
  ASSERT_EQ(reservoir.window().size(), 4u);
  // Admission order is request order; payloads travel untouched.
  EXPECT_EQ(reservoir.window()[2].pair.left, 2u);
  EXPECT_EQ(reservoir.window()[2].score, 0.5);
  EXPECT_EQ(reservoir.window()[3].decision, 1);
  reservoir.ResetWindow();
  EXPECT_TRUE(reservoir.window().empty());
  // Counters survive the reset; only the live window clears.
  EXPECT_EQ(reservoir.windows_completed(), 1u);
}

TEST(WindowReservoirTest, AdmissionIsAPureFunctionOfSeedAndPair) {
  ReservoirOptions options;
  options.sample_fraction = 0.5;
  WindowReservoir one(options);
  WindowReservoir two(options);
  size_t admitted = 0;
  for (uint32_t i = 0; i < 512; ++i) {
    data::LabeledPair pair = Pair(i, 7 * i + 1);
    bool verdict = one.ShouldSample(pair);
    // Same seed, same pair -> same fate, in any instance, any number of
    // times (no hidden stream state).
    EXPECT_EQ(verdict, two.ShouldSample(pair));
    EXPECT_EQ(verdict, one.ShouldSample(pair));
    admitted += verdict ? 1 : 0;
  }
  // The hash spreads: roughly half admitted at fraction 0.5.
  EXPECT_GT(admitted, 512 / 4);
  EXPECT_LT(admitted, 512 * 3 / 4);

  ReservoirOptions reseeded = options;
  reseeded.seed ^= 0x9E3779B97F4A7C15ULL;
  WindowReservoir other(reseeded);
  size_t disagreements = 0;
  for (uint32_t i = 0; i < 512; ++i) {
    data::LabeledPair pair = Pair(i, 7 * i + 1);
    disagreements += one.ShouldSample(pair) != other.ShouldSample(pair);
  }
  EXPECT_GT(disagreements, 0u);  // the seed actually matters
}

TEST(WindowReservoirTest, SubsampledOffersOnlyCountAdmittedPairs) {
  ReservoirOptions options;
  options.window_pairs = 16;
  options.sample_fraction = 0.25;
  WindowReservoir reservoir(options);
  uint64_t completed = 0;
  for (uint32_t i = 0; i < 4096; ++i) {
    completed += reservoir.Offer(Pair(i, i + 1), 0.0, 0) ? 1 : 0;
    if (reservoir.window().size() == options.window_pairs) {
      reservoir.ResetWindow();
    }
  }
  EXPECT_EQ(reservoir.offered(), 4096u);
  EXPECT_LT(reservoir.sampled(), reservoir.offered());
  EXPECT_EQ(reservoir.windows_completed(), completed);
  EXPECT_EQ(completed, reservoir.sampled() / options.window_pairs);
}

}  // namespace
}  // namespace rlbench::drift
