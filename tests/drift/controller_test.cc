// DriftController: hysteresis band, dwell debouncing, sticky trigger,
// explicit rearm — the reaction must fire exactly once per episode.
#include <gtest/gtest.h>

#include "drift/controller.h"

namespace rlbench::drift {
namespace {

WindowMeasures Window(double best_linear_f1, double complexity_avg) {
  WindowMeasures measures;
  measures.best_linear_f1 = best_linear_f1;
  measures.complexity_avg = complexity_avg;
  return measures;
}

// Defaults: enter below 0.80 linear F1 (or above 0.45 complexity), exit
// above 0.90 and below 0.35, dwell 2.
constexpr double kEasy = 0.95;
constexpr double kBand = 0.85;  // inside the hysteresis band
constexpr double kHard = 0.50;
constexpr double kCalm = 0.10;
constexpr double kBusy = 0.60;

TEST(DriftControllerTest, DwellDebouncesASingleNoisyWindow) {
  DriftController controller;
  EXPECT_EQ(controller.state(), DriftState::kStable);
  EXPECT_EQ(controller.Observe(Window(kHard, kCalm)), DriftState::kWatch);
  // One drifted window then recovery: no trigger, back to stable.
  EXPECT_EQ(controller.Observe(Window(kEasy, kCalm)), DriftState::kStable);
  EXPECT_EQ(controller.triggers(), 0u);
  EXPECT_EQ(controller.transitions(), 2u);
}

TEST(DriftControllerTest, HysteresisBandHoldsWatchWithoutRetriggering) {
  DriftController controller;
  EXPECT_EQ(controller.Observe(Window(kHard, kCalm)), DriftState::kWatch);
  // Inside the band: not drifted (streak resets) but not recovered either,
  // so the state holds at kWatch indefinitely.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(controller.Observe(Window(kBand, kCalm)), DriftState::kWatch);
  }
  // A fresh drifted window must still need the full dwell streak.
  EXPECT_EQ(controller.Observe(Window(kHard, kCalm)), DriftState::kWatch);
  EXPECT_EQ(controller.Observe(Window(kHard, kCalm)),
            DriftState::kTriggered);
  EXPECT_EQ(controller.triggers(), 1u);
}

TEST(DriftControllerTest, ComplexitySignalAloneCanTrigger) {
  DriftController controller;
  EXPECT_EQ(controller.Observe(Window(kEasy, kBusy)), DriftState::kWatch);
  EXPECT_EQ(controller.Observe(Window(kEasy, kBusy)), DriftState::kTriggered);
  EXPECT_EQ(controller.triggers(), 1u);
}

TEST(DriftControllerTest, TriggeredIsStickyUntilRearm) {
  DriftController controller;
  controller.Observe(Window(kHard, kCalm));
  ASSERT_EQ(controller.Observe(Window(kHard, kCalm)), DriftState::kTriggered);
  // Even fully recovered windows cannot clear the trigger: the reaction
  // owns the episode until it calls Rearm().
  EXPECT_EQ(controller.Observe(Window(kEasy, kCalm)), DriftState::kTriggered);
  EXPECT_EQ(controller.Observe(Window(kHard, kBusy)), DriftState::kTriggered);
  EXPECT_EQ(controller.triggers(), 1u);
  controller.Rearm();
  EXPECT_EQ(controller.state(), DriftState::kStable);
  // A second episode triggers again from scratch.
  controller.Observe(Window(kHard, kCalm));
  EXPECT_EQ(controller.Observe(Window(kHard, kCalm)), DriftState::kTriggered);
  EXPECT_EQ(controller.triggers(), 2u);
}

TEST(DriftControllerTest, StateNamesAreStable) {
  EXPECT_STREQ(DriftStateName(DriftState::kStable), "stable");
  EXPECT_STREQ(DriftStateName(DriftState::kWatch), "watch");
  EXPECT_STREQ(DriftStateName(DriftState::kTriggered), "triggered");
}

}  // namespace
}  // namespace rlbench::drift
