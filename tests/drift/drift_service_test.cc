// Drift monitoring wired into MatchService: disabled by default with no
// tracker at all, observation-only when enabled (served scores are
// untouched), window state independent of request batch splits and thread
// counts, and sampling restricted to full-tier scored batches.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "drift/tracker.h"
#include "matchers/context.h"
#include "matchers/registry.h"
#include "serve/service.h"

namespace rlbench::serve {
namespace {

class DriftServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    task_ = new data::MatchingTask(datagen::BuildExistingBenchmark(
        *datagen::FindExistingBenchmark("Ds7"), 0.5));
  }
  static void TearDownTestSuite() {
    delete task_;
    task_ = nullptr;
  }

  static std::shared_ptr<const matchers::TrainedModel> Train(
      const matchers::MatchingContext& context, const std::string& name) {
    context.left().Thaw();
    context.right().Thaw();
    auto trained = matchers::TrainServableMatcher(name, context);
    EXPECT_TRUE(trained.ok()) << trained.status();
    return std::shared_ptr<const matchers::TrainedModel>(std::move(*trained));
  }

  static MatchServiceOptions DriftOptions(size_t window_pairs) {
    MatchServiceOptions options;
    options.drift_enabled = true;
    options.drift.reservoir.window_pairs = window_pairs;
    options.drift.monitor.use_truth_labels = true;
    return options;
  }

  /// Serve the whole test split in `chunk`-pair requests, collecting the
  /// served scores.
  static std::vector<double> ServeAll(MatchService* service, size_t chunk) {
    std::vector<double> scores;
    const auto& test = task_->test();
    for (size_t begin = 0; begin < test.size(); begin += chunk) {
      std::vector<data::LabeledPair> request(
          test.begin() + begin,
          test.begin() + std::min(test.size(), begin + chunk));
      EXPECT_TRUE(service
                      ->Submit(std::move(request),
                               [&scores](const RequestOutcome& outcome) {
                                 EXPECT_TRUE(outcome.status.ok());
                                 for (const PairScore& r : outcome.results) {
                                   scores.push_back(r.score);
                                 }
                               })
                      .ok());
      service->Drain();
    }
    return scores;
  }

  static data::MatchingTask* task_;
};

data::MatchingTask* DriftServiceTest::task_ = nullptr;

TEST_F(DriftServiceTest, DisabledByDefaultHoldsNoTracker) {
  matchers::MatchingContext context(task_);
  MatchService service(&context);
  EXPECT_EQ(service.Drift(), nullptr);
  DriftStatus status = service.DriftSnapshot();
  EXPECT_FALSE(status.enabled);
  EXPECT_EQ(status.windows, 0u);
  DriftStatus trigger;
  EXPECT_FALSE(service.TakeDriftTrigger(&trigger));
  service.RearmDrift();  // no-op without a tracker, must not crash
}

TEST_F(DriftServiceTest, SamplingIsObservationOnly) {
  auto serve_scores = [&](bool drift_on) {
    matchers::MatchingContext context(task_);
    MatchService service(&context, drift_on ? DriftOptions(64)
                                            : MatchServiceOptions{});
    EXPECT_TRUE(service.SwapModel(Train(context, "SAQ-ESDE")).ok());
    return ServeAll(&service, 13);
  };
  auto off = serve_scores(false);
  auto on = serve_scores(true);
  ASSERT_EQ(off.size(), task_->test().size());
  EXPECT_EQ(off, on);  // bit-identical: the monitor never touches scores
}

TEST_F(DriftServiceTest, WindowStateIsIndependentOfBatchSplits) {
  auto snapshot_at = [&](size_t chunk) {
    matchers::MatchingContext context(task_);
    MatchService service(&context, DriftOptions(32));
    EXPECT_TRUE(service.SwapModel(Train(context, "Magellan-LR")).ok());
    ServeAll(&service, chunk);
    return service.DriftSnapshot();
  };
  DriftStatus three = snapshot_at(3);
  DriftStatus eleven = snapshot_at(11);
  ASSERT_TRUE(three.enabled);
  EXPECT_GT(three.windows, 1u);
  EXPECT_EQ(three.windows, eleven.windows);
  EXPECT_EQ(three.sampled_pairs, eleven.sampled_pairs);
  EXPECT_EQ(three.state, eleven.state);
  EXPECT_EQ(three.transitions, eleven.transitions);
  ASSERT_TRUE(three.has_measures);
  EXPECT_EQ(three.best_linear_f1, eleven.best_linear_f1);
  EXPECT_EQ(three.complexity_avg, eleven.complexity_avg);
  EXPECT_EQ(three.nlb, eleven.nlb);
  EXPECT_EQ(three.lbm, eleven.lbm);
}

TEST_F(DriftServiceTest, WindowStateIsBitIdenticalAcrossThreadCounts) {
  auto snapshot_at = [&](size_t threads) {
    SetParallelThreads(threads);
    matchers::MatchingContext context(task_);
    MatchService service(&context, DriftOptions(32));
    EXPECT_TRUE(service.SwapModel(Train(context, "SAQ-ESDE")).ok());
    ServeAll(&service, 7);
    return service.DriftSnapshot();
  };
  DriftStatus one = snapshot_at(1);
  DriftStatus two = snapshot_at(2);
  DriftStatus seven = snapshot_at(7);
  SetParallelThreads(0);
  ASSERT_GT(one.windows, 0u);
  EXPECT_EQ(one.windows, two.windows);
  EXPECT_EQ(one.windows, seven.windows);
  EXPECT_EQ(one.best_linear_f1, two.best_linear_f1);
  EXPECT_EQ(one.best_linear_f1, seven.best_linear_f1);
  EXPECT_EQ(one.complexity_avg, two.complexity_avg);
  EXPECT_EQ(one.complexity_avg, seven.complexity_avg);
  EXPECT_EQ(one.nlb, seven.nlb);
  EXPECT_EQ(one.lbm, seven.lbm);
  EXPECT_EQ(one.state, seven.state);
}

// Degraded-tier traffic is scored by the fallback model, not the model
// the drift loop monitors, so it must never enter the reservoir.
TEST_F(DriftServiceTest, OnlyFullTierBatchesAreSampled) {
  matchers::MatchingContext context(task_);
  MatchServiceOptions options = DriftOptions(32);
  options.queue_capacity_pairs = 64;
  options.max_batch_pairs = 64;
  options.shed_enabled = true;
  options.shed.degrade_enter_fill = 0.20;
  options.shed.degrade_exit_fill = 0.10;
  options.shed.dwell = 1;
  MatchService service(&context, options);
  ASSERT_TRUE(service.SwapModel(Train(context, "Magellan-LR")).ok());
  ASSERT_TRUE(service.SetFallbackModel(Train(context, "SAQ-ESDE")).ok());

  uint64_t full_tier_pairs = 0;
  const auto& test = task_->test();
  for (size_t begin = 0; begin + 8 <= test.size(); begin += 8) {
    std::vector<data::LabeledPair> request(test.begin() + begin,
                                           test.begin() + begin + 8);
    ASSERT_TRUE(service
                    .Submit(std::move(request),
                            [&full_tier_pairs](const RequestOutcome& o) {
                              ASSERT_TRUE(o.status.ok());
                              if (o.tier == ShedTier::kFull) {
                                full_tier_pairs += o.results.size();
                              }
                            })
                    .ok());
    // Pump every third request: the queue periodically fills past the
    // degrade threshold, so both tiers genuinely occur.
    if (begin % 24 == 16) service.Drain();
  }
  service.Drain();
  ASSERT_NE(service.Drift(), nullptr);
  EXPECT_LT(full_tier_pairs, test.size());  // some batches degraded
  EXPECT_GT(full_tier_pairs, 0u);           // and some did not
  EXPECT_EQ(service.Drift()->reservoir().offered(), full_tier_pairs);
}

}  // namespace
}  // namespace rlbench::serve
