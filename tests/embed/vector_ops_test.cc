#include "embed/vector_ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rlbench::embed {
namespace {

TEST(VectorOpsTest, DotAndNorm) {
  Vec a = {1.0F, 2.0F, 2.0F};
  Vec b = {2.0F, 0.0F, 1.0F};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0);
  EXPECT_DOUBLE_EQ(Norm(a), 3.0);
}

TEST(VectorOpsTest, CosineKnownAngles) {
  Vec x = {1.0F, 0.0F};
  Vec y = {0.0F, 1.0F};
  Vec neg_x = {-1.0F, 0.0F};
  EXPECT_NEAR(Cosine(x, x), 1.0, 1e-12);
  EXPECT_NEAR(Cosine(x, y), 0.0, 1e-12);
  EXPECT_NEAR(Cosine(x, neg_x), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(CosineSimilarity01(x, neg_x), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity01(x, x), 1.0);
}

TEST(VectorOpsTest, ZeroVectorCosineIsZero) {
  Vec z = {0.0F, 0.0F};
  Vec x = {1.0F, 0.0F};
  EXPECT_DOUBLE_EQ(Cosine(z, x), 0.0);
}

TEST(VectorOpsTest, EuclideanDistanceAndSimilarity) {
  Vec a = {0.0F, 0.0F};
  Vec b = {3.0F, 4.0F};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanSimilarity(a, b), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(EuclideanSimilarity(a, a), 1.0);
}

TEST(VectorOpsTest, WassersteinIsPermutationInvariant) {
  Vec a = {0.1F, 0.9F, 0.5F};
  Vec shuffled = {0.9F, 0.5F, 0.1F};
  EXPECT_DOUBLE_EQ(WassersteinSimilarity(a, shuffled), 1.0);
}

TEST(VectorOpsTest, WassersteinKnownValue) {
  Vec a = {0.0F, 0.0F};
  Vec b = {1.0F, 1.0F};
  // Sorted coordinate distributions differ by 1 everywhere: W = 1.
  EXPECT_DOUBLE_EQ(WassersteinSimilarity(a, b), 0.5);
}

TEST(VectorOpsTest, L2Normalize) {
  Vec a = {3.0F, 4.0F};
  L2NormalizeInPlace(&a);
  EXPECT_NEAR(Norm(a), 1.0, 1e-6);
  Vec zero = {0.0F, 0.0F};
  L2NormalizeInPlace(&zero);  // must not divide by zero
  EXPECT_DOUBLE_EQ(Norm(zero), 0.0);
}

TEST(VectorOpsTest, AxpyAndScale) {
  Vec a = {1.0F, 1.0F};
  Vec b = {2.0F, 4.0F};
  AxpyInPlace(&a, 0.5F, b);
  EXPECT_FLOAT_EQ(a[0], 2.0F);
  EXPECT_FLOAT_EQ(a[1], 3.0F);
  ScaleInPlace(&a, 2.0F);
  EXPECT_FLOAT_EQ(a[0], 4.0F);
}

TEST(VectorOpsTest, InteractionFeaturesLayout) {
  Vec a = {1.0F, 2.0F};
  Vec b = {3.0F, 1.0F};
  Vec f = InteractionFeatures(a, b);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_FLOAT_EQ(f[0], 2.0F);  // |1-3|
  EXPECT_FLOAT_EQ(f[1], 1.0F);  // |2-1|
  EXPECT_FLOAT_EQ(f[2], 3.0F);  // 1*3
  EXPECT_FLOAT_EQ(f[3], 2.0F);  // 2*1
}

}  // namespace
}  // namespace rlbench::embed
