#include <gtest/gtest.h>

#include "embed/context_encoder.h"
#include "embed/hashed_embedding.h"
#include "embed/sentence_encoder.h"
#include "text/tfidf.h"

namespace rlbench::embed {
namespace {

TEST(HashedEmbeddingTest, DeterministicAcrossInstances) {
  HashedEmbedding a(32, 7);
  HashedEmbedding b(32, 7);
  EXPECT_EQ(a.EmbedToken("record"), b.EmbedToken("record"));
}

TEST(HashedEmbeddingTest, SeedChangesVectors) {
  HashedEmbedding a(32, 7);
  HashedEmbedding b(32, 8);
  EXPECT_NE(a.EmbedToken("record"), b.EmbedToken("record"));
}

TEST(HashedEmbeddingTest, UnitNormTokens) {
  HashedEmbedding model(64, 3);
  for (const char* token : {"alpha", "beta", "x", "1234"}) {
    EXPECT_NEAR(Norm(model.EmbedToken(token)), 1.0, 1e-5);
  }
}

TEST(HashedEmbeddingTest, EmptyTokenIsZero) {
  HashedEmbedding model(16, 3);
  EXPECT_DOUBLE_EQ(Norm(model.EmbedToken("")), 0.0);
  EXPECT_DOUBLE_EQ(Norm(model.EmbedTokens({})), 0.0);
}

TEST(HashedEmbeddingTest, SubwordRobustness) {
  // Typo'd tokens must stay much closer than unrelated tokens — this is the
  // fastText property every "static" DL matcher depends on.
  HashedEmbedding model(64, 11);
  double typo = Cosine(model.EmbedToken("wireless"),
                       model.EmbedToken("wirelss"));
  double unrelated = Cosine(model.EmbedToken("wireless"),
                            model.EmbedToken("keyboard"));
  EXPECT_GT(typo, 0.3);
  EXPECT_GT(typo, unrelated + 0.25);
}

TEST(HashedEmbeddingTest, TokenOrderInvariantPooling) {
  HashedEmbedding model(32, 5);
  Vec a = model.EmbedTokens({"red", "laptop", "stand"});
  Vec b = model.EmbedTokens({"stand", "red", "laptop"});
  // Mean pooling ignores order (up to float summation order).
  EXPECT_NEAR(Cosine(a, b), 1.0, 1e-6);
}

TEST(SentenceEncoderTest, SimilarTextsCloser) {
  SentenceEncoder encoder(64, 9);
  Vec a = encoder.Encode("apple iphone 14 pro max");
  Vec b = encoder.Encode("apple iphone 14 pro");
  Vec c = encoder.Encode("dblp conference proceedings 2019");
  EXPECT_GT(Cosine(a, b), Cosine(a, c) + 0.2);
}

TEST(ContextEncoderTest, ContextChangesTokenVectors) {
  text::TfIdfModel tfidf;
  tfidf.AddDocument({"bank", "river", "water"});
  tfidf.AddDocument({"bank", "money", "loan"});
  tfidf.Finalize();
  ContextEncoder encoder(32, 13, 1, &tfidf);
  auto river = encoder.EncodeTokens({"bank", "river", "water"});
  auto money = encoder.EncodeTokens({"bank", "money", "loan"});
  // The vector of "bank" must depend on its context (the dynamic property).
  EXPECT_NE(river[0], money[0]);
  // But identical contexts give identical vectors (determinism).
  auto river2 = encoder.EncodeTokens({"bank", "river", "water"});
  EXPECT_EQ(river[0], river2[0]);
}

TEST(ContextEncoderTest, VariantSaltDecorrelates) {
  text::TfIdfModel tfidf;
  tfidf.Finalize();
  ContextEncoder bert(32, 13, 1, &tfidf);
  ContextEncoder roberta(32, 13, 2, &tfidf);
  EXPECT_NE(bert.EncodeSequence({"entity", "matching"}),
            roberta.EncodeSequence({"entity", "matching"}));
}

TEST(ContextEncoderTest, SequenceVectorUnitNorm) {
  text::TfIdfModel tfidf;
  tfidf.Finalize();
  ContextEncoder encoder(32, 13, 1, &tfidf);
  EXPECT_NEAR(Norm(encoder.EncodeSequence({"a", "b", "c"})), 1.0, 1e-5);
  EXPECT_DOUBLE_EQ(Norm(encoder.EncodeSequence({})), 0.0);
}

}  // namespace
}  // namespace rlbench::embed
