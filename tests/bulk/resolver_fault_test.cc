// The degradation contract under a shard IO fault storm: failing shards
// record the failed phase in their manifests and drop out, surviving
// shards finish with their exact no-fault results, and the run only
// errors when every shard is lost.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bulk/options.h"
#include "bulk/resolver.h"
#include "data/file_source.h"
#include "datagen/bulk_source.h"
#include "datagen/spec.h"
#include "fault/failpoint.h"

namespace rlbench::bulk {
namespace {

datagen::SourceDatasetSpec FaultSpec() {
  datagen::SourceDatasetSpec spec;
  spec.id = "bulk_fault";
  spec.d1_name = "FA";
  spec.d2_name = "FB";
  spec.domain = datagen::Domain::kProduct;
  spec.d1_size = 100;
  spec.d2_size = 140;
  spec.matches = 30;
  spec.seed = 41;
  return spec;
}

class ResolverFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "rlbench_bulk_fault";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fault::Clear();
    std::filesystem::remove_all(dir_);
  }

  BulkOptions Options(const std::string& run_name) {
    BulkOptions options;
    options.mode = BulkMode::kMinHash;
    options.shards = 4;
    options.spill_dir = (dir_ / run_name / "spill").string();
    options.manifest_dir = (dir_ / run_name / "manifests").string();
    options.manifest_stem = run_name;
    return options;
  }

  std::filesystem::path dir_;
};

TEST_F(ResolverFaultTest, ReadFaultStormDegradesPerShard) {
  datagen::BulkSourceGenerator source(FaultSpec());

  // Baseline without faults: every shard's outcome, for comparison.
  auto clean = BulkResolve(source, Options("clean"));
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  ASSERT_EQ(clean->shards_failed, 0u);
  ASSERT_GT(clean->matches.size(), 0u);

  // Shard reads run serially in shard order, so an always-on clause
  // capped at two hits kills exactly the first two shards' read phases.
  ASSERT_TRUE(
      fault::SetSpec("seed=11;data/file/read_stream=io:1:max=2").ok());
  auto stormy = BulkResolve(source, Options("storm"));
  fault::Clear();

  // Degraded, not dead: the resolve itself succeeds.
  ASSERT_TRUE(stormy.ok()) << stormy.status().ToString();
  EXPECT_EQ(stormy->shards_failed, 2u);
  ASSERT_EQ(stormy->shards.size(), 4u);
  EXPECT_FALSE(stormy->shards[0].status.ok());
  EXPECT_FALSE(stormy->shards[1].status.ok());
  EXPECT_TRUE(stormy->shards[2].status.ok());
  EXPECT_TRUE(stormy->shards[3].status.ok());

  // Survivors produce their exact no-fault results; the sharding is
  // deterministic, so their per-shard accounting matches the baseline.
  for (size_t shard : {size_t{2}, size_t{3}}) {
    EXPECT_EQ(stormy->shards[shard].entries, clean->shards[shard].entries);
    EXPECT_EQ(stormy->shards[shard].candidates,
              clean->shards[shard].candidates);
    EXPECT_EQ(stormy->shards[shard].matched, clean->shards[shard].matched);
  }

  // And the degraded match set is a subset of the clean one.
  std::set<std::pair<uint64_t, uint64_t>> clean_pairs;
  for (const MatchedPair& match : clean->matches) {
    clean_pairs.insert({match.left, match.right});
  }
  for (const MatchedPair& match : stormy->matches) {
    EXPECT_TRUE(clean_pairs.count({match.left, match.right}))
        << match.left << "," << match.right;
  }

  // Every shard wrote a manifest; failed shards carry a failed "read"
  // phase, survivors are clean and report their peak RSS.
  for (size_t shard = 0; shard < 4; ++shard) {
    const ShardOutcome& outcome = stormy->shards[shard];
    ASSERT_FALSE(outcome.manifest_path.empty());
    auto manifest = data::FileSource::ReadAll(outcome.manifest_path);
    ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
    EXPECT_NE(manifest->find("\"peak_rss_bytes\""), std::string::npos);
    EXPECT_NE(manifest->find("\"name\": \"read\""), std::string::npos);
    if (shard < 2) {
      EXPECT_NE(manifest->find("\"status\": \"failed\""), std::string::npos)
          << *manifest;
      // A shard that died reading never reached the later phases.
      EXPECT_EQ(manifest->find("\"name\": \"score\""), std::string::npos);
    } else {
      EXPECT_EQ(manifest->find("\"status\": \"failed\""), std::string::npos)
          << *manifest;
      EXPECT_NE(manifest->find("\"name\": \"score\""), std::string::npos);
    }
  }
}

TEST_F(ResolverFaultTest, SpillWriteFaultPoisonsShardsNotTheRun) {
  datagen::BulkSourceGenerator source(FaultSpec());
  // Fail one flush through its entire WriteAtomic retry budget (three
  // attempts): the shard whose flush it strikes is poisoned at spill time
  // and surfaces as a failed shard downstream.
  ASSERT_TRUE(
      fault::SetSpec("seed=5;data/file/tmp_write=io:1:max=3").ok());
  auto result = BulkResolve(source, Options("poison"));
  fault::Clear();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->shards_failed, 1u);
  size_t failed = 0;
  for (const ShardOutcome& outcome : result->shards) {
    if (!outcome.status.ok()) ++failed;
  }
  EXPECT_EQ(failed, 1u);
}

TEST_F(ResolverFaultTest, AllShardsLostIsARunError) {
  datagen::BulkSourceGenerator source(FaultSpec());
  ASSERT_TRUE(fault::SetSpec("seed=2;data/file/read_stream=io:1").ok());
  auto result = BulkResolve(source, Options("total_loss"));
  fault::Clear();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace rlbench::bulk
