// The determinism contract of BulkResolve, enforced at the byte level:
// the serialized match output is identical for every thread count, every
// shard count, and with the obs/fault gates armed or idle — and the
// min-band MinHash pipeline reproduces the in-memory blocker's candidate
// set exactly once stop buckets are out of the picture.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "block/minhash_blocking.h"
#include "bulk/options.h"
#include "bulk/resolver.h"
#include "common/parallel.h"
#include "datagen/bulk_source.h"
#include "datagen/spec.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlbench::bulk {
namespace {

datagen::SourceDatasetSpec InvarianceSpec() {
  datagen::SourceDatasetSpec spec;
  spec.id = "bulk_inv";
  spec.d1_name = "IA";
  spec.d2_name = "IB";
  spec.domain = datagen::Domain::kProduct;
  spec.d1_size = 120;
  spec.d2_size = 160;
  spec.matches = 40;
  spec.seed = 29;
  return spec;
}

class ResolverInvarianceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "rlbench_bulk_inv";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    SetParallelThreads(0);
    obs::Metrics::SetEnabled(false);
    obs::SetTraceFile("");
    fault::Clear();
    std::filesystem::remove_all(dir_);
  }

  // One full resolve under the given knob settings; returns the exact
  // serialized output. `gates` arms metrics, tracing, and an inert
  // (probability-zero) fault clause, all of which must be invisible in
  // the bytes.
  std::string Resolve(const datagen::BulkSourceGenerator& source,
                      BulkMode mode, size_t threads, size_t shards,
                      bool gates, BulkResult* out = nullptr) {
    if (gates) {
      obs::Metrics::SetEnabled(true);
      obs::SetTraceFile((dir_ / "trace.json").string());
      EXPECT_TRUE(
          fault::SetSpec("seed=3;data/file/read_stream=io:0").ok());
    }
    SetParallelThreads(threads);

    BulkOptions options;
    options.mode = mode;
    options.shards = shards;
    options.spill_dir = (dir_ / "spill").string();
    auto resolved = BulkResolve(source, options);

    SetParallelThreads(0);
    obs::Metrics::SetEnabled(false);
    obs::SetTraceFile("");
    fault::Clear();
    std::filesystem::remove_all(dir_ / "spill");

    EXPECT_TRUE(resolved.ok()) << resolved.status().ToString();
    if (!resolved.ok()) return {};
    EXPECT_EQ(resolved->shards_failed, 0u);
    if (out != nullptr) *out = *resolved;
    return SerializeMatches(resolved->matches);
  }

  std::filesystem::path dir_;
};

TEST_F(ResolverInvarianceTest, BytesAreInvariantAcrossThreadsShardsGates) {
  datagen::BulkSourceGenerator source(InvarianceSpec());
  for (BulkMode mode :
       {BulkMode::kSortedNeighborhood, BulkMode::kMinHash}) {
    BulkResult base_result;
    std::string base = Resolve(source, mode, 1, 1, /*gates=*/false,
                               &base_result);
    ASSERT_FALSE(base.empty());
    // A degenerate run would make the identity below vacuous.
    ASSERT_GT(base_result.matches.size(), 0u)
        << BulkModeName(mode) << ": no matches to compare";
    EXPECT_EQ(base_result.records_streamed, 280u);

    for (size_t threads : {size_t{1}, size_t{2}, size_t{7}}) {
      for (size_t shards : {size_t{1}, size_t{4}, size_t{16}}) {
        for (bool gates : {false, true}) {
          if (threads == 1 && shards == 1 && !gates) continue;
          SCOPED_TRACE(std::string(BulkModeName(mode)) +
                       " threads=" + std::to_string(threads) +
                       " shards=" + std::to_string(shards) +
                       " gates=" + (gates ? "on" : "off"));
          BulkResult result;
          EXPECT_EQ(Resolve(source, mode, threads, shards, gates, &result),
                    base);
          EXPECT_EQ(result.records_streamed, base_result.records_streamed);
          EXPECT_EQ(result.candidate_pairs, base_result.candidate_pairs);
        }
      }
    }
  }
}

// The sharded sorted-neighborhood pair set against an independent
// in-test model: sort every record by (key, side, position) under the
// same strict order and slide the window — with threshold 0 the matched
// set IS the candidate set, so the two must agree exactly.
TEST_F(ResolverInvarianceTest, SnMatchesTheWindowReferenceModel) {
  datagen::BulkSourceGenerator source(InvarianceSpec());
  BulkOptions options;
  options.mode = BulkMode::kSortedNeighborhood;
  options.shards = 5;
  options.threshold = 0.0;
  options.spill_dir = (dir_ / "spill").string();
  auto resolved = BulkResolve(source, options);
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();

  struct RefEntry {
    std::string key;
    uint8_t side;
    uint64_t position;
  };
  std::vector<RefEntry> entries;
  for (uint8_t side : {uint8_t{0}, uint8_t{1}}) {
    for (uint64_t p = 0; p < source.size(side); ++p) {
      entries.push_back({SortedNeighborhoodKey(source.RecordAt(side, p),
                                               options.sn.key_tokens),
                         side, p});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const RefEntry& a, const RefEntry& b) {
              if (a.key != b.key) return a.key < b.key;
              if (a.side != b.side) return a.side < b.side;
              return a.position < b.position;
            });
  std::set<std::pair<uint64_t, uint64_t>> expected;
  for (size_t i = 0; i < entries.size(); ++i) {
    size_t limit = std::min(entries.size(), i + options.sn.window);
    for (size_t j = i + 1; j < limit; ++j) {
      if (entries[i].side == entries[j].side) continue;
      const RefEntry& left = entries[i].side == 0 ? entries[i] : entries[j];
      const RefEntry& right = entries[i].side == 0 ? entries[j] : entries[i];
      expected.insert({left.position, right.position});
    }
  }

  std::set<std::pair<uint64_t, uint64_t>> actual;
  for (const MatchedPair& match : resolved->matches) {
    actual.insert({match.left, match.right});
  }
  EXPECT_EQ(actual, expected);
}

// With stop buckets disabled (a huge cap) and threshold 0, the sharded
// min-band pipeline must produce exactly the in-memory MinHashBlocking
// candidate set over the collected tables.
TEST_F(ResolverInvarianceTest, MinHashMatchesTheInMemoryBlocker) {
  datagen::BulkSourceGenerator source(InvarianceSpec());
  BulkOptions options;
  options.mode = BulkMode::kMinHash;
  options.shards = 7;
  options.threshold = 0.0;
  options.minhash.max_bucket_size = 1u << 30;
  options.spill_dir = (dir_ / "spill").string();
  auto resolved = BulkResolve(source, options);
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();

  datagen::SourcePair pair = source.Materialize();
  block::MinHashOptions legacy = options.minhash;
  std::set<std::pair<uint64_t, uint64_t>> expected;
  for (const auto& [l, r] :
       block::MinHashBlocking(pair.d1, pair.d2, legacy)) {
    expected.insert({l, r});
  }
  ASSERT_GT(expected.size(), 0u);

  std::set<std::pair<uint64_t, uint64_t>> actual;
  for (const MatchedPair& match : resolved->matches) {
    actual.insert({match.left, match.right});
  }
  EXPECT_EQ(actual, expected);
}

}  // namespace
}  // namespace rlbench::bulk
