// Bit-identity contract of the streaming dataset generator: RecordAt is a
// pure function of (spec, side, position), so streaming, chunked
// streaming, random access, and the collected SourcePair all agree byte
// for byte — and the ground-truth positions invert the permutation
// correctly.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "datagen/bulk_source.h"
#include "datagen/spec.h"

namespace rlbench::datagen {
namespace {

SourceDatasetSpec SmallSpec() {
  SourceDatasetSpec spec;
  spec.id = "bulk_test";
  spec.d1_name = "TA";
  spec.d2_name = "TB";
  spec.domain = Domain::kProduct;
  spec.d1_size = 60;
  spec.d2_size = 80;
  spec.matches = 25;
  spec.match_noise = 0.3;
  spec.sibling_density = 0.4;
  spec.seed = 11;
  return spec;
}

TEST(BulkSourceTest, SizesMirrorLegacyFloors) {
  BulkSourceGenerator source(SmallSpec());
  EXPECT_EQ(source.num_matches(), 25u);
  EXPECT_EQ(source.size(BulkSourceGenerator::kD1), 60u);
  EXPECT_EQ(source.size(BulkSourceGenerator::kD2), 80u);
  EXPECT_GT(source.schema().num_attributes(), 0u);
}

TEST(BulkSourceTest, StreamEqualsRandomAccess) {
  BulkSourceGenerator source(SmallSpec());
  for (size_t side : {BulkSourceGenerator::kD1, BulkSourceGenerator::kD2}) {
    std::vector<data::Record> streamed;
    source.StreamRecords(side, 0, source.size(side),
                         [&](uint64_t position, data::Record record) {
                           EXPECT_EQ(position, streamed.size());
                           streamed.push_back(std::move(record));
                         });
    ASSERT_EQ(streamed.size(), source.size(side));
    for (uint64_t p = 0; p < source.size(side); ++p) {
      data::Record direct = source.RecordAt(side, p);
      EXPECT_EQ(direct.id, streamed[p].id) << "side=" << side << " p=" << p;
      EXPECT_EQ(direct.values, streamed[p].values)
          << "side=" << side << " p=" << p;
    }
  }
}

TEST(BulkSourceTest, ChunkedStreamingIsInvariant) {
  BulkSourceGenerator source(SmallSpec());
  size_t side = BulkSourceGenerator::kD2;
  std::vector<data::Record> whole;
  source.StreamRecords(side, 0, source.size(side),
                       [&](uint64_t, data::Record record) {
                         whole.push_back(std::move(record));
                       });
  for (uint64_t chunk : {1ull, 7ull, 33ull}) {
    std::vector<data::Record> chunked;
    for (uint64_t begin = 0; begin < source.size(side); begin += chunk) {
      uint64_t end = std::min<uint64_t>(begin + chunk, source.size(side));
      source.StreamRecords(side, begin, end,
                           [&](uint64_t, data::Record record) {
                             chunked.push_back(std::move(record));
                           });
    }
    ASSERT_EQ(chunked.size(), whole.size());
    for (size_t i = 0; i < whole.size(); ++i) {
      EXPECT_EQ(chunked[i].id, whole[i].id) << "chunk=" << chunk;
      EXPECT_EQ(chunked[i].values, whole[i].values) << "chunk=" << chunk;
    }
  }
}

TEST(BulkSourceTest, CollectedPairMatchesStream) {
  BulkSourceGenerator source(SmallSpec());
  SourcePair pair = source.Materialize();
  ASSERT_EQ(pair.d1.size(), source.size(0));
  ASSERT_EQ(pair.d2.size(), source.size(1));
  for (uint64_t p = 0; p < source.size(0); ++p) {
    EXPECT_EQ(pair.d1.record(p).values, source.RecordAt(0, p).values);
  }
  for (uint64_t p = 0; p < source.size(1); ++p) {
    EXPECT_EQ(pair.d2.record(p).values, source.RecordAt(1, p).values);
  }
}

TEST(BulkSourceTest, MatchPositionsInvertThePermutation) {
  BulkSourceGenerator source(SmallSpec());
  std::set<uint64_t> d1_seen, d2_seen;
  for (uint64_t entity = 0; entity < source.num_matches(); ++entity) {
    auto [p1, p2] = source.MatchPositions(entity);
    ASSERT_LT(p1, source.size(0));
    ASSERT_LT(p2, source.size(1));
    d1_seen.insert(p1);
    d2_seen.insert(p2);
  }
  // Distinct entities land at distinct positions.
  EXPECT_EQ(d1_seen.size(), source.num_matches());
  EXPECT_EQ(d2_seen.size(), source.num_matches());
  // And the ground truth of Materialize() agrees.
  SourcePair pair = source.Materialize();
  ASSERT_EQ(pair.matches.size(), source.num_matches());
  std::set<std::pair<uint64_t, uint64_t>> from_positions;
  for (uint64_t entity = 0; entity < source.num_matches(); ++entity) {
    from_positions.insert(source.MatchPositions(entity));
  }
  for (const auto& [l, r] : pair.matches) {
    EXPECT_TRUE(from_positions.count({l, r})) << l << "," << r;
  }
}

TEST(BulkSourceTest, MatchedPairsShareContent) {
  // A matched pair is two corruptions of one canonical record; with the
  // test's moderate noise they must share vocabulary far more often than
  // random cross-entity pairs do.
  BulkSourceGenerator source(SmallSpec());
  size_t nonempty_overlap = 0;
  for (uint64_t entity = 0; entity < source.num_matches(); ++entity) {
    auto [p1, p2] = source.MatchPositions(entity);
    std::string a = source.RecordAt(0, p1).ConcatenatedValues();
    std::string b = source.RecordAt(1, p2).ConcatenatedValues();
    if (a.substr(0, 3) == b.substr(0, 3)) ++nonempty_overlap;
  }
  EXPECT_GT(nonempty_overlap, 0u);
}

TEST(BulkSourceTest, ScaleShrinksSizes) {
  BulkSourceGenerator full(SmallSpec());
  BulkSourceGenerator half(SmallSpec(), 0.5);
  EXPECT_LT(half.size(0), full.size(0));
  EXPECT_GE(half.num_matches(), 10u);  // legacy floor
}

TEST(BulkSourceTest, DifferentSeedsDiffer) {
  SourceDatasetSpec spec = SmallSpec();
  BulkSourceGenerator a(spec);
  spec.seed = 12;
  BulkSourceGenerator b(spec);
  size_t differs = 0;
  for (uint64_t p = 0; p < a.size(0) && p < b.size(0); ++p) {
    if (a.RecordAt(0, p).values != b.RecordAt(0, p).values) ++differs;
  }
  EXPECT_GT(differs, 0u);
}

}  // namespace
}  // namespace rlbench::datagen
