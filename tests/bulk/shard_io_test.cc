// Spill codec round-trips, budget-driven run flushing, reading runs back
// through the bounded line reader, and write-failpoint poisoning of a
// single shard.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "bulk/shard_io.h"
#include "fault/failpoint.h"

namespace rlbench::bulk {
namespace {

class ShardIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "rlbench_shard_io";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fault::Clear();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
};

SpillEntry Entry(std::string key, uint8_t side, uint64_t position,
                 std::vector<std::string> values) {
  SpillEntry entry;
  entry.key = std::move(key);
  entry.side = side;
  entry.position = position;
  entry.values = std::move(values);
  return entry;
}

TEST(SpillCodecTest, RoundTripsHostileContent) {
  SpillEntry entry;
  entry.key = "tab\there\nnewline\rcr\\backslash";
  entry.side = 1;
  entry.context = true;
  entry.position = 123456789012345ull;
  entry.band_keys = {0, 1, 0xFFFFFFFFFFFFFFFFull, 42};
  entry.values = {"", "plain", "with\ttab", "with\nnewline", "with\\slash",
                  "trailing\r"};
  std::string line = EncodeSpillEntry(entry);
  // The whole point of the escaping: one entry is exactly one line.
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(line.find('\r'), std::string::npos);
  SpillEntry decoded;
  ASSERT_TRUE(DecodeSpillEntry(line, &decoded).ok());
  EXPECT_EQ(decoded.key, entry.key);
  EXPECT_EQ(decoded.side, entry.side);
  EXPECT_EQ(decoded.context, entry.context);
  EXPECT_EQ(decoded.position, entry.position);
  EXPECT_EQ(decoded.band_keys, entry.band_keys);
  EXPECT_EQ(decoded.values, entry.values);
}

TEST(SpillCodecTest, DamagedLinesAreInvalidNotUndefined) {
  SpillEntry good = Entry("k", 0, 7, {"v1", "v2"});
  std::string line = EncodeSpillEntry(good);
  const std::string kBad[] = {
      "",                        // empty
      "too\tfew",                // missing fields
      "k\t9\t0\t1\t0\t0",        // bad side
      "k\t0\t0\tnotanumber\t0\t0",
      "k\t0\t0\t1\t99999\t0",    // band count beyond fields
      "k\t0\t0\t1\t0\t5\tv",     // value count beyond fields
      line + "\textra",          // trailing junk
      "k\\x\t0\t0\t1\t0\t0",     // unknown escape
  };
  for (const std::string& bad : kBad) {
    SpillEntry decoded;
    Status status = DecodeSpillEntry(bad, &decoded);
    EXPECT_FALSE(status.ok()) << "input: " << bad;
  }
  // Sanity: the undamaged line still decodes.
  SpillEntry decoded;
  EXPECT_TRUE(DecodeSpillEntry(line, &decoded).ok());
}

TEST(SpillCodecTest, OrderIsStrictAndTotal) {
  SpillEntry a = Entry("alpha", 0, 1, {});
  SpillEntry b = Entry("alpha", 1, 1, {});
  SpillEntry c = Entry("beta", 0, 0, {});
  SpillEntry d = Entry("alpha", 0, 2, {});
  EXPECT_TRUE(SpillEntryLess(a, b));   // side breaks key ties
  EXPECT_TRUE(SpillEntryLess(a, c));   // key first
  EXPECT_TRUE(SpillEntryLess(a, d));   // position breaks (key, side) ties
  EXPECT_FALSE(SpillEntryLess(a, a));  // irreflexive
}

TEST_F(ShardIoTest, WriterPartitionsAndReaderRestores) {
  ShardWriter writer(dir_.string(), "t", 3, 1u << 20, /*sorted_runs=*/false);
  for (uint64_t i = 0; i < 30; ++i) {
    writer.Append(i % 3, Entry("k" + std::to_string(i), i % 2, i,
                               {"value" + std::to_string(i)}));
  }
  writer.Finish();
  EXPECT_EQ(writer.total_entries(), 30u);
  for (size_t shard = 0; shard < 3; ++shard) {
    ASSERT_TRUE(writer.shard_status(shard).ok());
    EXPECT_EQ(writer.shard_entries(shard), 10u);
    ShardReader reader(writer.shard_files(shard));
    size_t count = 0;
    while (true) {
      SpillEntry entry;
      bool done = false;
      ASSERT_TRUE(reader.Next(&entry, &done).ok());
      if (done) break;
      EXPECT_EQ(entry.position % 3, shard);
      ++count;
    }
    EXPECT_EQ(count, 10u);
  }
}

TEST_F(ShardIoTest, BudgetForcesMultipleSortedRuns) {
  // A budget holding only a handful of ~1 KiB entries forces several
  // multi-entry flushes.
  ShardWriter writer(dir_.string(), "runs", 1, 8000, /*sorted_runs=*/true);
  std::string big(900, 'x');
  for (int i = 199; i >= 0; --i) {
    writer.Append(0, Entry("key" + std::to_string(i / 10), 0,
                           static_cast<uint64_t>(i), {big}));
  }
  writer.Finish();
  ASSERT_TRUE(writer.shard_status(0).ok());
  EXPECT_GT(writer.shard_files(0).size(), 1u) << "expected multiple runs";
  EXPECT_GT(writer.spilled_bytes(), 100u * 900u);
  // Each run is internally sorted even though input arrived reversed.
  for (const std::string& file : writer.shard_files(0)) {
    ShardReader reader({file});
    SpillEntry prev, cur;
    bool first = true;
    while (true) {
      bool done = false;
      ASSERT_TRUE(reader.Next(&cur, &done).ok());
      if (done) break;
      if (!first) {
        EXPECT_FALSE(SpillEntryLess(cur, prev));
      }
      prev = cur;
      first = false;
    }
  }
  // All 200 entries survive across the runs.
  ShardReader all(writer.shard_files(0));
  size_t total = 0;
  while (true) {
    SpillEntry entry;
    bool done = false;
    ASSERT_TRUE(all.Next(&entry, &done).ok());
    if (done) break;
    ++total;
  }
  EXPECT_EQ(total, 200u);
}

TEST_F(ShardIoTest, WriteFailpointPoisonsOnlyThatShard) {
  // Strike one flush through its entire WriteAtomic retry budget (three
  // attempts); the unlucky shard records the failure, the other shard is
  // untouched.
  ASSERT_TRUE(
      fault::SetSpec("seed=5;data/file/tmp_write=io:1:max=3").ok());
  ShardWriter writer(dir_.string(), "p", 2, 1, /*sorted_runs=*/false);
  std::string big(900, 'y');
  for (uint64_t i = 0; i < 400; ++i) {
    writer.Append(i % 2, Entry("k", 0, i, {big}));
  }
  writer.Finish();
  fault::Clear();
  size_t failed = 0;
  for (size_t shard = 0; shard < 2; ++shard) {
    if (!writer.shard_status(shard).ok()) ++failed;
  }
  ASSERT_EQ(failed, 1u);
  for (size_t shard = 0; shard < 2; ++shard) {
    if (!writer.shard_status(shard).ok()) continue;
    // The healthy shard's files all read back.
    ShardReader reader(writer.shard_files(shard));
    size_t count = 0;
    while (true) {
      SpillEntry entry;
      bool done = false;
      ASSERT_TRUE(reader.Next(&entry, &done).ok());
      if (done) break;
      ++count;
    }
    EXPECT_GT(count, 0u);
  }
}

}  // namespace
}  // namespace rlbench::bulk
