// The measurement half of the drift loop: recompute the paper's
// difficulty measures — degree of linearity (Algorithm 1), the complexity
// average (Table I), and the practical NLB/LBM aggregation — over one
// completed reservoir window of live traffic.
//
// Live proxy semantics: wire traffic carries no ground truth, so by
// default the served decisions act as the window's labels. Under
// self-labels the measures answer "how linearly reproducible is what the
// served model is currently doing?" — a drop in the window's best linear
// F1 (equivalently a rise in nlb) means the decision boundary wandered
// into territory a threshold rule cannot mimic, the paper's definition of
// a harder workload. Streams that do carry labels (benches, tests) can
// set MonitorOptions::use_truth_labels to get the real measures.
//
// Runs on the existing parallel pool (ParallelFor feature extraction +
// the seeded subsample inside ComputeComplexity), bit-identical at any
// thread count for a fixed window.
#ifndef RLBENCH_SRC_DRIFT_MONITOR_H_
#define RLBENCH_SRC_DRIFT_MONITOR_H_

#include <cstdint>
#include <span>

#include "core/complexity.h"
#include "drift/reservoir.h"
#include "matchers/context.h"
#include "matchers/trained_model.h"

namespace rlbench::drift {

struct MonitorOptions {
  /// Options for the Table I complexity measures (seeded subsample keeps
  /// them deterministic at any thread count).
  core::ComplexityOptions complexity;
  /// Label source: false = served decisions (the live self-label proxy),
  /// true = the ground-truth labels carried on the sampled pairs.
  bool use_truth_labels = false;
};

/// The paper's difficulty measures over one window.
struct WindowMeasures {
  size_t pairs = 0;
  size_t positives = 0;  // positive labels under the active label source
  // Degree of linearity: best single-threshold F1 per similarity.
  double f1_cs = 0.0;
  double threshold_cs = 0.0;
  double f1_js = 0.0;
  double threshold_js = 0.0;
  double best_linear_f1 = 0.0;  // max(f1_cs, f1_js)
  // Mean of the 17 Table I complexity measures on the [CS, JS] points.
  double complexity_avg = 0.0;
  // F1 of the served decisions against the labels (1.0 under self-labels).
  double served_f1 = 0.0;
  // core::ComputePractical over {served, window-linear} (+ the zero-shot
  // arm, which it excludes by group): nlb = served_f1 - best_linear_f1.
  double nlb = 0.0;
  double lbm = 0.0;
  // F1 of the zero-shot arm against the labels; -1 when no arm was given.
  double zero_shot_f1 = -1.0;
};

/// Recompute the measures over `window`. [CS, JS] come from the columnar
/// token-id spans (always built by the MatchingContext constructor).
/// `zero_shot_arm`, when given, is scored over the window as an extra
/// lineup row; the context must already be prepared for it (serving keeps
/// its caches frozen, which satisfies every arm).
WindowMeasures ComputeWindowMeasures(
    const matchers::MatchingContext& context,
    std::span<const ScoredSample> window, const MonitorOptions& options = {},
    const matchers::TrainedModel* zero_shot_arm = nullptr);

}  // namespace rlbench::drift

#endif  // RLBENCH_SRC_DRIFT_MONITOR_H_
