#include "drift/reservoir.h"

#include "common/check.h"
#include "common/rng.h"

namespace rlbench::drift {

WindowReservoir::WindowReservoir(ReservoirOptions options)
    : options_(options) {
  RLBENCH_CHECK(options_.window_pairs > 0);
  RLBENCH_CHECK(options_.sample_fraction > 0.0 &&
                options_.sample_fraction <= 1.0);
  samples_.reserve(options_.window_pairs);
}

bool WindowReservoir::ShouldSample(const data::LabeledPair& pair) const {
  if (options_.sample_fraction >= 1.0) return true;
  // Two SplitSeed rounds mix (seed, left, right) into a decorrelated
  // 64-bit draw; mapping the top 53 bits to [0, 1) mirrors serve/shadow.
  uint64_t hash = SplitSeed(SplitSeed(options_.seed, pair.left), pair.right);
  double unit = static_cast<double>(hash >> 11) * 0x1.0p-53;
  return unit < options_.sample_fraction;
}

bool WindowReservoir::Offer(const data::LabeledPair& pair, double score,
                            uint8_t decision) {
  ++offered_;
  if (!ShouldSample(pair)) return false;
  ++sampled_;
  samples_.push_back(ScoredSample{pair, score, decision});
  if (samples_.size() < options_.window_pairs) return false;
  ++windows_completed_;
  return true;
}

}  // namespace rlbench::drift
