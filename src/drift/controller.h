// Hysteresis-driven reaction policy of the drift loop — the same
// controller shape as serve/shed: enter/exit thresholds with a dwell so a
// single noisy window cannot flap the system, plus a sticky triggered
// state so the expensive reaction (retrain → publish → shadow-gated
// hot-swap) runs exactly once per drift episode.
//
// State ladder:
//   kStable    — windows look like the regime the served model was
//                promoted under.
//   kWatch     — a drifted window arrived; accumulating the dwell streak.
//                Falls back to kStable once a window clears the exit
//                thresholds (hysteresis band between enter and exit).
//   kTriggered — `dwell` consecutive drifted windows. Sticky until
//                Rearm() is called after the reaction completed (the
//                shadow ladder decides whether the new model lands).
#ifndef RLBENCH_SRC_DRIFT_CONTROLLER_H_
#define RLBENCH_SRC_DRIFT_CONTROLLER_H_

#include <cstddef>
#include <cstdint>

#include "drift/monitor.h"

namespace rlbench::drift {

enum class DriftState : uint8_t { kStable = 0, kWatch = 1, kTriggered = 2 };

/// Stable wire/manifest name of a state ("stable", "watch", "triggered").
const char* DriftStateName(DriftState state);

struct DriftControllerOptions {
  /// A window counts as drifted when its best linear F1 falls below
  /// `linearity_enter` OR its complexity average rises above
  /// `complexity_enter`; it clears the episode when the F1 is back above
  /// `linearity_exit` AND the complexity back below `complexity_exit`.
  double linearity_enter = 0.80;
  double linearity_exit = 0.90;
  double complexity_enter = 0.45;
  double complexity_exit = 0.35;
  /// Consecutive drifted windows required to trigger.
  size_t dwell = 2;
};

class DriftController {
 public:
  explicit DriftController(DriftControllerOptions options = {});

  /// Feed one completed window's measures; returns the state afterwards.
  DriftState Observe(const WindowMeasures& measures);

  /// Leave kTriggered once the reaction has run (whether or not the
  /// shadow ladder promoted the candidate); resets the dwell streak.
  void Rearm();

  DriftState state() const { return state_; }
  /// Total state changes (for manifests and the storm assertions).
  uint64_t transitions() const { return transitions_; }
  /// Completed kStable/kWatch -> kTriggered edges.
  uint64_t triggers() const { return triggers_; }

 private:
  bool Drifted(const WindowMeasures& measures) const;
  bool Recovered(const WindowMeasures& measures) const;
  void SetState(DriftState next);

  DriftControllerOptions options_;
  DriftState state_ = DriftState::kStable;
  size_t drifted_streak_ = 0;
  uint64_t transitions_ = 0;
  uint64_t triggers_ = 0;
};

}  // namespace rlbench::drift

#endif  // RLBENCH_SRC_DRIFT_CONTROLLER_H_
