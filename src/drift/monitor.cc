#include "drift/monitor.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "core/practical.h"
#include "data/columnar.h"
#include "ml/metrics.h"
#include "obs/trace.h"
#include "text/kernels.h"

namespace rlbench::drift {

namespace {
// Same extraction grain as the matcher batch paths.
constexpr size_t kPairGrain = 256;
}  // namespace

WindowMeasures ComputeWindowMeasures(
    const matchers::MatchingContext& context,
    std::span<const ScoredSample> window, const MonitorOptions& options,
    const matchers::TrainedModel* zero_shot_arm) {
  WindowMeasures out;
  out.pairs = window.size();
  if (window.empty()) return out;
  RLBENCH_TRACE_SPAN("drift/window_measures");

  // [CS, JS] per sampled pair over the columnar all-token spans — the
  // paper's 2-D instance representation, extracted on the parallel pool
  // into index-addressed slots (bit-identical at any thread count).
  const data::ColumnarStore& store = context.columnar();
  std::vector<core::FeaturePoint> points(window.size());
  std::vector<uint8_t> labels(window.size());
  std::vector<uint8_t> decisions(window.size());
  ParallelFor(0, window.size(), kPairGrain, [&](size_t i) {
    const ScoredSample& sample = window[i];
    text::kernels::SetSims sims = text::kernels::SetFamilySortedU32(
        store.TokenIdsAll(data::ColumnarStore::kLeft, sample.pair.left),
        store.TokenIdsAll(data::ColumnarStore::kRight, sample.pair.right));
    uint8_t label = options.use_truth_labels ? (sample.pair.is_match ? 1 : 0)
                                             : sample.decision;
    points[i] = core::FeaturePoint{sims.cosine, sims.jaccard, label != 0};
    labels[i] = label;
    decisions[i] = sample.decision;
  });
  for (uint8_t label : labels) out.positives += label;

  // Degree of linearity (Algorithm 1) on each similarity column.
  {
    std::vector<double> column(window.size());
    for (size_t i = 0; i < window.size(); ++i) column[i] = points[i].cs;
    ml::ThresholdSweepResult cs = ml::SweepThresholds(column, labels);
    out.f1_cs = cs.best_f1;
    out.threshold_cs = cs.best_threshold;
    for (size_t i = 0; i < window.size(); ++i) column[i] = points[i].js;
    ml::ThresholdSweepResult js = ml::SweepThresholds(column, labels);
    out.f1_js = js.best_f1;
    out.threshold_js = js.best_threshold;
  }
  out.best_linear_f1 = std::max(out.f1_cs, out.f1_js);

  // Table I complexity measures (seeded subsample inside keeps the O(n^2)
  // families deterministic).
  out.complexity_avg = core::ComputeComplexity(points, options.complexity)
                           .Average();

  out.served_f1 = ml::Evaluate(labels, decisions).F1();

  // Feed the window rows through the paper's own practical aggregation:
  // the served model plays the non-linear lineup, the window's best
  // threshold rule plays the linear anchor, and the zero-shot arm rides
  // along as a reported-but-excluded row (core/practical.h).
  std::vector<core::MatcherScore> scores;
  scores.push_back(
      {"served", matchers::MatcherGroup::kClassicMl, out.served_f1});
  scores.push_back(
      {"window-linear", matchers::MatcherGroup::kLinear, out.best_linear_f1});
  if (zero_shot_arm != nullptr) {
    std::vector<data::LabeledPair> pairs(window.size());
    for (size_t i = 0; i < window.size(); ++i) pairs[i] = window[i].pair;
    std::vector<double> arm_scores(window.size());
    std::vector<uint8_t> arm_decisions(window.size());
    Status scored = zero_shot_arm->ScoreBatch(context, pairs, arm_scores,
                                              arm_decisions);
    RLBENCH_CHECK_MSG(scored.ok(), "drift: zero-shot arm failed to score");
    out.zero_shot_f1 = ml::Evaluate(labels, arm_decisions).F1();
    scores.push_back({zero_shot_arm->matcher_name(),
                      matchers::MatcherGroup::kZeroShot, out.zero_shot_f1});
  }
  core::PracticalMeasures practical = core::ComputePractical(scores);
  out.nlb = practical.non_linear_boost;
  out.lbm = practical.learning_based_margin;
  return out;
}

}  // namespace rlbench::drift
