// Bounded windowed reservoir of live scored pairs — the sampling half of
// the difficulty-drift loop (docs/drift.md). The serve path offers every
// full-tier scored pair; admission is a pure function of (seed, pair
// identity) via SplitSeed, so the window's contents depend only on the
// order requests were served in — never on batch splits, thread counts,
// or wall-clock time. A window "completes" when it holds `window_pairs`
// admitted samples; the monitor (monitor.h) then recomputes the paper's
// difficulty measures over it.
#ifndef RLBENCH_SRC_DRIFT_RESERVOIR_H_
#define RLBENCH_SRC_DRIFT_RESERVOIR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/task.h"

namespace rlbench::drift {

/// One sampled serve decision: the pair plus the served score and
/// decision. The decision doubles as the window's self-label when no
/// ground truth is available (MonitorOptions::use_truth_labels == false).
struct ScoredSample {
  data::LabeledPair pair;
  double score = 0.0;
  uint8_t decision = 0;
};

struct ReservoirOptions {
  /// Admitted samples per completed window.
  size_t window_pairs = 512;
  /// Fraction of offered pairs admitted; 1.0 samples everything.
  double sample_fraction = 1.0;
  uint64_t seed = 0xD21F7;
};

class WindowReservoir {
 public:
  explicit WindowReservoir(ReservoirOptions options = {});

  /// Whether a pair would be admitted — a pure function of
  /// (seed, left, right), like serve/shadow sampling: each pair's fate is
  /// fixed before any traffic flows.
  [[nodiscard]] bool ShouldSample(const data::LabeledPair& pair) const;

  /// Offer one scored pair. Returns true when this offer completed the
  /// window: read it via window(), then call ResetWindow() to start the
  /// next one. Single-writer (the serve thread); not thread-safe.
  [[nodiscard]] bool Offer(const data::LabeledPair& pair, double score,
                           uint8_t decision);

  /// The current (possibly partial) window, in admission order.
  std::span<const ScoredSample> window() const { return samples_; }
  void ResetWindow() { samples_.clear(); }

  size_t window_pairs() const { return options_.window_pairs; }
  uint64_t offered() const { return offered_; }
  uint64_t sampled() const { return sampled_; }
  uint64_t windows_completed() const { return windows_completed_; }

 private:
  ReservoirOptions options_;
  std::vector<ScoredSample> samples_;
  uint64_t offered_ = 0;
  uint64_t sampled_ = 0;
  uint64_t windows_completed_ = 0;
};

}  // namespace rlbench::drift

#endif  // RLBENCH_SRC_DRIFT_RESERVOIR_H_
