// DriftTracker composes the subsystem: reservoir sampling of scored
// serve batches, per-window measure recomputation (on the existing
// parallel pool), `drift/*` metric publication, and the hysteresis
// controller. The serve path touches exactly one call — RecordBatch from
// the single choke point in serve/service.cc (lint rule `drift`) — and
// the service owner (server / bench) consumes trigger events mirroring
// the ShadowEvent pattern: trigger → retrain → publish → StartShadow,
// with EnsembleLink as the always-trainable zero-shot fallback arm.
//
// Determinism contract (docs/drift.md): RecordBatch runs on the service
// thread in request order; admission is a pure per-pair hash; the window
// measures use ParallelFor + seeded subsampling. For a fixed request
// order and seed, the reservoir contents, every published measure, and
// the trigger point are bit-identical at any thread count. When drift is
// disabled the service holds no tracker and the cost is one null check.
#ifndef RLBENCH_SRC_DRIFT_TRACKER_H_
#define RLBENCH_SRC_DRIFT_TRACKER_H_

#include <cstdint>
#include <memory>
#include <span>

#include "drift/controller.h"
#include "drift/monitor.h"
#include "drift/reservoir.h"
#include "matchers/context.h"
#include "matchers/trained_model.h"

namespace rlbench::drift {

struct DriftTrackerOptions {
  ReservoirOptions reservoir;
  MonitorOptions monitor;
  DriftControllerOptions controller;
};

/// Consumable trigger notification (same shape as serve::ShadowEvent).
struct DriftEvent {
  enum class Kind : uint8_t { kNone = 0, kTriggered = 1 };
  Kind kind = Kind::kNone;
  /// Measures of the window that completed the dwell streak.
  WindowMeasures measures;
  /// 1-based ordinal of that window.
  uint64_t window_index = 0;
};

/// True when the RLBENCH_DRIFT environment variable is set to anything
/// but "" or "0" (resolved once per process).
bool DriftEnvEnabled();

class DriftTracker {
 public:
  /// The context must outlive the tracker and be the one the scored pairs
  /// index into (the service's own context).
  explicit DriftTracker(const matchers::MatchingContext* context,
                        DriftTrackerOptions options = {});

  /// Offer one scored batch in serve order. Returns true when a window
  /// completed (its measures were recomputed, published, and fed to the
  /// controller). Single-writer: the service thread only.
  bool RecordBatch(std::span<const data::LabeledPair> pairs,
                   std::span<const double> scores,
                   std::span<const uint8_t> decisions);

  /// Install / replace the zero-shot arm scored alongside each window
  /// (normally an EnsembleLink model; may be null to disable).
  void SetZeroShotArm(std::shared_ptr<const matchers::TrainedModel> arm);

  bool has_measures() const { return has_measures_; }
  const WindowMeasures& latest() const { return latest_; }
  DriftState state() const { return controller_.state(); }
  const WindowReservoir& reservoir() const { return reservoir_; }
  const DriftController& controller() const { return controller_; }

  /// The pending trigger, if any; resets to kNone (consume-once).
  DriftEvent ConsumeEvent();

  /// Forwarded to the controller once the reaction has completed.
  void Rearm() { controller_.Rearm(); }

 private:
  void EvaluateWindow();

  const matchers::MatchingContext* context_;
  DriftTrackerOptions options_;
  WindowReservoir reservoir_;
  DriftController controller_;
  std::shared_ptr<const matchers::TrainedModel> arm_;
  WindowMeasures latest_;
  bool has_measures_ = false;
  DriftEvent event_;
};

}  // namespace rlbench::drift

#endif  // RLBENCH_SRC_DRIFT_TRACKER_H_
