#include "drift/controller.h"

#include "common/check.h"

namespace rlbench::drift {

const char* DriftStateName(DriftState state) {
  switch (state) {
    case DriftState::kStable:
      return "stable";
    case DriftState::kWatch:
      return "watch";
    case DriftState::kTriggered:
      return "triggered";
  }
  return "unknown";
}

DriftController::DriftController(DriftControllerOptions options)
    : options_(options) {
  RLBENCH_CHECK(options_.dwell >= 1);
  // Exit thresholds must sit on the recovered side of their enter
  // thresholds or the hysteresis band inverts.
  RLBENCH_CHECK(options_.linearity_exit >= options_.linearity_enter);
  RLBENCH_CHECK(options_.complexity_exit <= options_.complexity_enter);
}

bool DriftController::Drifted(const WindowMeasures& measures) const {
  return measures.best_linear_f1 < options_.linearity_enter ||
         measures.complexity_avg > options_.complexity_enter;
}

bool DriftController::Recovered(const WindowMeasures& measures) const {
  return measures.best_linear_f1 > options_.linearity_exit &&
         measures.complexity_avg < options_.complexity_exit;
}

void DriftController::SetState(DriftState next) {
  if (next == state_) return;
  state_ = next;
  ++transitions_;
}

DriftState DriftController::Observe(const WindowMeasures& measures) {
  // Sticky: the reaction owns the exit via Rearm().
  if (state_ == DriftState::kTriggered) return state_;
  if (Drifted(measures)) {
    ++drifted_streak_;
    if (state_ == DriftState::kStable) SetState(DriftState::kWatch);
    if (drifted_streak_ >= options_.dwell) {
      SetState(DriftState::kTriggered);
      ++triggers_;
    }
  } else {
    drifted_streak_ = 0;
    if (state_ == DriftState::kWatch && Recovered(measures)) {
      SetState(DriftState::kStable);
    }
  }
  return state_;
}

void DriftController::Rearm() {
  drifted_streak_ = 0;
  if (state_ == DriftState::kTriggered) SetState(DriftState::kStable);
}

}  // namespace rlbench::drift
