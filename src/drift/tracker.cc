#include "drift/tracker.h"

#include <cstdlib>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlbench::drift {

bool DriftEnvEnabled() {
  static const bool enabled = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at gate resolution
    const char* env = std::getenv("RLBENCH_DRIFT");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  return enabled;
}

DriftTracker::DriftTracker(const matchers::MatchingContext* context,
                           DriftTrackerOptions options)
    : context_(context),
      options_(std::move(options)),
      reservoir_(options_.reservoir),
      controller_(options_.controller) {
  RLBENCH_CHECK(context_ != nullptr);
}

void DriftTracker::SetZeroShotArm(
    std::shared_ptr<const matchers::TrainedModel> arm) {
  arm_ = std::move(arm);
}

bool DriftTracker::RecordBatch(std::span<const data::LabeledPair> pairs,
                               std::span<const double> scores,
                               std::span<const uint8_t> decisions) {
  RLBENCH_CHECK(scores.size() == pairs.size() &&
                decisions.size() == pairs.size());
  bool completed = false;
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (reservoir_.Offer(pairs[i], scores[i], decisions[i])) {
      EvaluateWindow();
      reservoir_.ResetWindow();
      completed = true;
    }
  }
  return completed;
}

void DriftTracker::EvaluateWindow() {
  RLBENCH_TRACE_SPAN("drift/window");
  latest_ = ComputeWindowMeasures(*context_, reservoir_.window(),
                                  options_.monitor, arm_.get());
  has_measures_ = true;

  // Gauges are max-merge, so publish drift in "bigger = worse" polarity:
  // the gap to linear reproducibility and the complexity level read as
  // high-water marks of how hard the live window ever got.
  RLBENCH_COUNTER_INC("drift/windows");
  RLBENCH_COUNTER_ADD("drift/sampled_pairs", latest_.pairs);
  RLBENCH_GAUGE_OBSERVE("drift/linearity_gap", 1.0 - latest_.best_linear_f1);
  RLBENCH_GAUGE_OBSERVE("drift/complexity_avg", latest_.complexity_avg);
  RLBENCH_GAUGE_OBSERVE("drift/nlb_live", latest_.nlb);
  RLBENCH_GAUGE_OBSERVE("drift/lbm_live", latest_.lbm);

  DriftState before = controller_.state();
  DriftState after = controller_.Observe(latest_);
  if (after == DriftState::kTriggered && before != DriftState::kTriggered) {
    RLBENCH_COUNTER_INC("drift/triggers");
    event_.kind = DriftEvent::Kind::kTriggered;
    event_.measures = latest_;
    event_.window_index = reservoir_.windows_completed();
  }
}

DriftEvent DriftTracker::ConsumeEvent() {
  DriftEvent event = event_;
  event_ = DriftEvent{};
  return event;
}

}  // namespace rlbench::drift
