#include "serve/client.h"

#include <algorithm>

#include "common/rng.h"
#include "obs/json.h"

namespace rlbench::serve {

namespace {

// Invert StatusCodeName for the codes the server can emit; unrecognised
// names degrade to kInternal rather than being dropped.
StatusCode ParseStatusCode(const std::string& name) {
  static constexpr StatusCode kCodes[] = {
      StatusCode::kInvalidArgument,    StatusCode::kNotFound,
      StatusCode::kOutOfRange,         StatusCode::kFailedPrecondition,
      StatusCode::kIOError,            StatusCode::kResourceExhausted,
      StatusCode::kInternal,           StatusCode::kDeadlineExceeded,
  };
  for (StatusCode code : kCodes) {
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

Result<JsonValue> CheckOk(JsonValue response) {
  if (!response.is_object()) {
    return Status::IOError("client: response is not a JSON object");
  }
  if (!response.GetBool("ok")) {
    return Status(ParseStatusCode(response.GetString("code", "Internal")),
                  response.GetString("error", "server error"));
  }
  return response;
}

}  // namespace

Result<MatchClient> MatchClient::Connect(uint16_t port) {
  RLBENCH_ASSIGN_OR_RETURN(Socket socket, ConnectLoopback(port));
  return MatchClient(std::move(socket));
}

Result<MatchClient> MatchClient::ConnectWithRetry(
    uint16_t port, const ReconnectOptions& options) {
  Rng jitter(options.jitter_seed ^ port);
  double backoff_ms = options.initial_backoff_ms;
  Status last = Status::OK();
  for (int attempt = 0; attempt < std::max(1, options.max_attempts);
       ++attempt) {
    if (attempt > 0) {
      SleepMillis(static_cast<int>(jitter.Uniform(backoff_ms / 2.0,
                                                  backoff_ms)));
      backoff_ms = std::min(options.max_backoff_ms,
                            backoff_ms * options.multiplier);
    }
    auto socket = ConnectLoopback(port);
    if (socket.ok()) return MatchClient(std::move(*socket));
    last = socket.status();
  }
  return Status::IOError("client: gave up after " +
                         std::to_string(std::max(1, options.max_attempts)) +
                         " connect attempts: " + last.message());
}

Status MatchClient::SendRequest(const std::string& payload) {
  return SendFrame(socket_, payload);
}

Result<JsonValue> MatchClient::RecvResponse() {
  // The persistent decoder carries over bytes beyond the first frame: a
  // server answering pipelined requests sends many frames in one burst,
  // and a per-call decoder would silently drop all but the first.
  RLBENCH_ASSIGN_OR_RETURN(std::string frame, RecvFrame(socket_, &decoder_));
  RLBENCH_ASSIGN_OR_RETURN(JsonValue response, ParseJson(frame));
  return CheckOk(std::move(response));
}

Result<JsonValue> MatchClient::Call(const std::string& payload) {
  RLBENCH_RETURN_NOT_OK(SendRequest(payload));
  return RecvResponse();
}

Result<JsonValue> MatchClient::Ping() { return Call("{\"op\":\"ping\"}"); }

Result<PairScore> MatchClient::MatchPair(uint32_t left, uint32_t right) {
  RLBENCH_ASSIGN_OR_RETURN(
      JsonValue response,
      Call("{\"op\":\"match_pair\",\"left\":" + std::to_string(left) +
           ",\"right\":" + std::to_string(right) + "}"));
  PairScore score;
  score.score = response.GetNumber("score");
  score.decision = response.GetNumber("decision") != 0.0 ? 1 : 0;
  return score;
}

std::string MatchClient::MatchBatchRequest(
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
    double deadline_ms) {
  std::string out = "{\"op\":\"match_batch\",\"pairs\":[";
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (i > 0) out += ",";
    out += "[" + std::to_string(pairs[i].first) + "," +
           std::to_string(pairs[i].second) + "]";
  }
  out += "]";
  if (deadline_ms > 0.0) {
    out += ",\"deadline_ms\":" + obs::JsonNumber(deadline_ms);
  }
  return out + "}";
}

Result<std::vector<PairScore>> MatchClient::MatchBatch(
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
    double deadline_ms) {
  RLBENCH_ASSIGN_OR_RETURN(JsonValue response,
                           Call(MatchBatchRequest(pairs, deadline_ms)));
  const JsonValue* scores = response.Find("scores");
  const JsonValue* decisions = response.Find("decisions");
  if (scores == nullptr || !scores->is_array() || decisions == nullptr ||
      !decisions->is_array() ||
      scores->AsArray().size() != decisions->AsArray().size()) {
    return Status::IOError("client: malformed match_batch response");
  }
  std::vector<PairScore> results(scores->AsArray().size());
  for (size_t i = 0; i < results.size(); ++i) {
    results[i].score = scores->AsArray()[i].AsNumber();
    results[i].decision = decisions->AsArray()[i].AsNumber() != 0.0 ? 1 : 0;
  }
  return results;
}

Result<JsonValue> MatchClient::Assess() { return Call("{\"op\":\"assess\"}"); }

Result<JsonValue> MatchClient::Stats() { return Call("{\"op\":\"stats\"}"); }

Result<JsonValue> MatchClient::Reload(const std::string& matcher,
                                      uint64_t version) {
  std::string request =
      "{\"op\":\"reload\",\"matcher\":" + obs::JsonString(matcher);
  if (version > 0) request += ",\"version\":" + std::to_string(version);
  return Call(request + "}");
}

Result<JsonValue> MatchClient::Shutdown() {
  return Call("{\"op\":\"shutdown\"}");
}

}  // namespace rlbench::serve
