#include "serve/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "fault/failpoint.h"
#include "serve/wire.h"

namespace rlbench::serve {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError("net: " + what + ": " + std::strerror(errno));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> ListenLoopback(uint16_t port, uint16_t* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, 16) < 0) return Errno("listen");
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      return Errno("getsockname");
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return sock;
}

Result<Socket> ConnectLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("connect 127.0.0.1:" + std::to_string(port));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Result<Socket> Accept(const Socket& listener) {
  int fd;
  do {
    fd = ::accept(listener.fd(), nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Errno("accept");
  Socket sock(fd);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Result<std::optional<Socket>> AcceptWithDeadline(const Socket& listener,
                                                 int timeout_ms) {
  if (auto hit = RLBENCH_FAULT_POINT("serve/loop/accept")) {
    return Status::IOError("injected: accept");
  }
  pollfd pfd{};
  pfd.fd = listener.fd();
  pfd.events = POLLIN;
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("poll(listener)");
  if (rc == 0) return std::optional<Socket>();  // deadline, not an error
  int fd;
  do {
    fd = ::accept(listener.fd(), nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    // The connection vanished between poll and accept; treat like a
    // timeout so the serve loop just keeps ticking.
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      return std::optional<Socket>();
    }
    return Errno("accept");
  }
  Socket sock(fd);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::optional<Socket>(std::move(sock));
}

Status SetNonBlocking(const Socket& socket, bool enable) {
  int flags = ::fcntl(socket.fd(), F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (enable) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  if (::fcntl(socket.fd(), F_SETFL, flags) < 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::OK();
}

Result<ReadResult> ReadNonBlocking(const Socket& socket) {
  if (auto hit = RLBENCH_FAULT_POINT("serve/loop/read")) {
    return Status::IOError("injected: read");
  }
  ReadResult result;
  char chunk[16384];
  while (true) {
    ssize_t n;
    do {
      n = ::recv(socket.fd(), chunk, sizeof(chunk), 0);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return result;
      return Errno("recv");
    }
    if (n == 0) {
      result.eof = true;
      return result;
    }
    result.data.append(chunk, static_cast<size_t>(n));
    if (static_cast<size_t>(n) < sizeof(chunk)) return result;
  }
}

Result<size_t> WriteNonBlocking(const Socket& socket, std::string_view bytes) {
  if (auto hit = RLBENCH_FAULT_POINT("serve/loop/write")) {
    return Status::IOError("injected: write");
  }
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n;
    do {
      n = ::send(socket.fd(), bytes.data() + sent, bytes.size() - sent,
                 MSG_NOSIGNAL | MSG_DONTWAIT);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return sent;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return sent;
}

void SleepMillis(int ms) {
  if (ms <= 0) return;
  // poll with no fds is a plain millisecond sleep; EINTR restarts with the
  // remaining budget unmeasured, which is fine for backoff purposes.
  int rc;
  do {
    rc = ::poll(nullptr, 0, ms);
  } while (rc < 0 && errno == EINTR);
}

namespace {

// PollSet packs (fd, events, revents) into one uint64 per slot so the
// header needs no <poll.h> types: fd in the low 32 bits, events in the
// next 16, revents in the top 16.
uint64_t PackSlot(int fd, short events, short revents) {
  return (static_cast<uint64_t>(static_cast<uint16_t>(revents)) << 48) |
         (static_cast<uint64_t>(static_cast<uint16_t>(events)) << 32) |
         static_cast<uint32_t>(fd);
}

int SlotFd(uint64_t slot) { return static_cast<int>(slot & 0xffffffffu); }
short SlotEvents(uint64_t slot) {
  return static_cast<short>((slot >> 32) & 0xffffu);
}
short SlotRevents(uint64_t slot) {
  return static_cast<short>((slot >> 48) & 0xffffu);
}

}  // namespace

void PollSet::Clear() { slots_.clear(); }

void PollSet::Add(int fd, bool want_read, bool want_write) {
  short events = 0;
  if (want_read) events |= POLLIN;
  if (want_write) events |= POLLOUT;
  slots_.push_back(PackSlot(fd, events, 0));
}

Result<int> PollSet::Wait(int timeout_ms) {
  std::vector<pollfd> pfds(slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    pfds[i].fd = SlotFd(slots_[i]);
    pfds[i].events = SlotEvents(slots_[i]);
    pfds[i].revents = 0;
  }
  int rc;
  do {
    rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("poll");
  for (size_t i = 0; i < slots_.size(); ++i) {
    slots_[i] = PackSlot(pfds[i].fd, pfds[i].events, pfds[i].revents);
  }
  return rc;
}

short PollSet::ReventsFor(int fd) const {
  for (uint64_t slot : slots_) {
    if (SlotFd(slot) == fd) return SlotRevents(slot);
  }
  return 0;
}

bool PollSet::Readable(int fd) const {
  return (ReventsFor(fd) & (POLLIN | POLLHUP | POLLERR)) != 0;
}

bool PollSet::Writable(int fd) const {
  return (ReventsFor(fd) & POLLOUT) != 0;
}

bool PollSet::HasError(int fd) const {
  return (ReventsFor(fd) & (POLLERR | POLLNVAL)) != 0;
}

Result<bool> WaitReadable(const Socket& socket, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = socket.fd();
  pfd.events = POLLIN;
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("poll");
  return rc > 0;
}

Status SendAll(const Socket& socket, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n;
    do {
      n = ::send(socket.fd(), bytes.data() + sent, bytes.size() - sent,
                 MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return Errno("send");
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> RecvSome(const Socket& socket) {
  char chunk[16384];
  ssize_t n;
  do {
    n = ::recv(socket.fd(), chunk, sizeof(chunk), 0);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return Errno("recv");
  return std::string(chunk, static_cast<size_t>(n));
}

Status SendFrame(const Socket& socket, std::string_view payload) {
  std::string framed;
  framed.reserve(kFrameHeaderBytes + payload.size());
  RLBENCH_RETURN_NOT_OK(AppendFrame(payload, &framed));
  return SendAll(socket, framed);
}

Result<std::string> RecvFrame(const Socket& socket, FrameDecoder* decoder) {
  while (true) {
    RLBENCH_ASSIGN_OR_RETURN(std::optional<std::string> frame,
                             decoder->Next());
    if (frame.has_value()) return std::move(*frame);
    RLBENCH_ASSIGN_OR_RETURN(std::string chunk, RecvSome(socket));
    if (chunk.empty()) {
      return Status::IOError("net: eof before a complete frame");
    }
    decoder->Append(chunk);
  }
}

Result<std::string> RecvFrame(const Socket& socket) {
  FrameDecoder decoder;
  return RecvFrame(socket, &decoder);
}

}  // namespace rlbench::serve
