#include "serve/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "serve/wire.h"

namespace rlbench::serve {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError("net: " + what + ": " + std::strerror(errno));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> ListenLoopback(uint16_t port, uint16_t* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, 16) < 0) return Errno("listen");
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      return Errno("getsockname");
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return sock;
}

Result<Socket> ConnectLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("connect 127.0.0.1:" + std::to_string(port));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Result<Socket> Accept(const Socket& listener) {
  int fd;
  do {
    fd = ::accept(listener.fd(), nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Errno("accept");
  Socket sock(fd);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Result<bool> WaitReadable(const Socket& socket, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = socket.fd();
  pfd.events = POLLIN;
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("poll");
  return rc > 0;
}

Status SendAll(const Socket& socket, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n;
    do {
      n = ::send(socket.fd(), bytes.data() + sent, bytes.size() - sent,
                 MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return Errno("send");
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> RecvSome(const Socket& socket) {
  char chunk[16384];
  ssize_t n;
  do {
    n = ::recv(socket.fd(), chunk, sizeof(chunk), 0);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return Errno("recv");
  return std::string(chunk, static_cast<size_t>(n));
}

Status SendFrame(const Socket& socket, std::string_view payload) {
  std::string framed;
  framed.reserve(kFrameHeaderBytes + payload.size());
  RLBENCH_RETURN_NOT_OK(AppendFrame(payload, &framed));
  return SendAll(socket, framed);
}

Result<std::string> RecvFrame(const Socket& socket, FrameDecoder* decoder) {
  while (true) {
    RLBENCH_ASSIGN_OR_RETURN(std::optional<std::string> frame,
                             decoder->Next());
    if (frame.has_value()) return std::move(*frame);
    RLBENCH_ASSIGN_OR_RETURN(std::string chunk, RecvSome(socket));
    if (chunk.empty()) {
      return Status::IOError("net: eof before a complete frame");
    }
    decoder->Append(chunk);
  }
}

Result<std::string> RecvFrame(const Socket& socket) {
  FrameDecoder decoder;
  return RecvFrame(socket, &decoder);
}

}  // namespace rlbench::serve
