// Loopback match client binary.
//
//   ./rlbench_client --port=N --op=ping
//   ./rlbench_client --port=N --op=match --left=3 --right=7
//   ./rlbench_client --port=N --op=assess
//   ./rlbench_client --port=N --op=stats
//   ./rlbench_client --port=N --op=reload --matcher=Magellan-RF [--version=2]
//   ./rlbench_client --port=N --op=shadow_start --matcher=SA-ESDE [--version=2]
//   ./rlbench_client --port=N --op=shadow_status
//   ./rlbench_client --port=N --op=shadow_cancel
//   ./rlbench_client --port=N --op=shutdown
//
// Connecting retries with jittered exponential backoff
// (--connect_attempts=8 bounds it). Exit status 0 iff the server answered
// ok; the response JSON is printed either way (error responses go to
// stderr).
#include <cstdio>
#include <string>

#include "common/flags.h"
#include "serve/client.h"

using namespace rlbench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  int64_t port = flags.GetInt("port", 0);
  std::string op = flags.GetString("op", "ping");
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "usage: rlbench_client --port=N --op=OP\n");
    return 2;
  }

  // Bounded reconnect with jittered exponential backoff: a client launched
  // a beat before the server finishes binding rides out the race instead
  // of dying on the first ECONNREFUSED.
  serve::ReconnectOptions reconnect;
  reconnect.max_attempts =
      static_cast<int>(flags.GetInt("connect_attempts", 8));
  auto client = serve::MatchClient::ConnectWithRetry(
      static_cast<uint16_t>(port), reconnect);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
    return 1;
  }

  std::string request;
  if (op == "ping" || op == "assess" || op == "stats" || op == "shutdown" ||
      op == "shadow_status" || op == "shadow_cancel") {
    request = "{\"op\":\"" + op + "\"}";
  } else if (op == "shadow_start") {
    request = "{\"op\":\"shadow_start\",\"matcher\":\"" +
              flags.GetString("matcher", "Magellan-RF") + "\"";
    if (flags.GetInt("version", 0) > 0) {
      request += ",\"version\":" + std::to_string(flags.GetInt("version", 0));
    }
    request += "}";
  } else if (op == "match") {
    request = "{\"op\":\"match_pair\",\"left\":" +
              std::to_string(flags.GetInt("left", 0)) +
              ",\"right\":" + std::to_string(flags.GetInt("right", 0)) + "}";
  } else if (op == "reload") {
    request = "{\"op\":\"reload\",\"matcher\":\"" +
              flags.GetString("matcher", "Magellan-RF") + "\"";
    if (flags.GetInt("version", 0) > 0) {
      request += ",\"version\":" + std::to_string(flags.GetInt("version", 0));
    }
    request += "}";
  } else {
    std::fprintf(stderr, "unknown op %s\n", op.c_str());
    return 2;
  }

  if (Status sent = client->SendRequest(request); !sent.ok()) {
    std::fprintf(stderr, "send: %s\n", sent.ToString().c_str());
    return 1;
  }
  // Print the raw response frame so the smoke script can grep it; the
  // parsed form drives the exit status.
  auto response = client->RecvResponse();
  if (!response.ok()) {
    std::fprintf(stderr, "error: %s\n", response.status().ToString().c_str());
    return 1;
  }
  if (op == "match") {
    std::printf("score=%.17g decision=%d\n", response->GetNumber("score"),
                response->GetNumber("decision") != 0.0 ? 1 : 0);
  } else if (op == "assess") {
    std::printf("matcher=%s pairs=%.0f f1=%.4f precision=%.4f recall=%.4f\n",
                response->GetString("matcher").c_str(),
                response->GetNumber("pairs"), response->GetNumber("f1"),
                response->GetNumber("precision"),
                response->GetNumber("recall"));
  } else if (op == "stats") {
    std::printf("matcher=%s queue_depth=%.0f requests_served=%.0f\n",
                response->GetString("matcher", "(none)").c_str(),
                response->GetNumber("queue_depth"),
                response->GetNumber("requests_served"));
  } else if (op == "reload") {
    std::printf("reloaded %s v%.0f\n", response->GetString("matcher").c_str(),
                response->GetNumber("version"));
  } else if (op == "shutdown") {
    std::printf("server drained %.0f requests and shut down\n",
                response->GetNumber("drained"));
  } else if (op == "shadow_start") {
    std::printf("shadowing %s v%.0f\n", response->GetString("matcher").c_str(),
                response->GetNumber("version"));
  } else if (op == "shadow_status") {
    std::printf("active=%d sampled=%.0f agreement=%.4f verdict=%s\n",
                response->GetBool("active") ? 1 : 0,
                response->GetNumber("sampled"),
                response->GetNumber("agreement", 1.0),
                response->GetString("verdict", "none").c_str());
  } else if (op == "shadow_cancel") {
    std::printf("cancelled=%d\n", response->GetBool("cancelled") ? 1 : 0);
  } else {
    std::printf("ok dataset=%s matcher=%s\n",
                response->GetString("dataset").c_str(),
                response->GetString("matcher", "(none)").c_str());
  }
  return 0;
}
