// Read-mostly hot-swap handle for served model snapshots. Readers Acquire()
// a shared_ptr to the current value with one atomic load and keep scoring
// against that immutable snapshot for as long as they hold it; a publisher
// Swaps in a replacement without ever blocking readers — in-flight batches
// finish on the model they started with, and the old snapshot is destroyed
// when the last reader drops its reference.
#ifndef RLBENCH_SRC_SERVE_SWAP_H_
#define RLBENCH_SRC_SERVE_SWAP_H_

#include <atomic>
#include <memory>
#include <utility>

namespace rlbench::serve {

/// \brief Atomic shared_ptr slot holding the currently published value.
///
/// Wraps std::atomic<std::shared_ptr<const T>> (C++20): lock-free-ish
/// reference-counted publication with acquire/release ordering, which is
/// exactly the snapshot-isolation readers need and nothing more.
template <typename T>
class HotSwappable {
 public:
  HotSwappable() = default;
  explicit HotSwappable(std::shared_ptr<const T> initial) {
    slot_.store(std::move(initial), std::memory_order_release);
  }

  HotSwappable(const HotSwappable&) = delete;
  HotSwappable& operator=(const HotSwappable&) = delete;

  /// The current value (may be null before the first Swap).
  std::shared_ptr<const T> Acquire() const {
    return slot_.load(std::memory_order_acquire);
  }

  /// Publish `next` and return the previous value.
  std::shared_ptr<const T> Swap(std::shared_ptr<const T> next) {
    return slot_.exchange(std::move(next), std::memory_order_acq_rel);
  }

  bool Empty() const { return Acquire() == nullptr; }

 private:
  std::atomic<std::shared_ptr<const T>> slot_;
};

}  // namespace rlbench::serve

#endif  // RLBENCH_SRC_SERVE_SWAP_H_
