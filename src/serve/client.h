// Synchronous loopback client for the match server. One TCP connection,
// blocking request/response by default, plus a split Send/Recv surface so
// benchmarks and tests can pipeline many requests onto the server's
// micro-batcher. Error responses ({"ok":false,"code","error"}) are mapped
// back into the Status codes the service produced on the far side.
#ifndef RLBENCH_SRC_SERVE_CLIENT_H_
#define RLBENCH_SRC_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "serve/net.h"
#include "serve/service.h"
#include "serve/wire.h"

namespace rlbench::serve {

/// \brief Reconnect policy for ConnectWithRetry: bounded attempts with
/// jittered exponential backoff, so a client racing server startup (or a
/// briefly absent listener) retries instead of failing on the first
/// ECONNREFUSED — without thundering-herd lockstep.
struct ReconnectOptions {
  int max_attempts = 8;
  double initial_backoff_ms = 10.0;
  double max_backoff_ms = 500.0;
  double multiplier = 2.0;
  /// Each sleep is drawn uniformly from [backoff/2, backoff] — full decorrelation
  /// is overkill on loopback, but herd offsets matter for storm benches.
  uint64_t jitter_seed = 0x7e77;
};

/// \brief Blocking JSON client over one loopback connection.
class MatchClient {
 public:
  /// Connect to a server on 127.0.0.1:`port`.
  [[nodiscard]] static Result<MatchClient> Connect(uint16_t port);

  /// Connect with bounded, jitter-backed retries. Returns the last
  /// connect error after max_attempts failures.
  [[nodiscard]] static Result<MatchClient> ConnectWithRetry(
      uint16_t port, const ReconnectOptions& options = {});

  /// Send one raw request payload and block for its response. A response
  /// with "ok":false comes back as the mapped error Status.
  [[nodiscard]] Result<JsonValue> Call(const std::string& payload);

  /// Fire-and-forget half of a pipelined exchange.
  [[nodiscard]] Status SendRequest(const std::string& payload);
  /// Receive half: blocks for the next response frame (parsed, "ok"
  /// checked). Responses arrive in request order.
  [[nodiscard]] Result<JsonValue> RecvResponse();

  // --- Typed ops -----------------------------------------------------------

  [[nodiscard]] Result<JsonValue> Ping();
  Result<PairScore> MatchPair(uint32_t left, uint32_t right);
  /// `deadline_ms` <= 0 uses the server's default.
  [[nodiscard]] Result<std::vector<PairScore>> MatchBatch(
      const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
      double deadline_ms = 0.0);
  [[nodiscard]] Result<JsonValue> Assess();
  Result<JsonValue> Stats();
  [[nodiscard]] Result<JsonValue> Reload(const std::string& matcher, uint64_t version = 0);
  Result<JsonValue> Shutdown();

  /// Serialized match_batch request (shared with pipelined senders).
  static std::string MatchBatchRequest(
      const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
      double deadline_ms = 0.0);

 private:
  explicit MatchClient(Socket socket) : socket_(std::move(socket)) {}

  Socket socket_;
  FrameDecoder decoder_;  // carries partial/extra bytes across responses
};

}  // namespace rlbench::serve

#endif  // RLBENCH_SRC_SERVE_CLIENT_H_
