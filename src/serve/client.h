// Synchronous loopback client for the match server. One TCP connection,
// blocking request/response by default, plus a split Send/Recv surface so
// benchmarks and tests can pipeline many requests onto the server's
// micro-batcher. Error responses ({"ok":false,"code","error"}) are mapped
// back into the Status codes the service produced on the far side.
#ifndef RLBENCH_SRC_SERVE_CLIENT_H_
#define RLBENCH_SRC_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "serve/net.h"
#include "serve/service.h"
#include "serve/wire.h"

namespace rlbench::serve {

/// \brief Blocking JSON client over one loopback connection.
class MatchClient {
 public:
  /// Connect to a server on 127.0.0.1:`port`.
  [[nodiscard]] static Result<MatchClient> Connect(uint16_t port);

  /// Send one raw request payload and block for its response. A response
  /// with "ok":false comes back as the mapped error Status.
  [[nodiscard]] Result<JsonValue> Call(const std::string& payload);

  /// Fire-and-forget half of a pipelined exchange.
  [[nodiscard]] Status SendRequest(const std::string& payload);
  /// Receive half: blocks for the next response frame (parsed, "ok"
  /// checked). Responses arrive in request order.
  [[nodiscard]] Result<JsonValue> RecvResponse();

  // --- Typed ops -----------------------------------------------------------

  [[nodiscard]] Result<JsonValue> Ping();
  Result<PairScore> MatchPair(uint32_t left, uint32_t right);
  /// `deadline_ms` <= 0 uses the server's default.
  [[nodiscard]] Result<std::vector<PairScore>> MatchBatch(
      const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
      double deadline_ms = 0.0);
  [[nodiscard]] Result<JsonValue> Assess();
  Result<JsonValue> Stats();
  [[nodiscard]] Result<JsonValue> Reload(const std::string& matcher, uint64_t version = 0);
  Result<JsonValue> Shutdown();

  /// Serialized match_batch request (shared with pipelined senders).
  static std::string MatchBatchRequest(
      const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
      double deadline_ms = 0.0);

 private:
  explicit MatchClient(Socket socket) : socket_(std::move(socket)) {}

  Socket socket_;
  FrameDecoder decoder_;  // carries partial/extra bytes across responses
};

}  // namespace rlbench::serve

#endif  // RLBENCH_SRC_SERVE_CLIENT_H_
