#include "serve/snapshot.h"

#include <utility>

#include "common/blob.h"
#include "fault/failpoint.h"

namespace rlbench::serve {

namespace {

// 8 magic bytes, excluding the string literal's terminating NUL.
constexpr size_t kMagicLen = sizeof(kSnapshotMagic) - 1;

// FNV-1a over the payload between the magic and the checksum: not
// cryptographic, just enough to turn bit rot and torn writes into load
// errors. The fault tests flip payload bytes and expect a failed decode.
uint64_t Fnv1a(const char* data, size_t size) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

}  // namespace

std::string EncodeSnapshot(const SnapshotMetadata& metadata,
                           const matchers::TrainedModel& model) {
  BlobWriter payload;
  payload.WriteString(metadata.matcher_name);
  payload.WriteString(metadata.dataset_id);
  payload.WriteU64(metadata.version);
  payload.WriteU64(metadata.num_attrs);
  matchers::SerializeTrainedModel(model, &payload);

  std::string body = payload.Release();
  BlobWriter out;
  for (size_t i = 0; i < kMagicLen; ++i) {
    out.WriteU8(static_cast<uint8_t>(kSnapshotMagic[i]));
  }
  out.WriteU64(Fnv1a(body.data(), body.size()));
  std::string bytes = out.Release();
  bytes += body;
  return bytes;
}

Result<Snapshot> DecodeSnapshot(const std::string& bytes) {
  if (auto hit = RLBENCH_FAULT_POINT("serve/snapshot/decode")) {
    return Status::IOError("injected: snapshot decode");
  }
  if (bytes.size() < kMagicLen + 8 ||
      bytes.compare(0, kMagicLen, kSnapshotMagic, kMagicLen) != 0) {
    return Status::IOError("snapshot: bad magic");
  }
  BlobReader reader(bytes);
  for (size_t i = 0; i < kMagicLen; ++i) {
    RLBENCH_ASSIGN_OR_RETURN(uint8_t ignored, reader.ReadU8());
    (void)ignored;
  }
  RLBENCH_ASSIGN_OR_RETURN(uint64_t checksum, reader.ReadU64());
  const char* body = bytes.data() + kMagicLen + 8;
  size_t body_size = bytes.size() - kMagicLen - 8;
  if (Fnv1a(body, body_size) != checksum) {
    return Status::IOError("snapshot: checksum mismatch");
  }

  Snapshot snapshot;
  RLBENCH_ASSIGN_OR_RETURN(snapshot.metadata.matcher_name,
                           reader.ReadString());
  RLBENCH_ASSIGN_OR_RETURN(snapshot.metadata.dataset_id, reader.ReadString());
  RLBENCH_ASSIGN_OR_RETURN(snapshot.metadata.version, reader.ReadU64());
  RLBENCH_ASSIGN_OR_RETURN(snapshot.metadata.num_attrs, reader.ReadU64());
  RLBENCH_ASSIGN_OR_RETURN(auto model,
                           matchers::DeserializeTrainedModel(&reader));
  if (!reader.AtEnd()) {
    return Status::IOError("snapshot: trailing bytes after model payload");
  }
  if (model->num_attrs() != snapshot.metadata.num_attrs) {
    return Status::IOError("snapshot: metadata/model attribute arity mismatch");
  }
  if (model->matcher_name() != snapshot.metadata.matcher_name) {
    return Status::IOError("snapshot: metadata/model matcher name mismatch");
  }
  snapshot.model = std::shared_ptr<const matchers::TrainedModel>(
      std::move(model));
  return snapshot;
}

}  // namespace rlbench::serve
