// The match-serving core: a bounded admission-controlled request queue in
// front of a micro-batcher that scores candidate pairs through the current
// hot-swappable model snapshot (swap.h) on the deterministic parallel pool.
//
// Execution model: the service itself is single-threaded — Submit()
// enqueues, PumpOne() coalesces queued requests into one batch and scores
// it with TrainedModel::ScoreBatch (whose ParallelFor is the only
// parallelism, keeping scores bit-identical at any thread count). The
// loopback server (server.h) pumps between socket events; tests pump
// directly. Admission control rejects at Submit time: a full queue returns
// ResourceExhausted, an oversized request InvalidArgument, and a request
// whose deadline lapses while queued is answered with DeadlineExceeded
// instead of being scored.
//
// Failpoints: serve/queue/full (forced admission rejection),
// serve/deadline (forced expiry at pump time), serve/worker/fault
// (per-request scoring failure — the request errors, the batch and the
// process live on). Metrics: serve/requests, serve/rejected,
// serve/deadline_expired, serve/worker_faults, serve/batches,
// serve/pairs_scored, serve/swaps; histograms serve/latency_ms,
// serve/queue_wait_ms, serve/batch_pairs.
#ifndef RLBENCH_SRC_SERVE_SERVICE_H_
#define RLBENCH_SRC_SERVE_SERVICE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "matchers/context.h"
#include "matchers/trained_model.h"
#include "ml/metrics.h"
#include "serve/snapshot.h"
#include "serve/swap.h"

namespace rlbench::serve {

struct MatchServiceOptions {
  /// Admission bound: total candidate pairs that may wait in the queue.
  size_t queue_capacity_pairs = 512;
  /// Micro-batch bound: pairs coalesced into one ScoreBatch dispatch; also
  /// the largest single request the service admits.
  size_t max_batch_pairs = 256;
  /// Deadline applied to Submit() (not SubmitWithDeadline); 0 = none.
  double default_deadline_ms = 0.0;
};

/// \brief Score + decision for one requested pair.
struct PairScore {
  double score = 0.0;
  uint8_t decision = 0;
};

/// \brief Terminal result of one queued request.
struct RequestOutcome {
  uint64_t request_id = 0;
  Status status;                   ///< per-request error, e.g. DeadlineExceeded
  std::vector<PairScore> results;  ///< one per requested pair when ok()
};

using ResponseCallback = std::function<void(const RequestOutcome&)>;

/// \brief Served evaluation of the task's test split.
struct AssessResult {
  std::string matcher_name;
  size_t pairs = 0;
  size_t batches = 0;
  ml::Confusion confusion;
  double f1 = 0.0;
};

/// \brief Batched, admission-controlled scorer over one MatchingContext.
///
/// Not thread-safe: all members must be called from one thread (the
/// server's event loop). Parallelism happens inside ScoreBatch only.
class MatchService {
 public:
  explicit MatchService(const matchers::MatchingContext* context,
                        MatchServiceOptions options = {});

  const MatchServiceOptions& options() const { return options_; }

  /// Validate `snapshot` against the served dataset and make its model
  /// current (readers of an in-flight batch keep the old snapshot).
  [[nodiscard]] Status InstallSnapshot(const Snapshot& snapshot);

  /// Install a model directly (tests, in-process serving). Warms and
  /// freezes whatever context caches the model's feature family reads.
  [[nodiscard]] Status SwapModel(std::shared_ptr<const matchers::TrainedModel> model);

  /// The currently served model; null before the first install.
  std::shared_ptr<const matchers::TrainedModel> CurrentModel() const {
    return model_.Acquire();
  }

  /// Enqueue one request under the default deadline. Returns the request
  /// id, or: FailedPrecondition (no model), InvalidArgument (bad indices /
  /// empty / oversized request), ResourceExhausted (queue full). `done`
  /// fires exactly once, from PumpOne or Drain, never from Submit.
  [[nodiscard]] Result<uint64_t> Submit(std::vector<data::LabeledPair> pairs,
                          ResponseCallback done);
  [[nodiscard]] Result<uint64_t> SubmitWithDeadline(std::vector<data::LabeledPair> pairs,
                                      double deadline_ms,
                                      ResponseCallback done);

  /// Coalesce up to max_batch_pairs queued pairs into one scored batch and
  /// answer their requests. Returns the number of requests answered (0
  /// when idle). Coalescing never changes scores: each pair's score is a
  /// pure function of (model, context, pair).
  size_t PumpOne();

  /// Pump until the queue is empty (graceful shutdown path); every queued
  /// request is answered — scored or expired, never dropped.
  size_t Drain();

  size_t QueueDepth() const { return queue_.size(); }
  size_t QueuedPairs() const { return queued_pairs_; }

  /// Score the task's entire test split through the served model in
  /// max_batch_pairs chunks and evaluate against ground truth. Optionally
  /// copies out the raw scores / decisions (test order).
  [[nodiscard]] Result<AssessResult> AssessDataset(std::vector<double>* scores_out = nullptr,
                                     std::vector<uint8_t>* decisions_out =
                                         nullptr);

 private:
  struct Pending {
    uint64_t id = 0;
    std::vector<data::LabeledPair> pairs;
    double deadline_ms = 0.0;
    Stopwatch age;  ///< runs from admission; queue wait and latency source
    ResponseCallback done;
  };

  /// Record latency and fire the callback.
  void Respond(Pending* request, RequestOutcome outcome);

  const matchers::MatchingContext* context_;
  MatchServiceOptions options_;
  HotSwappable<matchers::TrainedModel> model_;
  std::deque<Pending> queue_;
  size_t queued_pairs_ = 0;
  uint64_t next_request_id_ = 1;
};

}  // namespace rlbench::serve

#endif  // RLBENCH_SRC_SERVE_SERVICE_H_
