// The match-serving core: a bounded admission-controlled request queue in
// front of a micro-batcher that scores candidate pairs through the current
// hot-swappable model snapshot (swap.h) on the deterministic parallel pool.
//
// Execution model: the service itself is single-threaded — Submit()
// enqueues, PumpOne() coalesces queued requests into one batch and scores
// it with TrainedModel::ScoreBatch (whose ParallelFor is the only
// parallelism, keeping scores bit-identical at any thread count). The
// loopback server (server.h) pumps between socket events; tests pump
// directly. Admission control rejects at Submit time: a full queue returns
// ResourceExhausted, an oversized request InvalidArgument, and a request
// whose deadline lapses while queued is answered with DeadlineExceeded
// instead of being scored.
//
// Layered on the base queue (all opt-in, defaults preserve the plain
// single-queue service):
//
//   * Per-tenant admission (admission.h): requests carry a tenant id;
//     token-bucket quotas reject over-quota tenants with ResourceExhausted
//     and a Retry-After hint, and each tenant gets its own FIFO so the
//     micro-batcher round-robins fairly across tenants instead of letting
//     one flood starve the rest.
//   * Tiered load-shedding (shed.h): a hysteresis controller over queue
//     fill and rolling p99 degrades requests to the linear fallback model
//     (bit-identical to running that scorer directly), then to rejection.
//   * Shadow promotion (shadow.h): a candidate snapshot shadow-scores a
//     deterministic sample of full-tier traffic; the service promotes it
//     via hot-swap when the agreement/latency gates pass and rolls it back
//     on divergence or any shadow fault.
//
// Failpoints: serve/queue/full (forced admission rejection),
// serve/deadline (forced expiry at pump time), serve/worker/fault
// (per-request scoring failure — the request errors, the batch and the
// process live on), serve/shadow/score (shadow divergence). Metrics:
// serve/requests, serve/rejected, serve/deadline_expired,
// serve/worker_faults, serve/batches, serve/pairs_scored, serve/swaps,
// serve/quota/rejected, serve/shed/*, serve/shadow/*; histograms
// serve/latency_ms, serve/queue_wait_ms, serve/batch_pairs.
#ifndef RLBENCH_SRC_SERVE_SERVICE_H_
#define RLBENCH_SRC_SERVE_SERVICE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "drift/tracker.h"
#include "matchers/context.h"
#include "matchers/trained_model.h"
#include "ml/metrics.h"
#include "serve/admission.h"
#include "serve/shadow.h"
#include "serve/shed.h"
#include "serve/snapshot.h"
#include "serve/swap.h"

namespace rlbench::serve {

struct MatchServiceOptions {
  /// Admission bound: total candidate pairs that may wait in the queue.
  size_t queue_capacity_pairs = 512;
  /// Micro-batch bound: pairs coalesced into one ScoreBatch dispatch; also
  /// the largest single request the service admits.
  size_t max_batch_pairs = 256;
  /// Deadline applied to Submit() (not SubmitWithDeadline); 0 = none.
  double default_deadline_ms = 0.0;
  /// Enable the tiered shed controller (off = every request is full tier,
  /// the pre-shedding behaviour).
  bool shed_enabled = false;
  ShedOptions shed;
  /// Retry-After hint attached to shed rejections (ms).
  double shed_retry_after_ms = 50.0;
  /// Enable difficulty-drift monitoring (src/drift/). The RLBENCH_DRIFT
  /// environment variable force-enables it process-wide; when neither is
  /// set the service holds no tracker and serving is byte-identical to
  /// the pre-drift behaviour (the hook is one null check).
  bool drift_enabled = false;
  drift::DriftTrackerOptions drift;
};

/// \brief Score + decision for one requested pair.
struct PairScore {
  double score = 0.0;
  uint8_t decision = 0;
};

/// \brief Terminal result of one queued request.
struct RequestOutcome {
  uint64_t request_id = 0;
  Status status;                   ///< per-request error, e.g. DeadlineExceeded
  ShedTier tier = ShedTier::kFull; ///< which model tier scored it
  std::vector<PairScore> results;  ///< one per requested pair when ok()
};

using ResponseCallback = std::function<void(const RequestOutcome&)>;

/// \brief Per-request admission parameters beyond the pairs themselves.
struct SubmitOptions {
  std::string tenant;       ///< "" = the anonymous tenant
  double deadline_ms = 0.0; ///< 0 = no deadline
};

/// \brief Served evaluation of the task's test split.
struct AssessResult {
  std::string matcher_name;
  size_t pairs = 0;
  size_t batches = 0;
  ml::Confusion confusion;
  double f1 = 0.0;
};

/// \brief What happened to the active shadow window, for the server to
/// surface (served-model identity, logs) after it pumps.
struct ShadowEvent {
  enum class Kind : uint8_t { kNone = 0, kPromoted = 1, kRolledBack = 2 };
  Kind kind = Kind::kNone;
  SnapshotMetadata metadata;
  ShadowStats stats;
};

/// \brief Plain-number view of the drift loop for the server's stats op
/// and manifests; keeps drift types out of server.cc (lint rule `drift`).
struct DriftStatus {
  bool enabled = false;
  std::string state;  ///< "stable" / "watch" / "triggered"
  uint64_t windows = 0;
  uint64_t transitions = 0;
  uint64_t triggers = 0;
  uint64_t sampled_pairs = 0;
  size_t window_pairs = 0;
  bool has_measures = false;
  double best_linear_f1 = 0.0;
  double complexity_avg = 0.0;
  double nlb = 0.0;
  double lbm = 0.0;
};

/// \brief Batched, admission-controlled scorer over one MatchingContext.
///
/// Not thread-safe: all members must be called from one thread (the
/// server's event loop). Parallelism happens inside ScoreBatch only.
class MatchService {
 public:
  explicit MatchService(const matchers::MatchingContext* context,
                        MatchServiceOptions options = {});

  const MatchServiceOptions& options() const { return options_; }

  /// Validate `snapshot` against the served dataset and make its model
  /// current (readers of an in-flight batch keep the old snapshot).
  [[nodiscard]] Status InstallSnapshot(const Snapshot& snapshot);

  /// Install a model directly (tests, in-process serving). Warms and
  /// freezes whatever context caches the model's feature family reads.
  [[nodiscard]] Status SwapModel(std::shared_ptr<const matchers::TrainedModel> model);

  /// The currently served model; null before the first install.
  std::shared_ptr<const matchers::TrainedModel> CurrentModel() const {
    return model_.Acquire();
  }

  /// Install the cheap linear scorer the degraded tier falls back to.
  /// Warms the union of the primary's and fallback's cache families, so
  /// installing a fallback never changes primary scores.
  [[nodiscard]] Status SetFallbackModel(
      std::shared_ptr<const matchers::TrainedModel> model);
  std::shared_ptr<const matchers::TrainedModel> FallbackModel() const {
    return fallback_;
  }

  /// Configure per-tenant quotas from the admission.h spec grammar.
  /// InvalidArgument on a malformed spec.
  [[nodiscard]] Status SetQuotas(const std::string& spec);

  /// Enqueue one request under the default deadline. Returns the request
  /// id, or: FailedPrecondition (no model), InvalidArgument (bad indices /
  /// empty / oversized request), ResourceExhausted (queue full, tenant
  /// over quota, or shed rejection). `done` fires exactly once, from
  /// PumpOne or Drain, never from Submit.
  [[nodiscard]] Result<uint64_t> Submit(std::vector<data::LabeledPair> pairs,
                          ResponseCallback done);
  [[nodiscard]] Result<uint64_t> SubmitWithDeadline(std::vector<data::LabeledPair> pairs,
                                      double deadline_ms,
                                      ResponseCallback done);
  /// Full-control variant: tenant-attributed, quota-metered, tier-stamped.
  [[nodiscard]] Result<uint64_t> SubmitRequest(
      std::vector<data::LabeledPair> pairs, const SubmitOptions& submit,
      ResponseCallback done);

  /// Retry-After hint (ms) of the most recent ResourceExhausted rejection
  /// (quota refill time, or the configured shed hint). 0 when the last
  /// rejection carried no hint.
  double LastRetryAfterMs() const { return last_retry_after_ms_; }

  /// Coalesce up to max_batch_pairs queued pairs into one scored batch and
  /// answer their requests. Requests are taken round-robin across tenant
  /// queues (FIFO within a tenant); one batch holds one tier only, since a
  /// batch is scored by exactly one model. Returns the number of requests
  /// answered (0 when idle). Coalescing never changes scores: each pair's
  /// score is a pure function of (model, context, pair).
  size_t PumpOne();

  /// Pump until the queue is empty (graceful shutdown path); every queued
  /// request is answered — scored or expired, never dropped.
  size_t Drain();

  size_t QueueDepth() const { return queue_depth_; }
  size_t QueuedPairs() const { return queued_pairs_; }

  /// Current shed tier (kFull when shedding is disabled).
  ShedTier CurrentTier() const { return shed_.tier(); }
  uint64_t ShedTransitions() const { return shed_.transitions(); }
  /// Requests admitted per tier + shed rejections, since construction.
  uint64_t TierCount(ShedTier tier) const {
    return tier_counts_[static_cast<size_t>(tier)];
  }

  /// p99 over the most recent served-request latencies (0 until the first
  /// response). Also the latency signal the shed controller sees.
  double RollingP99Ms() const;

  /// Begin a shadow window for `candidate` against CURRENT. Fails when no
  /// primary model is installed, a shadow is already active, or the
  /// candidate does not fit the dataset. Warms the union of both models'
  /// cache families (primary scores are unchanged).
  [[nodiscard]] Status StartShadow(
      std::shared_ptr<const matchers::TrainedModel> candidate,
      SnapshotMetadata metadata, ShadowOptions options = {});
  /// The active shadow window, if any.
  const ShadowEvaluator* Shadow() const { return shadow_.get(); }
  /// Abort the active window without promoting. False when none is active.
  bool CancelShadow();
  /// The latest promotion/rollback outcome, cleared by this call.
  ShadowEvent ConsumeShadowEvent();

  /// The drift tracker, if monitoring is enabled (null otherwise). The
  /// serve hook itself lives in PumpOne; everything else (arming the
  /// zero-shot arm, consuming events) goes through the tracker directly.
  drift::DriftTracker* Drift() { return drift_.get(); }
  const drift::DriftTracker* Drift() const { return drift_.get(); }

  /// Plain-number drift summary for stats surfaces (empty-state defaults
  /// when monitoring is disabled).
  DriftStatus DriftSnapshot() const;

  /// Train a servable matcher against the served context mid-serve (the
  /// drift reaction path): thaws the record caches for the training
  /// phase, then re-freezes with every installed model's feature family
  /// re-warmed, so already-served scores are unchanged. The returned
  /// model is ready for StartShadow. Must not be called while a batch is
  /// in flight (single-threaded service: call between pumps).
  [[nodiscard]] Result<std::shared_ptr<const matchers::TrainedModel>>
  RetrainMatcher(const std::string& name, uint64_t seed = 17);

  /// True exactly once per drift episode: the controller entered
  /// kTriggered. Fills `status` with the triggering window's summary.
  /// The caller reacts (retrain → publish → StartShadow) and then calls
  /// RearmDrift() once the episode is resolved.
  bool TakeDriftTrigger(DriftStatus* status);
  void RearmDrift();

  /// Score the task's entire test split through the served model in
  /// max_batch_pairs chunks and evaluate against ground truth. Optionally
  /// copies out the raw scores / decisions (test order).
  [[nodiscard]] Result<AssessResult> AssessDataset(std::vector<double>* scores_out = nullptr,
                                     std::vector<uint8_t>* decisions_out =
                                         nullptr);

 private:
  struct Pending {
    uint64_t id = 0;
    std::vector<data::LabeledPair> pairs;
    double deadline_ms = 0.0;
    ShedTier tier = ShedTier::kFull;
    Stopwatch age;  ///< runs from admission; queue wait and latency source
    ResponseCallback done;
  };

  /// Record latency and fire the callback.
  void Respond(Pending* request, RequestOutcome outcome);

  /// Thaw both record caches, re-warm every installed model's feature
  /// family (primary, fallback, shadow candidate — warming is idempotent
  /// and additive, so already-cached values are untouched and scores stay
  /// bit-identical), and freeze again.
  void RewarmAll(const matchers::TrainedModel* extra);

  /// Take one batch of same-tier requests, round-robin across tenants.
  std::vector<Pending> TakeBatch(size_t* batch_pairs, ShedTier* batch_tier);

  /// Feed the shed controller one observation (no-op when disabled).
  void ObservePressure();

  const matchers::MatchingContext* context_;
  MatchServiceOptions options_;
  HotSwappable<matchers::TrainedModel> model_;
  std::shared_ptr<const matchers::TrainedModel> fallback_;
  AdmissionController admission_;
  ShedController shed_;
  std::unique_ptr<ShadowEvaluator> shadow_;
  ShadowEvent shadow_event_;
  std::unique_ptr<drift::DriftTracker> drift_;
  /// Per-tenant FIFOs (ordered map: deterministic rotation order) and the
  /// round-robin cursor (last tenant served).
  std::map<std::string, std::deque<Pending>> queues_;
  std::string cursor_;
  size_t queue_depth_ = 0;
  size_t queued_pairs_ = 0;
  uint64_t next_request_id_ = 1;
  uint64_t tier_counts_[3] = {0, 0, 0};
  double last_retry_after_ms_ = 0.0;
  /// Ring of recent request latencies feeding RollingP99Ms.
  std::vector<double> latency_ring_;
  size_t latency_next_ = 0;
  size_t latency_count_ = 0;
  Stopwatch uptime_;  ///< monotonic now_ms source for the token buckets
};

}  // namespace rlbench::serve

#endif  // RLBENCH_SRC_SERVE_SERVICE_H_
