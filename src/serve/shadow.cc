#include "serve/shadow.h"

#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"

namespace rlbench::serve {

namespace {

// FNV-1a over (seed, left, right): a stable, thread-count-independent
// sampling hash. Not rlbench::Rng on purpose — sampling must be a pure
// function of the pair, not of how many pairs were hashed before it.
uint64_t PairHash(uint64_t seed, uint32_t left, uint32_t right) {
  uint64_t hash = 14695981039346656037ull ^ seed;
  auto mix = [&hash](uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (byte * 8)) & 0xff;
      hash *= 1099511628211ull;
    }
  };
  mix(left);
  mix(right);
  return hash;
}

}  // namespace

ShadowEvaluator::ShadowEvaluator(
    std::shared_ptr<const matchers::TrainedModel> candidate,
    SnapshotMetadata metadata, ShadowOptions options)
    : candidate_(std::move(candidate)),
      metadata_(std::move(metadata)),
      options_(options) {
  RLBENCH_CHECK(candidate_ != nullptr);
  RLBENCH_CHECK(options_.sample_fraction > 0.0 &&
                options_.sample_fraction <= 1.0);
  RLBENCH_CHECK(options_.target_samples >= options_.min_samples);
}

bool ShadowEvaluator::ShouldSample(const data::LabeledPair& pair) const {
  // Map the hash to [0, 1) and compare against the fraction; each pair's
  // fate is fixed by (seed, left, right) alone.
  uint64_t hash = PairHash(options_.seed, pair.left, pair.right);
  double unit = static_cast<double>(hash >> 11) * 0x1.0p-53;
  return unit < options_.sample_fraction;
}

ShadowEvaluator::Verdict ShadowEvaluator::RecordBatch(
    const matchers::MatchingContext& context,
    std::span<const data::LabeledPair> pairs,
    std::span<const uint8_t> decisions, double primary_ms) {
  std::vector<data::LabeledPair> sampled;
  std::vector<uint8_t> primary_decisions;
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (ShouldSample(pairs[i])) {
      sampled.push_back(pairs[i]);
      primary_decisions.push_back(decisions[i]);
    }
  }
  if (sampled.empty()) return CurrentVerdict();

  Status scored;
  std::vector<double> shadow_scores(sampled.size());
  std::vector<uint8_t> shadow_decisions(sampled.size());
  Stopwatch shadow_clock;
  if (auto hit = RLBENCH_FAULT_POINT("serve/shadow/score")) {
    scored = Status::Internal("injected: shadow scoring fault");
  } else {
    scored = candidate_->ScoreBatch(context, sampled, shadow_scores,
                                    shadow_decisions);
  }
  if (!scored.ok()) {
    ++stats_.faults;
    RLBENCH_COUNTER_INC("serve/shadow/faults");
    return CurrentVerdict();
  }
  stats_.shadow_ms += shadow_clock.ElapsedMillis();
  stats_.primary_ms += primary_ms;
  stats_.sampled_pairs += sampled.size();
  RLBENCH_COUNTER_ADD("serve/shadow/sampled", sampled.size());
  for (size_t i = 0; i < sampled.size(); ++i) {
    if (shadow_decisions[i] == primary_decisions[i]) {
      ++stats_.agreed_pairs;
      RLBENCH_COUNTER_INC("serve/shadow/agreed");
    } else {
      RLBENCH_COUNTER_INC("serve/shadow/disagreed");
    }
  }
  return CurrentVerdict();
}

ShadowEvaluator::Verdict ShadowEvaluator::CurrentVerdict() const {
  // Any shadow fault is divergence by definition: the candidate failed to
  // reproduce traffic CURRENT served fine.
  if (stats_.faults > 0) return Verdict::kRollback;
  if (stats_.sampled_pairs < options_.min_samples) return Verdict::kPending;
  if (stats_.Agreement() < options_.min_agreement) return Verdict::kRollback;
  if (options_.max_latency_ratio > 0.0 && stats_.primary_ms > 0.0 &&
      stats_.LatencyRatio() > options_.max_latency_ratio) {
    return Verdict::kRollback;
  }
  if (stats_.sampled_pairs >= options_.target_samples) {
    return Verdict::kPromote;
  }
  return Verdict::kPending;
}

}  // namespace rlbench::serve
