#include "serve/model_repository.h"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "data/file_source.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlbench::serve {

namespace {

// Matcher names become directory names; they are registry-controlled
// ("Magellan-RF", "SA-ESDE", ...) but reject separators defensively so a
// hostile name cannot escape the repository root.
bool SafeDirectoryName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    if (c == '/' || c == '\\' || c == '\0') return false;
  }
  return name != "." && name != "..";
}

std::string FormatVersion(uint64_t version) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "v%04llu.snap",
                static_cast<unsigned long long>(version));
  return buffer;
}

Result<uint64_t> ParseCurrent(const std::string& text) {
  uint64_t value = 0;
  size_t i = 0;
  for (; i < text.size() && text[i] >= '0' && text[i] <= '9'; ++i) {
    if (value > (1ULL << 60)) return Status::IOError("CURRENT: overflow");
    value = value * 10 + static_cast<uint64_t>(text[i] - '0');
  }
  // Allow a single trailing newline, nothing else.
  if (i == 0 || (i < text.size() && (text[i] != '\n' || i + 1 != text.size()))) {
    return Status::IOError("CURRENT: malformed version file");
  }
  if (value == 0) return Status::IOError("CURRENT: version must be >= 1");
  return value;
}

}  // namespace

std::string ModelRepository::SnapshotPath(const std::string& matcher_name,
                                          uint64_t version) const {
  return root_ + "/" + matcher_name + "/" + FormatVersion(version);
}

std::string ModelRepository::CurrentPath(
    const std::string& matcher_name) const {
  return root_ + "/" + matcher_name + "/CURRENT";
}

Result<uint64_t> ModelRepository::Publish(SnapshotMetadata metadata,
                                          const matchers::TrainedModel& model) {
  RLBENCH_TRACE_SPAN("serve/publish");
  if (!SafeDirectoryName(metadata.matcher_name)) {
    return Status::InvalidArgument("repository: unsafe matcher name \"" +
                                   metadata.matcher_name + "\"");
  }
  uint64_t next = 1;
  {
    auto current = CurrentVersion(metadata.matcher_name);
    if (current.ok()) {
      next = *current + 1;
    } else if (current.status().code() != StatusCode::kNotFound) {
      return current.status();
    }
  }
  std::error_code ec;
  std::filesystem::create_directories(root_ + "/" + metadata.matcher_name, ec);
  if (ec) {
    return Status::IOError("repository: cannot create " + root_ + "/" +
                           metadata.matcher_name + ": " + ec.message());
  }
  metadata.version = next;
  std::string bytes = EncodeSnapshot(metadata, model);
  RLBENCH_RETURN_NOT_OK(data::FileSource::WriteAtomic(
      SnapshotPath(metadata.matcher_name, next), bytes));
  // The version file is the publish point: once CURRENT renames over,
  // LoadCurrent observes the new version; before that, the old one.
  RLBENCH_RETURN_NOT_OK(data::FileSource::WriteAtomic(
      CurrentPath(metadata.matcher_name), std::to_string(next) + "\n"));
  RLBENCH_COUNTER_INC("serve/snapshots_published");
  return next;
}

Result<Snapshot> ModelRepository::Load(const std::string& matcher_name,
                                       uint64_t version) const {
  RLBENCH_TRACE_SPAN("serve/snapshot_load");
  if (!SafeDirectoryName(matcher_name)) {
    return Status::InvalidArgument("repository: unsafe matcher name \"" +
                                   matcher_name + "\"");
  }
  if (auto hit = RLBENCH_FAULT_POINT("serve/snapshot/load")) {
    return Status::IOError("injected: snapshot load " + matcher_name);
  }
  RLBENCH_ASSIGN_OR_RETURN(
      std::string bytes,
      data::FileSource::ReadAll(SnapshotPath(matcher_name, version)));
  RLBENCH_ASSIGN_OR_RETURN(Snapshot snapshot, DecodeSnapshot(bytes));
  if (snapshot.metadata.matcher_name != matcher_name ||
      snapshot.metadata.version != version) {
    return Status::IOError("repository: snapshot identity mismatch in " +
                           SnapshotPath(matcher_name, version));
  }
  RLBENCH_COUNTER_INC("serve/snapshots_loaded");
  return snapshot;
}

Result<uint64_t> ModelRepository::CurrentVersion(
    const std::string& matcher_name) const {
  if (!SafeDirectoryName(matcher_name)) {
    return Status::InvalidArgument("repository: unsafe matcher name \"" +
                                   matcher_name + "\"");
  }
  auto text = data::FileSource::ReadAll(CurrentPath(matcher_name));
  if (!text.ok()) {
    if (text.status().code() == StatusCode::kNotFound) {
      return Status::NotFound("repository: no published snapshot for \"" +
                              matcher_name + "\"");
    }
    return text.status();
  }
  return ParseCurrent(*text);
}

Result<Snapshot> ModelRepository::LoadCurrent(
    const std::string& matcher_name) const {
  RLBENCH_ASSIGN_OR_RETURN(uint64_t version, CurrentVersion(matcher_name));
  return Load(matcher_name, version);
}

Result<std::vector<uint64_t>> ModelRepository::ListVersions(
    const std::string& matcher_name) const {
  auto current = CurrentVersion(matcher_name);
  if (!current.ok()) {
    if (current.status().code() == StatusCode::kNotFound) {
      return std::vector<uint64_t>{};
    }
    return current.status();
  }
  std::vector<uint64_t> versions;
  versions.reserve(*current);
  for (uint64_t v = 1; v <= *current; ++v) versions.push_back(v);
  return versions;
}

}  // namespace rlbench::serve
