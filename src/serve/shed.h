// Tiered load-shedding for the match service, built on the paper's central
// finding: linear matchers (ESDE) score nearly as well as deep ones on most
// benchmark splits, so under pressure the service can *degrade* to the
// cheap linear scorer long before it must *reject*. Three tiers:
//
//   kFull     — score with the primary (CURRENT) model
//   kDegraded — score with the configured linear fallback model
//   kReject   — refuse admission with ResourceExhausted + Retry-After
//
// Transitions are driven by a hysteresis controller over two pressure
// signals: queue fill (queued pairs / capacity) and the service's rolling
// p99 latency. Each tier boundary has an *enter* threshold and a lower
// *exit* threshold, plus a dwell count — the signal must sit past the
// threshold for `dwell` consecutive observations before the tier moves.
// Hysteresis + dwell prevent tier flapping when load hovers at a boundary.
//
// The controller only picks *which model scores a request*; it never
// changes how a model scores. Degraded-tier outputs are therefore
// bit-identical to running the fallback scorer directly.
//
// Metrics: serve/shed/transitions (counter), serve/shed/tier (gauge:
// 0/1/2). The per-request tier counters (serve/shed/full, .../degraded,
// .../rejected) are recorded by the service at submit time.
#ifndef RLBENCH_SRC_SERVE_SHED_H_
#define RLBENCH_SRC_SERVE_SHED_H_

#include <cstdint>
#include <string>

namespace rlbench::serve {

/// \brief Service tier a request is admitted at. Order matters: higher
/// values shed more.
enum class ShedTier : uint8_t { kFull = 0, kDegraded = 1, kReject = 2 };

/// Stable wire/manifest name ("full", "degraded", "reject").
const char* ShedTierName(ShedTier tier);

struct ShedOptions {
  /// Queue-fill fraction (queued pairs / capacity) that enters / exits the
  /// degraded tier. Enter must exceed exit (hysteresis band).
  double degrade_enter_fill = 0.60;
  double degrade_exit_fill = 0.30;
  /// Queue-fill fraction that enters / exits the reject tier.
  double reject_enter_fill = 0.90;
  double reject_exit_fill = 0.60;
  /// Rolling p99 latency (ms) that enters / exits the degraded tier;
  /// 0 disables the latency signal (queue fill still sheds).
  double p99_enter_ms = 0.0;
  double p99_exit_ms = 0.0;
  /// Consecutive observations past a threshold before the tier moves.
  int dwell = 2;
};

/// \brief Hysteresis controller mapping pressure observations to a tier.
///
/// Not thread-safe; owned by the single-threaded MatchService.
class ShedController {
 public:
  explicit ShedController(ShedOptions options = {});

  /// Feed one observation and return the (possibly unchanged) tier.
  /// `queue_fill` in [0, 1]; `p99_ms` <= 0 means "no latency sample yet".
  ShedTier Observe(double queue_fill, double p99_ms);

  ShedTier tier() const { return tier_; }
  uint64_t transitions() const { return transitions_; }
  const ShedOptions& options() const { return options_; }

 private:
  /// The tier the raw signals point at, ignoring dwell/hysteresis state.
  ShedTier TargetTier(double queue_fill, double p99_ms) const;

  ShedOptions options_;
  ShedTier tier_ = ShedTier::kFull;
  ShedTier pending_ = ShedTier::kFull;  ///< candidate awaiting dwell
  int pending_count_ = 0;
  uint64_t transitions_ = 0;
};

}  // namespace rlbench::serve

#endif  // RLBENCH_SRC_SERVE_SHED_H_
