#include "serve/server.h"

#include <cmath>
#include <functional>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/wire.h"

namespace rlbench::serve {

namespace {

// `retry_after_ms` > 0 attaches the Retry-After hint a quota or shed
// rejection carries, so clients can back off instead of hammering.
std::string ErrorResponse(const Status& status, double retry_after_ms = 0.0) {
  std::string out = std::string("{\"ok\":false,\"code\":") +
                    obs::JsonString(StatusCodeName(status.code())) +
                    ",\"error\":" + obs::JsonString(status.message());
  if (status.code() == StatusCode::kResourceExhausted &&
      retry_after_ms > 0.0) {
    out += ",\"retry_after_ms\":" + obs::JsonNumber(retry_after_ms);
  }
  return out + "}";
}

// Record indices arrive as JSON numbers; anything negative, fractional or
// beyond uint32 is a protocol error, not a cast.
Result<uint32_t> ToIndex(double value) {
  if (!(value >= 0.0) || value > 4294967295.0 || value != std::floor(value)) {
    return Status::InvalidArgument("wire: record index must be a uint32");
  }
  return static_cast<uint32_t>(value);
}

Result<std::vector<data::LabeledPair>> ParsePairs(const JsonValue& request) {
  std::vector<data::LabeledPair> pairs;
  if (request.GetString("op") == "match_pair") {
    RLBENCH_ASSIGN_OR_RETURN(double left, request.RequireNumber("left"));
    RLBENCH_ASSIGN_OR_RETURN(double right, request.RequireNumber("right"));
    data::LabeledPair pair;
    RLBENCH_ASSIGN_OR_RETURN(pair.left, ToIndex(left));
    RLBENCH_ASSIGN_OR_RETURN(pair.right, ToIndex(right));
    pairs.push_back(pair);
    return pairs;
  }
  RLBENCH_ASSIGN_OR_RETURN(const JsonValue* array,
                           request.RequireArray("pairs"));
  pairs.reserve(array->AsArray().size());
  for (const JsonValue& item : array->AsArray()) {
    if (!item.is_array() || item.AsArray().size() != 2) {
      return Status::InvalidArgument(
          "wire: each pair must be a [left, right] array");
    }
    data::LabeledPair pair;
    RLBENCH_ASSIGN_OR_RETURN(pair.left, ToIndex(item.AsArray()[0].AsNumber()));
    RLBENCH_ASSIGN_OR_RETURN(pair.right,
                             ToIndex(item.AsArray()[1].AsNumber()));
    pairs.push_back(pair);
  }
  return pairs;
}

std::string MatchResponse(bool single, const RequestOutcome& outcome) {
  if (!outcome.status.ok()) return ErrorResponse(outcome.status);
  std::string tier =
      std::string(",\"tier\":") + obs::JsonString(ShedTierName(outcome.tier));
  if (single) {
    const PairScore& r = outcome.results[0];
    return "{\"ok\":true,\"score\":" + obs::JsonNumber(r.score) +
           ",\"decision\":" + (r.decision ? "1" : "0") + tier + "}";
  }
  std::string scores = "[";
  std::string decisions = "[";
  for (size_t i = 0; i < outcome.results.size(); ++i) {
    if (i > 0) {
      scores += ",";
      decisions += ",";
    }
    scores += obs::JsonNumber(outcome.results[i].score);
    decisions += outcome.results[i].decision ? "1" : "0";
  }
  return "{\"ok\":true,\"scores\":" + scores + "],\"decisions\":" + decisions +
         "]" + tier + "}";
}

const char* ShadowVerdictName(ShadowEvaluator::Verdict verdict) {
  switch (verdict) {
    case ShadowEvaluator::Verdict::kPending:
      return "pending";
    case ShadowEvaluator::Verdict::kPromote:
      return "promote";
    case ShadowEvaluator::Verdict::kRollback:
      return "rollback";
  }
  return "unknown";
}

}  // namespace

MatchServer::MatchServer(const matchers::MatchingContext* context,
                         MatchServerOptions options)
    : context_(context),
      options_(std::move(options)),
      service_(context, options_.service),
      loop_(options_.loop) {
  if (!options_.repository_root.empty()) {
    repository_.emplace(options_.repository_root);
  }
}

Status MatchServer::Start() {
  if (listening_) return Status::OK();
  RLBENCH_RETURN_NOT_OK(loop_.Listen(options_.port, &port_));
  listening_ = true;
  return Status::OK();
}

void MatchServer::AbsorbShadowEvent() {
  ShadowEvent event = service_.ConsumeShadowEvent();
  if (event.kind == ShadowEvent::Kind::kPromoted) {
    served_ = event.metadata;
  }
  if (event.kind != ShadowEvent::Kind::kNone && drift_candidate_active_) {
    // The drift-triggered candidate resolved (landed or rolled back);
    // either way the episode is over — re-arm the controller so the next
    // drifted window can open a fresh one.
    drift_candidate_active_ = false;
    service_.RearmDrift();
  }
}

void MatchServer::AbsorbDriftTrigger() {
  // While the promotion ladder is busy the trigger stays pending in the
  // tracker; we react on the first pump after the ladder frees up.
  if (service_.Shadow() != nullptr) return;
  DriftStatus trigger;
  if (!service_.TakeDriftTrigger(&trigger)) return;
  std::string name = options_.drift_retrain_matcher;
  if (name.empty() && served_.has_value()) name = served_->matcher_name;
  if (name.empty()) name = "EnsembleLink";
  auto candidate = service_.RetrainMatcher(name);
  if (!candidate.ok() && name != "EnsembleLink") {
    // The zero-shot fallback arm needs no labels and always trains.
    name = "EnsembleLink";
    candidate = service_.RetrainMatcher(name);
  }
  if (!candidate.ok()) {
    RLBENCH_COUNTER_INC("drift/reaction_failures");
    service_.RearmDrift();
    return;
  }
  SnapshotMetadata metadata;
  metadata.matcher_name = name;
  metadata.dataset_id = context_->task().name();
  metadata.num_attrs = context_->task().left().schema().num_attributes();
  if (repository_.has_value()) {
    auto version = repository_->Publish(metadata, **candidate);
    if (version.ok()) metadata.version = *version;
  }
  Status started =
      service_.StartShadow(*candidate, metadata, options_.drift_shadow);
  if (!started.ok()) {
    RLBENCH_COUNTER_INC("drift/reaction_failures");
    service_.RearmDrift();
    return;
  }
  RLBENCH_COUNTER_INC("drift/reactions");
  drift_candidate_active_ = true;
}

std::string MatchServer::HandleRequest(const std::string& payload) {
  ++requests_served_;
  auto parsed = ParseJson(payload);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  const JsonValue& request = *parsed;
  const std::string op = request.GetString("op");

  if (op == "match_pair" || op == "match_batch") {
    auto pairs = ParsePairs(request);
    if (!pairs.ok()) return ErrorResponse(pairs.status());
    const bool single = op == "match_pair";
    SubmitOptions submit;
    submit.tenant = request.GetString("tenant");
    submit.deadline_ms = request.GetNumber(
        "deadline_ms", service_.options().default_deadline_ms);
    std::string response;
    auto submitted = service_.SubmitRequest(
        std::move(*pairs), submit,
        [single, &response](const RequestOutcome& outcome) {
          response = MatchResponse(single, outcome);
        });
    if (!submitted.ok()) {
      return ErrorResponse(submitted.status(), service_.LastRetryAfterMs());
    }
    service_.Drain();
    AbsorbShadowEvent();
    AbsorbDriftTrigger();
    return response;
  }

  if (op == "ping") {
    std::string out = "{\"ok\":true,\"dataset\":" +
                      obs::JsonString(context_->task().name());
    if (served_.has_value()) {
      out += ",\"matcher\":" + obs::JsonString(served_->matcher_name) +
             ",\"version\":" + std::to_string(served_->version);
    } else {
      out += ",\"matcher\":null";
    }
    return out + "}";
  }

  if (op == "assess") {
    auto result = service_.AssessDataset();
    if (!result.ok()) return ErrorResponse(result.status());
    return "{\"ok\":true,\"matcher\":" + obs::JsonString(result->matcher_name) +
           ",\"pairs\":" + std::to_string(result->pairs) +
           ",\"batches\":" + std::to_string(result->batches) +
           ",\"f1\":" + obs::JsonNumber(result->f1) +
           ",\"precision\":" + obs::JsonNumber(result->confusion.Precision()) +
           ",\"recall\":" + obs::JsonNumber(result->confusion.Recall()) + "}";
  }

  if (op == "stats") {
    std::string out =
        "{\"ok\":true,\"queue_depth\":" + std::to_string(service_.QueueDepth()) +
        ",\"queued_pairs\":" + std::to_string(service_.QueuedPairs()) +
        ",\"requests_served\":" + std::to_string(requests_served_) +
        ",\"connections\":" + std::to_string(loop_.ActiveConnections()) +
        ",\"tier\":" + obs::JsonString(ShedTierName(service_.CurrentTier())) +
        ",\"shed_transitions\":" + std::to_string(service_.ShedTransitions()) +
        ",\"tier_full\":" +
        std::to_string(service_.TierCount(ShedTier::kFull)) +
        ",\"tier_degraded\":" +
        std::to_string(service_.TierCount(ShedTier::kDegraded)) +
        ",\"tier_rejected\":" +
        std::to_string(service_.TierCount(ShedTier::kReject)) +
        ",\"p99_ms\":" + obs::JsonNumber(service_.RollingP99Ms()) +
        ",\"shadow_active\":" +
        (service_.Shadow() != nullptr ? "true" : "false") +
        ",\"dataset\":" + obs::JsonString(context_->task().name());
    DriftStatus drift = service_.DriftSnapshot();
    out += std::string(",\"drift_enabled\":") +
           (drift.enabled ? "true" : "false");
    if (drift.enabled) {
      out += ",\"drift\":{\"state\":" + obs::JsonString(drift.state) +
             ",\"window_pairs\":" + std::to_string(drift.window_pairs) +
             ",\"windows\":" + std::to_string(drift.windows) +
             ",\"transitions\":" + std::to_string(drift.transitions) +
             ",\"triggers\":" + std::to_string(drift.triggers) +
             ",\"sampled_pairs\":" + std::to_string(drift.sampled_pairs) +
             ",\"best_linear_f1\":" + obs::JsonNumber(drift.best_linear_f1) +
             ",\"complexity_avg\":" + obs::JsonNumber(drift.complexity_avg) +
             ",\"nlb\":" + obs::JsonNumber(drift.nlb) +
             ",\"lbm\":" + obs::JsonNumber(drift.lbm) + "}";
    }
    if (served_.has_value()) {
      out += ",\"matcher\":" + obs::JsonString(served_->matcher_name) +
             ",\"version\":" + std::to_string(served_->version);
    } else {
      out += ",\"matcher\":null";
    }
    return out + "}";
  }

  if (op == "reload") {
    if (!repository_.has_value()) {
      return ErrorResponse(Status::FailedPrecondition(
          "serve: no model repository configured"));
    }
    auto matcher = request.RequireString("matcher");
    if (!matcher.ok()) return ErrorResponse(matcher.status());
    double version = request.GetNumber("version", 0.0);
    auto snapshot = version > 0.0
                        ? repository_->Load(*matcher,
                                            static_cast<uint64_t>(version))
                        : repository_->LoadCurrent(*matcher);
    if (!snapshot.ok()) return ErrorResponse(snapshot.status());
    Status installed = service_.InstallSnapshot(*snapshot);
    if (!installed.ok()) return ErrorResponse(installed);
    served_ = snapshot->metadata;
    return "{\"ok\":true,\"matcher\":" +
           obs::JsonString(snapshot->metadata.matcher_name) +
           ",\"version\":" + std::to_string(snapshot->metadata.version) + "}";
  }

  if (op == "shadow_start") {
    if (!repository_.has_value()) {
      return ErrorResponse(Status::FailedPrecondition(
          "serve: no model repository configured"));
    }
    auto matcher = request.RequireString("matcher");
    if (!matcher.ok()) return ErrorResponse(matcher.status());
    double version = request.GetNumber("version", 0.0);
    auto snapshot = version > 0.0
                        ? repository_->Load(*matcher,
                                            static_cast<uint64_t>(version))
                        : repository_->LoadCurrent(*matcher);
    if (!snapshot.ok()) return ErrorResponse(snapshot.status());
    ShadowOptions shadow;
    shadow.sample_fraction =
        request.GetNumber("sample_fraction", shadow.sample_fraction);
    shadow.min_samples = static_cast<size_t>(
        request.GetNumber("min_samples",
                          static_cast<double>(shadow.min_samples)));
    shadow.target_samples = static_cast<size_t>(
        request.GetNumber("target_samples",
                          static_cast<double>(shadow.target_samples)));
    shadow.min_agreement =
        request.GetNumber("min_agreement", shadow.min_agreement);
    shadow.max_latency_ratio =
        request.GetNumber("max_latency_ratio", shadow.max_latency_ratio);
    shadow.seed = static_cast<uint64_t>(
        request.GetNumber("seed", static_cast<double>(shadow.seed)));
    Status started = service_.StartShadow(snapshot->model,
                                          snapshot->metadata, shadow);
    if (!started.ok()) return ErrorResponse(started);
    return "{\"ok\":true,\"matcher\":" +
           obs::JsonString(snapshot->metadata.matcher_name) +
           ",\"version\":" + std::to_string(snapshot->metadata.version) + "}";
  }

  if (op == "shadow_status") {
    const ShadowEvaluator* shadow = service_.Shadow();
    std::string out = std::string("{\"ok\":true,\"active\":") +
                      (shadow != nullptr ? "true" : "false");
    if (shadow != nullptr) {
      const ShadowStats& stats = shadow->stats();
      out += ",\"matcher\":" +
             obs::JsonString(shadow->metadata().matcher_name) +
             ",\"version\":" + std::to_string(shadow->metadata().version) +
             ",\"sampled\":" + std::to_string(stats.sampled_pairs) +
             ",\"agreed\":" + std::to_string(stats.agreed_pairs) +
             ",\"agreement\":" + obs::JsonNumber(stats.Agreement()) +
             ",\"latency_ratio\":" + obs::JsonNumber(stats.LatencyRatio()) +
             ",\"faults\":" + std::to_string(stats.faults) + ",\"verdict\":" +
             obs::JsonString(ShadowVerdictName(shadow->CurrentVerdict()));
    }
    return out + "}";
  }

  if (op == "shadow_cancel") {
    bool cancelled = service_.CancelShadow();
    return std::string("{\"ok\":true,\"cancelled\":") +
           (cancelled ? "true" : "false") + "}";
  }

  if (op == "shutdown") {
    // Everything already queued is answered before the acknowledgement
    // goes out: a shutdown never drops accepted work.
    size_t drained = service_.Drain();
    AbsorbShadowEvent();
    AbsorbDriftTrigger();
    shutdown_ = true;
    return "{\"ok\":true,\"drained\":" + std::to_string(drained) + "}";
  }

  return ErrorResponse(
      Status::InvalidArgument("wire: unknown op \"" + op + "\""));
}

void MatchServer::OnFrame(uint64_t conn_id, std::string payload) {
  auto slot = std::make_shared<Slot>();
  slots_[conn_id].push_back(slot);
  if (shutdown_) {
    // Late frame during drain: a clean error beats silence or a hang.
    slot->response = ErrorResponse(
        Status::FailedPrecondition("serve: shutting down"));
    slot->ready = true;
    return;
  }
  auto parsed = ParseJson(payload);
  const std::string op = parsed.ok() ? parsed->GetString("op") : std::string();
  if (parsed.ok() && (op == "match_pair" || op == "match_batch")) {
    ++requests_served_;
    auto pairs = ParsePairs(*parsed);
    if (!pairs.ok()) {
      slot->response = ErrorResponse(pairs.status());
      slot->ready = true;
      return;
    }
    const bool single = op == "match_pair";
    SubmitOptions submit;
    submit.tenant = parsed->GetString("tenant");
    submit.deadline_ms = parsed->GetNumber(
        "deadline_ms", service_.options().default_deadline_ms);
    // The callback owns a reference to the slot: even if the connection is
    // evicted before the service answers, the write lands in a live slot
    // (and FlushReadySlots simply drops slots of dead connections).
    auto submitted = service_.SubmitRequest(
        std::move(*pairs), submit,
        [single, slot](const RequestOutcome& outcome) {
          slot->response = MatchResponse(single, outcome);
          slot->ready = true;
        });
    if (!submitted.ok()) {
      slot->response =
          ErrorResponse(submitted.status(), service_.LastRetryAfterMs());
      slot->ready = true;
    }
    return;
  }
  // Sync op (or parse error): drain first so its answer reflects every
  // match op that arrived before it, then answer inline.
  service_.Drain();
  AbsorbShadowEvent();
  AbsorbDriftTrigger();
  slot->response = HandleRequest(payload);
  slot->ready = true;
}

void MatchServer::FlushReadySlots() {
  for (auto it = slots_.begin(); it != slots_.end();) {
    std::deque<std::shared_ptr<Slot>>& queue = it->second;
    while (!queue.empty() && queue.front()->ready) {
      loop_.Respond(it->first, queue.front()->response);
      queue.pop_front();
    }
    if (queue.empty() || !loop_.HasConnection(it->first)) {
      it = slots_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t MatchServer::PendingSlots() const {
  size_t pending = 0;
  for (const auto& [conn_id, queue] : slots_) pending += queue.size();
  return pending;
}

Status MatchServer::Serve() {
  RLBENCH_RETURN_NOT_OK(Start());
  RLBENCH_TRACE_SPAN("serve/loop");
  int quiet_ticks = 0;
  while (true) {
    // Short ticks once draining: shutdown latency is bounded by a few of
    // these, not by the idle poll timeout.
    const int timeout_ms = shutdown_ ? 5 : options_.tick_timeout_ms;
    auto frames = loop_.Tick(
        timeout_ms, [this](uint64_t conn_id, std::string payload) {
          OnFrame(conn_id, std::move(payload));
        });
    if (!frames.ok()) return frames.status();
    // Answer everything the tick submitted, then emit responses in
    // per-connection request order.
    service_.Drain();
    AbsorbShadowEvent();
    AbsorbDriftTrigger();
    FlushReadySlots();
    if (shutdown_) {
      if (!loop_.draining()) loop_.BeginDrain();
      const bool idle =
          *frames == 0 && PendingSlots() == 0 && loop_.AllFlushed();
      quiet_ticks = idle ? quiet_ticks + 1 : 0;
      // A couple of quiet ticks give frames already in kernel buffers a
      // chance to arrive and be answered with the shutdown error.
      if (quiet_ticks >= 2) break;
    }
  }
  service_.Drain();
  return Status::OK();
}

}  // namespace rlbench::serve
