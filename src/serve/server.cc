#include "serve/server.h"

#include <cmath>
#include <functional>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/wire.h"

namespace rlbench::serve {

namespace {

std::string ErrorResponse(const Status& status) {
  return std::string("{\"ok\":false,\"code\":") +
         obs::JsonString(StatusCodeName(status.code())) +
         ",\"error\":" + obs::JsonString(status.message()) + "}";
}

// Record indices arrive as JSON numbers; anything negative, fractional or
// beyond uint32 is a protocol error, not a cast.
Result<uint32_t> ToIndex(double value) {
  if (!(value >= 0.0) || value > 4294967295.0 || value != std::floor(value)) {
    return Status::InvalidArgument("wire: record index must be a uint32");
  }
  return static_cast<uint32_t>(value);
}

Result<std::vector<data::LabeledPair>> ParsePairs(const JsonValue& request) {
  std::vector<data::LabeledPair> pairs;
  if (request.GetString("op") == "match_pair") {
    RLBENCH_ASSIGN_OR_RETURN(double left, request.RequireNumber("left"));
    RLBENCH_ASSIGN_OR_RETURN(double right, request.RequireNumber("right"));
    data::LabeledPair pair;
    RLBENCH_ASSIGN_OR_RETURN(pair.left, ToIndex(left));
    RLBENCH_ASSIGN_OR_RETURN(pair.right, ToIndex(right));
    pairs.push_back(pair);
    return pairs;
  }
  RLBENCH_ASSIGN_OR_RETURN(const JsonValue* array,
                           request.RequireArray("pairs"));
  pairs.reserve(array->AsArray().size());
  for (const JsonValue& item : array->AsArray()) {
    if (!item.is_array() || item.AsArray().size() != 2) {
      return Status::InvalidArgument(
          "wire: each pair must be a [left, right] array");
    }
    data::LabeledPair pair;
    RLBENCH_ASSIGN_OR_RETURN(pair.left, ToIndex(item.AsArray()[0].AsNumber()));
    RLBENCH_ASSIGN_OR_RETURN(pair.right,
                             ToIndex(item.AsArray()[1].AsNumber()));
    pairs.push_back(pair);
  }
  return pairs;
}

std::string MatchResponse(bool single, const RequestOutcome& outcome) {
  if (!outcome.status.ok()) return ErrorResponse(outcome.status);
  if (single) {
    const PairScore& r = outcome.results[0];
    return "{\"ok\":true,\"score\":" + obs::JsonNumber(r.score) +
           ",\"decision\":" + (r.decision ? "1" : "0") + "}";
  }
  std::string scores = "[";
  std::string decisions = "[";
  for (size_t i = 0; i < outcome.results.size(); ++i) {
    if (i > 0) {
      scores += ",";
      decisions += ",";
    }
    scores += obs::JsonNumber(outcome.results[i].score);
    decisions += outcome.results[i].decision ? "1" : "0";
  }
  return "{\"ok\":true,\"scores\":" + scores + "],\"decisions\":" + decisions +
         "]}";
}

}  // namespace

MatchServer::MatchServer(const matchers::MatchingContext* context,
                         MatchServerOptions options)
    : context_(context),
      options_(std::move(options)),
      service_(context, options_.service) {
  if (!options_.repository_root.empty()) {
    repository_.emplace(options_.repository_root);
  }
}

Status MatchServer::Start() {
  if (listener_.valid()) return Status::OK();
  RLBENCH_ASSIGN_OR_RETURN(listener_,
                           ListenLoopback(options_.port, &port_));
  return Status::OK();
}

std::string MatchServer::HandleRequest(const std::string& payload) {
  ++requests_served_;
  auto parsed = ParseJson(payload);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  const JsonValue& request = *parsed;
  const std::string op = request.GetString("op");

  if (op == "match_pair" || op == "match_batch") {
    auto pairs = ParsePairs(request);
    if (!pairs.ok()) return ErrorResponse(pairs.status());
    const bool single = op == "match_pair";
    double deadline = request.GetNumber(
        "deadline_ms", service_.options().default_deadline_ms);
    std::string response;
    auto submitted = service_.SubmitWithDeadline(
        std::move(*pairs), deadline,
        [single, &response](const RequestOutcome& outcome) {
          response = MatchResponse(single, outcome);
        });
    if (!submitted.ok()) return ErrorResponse(submitted.status());
    service_.Drain();
    return response;
  }

  if (op == "ping") {
    std::string out = "{\"ok\":true,\"dataset\":" +
                      obs::JsonString(context_->task().name());
    if (served_.has_value()) {
      out += ",\"matcher\":" + obs::JsonString(served_->matcher_name) +
             ",\"version\":" + std::to_string(served_->version);
    } else {
      out += ",\"matcher\":null";
    }
    return out + "}";
  }

  if (op == "assess") {
    auto result = service_.AssessDataset();
    if (!result.ok()) return ErrorResponse(result.status());
    return "{\"ok\":true,\"matcher\":" + obs::JsonString(result->matcher_name) +
           ",\"pairs\":" + std::to_string(result->pairs) +
           ",\"batches\":" + std::to_string(result->batches) +
           ",\"f1\":" + obs::JsonNumber(result->f1) +
           ",\"precision\":" + obs::JsonNumber(result->confusion.Precision()) +
           ",\"recall\":" + obs::JsonNumber(result->confusion.Recall()) + "}";
  }

  if (op == "stats") {
    std::string out =
        "{\"ok\":true,\"queue_depth\":" + std::to_string(service_.QueueDepth()) +
        ",\"queued_pairs\":" + std::to_string(service_.QueuedPairs()) +
        ",\"requests_served\":" + std::to_string(requests_served_) +
        ",\"dataset\":" + obs::JsonString(context_->task().name());
    if (served_.has_value()) {
      out += ",\"matcher\":" + obs::JsonString(served_->matcher_name) +
             ",\"version\":" + std::to_string(served_->version);
    } else {
      out += ",\"matcher\":null";
    }
    return out + "}";
  }

  if (op == "reload") {
    if (!repository_.has_value()) {
      return ErrorResponse(Status::FailedPrecondition(
          "serve: no model repository configured"));
    }
    auto matcher = request.RequireString("matcher");
    if (!matcher.ok()) return ErrorResponse(matcher.status());
    double version = request.GetNumber("version", 0.0);
    auto snapshot = version > 0.0
                        ? repository_->Load(*matcher,
                                            static_cast<uint64_t>(version))
                        : repository_->LoadCurrent(*matcher);
    if (!snapshot.ok()) return ErrorResponse(snapshot.status());
    Status installed = service_.InstallSnapshot(*snapshot);
    if (!installed.ok()) return ErrorResponse(installed);
    served_ = snapshot->metadata;
    return "{\"ok\":true,\"matcher\":" +
           obs::JsonString(snapshot->metadata.matcher_name) +
           ",\"version\":" + std::to_string(snapshot->metadata.version) + "}";
  }

  if (op == "shutdown") {
    // Everything already queued is answered before the acknowledgement
    // goes out: a shutdown never drops accepted work.
    size_t drained = service_.Drain();
    shutdown_ = true;
    return "{\"ok\":true,\"drained\":" + std::to_string(drained) + "}";
  }

  return ErrorResponse(
      Status::InvalidArgument("wire: unknown op \"" + op + "\""));
}

Status MatchServer::ServeConnection(const Socket& conn) {
  RLBENCH_TRACE_SPAN("serve/connection");
  RLBENCH_COUNTER_INC("serve/connections");
  FrameDecoder decoder;
  // Responses for one burst of pipelined frames, in request order. Match
  // ops fill their slot from the service callback during Drain; sync ops
  // fill theirs inline.
  std::vector<std::string> slots;
  bool peer_closed = false;
  while (!shutdown_ && !peer_closed) {
    auto readable = WaitReadable(conn, -1);
    if (!readable.ok()) break;
    if (!*readable) continue;
    // Pull every chunk the socket already has before pumping, so a
    // pipelining client's requests coalesce into shared micro-batches.
    while (true) {
      auto chunk = RecvSome(conn);
      if (!chunk.ok() || chunk->empty()) {
        peer_closed = true;
        break;
      }
      decoder.Append(*chunk);
      auto more = WaitReadable(conn, 0);
      if (!more.ok() || !*more) break;
    }
    while (true) {
      auto frame = decoder.Next();
      if (!frame.ok()) {
        // Framing is unrecoverable on this connection; drop it, keep
        // serving the next one.
        service_.Drain();
        return Status::OK();
      }
      if (!frame->has_value()) break;
      const std::string& payload = **frame;
      auto parsed = ParseJson(payload);
      const std::string op =
          parsed.ok() ? parsed->GetString("op") : std::string();
      if (parsed.ok() && (op == "match_pair" || op == "match_batch")) {
        ++requests_served_;
        auto pairs = ParsePairs(*parsed);
        const size_t slot = slots.size();
        slots.emplace_back();
        if (!pairs.ok()) {
          slots[slot] = ErrorResponse(pairs.status());
          continue;
        }
        const bool single = op == "match_pair";
        double deadline = parsed->GetNumber(
            "deadline_ms", service_.options().default_deadline_ms);
        auto submitted = service_.SubmitWithDeadline(
            std::move(*pairs), deadline,
            [single, slot, &slots](const RequestOutcome& outcome) {
              slots[slot] = MatchResponse(single, outcome);
            });
        if (!submitted.ok()) slots[slot] = ErrorResponse(submitted.status());
        continue;
      }
      // Sync op (or parse error): answered in arrival order too.
      service_.Drain();
      slots.push_back(HandleRequest(payload));
      if (shutdown_) break;
    }
    service_.Drain();
    std::string out;
    Status framed = Status::OK();
    for (std::string& response : slots) {
      framed = AppendFrame(response, &out);
      if (!framed.ok()) break;
    }
    slots.clear();
    // A send failure (peer closed without reading) drops this connection,
    // never the server.
    if (!framed.ok() || (!out.empty() && !SendAll(conn, out).ok())) break;
  }
  service_.Drain();
  return Status::OK();
}

Status MatchServer::Serve() {
  RLBENCH_RETURN_NOT_OK(Start());
  while (!shutdown_) {
    RLBENCH_ASSIGN_OR_RETURN(Socket conn, Accept(listener_));
    RLBENCH_RETURN_NOT_OK(ServeConnection(conn));
  }
  return Status::OK();
}

}  // namespace rlbench::serve
