#include "serve/event_loop.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace rlbench::serve {

EventLoop::EventLoop(EventLoopOptions options) : options_(options) {}

Status EventLoop::Listen(uint16_t port, uint16_t* bound_port) {
  RLBENCH_ASSIGN_OR_RETURN(listener_, ListenLoopback(port, bound_port));
  return SetNonBlocking(listener_, true);
}

Result<size_t> EventLoop::Tick(int timeout_ms, const FrameSink& sink) {
  RLBENCH_COUNTER_INC("serve/loop/ticks");
  poll_set_.Clear();
  if (!draining_ && listener_.valid()) {
    poll_set_.Add(listener_.fd(), /*want_read=*/true, /*want_write=*/false);
  }
  for (const auto& [id, conn] : connections_) {
    const bool want_write = conn.out_offset < conn.out.size();
    poll_set_.Add(conn.socket.fd(), /*want_read=*/true, want_write);
  }
  RLBENCH_ASSIGN_OR_RETURN(int ready, poll_set_.Wait(timeout_ms));
  size_t frames = 0;
  if (ready > 0) {
    if (!draining_ && listener_.valid() &&
        poll_set_.Readable(listener_.fd())) {
      AcceptReady();
    }
    // Collect ids first: sink callbacks may Respond(), and eviction paths
    // mutate connections_ — never iterate the live map while dispatching.
    // Sorted so same-tick frames dispatch in accept order, not hash order.
    std::vector<uint64_t> ids;
    ids.reserve(connections_.size());
    for (const auto& [id, conn] : connections_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (uint64_t id : ids) {
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;
      if (poll_set_.HasError(it->second.socket.fd())) {
        doomed_.push_back(id);
        continue;
      }
      if (poll_set_.Readable(it->second.socket.fd())) {
        frames += ReadAndDispatch(id, sink);
      }
      it = connections_.find(id);
      if (it != connections_.end() &&
          poll_set_.Writable(it->second.socket.fd())) {
        FlushConnection(id);
      }
    }
  }
  EvictExpired();
  while (!doomed_.empty()) {
    connections_.erase(doomed_.front());
    doomed_.pop_front();
  }
  if (frames > 0) RLBENCH_COUNTER_ADD("serve/loop/frames", frames);
  return frames;
}

void EventLoop::AcceptReady() {
  while (true) {
    auto accepted = AcceptWithDeadline(listener_, /*timeout_ms=*/0);
    if (!accepted.ok() || !accepted.value().has_value()) return;
    Socket sock = std::move(*accepted.value());
    if (connections_.size() >= options_.max_connections) {
      RLBENCH_COUNTER_INC("serve/loop/overflow_closed");
      continue;  // Socket destructor closes it; backlog stays in the kernel.
    }
    if (!SetNonBlocking(sock, true).ok()) continue;
    Connection conn;
    conn.socket = std::move(sock);
    conn.last_activity.Restart();
    connections_.emplace(next_conn_id_++, std::move(conn));
    RLBENCH_COUNTER_INC("serve/loop/accepted");
  }
}

size_t EventLoop::ReadAndDispatch(uint64_t conn_id, const FrameSink& sink) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return 0;
  Connection& conn = it->second;
  auto read = ReadNonBlocking(conn.socket);
  if (!read.ok()) {
    doomed_.push_back(conn_id);
    return 0;
  }
  if (!read.value().data.empty()) {
    conn.last_activity.Restart();
    conn.decoder.Append(read.value().data);
    if (conn.decoder.BufferedBytes() > options_.read_buffer_limit) {
      RLBENCH_COUNTER_INC("serve/loop/evicted_slow");
      doomed_.push_back(conn_id);
      return 0;
    }
  }
  size_t frames = 0;
  while (true) {
    auto frame = conn.decoder.Next();
    if (!frame.ok()) {  // malformed length prefix — protocol violation
      doomed_.push_back(conn_id);
      return frames;
    }
    if (!frame.value().has_value()) break;
    conn.saw_frame = true;
    ++frames;
    sink(conn_id, std::move(*frame.value()));
    // The sink may have closed or evicted this connection.
    it = connections_.find(conn_id);
    if (it == connections_.end()) return frames;
  }
  if (read.value().eof) {
    // Orderly close: the peer sent everything it will ever send. Keep the
    // connection until its queued responses flush, then drop it.
    if (it->second.out_offset >= it->second.out.size()) {
      doomed_.push_back(conn_id);
    } else {
      FlushConnection(conn_id);
    }
  }
  return frames;
}

void EventLoop::Respond(uint64_t conn_id, std::string_view payload) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  if (!AppendFrame(payload, &conn.out).ok()) {
    doomed_.push_back(conn_id);
    return;
  }
  if (conn.out.size() - conn.out_offset > options_.write_buffer_limit) {
    RLBENCH_COUNTER_INC("serve/loop/evicted_slow");
    doomed_.push_back(conn_id);
    return;
  }
  FlushConnection(conn_id);
}

void EventLoop::FlushConnection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  if (conn.out_offset >= conn.out.size()) return;
  auto wrote = WriteNonBlocking(
      conn.socket, std::string_view(conn.out).substr(conn.out_offset));
  if (!wrote.ok()) {
    doomed_.push_back(conn_id);
    return;
  }
  conn.out_offset += wrote.value();
  if (conn.out_offset >= conn.out.size()) {
    conn.out.clear();
    conn.out_offset = 0;
  } else if (conn.out_offset > (1u << 20)) {
    // Compact occasionally so a long-lived slow-ish peer does not pin a
    // monotonically growing buffer.
    conn.out.erase(0, conn.out_offset);
    conn.out_offset = 0;
  }
}

void EventLoop::EvictExpired() {
  for (const auto& [id, conn] : connections_) {
    const double age_ms = conn.last_activity.ElapsedMillis();
    if (!conn.saw_frame && options_.handshake_timeout_ms > 0 &&
        age_ms > options_.handshake_timeout_ms) {
      RLBENCH_COUNTER_INC("serve/loop/evicted_handshake");
      doomed_.push_back(id);
    } else if (conn.saw_frame && options_.idle_timeout_ms > 0 &&
               age_ms > options_.idle_timeout_ms) {
      RLBENCH_COUNTER_INC("serve/loop/evicted_idle");
      doomed_.push_back(id);
    }
  }
}

void EventLoop::BeginDrain() {
  draining_ = true;
  listener_.Close();
}

void EventLoop::CloseConnection(uint64_t conn_id) {
  FlushConnection(conn_id);
  connections_.erase(conn_id);
}

bool EventLoop::AllFlushed() const {
  for (const auto& [id, conn] : connections_) {
    if (conn.out_offset < conn.out.size()) return false;
  }
  return true;
}

}  // namespace rlbench::serve
