#include "serve/wire.h"

#include <cstdlib>
#include <cstring>

namespace rlbench::serve {

Status AppendFrame(std::string_view payload, std::string* out) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(
        "wire: frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds limit");
  }
  uint32_t n = static_cast<uint32_t>(payload.size());
  char header[kFrameHeaderBytes] = {
      static_cast<char>((n >> 24) & 0xFF), static_cast<char>((n >> 16) & 0xFF),
      static_cast<char>((n >> 8) & 0xFF), static_cast<char>(n & 0xFF)};
  out->append(header, kFrameHeaderBytes);
  out->append(payload);
  return Status::OK();
}

Result<size_t> DecodeFrameHeader(const char* header) {
  uint32_t n = 0;
  for (size_t i = 0; i < kFrameHeaderBytes; ++i) {
    n = (n << 8) | static_cast<unsigned char>(header[i]);
  }
  if (n > kMaxFramePayload) {
    return Status::InvalidArgument("wire: frame of " + std::to_string(n) +
                                   " bytes exceeds limit");
  }
  return static_cast<size_t>(n);
}

Result<std::optional<std::string>> FrameDecoder::Next() {
  if (buffer_.size() < kFrameHeaderBytes) return std::optional<std::string>{};
  RLBENCH_ASSIGN_OR_RETURN(size_t payload, DecodeFrameHeader(buffer_.data()));
  if (buffer_.size() < kFrameHeaderBytes + payload) {
    return std::optional<std::string>{};
  }
  std::string frame = buffer_.substr(kFrameHeaderBytes, payload);
  buffer_.erase(0, kFrameHeaderBytes + payload);
  return std::optional<std::string>(std::move(frame));
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::GetString(const std::string& key,
                                 std::string fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_ : std::move(fallback);
}

double JsonValue::GetNumber(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number_ : fallback;
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->bool_ : fallback;
}

Result<std::string> JsonValue::RequireString(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_string()) {
    return Status::InvalidArgument("wire: missing string field \"" + key +
                                   "\"");
  }
  return v->string_;
}

Result<double> JsonValue::RequireNumber(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_number()) {
    return Status::InvalidArgument("wire: missing number field \"" + key +
                                   "\"");
  }
  return v->number_;
}

Result<const JsonValue*> JsonValue::RequireArray(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_array()) {
    return Status::InvalidArgument("wire: missing array field \"" + key +
                                   "\"");
  }
  return v;
}

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(
    std::vector<std::pair<std::string, JsonValue>> items) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(items);
  return v;
}

namespace {

// Recursive-descent parser over untrusted bytes: bounded nesting, strict
// grammar, no exceptions. Mirrors the grammar obs::JsonSyntaxValid accepts
// so anything the obs emitters write parses back.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipSpace();
    RLBENCH_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("wire: trailing bytes after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_).substr(0, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Status Error(const std::string& what) {
    return Status::InvalidArgument("wire: " + what + " at byte " +
                                   std::to_string(pos_));
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        RLBENCH_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::String(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return JsonValue::Bool(true);
        return Error("bad literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue::Bool(false);
        return Error("bad literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue::Null();
        return Error("bad literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> items;
    SkipSpace();
    if (Consume('}')) return JsonValue::Object(std::move(items));
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      RLBENCH_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      SkipSpace();
      RLBENCH_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      items.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue::Object(std::move(items));
      return Error("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipSpace();
    if (Consume(']')) return JsonValue::Array(std::move(items));
    while (true) {
      SkipSpace();
      RLBENCH_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      items.push_back(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue::Array(std::move(items));
      return Error("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (pos_ >= text_.size()) return Error("dangling escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          RLBENCH_ASSIGN_OR_RETURN(uint32_t code, ParseHex4());
          // Combine a surrogate pair when one follows; a lone surrogate
          // becomes U+FFFD rather than invalid UTF-8.
          if (code >= 0xD800 && code <= 0xDBFF &&
              text_.substr(pos_).substr(0, 2) == "\\u") {
            size_t save = pos_;
            pos_ += 2;
            RLBENCH_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
            if (low >= 0xDC00 && low <= 0xDFFF) {
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              pos_ = save;
              code = 0xFFFD;
            }
          } else if (code >= 0xD800 && code <= 0xDFFF) {
            code = 0xFFFD;
          }
          AppendUtf8(code, &out);
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad \\u escape");
      }
    }
    return code;
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Error("bad number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("bad number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("bad number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    // The token is already validated, so strtod on a NUL-terminated copy
    // parses exactly this span.
    std::string token(text_.substr(start, pos_ - start));
    double value = std::strtod(token.c_str(), nullptr);
    return JsonValue::Number(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace rlbench::serve
