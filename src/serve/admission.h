// Per-tenant admission control for the match server: token-bucket quotas
// keyed by the "tenant" field a request carries on the wire.
//
// Quota spec grammar (one string, e.g. a --quotas flag):
//
//   spec    := entry (';' entry)*
//   entry   := tenant '=' rate ':' burst
//   tenant  := non-empty name, or '*' for the default bucket
//   rate    := tokens refilled per second (double, > 0)
//   burst   := bucket capacity in tokens (double, >= 1)
//
// Example: "alpha=200:50;beta=20:5;*=50:10" — tenant alpha may sustain
// 200 requests/s with bursts of 50, beta is throttled to 20/s, and every
// other tenant (including the anonymous "" tenant) shares the '*' shape:
// each unlisted tenant gets its own bucket of that shape, so one noisy
// unlisted tenant cannot starve another. No '*' entry means unlisted
// tenants are unmetered. An empty spec admits everything.
//
// Time is injected (now_ms from any monotonic origin), never read from a
// clock here — tests drive the bucket deterministically.
#ifndef RLBENCH_SRC_SERVE_ADMISSION_H_
#define RLBENCH_SRC_SERVE_ADMISSION_H_

#include <map>
#include <string>

#include "common/status.h"

namespace rlbench::serve {

/// \brief Token-bucket shape of one tenant's quota.
struct TenantQuota {
  double rate_per_s = 0.0;  ///< refill rate
  double burst = 0.0;       ///< bucket capacity
};

/// \brief Per-tenant token buckets behind the serve admission gate.
///
/// Not thread-safe; owned by the single-threaded MatchService.
class AdmissionController {
 public:
  /// Empty controller: every tenant is unmetered.
  AdmissionController() = default;

  /// Parse the spec grammar above. InvalidArgument on malformed entries,
  /// non-positive rates, bursts below one token, or duplicate tenants.
  [[nodiscard]] static Result<AdmissionController> Parse(
      const std::string& spec);

  /// True when no quota is configured at all (fast path: skip metering).
  bool Unmetered() const { return quotas_.empty(); }

  /// Take one token from `tenant`'s bucket at time `now_ms`. False when
  /// the bucket is empty — the request must be rejected.
  [[nodiscard]] bool Admit(const std::string& tenant, double now_ms);

  /// Milliseconds until `tenant`'s bucket refills one token at `now_ms` —
  /// the Retry-After hint for a quota rejection. 0 for unmetered tenants.
  double RetryAfterMs(const std::string& tenant, double now_ms) const;

  /// The quota shape applied to `tenant` (nullptr when unmetered).
  const TenantQuota* QuotaFor(const std::string& tenant) const;

 private:
  struct Bucket {
    double tokens = 0.0;
    double last_refill_ms = 0.0;
    bool initialized = false;
  };

  /// The live bucket for `tenant`, refilled to `now_ms`; nullptr when the
  /// tenant is unmetered.
  Bucket* Refill(const std::string& tenant, double now_ms);

  std::map<std::string, TenantQuota> quotas_;  ///< "*" = default shape
  std::map<std::string, Bucket> buckets_;      ///< per concrete tenant
};

}  // namespace rlbench::serve

#endif  // RLBENCH_SRC_SERVE_ADMISSION_H_
