#include "serve/admission.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "obs/metrics.h"

namespace rlbench::serve {

namespace {

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t end = text.find(sep, begin);
    if (end == std::string::npos) end = text.size();
    parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

Result<double> ParsePositiveNumber(const std::string& text,
                                   const std::string& what) {
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || !(value > 0.0)) {
    return Status::InvalidArgument("admission: " + what + " \"" + text +
                                   "\" must be a positive number");
  }
  return value;
}

}  // namespace

Result<AdmissionController> AdmissionController::Parse(
    const std::string& spec) {
  AdmissionController controller;
  if (spec.empty()) return controller;
  for (const std::string& entry : SplitOn(spec, ';')) {
    if (entry.empty()) continue;  // tolerate trailing ';'
    size_t eq = entry.find('=');
    size_t colon = entry.find(':', eq == std::string::npos ? 0 : eq + 1);
    if (eq == std::string::npos || colon == std::string::npos || eq == 0) {
      return Status::InvalidArgument(
          "admission: entry \"" + entry +
          "\" does not match tenant=rate:burst");
    }
    std::string tenant = entry.substr(0, eq);
    TenantQuota quota;
    RLBENCH_ASSIGN_OR_RETURN(
        quota.rate_per_s,
        ParsePositiveNumber(entry.substr(eq + 1, colon - eq - 1), "rate"));
    RLBENCH_ASSIGN_OR_RETURN(
        quota.burst, ParsePositiveNumber(entry.substr(colon + 1), "burst"));
    if (quota.burst < 1.0) {
      return Status::InvalidArgument(
          "admission: burst for \"" + tenant + "\" must be >= 1 token");
    }
    if (!controller.quotas_.emplace(tenant, quota).second) {
      return Status::InvalidArgument("admission: duplicate tenant \"" +
                                     tenant + "\"");
    }
  }
  return controller;
}

const TenantQuota* AdmissionController::QuotaFor(
    const std::string& tenant) const {
  auto it = quotas_.find(tenant);
  if (it != quotas_.end()) return &it->second;
  it = quotas_.find("*");
  if (it != quotas_.end()) return &it->second;
  return nullptr;
}

AdmissionController::Bucket* AdmissionController::Refill(
    const std::string& tenant, double now_ms) {
  const TenantQuota* quota = QuotaFor(tenant);
  if (quota == nullptr) return nullptr;
  Bucket& bucket = buckets_[tenant];
  if (!bucket.initialized) {
    bucket.tokens = quota->burst;  // fresh tenants start with a full burst
    bucket.last_refill_ms = now_ms;
    bucket.initialized = true;
    return &bucket;
  }
  double elapsed_ms = std::max(0.0, now_ms - bucket.last_refill_ms);
  bucket.tokens = std::min(
      quota->burst, bucket.tokens + elapsed_ms * quota->rate_per_s / 1000.0);
  bucket.last_refill_ms = now_ms;
  return &bucket;
}

bool AdmissionController::Admit(const std::string& tenant, double now_ms) {
  Bucket* bucket = Refill(tenant, now_ms);
  if (bucket == nullptr) return true;
  if (bucket->tokens >= 1.0) {
    bucket->tokens -= 1.0;
    return true;
  }
  RLBENCH_COUNTER_INC("serve/quota/rejected");
  return false;
}

double AdmissionController::RetryAfterMs(const std::string& tenant,
                                         double now_ms) const {
  const TenantQuota* quota = QuotaFor(tenant);
  if (quota == nullptr) return 0.0;
  auto it = buckets_.find(tenant);
  if (it == buckets_.end() || !it->second.initialized) return 0.0;
  double elapsed_ms = std::max(0.0, now_ms - it->second.last_refill_ms);
  double tokens = std::min(
      quota->burst,
      it->second.tokens + elapsed_ms * quota->rate_per_s / 1000.0);
  if (tokens >= 1.0) return 0.0;
  return (1.0 - tokens) * 1000.0 / quota->rate_per_s;
}

}  // namespace rlbench::serve
