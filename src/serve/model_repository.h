// On-disk store of versioned model snapshots, one directory per matcher:
//
//   <root>/<matcher>/v0001.snap
//   <root>/<matcher>/v0002.snap
//   <root>/<matcher>/CURRENT        <- decimal number of the live version
//
// Publish() writes the new snapshot file and then atomically repoints
// CURRENT (both through data::FileSource::WriteAtomic), so a reader racing
// a publish sees either the old complete version or the new complete one —
// never a torn snapshot. Versions are contiguous from 1; CURRENT is the
// single source of truth for both "latest" and "how many".
#ifndef RLBENCH_SRC_SERVE_MODEL_REPOSITORY_H_
#define RLBENCH_SRC_SERVE_MODEL_REPOSITORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/snapshot.h"

namespace rlbench::serve {

/// \brief Filesystem-backed snapshot store with atomic version publish.
class ModelRepository {
 public:
  explicit ModelRepository(std::string root) : root_(std::move(root)) {}

  const std::string& root() const { return root_; }

  /// Serialize and store `model` as the next version of
  /// `metadata.matcher_name`, then repoint CURRENT. The version field of
  /// `metadata` is ignored on input; the assigned version is returned.
  [[nodiscard]] Result<uint64_t> Publish(SnapshotMetadata metadata,
                          const matchers::TrainedModel& model);

  /// Load one specific version. Failpoint: serve/snapshot/load.
  [[nodiscard]] Result<Snapshot> Load(const std::string& matcher_name,
                        uint64_t version) const;

  /// Load the version CURRENT points at; NotFound when the matcher has
  /// never been published.
  [[nodiscard]] Result<Snapshot> LoadCurrent(const std::string& matcher_name) const;

  /// The live version number, or NotFound.
  [[nodiscard]] Result<uint64_t> CurrentVersion(const std::string& matcher_name) const;

  /// All published versions (1..CURRENT); empty vector when none.
  [[nodiscard]] Result<std::vector<uint64_t>> ListVersions(
      const std::string& matcher_name) const;

  /// Path of one version's snapshot file (exists or not).
  std::string SnapshotPath(const std::string& matcher_name,
                           uint64_t version) const;

 private:
  std::string CurrentPath(const std::string& matcher_name) const;

  std::string root_;
};

}  // namespace rlbench::serve

#endif  // RLBENCH_SRC_SERVE_MODEL_REPOSITORY_H_
