// Loopback match server binary.
//
//   ./rlbench_serve --dataset=Ds3 --scale=0.2 --matcher=Magellan-RF
//       [--port=0] [--port_file=PATH] [--repo=DIR]
//       [--queue=512] [--batch=256] [--deadline_ms=0]
//       [--quotas="alpha=200:50;*=50:10"] [--shed] [--fallback=SA-ESDE]
//       [--max_connections=1024] [--idle_timeout_ms=0]
//       [--drift] [--drift_retrain=NAME]
//
// Builds the dataset, obtains a model (the repository's CURRENT snapshot
// when --repo holds one, otherwise trains and — with --repo — publishes),
// prints "listening on port N" and serves until a shutdown request.
// --quotas meters tenants through token buckets (admission.h grammar);
// --shed enables the tiered load-shedding controller, degrading to the
// --fallback linear matcher under pressure before rejecting.
// --drift enables the online difficulty-drift monitor (RLBENCH_DRIFT=1
// force-enables it too); on a trigger the server retrains
// --drift_retrain (default: the served matcher, then the zero-shot
// EnsembleLink) and shadow-gates the candidate before hot-swapping.
// RLBENCH_FAULTS / RLBENCH_METRICS / RLBENCH_TRACE apply as everywhere
// else in the repo.
#include <cstdio>
#include <string>

#include "common/flags.h"
#include "data/file_source.h"
#include "datagen/catalog.h"
#include "datagen/task_builder.h"
#include "matchers/context.h"
#include "matchers/registry.h"
#include "serve/model_repository.h"
#include "serve/server.h"

using namespace rlbench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string dataset = flags.GetString("dataset", "Ds3");
  double scale = flags.GetDouble("scale", 0.2);
  std::string matcher = flags.GetString("matcher", "Magellan-RF");
  std::string repo_root = flags.GetString("repo", "");
  std::string port_file = flags.GetString("port_file", "");

  const auto* spec = datagen::FindExistingBenchmark(dataset);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown benchmark %s\n", dataset.c_str());
    return 1;
  }
  auto task = datagen::BuildExistingBenchmark(*spec, scale);
  matchers::MatchingContext context(&task);

  serve::MatchServerOptions options;
  options.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  options.repository_root = repo_root;
  options.service.queue_capacity_pairs =
      static_cast<size_t>(flags.GetInt("queue", 512));
  options.service.max_batch_pairs =
      static_cast<size_t>(flags.GetInt("batch", 256));
  options.service.default_deadline_ms = flags.GetDouble("deadline_ms", 0.0);
  options.service.shed_enabled = flags.GetBool("shed", false);
  options.service.drift_enabled = flags.GetBool("drift", false);
  options.drift_retrain_matcher = flags.GetString("drift_retrain", "");
  options.loop.max_connections =
      static_cast<size_t>(flags.GetInt("max_connections", 1024));
  options.loop.idle_timeout_ms = flags.GetDouble("idle_timeout_ms", 0.0);
  serve::MatchServer server(&context, options);

  if (std::string quotas = flags.GetString("quotas", ""); !quotas.empty()) {
    if (Status st = server.service().SetQuotas(quotas); !st.ok()) {
      std::fprintf(stderr, "quotas: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (std::string fallback = flags.GetString("fallback", "");
      !fallback.empty()) {
    auto model = matchers::TrainServableMatcher(fallback, context);
    if (!model.ok()) {
      std::fprintf(stderr, "fallback: %s\n",
                   model.status().ToString().c_str());
      return 1;
    }
    // Publish the fallback alongside the primary: it is a servable
    // snapshot in its own right (shadow candidate, operator rollback).
    if (!repo_root.empty()) {
      serve::SnapshotMetadata fb_meta;
      fb_meta.matcher_name = fallback;
      fb_meta.dataset_id = task.name();
      fb_meta.num_attrs = task.left().schema().num_attributes();
      serve::ModelRepository repository(repo_root);
      auto version = repository.Publish(fb_meta, **model);
      if (!version.ok()) {
        std::fprintf(stderr, "fallback publish: %s\n",
                     version.status().ToString().c_str());
        return 1;
      }
    }
    if (Status st = server.service().SetFallbackModel(
            std::shared_ptr<const matchers::TrainedModel>(std::move(*model)));
        !st.ok()) {
      std::fprintf(stderr, "fallback: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("fallback tier: %s\n", fallback.c_str());
  }

  // Model: prefer the repository's published snapshot; fall back to
  // training in-process (and publishing when a repository is configured).
  serve::SnapshotMetadata metadata;
  metadata.matcher_name = matcher;
  metadata.dataset_id = task.name();
  metadata.num_attrs = task.left().schema().num_attributes();
  bool installed = false;
  if (!repo_root.empty()) {
    serve::ModelRepository repository(repo_root);
    auto snapshot = repository.LoadCurrent(matcher);
    if (snapshot.ok()) {
      if (Status st = server.service().InstallSnapshot(*snapshot); !st.ok()) {
        std::fprintf(stderr, "install: %s\n", st.ToString().c_str());
        return 1;
      }
      server.SetServedModel(snapshot->metadata);
      std::printf("loaded %s v%llu from %s\n", matcher.c_str(),
                  static_cast<unsigned long long>(snapshot->metadata.version),
                  repo_root.c_str());
      installed = true;
    } else if (snapshot.status().code() != StatusCode::kNotFound) {
      std::fprintf(stderr, "load: %s\n",
                   snapshot.status().ToString().c_str());
      return 1;
    }
  }
  if (!installed) {
    auto model = matchers::TrainServableMatcher(matcher, context);
    if (!model.ok()) {
      std::fprintf(stderr, "train: %s\n", model.status().ToString().c_str());
      return 1;
    }
    if (!repo_root.empty()) {
      serve::ModelRepository repository(repo_root);
      auto version = repository.Publish(metadata, **model);
      if (!version.ok()) {
        std::fprintf(stderr, "publish: %s\n",
                     version.status().ToString().c_str());
        return 1;
      }
      metadata.version = *version;
    }
    if (Status st = server.service().SwapModel(
            std::shared_ptr<const matchers::TrainedModel>(std::move(*model)));
        !st.ok()) {
      std::fprintf(stderr, "install: %s\n", st.ToString().c_str());
      return 1;
    }
    server.SetServedModel(metadata);
    std::printf("trained %s on %s\n", matcher.c_str(), task.name().c_str());
  }

  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("listening on port %u\n", server.port());
  std::fflush(stdout);
  if (!port_file.empty()) {
    Status written = data::FileSource::WriteAtomic(
        port_file, std::to_string(server.port()) + "\n");
    if (!written.ok()) {
      std::fprintf(stderr, "port_file: %s\n", written.ToString().c_str());
      return 1;
    }
  }
  if (Status st = server.Serve(); !st.ok()) {
    std::fprintf(stderr, "serve: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("shut down cleanly\n");
  return 0;
}
