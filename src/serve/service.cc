#include "serve/service.h"

#include <algorithm>
#include <span>
#include <utility>

#include "common/check.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlbench::serve {

namespace {

// Shared histogram shapes. Latency/wait cover 10us .. ~5s; batch sizes
// cover 1 .. 2048 pairs.
const std::vector<double>& LatencyBoundsMs() {
  static const std::vector<double> bounds =
      obs::ExponentialBounds(0.01, 2.0, 20);
  return bounds;
}

const std::vector<double>& BatchPairBounds() {
  static const std::vector<double> bounds = obs::ExponentialBounds(1.0, 2.0, 12);
  return bounds;
}

}  // namespace

MatchService::MatchService(const matchers::MatchingContext* context,
                           MatchServiceOptions options)
    : context_(context), options_(options) {
  RLBENCH_CHECK(context_ != nullptr);
  RLBENCH_CHECK(options_.max_batch_pairs > 0);
  RLBENCH_CHECK(options_.queue_capacity_pairs >= options_.max_batch_pairs);
}

Status MatchService::InstallSnapshot(const Snapshot& snapshot) {
  if (snapshot.model == nullptr) {
    return Status::InvalidArgument("serve: snapshot has no model");
  }
  if (snapshot.metadata.dataset_id != context_->task().name()) {
    return Status::FailedPrecondition(
        "serve: snapshot trained on \"" + snapshot.metadata.dataset_id +
        "\" but serving \"" + context_->task().name() + "\"");
  }
  return SwapModel(snapshot.model);
}

Status MatchService::SwapModel(
    std::shared_ptr<const matchers::TrainedModel> model) {
  if (model == nullptr) {
    return Status::InvalidArgument("serve: cannot install a null model");
  }
  size_t attrs = context_->task().left().schema().num_attributes();
  if (model->num_attrs() != attrs) {
    return Status::FailedPrecondition(
        "serve: model expects " + std::to_string(model->num_attrs()) +
        " attributes, dataset has " + std::to_string(attrs));
  }
  RLBENCH_TRACE_SPAN("serve/swap");
  // Different model families read different context caches (token sets,
  // q-grams, nothing). The previous model may have frozen the caches with
  // a different warm set, and PrepareContext early-returns on frozen
  // caches — so thaw first. No batch is in flight here: the service is
  // single-threaded and ScoreBatch's parallel region always completes
  // before PumpOne returns.
  context_->left().Thaw();
  context_->right().Thaw();
  model->PrepareContext(*context_);
  model_.Swap(std::move(model));
  RLBENCH_COUNTER_INC("serve/swaps");
  return Status::OK();
}

Result<uint64_t> MatchService::Submit(std::vector<data::LabeledPair> pairs,
                                      ResponseCallback done) {
  return SubmitWithDeadline(std::move(pairs), options_.default_deadline_ms,
                            std::move(done));
}

Result<uint64_t> MatchService::SubmitWithDeadline(
    std::vector<data::LabeledPair> pairs, double deadline_ms,
    ResponseCallback done) {
  RLBENCH_COUNTER_INC("serve/requests");
  if (model_.Empty()) {
    RLBENCH_COUNTER_INC("serve/rejected");
    return Status::FailedPrecondition("serve: no model installed");
  }
  if (pairs.empty()) {
    RLBENCH_COUNTER_INC("serve/rejected");
    return Status::InvalidArgument("serve: empty request");
  }
  if (pairs.size() > options_.max_batch_pairs) {
    RLBENCH_COUNTER_INC("serve/rejected");
    return Status::InvalidArgument(
        "serve: request of " + std::to_string(pairs.size()) +
        " pairs exceeds max batch of " +
        std::to_string(options_.max_batch_pairs));
  }
  const size_t left_size = context_->task().left().size();
  const size_t right_size = context_->task().right().size();
  for (const data::LabeledPair& pair : pairs) {
    if (pair.left >= left_size || pair.right >= right_size) {
      RLBENCH_COUNTER_INC("serve/rejected");
      return Status::InvalidArgument(
          "serve: pair (" + std::to_string(pair.left) + ", " +
          std::to_string(pair.right) + ") out of range");
    }
  }
  if (auto hit = RLBENCH_FAULT_POINT("serve/queue/full")) {
    RLBENCH_COUNTER_INC("serve/rejected");
    return Status::ResourceExhausted("injected: queue full");
  }
  if (queued_pairs_ + pairs.size() > options_.queue_capacity_pairs) {
    RLBENCH_COUNTER_INC("serve/rejected");
    return Status::ResourceExhausted(
        "serve: queue full (" + std::to_string(queued_pairs_) +
        " pairs pending, capacity " +
        std::to_string(options_.queue_capacity_pairs) + ")");
  }
  Pending request;
  request.id = next_request_id_++;
  request.deadline_ms = deadline_ms;
  request.done = std::move(done);
  queued_pairs_ += pairs.size();
  request.pairs = std::move(pairs);
  queue_.push_back(std::move(request));
  RLBENCH_GAUGE_OBSERVE("serve/queue_pairs",
                        static_cast<double>(queued_pairs_));
  return queue_.back().id;
}

void MatchService::Respond(Pending* request, RequestOutcome outcome) {
  RLBENCH_HISTOGRAM_RECORD("serve/latency_ms", LatencyBoundsMs(),
                           request->age.ElapsedMillis());
  if (request->done) {
    outcome.request_id = request->id;
    request->done(outcome);
  }
}

size_t MatchService::PumpOne() {
  if (queue_.empty()) return 0;
  RLBENCH_TRACE_SPAN("serve/pump");
  // Pin the current snapshot for the whole batch: a concurrent publisher
  // swapping the slot cannot pull the model out from under us.
  std::shared_ptr<const matchers::TrainedModel> model = model_.Acquire();
  RLBENCH_CHECK(model != nullptr);  // Submit rejects before the first install

  // Coalesce whole requests from the head until the next one would
  // overflow the micro-batch.
  std::vector<Pending> taken;
  size_t batch_pairs = 0;
  while (!queue_.empty()) {
    Pending& head = queue_.front();
    if (!taken.empty() &&
        batch_pairs + head.pairs.size() > options_.max_batch_pairs) {
      break;
    }
    batch_pairs += head.pairs.size();
    queued_pairs_ -= head.pairs.size();
    taken.push_back(std::move(head));
    queue_.pop_front();
    if (batch_pairs >= options_.max_batch_pairs) break;
  }

  // Per-request admission at pump time: expired deadlines and injected
  // worker faults are answered with an error; the rest are scored in one
  // ScoreBatch dispatch. A fault degrades that one request, never the
  // batch or the process.
  std::vector<size_t> live;
  std::vector<data::LabeledPair> flat;
  live.reserve(taken.size());
  flat.reserve(batch_pairs);
  for (size_t i = 0; i < taken.size(); ++i) {
    Pending& request = taken[i];
    RLBENCH_HISTOGRAM_RECORD("serve/queue_wait_ms", LatencyBoundsMs(),
                             request.age.ElapsedMillis());
    bool expired = request.deadline_ms > 0.0 &&
                   request.age.ElapsedMillis() > request.deadline_ms;
    if (auto hit = RLBENCH_FAULT_POINT("serve/deadline")) expired = true;
    if (expired) {
      RLBENCH_COUNTER_INC("serve/deadline_expired");
      RequestOutcome outcome;
      outcome.status = Status::DeadlineExceeded(
          "serve: request expired after " +
          std::to_string(request.age.ElapsedMillis()) + " ms in queue");
      Respond(&request, std::move(outcome));
      continue;
    }
    if (auto hit = RLBENCH_FAULT_POINT("serve/worker/fault")) {
      RLBENCH_COUNTER_INC("serve/worker_faults");
      RequestOutcome outcome;
      outcome.status = Status::Internal("injected: worker fault");
      Respond(&request, std::move(outcome));
      continue;
    }
    live.push_back(i);
    flat.insert(flat.end(), request.pairs.begin(), request.pairs.end());
  }

  if (!flat.empty()) {
    std::vector<double> scores(flat.size());
    std::vector<uint8_t> decisions(flat.size());
    Status scored;
    {
      RLBENCH_TRACE_SPAN("serve/batch");
      scored = model->ScoreBatch(*context_, flat, scores, decisions);
    }
    RLBENCH_COUNTER_INC("serve/batches");
    RLBENCH_COUNTER_ADD("serve/pairs_scored", flat.size());
    RLBENCH_HISTOGRAM_RECORD("serve/batch_pairs", BatchPairBounds(),
                             static_cast<double>(flat.size()));
    size_t offset = 0;
    for (size_t i : live) {
      Pending& request = taken[i];
      RequestOutcome outcome;
      outcome.status = scored;
      if (scored.ok()) {
        outcome.results.resize(request.pairs.size());
        for (size_t j = 0; j < request.pairs.size(); ++j) {
          outcome.results[j].score = scores[offset + j];
          outcome.results[j].decision = decisions[offset + j];
        }
      }
      offset += request.pairs.size();
      Respond(&request, std::move(outcome));
    }
  }
  return taken.size();
}

size_t MatchService::Drain() {
  RLBENCH_TRACE_SPAN("serve/drain");
  size_t answered = 0;
  while (!queue_.empty()) answered += PumpOne();
  return answered;
}

Result<AssessResult> MatchService::AssessDataset(
    std::vector<double>* scores_out, std::vector<uint8_t>* decisions_out) {
  RLBENCH_TRACE_SPAN("serve/assess");
  std::shared_ptr<const matchers::TrainedModel> model = model_.Acquire();
  if (model == nullptr) {
    return Status::FailedPrecondition("serve: no model installed");
  }
  const std::vector<data::LabeledPair>& test = context_->task().test();
  std::vector<double> scores(test.size());
  std::vector<uint8_t> decisions(test.size());
  AssessResult result;
  result.matcher_name = model->matcher_name();
  result.pairs = test.size();
  for (size_t begin = 0; begin < test.size();
       begin += options_.max_batch_pairs) {
    size_t count = std::min(options_.max_batch_pairs, test.size() - begin);
    RLBENCH_RETURN_NOT_OK(model->ScoreBatch(
        *context_, std::span<const data::LabeledPair>(&test[begin], count),
        std::span<double>(scores).subspan(begin, count),
        std::span<uint8_t>(decisions).subspan(begin, count)));
    ++result.batches;
    RLBENCH_COUNTER_INC("serve/batches");
    RLBENCH_COUNTER_ADD("serve/pairs_scored", count);
    RLBENCH_HISTOGRAM_RECORD("serve/batch_pairs", BatchPairBounds(),
                             static_cast<double>(count));
  }
  std::vector<uint8_t> truth(test.size());
  for (size_t i = 0; i < test.size(); ++i) {
    truth[i] = test[i].is_match ? 1 : 0;
  }
  result.confusion = ml::Evaluate(truth, decisions);
  result.f1 = result.confusion.F1();
  if (scores_out != nullptr) *scores_out = std::move(scores);
  if (decisions_out != nullptr) *decisions_out = std::move(decisions);
  return result;
}

}  // namespace rlbench::serve
