#include "serve/service.h"

#include <algorithm>
#include <span>
#include <utility>

#include "common/check.h"
#include "fault/failpoint.h"
#include "matchers/registry.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlbench::serve {

namespace {

// Shared histogram shapes. Latency/wait cover 10us .. ~5s; batch sizes
// cover 1 .. 2048 pairs.
const std::vector<double>& LatencyBoundsMs() {
  static const std::vector<double> bounds =
      obs::ExponentialBounds(0.01, 2.0, 20);
  return bounds;
}

const std::vector<double>& BatchPairBounds() {
  static const std::vector<double> bounds = obs::ExponentialBounds(1.0, 2.0, 12);
  return bounds;
}

// Size of the rolling latency window behind RollingP99Ms; big enough for a
// stable tail estimate, small enough that the shed controller reacts to
// the last few hundred requests, not ancient history.
constexpr size_t kLatencyRingSize = 512;

}  // namespace

MatchService::MatchService(const matchers::MatchingContext* context,
                           MatchServiceOptions options)
    : context_(context), options_(options), shed_(options.shed) {
  RLBENCH_CHECK(context_ != nullptr);
  RLBENCH_CHECK(options_.max_batch_pairs > 0);
  RLBENCH_CHECK(options_.queue_capacity_pairs >= options_.max_batch_pairs);
  latency_ring_.resize(kLatencyRingSize, 0.0);
  // Drift monitoring: opt-in per service, or force-enabled process-wide
  // via RLBENCH_DRIFT. Off means no tracker — the PumpOne hook is a null
  // check and serving is byte-identical to the pre-drift behaviour.
  if (options_.drift_enabled || drift::DriftEnvEnabled()) {
    drift_ = std::make_unique<drift::DriftTracker>(context_, options_.drift);
  }
}

Status MatchService::InstallSnapshot(const Snapshot& snapshot) {
  if (snapshot.model == nullptr) {
    return Status::InvalidArgument("serve: snapshot has no model");
  }
  if (snapshot.metadata.dataset_id != context_->task().name()) {
    return Status::FailedPrecondition(
        "serve: snapshot trained on \"" + snapshot.metadata.dataset_id +
        "\" but serving \"" + context_->task().name() + "\"");
  }
  return SwapModel(snapshot.model);
}

void MatchService::RewarmAll(const matchers::TrainedModel* extra) {
  // Different model families read different context caches (token sets,
  // q-grams, nothing). Thaw re-enters the warm phase without discarding
  // already-cached values, and Warm*() is idempotent — so re-preparing
  // every installed model warms the *union* of their families while every
  // previously cached value keeps its bits. No batch is in flight here:
  // the service is single-threaded and ScoreBatch's parallel region always
  // completes before PumpOne returns.
  context_->left().Thaw();
  context_->right().Thaw();
  auto prepare = [this](const matchers::TrainedModel* model) {
    if (model == nullptr) return;
    // PrepareContext freezes; thaw again so the next family can warm.
    model->PrepareContext(*context_);
    context_->left().Thaw();
    context_->right().Thaw();
  };
  std::shared_ptr<const matchers::TrainedModel> primary = model_.Acquire();
  prepare(primary.get());
  prepare(fallback_.get());
  if (shadow_ != nullptr) prepare(shadow_->candidate().get());
  prepare(extra);
  context_->left().Freeze();
  context_->right().Freeze();
}

Status MatchService::SwapModel(
    std::shared_ptr<const matchers::TrainedModel> model) {
  if (model == nullptr) {
    return Status::InvalidArgument("serve: cannot install a null model");
  }
  size_t attrs = context_->task().left().schema().num_attributes();
  if (model->num_attrs() != attrs) {
    return Status::FailedPrecondition(
        "serve: model expects " + std::to_string(model->num_attrs()) +
        " attributes, dataset has " + std::to_string(attrs));
  }
  RLBENCH_TRACE_SPAN("serve/swap");
  RewarmAll(model.get());
  model_.Swap(std::move(model));
  RLBENCH_COUNTER_INC("serve/swaps");
  return Status::OK();
}

Status MatchService::SetFallbackModel(
    std::shared_ptr<const matchers::TrainedModel> model) {
  if (model == nullptr) {
    return Status::InvalidArgument("serve: cannot install a null fallback");
  }
  size_t attrs = context_->task().left().schema().num_attributes();
  if (model->num_attrs() != attrs) {
    return Status::FailedPrecondition(
        "serve: fallback expects " + std::to_string(model->num_attrs()) +
        " attributes, dataset has " + std::to_string(attrs));
  }
  fallback_ = std::move(model);
  RewarmAll(nullptr);
  return Status::OK();
}

Status MatchService::SetQuotas(const std::string& spec) {
  RLBENCH_ASSIGN_OR_RETURN(admission_, AdmissionController::Parse(spec));
  return Status::OK();
}

Result<uint64_t> MatchService::Submit(std::vector<data::LabeledPair> pairs,
                                      ResponseCallback done) {
  return SubmitWithDeadline(std::move(pairs), options_.default_deadline_ms,
                            std::move(done));
}

Result<uint64_t> MatchService::SubmitWithDeadline(
    std::vector<data::LabeledPair> pairs, double deadline_ms,
    ResponseCallback done) {
  SubmitOptions submit;
  submit.deadline_ms = deadline_ms;
  return SubmitRequest(std::move(pairs), submit, std::move(done));
}

void MatchService::ObservePressure() {
  if (!options_.shed_enabled) return;
  double fill = options_.queue_capacity_pairs == 0
                    ? 0.0
                    : static_cast<double>(queued_pairs_) /
                          static_cast<double>(options_.queue_capacity_pairs);
  shed_.Observe(fill, RollingP99Ms());
}

Result<uint64_t> MatchService::SubmitRequest(
    std::vector<data::LabeledPair> pairs, const SubmitOptions& submit,
    ResponseCallback done) {
  RLBENCH_COUNTER_INC("serve/requests");
  last_retry_after_ms_ = 0.0;
  if (model_.Empty()) {
    RLBENCH_COUNTER_INC("serve/rejected");
    return Status::FailedPrecondition("serve: no model installed");
  }
  if (pairs.empty()) {
    RLBENCH_COUNTER_INC("serve/rejected");
    return Status::InvalidArgument("serve: empty request");
  }
  if (pairs.size() > options_.max_batch_pairs) {
    RLBENCH_COUNTER_INC("serve/rejected");
    return Status::InvalidArgument(
        "serve: request of " + std::to_string(pairs.size()) +
        " pairs exceeds max batch of " +
        std::to_string(options_.max_batch_pairs));
  }
  const size_t left_size = context_->task().left().size();
  const size_t right_size = context_->task().right().size();
  for (const data::LabeledPair& pair : pairs) {
    if (pair.left >= left_size || pair.right >= right_size) {
      RLBENCH_COUNTER_INC("serve/rejected");
      return Status::InvalidArgument(
          "serve: pair (" + std::to_string(pair.left) + ", " +
          std::to_string(pair.right) + ") out of range");
    }
  }
  if (!admission_.Unmetered()) {
    double now_ms = uptime_.ElapsedMillis();
    if (!admission_.Admit(submit.tenant, now_ms)) {
      RLBENCH_COUNTER_INC("serve/rejected");
      last_retry_after_ms_ = admission_.RetryAfterMs(submit.tenant, now_ms);
      return Status::ResourceExhausted("serve: tenant \"" + submit.tenant +
                                       "\" over quota");
    }
  }
  if (auto hit = RLBENCH_FAULT_POINT("serve/queue/full")) {
    RLBENCH_COUNTER_INC("serve/rejected");
    return Status::ResourceExhausted("injected: queue full");
  }
  if (queued_pairs_ + pairs.size() > options_.queue_capacity_pairs) {
    RLBENCH_COUNTER_INC("serve/rejected");
    return Status::ResourceExhausted(
        "serve: queue full (" + std::to_string(queued_pairs_) +
        " pairs pending, capacity " +
        std::to_string(options_.queue_capacity_pairs) + ")");
  }
  ObservePressure();
  ShedTier tier = options_.shed_enabled ? shed_.tier() : ShedTier::kFull;
  if (tier == ShedTier::kReject) {
    ++tier_counts_[static_cast<size_t>(ShedTier::kReject)];
    RLBENCH_COUNTER_INC("serve/shed/rejected");
    RLBENCH_COUNTER_INC("serve/rejected");
    last_retry_after_ms_ = options_.shed_retry_after_ms;
    return Status::ResourceExhausted(
        "serve: shedding load, retry after " +
        std::to_string(options_.shed_retry_after_ms) + " ms");
  }
  if (tier == ShedTier::kDegraded && fallback_ == nullptr) {
    // Degradation needs a fallback scorer; without one the request is
    // served at full tier — the ladder simply has no middle rung.
    tier = ShedTier::kFull;
  }
  ++tier_counts_[static_cast<size_t>(tier)];
  if (options_.shed_enabled) {
    RLBENCH_COUNTER_INC(tier == ShedTier::kDegraded ? "serve/shed/degraded"
                                                    : "serve/shed/full");
  }
  Pending request;
  request.id = next_request_id_++;
  request.deadline_ms = submit.deadline_ms;
  request.tier = tier;
  request.done = std::move(done);
  queued_pairs_ += pairs.size();
  ++queue_depth_;
  request.pairs = std::move(pairs);
  uint64_t id = request.id;
  queues_[submit.tenant].push_back(std::move(request));
  RLBENCH_GAUGE_OBSERVE("serve/queue_pairs",
                        static_cast<double>(queued_pairs_));
  return id;
}

void MatchService::Respond(Pending* request, RequestOutcome outcome) {
  double latency_ms = request->age.ElapsedMillis();
  RLBENCH_HISTOGRAM_RECORD("serve/latency_ms", LatencyBoundsMs(), latency_ms);
  latency_ring_[latency_next_] = latency_ms;
  latency_next_ = (latency_next_ + 1) % latency_ring_.size();
  latency_count_ = std::min(latency_count_ + 1, latency_ring_.size());
  if (request->done) {
    outcome.request_id = request->id;
    outcome.tier = request->tier;
    request->done(outcome);
  }
}

double MatchService::RollingP99Ms() const {
  if (latency_count_ == 0) return 0.0;
  std::vector<double> window(latency_ring_.begin(),
                             latency_ring_.begin() + latency_count_);
  size_t rank = (window.size() * 99) / 100;
  if (rank >= window.size()) rank = window.size() - 1;
  std::nth_element(window.begin(), window.begin() + rank, window.end());
  return window[rank];
}

std::vector<MatchService::Pending> MatchService::TakeBatch(
    size_t* batch_pairs, ShedTier* batch_tier) {
  // Rotation order: tenants after the cursor first, then wrap. The cursor
  // advances to the last tenant served, so a steady flood from one tenant
  // cannot shut out the others — each pump visits every tenant before
  // revisiting. One batch carries one tier only (one model scores it); a
  // tenant whose head is the other tier just waits for the next pump.
  std::vector<std::string> rotation;
  rotation.reserve(queues_.size());
  for (auto it = queues_.upper_bound(cursor_); it != queues_.end(); ++it) {
    rotation.push_back(it->first);
  }
  for (auto it = queues_.begin();
       it != queues_.end() && it->first <= cursor_; ++it) {
    rotation.push_back(it->first);
  }
  std::vector<Pending> taken;
  bool progress = true;
  while (progress && *batch_pairs < options_.max_batch_pairs) {
    progress = false;
    for (const std::string& tenant : rotation) {
      auto it = queues_.find(tenant);
      if (it == queues_.end() || it->second.empty()) continue;
      Pending& head = it->second.front();
      if (taken.empty()) {
        *batch_tier = head.tier;
      } else if (head.tier != *batch_tier ||
                 *batch_pairs + head.pairs.size() >
                     options_.max_batch_pairs) {
        continue;
      }
      *batch_pairs += head.pairs.size();
      queued_pairs_ -= head.pairs.size();
      --queue_depth_;
      taken.push_back(std::move(head));
      it->second.pop_front();
      if (it->second.empty()) queues_.erase(it);
      cursor_ = tenant;
      progress = true;
      if (*batch_pairs >= options_.max_batch_pairs) break;
    }
  }
  return taken;
}

size_t MatchService::PumpOne() {
  if (queue_depth_ == 0) return 0;
  RLBENCH_TRACE_SPAN("serve/pump");
  size_t batch_pairs = 0;
  ShedTier batch_tier = ShedTier::kFull;
  std::vector<Pending> taken = TakeBatch(&batch_pairs, &batch_tier);

  // Pin the scoring model for the whole batch: the primary snapshot for
  // full tier (a concurrent publisher swapping the slot cannot pull it out
  // from under us), the linear fallback for degraded tier.
  std::shared_ptr<const matchers::TrainedModel> model =
      batch_tier == ShedTier::kDegraded ? fallback_ : model_.Acquire();
  RLBENCH_CHECK(model != nullptr);  // Submit rejects before the first install

  // Per-request admission at pump time: expired deadlines and injected
  // worker faults are answered with an error; the rest are scored in one
  // ScoreBatch dispatch. A fault degrades that one request, never the
  // batch or the process.
  std::vector<size_t> live;
  std::vector<data::LabeledPair> flat;
  live.reserve(taken.size());
  flat.reserve(batch_pairs);
  for (size_t i = 0; i < taken.size(); ++i) {
    Pending& request = taken[i];
    RLBENCH_HISTOGRAM_RECORD("serve/queue_wait_ms", LatencyBoundsMs(),
                             request.age.ElapsedMillis());
    bool expired = request.deadline_ms > 0.0 &&
                   request.age.ElapsedMillis() > request.deadline_ms;
    if (auto hit = RLBENCH_FAULT_POINT("serve/deadline")) expired = true;
    if (expired) {
      RLBENCH_COUNTER_INC("serve/deadline_expired");
      RequestOutcome outcome;
      outcome.status = Status::DeadlineExceeded(
          "serve: request expired after " +
          std::to_string(request.age.ElapsedMillis()) + " ms in queue");
      Respond(&request, std::move(outcome));
      continue;
    }
    if (auto hit = RLBENCH_FAULT_POINT("serve/worker/fault")) {
      RLBENCH_COUNTER_INC("serve/worker_faults");
      RequestOutcome outcome;
      outcome.status = Status::Internal("injected: worker fault");
      Respond(&request, std::move(outcome));
      continue;
    }
    live.push_back(i);
    flat.insert(flat.end(), request.pairs.begin(), request.pairs.end());
  }

  if (!flat.empty()) {
    std::vector<double> scores(flat.size());
    std::vector<uint8_t> decisions(flat.size());
    Status scored;
    Stopwatch batch_clock;
    {
      RLBENCH_TRACE_SPAN("serve/batch");
      scored = model->ScoreBatch(*context_, flat, scores, decisions);
    }
    double primary_ms = batch_clock.ElapsedMillis();
    RLBENCH_COUNTER_INC("serve/batches");
    RLBENCH_COUNTER_ADD("serve/pairs_scored", flat.size());
    RLBENCH_HISTOGRAM_RECORD("serve/batch_pairs", BatchPairBounds(),
                             static_cast<double>(flat.size()));
    size_t offset = 0;
    for (size_t i : live) {
      Pending& request = taken[i];
      RequestOutcome outcome;
      outcome.status = scored;
      if (scored.ok()) {
        outcome.results.resize(request.pairs.size());
        for (size_t j = 0; j < request.pairs.size(); ++j) {
          outcome.results[j].score = scores[offset + j];
          outcome.results[j].decision = decisions[offset + j];
        }
      }
      offset += request.pairs.size();
      Respond(&request, std::move(outcome));
    }
    // Shadow-score after the batch is answered, on full-tier live traffic
    // only: the candidate sees what CURRENT served, and the response path
    // never waits on it.
    if (shadow_ != nullptr && batch_tier == ShedTier::kFull && scored.ok()) {
      ShadowEvaluator::Verdict verdict =
          shadow_->RecordBatch(*context_, flat, decisions, primary_ms);
      if (verdict == ShadowEvaluator::Verdict::kPromote) {
        shadow_event_.kind = ShadowEvent::Kind::kPromoted;
        shadow_event_.metadata = shadow_->metadata();
        shadow_event_.stats = shadow_->stats();
        std::shared_ptr<const matchers::TrainedModel> candidate =
            shadow_->candidate();
        shadow_.reset();
        // The swap cannot fail: StartShadow already validated the
        // candidate against this dataset.
        Status promoted = SwapModel(std::move(candidate));
        RLBENCH_CHECK(promoted.ok());
        RLBENCH_COUNTER_INC("serve/shadow/promoted");
      } else if (verdict == ShadowEvaluator::Verdict::kRollback) {
        shadow_event_.kind = ShadowEvent::Kind::kRolledBack;
        shadow_event_.metadata = shadow_->metadata();
        shadow_event_.stats = shadow_->stats();
        shadow_.reset();
        RLBENCH_COUNTER_INC("serve/shadow/rolled_back");
      }
    }
    // Difficulty-drift sampling rides the same full-tier choke point: the
    // tracker sees exactly what CURRENT answered, in serve order, after
    // the responses went out. This is the only serve-path drift hook
    // (lint rule `drift`); with monitoring off it costs one null check.
    if (drift_ != nullptr && batch_tier == ShedTier::kFull && scored.ok()) {
      drift_->RecordBatch(flat, scores, decisions);
    }
  }
  return taken.size();
}

DriftStatus MatchService::DriftSnapshot() const {
  DriftStatus status;
  if (drift_ == nullptr) return status;
  status.enabled = true;
  status.state = drift::DriftStateName(drift_->state());
  status.windows = drift_->reservoir().windows_completed();
  status.transitions = drift_->controller().transitions();
  status.triggers = drift_->controller().triggers();
  status.sampled_pairs = drift_->reservoir().sampled();
  status.window_pairs = drift_->reservoir().window_pairs();
  status.has_measures = drift_->has_measures();
  if (drift_->has_measures()) {
    const drift::WindowMeasures& latest = drift_->latest();
    status.best_linear_f1 = latest.best_linear_f1;
    status.complexity_avg = latest.complexity_avg;
    status.nlb = latest.nlb;
    status.lbm = latest.lbm;
  }
  return status;
}

bool MatchService::TakeDriftTrigger(DriftStatus* status) {
  if (drift_ == nullptr) return false;
  drift::DriftEvent event = drift_->ConsumeEvent();
  if (event.kind != drift::DriftEvent::Kind::kTriggered) return false;
  if (status != nullptr) *status = DriftSnapshot();
  return true;
}

void MatchService::RearmDrift() {
  if (drift_ != nullptr) drift_->Rearm();
}

Result<std::shared_ptr<const matchers::TrainedModel>>
MatchService::RetrainMatcher(const std::string& name, uint64_t seed) {
  RLBENCH_TRACE_SPAN("serve/retrain");
  RLBENCH_COUNTER_INC("serve/retrains");
  // Training needs the warm phase; serving keeps the caches frozen. Thaw
  // (cached values survive), train, then restore the frozen serving state
  // with every installed family re-warmed — scores stay bit-identical.
  context_->left().Thaw();
  context_->right().Thaw();
  auto model = matchers::TrainServableMatcher(name, *context_, seed);
  RewarmAll(model.ok() ? model->get() : nullptr);
  if (!model.ok()) {
    RLBENCH_COUNTER_INC("serve/retrain_failures");
    return model.status();
  }
  return std::shared_ptr<const matchers::TrainedModel>(std::move(*model));
}

size_t MatchService::Drain() {
  RLBENCH_TRACE_SPAN("serve/drain");
  size_t answered = 0;
  while (queue_depth_ > 0) answered += PumpOne();
  return answered;
}

Status MatchService::StartShadow(
    std::shared_ptr<const matchers::TrainedModel> candidate,
    SnapshotMetadata metadata, ShadowOptions options) {
  if (candidate == nullptr) {
    return Status::InvalidArgument("serve: cannot shadow a null model");
  }
  if (model_.Empty()) {
    return Status::FailedPrecondition(
        "serve: no primary model to shadow against");
  }
  if (shadow_ != nullptr) {
    return Status::FailedPrecondition(
        "serve: a shadow window is already active (" +
        shadow_->metadata().matcher_name + ")");
  }
  size_t attrs = context_->task().left().schema().num_attributes();
  if (candidate->num_attrs() != attrs) {
    return Status::FailedPrecondition(
        "serve: shadow candidate expects " +
        std::to_string(candidate->num_attrs()) + " attributes, dataset has " +
        std::to_string(attrs));
  }
  shadow_ = std::make_unique<ShadowEvaluator>(std::move(candidate),
                                              std::move(metadata), options);
  RewarmAll(nullptr);
  RLBENCH_COUNTER_INC("serve/shadow/started");
  return Status::OK();
}

bool MatchService::CancelShadow() {
  if (shadow_ == nullptr) return false;
  shadow_.reset();
  RLBENCH_COUNTER_INC("serve/shadow/cancelled");
  return true;
}

ShadowEvent MatchService::ConsumeShadowEvent() {
  ShadowEvent event = std::move(shadow_event_);
  shadow_event_ = ShadowEvent();
  return event;
}

Result<AssessResult> MatchService::AssessDataset(
    std::vector<double>* scores_out, std::vector<uint8_t>* decisions_out) {
  RLBENCH_TRACE_SPAN("serve/assess");
  std::shared_ptr<const matchers::TrainedModel> model = model_.Acquire();
  if (model == nullptr) {
    return Status::FailedPrecondition("serve: no model installed");
  }
  const std::vector<data::LabeledPair>& test = context_->task().test();
  std::vector<double> scores(test.size());
  std::vector<uint8_t> decisions(test.size());
  AssessResult result;
  result.matcher_name = model->matcher_name();
  result.pairs = test.size();
  for (size_t begin = 0; begin < test.size();
       begin += options_.max_batch_pairs) {
    size_t count = std::min(options_.max_batch_pairs, test.size() - begin);
    RLBENCH_RETURN_NOT_OK(model->ScoreBatch(
        *context_, std::span<const data::LabeledPair>(&test[begin], count),
        std::span<double>(scores).subspan(begin, count),
        std::span<uint8_t>(decisions).subspan(begin, count)));
    ++result.batches;
    RLBENCH_COUNTER_INC("serve/batches");
    RLBENCH_COUNTER_ADD("serve/pairs_scored", count);
    RLBENCH_HISTOGRAM_RECORD("serve/batch_pairs", BatchPairBounds(),
                             static_cast<double>(count));
  }
  std::vector<uint8_t> truth(test.size());
  for (size_t i = 0; i < test.size(); ++i) {
    truth[i] = test[i].is_match ? 1 : 0;
  }
  result.confusion = ml::Evaluate(truth, decisions);
  result.f1 = result.confusion.F1();
  if (scores_out != nullptr) *scores_out = std::move(scores);
  if (decisions_out != nullptr) *decisions_out = std::move(decisions);
  return result;
}

}  // namespace rlbench::serve
