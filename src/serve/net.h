// The only socket layer in the repo: loopback TCP with RAII descriptors
// and framed blocking IO. Everything POSIX-socket-shaped (socket, bind,
// listen, accept, connect, poll, send, recv) is confined to net.h/net.cc —
// the repo lint's `sockets` rule enforces that confinement, so transport
// concerns cannot leak into matcher or service code.
//
// All connections are 127.0.0.1 only; the server binary never listens on
// an external interface.
#ifndef RLBENCH_SRC_SERVE_NET_H_
#define RLBENCH_SRC_SERVE_NET_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "serve/wire.h"

namespace rlbench::serve {

/// \brief Owning file-descriptor wrapper; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

/// Listen on 127.0.0.1:`port` (0 = kernel-assigned ephemeral port). The
/// actually bound port is written to `bound_port`.
[[nodiscard]] Result<Socket> ListenLoopback(uint16_t port, uint16_t* bound_port);

/// Connect to 127.0.0.1:`port`.
[[nodiscard]] Result<Socket> ConnectLoopback(uint16_t port);

/// Accept one pending connection on `listener` (blocks until one arrives).
/// Prefer AcceptWithDeadline in server code: an Accept with no timeout can
/// park a shutdown forever on an idle listener.
[[nodiscard]] Result<Socket> Accept(const Socket& listener);

/// Poll `listener` for up to `timeout_ms` (0 = non-blocking probe), then
/// accept. nullopt when no connection arrived within the deadline — the
/// caller regains control instead of hanging, so a serve loop can check
/// its shutdown flag between accepts. Failpoint: serve/loop/accept.
[[nodiscard]] Result<std::optional<Socket>> AcceptWithDeadline(
    const Socket& listener, int timeout_ms);

/// Switch `socket` between blocking and non-blocking mode.
[[nodiscard]] Status SetNonBlocking(const Socket& socket, bool enable);

/// \brief One non-blocking read attempt.
struct ReadResult {
  std::string data;  ///< bytes drained now (empty when none were ready)
  bool eof = false;  ///< peer closed its write side (orderly shutdown)
};

/// Drain whatever `socket` has ready without blocking: empty data + !eof
/// means "try again later" (EAGAIN), empty data + eof means the peer
/// closed. The socket must be non-blocking. Failpoint: serve/loop/read.
[[nodiscard]] Result<ReadResult> ReadNonBlocking(const Socket& socket);

/// Write as much of `bytes` as the kernel will take without blocking and
/// return the count (0 when the send buffer is full). The socket must be
/// non-blocking. Failpoint: serve/loop/write.
[[nodiscard]] Result<size_t> WriteNonBlocking(const Socket& socket,
                                              std::string_view bytes);

/// Sleep the calling thread for `ms` milliseconds (poll-based, EINTR
/// restarted). The one sanctioned blocking wait outside socket readiness —
/// reconnect backoff uses it so client code needs no raw clock access.
void SleepMillis(int ms);

/// \brief Readiness multiplexer over many sockets (one ::poll per Wait).
///
/// Usage per event-loop tick: Clear(), Add() every fd with its interest
/// set, Wait(timeout), then query Readable/Writable/HasError per fd.
/// Rebuilt each tick — simple, allocation-stable (the vectors are reused),
/// and plenty for the loopback workloads this repo serves.
class PollSet {
 public:
  void Clear();
  void Add(int fd, bool want_read, bool want_write);

  /// Number of ready fds (0 on timeout). EINTR restarted.
  [[nodiscard]] Result<int> Wait(int timeout_ms);

  bool Readable(int fd) const;  ///< POLLIN | POLLHUP | POLLERR
  bool Writable(int fd) const;  ///< POLLOUT
  bool HasError(int fd) const;  ///< POLLERR | POLLNVAL

 private:
  short ReventsFor(int fd) const;

  // Opaque pollfd storage; the pollfd type itself stays inside net.cc so
  // <poll.h> does not leak to includers.
  std::vector<uint64_t> slots_;  ///< packed (fd, events, revents)
};

/// True when `socket` has readable data (or a pending EOF/error) within
/// `timeout_ms`; 0 polls without blocking, negative blocks indefinitely.
[[nodiscard]] Result<bool> WaitReadable(const Socket& socket, int timeout_ms);

/// Write all of `bytes` (handles short writes; EINTR restarted).
[[nodiscard]] Status SendAll(const Socket& socket, std::string_view bytes);

/// One recv() into an internal chunk; empty string means orderly EOF.
[[nodiscard]] Result<std::string> RecvSome(const Socket& socket);

/// Send one length-prefixed frame.
[[nodiscard]] Status SendFrame(const Socket& socket, std::string_view payload);

/// Block until one complete frame arrives, carrying over any extra bytes
/// already received into `decoder` for the next call — a peer that sends
/// several responses in one burst must not lose frames 2..n. IOError
/// mentioning "eof" when the peer closes before (or mid-) frame.
[[nodiscard]] Result<std::string> RecvFrame(const Socket& socket, FrameDecoder* decoder);

/// One-shot variant with a throwaway decoder. Only safe when the peer is
/// strictly request/response on this socket (never pipelines), because
/// bytes beyond the first frame are discarded.
[[nodiscard]] Result<std::string> RecvFrame(const Socket& socket);

}  // namespace rlbench::serve

#endif  // RLBENCH_SRC_SERVE_NET_H_
