// The only socket layer in the repo: loopback TCP with RAII descriptors
// and framed blocking IO. Everything POSIX-socket-shaped (socket, bind,
// listen, accept, connect, poll, send, recv) is confined to net.h/net.cc —
// the repo lint's `sockets` rule enforces that confinement, so transport
// concerns cannot leak into matcher or service code.
//
// All connections are 127.0.0.1 only; the server binary never listens on
// an external interface.
#ifndef RLBENCH_SRC_SERVE_NET_H_
#define RLBENCH_SRC_SERVE_NET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "serve/wire.h"

namespace rlbench::serve {

/// \brief Owning file-descriptor wrapper; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

/// Listen on 127.0.0.1:`port` (0 = kernel-assigned ephemeral port). The
/// actually bound port is written to `bound_port`.
[[nodiscard]] Result<Socket> ListenLoopback(uint16_t port, uint16_t* bound_port);

/// Connect to 127.0.0.1:`port`.
[[nodiscard]] Result<Socket> ConnectLoopback(uint16_t port);

/// Accept one pending connection on `listener` (blocks until one arrives).
[[nodiscard]] Result<Socket> Accept(const Socket& listener);

/// True when `socket` has readable data (or a pending EOF/error) within
/// `timeout_ms`; 0 polls without blocking, negative blocks indefinitely.
[[nodiscard]] Result<bool> WaitReadable(const Socket& socket, int timeout_ms);

/// Write all of `bytes` (handles short writes; EINTR restarted).
[[nodiscard]] Status SendAll(const Socket& socket, std::string_view bytes);

/// One recv() into an internal chunk; empty string means orderly EOF.
[[nodiscard]] Result<std::string> RecvSome(const Socket& socket);

/// Send one length-prefixed frame.
[[nodiscard]] Status SendFrame(const Socket& socket, std::string_view payload);

/// Block until one complete frame arrives, carrying over any extra bytes
/// already received into `decoder` for the next call — a peer that sends
/// several responses in one burst must not lose frames 2..n. IOError
/// mentioning "eof" when the peer closes before (or mid-) frame.
[[nodiscard]] Result<std::string> RecvFrame(const Socket& socket, FrameDecoder* decoder);

/// One-shot variant with a throwaway decoder. Only safe when the peer is
/// strictly request/response on this socket (never pipelines), because
/// bytes beyond the first frame are discarded.
[[nodiscard]] Result<std::string> RecvFrame(const Socket& socket);

}  // namespace rlbench::serve

#endif  // RLBENCH_SRC_SERVE_NET_H_
