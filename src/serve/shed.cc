#include "serve/shed.h"

#include "common/check.h"
#include "obs/metrics.h"

namespace rlbench::serve {

const char* ShedTierName(ShedTier tier) {
  switch (tier) {
    case ShedTier::kFull:
      return "full";
    case ShedTier::kDegraded:
      return "degraded";
    case ShedTier::kReject:
      return "reject";
  }
  return "unknown";
}

ShedController::ShedController(ShedOptions options) : options_(options) {
  RLBENCH_CHECK(options_.degrade_enter_fill > options_.degrade_exit_fill);
  RLBENCH_CHECK(options_.reject_enter_fill > options_.reject_exit_fill);
  RLBENCH_CHECK(options_.reject_enter_fill >= options_.degrade_enter_fill);
  RLBENCH_CHECK(options_.dwell >= 1);
}

ShedTier ShedController::TargetTier(double queue_fill, double p99_ms) const {
  // Escalation uses enter thresholds; de-escalation requires the signal to
  // fall below the *exit* threshold of the current tier. Between exit and
  // enter the target is the current tier — the hysteresis band.
  const bool latency_signal = options_.p99_enter_ms > 0.0 && p99_ms > 0.0;
  switch (tier_) {
    case ShedTier::kFull:
      if (queue_fill >= options_.reject_enter_fill) return ShedTier::kReject;
      if (queue_fill >= options_.degrade_enter_fill ||
          (latency_signal && p99_ms >= options_.p99_enter_ms)) {
        return ShedTier::kDegraded;
      }
      return ShedTier::kFull;
    case ShedTier::kDegraded:
      if (queue_fill >= options_.reject_enter_fill) return ShedTier::kReject;
      if (queue_fill <= options_.degrade_exit_fill &&
          (!latency_signal || p99_ms <= options_.p99_exit_ms)) {
        return ShedTier::kFull;
      }
      return ShedTier::kDegraded;
    case ShedTier::kReject:
      if (queue_fill <= options_.reject_exit_fill) {
        // Rejection releases into the degraded tier, never straight to
        // full: the backlog that caused rejection still needs working off.
        return ShedTier::kDegraded;
      }
      return ShedTier::kReject;
  }
  return tier_;
}

ShedTier ShedController::Observe(double queue_fill, double p99_ms) {
  ShedTier target = TargetTier(queue_fill, p99_ms);
  if (target == tier_) {
    pending_ = tier_;
    pending_count_ = 0;
    return tier_;
  }
  if (target == pending_) {
    ++pending_count_;
  } else {
    pending_ = target;
    pending_count_ = 1;
  }
  if (pending_count_ >= options_.dwell) {
    tier_ = pending_;
    pending_count_ = 0;
    ++transitions_;
    RLBENCH_COUNTER_INC("serve/shed/transitions");
    RLBENCH_GAUGE_OBSERVE("serve/shed/tier",
                          static_cast<double>(static_cast<uint8_t>(tier_)));
  }
  return tier_;
}

}  // namespace rlbench::serve
