// The loopback match server: a nonblocking event loop (event_loop.h) tying
// together net.h (framed TCP), wire.h (JSON requests), service.h (batched
// scoring, tenant admission, tiered shedding, shadow promotion) and
// model_repository.h (snapshot reload).
//
// Concurrency model: one thread, many connections. Each Tick() of the
// event loop collects every complete frame across all ready connections
// and submits match ops into the service's micro-batcher, so pipelined
// requests — from one client or many — coalesce into shared batches while
// responses still come back in per-connection request order (each frame
// owns a response slot; slots flush strictly in order). Ops:
//
//   ping          -> liveness + served matcher identity
//   match_pair    -> score one (left, right) candidate pair
//   match_batch   -> score up to max_batch_pairs pairs, optional
//                    deadline_ms; both match ops accept a "tenant" field
//   assess        -> score the full test split, return confusion + F1
//   stats         -> queue depth / shed tier + per-tier counts / rolling
//                    p99 / shadow window / model identity
//   reload        -> load a snapshot version from the repository, hot-swap
//   shadow_start  -> begin shadow-scoring a candidate snapshot
//   shadow_status -> agreement / latency / verdict of the active window
//   shadow_cancel -> abort the window without promoting
//   shutdown      -> stop accepting, answer everything in flight, stop
//
// Per-request failures (admission rejection, quota or shed rejection —
// both carrying "retry_after_ms" — deadline expiry, injected worker
// faults) travel back as {"ok":false,"code",...} responses; the server
// process itself stays up. After shutdown begins, late frames on still-
// open connections are answered with FailedPrecondition "shutting down"
// rather than silence.
#ifndef RLBENCH_SRC_SERVE_SERVER_H_
#define RLBENCH_SRC_SERVE_SERVER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "matchers/context.h"
#include "serve/event_loop.h"
#include "serve/model_repository.h"
#include "serve/net.h"
#include "serve/service.h"

namespace rlbench::serve {

struct MatchServerOptions {
  uint16_t port = 0;  ///< 0 = kernel-assigned; read back via port()
  MatchServiceOptions service;
  EventLoopOptions loop;
  std::string repository_root;  ///< empty disables the reload op
  /// Poll timeout of one event-loop tick (ms); bounds shutdown latency.
  int tick_timeout_ms = 50;
  /// Matcher retrained when the drift controller triggers; "" retrains
  /// the served matcher. If that training fails, the server falls back to
  /// the always-trainable zero-shot EnsembleLink.
  std::string drift_retrain_matcher;
  /// Shadow gate for drift-triggered candidates. Agreement with the
  /// incumbent is not required by default — the incumbent is the model
  /// the drift monitor just flagged as stale — but the fault and latency
  /// gates still protect the swap.
  ShadowOptions drift_shadow = [] {
    ShadowOptions shadow;
    shadow.min_agreement = 0.0;
    return shadow;
  }();
};

/// \brief Single-threaded loopback JSON server over one MatchingContext.
class MatchServer {
 public:
  MatchServer(const matchers::MatchingContext* context,
              MatchServerOptions options);

  MatchService& service() { return service_; }

  /// Record which snapshot identity is being served (shown by ping/stats);
  /// call after installing a model directly through service().
  void SetServedModel(SnapshotMetadata metadata) {
    served_ = std::move(metadata);
  }

  /// Bind + listen on 127.0.0.1; port() is valid afterwards.
  [[nodiscard]] Status Start();
  uint16_t port() const { return port_; }

  /// Run the event loop until a shutdown request completes its drain (or
  /// the loop's poll fails). Returns OK after a graceful shutdown: every
  /// admitted request answered, every response byte flushed.
  [[nodiscard]] Status Serve();

  /// Dispatch one request payload to a response payload (also the
  /// in-process test seam — no sockets involved). Match ops are submitted,
  /// drained and answered synchronously.
  std::string HandleRequest(const std::string& payload);

 private:
  /// One frame's pending response. Callbacks hold the slot alive even if
  /// the connection is evicted before the service answers.
  struct Slot {
    bool ready = false;
    std::string response;
  };

  /// Frame sink of the event loop: parse, submit or answer, queue a slot.
  void OnFrame(uint64_t conn_id, std::string payload);

  /// Emit every leading ready slot of every connection, in request order.
  void FlushReadySlots();

  /// Count of slots still waiting on the service.
  size_t PendingSlots() const;

  /// Pick up a promotion/rollback the service performed while pumping.
  void AbsorbShadowEvent();

  /// React to a drift trigger: retrain (EnsembleLink fallback), publish
  /// to the repository when configured, and start a shadow window. The
  /// drift controller re-arms when that window resolves.
  void AbsorbDriftTrigger();

  const matchers::MatchingContext* context_;
  MatchServerOptions options_;
  MatchService service_;
  std::optional<ModelRepository> repository_;
  EventLoop loop_;
  bool listening_ = false;
  uint16_t port_ = 0;
  std::optional<SnapshotMetadata> served_;
  std::unordered_map<uint64_t, std::deque<std::shared_ptr<Slot>>> slots_;
  uint64_t requests_served_ = 0;
  bool shutdown_ = false;
  /// A drift-triggered shadow window is in flight; its resolution re-arms
  /// the drift controller.
  bool drift_candidate_active_ = false;
};

}  // namespace rlbench::serve

#endif  // RLBENCH_SRC_SERVE_SERVER_H_
