// The loopback match server: one single-threaded event loop tying together
// net.h (framed TCP), wire.h (JSON requests), service.h (batched scoring)
// and model_repository.h (snapshot reload).
//
// The loop serves one client connection at a time and pipelines within it:
// every complete frame already buffered on the socket is parsed and
// submitted before the service pumps, so a client that writes N match
// requests back-to-back gets them coalesced into micro-batches while
// responses still come back in request order. Ops:
//
//   ping        -> liveness + served matcher identity
//   match_pair  -> score one (left, right) candidate pair
//   match_batch -> score up to max_batch_pairs pairs, optional deadline_ms
//   assess      -> score the full test split, return confusion + F1
//   stats       -> queue depth / served counters / model identity
//   reload      -> load a snapshot version from the repository and hot-swap
//   shutdown    -> drain every queued request, reply, stop serving
//
// Per-request failures (admission rejection, deadline expiry, injected
// worker faults) travel back as {"ok":false,"code",...} responses; the
// server process itself stays up.
#ifndef RLBENCH_SRC_SERVE_SERVER_H_
#define RLBENCH_SRC_SERVE_SERVER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "matchers/context.h"
#include "serve/model_repository.h"
#include "serve/net.h"
#include "serve/service.h"

namespace rlbench::serve {

struct MatchServerOptions {
  uint16_t port = 0;  ///< 0 = kernel-assigned; read back via port()
  MatchServiceOptions service;
  std::string repository_root;  ///< empty disables the reload op
};

/// \brief Single-threaded loopback JSON server over one MatchingContext.
class MatchServer {
 public:
  MatchServer(const matchers::MatchingContext* context,
              MatchServerOptions options);

  MatchService& service() { return service_; }

  /// Record which snapshot identity is being served (shown by ping/stats);
  /// call after installing a model directly through service().
  void SetServedModel(SnapshotMetadata metadata) {
    served_ = std::move(metadata);
  }

  /// Bind + listen on 127.0.0.1; port() is valid afterwards.
  [[nodiscard]] Status Start();
  uint16_t port() const { return port_; }

  /// Accept-and-serve until a shutdown request (or Accept failure).
  /// Returns OK after a graceful shutdown.
  [[nodiscard]] Status Serve();

  /// Dispatch one request payload to a response payload (also the
  /// in-process test seam — no sockets involved). Match ops are submitted,
  /// drained and answered synchronously.
  std::string HandleRequest(const std::string& payload);

 private:
  /// Serve one accepted connection until EOF, protocol error or shutdown.
  [[nodiscard]] Status ServeConnection(const Socket& conn);

  const matchers::MatchingContext* context_;
  MatchServerOptions options_;
  MatchService service_;
  std::optional<ModelRepository> repository_;
  Socket listener_;
  uint16_t port_ = 0;
  std::optional<SnapshotMetadata> served_;
  uint64_t requests_served_ = 0;
  bool shutdown_ = false;
};

}  // namespace rlbench::serve

#endif  // RLBENCH_SRC_SERVE_SERVER_H_
