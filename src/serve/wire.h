// Wire format of the loopback match server: length-prefixed JSON frames.
//
// Every message is one JSON object preceded by a 4-byte big-endian payload
// length. Requests carry an "op" field (ping, match_pair, match_batch,
// assess, stats, reload, shutdown); responses carry "ok" plus either the
// op's result fields or {"code", "error"} mapping a Status back to the
// client. This header owns the parsing side — a small immutable JSON DOM
// (obs/json.h is emission-only) — and the pure framing helpers; all socket
// IO lives in net.h.
#ifndef RLBENCH_SRC_SERVE_WIRE_H_
#define RLBENCH_SRC_SERVE_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace rlbench::serve {

/// Upper bound on one frame's JSON payload; a peer announcing more is a
/// protocol error, not an allocation.
inline constexpr size_t kMaxFramePayload = 1 << 20;

/// Bytes of the length prefix.
inline constexpr size_t kFrameHeaderBytes = 4;

/// Prefix `payload` with its big-endian length and append to `out`.
/// InvalidArgument when the payload exceeds kMaxFramePayload.
[[nodiscard]] Status AppendFrame(std::string_view payload, std::string* out);

/// Decode a length prefix (exactly kFrameHeaderBytes at `header`).
/// InvalidArgument when it announces more than kMaxFramePayload.
[[nodiscard]] Result<size_t> DecodeFrameHeader(const char* header);

/// \brief Incremental frame reassembly over a byte stream.
///
/// Feed arbitrarily chopped chunks with Append(); Next() yields each
/// complete payload in order, empty optional when more bytes are needed,
/// InvalidArgument when a header announces an oversized frame (the
/// connection is then unrecoverable — framing is lost).
class FrameDecoder {
 public:
  void Append(std::string_view bytes) { buffer_.append(bytes); }

  [[nodiscard]] Result<std::optional<std::string>> Next();

  size_t BufferedBytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// \brief One parsed JSON value; immutable after parse.
///
/// Accessors are total: a kind mismatch yields the type's empty value
/// (false / 0.0 / "" / no elements) rather than trapping, because wire
/// bytes are untrusted. Callers that need strictness check kind() or use
/// the Require* helpers below.
class JsonValue {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return is_bool() && bool_; }
  double AsNumber() const { return is_number() ? number_ : 0.0; }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& AsObject() const {
    return object_;
  }

  /// First value under `key` (objects preserve insertion order), or null
  /// when absent / not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Field accessors with defaults for optional request fields.
  std::string GetString(const std::string& key,
                        std::string fallback = "") const;
  double GetNumber(const std::string& key, double fallback = 0.0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  /// Strict accessors for required fields: InvalidArgument when the key is
  /// missing or the value has the wrong type.
  [[nodiscard]] Result<std::string> RequireString(const std::string& key) const;
  Result<double> RequireNumber(const std::string& key) const;
  [[nodiscard]] Result<const JsonValue*> RequireArray(const std::string& key) const;

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double n);
  static JsonValue String(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::vector<std::pair<std::string, JsonValue>> items);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parse one complete JSON value (surrounding whitespace allowed, trailing
/// bytes rejected). Recursive descent with a nesting cap of 64.
[[nodiscard]] Result<JsonValue> ParseJson(std::string_view text);

}  // namespace rlbench::serve

#endif  // RLBENCH_SRC_SERVE_WIRE_H_
