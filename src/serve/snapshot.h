// Versioned model snapshot files: the serialized form of a trained matcher
// (matchers/trained_model.h) plus the metadata serving needs to validate it
// against a live dataset before installing it. The byte format is the
// bit-exact blob codec of common/blob.h framed by a magic tag and an FNV-1a
// checksum, so a snapshot loaded on any machine scores identically to the
// matcher that trained it, and a corrupt file degrades into a load error
// instead of silently serving garbage.
#ifndef RLBENCH_SRC_SERVE_SNAPSHOT_H_
#define RLBENCH_SRC_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "matchers/trained_model.h"

namespace rlbench::serve {

/// First bytes of every snapshot file; the trailing digit is the format
/// version and changes only on incompatible layout changes.
inline constexpr char kSnapshotMagic[] = "RLSNAP01";

/// \brief Identity of a snapshot: which matcher, trained on what.
struct SnapshotMetadata {
  std::string matcher_name;  ///< registry row name, e.g. "Magellan-RF"
  std::string dataset_id;    ///< dataset the model was trained on
  uint64_t version = 0;      ///< repository version (1-based, monotonic)
  uint64_t num_attrs = 0;    ///< schema arity the model expects
};

/// \brief A decoded snapshot: metadata + the ready-to-score model.
struct Snapshot {
  SnapshotMetadata metadata;
  std::shared_ptr<const matchers::TrainedModel> model;
};

/// Serialize `metadata` + `model` into a self-validating snapshot blob.
std::string EncodeSnapshot(const SnapshotMetadata& metadata,
                           const matchers::TrainedModel& model);

/// Decode a snapshot blob. IOError on bad magic, checksum mismatch, or a
/// truncated/corrupt model payload; the metadata's num_attrs is checked
/// against the embedded model's. Failpoint: serve/snapshot/decode.
[[nodiscard]] Result<Snapshot> DecodeSnapshot(const std::string& bytes);

}  // namespace rlbench::serve

#endif  // RLBENCH_SRC_SERVE_SNAPSHOT_H_
