// Shadow/canary evaluation for snapshot promotion: a candidate model
// shadow-scores a deterministic sample of live traffic against CURRENT,
// and the promotion decision is gated on decision agreement and a latency
// budget — with automatic rollback on divergence or any shadow fault.
//
// The evaluator never touches the response path: shadow scoring happens
// after the primary batch is answered, on a copy of the sampled pairs, and
// a shadow failure degrades into a rollback verdict, never into a request
// error. CURRENT keeps serving bit-identical scores for the entire shadow
// window, promotion or not — the only observable change is the hot-swap
// at promotion time.
//
// Sampling is a pure function of (seed, left, right): the same pair is
// sampled — or not — regardless of thread count, tick boundaries, or how
// requests were batched, so shadow runs are reproducible.
//
// Verdict ladder (checked after every recorded batch):
//   * any shadow fault            -> kRollback (divergence by definition)
//   * agreement < min_agreement
//     once min_samples were seen  -> kRollback
//   * latency ratio over budget
//     once min_samples were seen  -> kRollback
//   * >= target_samples, gates ok -> kPromote
//   * otherwise                   -> kPending
//
// Metrics: serve/shadow/{sampled,agreed,disagreed,faults}. Promotion and
// rollback counters are recorded by the service, which owns the swap.
// Failpoint: serve/shadow/score (injected shadow-scoring failure).
#ifndef RLBENCH_SRC_SERVE_SHADOW_H_
#define RLBENCH_SRC_SERVE_SHADOW_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>

#include "data/task.h"
#include "matchers/context.h"
#include "matchers/trained_model.h"
#include "serve/snapshot.h"

namespace rlbench::serve {

struct ShadowOptions {
  /// Fraction of full-tier pairs shadow-scored, in (0, 1].
  double sample_fraction = 0.25;
  /// Seed of the deterministic pair-sampling hash.
  uint64_t seed = 0x5eed;
  /// Samples required before the agreement/latency gates are trusted.
  size_t min_samples = 64;
  /// Samples at which a passing candidate is promoted.
  size_t target_samples = 256;
  /// Decision-agreement floor over sampled pairs.
  double min_agreement = 0.98;
  /// Budget: mean shadow ScoreBatch ms may not exceed this multiple of the
  /// mean primary ScoreBatch ms over the same sampled batches; 0 disables.
  double max_latency_ratio = 3.0;
};

/// \brief Rolling agreement/latency stats of one shadow window.
struct ShadowStats {
  size_t sampled_pairs = 0;
  size_t agreed_pairs = 0;
  size_t faults = 0;
  double primary_ms = 0.0;  ///< summed primary scoring time, sampled batches
  double shadow_ms = 0.0;   ///< summed candidate scoring time
  double Agreement() const {
    return sampled_pairs == 0
               ? 1.0
               : static_cast<double>(agreed_pairs) / sampled_pairs;
  }
  double LatencyRatio() const {
    return primary_ms <= 0.0 ? 0.0 : shadow_ms / primary_ms;
  }
};

/// \brief One candidate's shadow window against the CURRENT model.
///
/// Not thread-safe; owned by the single-threaded MatchService. The
/// evaluator holds the candidate model but never publishes it — the
/// service swaps only on a kPromote verdict.
class ShadowEvaluator {
 public:
  enum class Verdict : uint8_t { kPending = 0, kPromote = 1, kRollback = 2 };

  ShadowEvaluator(std::shared_ptr<const matchers::TrainedModel> candidate,
                  SnapshotMetadata metadata, ShadowOptions options);

  /// Deterministic sampling decision for one pair.
  bool ShouldSample(const data::LabeledPair& pair) const;

  /// Shadow-score the sampled subset of one already-answered primary
  /// batch. `pairs`/`decisions` are the full batch with the primary
  /// model's outputs; `primary_ms` is what the primary ScoreBatch took.
  /// Scores the sampled pairs with the candidate, records agreement and
  /// latency, and returns the updated verdict.
  Verdict RecordBatch(const matchers::MatchingContext& context,
                      std::span<const data::LabeledPair> pairs,
                      std::span<const uint8_t> decisions, double primary_ms);

  Verdict CurrentVerdict() const;

  const ShadowStats& stats() const { return stats_; }
  const SnapshotMetadata& metadata() const { return metadata_; }
  const ShadowOptions& options() const { return options_; }
  std::shared_ptr<const matchers::TrainedModel> candidate() const {
    return candidate_;
  }

 private:
  std::shared_ptr<const matchers::TrainedModel> candidate_;
  SnapshotMetadata metadata_;
  ShadowOptions options_;
  ShadowStats stats_;
};

}  // namespace rlbench::serve

#endif  // RLBENCH_SRC_SERVE_SHADOW_H_
