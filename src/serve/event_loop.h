// Non-blocking connection multiplexer for the match server: one poll-based
// loop owns the listener and every accepted connection, so thousands of
// clients can pipeline frames into the micro-batcher without a thread per
// connection and without any socket call ever parking the process.
//
// Per-connection discipline (the overload-hardening contract):
//   * bounded read buffer  — a peer that streams bytes faster than frames
//     are consumed is evicted, not buffered without limit;
//   * bounded write buffer — a peer that stops reading its responses
//     (slow client) is evicted once the pending bytes exceed the cap;
//   * handshake timeout    — a connection that never completes a first
//     frame is closed;
//   * idle timeout         — a connection with no traffic is closed;
//   * connection cap       — accepts beyond max_connections are closed
//     immediately (the kernel backlog, not this process, is the queue).
//
// The loop is single-threaded and callback-driven: Tick() performs one
// poll round (accept, read, dispatch complete frames, flush writes, evict)
// and hands every complete frame to the frame sink in per-connection
// arrival order. Responses are queued with Respond() — in any order across
// connections, but per connection the caller must respond in frame order
// (MatchServer's slot mechanism guarantees it). BeginDrain() stops
// accepting; the loop then lives only to flush what is already queued.
//
// Metrics: serve/loop/{accepted,evicted_slow,evicted_idle,evicted_handshake,
// overflow_closed,frames,ticks}. Failpoints (in net.cc, where the syscalls
// live): serve/loop/accept, serve/loop/read, serve/loop/write.
#ifndef RLBENCH_SRC_SERVE_EVENT_LOOP_H_
#define RLBENCH_SRC_SERVE_EVENT_LOOP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "common/stopwatch.h"
#include "serve/net.h"
#include "serve/wire.h"

namespace rlbench::serve {

struct EventLoopOptions {
  size_t max_connections = 1024;
  /// Unparsed bytes one connection may buffer before it is evicted (a
  /// frame can never exceed kMaxFramePayload, so anything larger than a
  /// few frames' worth means the peer outruns the service).
  size_t read_buffer_limit = 4u << 20;
  /// Pending response bytes before a non-reading peer is evicted.
  size_t write_buffer_limit = 8u << 20;
  /// Close a connection whose peer sent no complete frame yet (ms).
  double handshake_timeout_ms = 10'000.0;
  /// Close a connection with no inbound traffic for this long (ms);
  /// 0 disables (tests keep idle control connections open).
  double idle_timeout_ms = 0.0;
};

/// \brief Poll-driven multiplexer over one listener + N framed connections.
class EventLoop {
 public:
  /// `sink(conn_id, payload)` is invoked for every complete frame, in
  /// arrival order within each connection.
  using FrameSink = std::function<void(uint64_t, std::string)>;

  explicit EventLoop(EventLoopOptions options = {});

  /// Bind + listen on 127.0.0.1:`port` (0 = ephemeral; bound port is
  /// written to `bound_port`). The listener is non-blocking.
  [[nodiscard]] Status Listen(uint16_t port, uint16_t* bound_port);

  /// One loop iteration: wait up to `timeout_ms` for readiness, accept,
  /// read, deliver complete frames to `sink`, flush pending writes, and
  /// evict misbehaving or expired connections. Returns the number of
  /// frames delivered this tick.
  [[nodiscard]] Result<size_t> Tick(int timeout_ms, const FrameSink& sink);

  /// Queue one framed response payload on `conn_id`; bytes are flushed by
  /// subsequent Ticks (and opportunistically right away). Unknown ids are
  /// ignored (the connection was already evicted).
  void Respond(uint64_t conn_id, std::string_view payload);

  /// Stop accepting new connections; existing ones keep draining.
  void BeginDrain();
  bool draining() const { return draining_; }

  /// Forcibly drop one connection (pending writes are flushed best-effort).
  void CloseConnection(uint64_t conn_id);

  size_t ActiveConnections() const { return connections_.size(); }
  bool HasConnection(uint64_t conn_id) const {
    return connections_.find(conn_id) != connections_.end();
  }

  /// True when every queued response byte has been handed to the kernel —
  /// the drain-complete condition for a graceful shutdown.
  bool AllFlushed() const;

 private:
  struct Connection {
    Socket socket;
    FrameDecoder decoder;
    std::string out;        ///< framed, unflushed response bytes
    size_t out_offset = 0;  ///< bytes of `out` already written
    Stopwatch last_activity;
    bool saw_frame = false;  ///< first complete frame arrived (handshake)
  };

  /// Accept every connection the kernel has pending (respecting the cap).
  void AcceptReady();

  /// Drain one readable connection and deliver its complete frames.
  /// Returns frames delivered; the connection may be closed on error.
  size_t ReadAndDispatch(uint64_t conn_id, const FrameSink& sink);

  /// Push pending bytes of one connection; evict on error/overflow.
  void FlushConnection(uint64_t conn_id);

  /// Close every connection that exceeded its handshake/idle budget.
  void EvictExpired();

  EventLoopOptions options_;
  Socket listener_;
  PollSet poll_set_;
  std::unordered_map<uint64_t, Connection> connections_;
  std::deque<uint64_t> doomed_;  ///< ids to erase after the current sweep
  uint64_t next_conn_id_ = 1;
  bool draining_ = false;
};

}  // namespace rlbench::serve

#endif  // RLBENCH_SRC_SERVE_EVENT_LOOP_H_
