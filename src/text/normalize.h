// Text cleaning used by the blocking tuner (Section VI: "whether cleaning is
// used or not — if it is, stop-words are removed and stemming is applied")
// and by the DITTO-style TF-IDF summarisation.
#ifndef RLBENCH_SRC_TEXT_NORMALIZE_H_
#define RLBENCH_SRC_TEXT_NORMALIZE_H_

#include <string>
#include <string_view>
#include <vector>

namespace rlbench::text {

/// True if the token is an English stop-word (small fixed list, lower-case).
bool IsStopWord(std::string_view token);

/// Remove stop-words from a token sequence.
std::vector<std::string> RemoveStopWords(const std::vector<std::string>& tokens);

/// A light suffix-stripping stemmer (Porter-style step-1 rules: plurals,
/// -ed/-ing, -ly, -tion families). Deterministic and cheap; sufficient for
/// the cleaning toggle the blocking grid search explores.
std::string Stem(std::string_view token);

/// Apply Stem to every token.
std::vector<std::string> StemAll(const std::vector<std::string>& tokens);

/// Full cleaning pipeline: tokenize -> remove stop-words -> stem -> rejoin
/// with single spaces.
std::string CleanText(std::string_view text);

}  // namespace rlbench::text

#endif  // RLBENCH_SRC_TEXT_NORMALIZE_H_
