// Tokenization and token-set construction. All difficulty measures and the
// schema-agnostic matchers in the paper operate on lower-cased whitespace /
// punctuation tokens, so this module is the shared entry point for turning
// attribute values into comparable token sequences and sets.
#ifndef RLBENCH_SRC_TEXT_TOKENIZER_H_
#define RLBENCH_SRC_TEXT_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rlbench::text {

/// Lower-case and split on whitespace and punctuation; digits and letters
/// are kept, everything else is a delimiter. Empty tokens are dropped.
std::vector<std::string> Tokenize(std::string_view value);

/// Tokenize each string and concatenate the results in order.
std::vector<std::string> TokenizeAll(const std::vector<std::string>& values);

/// \brief A deduplicated, sorted set of 64-bit token hashes.
///
/// Set similarities (Jaccard, Cosine, Dice, Overlap) reduce to merge-style
/// intersections over these sorted vectors, which is the hot path of
/// Algorithm 1 and the ESDE matchers.
class TokenSet {
 public:
  TokenSet() = default;
  explicit TokenSet(const std::vector<std::string>& tokens);

  /// Build directly from raw text (tokenizes first).
  static TokenSet FromText(std::string_view text);

  size_t size() const { return hashes_.size(); }
  bool empty() const { return hashes_.empty(); }
  const std::vector<uint64_t>& hashes() const { return hashes_; }

  /// Number of elements shared with the other set (merge intersection).
  size_t IntersectionSize(const TokenSet& other) const;

  bool operator==(const TokenSet& other) const = default;

 private:
  std::vector<uint64_t> hashes_;
};

}  // namespace rlbench::text

#endif  // RLBENCH_SRC_TEXT_TOKENIZER_H_
