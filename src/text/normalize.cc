#include "text/normalize.h"

#include <array>
#include <algorithm>

#include "common/strings.h"
#include "text/tokenizer.h"

namespace rlbench::text {

namespace {

constexpr std::array<std::string_view, 32> kStopWords = {
    "a",   "an",  "and",  "are", "as",   "at",   "be",   "by",
    "for", "from", "has",  "he",  "in",   "is",   "it",   "its",
    "of",  "on",  "or",   "that", "the", "this", "to",   "was",
    "were", "will", "with", "we",  "you",  "but",  "not",  "their"};

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace

bool IsStopWord(std::string_view token) {
  return std::find(kStopWords.begin(), kStopWords.end(), token) !=
         kStopWords.end();
}

std::vector<std::string> RemoveStopWords(
    const std::vector<std::string>& tokens) {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const auto& token : tokens) {
    if (!IsStopWord(token)) out.push_back(token);
  }
  return out;
}

std::string Stem(std::string_view token) {
  std::string word(token);
  // Keep very short words intact: stripping would destroy them.
  if (word.size() <= 3) return word;
  if (EndsWith(word, "sses")) {
    word.resize(word.size() - 2);
  } else if (EndsWith(word, "ies")) {
    word.resize(word.size() - 2);
  } else if (EndsWith(word, "s") && !EndsWith(word, "ss") &&
             !EndsWith(word, "us")) {
    word.resize(word.size() - 1);
  }
  if (word.size() > 4 && EndsWith(word, "ing")) {
    word.resize(word.size() - 3);
  } else if (word.size() > 4 && EndsWith(word, "ed")) {
    word.resize(word.size() - 2);
  } else if (word.size() > 4 && EndsWith(word, "ly")) {
    word.resize(word.size() - 2);
  }
  if (word.size() > 5 && EndsWith(word, "ation")) {
    word.resize(word.size() - 3);
    word.push_back('e');
  }
  return word;
}

std::vector<std::string> StemAll(const std::vector<std::string>& tokens) {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const auto& token : tokens) out.push_back(Stem(token));
  return out;
}

std::string CleanText(std::string_view text) {
  auto tokens = StemAll(RemoveStopWords(Tokenize(text)));
  return Join(tokens, " ");
}

}  // namespace rlbench::text
