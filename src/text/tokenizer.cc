#include "text/tokenizer.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"

namespace rlbench::text {

std::vector<std::string> Tokenize(std::string_view value) {
  std::vector<std::string> tokens;
  std::string current;
  for (char raw : value) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> TokenizeAll(const std::vector<std::string>& values) {
  std::vector<std::string> tokens;
  for (const auto& value : values) {
    auto piece = Tokenize(value);
    tokens.insert(tokens.end(), piece.begin(), piece.end());
  }
  return tokens;
}

TokenSet::TokenSet(const std::vector<std::string>& tokens) {
  hashes_.reserve(tokens.size());
  for (const auto& token : tokens) hashes_.push_back(Fnv1a64(token));
  std::sort(hashes_.begin(), hashes_.end());
  hashes_.erase(std::unique(hashes_.begin(), hashes_.end()), hashes_.end());
}

TokenSet TokenSet::FromText(std::string_view text) {
  return TokenSet(Tokenize(text));
}

size_t TokenSet::IntersectionSize(const TokenSet& other) const {
  size_t count = 0;
  auto a = hashes_.begin();
  auto b = other.hashes_.begin();
  while (a != hashes_.end() && b != other.hashes_.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++count;
      ++a;
      ++b;
    }
  }
  return count;
}

}  // namespace rlbench::text
