// Character q-gram extraction for the q-gram ESDE variants (SAQ/SBQ) and
// q-gram blocking.
#ifndef RLBENCH_SRC_TEXT_QGRAMS_H_
#define RLBENCH_SRC_TEXT_QGRAMS_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/tokenizer.h"

namespace rlbench::text {

/// Extract the (overlapping) character q-grams of a string after
/// lower-casing; strings shorter than q yield the whole string as one gram.
std::vector<std::string> QGrams(std::string_view value, int q);

/// Build a TokenSet of q-gram hashes for the given q directly from text.
/// The hash space is salted with q so that the 2-gram "ab" and a token "ab"
/// never alias.
TokenSet QGramSet(std::string_view value, int q);

}  // namespace rlbench::text

#endif  // RLBENCH_SRC_TEXT_QGRAMS_H_
