#include "text/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>

#if defined(__GNUC__) && defined(__x86_64__)
#include <immintrin.h>
#endif

#include "common/check.h"
#include "common/strings.h"
#include "text/similarity.h"

namespace rlbench::text::kernels {

size_t IntersectSortedU32(std::span<const uint32_t> a,
                          std::span<const uint32_t> b) {
  const uint32_t* pa = a.data();
  const uint32_t* pb = b.data();
  const uint32_t* ea = pa + a.size();
  const uint32_t* eb = pb + b.size();
  size_t count = 0;
  while (pa != ea && pb != eb) {
    uint32_t x = *pa;
    uint32_t y = *pb;
    count += static_cast<size_t>(x == y);
    pa += static_cast<size_t>(x <= y);
    pb += static_cast<size_t>(y <= x);
  }
  return count;
}

size_t IntersectSortedU64(std::span<const uint64_t> a,
                          std::span<const uint64_t> b) {
  const uint64_t* pa = a.data();
  const uint64_t* pb = b.data();
  const uint64_t* ea = pa + a.size();
  const uint64_t* eb = pb + b.size();
  size_t count = 0;
  while (pa != ea && pb != eb) {
    uint64_t x = *pa;
    uint64_t y = *pb;
    count += static_cast<size_t>(x == y);
    pa += static_cast<size_t>(x <= y);
    pb += static_cast<size_t>(y <= x);
  }
  return count;
}

double CosineFromCounts(size_t inter, size_t size_a, size_t size_b) {
  if (size_a == 0 || size_b == 0) return 0.0;
  double i = static_cast<double>(inter);
  double sim = i / std::sqrt(static_cast<double>(size_a) *
                             static_cast<double>(size_b));
  RLBENCH_DCHECK_PROB(sim);
  return sim;
}

double JaccardFromCounts(size_t inter, size_t size_a, size_t size_b) {
  if (size_a == 0 && size_b == 0) return 0.0;
  double i = static_cast<double>(inter);
  double uni = static_cast<double>(size_a + size_b) - i;
  double sim = uni <= 0.0 ? 0.0 : i / uni;
  RLBENCH_DCHECK_PROB(sim);
  return sim;
}

double DiceFromCounts(size_t inter, size_t size_a, size_t size_b) {
  if (size_a == 0 && size_b == 0) return 0.0;
  double i = static_cast<double>(inter);
  double sim = 2.0 * i / static_cast<double>(size_a + size_b);
  RLBENCH_DCHECK_PROB(sim);
  return sim;
}

double OverlapFromCounts(size_t inter, size_t size_a, size_t size_b) {
  if (size_a == 0 || size_b == 0) return 0.0;
  return static_cast<double>(inter) /
         static_cast<double>(std::min(size_a, size_b));
}

double ContainmentFromCounts(size_t inter, size_t size_a, size_t size_b) {
  (void)size_b;
  if (size_a == 0) return 0.0;
  double sim = static_cast<double>(inter) / static_cast<double>(size_a);
  RLBENCH_DCHECK_PROB(sim);
  return sim;
}

SetSims SetFamilyFromCounts(size_t inter, size_t size_a, size_t size_b) {
  SetSims sims;
  sims.cosine = CosineFromCounts(inter, size_a, size_b);
  sims.dice = DiceFromCounts(inter, size_a, size_b);
  sims.jaccard = JaccardFromCounts(inter, size_a, size_b);
  return sims;
}

SetSims SetFamilySortedU32(std::span<const uint32_t> a,
                           std::span<const uint32_t> b) {
  return SetFamilyFromCounts(IntersectSortedU32(a, b), a.size(), b.size());
}

SetSims SetFamilySortedU64(std::span<const uint64_t> a,
                           std::span<const uint64_t> b) {
  return SetFamilyFromCounts(IntersectSortedU64(a, b), a.size(), b.size());
}

double JaccardSortedU32(std::span<const uint32_t> a,
                        std::span<const uint32_t> b) {
  return JaccardFromCounts(IntersectSortedU32(a, b), a.size(), b.size());
}

double OverlapSortedU32(std::span<const uint32_t> a,
                        std::span<const uint32_t> b) {
  return OverlapFromCounts(IntersectSortedU32(a, b), a.size(), b.size());
}

double ContainmentSortedU32(std::span<const uint32_t> a,
                            std::span<const uint32_t> b) {
  return ContainmentFromCounts(IntersectSortedU32(a, b), a.size(), b.size());
}

namespace {

void JaccardBatchMerge(const U32SetPair* pairs, size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) {
    size_t inter = IntersectSortedU32({pairs[i].a, pairs[i].size_a},
                                      {pairs[i].b, pairs[i].size_b});
    out[i] = JaccardFromCounts(inter, pairs[i].size_a, pairs[i].size_b);
  }
}

#if defined(__GNUC__) && defined(__x86_64__)
#define RLBENCH_KERNELS_HAVE_AVX2 1

// Lane masks for a partial 8-lane load: kLaneMask[n] has lanes [0, n) set.
alignas(32) const uint32_t kLaneMask[9][8] = {
    {0, 0, 0, 0, 0, 0, 0, 0},
    {~0u, 0, 0, 0, 0, 0, 0, 0},
    {~0u, ~0u, 0, 0, 0, 0, 0, 0},
    {~0u, ~0u, ~0u, 0, 0, 0, 0, 0},
    {~0u, ~0u, ~0u, ~0u, 0, 0, 0, 0},
    {~0u, ~0u, ~0u, ~0u, ~0u, 0, 0, 0},
    {~0u, ~0u, ~0u, ~0u, ~0u, ~0u, 0, 0},
    {~0u, ~0u, ~0u, ~0u, ~0u, ~0u, ~0u, 0},
    {~0u, ~0u, ~0u, ~0u, ~0u, ~0u, ~0u, ~0u},
};

// All-lanes membership count: hold one side (up to 16 ids) in two ymm
// registers, masked-loaded so no byte past the span is touched and dead
// lanes forced to the 0xFFFFFFFF sentinel (never a valid rank id), then
// test every element of the other side against all lanes at once. Sets are
// deduped, so each element matches at most one lane and summing cmpeq
// lanes counts |A∩B| exactly — the same integer the two-pointer merge
// produces, just without its serial loop-carried dependency.
__attribute__((target("avx2"))) void JaccardBatchAvx2(const U32SetPair* pairs,
                                                      size_t n, double* out) {
  const __m256i sentinel = _mm256_set1_epi32(-1);
  for (size_t i = 0; i < n; ++i) {
    size_t na = pairs[i].size_a;
    size_t nb = pairs[i].size_b;
    if (na == 0 || nb == 0) {
      out[i] = JaccardFromCounts(0, na, nb);
      continue;
    }
    // Iterate the smaller side; keep the larger side in registers.
    const uint32_t* iter = pairs[i].a;
    const uint32_t* held = pairs[i].b;
    size_t n_iter = na;
    size_t n_held = nb;
    if (n_held < n_iter) {
      std::swap(iter, held);
      std::swap(n_iter, n_held);
    }
    if (n_held > 16) {
      size_t inter = IntersectSortedU32({pairs[i].a, na}, {pairs[i].b, nb});
      out[i] = JaccardFromCounts(inter, na, nb);
      continue;
    }
    __m256i m0 = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kLaneMask[n_held > 8 ? 8 : n_held]));
    __m256i h0 = _mm256_maskload_epi32(reinterpret_cast<const int*>(held), m0);
    h0 = _mm256_blendv_epi8(sentinel, h0, m0);
    __m256i acc = _mm256_setzero_si256();
    if (n_held > 8) {
      __m256i m1 = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(kLaneMask[n_held - 8]));
      __m256i h1 =
          _mm256_maskload_epi32(reinterpret_cast<const int*>(held + 8), m1);
      h1 = _mm256_blendv_epi8(sentinel, h1, m1);
      for (size_t k = 0; k < n_iter; ++k) {
        __m256i x = _mm256_set1_epi32(static_cast<int>(iter[k]));
        __m256i hit = _mm256_or_si256(_mm256_cmpeq_epi32(x, h0),
                                      _mm256_cmpeq_epi32(x, h1));
        acc = _mm256_sub_epi32(acc, hit);
      }
    } else {
      for (size_t k = 0; k < n_iter; ++k) {
        __m256i x = _mm256_set1_epi32(static_cast<int>(iter[k]));
        acc = _mm256_sub_epi32(acc, _mm256_cmpeq_epi32(x, h0));
      }
    }
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                              _mm256_extracti128_si256(acc, 1));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4E));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xB1));
    size_t inter = static_cast<uint32_t>(_mm_cvtsi128_si32(s));
    out[i] = JaccardFromCounts(inter, na, nb);
  }
}

#endif  // AVX2-capable toolchain

}  // namespace

void JaccardSortedU32Batch(const U32SetPair* pairs, size_t n, double* out) {
#ifdef RLBENCH_KERNELS_HAVE_AVX2
  static const bool has_avx2 = __builtin_cpu_supports("avx2") != 0;
  if (has_avx2) {
    JaccardBatchAvx2(pairs, n, out);
    return;
  }
#endif
  JaccardBatchMerge(pairs, n, out);
}

namespace {

/// Banded single-pass DP over stack rows. Returns the exact distance when
/// it is <= k, otherwise any value > k (the caller retries with 2k). Band
/// condition |i - j| <= k is sound: any alignment path leaving the band
/// costs more than k insertions+deletions.
size_t LevenshteinWithin(std::string_view a, std::string_view b, size_t k) {
  size_t m = a.size();
  size_t n = b.size();
  RLBENCH_DCHECK_LE(m, n);
  RLBENCH_DCHECK_LE(m, kLevenshteinStackCap);
  RLBENCH_DCHECK_GE(k, n - m);
  const size_t big = m + n + 1;
  size_t buf0[kLevenshteinStackCap + 1];
  size_t buf1[kLevenshteinStackCap + 1];
  size_t* prev = buf0;
  size_t* curr = buf1;
  for (size_t i = 0; i <= m; ++i) prev[i] = i <= k ? i : big;
  for (size_t j = 1; j <= n; ++j) {
    size_t lo = j > k ? j - k : 1;
    size_t hi = std::min(m, j + k);
    // k >= n - m guarantees a non-empty band on every row.
    RLBENCH_DCHECK_LE(lo, hi);
    curr[lo - 1] = lo == 1 ? j : big;
    size_t row_min = big;
    for (size_t i = lo; i <= hi; ++i) {
      size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      size_t v =
          std::min({prev[i] + 1, curr[i - 1] + 1, prev[i - 1] + cost});
      curr[i] = v;
      row_min = std::min(row_min, v);
    }
    if (hi < m) curr[hi + 1] = big;
    if (row_min > k) return big;
    std::swap(prev, curr);
  }
  return prev[m];
}

/// Full two-row DP on the stack. For short strings the band bookkeeping
/// (plus the risk of a doubling retry) costs more than the cells it skips;
/// this path still beats the scalar reference by avoiding its two heap
/// allocations per call.
size_t LevenshteinFullStack(std::string_view a, std::string_view b) {
  size_t m = a.size();
  RLBENCH_DCHECK_LE(m, kLevenshteinStackCap);
  size_t buf0[kLevenshteinStackCap + 1];
  size_t buf1[kLevenshteinStackCap + 1];
  size_t* prev = buf0;
  size_t* curr = buf1;
  for (size_t i = 0; i <= m; ++i) prev[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    curr[0] = j;
    char bj = b[j - 1];
    for (size_t i = 1; i <= m; ++i) {
      size_t cost = a[i - 1] == bj ? 0 : 1;
      curr[i] = std::min({prev[i] + 1, curr[i - 1] + 1, prev[i - 1] + cost});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

/// Myers' bit-parallel scan (Myers 1999): the DP column is encoded as
/// positive/negative delta bitvectors, one word of bit operations per text
/// character instead of m DP cells. Exact for any byte strings with the
/// pattern (the shorter operand) at most 64 bytes.
size_t LevenshteinMyers64(std::string_view a, std::string_view b) {
  size_t m = a.size();
  RLBENCH_DCHECK(m >= 1 && m <= 64);
  uint64_t peq[256] = {};
  for (size_t i = 0; i < m; ++i) {
    peq[static_cast<uint8_t>(a[i])] |= uint64_t{1} << i;
  }
  uint64_t pv = ~uint64_t{0};
  uint64_t mv = 0;
  uint64_t last = uint64_t{1} << (m - 1);
  size_t score = m;
  for (size_t j = 0; j < b.size(); ++j) {
    uint64_t eq = peq[static_cast<uint8_t>(b[j])];
    uint64_t xv = eq | mv;
    uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    uint64_t ph = mv | ~(xh | pv);
    uint64_t mh = pv & xh;
    if (ph & last) ++score;
    if (mh & last) --score;
    ph = (ph << 1) | 1;
    mh <<= 1;
    pv = mh | ~(xv | ph);
    mv = ph & xv;
  }
  return score;
}

}  // namespace

size_t LevenshteinBanded(std::string_view a, std::string_view b) {
  // Common prefix and suffix contribute nothing to the distance.
  size_t prefix = 0;
  size_t limit = std::min(a.size(), b.size());
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  a.remove_prefix(prefix);
  b.remove_prefix(prefix);
  size_t suffix = 0;
  limit = std::min(a.size(), b.size());
  while (suffix < limit &&
         a[a.size() - 1 - suffix] == b[b.size() - 1 - suffix]) {
    ++suffix;
  }
  a.remove_suffix(suffix);
  b.remove_suffix(suffix);
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return b.size();
  if (a.size() <= 64) return LevenshteinMyers64(a, b);
  if (a.size() > kLevenshteinStackCap) return LevenshteinDistance(a, b);
  size_t n = b.size();
  size_t k = std::max(n - a.size(), size_t{8});
  // When the initial band already covers (nearly) the whole shorter side,
  // banding saves no cells — run the plain full DP instead.
  if (2 * k + 1 >= a.size()) return LevenshteinFullStack(a, b);
  while (true) {
    size_t dist = LevenshteinWithin(a, b, k);
    if (dist <= k) return dist;
    // k >= n covers every cell, so the DP above was already exhaustive and
    // its result <= max(m, n) <= k — unreachable without a smaller band.
    RLBENCH_DCHECK_LT(k, n);
    k = std::min(k * 2, n);
  }
}

double LevenshteinSimilarityBanded(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t longest = std::max(a.size(), b.size());
  return 1.0 - static_cast<double>(LevenshteinBanded(a, b)) /
                   static_cast<double>(longest);
}

double JaroKernel(std::string_view a, std::string_view b) {
  if (a.size() > 64 || b.size() > 64) return JaroSimilarity(a, b);
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;
  size_t window =
      std::max(a.size(), b.size()) / 2 == 0
          ? 0
          : std::max(a.size(), b.size()) / 2 - 1;
  uint64_t matched_a = 0;
  uint64_t matched_b = 0;
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(b.size(), i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (((matched_b >> j) & 1u) == 0 && a[i] == b[j]) {
        matched_a |= uint64_t{1} << i;
        matched_b |= uint64_t{1} << j;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  // Transpositions among matched characters, in order — identical walk to
  // the scalar reference's vector<bool> scan.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (((matched_a >> i) & 1u) == 0) continue;
    while (((matched_b >> j) & 1u) == 0) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  double sim = (m / static_cast<double>(a.size()) +
                m / static_cast<double>(b.size()) +
                (m - static_cast<double>(transpositions) / 2.0) / m) /
               3.0;
  RLBENCH_DCHECK_PROB(sim);
  return sim;
}

double JaroWinklerKernel(std::string_view a, std::string_view b) {
  double jaro = JaroKernel(a, b);
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
}

namespace {

double MongeElkanDirected(std::span<const std::string_view> from,
                          std::span<const std::string_view> to) {
  double total = 0.0;
  for (std::string_view t : from) {
    double best = 0.0;
    for (std::string_view u : to) {
      best = std::max(best, JaroWinklerKernel(t, u));
    }
    total += best;
  }
  return total / static_cast<double>(from.size());
}

}  // namespace

double MongeElkanKernel(std::span<const std::string_view> a,
                        std::span<const std::string_view> b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  return 0.5 * (MongeElkanDirected(a, b) + MongeElkanDirected(b, a));
}

bool ParseNumeric(std::string_view value, double* out) {
  // Mirrors text::NumericSimilarity's parse step exactly: strip ASCII
  // whitespace, strtod over the whole remainder, reject inf/nan spellings.
  std::string buf(StripAscii(value));
  if (buf.empty()) return false;
  char* end = nullptr;
  double x = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  if (!std::isfinite(x)) return false;
  *out = x;
  return true;
}

double NumericFromParsed(bool ok_a, double x, bool ok_b, double y) {
  if (!ok_a || !ok_b) return 0.0;
  if (x == y) return 1.0;
  double denom = std::max(std::fabs(x), std::fabs(y));
  if (denom == 0.0) return 1.0;
  double sim = 1.0 - std::fabs(x - y) / denom;
  sim = std::max(0.0, sim);
  RLBENCH_DCHECK_PROB(sim);
  return sim;
}

double ExactMatchLowered(std::string_view lowered_a,
                         std::string_view lowered_b) {
  return lowered_a == lowered_b ? 1.0 : 0.0;
}

double DotSpan(std::span<const float> a, std::span<const float> b) {
  RLBENCH_CHECK_EQ(a.size(), b.size());
  const float* pa = a.data();
  const float* pb = b.data();
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += double{pa[i]} * pb[i];
  return sum;
}

double DotBlocked(std::span<const float> a, std::span<const float> b) {
  RLBENCH_CHECK_EQ(a.size(), b.size());
  const float* pa = a.data();
  const float* pb = b.data();
  size_t n = a.size();
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  double s3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += double{pa[i]} * pb[i];
    s1 += double{pa[i + 1]} * pb[i + 1];
    s2 += double{pa[i + 2]} * pb[i + 2];
    s3 += double{pa[i + 3]} * pb[i + 3];
  }
  for (; i < n; ++i) s0 += double{pa[i]} * pb[i];
  return (s0 + s1) + (s2 + s3);
}

double CosineSimilarity01Span(std::span<const float> a,
                              std::span<const float> b) {
  double na = std::sqrt(DotSpan(a, a));
  double nb = std::sqrt(DotSpan(b, b));
  double cosine = 0.0;
  if (na != 0.0 && nb != 0.0) {
    cosine = std::clamp(DotSpan(a, b) / (na * nb), -1.0, 1.0);
  }
  double sim = 0.5 * (1.0 + cosine);
  RLBENCH_DCHECK_PROB(sim);
  return sim;
}

double EuclideanSimilaritySpan(std::span<const float> a,
                               std::span<const float> b) {
  RLBENCH_CHECK_EQ(a.size(), b.size());
  const float* pa = a.data();
  const float* pb = b.data();
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = double{pa[i]} - pb[i];
    sum += d * d;
  }
  double sim = 1.0 / (1.0 + std::sqrt(sum));
  RLBENCH_DCHECK_PROB(sim);
  return sim;
}

double WassersteinFromSorted(std::span<const float> sorted_a,
                             std::span<const float> sorted_b) {
  RLBENCH_CHECK_EQ(sorted_a.size(), sorted_b.size());
  const float* pa = sorted_a.data();
  const float* pb = sorted_b.data();
  double w = 0.0;
  for (size_t i = 0; i < sorted_a.size(); ++i) {
    w += std::fabs(double{pa[i]} - pb[i]);
  }
  if (!sorted_a.empty()) w /= static_cast<double>(sorted_a.size());
  RLBENCH_DCHECK_FINITE(w);
  return 1.0 / (1.0 + w);
}

// The batched affines are register-blocked over 4 units: one pass over the
// input panel feeds 4 output rows, quartering the panel traffic (the panels
// are the memory-bound part — the weights are tiny). The __restrict__
// qualifiers assert no aliasing between the weight / input / output panels,
// which is what lets the compiler vectorize the r-loops (each acc[r] is an
// independent chain). Every output keeps its own single accumulator over
// ascending j, so blocking does not change a single bit.
//
// target_clones gives each affine an AVX2 variant (resolved once at load):
// the r-loop lanes are independent accumulators, so going from 2-wide SSE2
// to 4-wide AVX2 packs more of them per instruction without touching any
// accumulator's operation order. The clone enables AVX2 only — not FMA —
// so multiplies and adds stay separate and every output is still
// BIT-EXACT vs the scalar reference.
// TSan: target_clones emits ifunc resolvers that run during relocation,
// before the TSan runtime has initialized — large binaries crash at load.
// The sanitizer builds are correctness gates, not perf builds, so they
// take the plain (still vectorized) definitions instead.
#if defined(__GNUC__) && defined(__x86_64__) && !defined(__SANITIZE_THREAD__)
#define RLBENCH_AFFINE_TARGETS __attribute__((target_clones("avx2", "default")))
#else
#define RLBENCH_AFFINE_TARGETS
#endif

RLBENCH_AFFINE_TARGETS
void BatchedAffineF32(const double* __restrict__ w,
                      const double* __restrict__ bias, size_t units,
                      size_t dim, const float* __restrict__ xt, size_t batch,
                      double* __restrict__ out) {
  size_t i = 0;
  for (; i + 4 <= units; i += 4) {
    double* __restrict__ a0 = out + i * batch;
    double* __restrict__ a1 = out + (i + 1) * batch;
    double* __restrict__ a2 = out + (i + 2) * batch;
    double* __restrict__ a3 = out + (i + 3) * batch;
    for (size_t r = 0; r < batch; ++r) {
      a0[r] = bias[i];
      a1[r] = bias[i + 1];
      a2[r] = bias[i + 2];
      a3[r] = bias[i + 3];
    }
    const double* r0 = w + i * dim;
    const double* r1 = r0 + dim;
    const double* r2 = r1 + dim;
    const double* r3 = r2 + dim;
    for (size_t j = 0; j < dim; ++j) {
      double w0 = r0[j];
      double w1 = r1[j];
      double w2 = r2[j];
      double w3 = r3[j];
      const float* __restrict__ col = xt + j * batch;
      for (size_t r = 0; r < batch; ++r) {
        double c = col[r];
        a0[r] += w0 * c;
        a1[r] += w1 * c;
        a2[r] += w2 * c;
        a3[r] += w3 * c;
      }
    }
  }
  for (; i < units; ++i) {
    double* __restrict__ acc = out + i * batch;
    for (size_t r = 0; r < batch; ++r) acc[r] = bias[i];
    const double* row = w + i * dim;
    for (size_t j = 0; j < dim; ++j) {
      double wij = row[j];
      const float* __restrict__ col = xt + j * batch;
      for (size_t r = 0; r < batch; ++r) acc[r] += wij * col[r];
    }
  }
}

RLBENCH_AFFINE_TARGETS
void BatchedAffineF64(const double* __restrict__ w,
                      const double* __restrict__ bias, size_t units,
                      size_t dim, const double* __restrict__ xt, size_t batch,
                      double* __restrict__ out) {
  size_t i = 0;
  for (; i + 4 <= units; i += 4) {
    double* __restrict__ a0 = out + i * batch;
    double* __restrict__ a1 = out + (i + 1) * batch;
    double* __restrict__ a2 = out + (i + 2) * batch;
    double* __restrict__ a3 = out + (i + 3) * batch;
    for (size_t r = 0; r < batch; ++r) {
      a0[r] = bias[i];
      a1[r] = bias[i + 1];
      a2[r] = bias[i + 2];
      a3[r] = bias[i + 3];
    }
    const double* r0 = w + i * dim;
    const double* r1 = r0 + dim;
    const double* r2 = r1 + dim;
    const double* r3 = r2 + dim;
    for (size_t j = 0; j < dim; ++j) {
      double w0 = r0[j];
      double w1 = r1[j];
      double w2 = r2[j];
      double w3 = r3[j];
      const double* __restrict__ col = xt + j * batch;
      for (size_t r = 0; r < batch; ++r) {
        double c = col[r];
        a0[r] += w0 * c;
        a1[r] += w1 * c;
        a2[r] += w2 * c;
        a3[r] += w3 * c;
      }
    }
  }
  for (; i < units; ++i) {
    double* __restrict__ acc = out + i * batch;
    for (size_t r = 0; r < batch; ++r) acc[r] = bias[i];
    const double* row = w + i * dim;
    for (size_t j = 0; j < dim; ++j) {
      double wij = row[j];
      const double* __restrict__ col = xt + j * batch;
      for (size_t r = 0; r < batch; ++r) acc[r] += wij * col[r];
    }
  }
}

RLBENCH_AFFINE_TARGETS
void DualBatchedAffineF64(const double* __restrict__ w_a,
                          const double* __restrict__ bias_a,
                          const double* __restrict__ w_b,
                          const double* __restrict__ bias_b, size_t units,
                          size_t dim, const double* __restrict__ xt,
                          size_t batch, double* __restrict__ out_a,
                          double* __restrict__ out_b) {
  // 2 units of each affine per block: 4 accumulator streams against one
  // column stream, the same register budget as the 4-unit single kernel.
  size_t i = 0;
  for (; i + 2 <= units; i += 2) {
    double* __restrict__ a0 = out_a + i * batch;
    double* __restrict__ a1 = out_a + (i + 1) * batch;
    double* __restrict__ b0 = out_b + i * batch;
    double* __restrict__ b1 = out_b + (i + 1) * batch;
    for (size_t r = 0; r < batch; ++r) {
      a0[r] = bias_a[i];
      a1[r] = bias_a[i + 1];
      b0[r] = bias_b[i];
      b1[r] = bias_b[i + 1];
    }
    const double* ra0 = w_a + i * dim;
    const double* ra1 = ra0 + dim;
    const double* rb0 = w_b + i * dim;
    const double* rb1 = rb0 + dim;
    for (size_t j = 0; j < dim; ++j) {
      double wa0 = ra0[j];
      double wa1 = ra1[j];
      double wb0 = rb0[j];
      double wb1 = rb1[j];
      const double* __restrict__ col = xt + j * batch;
      for (size_t r = 0; r < batch; ++r) {
        double c = col[r];
        a0[r] += wa0 * c;
        a1[r] += wa1 * c;
        b0[r] += wb0 * c;
        b1[r] += wb1 * c;
      }
    }
  }
  for (; i < units; ++i) {
    double* __restrict__ a0 = out_a + i * batch;
    double* __restrict__ b0 = out_b + i * batch;
    for (size_t r = 0; r < batch; ++r) {
      a0[r] = bias_a[i];
      b0[r] = bias_b[i];
    }
    const double* ra0 = w_a + i * dim;
    const double* rb0 = w_b + i * dim;
    for (size_t j = 0; j < dim; ++j) {
      double wa0 = ra0[j];
      double wb0 = rb0[j];
      const double* __restrict__ col = xt + j * batch;
      for (size_t r = 0; r < batch; ++r) {
        double c = col[r];
        a0[r] += wa0 * c;
        b0[r] += wb0 * c;
      }
    }
  }
}

}  // namespace rlbench::text::kernels
